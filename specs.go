package punt

import (
	"punt/internal/benchgen"
	"punt/internal/stg"
)

// Builtin specifications.  These expose the paper's worked examples and the
// scalable benchmark generators through the public API, so example programs
// and load drivers need no ".g" files on disk.

// Fig1 returns the worked example of the paper's Figure 1: the three-signal
// STG whose output b synthesises to the cover b = a + c.
func Fig1() *Spec {
	return mustWrap(benchgen.PaperFig1())
}

// Handshake returns a minimal two-signal req/ack handshake controller.
func Handshake() *Spec {
	return mustWrap(benchgen.Handshake())
}

// MullerPipeline returns the n-stage Muller pipeline control STG of the
// paper's Figure 6 scaling experiment.
func MullerPipeline(stages int) *Spec {
	return mustWrap(benchgen.MullerPipeline(stages))
}

// MullerPipelineWithSignals returns the Muller pipeline sized to the given
// signal count (the x-axis of Figure 6).
func MullerPipelineWithSignals(signals int) *Spec {
	return mustWrap(benchgen.MullerPipelineWithSignals(signals))
}

// CounterflowPipeline returns the 34-signal counterflow-pipeline controller
// (the circled point of Figure 6).
func CounterflowPipeline() *Spec {
	return mustWrap(benchgen.CounterflowPipeline())
}

// Table1 returns the benchmark suite of the paper's Table 1 as named batch
// items, ready for Batch.
func Table1() []BatchItem {
	entries := benchgen.Table1Suite()
	items := make([]BatchItem, 0, len(entries))
	for _, e := range entries {
		items = append(items, BatchItem{Name: e.Name, Spec: mustWrap(e.Build())})
	}
	return items
}

// mustWrap finalises a generated STG; the builtin generators always carry an
// explicit initial state, so wrapping cannot fail.
func mustWrap(g *stg.STG) *Spec {
	s, err := wrapSpec(g)
	if err != nil {
		panic(err)
	}
	return s
}
