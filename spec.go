package punt

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"sync"

	"punt/internal/stg"
)

// Spec is a parsed and validated Signal Transition Graph specification, the
// input of every synthesis and analysis entry point of the package.
//
// A Spec is immutable after loading: its initial binary state is inferred
// eagerly (when the source carried no .initial_state directive), so the same
// Spec value may be synthesised concurrently — Batch relies on this.
type Spec struct {
	g *stg.STG

	hashOnce sync.Once
	hash     string
}

// wrapSpec finalises a freshly built STG into a public Spec: the initial
// binary state is inferred now if it was not given, so that later synthesis
// runs — possibly several at once on the same Spec — never mutate the STG.
func wrapSpec(g *stg.STG) (*Spec, error) {
	if !g.HasInitialState() {
		if err := g.InferInitialState(0); err != nil {
			return nil, &Diagnostic{Op: "load", Spec: g.Name(), Kind: KindParse, Err: err}
		}
	}
	return &Spec{g: g}, nil
}

// Load reads a specification in the astg ".g" interchange format (the format
// of SIS and Petrify) from r.
func Load(r io.Reader) (*Spec, error) {
	g, err := stg.Parse(r)
	if err != nil {
		return nil, &Diagnostic{Op: "parse", Kind: KindParse, Err: err}
	}
	return wrapSpec(g)
}

// LoadFile reads a ".g" specification from a file; the path "-" reads
// standard input.
func LoadFile(path string) (*Spec, error) {
	return LoadFileFrom(path, os.Stdin)
}

// LoadFileFrom is LoadFile with an explicit stdin: the path "-" reads from
// the given reader instead of os.Stdin.  It is the loader the cmd/ binaries
// share, so their "-" handling stays testable in process.
func LoadFileFrom(path string, stdin io.Reader) (*Spec, error) {
	if path == "-" {
		return Load(stdin)
	}
	g, err := stg.ParseFile(path)
	if err != nil {
		return nil, &Diagnostic{Op: "parse", Spec: path, Kind: KindParse, Err: err}
	}
	return wrapSpec(g)
}

// Parse reads a ".g" specification from a string.
func Parse(text string) (*Spec, error) {
	g, err := stg.ParseString(text)
	if err != nil {
		return nil, &Diagnostic{Op: "parse", Kind: KindParse, Err: err}
	}
	return wrapSpec(g)
}

// Name returns the specification's model name.
func (s *Spec) Name() string { return s.g.Name() }

// Hash returns the content hash of the specification: the SHA-256 of its
// canonical ".g" rendering (Text), computed once and memoized.  Two Specs
// with equal hashes describe the same finalised STG, whichever way they were
// loaded — the content-addressed result cache keys on it.
func (s *Spec) Hash() string {
	s.hashOnce.Do(func() {
		sum := sha256.Sum256([]byte(stg.Format(s.g)))
		s.hash = hex.EncodeToString(sum[:])
	})
	return s.hash
}

// NumSignals returns the number of declared signals.
func (s *Spec) NumSignals() int { return s.g.NumSignals() }

// SignalNames returns the names of all signals in declaration order.
func (s *Spec) SignalNames() []string { return s.g.SignalNames() }

// Describe renders a human-readable summary of the specification (signals,
// net size, structural class).
func (s *Spec) Describe() string { return stg.Describe(s.g) }

// Text renders the specification back into the ".g" interchange format.
func (s *Spec) Text() string { return stg.Format(s.g) }

// IsMarkedGraph reports whether the underlying net is a marked graph (every
// place has exactly one producer and one consumer).
func (s *Spec) IsMarkedGraph() bool { return s.g.Net().IsMarkedGraph() }

// IsFreeChoice reports whether the underlying net is free-choice.
func (s *Spec) IsFreeChoice() bool { return s.g.Net().IsFreeChoice() }
