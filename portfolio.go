package punt

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// The portfolio scheduler races several backends over the same specification
// under a shared context: the first successful contender wins, the losers are
// cancelled immediately and their outcomes are recorded in the winner's
// Stats.Contenders breakdown.  WithWorkers bounds how many contenders run
// concurrently; with one worker the contenders run sequentially in the
// configured order, which makes the winner deterministic.

// runPortfolio races the contenders and returns the winning result.  When
// every contender fails, the first-listed contender's error is returned (a
// deterministic choice that favours the preferred engine's diagnostic).
func runPortfolio(ctx context.Context, contenders []Backend, spec *Spec, cfg BackendConfig, workers int) (*Result, error) {
	if len(contenders) == 0 {
		return nil, diagnose("synthesize", spec.Name(), fmt.Errorf("portfolio has no contenders"))
	}
	if workers <= 0 || workers > len(contenders) {
		workers = len(contenders)
	}

	// rctx cancels the losers the moment a winner is in.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		res     *Result
		err     error
		elapsed time.Duration
		started bool
	}
	slots := make([]slot, len(contenders))
	var (
		mu     sync.Mutex
		winner = -1
		wg     sync.WaitGroup
		sem    = make(chan struct{}, workers)
	)
	// When every contender fits in the worker pool, a start gate lines them
	// up before any begins: without it the runtime's run-next scheduling lets
	// the last-spawned goroutine finish a microsecond-scale synthesis before
	// the first-spawned one even starts, biasing the race systematically.
	// With fewer workers the gate would deadlock the queued contenders, and
	// staggered starts are the configured behaviour anyway.
	var startGate chan struct{}
	if workers >= len(contenders) {
		startGate = make(chan struct{})
	}
feed:
	for i := range contenders {
		// Feeding stops as soon as a winner exists: contenders that never got
		// a worker slot are recorded as unstarted rather than cancelled.  A
		// caller that cancels mid-feed stops the feed the same way, instead of
		// queueing for a worker slot it no longer wants.
		select {
		case sem <- struct{}{}:
		case <-rctx.Done():
			break feed
		}
		mu.Lock()
		done := winner >= 0
		mu.Unlock()
		if done || rctx.Err() != nil {
			//puntlint:ignore ctxdiscipline releases the slot acquired just above from a buffered channel; it cannot block
			<-sem
			break
		}
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			defer func() { <-sem }()
			if startGate != nil {
				<-startGate
			}
			start := time.Now()
			defer func() {
				// A panicking contender loses its race instead of taking the
				// process down.  runBackend already recovers backend panics
				// centrally; this is the contender goroutine's last line of
				// defence, so a panic in the scheduler's own bookkeeping can
				// never kill the process either.
				if p := recover(); p != nil {
					mu.Lock()
					slots[i] = slot{
						err: diagnose("synthesize", spec.Name(),
							&PanicError{Backend: b.Name(), Value: p, Stack: debug.Stack()}),
						elapsed: time.Since(start),
						started: true,
					}
					mu.Unlock()
				}
			}()
			res, err := runBackend(rctx, b, spec, cfg)
			elapsed := time.Since(start)
			mu.Lock()
			slots[i] = slot{res: res, err: err, elapsed: elapsed, started: true}
			if err == nil && winner < 0 {
				winner = i
				cancel() // abort the losers promptly
			}
			mu.Unlock()
		}(i, contenders[i])
	}
	if startGate != nil {
		close(startGate)
	}
	wg.Wait()

	breakdown := make([]Contender, len(contenders))
	for i, b := range contenders {
		c := Contender{Engine: b.Name(), Started: slots[i].started, Elapsed: slots[i].elapsed}
		if i == winner {
			c.Winner = true
		} else if slots[i].started {
			c.Err = slots[i].err
		}
		breakdown[i] = c
	}

	if winner < 0 {
		// Everyone failed.  Propagate the context's own error when the caller
		// cancelled; otherwise the first contender's diagnostic.
		if err := ctx.Err(); err != nil {
			return nil, diagnose("synthesize", spec.Name(), err)
		}
		for _, s := range slots {
			if s.started && s.err != nil {
				return nil, s.err
			}
		}
		return nil, diagnose("synthesize", spec.Name(), fmt.Errorf("portfolio ran no contenders"))
	}
	res := slots[winner].res
	res.Stats.Backend = contenders[winner].Name()
	// A composite winner (the decompose backend) reports the engines it ran
	// underneath in its own stats; those roll up under the winner's entry as
	// Contender.Sub instead of surfacing as phantom top-level contenders of a
	// race they were never entered in.
	if subs := subContenders(&res.Stats); len(subs) > 0 {
		breakdown[winner].Sub = subs
	}
	res.Stats.Contenders = breakdown
	return res, nil
}

// subContenders extracts a winner's nested sub-engine outcomes: an inherited
// contender breakdown (a delegating backend that kept one), or the
// per-component runs of a decomposed result.
func subContenders(st *Stats) []Contender {
	if len(st.Contenders) > 0 {
		subs := st.Contenders
		st.Contenders = nil
		return subs
	}
	if len(st.Components) > 0 {
		subs := make([]Contender, len(st.Components))
		for i, c := range st.Components {
			subs[i] = Contender{
				Engine:  c.Name + "/" + c.Backend,
				Started: true,
				Elapsed: c.Elapsed,
			}
		}
		return subs
	}
	return nil
}

// contenderErrLabel compresses a loser's error for the Stats summary.
func contenderErrLabel(err error) string {
	if errors.Is(err, context.Canceled) {
		return "cancelled"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var d *Diagnostic
	if errors.As(err, &d) {
		return d.Kind.String()
	}
	return "failed"
}
