// Package bench is the public driver of the repository's evaluation: it
// re-exports the Table 1 / Figure 6 experiment harness of the paper and adds
// the end-to-end facade benchmark that tracks the overhead of the public punt
// API.  The benchtab command is a thin wrapper around this package.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"punt"
	"punt/internal/benchgen"
	"punt/internal/experiments"
	"punt/internal/resolve"
	"punt/internal/stategraph"
)

// Re-exported experiment types; see punt/internal/experiments for the field
// documentation.
type (
	// Table1Options configures the Table 1 run.
	Table1Options = experiments.Table1Options
	// Table1Row is one row of the reproduced Table 1.
	Table1Row = experiments.Table1Row
	// Figure6Options configures the Figure 6 scaling experiment.
	Figure6Options = experiments.Figure6Options
	// Figure6Point is one measurement of the Figure 6 experiment.
	Figure6Point = experiments.Figure6Point
	// FacadePoint is one end-to-end public-API measurement.
	FacadePoint = experiments.FacadePoint
	// CachePoint is one cache-effectiveness measurement (cold synthesis vs
	// warm cache hit).
	CachePoint = experiments.CachePoint
	// ParallelPoint is one sequential-vs-parallel unfold measurement.
	ParallelPoint = experiments.ParallelPoint
	// ResolveRetryPoint is one full-rebuild-vs-incremental CSC-retry sweep.
	ResolveRetryPoint = experiments.ResolveRetryPoint
	// DecomposePoint is one monolithic-vs-compositional synthesis measurement.
	DecomposePoint = experiments.DecomposePoint
	// Report is the JSON perf-trajectory document emitted by benchtab -json.
	Report = experiments.Report
)

// RunTable1 synthesises the paper's benchmark suite with the unfolding flow
// and both baselines.
func RunTable1(ctx context.Context, opts Table1Options) []Table1Row {
	return experiments.RunTable1(ctx, benchgen.Table1Suite(), opts)
}

// RunFigure6 measures the scaling experiment of Figure 6.
func RunFigure6(ctx context.Context, opts Figure6Options) []Figure6Point {
	return experiments.RunFigure6(ctx, opts)
}

// FormatTable1 renders Table 1 rows in the layout of the paper.
func FormatTable1(rows []Table1Row) string { return experiments.FormatTable1(rows) }

// FormatFigure6 renders the Figure 6 series as a table.
func FormatFigure6(points []Figure6Point) string { return experiments.FormatFigure6(points) }

// FormatFacade renders the facade measurements as a table.
func FormatFacade(points []FacadePoint) string { return experiments.FormatFacade(points) }

// FormatCache renders the cache-effectiveness measurements as a table.
func FormatCache(points []CachePoint) string { return experiments.FormatCache(points) }

// FormatParallel renders the parallel-unfolding measurements as a table.
func FormatParallel(points []ParallelPoint) string { return experiments.FormatParallel(points) }

// FormatResolveRetry renders the CSC-retry sweep as a table.
func FormatResolveRetry(points []ResolveRetryPoint) string {
	return experiments.FormatResolveRetry(points)
}

// FormatDecompose renders the compositional-synthesis measurements as a table.
func FormatDecompose(points []DecomposePoint) string { return experiments.FormatDecompose(points) }

// NewReport assembles the JSON perf-trajectory report.
func NewReport(rows []Table1Row, points []Figure6Point, facade []FacadePoint, cache, disk []CachePoint, parallel []ParallelPoint, retry []ResolveRetryPoint, decomp []DecomposePoint, now time.Time) Report {
	return experiments.NewReport(rows, points, facade, cache, disk, parallel, retry, decomp, now)
}

// WriteJSON writes the report, indented, to w.
func WriteJSON(w io.Writer, r Report) error { return experiments.WriteJSON(w, r) }

// facadeSpec is one workload of the facade benchmark.
type facadeSpec struct {
	name string
	text string
}

// RunFacade measures the full public-API pipeline — punt.Parse followed by
// punt.New().Synthesize — on the paper's Figure 1 example and on a mid-size
// Muller pipeline, averaging over runs (minimum 1).  Unlike Table 1, which
// times the raw cores, these numbers include every facade layer a real caller
// goes through, so regressions in the public API itself show up on the perf
// trajectory.
func RunFacade(ctx context.Context, runs int) ([]FacadePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	synth := punt.New()
	out := make([]FacadePoint, 0, len(specs))
	for _, fs := range specs {
		p := FacadePoint{Spec: fs.name, Runs: runs}
		var parse, synthT, total time.Duration
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			spec, err := punt.Parse(fs.text)
			t1 := time.Now()
			if err != nil {
				return nil, fmt.Errorf("bench: facade parse of %s: %w", fs.name, err)
			}
			res, err := synth.Synthesize(ctx, spec)
			t2 := time.Now()
			if err != nil {
				return nil, fmt.Errorf("bench: facade synthesis of %s: %w", fs.name, err)
			}
			parse += t1.Sub(t0)
			synthT += t2.Sub(t1)
			total += t2.Sub(t0)
			p.Literals = res.Literals()
			p.Events = res.Stats.Events
		}
		p.Parse = parse / time.Duration(runs)
		p.Synth = synthT / time.Duration(runs)
		p.Total = total / time.Duration(runs)
		out = append(out, p)
	}
	return out, nil
}

// RunCache measures the content-addressed result cache on the facade
// workloads: for each specification the first synthesis through a WithCache
// synthesizer is timed cold (the run that populates the cache), then the same
// specification is synthesised again runs times (minimum 1) and the warm
// cache-hit time is averaged.  Every warm run must actually be served from
// the cache (Stats.Cached), so the point measures a lookup, not a re-run —
// the hot path of a high-traffic synthesis service and of repeated
// Batch/Differential sweeps.
func RunCache(ctx context.Context, runs int) ([]CachePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	out := make([]CachePoint, 0, len(specs))
	for _, fs := range specs {
		cache := punt.NewLRU(64)
		synth := punt.New(punt.WithCache(cache))
		spec, err := punt.Parse(fs.text)
		if err != nil {
			return nil, fmt.Errorf("bench: cache parse of %s: %w", fs.name, err)
		}
		p := CachePoint{Spec: fs.name, Runs: runs}
		t0 := time.Now()
		cold, err := synth.Synthesize(ctx, spec)
		p.Cold = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: cold synthesis of %s: %w", fs.name, err)
		}
		p.Literals = cold.Literals()
		var warm time.Duration
		for i := 0; i < runs; i++ {
			// Re-parse so the warm run exercises the content-addressed path (a
			// different *Spec with the same hash), as a service handling
			// repeated requests would.
			again, err := punt.Parse(fs.text)
			if err != nil {
				return nil, fmt.Errorf("bench: cache re-parse of %s: %w", fs.name, err)
			}
			t1 := time.Now()
			res, err := synth.Synthesize(ctx, again)
			warm += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: warm synthesis of %s: %w", fs.name, err)
			}
			if !res.Stats.Cached {
				return nil, fmt.Errorf("bench: warm synthesis of %s was not served from the cache", fs.name)
			}
		}
		p.Warm = warm / time.Duration(runs)
		if p.Warm > 0 {
			p.Speedup = float64(p.Cold) / float64(p.Warm)
		}
		out = append(out, p)
	}
	return out, nil
}

// RunParallel measures the sharded possible-extension pool: each workload is
// unfolded runs times (minimum 1) with WithWorkers(1) and with
// WithWorkers(workers) (0 = GOMAXPROCS), averaging the unfold-only times and
// checking on every parallel run that the segment dumps byte-identically to
// the sequential one — the determinism guarantee this trajectory exists to
// police.  On a single-CPU host the speedup hovers near (or below) 1; the
// Identical verdict is the invariant.
func RunParallel(ctx context.Context, workers, runs int) ([]ParallelPoint, error) {
	if runs < 1 {
		runs = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs := []struct {
		name string
		spec *punt.Spec
	}{
		{name: "pipeline-22", spec: punt.MullerPipelineWithSignals(22)},
		{name: "pipeline-50", spec: punt.MullerPipelineWithSignals(50)},
		{name: "counterflow", spec: punt.CounterflowPipeline()},
	}
	out := make([]ParallelPoint, 0, len(specs))
	for _, ws := range specs {
		p := ParallelPoint{Spec: ws.name, Workers: workers, Runs: runs, Identical: true}
		var seq, par time.Duration
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			segSeq, err := punt.Unfold(ctx, ws.spec, punt.WithWorkers(1))
			seq += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("bench: sequential unfold of %s: %w", ws.name, err)
			}
			t1 := time.Now()
			segPar, err := punt.Unfold(ctx, ws.spec, punt.WithWorkers(workers))
			par += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: parallel unfold of %s: %w", ws.name, err)
			}
			if segSeq.Dump() != segPar.Dump() {
				p.Identical = false
			}
			p.Events = segPar.Stats().Events
		}
		p.Sequential = seq / time.Duration(runs)
		p.Parallel = par / time.Duration(runs)
		if p.Parallel > 0 {
			p.Speedup = float64(p.Sequential) / float64(p.Parallel)
		}
		out = append(out, p)
	}
	return out, nil
}

// RunDecompose measures the compositional backend against the monolithic
// unfolding flow: each workload is synthesised end to end runs times
// (minimum 1) with -engine unfolding and with -engine decompose, averaging
// the times and checking on every run that the two implementations print
// byte-identically.  The workload pair covers both regimes: the counterflow
// pipeline splits into two independent components (the headline speedup —
// two half-size unfoldings beat one full one even on a single CPU, since the
// segment cost grows superlinearly), and pipeline-22 is indivisible, so its
// point prices the zero-overhead fallthrough.
func RunDecompose(ctx context.Context, runs int) ([]DecomposePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []struct {
		name string
		spec *punt.Spec
	}{
		{name: "counterflow", spec: punt.CounterflowPipeline()},
		{name: "pipeline-22", spec: punt.MullerPipelineWithSignals(22)},
	}
	mono := punt.New(punt.WithEngine(punt.Unfolding))
	dec := punt.New(punt.WithEngine(punt.Decompose))
	out := make([]DecomposePoint, 0, len(specs))
	for _, ws := range specs {
		p := DecomposePoint{Spec: ws.name, Runs: runs, Identical: true,
			Components: len(punt.Components(ws.spec))}
		var monoT, decT time.Duration
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			rm, err := mono.Synthesize(ctx, ws.spec)
			monoT += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("bench: monolithic synthesis of %s: %w", ws.name, err)
			}
			t1 := time.Now()
			rd, err := dec.Synthesize(ctx, ws.spec)
			decT += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: decompose synthesis of %s: %w", ws.name, err)
			}
			if rm.Eqn() != rd.Eqn() {
				p.Identical = false
			}
			p.Literals = rd.Literals()
		}
		p.Monolithic = monoT / time.Duration(runs)
		p.Decomposed = decT / time.Duration(runs)
		if p.Decomposed > 0 {
			p.Speedup = float64(p.Monolithic) / float64(p.Decomposed)
		}
		out = append(out, p)
	}
	return out, nil
}

// RunResolveRetry sweeps random STGs for CSC-conflicted specifications (up to
// the requested count) and resolves each twice: once forcing a full
// state-graph rebuild per candidate and once with incremental extension —
// the retry loop this PR optimises.  The two modes must produce the same
// resolution; their total times and the incremental run's reuse counters are
// the trajectory point.
func RunResolveRetry(ctx context.Context, conflicts int) ([]ResolveRetryPoint, error) {
	if conflicts < 1 {
		conflicts = 1
	}
	p := ResolveRetryPoint{}
	for seed := int64(0); p.Seeds < conflicts && seed < 20000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: 200000})
		if err != nil || len(sg.CheckCSC()) == 0 {
			continue
		}
		t0 := time.Now()
		_, _, errFull := resolve.Resolve(ctx, g, resolve.Options{MaxStates: 200000, FullRebuild: true})
		full := time.Since(t0)
		t1 := time.Now()
		_, rep, errInc := resolve.Resolve(ctx, g, resolve.Options{MaxStates: 200000})
		incr := time.Since(t1)
		if (errFull == nil) != (errInc == nil) {
			// Exactly one mode failed; errors.Join drops the nil side, so the
			// wrapped cause is the divergent error itself.
			return nil, fmt.Errorf("bench: seed %d: full-rebuild (err=%t) and incremental (err=%t) retry disagree: %w",
				seed, errFull != nil, errInc != nil, errors.Join(errFull, errInc))
		}
		if errInc != nil {
			continue // both modes reject this seed identically; not a data point
		}
		p.Seeds++
		p.FullRebuild += full
		p.Incremental += incr
		p.IncrementalBuilds += rep.IncrementalBuilds
		p.FullRebuilds += rep.FullRebuilds
		p.StatesReused += rep.StatesReused
	}
	if p.Seeds == 0 {
		return nil, fmt.Errorf("bench: no CSC-conflicted seeds found")
	}
	if p.Incremental > 0 {
		p.Speedup = float64(p.FullRebuild) / float64(p.Incremental)
	}
	return []ResolveRetryPoint{p}, nil
}

// RunDiskCache measures the persistent result store the way a puntd restart
// exercises it: the cold synthesis runs through a tiered cache (in-memory LRU
// over a content-addressed disk store rooted at dir) and populates both
// tiers, then every warm run re-parses the specification and looks it up
// through *fresh* tiers over the same directory — an empty L1, exactly the
// state after a daemon restart or on a sibling replica — so Warm prices a
// disk hit plus decode and L1 promotion, not an in-memory lookup.  Every
// warm run must be served from the store (Stats.Cached).
func RunDiskCache(ctx context.Context, dir string, runs int) ([]CachePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	tiered := func() (*punt.Tiered, error) {
		disk, err := punt.NewDiskCache(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: opening disk store: %w", err)
		}
		return punt.NewTiered(punt.NewLRU(64), disk), nil
	}
	out := make([]CachePoint, 0, len(specs))
	for _, fs := range specs {
		spec, err := punt.Parse(fs.text)
		if err != nil {
			return nil, fmt.Errorf("bench: disk-cache parse of %s: %w", fs.name, err)
		}
		cache, err := tiered()
		if err != nil {
			return nil, err
		}
		p := CachePoint{Spec: fs.name, Runs: runs}
		t0 := time.Now()
		cold, err := punt.New(punt.WithCache(cache)).Synthesize(ctx, spec)
		p.Cold = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: cold synthesis of %s: %w", fs.name, err)
		}
		p.Literals = cold.Literals()
		var warm time.Duration
		for i := 0; i < runs; i++ {
			restarted, err := tiered()
			if err != nil {
				return nil, err
			}
			again, err := punt.Parse(fs.text)
			if err != nil {
				return nil, fmt.Errorf("bench: disk-cache re-parse of %s: %w", fs.name, err)
			}
			t1 := time.Now()
			res, err := punt.New(punt.WithCache(restarted)).Synthesize(ctx, again)
			warm += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: warm synthesis of %s: %w", fs.name, err)
			}
			if !res.Stats.Cached {
				return nil, fmt.Errorf("bench: warm synthesis of %s was not served from the disk store", fs.name)
			}
		}
		p.Warm = warm / time.Duration(runs)
		if p.Warm > 0 {
			p.Speedup = float64(p.Cold) / float64(p.Warm)
		}
		out = append(out, p)
	}
	return out, nil
}
