// Package bench is the public driver of the repository's evaluation: it
// re-exports the Table 1 / Figure 6 experiment harness of the paper and adds
// the end-to-end facade benchmark that tracks the overhead of the public punt
// API.  The benchtab command is a thin wrapper around this package.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"punt"
	"punt/internal/benchgen"
	"punt/internal/experiments"
)

// Re-exported experiment types; see punt/internal/experiments for the field
// documentation.
type (
	// Table1Options configures the Table 1 run.
	Table1Options = experiments.Table1Options
	// Table1Row is one row of the reproduced Table 1.
	Table1Row = experiments.Table1Row
	// Figure6Options configures the Figure 6 scaling experiment.
	Figure6Options = experiments.Figure6Options
	// Figure6Point is one measurement of the Figure 6 experiment.
	Figure6Point = experiments.Figure6Point
	// FacadePoint is one end-to-end public-API measurement.
	FacadePoint = experiments.FacadePoint
	// CachePoint is one cache-effectiveness measurement (cold synthesis vs
	// warm cache hit).
	CachePoint = experiments.CachePoint
	// Report is the JSON perf-trajectory document emitted by benchtab -json.
	Report = experiments.Report
)

// RunTable1 synthesises the paper's benchmark suite with the unfolding flow
// and both baselines.
func RunTable1(ctx context.Context, opts Table1Options) []Table1Row {
	return experiments.RunTable1(ctx, benchgen.Table1Suite(), opts)
}

// RunFigure6 measures the scaling experiment of Figure 6.
func RunFigure6(ctx context.Context, opts Figure6Options) []Figure6Point {
	return experiments.RunFigure6(ctx, opts)
}

// FormatTable1 renders Table 1 rows in the layout of the paper.
func FormatTable1(rows []Table1Row) string { return experiments.FormatTable1(rows) }

// FormatFigure6 renders the Figure 6 series as a table.
func FormatFigure6(points []Figure6Point) string { return experiments.FormatFigure6(points) }

// FormatFacade renders the facade measurements as a table.
func FormatFacade(points []FacadePoint) string { return experiments.FormatFacade(points) }

// FormatCache renders the cache-effectiveness measurements as a table.
func FormatCache(points []CachePoint) string { return experiments.FormatCache(points) }

// NewReport assembles the JSON perf-trajectory report.
func NewReport(rows []Table1Row, points []Figure6Point, facade []FacadePoint, cache, disk []CachePoint, now time.Time) Report {
	return experiments.NewReport(rows, points, facade, cache, disk, now)
}

// WriteJSON writes the report, indented, to w.
func WriteJSON(w io.Writer, r Report) error { return experiments.WriteJSON(w, r) }

// facadeSpec is one workload of the facade benchmark.
type facadeSpec struct {
	name string
	text string
}

// RunFacade measures the full public-API pipeline — punt.Parse followed by
// punt.New().Synthesize — on the paper's Figure 1 example and on a mid-size
// Muller pipeline, averaging over runs (minimum 1).  Unlike Table 1, which
// times the raw cores, these numbers include every facade layer a real caller
// goes through, so regressions in the public API itself show up on the perf
// trajectory.
func RunFacade(ctx context.Context, runs int) ([]FacadePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	synth := punt.New()
	out := make([]FacadePoint, 0, len(specs))
	for _, fs := range specs {
		p := FacadePoint{Spec: fs.name, Runs: runs}
		var parse, synthT, total time.Duration
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			spec, err := punt.Parse(fs.text)
			t1 := time.Now()
			if err != nil {
				return nil, fmt.Errorf("bench: facade parse of %s: %w", fs.name, err)
			}
			res, err := synth.Synthesize(ctx, spec)
			t2 := time.Now()
			if err != nil {
				return nil, fmt.Errorf("bench: facade synthesis of %s: %w", fs.name, err)
			}
			parse += t1.Sub(t0)
			synthT += t2.Sub(t1)
			total += t2.Sub(t0)
			p.Literals = res.Literals()
			p.Events = res.Stats.Events
		}
		p.Parse = parse / time.Duration(runs)
		p.Synth = synthT / time.Duration(runs)
		p.Total = total / time.Duration(runs)
		out = append(out, p)
	}
	return out, nil
}

// RunCache measures the content-addressed result cache on the facade
// workloads: for each specification the first synthesis through a WithCache
// synthesizer is timed cold (the run that populates the cache), then the same
// specification is synthesised again runs times (minimum 1) and the warm
// cache-hit time is averaged.  Every warm run must actually be served from
// the cache (Stats.Cached), so the point measures a lookup, not a re-run —
// the hot path of a high-traffic synthesis service and of repeated
// Batch/Differential sweeps.
func RunCache(ctx context.Context, runs int) ([]CachePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	out := make([]CachePoint, 0, len(specs))
	for _, fs := range specs {
		cache := punt.NewLRU(64)
		synth := punt.New(punt.WithCache(cache))
		spec, err := punt.Parse(fs.text)
		if err != nil {
			return nil, fmt.Errorf("bench: cache parse of %s: %w", fs.name, err)
		}
		p := CachePoint{Spec: fs.name, Runs: runs}
		t0 := time.Now()
		cold, err := synth.Synthesize(ctx, spec)
		p.Cold = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: cold synthesis of %s: %w", fs.name, err)
		}
		p.Literals = cold.Literals()
		var warm time.Duration
		for i := 0; i < runs; i++ {
			// Re-parse so the warm run exercises the content-addressed path (a
			// different *Spec with the same hash), as a service handling
			// repeated requests would.
			again, err := punt.Parse(fs.text)
			if err != nil {
				return nil, fmt.Errorf("bench: cache re-parse of %s: %w", fs.name, err)
			}
			t1 := time.Now()
			res, err := synth.Synthesize(ctx, again)
			warm += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: warm synthesis of %s: %w", fs.name, err)
			}
			if !res.Stats.Cached {
				return nil, fmt.Errorf("bench: warm synthesis of %s was not served from the cache", fs.name)
			}
		}
		p.Warm = warm / time.Duration(runs)
		if p.Warm > 0 {
			p.Speedup = float64(p.Cold) / float64(p.Warm)
		}
		out = append(out, p)
	}
	return out, nil
}

// RunDiskCache measures the persistent result store the way a puntd restart
// exercises it: the cold synthesis runs through a tiered cache (in-memory LRU
// over a content-addressed disk store rooted at dir) and populates both
// tiers, then every warm run re-parses the specification and looks it up
// through *fresh* tiers over the same directory — an empty L1, exactly the
// state after a daemon restart or on a sibling replica — so Warm prices a
// disk hit plus decode and L1 promotion, not an in-memory lookup.  Every
// warm run must be served from the store (Stats.Cached).
func RunDiskCache(ctx context.Context, dir string, runs int) ([]CachePoint, error) {
	if runs < 1 {
		runs = 1
	}
	specs := []facadeSpec{
		{name: "fig1", text: punt.Fig1().Text()},
		{name: "pipeline-22", text: punt.MullerPipelineWithSignals(22).Text()},
	}
	tiered := func() (*punt.Tiered, error) {
		disk, err := punt.NewDiskCache(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: opening disk store: %w", err)
		}
		return punt.NewTiered(punt.NewLRU(64), disk), nil
	}
	out := make([]CachePoint, 0, len(specs))
	for _, fs := range specs {
		spec, err := punt.Parse(fs.text)
		if err != nil {
			return nil, fmt.Errorf("bench: disk-cache parse of %s: %w", fs.name, err)
		}
		cache, err := tiered()
		if err != nil {
			return nil, err
		}
		p := CachePoint{Spec: fs.name, Runs: runs}
		t0 := time.Now()
		cold, err := punt.New(punt.WithCache(cache)).Synthesize(ctx, spec)
		p.Cold = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: cold synthesis of %s: %w", fs.name, err)
		}
		p.Literals = cold.Literals()
		var warm time.Duration
		for i := 0; i < runs; i++ {
			restarted, err := tiered()
			if err != nil {
				return nil, err
			}
			again, err := punt.Parse(fs.text)
			if err != nil {
				return nil, fmt.Errorf("bench: disk-cache re-parse of %s: %w", fs.name, err)
			}
			t1 := time.Now()
			res, err := punt.New(punt.WithCache(restarted)).Synthesize(ctx, again)
			warm += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("bench: warm synthesis of %s: %w", fs.name, err)
			}
			if !res.Stats.Cached {
				return nil, fmt.Errorf("bench: warm synthesis of %s was not served from the disk store", fs.name)
			}
		}
		p.Warm = warm / time.Duration(runs)
		if p.Warm > 0 {
			p.Speedup = float64(p.Cold) / float64(p.Warm)
		}
		out = append(out, p)
	}
	return out, nil
}
