package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunFacade(t *testing.T) {
	points, err := RunFacade(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	fig1 := points[0]
	if fig1.Spec != "fig1" || fig1.Literals != 2 || fig1.Events != 8 {
		t.Errorf("fig1 point = %+v", fig1)
	}
	if fig1.Total <= 0 || fig1.Total < fig1.Synth {
		t.Errorf("times inconsistent: %+v", fig1)
	}
	text := FormatFacade(points)
	if !strings.Contains(text, "fig1") || !strings.Contains(text, "pipeline-22") {
		t.Errorf("formatting:\n%s", text)
	}
}

func TestRunDiskCache(t *testing.T) {
	points, err := RunDiskCache(context.Background(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Cold <= 0 || p.Warm <= 0 {
			t.Errorf("%s: non-positive timings: %+v", p.Spec, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("%s: no speedup computed: %+v", p.Spec, p)
		}
	}
	report := NewReport(nil, nil, nil, nil, points, time.Unix(0, 0))
	if len(report.DiskCache) != 2 || report.DiskCache[0].Spec != "fig1" {
		t.Errorf("disk-cache points lost in the report: %+v", report.DiskCache)
	}
}

func TestFacadePointsInJSONReport(t *testing.T) {
	points, err := RunFacade(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	report := NewReport(nil, nil, points, nil, nil, time.Unix(0, 0))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Facade) != 2 || back.Facade[0].Spec != "fig1" || back.Facade[0].Literals != 2 {
		t.Errorf("facade entries lost in JSON round trip: %+v", back.Facade)
	}
}
