package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRunFacade(t *testing.T) {
	points, err := RunFacade(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	fig1 := points[0]
	if fig1.Spec != "fig1" || fig1.Literals != 2 || fig1.Events != 8 {
		t.Errorf("fig1 point = %+v", fig1)
	}
	if fig1.Total <= 0 || fig1.Total < fig1.Synth {
		t.Errorf("times inconsistent: %+v", fig1)
	}
	text := FormatFacade(points)
	if !strings.Contains(text, "fig1") || !strings.Contains(text, "pipeline-22") {
		t.Errorf("formatting:\n%s", text)
	}
}

func TestRunDiskCache(t *testing.T) {
	points, err := RunDiskCache(context.Background(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Cold <= 0 || p.Warm <= 0 {
			t.Errorf("%s: non-positive timings: %+v", p.Spec, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("%s: no speedup computed: %+v", p.Spec, p)
		}
	}
	report := NewReport(nil, nil, nil, nil, points, nil, nil, nil, time.Unix(0, 0))
	if len(report.DiskCache) != 2 || report.DiskCache[0].Spec != "fig1" {
		t.Errorf("disk-cache points lost in the report: %+v", report.DiskCache)
	}
}

func TestFacadePointsInJSONReport(t *testing.T) {
	points, err := RunFacade(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	report := NewReport(nil, nil, points, nil, nil, nil, nil, nil, time.Unix(0, 0))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Facade) != 2 || back.Facade[0].Spec != "fig1" || back.Facade[0].Literals != 2 {
		t.Errorf("facade entries lost in JSON round trip: %+v", back.Facade)
	}
}

func TestRunParallel(t *testing.T) {
	points, err := RunParallel(context.Background(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if !p.Identical {
			t.Errorf("%s: parallel unfold diverged from sequential", p.Spec)
		}
		if p.Workers != 4 || p.Sequential <= 0 || p.Parallel <= 0 || p.Events == 0 {
			t.Errorf("%s: point = %+v", p.Spec, p)
		}
	}
	text := FormatParallel(points)
	if !strings.Contains(text, "pipeline-50") || !strings.Contains(text, "counterflow") {
		t.Errorf("formatting:\n%s", text)
	}
	report := NewReport(nil, nil, nil, nil, nil, points, nil, nil, time.Unix(0, 0))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Parallel) != 3 || !back.Parallel[0].Identical {
		t.Errorf("parallel entries lost in JSON round trip: %+v", back.Parallel)
	}
}

func TestRunDecompose(t *testing.T) {
	points, err := RunDecompose(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	counterflow, pipeline := points[0], points[1]
	if counterflow.Components != 2 {
		t.Errorf("counterflow must split into 2 components, got %d", counterflow.Components)
	}
	if pipeline.Components != 1 {
		t.Errorf("pipeline-22 must be indivisible, got %d components", pipeline.Components)
	}
	for _, p := range points {
		if !p.Identical {
			t.Errorf("%s: decompose output diverged from the monolithic engine", p.Spec)
		}
		if p.Monolithic <= 0 || p.Decomposed <= 0 || p.Literals == 0 {
			t.Errorf("%s: point = %+v", p.Spec, p)
		}
	}
	text := FormatDecompose(points)
	if !strings.Contains(text, "counterflow") || !strings.Contains(text, "Speedup") {
		t.Errorf("formatting:\n%s", text)
	}
	report := NewReport(nil, nil, nil, nil, nil, nil, nil, points, time.Unix(0, 0))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Decompose) != 2 || back.Decompose[0].Components != 2 {
		t.Errorf("decompose entries lost in JSON round trip: %+v", back.Decompose)
	}
}

func TestRunResolveRetry(t *testing.T) {
	points, err := RunResolveRetry(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	p := points[0]
	if p.Seeds == 0 || p.FullRebuild <= 0 || p.Incremental <= 0 {
		t.Fatalf("empty sweep: %+v", p)
	}
	if p.IncrementalBuilds == 0 {
		t.Errorf("sweep never validated a candidate incrementally: %+v", p)
	}
	text := FormatResolveRetry(points)
	if !strings.Contains(text, "Speedup") {
		t.Errorf("formatting:\n%s", text)
	}
	report := NewReport(nil, nil, nil, nil, nil, nil, points, nil, time.Unix(0, 0))
	if len(report.ResolveRetry) != 1 || report.ResolveRetry[0].Seeds != p.Seeds {
		t.Errorf("retry sweep lost in the report: %+v", report.ResolveRetry)
	}
}
