package punt_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"punt"
	"punt/internal/faultinject"
)

// The chaos sweep: hundreds of seeded, schedule-driven fault-injection runs
// over every entry point — plain Synthesize, the portfolio scheduler, Batch —
// with faults fired inside the engines' hot loops, at the facade admission
// point and in the cache.  The invariants under any schedule:
//
//   - no run deadlocks (each is bounded by a watchdog),
//   - no goroutines leak across the sweep,
//   - every failure is a structured *Diagnostic (never an unrecovered panic),
//   - every success carries a real implementation,
//   - the shared cache never serves a faulted or truncated result.

// chaosRuns is the number of seeded schedules the sweep drives; the CI chaos
// job runs the full sweep under the race detector.
const chaosRuns = 240

// chaosCache shares one LRU across the whole sweep and corrupts hits when the
// current schedule says so, simulating a cache whose entries rot.
type chaosCache struct {
	inner *punt.LRU
	mu    sync.Mutex
	inj   *faultinject.Injector
}

func (c *chaosCache) setInjector(i *faultinject.Injector) {
	c.mu.Lock()
	c.inj = i
	c.mu.Unlock()
}

func (c *chaosCache) Get(key string) (*punt.Result, bool) {
	res, ok := c.inner.Get(key)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	inj := c.inj
	c.mu.Unlock()
	if inj.Corrupt(faultinject.OpCacheGet) {
		return &punt.Result{}, true // a hit whose implementation rotted away
	}
	return res, true
}

func (c *chaosCache) Put(key string, res *punt.Result) { c.inner.Put(key, res) }

func TestChaosSweep(t *testing.T) {
	defer faultinject.LeakCheck(t)()

	specs := []*punt.Spec{punt.Fig1(), punt.Handshake(), punt.MullerPipeline(4)}
	cache := &chaosCache{inner: punt.NewLRU(0)}
	engines := []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic}

	for seed := 0; seed < chaosRuns; seed++ {
		inj := faultinject.Schedule(int64(seed), faultinject.AllOps, 1+seed%3, 2)
		cache.setInjector(inj)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		ctx = faultinject.With(ctx, inj)

		// Each run is driven from its own goroutine under a deadlock
		// watchdog: a schedule that wedged the pipeline would otherwise hang
		// the whole suite silently.
		done := make(chan struct{})
		go func() {
			defer close(done)
			spec := specs[seed%len(specs)]
			switch seed % 4 {
			case 0, 1: // plain Synthesize, every builtin engine + ladder
				s := punt.New(
					punt.WithEngine(engines[seed%len(engines)]),
					punt.WithCache(cache),
					punt.WithFallback(punt.Fallback("retry", punt.WithEngine(punt.Unfolding))),
				)
				res, err := s.Synthesize(ctx, spec)
				checkChaosOutcome(t, seed, res, err)
			case 2: // portfolio race
				s := punt.New(punt.WithEngine(punt.Portfolio), punt.WithCache(cache))
				res, err := s.Synthesize(ctx, spec)
				checkChaosOutcome(t, seed, res, err)
			default: // Batch over all specs
				items := make([]punt.BatchItem, len(specs))
				for i, sp := range specs {
					items[i] = punt.BatchItem{Name: fmt.Sprintf("item-%d", i), Spec: sp}
				}
				s := punt.New(punt.WithCache(cache), punt.WithWorkers(2))
				results, sum := s.Batch(ctx, items)
				if sum.Succeeded+sum.Failed != len(items) {
					t.Errorf("seed %d: summary %v does not account for every item", seed, sum)
				}
				for _, r := range results {
					checkChaosOutcome(t, seed, r.Result, r.Err)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("seed %d: run deadlocked (fired: %v)\n%s", seed, inj.Fired(), buf[:runtime.Stack(buf, true)])
		}
		cancel()
	}

	// The sweep is over: the shared cache must still be clean.  A clean run
	// of every spec/engine combination must succeed with a real
	// implementation — a poisoned or truncated cache entry would surface
	// right here.
	cache.setInjector(nil)
	for _, spec := range specs {
		for _, e := range engines {
			res, err := punt.New(punt.WithEngine(e), punt.WithCache(cache)).Synthesize(context.Background(), spec)
			if err != nil {
				t.Fatalf("clean run of %s on %v after the sweep failed: %v", spec.Name(), e, err)
			}
			if res.Impl == nil || res.Literals() == 0 {
				t.Fatalf("clean run of %s on %v served an empty result: the sweep poisoned the cache", spec.Name(), e)
			}
		}
	}
}

// checkChaosOutcome asserts the chaos invariants of one outcome: a success
// has an implementation, a failure is a structured diagnostic.
func checkChaosOutcome(t *testing.T, seed int, res *punt.Result, err error) {
	t.Helper()
	if err == nil {
		if res == nil || res.Impl == nil {
			t.Errorf("seed %d: success without an implementation", seed)
		}
		return
	}
	if res != nil {
		t.Errorf("seed %d: both a result and an error returned", seed)
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Errorf("seed %d: unstructured error %T: %v", seed, err, err)
	}
}

// TestChaosPanicSchedules drives every engine op with a forced-panic rule:
// each run must surface a KindPanic diagnostic with the injected value —
// never crash, never wedge.
func TestChaosPanicSchedules(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	engineFor := map[string]punt.Engine{
		faultinject.OpUnfoldPop:        punt.Unfolding,
		faultinject.OpCoreCovers:       punt.Unfolding,
		faultinject.OpStategraphExpand: punt.Explicit,
		faultinject.OpExplicitCovers:   punt.Explicit,
		faultinject.OpSymbolicFixpoint: punt.Symbolic,
	}
	for _, op := range faultinject.EngineOps {
		op := op
		t.Run(op, func(t *testing.T) {
			inj := faultinject.New(faultinject.Rule{Op: op, AfterN: 0, Act: faultinject.ActPanic})
			ctx := faultinject.With(context.Background(), inj)
			_, err := punt.New(punt.WithEngine(engineFor[op])).Synthesize(ctx, punt.Fig1())
			if err == nil {
				// The op never fired for this spec/engine combination (e.g. a
				// tiny segment): that is a schedule miss, not a failure.
				if fired := inj.Fired(); len(fired) > 0 {
					t.Fatalf("injected panic at %v yet synthesis succeeded", fired)
				}
				t.Skipf("op %s not reached for fig1", op)
			}
			var d *punt.Diagnostic
			if !errors.As(err, &d) {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			if d.Kind != punt.KindPanic {
				t.Errorf("Kind = %v, want KindPanic", d.Kind)
			}
			var pe *punt.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want a wrapped *PanicError", err)
			}
			if _, ok := pe.Value.(faultinject.InjectedPanic); !ok {
				t.Errorf("recovered value = %#v, want the injected panic", pe.Value)
			}
		})
	}
}

// TestChaosCancellationSchedules fires a one-shot cancellation at increasing
// depths of the unfolding PE loop: every depth must yield a structured
// diagnostic and a goroutine-clean exit.
func TestChaosCancellationSchedules(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	spec := punt.MullerPipelineWithSignals(40)
	fired := 0
	for depth := 0; depth < 8; depth++ {
		inj := faultinject.New(faultinject.Rule{Op: faultinject.OpUnfoldPop, AfterN: int64(depth), Act: faultinject.ActCancel})
		ctx := faultinject.With(context.Background(), inj)
		_, err := punt.New().Synthesize(ctx, spec)
		if err == nil {
			if len(inj.Fired()) > 0 {
				t.Fatalf("depth %d: injected cancellation fired yet synthesis succeeded", depth)
			}
			// The segment ran out of checkpoints before this depth: the
			// sweep is over.
			break
		}
		fired++
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("depth %d: err = %v, want the injected fault", depth, err)
		}
		var d *punt.Diagnostic
		if !errors.As(err, &d) {
			t.Errorf("depth %d: unstructured error %T", depth, err)
		}
	}
	if fired < 2 {
		t.Fatalf("only %d cancellation depths were reachable; the spec is too small to exercise the loop", fired)
	}
}

// TestChaosParallelShardSchedules drives the sharded possible-extension pool
// through the facade: with WithWorkers(4), injected cancellations at
// increasing shard depths and an injected mid-shard panic must surface as
// structured diagnostics — never a deadlocked round, never a leaked worker
// (the LeakCheck would catch a pool that failed to quiesce).
func TestChaosParallelShardSchedules(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	spec := punt.MullerPipelineWithSignals(24)

	fired := 0
	for depth := 0; depth < 8; depth++ {
		inj := faultinject.New(faultinject.Rule{Op: faultinject.OpUnfoldShard, AfterN: int64(depth * 5), Act: faultinject.ActCancel})
		ctx := faultinject.With(context.Background(), inj)
		_, err := punt.New(punt.WithWorkers(4)).Synthesize(ctx, spec)
		if err == nil {
			if len(inj.Fired()) > 0 {
				t.Fatalf("depth %d: injected cancellation fired yet synthesis succeeded", depth)
			}
			break
		}
		fired++
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("depth %d: err = %v, want the injected fault", depth, err)
		}
		var d *punt.Diagnostic
		if !errors.As(err, &d) {
			t.Errorf("depth %d: unstructured error %T", depth, err)
		}
	}
	if fired < 2 {
		t.Fatalf("only %d shard-cancellation depths were reachable", fired)
	}

	// A worker that panics mid-shard: the pool must re-raise on the build
	// goroutine, where the backend recovery turns it into a KindPanic
	// diagnostic carrying the injected value.
	inj := faultinject.New(faultinject.Rule{Op: faultinject.OpUnfoldShard, AfterN: 9, Act: faultinject.ActPanic})
	ctx := faultinject.With(context.Background(), inj)
	_, err := punt.New(punt.WithWorkers(4)).Synthesize(ctx, spec)
	if err == nil {
		t.Fatal("injected mid-shard panic yet synthesis succeeded")
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("unstructured error %T: %v", err, err)
	}
	if d.Kind != punt.KindPanic {
		t.Errorf("Kind = %v, want KindPanic", d.Kind)
	}
	var pe *punt.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *PanicError", err)
	}
	if _, ok := pe.Value.(faultinject.InjectedPanic); !ok {
		t.Errorf("recovered value = %#v, want the injected panic", pe.Value)
	}
}
