package punt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"punt/gates"
	"punt/internal/decompose"
	"punt/internal/verify"
)

// decomposeBackend is the compositional synthesis flow behind the Backend
// interface: factor the specification into independent components, synthesize
// each through the inner engine concurrently, and recombine the covers.
//
// Two factorings are tried in order of soundness.  decompose.Split is exact —
// components share no place, transition or signal, so every component error
// is a genuine error of the whole specification (a CSC conflict inside a
// component is a CSC conflict of the full spec) and propagates directly, and
// the recombined circuit is correct by construction.  When Split finds
// nothing, decompose.Articulate looks for a dummy articulation transition;
// its projections over-approximate each side's environment, so the merged
// circuit is re-proved closed-loop against the full specification, and any
// failure along that path — a component synthesis, the recombination, the
// final verification — abandons articulation and falls back to the
// monolithic inner engine rather than failing the call.
//
// An indivisible specification delegates to the inner engine with zero
// overhead (one linear scan to discover the indivisibility) and records the
// fallthrough as a KindIndivisible informational in Result.Decomposition; the
// output is byte-identical to running the inner engine directly.
type decomposeBackend struct{}

func (decomposeBackend) Name() string { return "decompose" }

func (d decomposeBackend) Synthesize(ctx context.Context, spec *Spec, cfg BackendConfig) (*Result, error) {
	innerName := cfg.Inner
	if innerName == "" {
		innerName = Unfolding.String()
	}
	if innerName == "decompose" || innerName == "portfolio" {
		return nil, diagnose("synthesize", spec.Name(),
			fmt.Errorf("decompose cannot use %q as its inner engine", innerName))
	}
	inner, err := lookupBackend(innerName)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	if plan := decompose.Split(spec.g); plan.Divisible() {
		// The sound factoring: component outcomes, success or failure, are
		// the whole specification's outcomes.
		return synthesizeComponents(ctx, spec, plan, inner, cfg, start)
	}
	if plan := decompose.Articulate(spec.g); plan != nil {
		// The optimistic factoring: fall back to monolithic synthesis on any
		// failure — unless the caller's context expired, in which case the
		// failure is the caller's and a fallback would just burn more budget.
		res, cerr := synthesizeComponents(ctx, spec, plan, inner, cfg, start)
		if cerr == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, cerr
		}
	}

	// Indivisible: delegate unchanged.  runBackend stamps the inner engine's
	// own stats; the dispatcher above re-stamps Stats.Backend = "decompose"
	// (the backend the caller selected), and the fallthrough is recorded as
	// an informational diagnostic, never an error.
	res, err := runBackend(ctx, inner, spec, cfg)
	if err != nil {
		return nil, err
	}
	res.Decomposition = &Diagnostic{
		Op:     "synthesize",
		Spec:   spec.Name(),
		Kind:   KindIndivisible,
		Signal: innerName,
	}
	return res, nil
}

// synthesizeComponents drives one decomposition plan end to end: wrap each
// projected sub-STG as a Spec, synthesize all of them through the inner
// backend under shared cancellation (at most cfg.Workers at once), and
// recombine the per-component covers onto the full signal alphabet.  An
// articulated plan's merged circuit is additionally proved conformant,
// hazard-free and live against the FULL specification with the closed-loop
// verifier — that check is what makes the optimistic over-approximating
// projection safe.  An exact Split needs no such insurance: the components
// share no place, transition or signal, so the product of per-component
// correct circuits is correct by construction, and re-verifying would cost
// more than the decomposition saves (the whole point of factoring is never
// touching the full state space).
func synthesizeComponents(ctx context.Context, spec *Spec, plan *decompose.Plan, inner Backend, cfg BackendConfig, start time.Time) (*Result, error) {
	comps := plan.Components
	subSpecs := make([]*Spec, len(comps))
	for i := range comps {
		sp, err := wrapSpec(comps[i].Sub)
		if err != nil {
			return nil, err
		}
		subSpecs[i] = sp
	}

	// cctx aborts the siblings the moment one component fails.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := cfg.Workers
	if workers <= 0 || workers > len(comps) {
		workers = len(comps)
	}
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, workers)
		results = make([]*Result, len(comps))
		errs    = make([]error, len(comps))
		elapsed = make([]time.Duration, len(comps))
	)
	for i := range comps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				// runBackend recovers backend panics centrally; this is the
				// component goroutine's last line of defence, so a panic in
				// the bookkeeping itself can never kill the process.
				if p := recover(); p != nil {
					errs[i] = diagnose("synthesize", subSpecs[i].Name(),
						fmt.Errorf("decompose component %q panicked: %v", subSpecs[i].Name(), p))
					cancel()
				}
			}()
			select {
			case sem <- struct{}{}:
			case <-cctx.Done():
				errs[i] = diagnose("synthesize", subSpecs[i].Name(), context.Cause(cctx))
				return
			}
			defer func() { <-sem }()
			t0 := time.Now()
			res, err := runBackend(cctx, inner, subSpecs[i], cfg)
			elapsed[i] = time.Since(t0)
			results[i], errs[i] = res, err
			if err != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()

	// Errors surface in component order, so the reported diagnostic is
	// deterministic regardless of which component actually lost the race to
	// cancel its siblings.  Cancellation diagnostics are only a symptom of a
	// sibling's failure; prefer a real error when one exists.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		var diag *Diagnostic
		if errors.As(err, &diag) && diag.Kind != KindCanceled {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged, err := recombineResults(spec, plan, results)
	if err != nil {
		return nil, diagnose("synthesize", spec.Name(), err)
	}

	// The articulation shortcut is only trusted once the recombined circuit
	// provably implements the full specification.
	if comps[0].Articulated {
		vstart := time.Now()
		if _, verr := verify.Verify(ctx, spec.g, merged.Impl, verify.Options{MaxStates: cfg.MaxStates}); verr != nil {
			return nil, diagnose("synthesize", spec.Name(), verr)
		}
		merged.Stats.EspTime += time.Since(vstart)
	}
	merged.Stats.Total = time.Since(start)

	for i := range comps {
		merged.Stats.Components[i].Elapsed = elapsed[i]
	}
	return merged, nil
}

// recombineResults merges the per-component Results into one: the covers are
// widened onto the full signal alphabet by decompose.Recombine and the
// component stats are summed into the Table-1 columns (Total is stamped by
// the caller with the true wall-clock, since components ran concurrently).
func recombineResults(spec *Spec, plan *decompose.Plan, results []*Result) (*Result, error) {
	comps := plan.Components
	impls := make([]*gates.Implementation, len(results))
	for i, r := range results {
		impls[i] = r.Impl
	}
	mergedImpl, err := decompose.Recombine(spec.g, plan, impls)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Impl: mergedImpl}
	st := &res.Stats
	st.Engine = Decompose
	st.Decomposed = true
	st.Components = make([]ComponentStat, len(comps))
	for i, r := range results {
		st.UnfTime += r.Stats.UnfTime
		st.SynTime += r.Stats.SynTime
		st.EspTime += r.Stats.EspTime
		st.Events += r.Stats.Events
		st.Conditions += r.Stats.Conditions
		st.Cutoffs += r.Stats.Cutoffs
		st.States += r.Stats.States
		st.TermsRefined += r.Stats.TermsRefined
		st.SignalsRefined += r.Stats.SignalsRefined
		st.Components[i] = ComponentStat{
			Name:        comps[i].Sub.Name(),
			Backend:     r.Stats.Backend,
			Signals:     len(comps[i].Signals),
			Outputs:     comps[i].Outputs,
			Articulated: comps[i].Articulated,
			Events:      r.Stats.Events,
			States:      r.Stats.States,
			Literals:    r.Impl.Literals(),
		}
	}
	return res, nil
}

// Components reports how the decompose backend would factor spec: one entry
// per component of the plan it would synthesize, or a single entry covering
// every signal when the specification is indivisible.  The stginfo CLI
// renders this as its component report.
func Components(spec *Spec) []ComponentInfo {
	plan := decompose.Split(spec.g)
	if !plan.Divisible() {
		if art := decompose.Articulate(spec.g); art != nil {
			plan = art
		}
	}
	out := make([]ComponentInfo, len(plan.Components))
	for i, c := range plan.Components {
		info := ComponentInfo{
			Name:        c.Sub.Name(),
			Outputs:     c.Outputs,
			Articulated: c.Articulated,
			Signals:     make([]string, len(c.Signals)),
		}
		for j, s := range c.Signals {
			info.Signals[j] = spec.g.Signal(s).Name
		}
		out[i] = info
	}
	return out
}

// ComponentInfo describes one component of a decomposition plan; see
// Components.
type ComponentInfo struct {
	// Name is the projected sub-specification's name (the full
	// specification's own name when indivisible).
	Name string `json:"name"`
	// Signals lists the component's signal names in global order.
	Signals []string `json:"signals"`
	// Outputs counts the output and internal signals among them.
	Outputs int `json:"outputs"`
	// Articulated marks components split at an articulation transition.
	Articulated bool `json:"articulated,omitempty"`
}
