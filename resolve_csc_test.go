package punt_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"punt"
	"punt/internal/benchgen"
	"punt/internal/resolve"
	"punt/internal/stg"
)

// indexOf returns the position of s in list.
func indexOf(list []string, s string) (int, bool) {
	for i, v := range list {
		if v == s {
			return i, true
		}
	}
	return -1, false
}

// loadCSC loads the canonical CSC-conflicted controller of testdata.
func loadCSC(t *testing.T) *punt.Spec {
	t.Helper()
	spec, err := punt.LoadFile("testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestResolveCSCAllEngines: every registered engine (and the portfolio
// scheduler racing them) fails on the broken controller without the resolver
// and transparently succeeds with it, producing a verified circuit and the
// full resolution record.
func TestResolveCSCAllEngines(t *testing.T) {
	ctx := context.Background()
	spec := loadCSC(t)
	if _, err := punt.New().Synthesize(ctx, spec); !errors.Is(err, punt.ErrCSC) {
		t.Fatalf("without the resolver synthesis must fail with ErrCSC, got %v", err)
	}
	for _, engine := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic, punt.Portfolio} {
		res, err := punt.New(punt.WithEngine(engine), punt.WithResolveCSC(4)).Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !res.Resolved() {
			t.Fatalf("%s: result not marked as resolved", engine)
		}
		if res.Stats.CSCSignalsInserted != 1 || res.Stats.CSCIterations != 1 {
			t.Errorf("%s: stats = %s, want one signal in one iteration", engine, &res.Stats)
		}
		d := res.Resolution
		if d.Kind != punt.KindResolved || d.Signal != "csc0" || len(d.Trace) != 1 {
			t.Errorf("%s: resolution diagnostic = %+v", engine, d)
		}
		if !strings.Contains(d.Error(), "CSC resolved") {
			t.Errorf("%s: diagnostic renders %q", engine, d.Error())
		}
		// The result's Spec is the repaired specification: it declares the
		// inserted internal signal and satisfies CSC.
		if want := []string{"req", "out1", "out2", "csc0"}; strings.Join(res.Spec.SignalNames(), " ") != strings.Join(want, " ") {
			t.Errorf("%s: repaired signals = %v", engine, res.Spec.SignalNames())
		}
		sg, err := punt.BuildStateGraph(ctx, res.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if c := sg.CSCConflicts(); len(c) != 0 {
			t.Errorf("%s: repaired spec still has %d conflicts", engine, len(c))
		}
		// Closed loop: the implementation conforms to the repaired spec.
		if _, err := punt.Verify(ctx, res.Spec, res); err != nil {
			t.Errorf("%s: verify: %v", engine, err)
		}
	}
}

// TestResolveCSCStructuredConflicts exercises the structured conflict API on
// the broken controller: the pair of states, the differing outputs and the
// witness traces are all exposed.
func TestResolveCSCStructuredConflicts(t *testing.T) {
	sg, err := punt.BuildStateGraph(context.Background(), loadCSC(t))
	if err != nil {
		t.Fatal(err)
	}
	conflicts := sg.CSCConflicts()
	if len(conflicts) != 1 {
		t.Fatalf("want 1 conflict, got %d", len(conflicts))
	}
	c := conflicts[0]
	if c.Code != "100" || c.StateA == c.StateB {
		t.Errorf("conflict pair = %+v", c)
	}
	if strings.Join(c.DiffSignals, ",") != "out1,out2" {
		t.Errorf("DiffSignals = %v, want out1,out2", c.DiffSignals)
	}
	if len(c.TraceA) == len(c.TraceB) {
		t.Errorf("the witnesses must reach different phases: %v vs %v", c.TraceA, c.TraceB)
	}
	if !strings.Contains(c.String(), "CSC conflict on code 100") {
		t.Errorf("rendered conflict = %q", c.String())
	}
}

// TestResolveCSCCacheKey: the content-addressed cache must never serve a
// resolver-repaired result to a configuration without the resolver (which is
// required to fail with ErrCSC), nor across different resolver bounds.
func TestResolveCSCCacheKey(t *testing.T) {
	ctx := context.Background()
	spec := loadCSC(t)
	cache := punt.NewLRU(0)

	resolved, err := punt.New(punt.WithCache(cache), punt.WithResolveCSC(4)).Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Stats.Cached {
		t.Fatal("first run cannot be a cache hit")
	}

	// Same configuration again: a hit, with the resolution record intact.
	again, err := punt.New(punt.WithCache(cache), punt.WithResolveCSC(4)).Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.Cached {
		t.Error("identical resolver configuration must hit the cache")
	}
	if !again.Resolved() || again.Stats.CSCSignalsInserted != 1 {
		t.Error("the cached result lost its resolution record")
	}
	// The cache hit must keep the repaired Spec — the implementation realises
	// csc0, so serving it with the caller's unrepaired spec would break
	// Result.Spec's contract (and Verify below).
	if _, ok := indexOf(again.Spec.SignalNames(), "csc0"); !ok {
		t.Errorf("cached result's Spec lost the inserted signal: %v", again.Spec.SignalNames())
	}
	if _, err := punt.Verify(ctx, again.Spec, again); err != nil {
		t.Errorf("cached resolved result must verify against its own Spec: %v", err)
	}

	// No resolver: the shared cache must not leak the repaired result.
	if _, err := punt.New(punt.WithCache(cache)).Synthesize(ctx, spec); !errors.Is(err, punt.ErrCSC) {
		t.Errorf("unresolved configuration must still fail with ErrCSC, got %v", err)
	}

	// A different signal bound is a different configuration.
	other, err := punt.New(punt.WithCache(cache), punt.WithResolveCSC(6)).Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if other.Stats.Cached {
		t.Error("a different resolver bound must miss the cache")
	}

	st := cache.Stats()
	if st.Entries != 2 {
		t.Errorf("cache entries = %d, want 2 (one per resolver bound)", st.Entries)
	}
	if !strings.Contains(st.String(), "lru: 2/") {
		t.Errorf("cache stats render %q", st.String())
	}
}

// TestDiagKindStrings pins the rendered name of every diagnostic kind —
// KindResolved included — since CLIs and logs key off them.
func TestDiagKindStrings(t *testing.T) {
	want := map[punt.DiagKind]string{
		punt.KindUnknown:        "error",
		punt.KindParse:          "parse error",
		punt.KindNotSafe:        "not safe",
		punt.KindInconsistent:   "inconsistent state assignment",
		punt.KindNotSemiModular: "not semi-modular",
		punt.KindCSC:            "CSC conflict",
		punt.KindLimit:          "resource limit",
		punt.KindCanceled:       "canceled",
		punt.KindConformance:    "conformance violation",
		punt.KindHazard:         "hazard",
		punt.KindLiveness:       "lost liveness",
		punt.KindResolved:       "CSC resolved",
	}
	for kind, name := range want {
		if kind.String() != name {
			t.Errorf("%d renders %q, want %q", kind, kind.String(), name)
		}
	}
	if punt.KindResolved.IsVerification() {
		t.Error("KindResolved is informational, not a verification failure")
	}
}

// TestResolveCSCBatch: Batch items flow through the resolver individually and
// the summary counts the repaired ones.
func TestResolveCSCBatch(t *testing.T) {
	fig1, err := punt.LoadFile("testdata/fig1.g")
	if err != nil {
		t.Fatal(err)
	}
	items := []punt.BatchItem{
		{Name: "clean", Spec: fig1},
		{Name: "broken", Spec: loadCSC(t)},
	}
	results, sum := punt.Batch(context.Background(), items, punt.WithResolveCSC(4))
	if sum.Succeeded != 2 || sum.Failed != 0 {
		t.Fatalf("summary = %s", sum)
	}
	if sum.Resolved != 1 {
		t.Errorf("summary.Resolved = %d, want 1", sum.Resolved)
	}
	if results[0].Result.Resolved() {
		t.Error("the clean item must not be marked resolved")
	}
	if !results[1].Result.Resolved() {
		t.Error("the broken item must be marked resolved")
	}
	if !strings.Contains(sum.String(), "1 CSC-resolved") {
		t.Errorf("summary string = %q", sum.String())
	}
}

// TestResolveCSCBudgetTooSmall: when the signal bound cannot repair the
// specification the failure is still a CSC diagnostic, matched by the
// package sentinel.
func TestResolveCSCBudgetTooSmall(t *testing.T) {
	ctx := context.Background()
	// Find a generated specification whose repair needs at least two signals.
	for seed := int64(0); seed < 2000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		spec, err := punt.Parse(stg.Format(g))
		if err != nil {
			t.Fatal(err)
		}
		sg, err := punt.BuildStateGraph(ctx, spec, punt.WithMaxStates(100000))
		if err != nil || len(sg.CSCConflicts()) == 0 {
			continue
		}
		res, err := punt.New(punt.WithResolveCSC(punt.DefaultResolveSignals)).Synthesize(ctx, spec)
		if err != nil || res.Stats.CSCSignalsInserted < 2 {
			continue
		}
		_, err = punt.New(punt.WithResolveCSC(1)).Synthesize(ctx, spec)
		if !errors.Is(err, punt.ErrCSC) {
			t.Fatalf("seed %d: want ErrCSC with an insufficient bound, got %v", seed, err)
		}
		var diag *punt.Diagnostic
		if !errors.As(err, &diag) || diag.Kind != punt.KindCSC || diag.Op != "resolve" {
			t.Fatalf("seed %d: diagnostic = %+v", seed, diag)
		}
		var un *resolve.UnresolvedError
		if !errors.As(err, &un) {
			t.Fatalf("seed %d: the typed resolver error must be reachable, got %v", seed, err)
		}
		return
	}
	t.Fatal("no generated specification needing two signals found in range")
}

// TestResolveCSCProperty is the acceptance sweep: at least 200 RandomSTG
// seeds whose deliberate CSC gadget produced a real conflict synthesize
// successfully through WithResolveCSC, and every repaired circuit passes the
// closed-loop verifier and the differential harness (all registered engines
// against the post-insertion state-graph oracle).
func TestResolveCSCProperty(t *testing.T) {
	ctx := context.Background()
	want := 200
	if testing.Short() {
		want = 25
	}
	synth := punt.New(punt.WithResolveCSC(punt.DefaultResolveSignals), punt.WithMaxStates(200000))
	found := 0
	for seed := int64(0); found < want && seed < 20000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		spec, err := punt.Parse(stg.Format(g))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sg, err := punt.BuildStateGraph(ctx, spec, punt.WithMaxStates(200000))
		if err != nil {
			continue // state explosion on an adversarial budget
		}
		if len(sg.CSCConflicts()) == 0 {
			continue
		}
		found++
		res, err := synth.Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Resolved() || res.Stats.CSCSignalsInserted == 0 {
			t.Fatalf("seed %d: resolution not recorded", seed)
		}
		if _, err := punt.Verify(ctx, res.Spec, res); err != nil {
			t.Fatalf("seed %d: closed-loop verification: %v", seed, err)
		}
		rep, err := punt.Differential(ctx, res.Spec, punt.WithMaxStates(200000))
		if err != nil {
			t.Fatalf("seed %d: differential: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: differential disagreement on the repaired spec: %s", seed, rep)
		}
	}
	if found < want {
		t.Fatalf("only %d CSC-conflicted seeds found, want %d", found, want)
	}
	t.Logf("resolved, verified and cross-checked %d repaired specifications", found)
}
