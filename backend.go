package punt

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"punt/gates"
	"punt/internal/baseline"
	"punt/internal/core"
)

// Engine selects a synthesis engine by well-known identity.  The three
// builtin engines are registered Backends under their String() names; a
// fourth value, Portfolio, selects the racing scheduler that runs several
// backends concurrently and keeps the first success.
type Engine int

// The builtin engines plus the portfolio scheduler.
const (
	// Unfolding is the paper's PUNT flow: covers are derived from the
	// STG-unfolding segment without building the state graph (the default).
	Unfolding Engine = iota
	// Explicit is the "SIS-like" baseline: explicit state-graph enumeration.
	Explicit
	// Symbolic is the "Petrify-like" baseline: BDD-based reachability.
	Symbolic
	// Portfolio races a set of backends concurrently under a shared context
	// and returns the first success; see WithPortfolio.
	Portfolio
	// Decompose is the compositional backend: it factors the specification
	// into independent (or articulated) components, synthesizes each
	// concurrently through an inner engine, and recombines the covers; an
	// indivisible specification falls through to the inner engine unchanged.
	// See WithDecomposeInner.
	Decompose
)

// String names the engine.  Unknown values render as "engine(N)" so that a
// bad value is visible instead of being silently read as the default;
// ParseEngine is the inverse for the well-known names.
func (e Engine) String() string {
	switch e {
	case Unfolding:
		return "unfolding"
	case Explicit:
		return "explicit"
	case Symbolic:
		return "symbolic"
	case Portfolio:
		return "portfolio"
	case Decompose:
		return "decompose"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine resolves the command-line names of the engines — "unfolding",
// "explicit", "symbolic" or "portfolio" — mirroring gates.ParseArchitecture.
// ParseEngine(e.String()) round-trips for every declared Engine value.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "unfolding":
		return Unfolding, nil
	case "explicit":
		return Explicit, nil
	case "symbolic":
		return Symbolic, nil
	case "portfolio":
		return Portfolio, nil
	case "decompose":
		return Decompose, nil
	default:
		return Unfolding, fmt.Errorf("%w %q (want unfolding, explicit, symbolic, decompose or portfolio)", ErrUnknownEngine, name)
	}
}

// BackendConfig is the engine-agnostic part of a Synthesizer's configuration,
// handed to the selected Backend on every run.  Backends read the budgets
// that apply to them and ignore the rest; Progress, when non-nil, is already
// wrapped by the dispatcher so that every notification carries the backend's
// name in Progress.Engine.
type BackendConfig struct {
	// Mode selects exact or approximate cover derivation (unfolding flow).
	Mode Mode
	// Arch is the target gate architecture.
	Arch gates.Architecture
	// MaxEvents bounds the unfolding segment (0 = the engine default).
	MaxEvents int
	// MaxStates bounds explicit state-space enumeration (0 = unlimited).
	MaxStates int
	// MaxNodes bounds the symbolic engine's BDD size (0 = unlimited).
	MaxNodes int
	// Workers bounds intra-run parallelism for engines that support it (the
	// unfolding flow shards its possible-extension computation, the decompose
	// backend synthesizes this many components at once); <= 1 selects the
	// sequential path.  Parallel runs are deterministic: the output is
	// byte-identical to the sequential build.
	Workers int
	// Inner names the engine the decompose backend synthesizes components
	// with (and falls through to on indivisible specifications); empty
	// selects "unfolding".  Other backends ignore it.
	Inner string
	// Progress receives coarse notifications; may be nil.  It runs on the
	// synthesizing goroutine and must be cheap.
	Progress func(Progress)
}

// Backend is a pluggable synthesis engine.  Implementations must be safe for
// concurrent use: the same Backend value is shared by every Synthesizer that
// selects it, and the portfolio scheduler runs backends from several
// goroutines at once.  Synthesize must honour ctx cancellation promptly —
// the portfolio scheduler cancels losing contenders through it.
//
// A Backend returns a Result whose Impl is filled; the dispatcher completes
// Spec and Stats.Backend when the backend leaves them empty, and wraps any
// error into a *Diagnostic.
type Backend interface {
	// Name identifies the backend in the registry, in Stats.Backend and in
	// Progress.Engine.  It must be non-empty and unique.
	Name() string
	// Synthesize derives an implementation of spec under cfg.
	Synthesize(ctx context.Context, spec *Spec, cfg BackendConfig) (*Result, error)
}

// The package-level backend registry.  The three builtin engines are
// registered at init; Register adds more.
var (
	backendsMu sync.RWMutex
	backends   = make(map[string]Backend)
)

// Register makes a synthesis backend selectable by name through WithBackend
// (and through the portfolio scheduler's WithContenders).  It panics when the
// name is empty, reserved ("portfolio") or already taken, mirroring the
// database/sql driver registry contract.
func Register(b Backend) {
	if b == nil {
		panic("punt: Register with a nil backend")
	}
	name := b.Name()
	if name == "" {
		panic("punt: Register with an empty backend name")
	}
	if name == "portfolio" {
		panic(`punt: backend name "portfolio" is reserved for the scheduler`)
	}
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("punt: Register called twice for backend %q", name))
	}
	backends[name] = b
}

// Backends returns the names of all registered backends, sorted.
func Backends() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupBackend resolves a registered backend by name.
func lookupBackend(name string) (Backend, error) {
	backendsMu.RLock()
	b, ok := backends[name]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("punt: no backend %q registered (have %v)", name, Backends())
	}
	return b, nil
}

func init() {
	Register(unfoldingBackend{})
	Register(explicitBackend{})
	Register(symbolicBackend{})
	Register(decomposeBackend{})
}

// instrumentProgress stamps the backend name onto every notification, so
// interleaved portfolio progress stays attributable.
func instrumentProgress(p func(Progress), engine string) func(Progress) {
	if p == nil {
		return nil
	}
	return func(pr Progress) {
		pr.Engine = engine
		p(pr)
	}
}

// runBackend drives one backend and normalises its outcome: errors become
// *Diagnostic values and the Result always carries the Spec and the backend
// name.  This is the central recovery point for backend panics — every entry
// path (plain Synthesize, Batch workers, portfolio contenders) funnels
// through here, so a panicking backend yields a KindPanic diagnostic instead
// of crashing the process — and the anti-poisoning guard: a result delivered
// under an already-expired context is discarded, because the engines abandon
// work mid-loop on cancellation and a backend may race its own cancellation
// check.
func runBackend(ctx context.Context, b Backend, spec *Spec, cfg BackendConfig) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, diagnose("synthesize", spec.Name(),
				&PanicError{Backend: b.Name(), Value: p, Stack: debug.Stack()})
		}
	}()
	cfg.Progress = instrumentProgress(cfg.Progress, b.Name())
	res, err = b.Synthesize(ctx, spec, cfg)
	if err == nil && ctx.Err() != nil {
		// Never trust a result produced under an expired context: the cause
		// (the caller's cancellation or a budget trip) becomes the error.
		cause := context.Cause(ctx)
		if cause == nil {
			cause = ctx.Err()
		}
		return nil, diagnose("synthesize", spec.Name(), cause)
	}
	if err != nil {
		return nil, diagnose("synthesize", spec.Name(), err)
	}
	if res == nil || res.Impl == nil {
		return nil, diagnose("synthesize", spec.Name(),
			fmt.Errorf("backend %q returned no implementation", b.Name()))
	}
	if res.Spec == nil {
		res.Spec = spec
	}
	// The dispatcher stamps the selected backend's identity even on results a
	// delegating backend obtained elsewhere: Stats.Backend answers "which
	// registered backend did I select", not "which engine ran underneath".
	res.Stats.Backend = b.Name()
	return res, nil
}

// unfoldingBackend is the paper's PUNT flow behind the Backend interface.
type unfoldingBackend struct{}

func (unfoldingBackend) Name() string { return "unfolding" }

func (unfoldingBackend) Synthesize(ctx context.Context, spec *Spec, cfg BackendConfig) (*Result, error) {
	copts := core.Options{Mode: cfg.Mode, Arch: cfg.Arch, MaxEvents: cfg.MaxEvents, Workers: cfg.Workers}
	if p := cfg.Progress; p != nil {
		copts.Progress = func(stage, signal string, events int) {
			p(Progress{Stage: stage, Signal: signal, Events: events})
		}
	}
	im, st, err := core.New(copts).Synthesize(ctx, spec.g)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Impl: im}
	res.Stats = Stats{
		Engine:         Unfolding,
		Workers:        cfg.Workers,
		PEParallel:     cfg.Workers > 1,
		UnfTime:        st.UnfTime,
		SynTime:        st.SynTime,
		EspTime:        st.EspTime,
		Total:          st.Total,
		Events:         st.Events,
		Conditions:     st.Conditions,
		Cutoffs:        st.Cutoffs,
		TermsRefined:   st.TermsRefined,
		SignalsRefined: st.SignalsRefined,
	}
	return res, nil
}

// explicitBackend is the "SIS-like" explicit state-graph baseline behind the
// Backend interface.
type explicitBackend struct{}

func (explicitBackend) Name() string { return "explicit" }

func (explicitBackend) Synthesize(ctx context.Context, spec *Spec, cfg BackendConfig) (*Result, error) {
	eng := &baseline.ExplicitSynthesizer{
		Arch:      cfg.Arch,
		MaxStates: cfg.MaxStates,
		Progress:  baselineProgress(cfg.Progress),
	}
	im, st, err := eng.Synthesize(ctx, spec.g)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Impl: im}
	res.Stats.Engine = Explicit
	fillBaselineStats(&res.Stats, st)
	return res, nil
}

// symbolicBackend is the "Petrify-like" BDD baseline behind the Backend
// interface.
type symbolicBackend struct{}

func (symbolicBackend) Name() string { return "symbolic" }

func (symbolicBackend) Synthesize(ctx context.Context, spec *Spec, cfg BackendConfig) (*Result, error) {
	eng := &baseline.SymbolicSynthesizer{
		Arch:     cfg.Arch,
		MaxNodes: cfg.MaxNodes,
		Progress: baselineProgress(cfg.Progress),
	}
	im, st, err := eng.Synthesize(ctx, spec.g)
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Impl: im}
	res.Stats.Engine = Symbolic
	fillBaselineStats(&res.Stats, st)
	return res, nil
}

// baselineProgress adapts the public progress callback to the baseline
// engines' hook.
func baselineProgress(p func(Progress)) baseline.ProgressFunc {
	if p == nil {
		return nil
	}
	return func(stage, signal string, states int) {
		p(Progress{Stage: stage, Signal: signal, States: states})
	}
}

func fillBaselineStats(dst *Stats, st *baseline.Stats) {
	dst.UnfTime = st.BuildTime
	dst.SynTime = st.CoverTime
	dst.EspTime = st.MinimizeTime
	dst.Total = st.Total
	dst.States = st.States
}
