package punt

import (
	"context"
	"strings"
	"sync/atomic"

	"punt/internal/diskstore"
)

// The persistent cache tiers.  NewDiskCache backs the result cache with a
// content-addressed on-disk store, so warm hits survive process restarts and
// can be shared by N replicas pointing at one directory; NewTiered stacks
// the in-memory LRU in front of it, giving the access pattern of a serving
// daemon: L1 answers repeat traffic at memory speed, L2 answers after
// restarts and for keys first synthesized by another replica, and every L2
// hit is promoted into L1 on the way out.

// ContextCache is an optional extension of Cache for implementations that
// want the per-request context — cancellation and the fault-injection
// schedule travel through it.  The Synthesize cache path (and the puntd
// server) prefer these methods when a cache provides them; the plain
// Get/Put methods remain the interface every cache must implement.
type ContextCache interface {
	Cache
	GetContext(ctx context.Context, key string) (*Result, bool)
	PutContext(ctx context.Context, key string, res *Result)
}

// cacheGet consults the cache through its context-aware method when it has
// one.
func cacheGet(ctx context.Context, c Cache, key string) (*Result, bool) {
	if cc, ok := c.(ContextCache); ok {
		return cc.GetContext(ctx, key)
	}
	return c.Get(key)
}

// cachePut mirrors cacheGet for stores.
func cachePut(ctx context.Context, c Cache, key string, res *Result) {
	if cc, ok := c.(ContextCache); ok {
		cc.PutContext(ctx, key, res)
		return
	}
	c.Put(key, res)
}

// DiskCache is a Cache backed by a content-addressed on-disk store
// (punt/internal/diskstore): every entry is one checksummed file under the
// store directory, written atomically, keyed by the same spec-hash ×
// configuration key as the in-memory cache, holding the exported JSON
// serialization of the Result (EncodeResult).  Entries that fail the
// envelope checksum, the format-version check, the result decode or the
// spec-hash verification are counted as corrupt, deleted and reported as
// misses — a damaged store degrades to a cold one, it never serves damaged
// results and never fails a request.
//
// A DiskCache is safe for concurrent use by multiple goroutines and, thanks
// to the store's atomic renames, by multiple processes sharing the
// directory: the N-replica deployment behind a load balancer shares one
// store, and each replica serves the others' warm hits.
type DiskCache struct {
	store   *diskstore.Store
	corrupt atomic.Int64 // decode/hash failures; envelope damage is counted by the store
}

// NewDiskCache opens (creating if needed) a persistent result cache rooted
// at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	store, err := diskstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &DiskCache{store: store}, nil
}

// Dir returns the cache's store directory.
func (c *DiskCache) Dir() string { return c.store.Dir() }

// Get implements Cache.
func (c *DiskCache) Get(key string) (*Result, bool) {
	//puntlint:ignore ctxdiscipline Get is the context-free Cache compat surface; context-aware callers use GetContext
	return c.GetContext(context.Background(), key)
}

// Put implements Cache.
func (c *DiskCache) Put(key string, res *Result) {
	//puntlint:ignore ctxdiscipline Put is the context-free Cache compat surface; context-aware callers use PutContext
	c.PutContext(context.Background(), key, res)
}

// GetContext reads, decodes and validates the entry stored under key.
func (c *DiskCache) GetContext(ctx context.Context, key string) (*Result, bool) {
	blob, ok := c.store.Get(ctx, key)
	if !ok {
		return nil, false
	}
	res, err := DecodeResult(blob)
	if err != nil || !keyMatchesSpec(key, res) {
		// The envelope was intact but the payload is not a servable result
		// for this key: same treatment as checksum damage — count, drop,
		// miss.
		c.corrupt.Add(1)
		c.store.Delete(key)
		return nil, false
	}
	return res, true
}

// PutContext serializes res and stores it under key.  Serialization or
// write failures are swallowed (the store counts them): persistence is an
// accelerator, never a point of failure.
func (c *DiskCache) PutContext(ctx context.Context, key string, res *Result) {
	blob, err := EncodeResult(res)
	if err != nil {
		return
	}
	c.store.Put(ctx, key, blob)
}

// keyMatchesSpec cross-checks a decoded entry against its cache key: the
// key's leading component is the content hash of the specification that was
// synthesized (see Synthesizer.CacheKey), which must match the hash of the
// specification the entry carries.  A mismatch means the entry was written
// under the wrong name (or the store was tampered with) — never serve it.
// Resolver-repaired results legitimately carry the repaired specification,
// whose hash differs from the conflicted input's; their integrity is already
// covered by the decoder's own hash verification.
func keyMatchesSpec(key string, res *Result) bool {
	hash, _, ok := strings.Cut(key, "|")
	if !ok {
		return true // foreign key scheme: nothing to cross-check
	}
	if res.Resolution != nil {
		return true
	}
	return res.Spec.Hash() == hash
}

// Stats snapshots the disk tier's counters.
func (c *DiskCache) Stats() CacheStats {
	st := c.store.Stats()
	return CacheStats{
		Tier:    "disk",
		Hits:    st.Hits,
		Misses:  st.Misses,
		Corrupt: st.Corrupt + c.corrupt.Load(),
		Entries: int(st.Entries),
	}
}

// Tiered is a two-level Cache: a fast bounded front (typically the sharded
// in-memory LRU) over a large persistent back (typically a DiskCache).  Get
// consults L1 first and falls back to L2, promoting L2 hits into L1; Put
// writes through to both.  Corrupt L2 entries never reach L1: the disk tier
// validates entries before returning them, so only proven-good results are
// promoted.
type Tiered struct {
	l1, l2 Cache
	hits   atomic.Int64
	misses atomic.Int64
}

// NewTiered stacks l1 in front of l2.  Both must be non-nil; either may
// itself be context-aware.
func NewTiered(l1, l2 Cache) *Tiered {
	if l1 == nil || l2 == nil {
		panic("punt: NewTiered with a nil tier")
	}
	return &Tiered{l1: l1, l2: l2}
}

// Get implements Cache.
func (t *Tiered) Get(key string) (*Result, bool) {
	//puntlint:ignore ctxdiscipline Get is the context-free Cache compat surface; context-aware callers use GetContext
	return t.GetContext(context.Background(), key)
}

// Put implements Cache.
func (t *Tiered) Put(key string, res *Result) {
	//puntlint:ignore ctxdiscipline Put is the context-free Cache compat surface; context-aware callers use PutContext
	t.PutContext(context.Background(), key, res)
}

// GetContext consults the tiers in order, promoting a back-tier hit into
// the front tier.
func (t *Tiered) GetContext(ctx context.Context, key string) (*Result, bool) {
	if res, ok := cacheGet(ctx, t.l1, key); ok {
		t.hits.Add(1)
		return res, true
	}
	res, ok := cacheGet(ctx, t.l2, key)
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	cachePut(ctx, t.l1, key, res)
	t.hits.Add(1)
	return res, true
}

// PutContext writes through to both tiers.
func (t *Tiered) PutContext(ctx context.Context, key string, res *Result) {
	cachePut(ctx, t.l1, key, res)
	cachePut(ctx, t.l2, key, res)
}

// Stats snapshots the combined view plus the per-tier breakdown (fastest
// first) for tiers that report stats.
func (t *Tiered) Stats() CacheStats {
	st := CacheStats{Tier: "tiered", Hits: t.hits.Load(), Misses: t.misses.Load()}
	for _, tier := range []Cache{t.l1, t.l2} {
		if sp, ok := tier.(interface{ Stats() CacheStats }); ok {
			ts := sp.Stats()
			st.Entries += ts.Entries
			st.Corrupt += ts.Corrupt
			st.Evictions += ts.Evictions
			st.Tiers = append(st.Tiers, ts)
		}
	}
	return st
}
