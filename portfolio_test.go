package punt_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"punt"
	"punt/internal/faultinject"
)

func TestPortfolioDefaultRacesBuiltins(t *testing.T) {
	res, err := punt.New(punt.WithEngine(punt.Portfolio)).Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Eqn(), "b = a + c") {
		t.Errorf("portfolio result:\n%s", res.Eqn())
	}
	if len(res.Stats.Contenders) != 3 {
		t.Fatalf("contenders = %+v, want the three builtin engines", res.Stats.Contenders)
	}
	winners := 0
	for _, c := range res.Stats.Contenders {
		if c.Winner {
			winners++
			if c.Engine != res.Stats.Backend {
				t.Errorf("winner %q does not match Stats.Backend %q", c.Engine, res.Stats.Backend)
			}
		}
	}
	if winners != 1 {
		t.Errorf("exactly one contender must win, got %d", winners)
	}
	if !strings.Contains(res.Stats.String(), "portfolio=[") {
		t.Errorf("Stats.String() should carry the breakdown: %s", res.Stats.String())
	}
}

func TestPortfolioDeterministicWinnerWithOneWorker(t *testing.T) {
	// With a single worker the contenders run sequentially in the configured
	// order, so the first capable engine always wins.
	for run := 0; run < 3; run++ {
		res, err := punt.New(
			punt.WithPortfolio(punt.Explicit, punt.Unfolding, punt.Symbolic),
			punt.WithWorkers(1),
		).Synthesize(context.Background(), punt.Fig1())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Backend != "explicit" {
			t.Fatalf("run %d: winner = %q, want the first-listed explicit engine", run, res.Stats.Backend)
		}
		cs := res.Stats.Contenders
		if len(cs) != 3 || !cs[0].Winner {
			t.Fatalf("run %d: contenders = %+v", run, cs)
		}
		for _, c := range cs[1:] {
			if c.Started {
				t.Errorf("run %d: %s started although a winner already existed", run, c.Engine)
			}
		}
	}
}

func TestPortfolioCancelsLosersPromptly(t *testing.T) {
	// Race a backend that blocks until cancellation against the real
	// unfolding flow: the moment the unfolding engine wins, the sleeper must
	// be cancelled — in milliseconds, not after its two-minute timeout — and
	// no contender goroutine may outlive the call.
	defer faultinject.LeakCheck(t)()
	start := time.Now()
	res, err := punt.New(
		punt.WithContenders("test-sleeper", "unfolding"),
		punt.WithWorkers(2),
	).Synthesize(context.Background(), punt.Fig1())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "unfolding" {
		t.Fatalf("winner = %q", res.Stats.Backend)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("portfolio took %v: the losing sleeper was not cancelled promptly", elapsed)
	}
	var loser punt.Contender
	for _, c := range res.Stats.Contenders {
		if c.Engine == "test-sleeper" {
			loser = c
		}
	}
	if !loser.Started {
		t.Fatalf("sleeper never started: %+v", res.Stats.Contenders)
	}
	if !errors.Is(loser.Err, context.Canceled) {
		t.Errorf("loser error = %v, want context.Canceled", loser.Err)
	}
	theSleeper.mu.Lock()
	aborted := append([]time.Duration(nil), theSleeper.aborted...)
	theSleeper.mu.Unlock()
	if len(aborted) == 0 {
		t.Fatal("sleeper did not record its cancellation")
	}
	// The sleeper's wait is bounded by the winner's synthesis time plus
	// scheduler noise; on any machine that is well under a second for Fig1.
	if last := aborted[len(aborted)-1]; last > 2*time.Second {
		t.Errorf("sleeper waited %v for cancellation", last)
	}
}

func TestPortfolioSurvivesPanickingContender(t *testing.T) {
	res, err := punt.New(
		punt.WithContenders("test-panic", "unfolding"),
		punt.WithWorkers(2),
	).Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "unfolding" {
		t.Fatalf("winner = %q", res.Stats.Backend)
	}
	for _, c := range res.Stats.Contenders {
		if c.Engine == "test-panic" && c.Err != nil && !strings.Contains(c.Err.Error(), "panicked") {
			t.Errorf("panicking contender error = %v", c.Err)
		}
	}
}

func TestPortfolioAllFailReturnsFirstDiagnostic(t *testing.T) {
	// Both contenders run out of budget; the error must be the first-listed
	// contender's diagnostic, deterministically.
	_, err := punt.New(
		punt.WithPortfolio(punt.Unfolding, punt.Explicit),
		punt.WithMaxEvents(3),
		punt.WithMaxStates(2),
	).Synthesize(context.Background(), punt.MullerPipeline(8))
	if err == nil {
		t.Fatal("portfolio must fail when every contender fails")
	}
	if !errors.Is(err, punt.ErrEventLimit) {
		t.Errorf("error = %v, want the first contender's (unfolding) event-limit diagnostic", err)
	}
	if !errors.Is(err, punt.ErrLimit) {
		t.Errorf("budget overruns must match the unified ErrLimit: %v", err)
	}
}

func TestPortfolioRejectsBadContenderSets(t *testing.T) {
	ctx := context.Background()
	if _, err := punt.New(punt.WithContenders("portfolio")).Synthesize(ctx, punt.Fig1()); err == nil ||
		!strings.Contains(err.Error(), "race itself") {
		t.Errorf("self-racing portfolio: %v", err)
	}
	if _, err := punt.New(punt.WithContenders("unfolding", "unfolding")).Synthesize(ctx, punt.Fig1()); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate contender: %v", err)
	}
	if _, err := punt.New(punt.WithContenders("no-such-engine")).Synthesize(ctx, punt.Fig1()); err == nil ||
		!strings.Contains(err.Error(), "no backend") {
		t.Errorf("unknown contender: %v", err)
	}
}

func TestPortfolioProgressAttribution(t *testing.T) {
	var mu sync.Mutex
	engines := make(map[string]bool)
	res, err := punt.New(
		punt.WithEngine(punt.Portfolio),
		punt.WithProgress(func(p punt.Progress) {
			mu.Lock()
			engines[p.Engine] = true
			mu.Unlock()
		}),
	).Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if engines[""] {
		t.Error("portfolio progress delivered without an Engine attribution")
	}
	if !engines[res.Stats.Backend] {
		t.Errorf("no progress attributed to the winner %q: %v", res.Stats.Backend, engines)
	}
	for e := range engines {
		switch e {
		case "unfolding", "explicit", "symbolic":
		default:
			t.Errorf("progress from unexpected engine %q", e)
		}
	}
}

// TestPortfolioVerifiedOnTable1 is the acceptance check: portfolio-mode
// synthesis of every Table 1 specification passes the closed-loop
// verification.
func TestPortfolioVerifiedOnTable1(t *testing.T) {
	synth := punt.New(punt.WithEngine(punt.Portfolio))
	for _, item := range punt.Table1() {
		item := item
		t.Run(item.Name, func(t *testing.T) {
			if testing.Short() && item.Spec.NumSignals() > 12 {
				t.Skip("short mode")
			}
			res, err := synth.Synthesize(context.Background(), item.Spec)
			if err != nil {
				t.Fatalf("portfolio synthesis: %v", err)
			}
			if len(res.Stats.Contenders) == 0 {
				t.Fatal("no contender breakdown recorded")
			}
			if _, err := punt.Verify(context.Background(), item.Spec, res); err != nil {
				t.Errorf("verification: %v", err)
			}
		})
	}
}
