package punt_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"punt"
)

func TestCacheWarmHitMeasurablyFasterThanCold(t *testing.T) {
	// The content-addressed cache must turn a repeated synthesis into a
	// lookup: the warm run may cost a fraction of the cold one.
	text := punt.MullerPipelineWithSignals(22).Text()
	cache := punt.NewLRU(8)
	synth := punt.New(punt.WithCache(cache))

	cold, err := punt.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	coldRes, err := synth.Synthesize(context.Background(), cold)
	coldTime := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Stats.Cached {
		t.Fatal("first synthesis cannot be a cache hit")
	}

	// Re-parse: a different *Spec with the same content must hit.
	warm, err := punt.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	warmRes, err := synth.Synthesize(context.Background(), warm)
	warmTime := time.Since(t1)
	if err != nil {
		t.Fatal(err)
	}
	if !warmRes.Stats.Cached {
		t.Fatal("repeated synthesis of identical content must be served from the cache")
	}
	if warmRes.Spec != warm {
		t.Error("a cache hit must carry the requesting call's own Spec")
	}
	if warmRes.Eqn() != coldRes.Eqn() || warmRes.Literals() != coldRes.Literals() {
		t.Error("cached result differs from the original")
	}
	// The cold run synthesises a 22-signal pipeline (milliseconds); the warm
	// run is a sharded map lookup (microseconds).  A factor of 4 leaves huge
	// scheduling headroom while still proving the point.
	if warmTime*4 > coldTime {
		t.Errorf("warm hit %v is not measurably faster than cold %v", warmTime, coldTime)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestCacheKeyDiscriminatesConfiguration(t *testing.T) {
	// One shared cache, distinct configurations: every configuration change
	// that can alter the result must miss; repeating a configuration must hit.
	spec := punt.Fig1()
	cache := punt.NewLRU(0)
	ctx := context.Background()
	configs := [][]punt.Option{
		{punt.WithCache(cache)},
		{punt.WithCache(cache), punt.WithMode(punt.Exact)},
		{punt.WithCache(cache), punt.WithEngine(punt.Explicit)},
		{punt.WithCache(cache), punt.WithEngine(punt.Portfolio)},
		{punt.WithCache(cache), punt.WithMaxEvents(100)},
	}
	for i, opts := range configs {
		res, err := punt.New(opts...).Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if res.Stats.Cached {
			t.Errorf("config %d: distinct configuration must not hit the cache", i)
		}
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != int64(len(configs)) {
		t.Fatalf("after distinct configs: %+v", st)
	}
	// Re-running every configuration hits.
	for i, opts := range configs {
		res, err := punt.New(opts...).Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("config %d again: %v", i, err)
		}
		if !res.Stats.Cached {
			t.Errorf("config %d: identical configuration must hit", i)
		}
	}
	st = cache.Stats()
	if st.Hits != int64(len(configs)) {
		t.Fatalf("after repeats: %+v", st)
	}
	// Workers and progress are scheduling/observability knobs: they must not
	// split the key.
	res, err := punt.New(punt.WithCache(cache), punt.WithWorkers(7),
		punt.WithProgress(func(punt.Progress) {})).Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Cached {
		t.Error("WithWorkers/WithProgress must not change the cache key")
	}
}

func TestLRUBoundsAndEviction(t *testing.T) {
	cache := punt.NewLRU(16)
	res := &punt.Result{}
	for i := 0; i < 500; i++ {
		cache.Put(fmt.Sprintf("key-%d", i), res)
	}
	st := cache.Stats()
	if st.Entries == 0 || st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	// Overwriting an existing key must not grow the cache.
	before := cache.Stats().Entries
	cache.Put("key-499", res)
	if after := cache.Stats().Entries; after != before {
		t.Errorf("overwrite grew the cache: %d -> %d", before, after)
	}
	// Nil results are ignored.
	cache.Put("nil-entry", nil)
	if _, ok := cache.Get("nil-entry"); ok {
		t.Error("nil results must not be stored")
	}
}

func TestSpecHashContentAddressing(t *testing.T) {
	a := punt.Fig1()
	b := punt.Fig1()
	if a.Hash() == "" || a.Hash() != b.Hash() {
		t.Errorf("two loads of the same spec must share a hash: %q vs %q", a.Hash(), b.Hash())
	}
	other := punt.Handshake()
	if other.Hash() == a.Hash() {
		t.Error("different specifications must not collide")
	}
	reparsed, err := punt.Parse(a.Text())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Hash() != a.Hash() {
		t.Error("Text round trip must preserve the content hash")
	}
}

// TestBatchSharedCacheStress drives concurrent Batch workers over repeated
// shared Specs through one shared cache; run under -race it is the
// concurrency stress of the caching layer.
func TestBatchSharedCacheStress(t *testing.T) {
	specs := []*punt.Spec{punt.Fig1(), punt.Handshake(), punt.MullerPipeline(4)}
	var items []punt.BatchItem
	for round := 0; round < 8; round++ {
		for i, s := range specs {
			items = append(items, punt.BatchItem{Name: fmt.Sprintf("r%d-s%d", round, i), Spec: s})
		}
	}
	cache := punt.NewLRU(64)
	results, sum := punt.Batch(context.Background(), items,
		punt.WithCache(cache), punt.WithWorkers(8))
	if sum.Failed != 0 || sum.Succeeded != len(items) {
		t.Fatalf("summary = %+v", sum)
	}
	cachedCount := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Result.Stats.Cached {
			cachedCount++
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || cachedCount == 0 {
		t.Fatalf("no cache hits under Batch: stats=%+v cached=%d", st, cachedCount)
	}
	if st.Entries > len(specs) {
		t.Errorf("cache holds %d entries for %d distinct specs", st.Entries, len(specs))
	}
	// Every item of one spec must agree on the implementation.
	for i, r := range results {
		if want := results[i%len(specs)]; r.Result.Eqn() != want.Result.Eqn() {
			t.Errorf("%s: cached result diverged from first round", r.Name)
		}
	}
}
