package punt

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"punt/gates"
)

// The exported JSON round-trip of Result, Stats and Diagnostic.  One
// serializer covers both transports: the puntd HTTP API sends these bytes on
// the wire and the persistent result store writes the very same bytes to
// disk, so a warm entry can be served to a remote client without ever being
// re-encoded.  The format is versioned (ResultFormatVersion) and strictly
// validated on decode — a truncated or tampered document fails DecodeResult
// instead of producing a half-usable Result.

// ResultFormatVersion is the serialization format written by EncodeResult
// and accepted by DecodeResult.  It changes only when the wire shape changes
// incompatibly; readers reject documents from other versions, which the
// cache layers then treat as misses (an old store is re-warmed, never
// misread).
const ResultFormatVersion = 1

// resultWire is the serialized shape of a Result.  The specification
// travels as its canonical ".g" text plus its content hash: the decoder
// re-parses the text and verifies the hash, so a Result read back from disk
// is exactly as trustworthy as one synthesized in-process.
type resultWire struct {
	Format      int             `json:"format"`
	Spec        string          `json:"spec"`
	SpecHash    string          `json:"spec_hash"`
	Impl        json.RawMessage `json:"impl"`
	Stats       Stats           `json:"stats"`
	Resolution  *Diagnostic     `json:"resolution,omitempty"`
	Degradation *Diagnostic     `json:"degradation,omitempty"`
}

// MarshalJSON renders the result in the versioned wire format shared by the
// HTTP API and the on-disk result store.
func (r *Result) MarshalJSON() ([]byte, error) {
	if r.Spec == nil || r.Impl == nil {
		return nil, fmt.Errorf("%w: cannot marshal an incomplete Result", ErrFormat)
	}
	impl, err := json.Marshal(r.Impl)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resultWire{
		Format:      ResultFormatVersion,
		Spec:        r.Spec.Text(),
		SpecHash:    r.Spec.Hash(),
		Impl:        impl,
		Stats:       r.Stats,
		Resolution:  r.Resolution,
		Degradation: r.Degradation,
	})
}

// UnmarshalJSON parses and validates the wire format: the format version
// must match, the embedded specification must re-parse to the recorded
// content hash, and the implementation must pass its structural integrity
// checks.  Any violation fails the decode — the cache layers turn that into
// a miss.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Format != ResultFormatVersion {
		return fmt.Errorf("%w: result format %d, this reader speaks %d", ErrFormat, w.Format, ResultFormatVersion)
	}
	spec, err := Parse(w.Spec)
	if err != nil {
		return fmt.Errorf("punt: result carries an unparseable specification: %w", err)
	}
	if w.SpecHash != "" && spec.Hash() != w.SpecHash {
		return fmt.Errorf("%w: result specification hash mismatch (recorded %.12s…, got %.12s…)",
			ErrFormat, w.SpecHash, spec.Hash())
	}
	if len(w.Impl) == 0 {
		return fmt.Errorf("%w: result carries no implementation", ErrFormat)
	}
	impl := new(gates.Implementation)
	if err := json.Unmarshal(w.Impl, impl); err != nil {
		return err
	}
	if err := impl.Validate(); err != nil {
		return fmt.Errorf("punt: result implementation fails validation: %w", err)
	}
	r.Spec = spec
	r.Impl = impl
	r.Stats = w.Stats
	r.Resolution = w.Resolution
	r.Degradation = w.Degradation
	return nil
}

// EncodeResult serializes a result into the shared wire/disk format.
func EncodeResult(res *Result) ([]byte, error) {
	return json.Marshal(res)
}

// DecodeResult parses and validates a document written by EncodeResult.
func DecodeResult(data []byte) (*Result, error) {
	res := new(Result)
	if err := json.Unmarshal(data, res); err != nil {
		return nil, err
	}
	return res, nil
}

// MarshalJSON renders the engine by its String() name; the wire format never
// depends on the numeric constant order.
func (e Engine) MarshalJSON() ([]byte, error) {
	switch e {
	case Unfolding, Explicit, Symbolic, Portfolio:
		return json.Marshal(e.String())
	default:
		return nil, fmt.Errorf("%w %d: not a marshalable value", ErrUnknownEngine, int(e))
	}
}

// UnmarshalJSON parses the engine name written by MarshalJSON.
func (e *Engine) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParseEngine(name)
	if err != nil {
		return err
	}
	*e = parsed
	return nil
}

// contenderWire is the serialized shape of a portfolio Contender; the error
// travels as its rendered message.
type contenderWire struct {
	Engine  string        `json:"engine"`
	Winner  bool          `json:"winner,omitempty"`
	Started bool          `json:"started,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	Error   string        `json:"error,omitempty"`
}

// MarshalJSON renders the contender outcome.
func (c Contender) MarshalJSON() ([]byte, error) {
	w := contenderWire{Engine: c.Engine, Winner: c.Winner, Started: c.Started, Elapsed: c.Elapsed}
	if c.Err != nil {
		w.Error = c.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses a contender outcome; a recorded error message comes
// back as an opaque error value.
func (c *Contender) UnmarshalJSON(data []byte) error {
	var w contenderWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = Contender{Engine: w.Engine, Winner: w.Winner, Started: w.Started, Elapsed: w.Elapsed}
	if w.Error != "" {
		c.Err = errors.New(w.Error)
	}
	return nil
}

// diagnosticWire is the serialized shape of a Diagnostic.  Kind travels as
// the numeric classifier (the value errors.Is matching is defined over) plus
// its rendered name for human readers; the underlying engine error travels
// as its message.
type diagnosticWire struct {
	Op       string    `json:"op,omitempty"`
	Spec     string    `json:"spec,omitempty"`
	Kind     DiagKind  `json:"kind"`
	KindName string    `json:"kind_name,omitempty"`
	Signal   string    `json:"signal,omitempty"`
	Place    string    `json:"place,omitempty"`
	Trace    []string  `json:"trace,omitempty"`
	Attempts []Attempt `json:"attempts,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// MarshalJSON renders the diagnostic with its structure intact — Kind,
// Signal, Place, Trace and the attempt ladder all survive the wire, so a
// remote client can branch on them exactly like a local caller.
func (d *Diagnostic) MarshalJSON() ([]byte, error) {
	w := diagnosticWire{
		Op:       d.Op,
		Spec:     d.Spec,
		Kind:     d.Kind,
		KindName: d.Kind.String(),
		Signal:   d.Signal,
		Place:    d.Place,
		Trace:    d.Trace,
		Attempts: d.Attempts,
	}
	if d.Err != nil {
		w.Error = d.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses a diagnostic.  The recorded engine error comes back
// as an opaque error value; errors.Is against the unified sentinels (ErrCSC,
// ErrLimit, ErrBudget, ErrVerification) still works, because Diagnostic.Is
// matches on Kind.
func (d *Diagnostic) UnmarshalJSON(data []byte) error {
	var w diagnosticWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = Diagnostic{
		Op:       w.Op,
		Spec:     w.Spec,
		Kind:     w.Kind,
		Signal:   w.Signal,
		Place:    w.Place,
		Trace:    w.Trace,
		Attempts: w.Attempts,
	}
	if w.Error != "" {
		d.Err = errors.New(w.Error)
	}
	return nil
}
