package punt_test

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"punt"
	"punt/gates"
)

// The facade tests exercise the package exactly as an external module would:
// through the exported API only.

func TestQuickstartThroughFacade(t *testing.T) {
	res, err := punt.New().Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Eqn(), "b = a + c") {
		t.Errorf("Figure 1 cover changed:\n%s", res.Eqn())
	}
	if res.Stats.Engine != punt.Unfolding || res.Stats.Events != 8 || res.Stats.Cutoffs != 2 {
		t.Errorf("unexpected stats: %+v", res.Stats)
	}
	if g, ok := res.Gate("b"); !ok || g.Literals() != 2 {
		t.Errorf("gate b: ok=%v gate=%+v", ok, g)
	}
	if res.Literals() != 2 {
		t.Errorf("literals = %d", res.Literals())
	}
}

func TestLoadFileAndParseAgree(t *testing.T) {
	fromFile, err := punt.LoadFile("testdata/fig1.g")
	if err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile("testdata/fig1.g")
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := punt.Parse(string(text))
	if err != nil {
		t.Fatal(err)
	}
	fromReader, err := punt.Load(strings.NewReader(string(text)))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []*punt.Spec{fromFile, fromText, fromReader} {
		if spec.Name() != "paper-fig1" || spec.NumSignals() != 3 {
			t.Fatalf("spec = %s with %d signals", spec.Name(), spec.NumSignals())
		}
	}
	// The formatter round-trips.
	again, err := punt.Parse(fromFile.Text())
	if err != nil {
		t.Fatalf("Text() does not re-parse: %v", err)
	}
	if again.Text() != fromFile.Text() {
		t.Error("Text() is not a fixpoint under re-parsing")
	}
}

func TestParseDiagnostic(t *testing.T) {
	_, err := punt.Parse(".model broken\n.bogus directive\n.end\n")
	var diag *punt.Diagnostic
	if !errors.As(err, &diag) {
		t.Fatalf("parse error is not a *Diagnostic: %v", err)
	}
	if diag.Kind != punt.KindParse {
		t.Errorf("kind = %v, want KindParse", diag.Kind)
	}
}

func TestNonSemiModularDiagnostic(t *testing.T) {
	spec, err := punt.LoadFile("testdata/nonsm.g")
	if err != nil {
		t.Fatal(err)
	}
	_, err = punt.New().Synthesize(context.Background(), spec)
	if !errors.Is(err, punt.ErrNotSemiModular) {
		t.Fatalf("errors.Is(ErrNotSemiModular) = false for %v", err)
	}
	var diag *punt.Diagnostic
	if !errors.As(err, &diag) {
		t.Fatalf("not a *Diagnostic: %v", err)
	}
	if diag.Kind != punt.KindNotSemiModular {
		t.Errorf("kind = %v", diag.Kind)
	}
	if diag.Place != "p" {
		t.Errorf("diagnostic should carry the shared choice place, got %q", diag.Place)
	}
	if len(diag.Trace) == 0 || !strings.Contains(diag.Trace[0], "can be disabled by") {
		t.Errorf("diagnostic trace should carry the violation: %v", diag.Trace)
	}
}

func TestCSCDiagnosticAcrossEngines(t *testing.T) {
	spec, err := punt.LoadFile("testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic} {
		_, err := punt.New(punt.WithBaseline(engine)).Synthesize(context.Background(), spec)
		if !errors.Is(err, punt.ErrCSC) {
			t.Errorf("%v: errors.Is(ErrCSC) = false for %v", engine, err)
		}
		var diag *punt.Diagnostic
		if !errors.As(err, &diag) || diag.Kind != punt.KindCSC {
			t.Errorf("%v: diagnostic = %+v", engine, diag)
		}
	}
}

func TestEventLimitDiagnostic(t *testing.T) {
	_, err := punt.New(punt.WithMaxEvents(3)).Synthesize(context.Background(), punt.MullerPipeline(8))
	if !errors.Is(err, punt.ErrEventLimit) {
		t.Fatalf("errors.Is(ErrEventLimit) = false for %v", err)
	}
	if !errors.Is(err, punt.ErrLimit) {
		t.Errorf("every budget overrun should match the unified ErrLimit: %v", err)
	}
}

func TestUnsafeNetDiagnostic(t *testing.T) {
	// Two unmarked producers into one place make the place 2-bounded.
	spec, err := punt.Parse(`
.model unsafe
.inputs a
.outputs b
.graph
a+ p
b+ p
p a-
a- b-
b- a+ b+
.marking { <b-,a+> <b-,b+> }
.initial_state 00
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = punt.New().Synthesize(context.Background(), spec)
	if !errors.Is(err, punt.ErrNotSafe) {
		t.Fatalf("errors.Is(ErrNotSafe) = false for %v", err)
	}
	var diag *punt.Diagnostic
	if !errors.As(err, &diag) || diag.Kind != punt.KindNotSafe || diag.Place == "" {
		t.Errorf("diagnostic = %+v", diag)
	}
}

func TestBaselinesMatchUnfoldingLiterals(t *testing.T) {
	spec := punt.MullerPipeline(4)
	var literals []int
	for _, engine := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic} {
		res, err := punt.New(punt.WithBaseline(engine)).Synthesize(context.Background(), spec)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		literals = append(literals, res.Literals())
		if engine != punt.Unfolding && res.Stats.States == 0 {
			t.Errorf("%v: no state count reported", engine)
		}
	}
	if literals[0] != literals[1] || literals[1] != literals[2] {
		t.Errorf("engines disagree on literal count: %v", literals)
	}
}

func TestArchitecturesThroughFacade(t *testing.T) {
	for _, arch := range []gates.Architecture{gates.ComplexGate, gates.StandardC, gates.RSLatch} {
		res, err := punt.New(punt.WithArch(arch)).Synthesize(context.Background(), punt.Handshake())
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if len(res.Impl.Gates) == 0 {
			t.Fatalf("%v: no gates", arch)
		}
		if res.Impl.Gates[0].Arch != arch {
			t.Errorf("gate arch = %v, want %v", res.Impl.Gates[0].Arch, arch)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var stages []string
	var signals []string
	_, err := punt.New(punt.WithProgress(func(p punt.Progress) {
		stages = append(stages, p.Stage)
		if p.Stage == "covers" {
			signals = append(signals, p.Signal)
		}
	})).Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Fatal("no progress delivered")
	}
	found := false
	for _, s := range signals {
		if s == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("the covers stage should name signal b: stages=%v signals=%v", stages, signals)
	}

	// The baselines deliver progress through the same option.
	for _, engine := range []punt.Engine{punt.Explicit, punt.Symbolic} {
		var built, covered bool
		_, err := punt.New(
			punt.WithBaseline(engine),
			punt.WithProgress(func(p punt.Progress) {
				switch p.Stage {
				case "build":
					built = p.States == 8
				case "covers":
					covered = covered || p.Signal == "b"
				}
			}),
		).Synthesize(context.Background(), punt.Fig1())
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !built || !covered {
			t.Errorf("%v: progress incomplete: build-with-8-states=%v covers-b=%v", engine, built, covered)
		}
	}
}

func TestUnfoldAndStateGraphWrappers(t *testing.T) {
	ctx := context.Background()
	spec := punt.Fig1()
	seg, err := punt.Unfold(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := seg.Stats()
	if st.Events != 8 || st.Cutoffs != 2 {
		t.Errorf("segment stats = %+v", st)
	}
	if !strings.Contains(seg.Dump(), "a+:e1") {
		t.Errorf("dump looks wrong:\n%s", seg.Dump())
	}
	if v := seg.SemiModularityViolations(); len(v) != 0 {
		t.Errorf("Figure 1 is semi-modular, got %v", v)
	}
	sg, err := punt.BuildStateGraph(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 8 {
		t.Errorf("states = %d, want 8", sg.NumStates())
	}
	if !strings.Contains(sg.Report(), "CSC: ok") {
		t.Errorf("report:\n%s", sg.Report())
	}
	if c := sg.CSCConflicts(); len(c) != 0 {
		t.Errorf("conflicts = %v", c)
	}
}
