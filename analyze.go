package punt

import (
	"context"

	"punt/internal/stategraph"
	"punt/internal/unfolding"
)

// SegmentStats summarises the size of an unfolding segment (events,
// conditions, cut-offs).
type SegmentStats = unfolding.Stats

// Segment is the finite STG-unfolding segment of a specification: the
// truncated occurrence-net prefix the synthesis flow derives covers from.
type Segment struct {
	spec *Spec
	u    *unfolding.Unfolding
}

// Unfold builds the STG-unfolding segment of spec.  WithMaxEvents bounds the
// construction; ctx cancellation aborts it promptly.
func Unfold(ctx context.Context, spec *Spec, opts ...Option) (*Segment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	uopts := unfolding.Options{MaxEvents: cfg.maxEvents, Workers: cfg.workers}
	if p := cfg.progress; p != nil {
		uopts.Progress = func(events int) { p(Progress{Stage: "unfold", Events: events}) }
	}
	u, err := unfolding.Build(ctx, spec.g, uopts)
	if err != nil {
		return nil, diagnose("unfold", spec.Name(), err)
	}
	return &Segment{spec: spec, u: u}, nil
}

// Spec returns the specification the segment was built from.
func (s *Segment) Spec() *Spec { return s.spec }

// Stats returns size statistics of the segment.
func (s *Segment) Stats() SegmentStats { return s.u.Statistics() }

// Dump renders every event of the segment with its binary code, preset,
// postset and cut-off status, mirroring the figures of the paper.
func (s *Segment) Dump() string { return s.u.Dump() }

// SemiModularityViolations returns the potential semi-modularity (output
// persistency) violations detected structurally on the segment, rendered for
// diagnostics.  An implementable specification returns none.
func (s *Segment) SemiModularityViolations() []string {
	vs := s.u.CheckSemiModularity()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// StateGraph is the explicit state graph of a specification, exposed for the
// correctness analyses the paper's Section 2 requires (and for comparison
// against the unfolding segment).
type StateGraph struct {
	spec *Spec
	sg   *stategraph.Graph
}

// BuildStateGraph explores the reachable state space of spec.  WithMaxStates
// bounds the exploration (failing with ErrLimit beyond it); ctx cancellation
// aborts it promptly.
func BuildStateGraph(ctx context.Context, spec *Spec, opts ...Option) (*StateGraph, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	sgopts := stategraph.Options{MaxStates: cfg.maxStates}
	if p := cfg.progress; p != nil {
		sgopts.Progress = func(states int) { p(Progress{Stage: "build", States: states}) }
	}
	sg, err := stategraph.Build(ctx, spec.g, sgopts)
	if err != nil {
		return nil, diagnose("stategraph", spec.Name(), err)
	}
	return &StateGraph{spec: spec, sg: sg}, nil
}

// Spec returns the specification the state graph was built from.
func (g *StateGraph) Spec() *Spec { return g.spec }

// NumStates returns the number of reachable states.
func (g *StateGraph) NumStates() int { return g.sg.NumStates() }

// Report summarises all correctness checks (deadlocks, output persistency,
// USC, CSC) in a human-readable form.
func (g *StateGraph) Report() string { return g.sg.Report() }

// CSCConflict is one structured Complete State Coding conflict: two reachable
// states sharing a binary code but disagreeing on the excited outputs.  It
// carries the conflicting state pair, the output signals whose excitation
// differs, and shortest witness traces from the initial state to each state;
// String renders the conventional one-line description.
type CSCConflict = stategraph.CSCConflict

// CSCConflicts returns every Complete State Coding conflict of the state
// graph as structured values (render one with its String method).  An
// implementable specification returns none; the CSC resolver behind
// WithResolveCSC consumes exactly this analysis.
func (g *StateGraph) CSCConflicts() []CSCConflict {
	return g.sg.CheckCSC()
}
