package punt

import (
	"container/list"
	"fmt"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache is the pluggable synthesis result cache behind WithCache.
// Implementations must be safe for concurrent use: Batch workers and
// concurrent Synthesizers share one cache.  Keys are opaque strings derived
// from the specification's content hash and the canonicalised engine
// configuration (see Synthesizer.cacheKey); values are successful Results,
// treated as immutable by every caller.
type Cache interface {
	// Get returns the cached result for key, if any.
	Get(key string) (*Result, bool)
	// Put stores a successful result under key.
	Put(key string, res *Result)
}

// cacheKey derives the content-addressed cache key of one synthesis request:
// the specification hash crossed with every configuration field that can
// change the result.  Workers and the progress callback are deliberately
// excluded — they affect scheduling and observability, never the
// implementation.  The budgets (WithDeadline/WithMemoryBudget) and the
// WithFallback ladder are excluded too: only primary-configuration,
// non-degraded results are ever stored, and those are deterministic in the
// fields below regardless of how much budget it took to produce them.
func (s *Synthesizer) cacheKey(spec *Spec) string {
	sel := s.cfg.selection()
	// The resolver bound is part of the key: a result synthesised from a
	// resolver-repaired specification (extra internal signals, different
	// implementation) must never be served for a configuration that would
	// have failed with ErrCSC, and vice versa.  The decompose inner engine is
	// part of the key for the same reason: decompose-over-explicit and
	// decompose-over-unfolding produce different implementations and must
	// never collide.
	return fmt.Sprintf("%s|mode=%d|arch=%d|me=%d|ms=%d|mn=%d|rcsc=%d|decomp=%s|sel=%s",
		spec.Hash(), s.cfg.mode, s.cfg.arch, s.cfg.maxEvents, s.cfg.maxStates, s.cfg.maxNodes, s.cfg.resolveCSC, s.cfg.inner, sel)
}

// cachedResult adapts a cache hit to the requesting call: the implementation
// and stats are shared (both immutable), the Spec is the caller's own and
// Stats.Cached marks the result as served from the cache.  A resolver-repaired
// result keeps the stored repaired Spec instead — the implementation realises
// and verifies against the post-insertion specification, not the caller's
// conflicted one, and Result.Spec promises exactly that.
func cachedResult(res *Result, spec *Spec) *Result {
	cp := *res
	if cp.Resolution == nil {
		cp.Spec = spec
	}
	cp.Stats.Cached = true
	return &cp
}

// CacheStats is a point-in-time cache effectiveness snapshot.  Every cache
// of the package reports one: the in-memory LRU, the persistent DiskCache
// and the Tiered combination, whose Tiers field carries the per-tier
// breakdown the /v1/stats endpoint of puntd serves.
type CacheStats struct {
	// Tier names the reporting cache layer: "lru", "disk", or "tiered" for
	// the combined view.
	Tier string `json:"tier,omitempty"`
	// Hits and Misses count Get outcomes since the cache was created.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced by the capacity bound (LRU only).
	Evictions int64 `json:"evictions,omitempty"`
	// Corrupt counts entries that existed but failed validation and were
	// treated as misses — checksum damage at the disk layer, decode or
	// hash-verification failures at the result layer.  Corrupt entries are
	// dropped, never served and never promoted into a faster tier.
	Corrupt int64 `json:"corrupt,omitempty"`
	// Entries is the number of results currently held.
	Entries int `json:"entries"`
	// Capacity is the configured entry bound (0 = unbounded, as on disk).
	Capacity int `json:"capacity,omitempty"`
	// Tiers is the per-tier breakdown of a Tiered cache, fastest first.
	Tiers []CacheStats `json:"tiers,omitempty"`
}

// String summarises the snapshot.
func (s CacheStats) String() string {
	var sb strings.Builder
	name := s.Tier
	if name == "" {
		name = "cache"
	}
	if s.Capacity > 0 {
		fmt.Fprintf(&sb, "%s: %d/%d entries, %d hits, %d misses", name, s.Entries, s.Capacity, s.Hits, s.Misses)
	} else {
		fmt.Fprintf(&sb, "%s: %d entries, %d hits, %d misses", name, s.Entries, s.Hits, s.Misses)
	}
	if s.Evictions > 0 {
		fmt.Fprintf(&sb, ", %d evictions", s.Evictions)
	}
	if s.Corrupt > 0 {
		fmt.Fprintf(&sb, ", %d corrupt", s.Corrupt)
	}
	for _, tier := range s.Tiers {
		fmt.Fprintf(&sb, "; %s", tier)
	}
	return sb.String()
}

// DefaultCacheCapacity is the entry bound NewLRU applies when given a
// non-positive capacity.
const DefaultCacheCapacity = 1024

// cacheShards fixes the shard count of the builtin LRU; a power of two so
// the hash distributes with a mask.
const cacheShards = 16

// LRU is the builtin Cache: an in-memory, sharded, least-recently-used map
// bounded to a fixed number of entries.  Keys are distributed over 16
// independently locked shards, so concurrent Batch workers do not serialise
// on one mutex; each shard evicts its least recently used entry when full.
// The zero value is not usable — construct with NewLRU.
type LRU struct {
	seed      maphash.Seed
	shards    [cacheShards]lruShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type lruShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	res *Result
}

// NewLRU returns an empty sharded LRU cache bounded to about capacity
// entries in total (DefaultCacheCapacity when capacity <= 0; the bound is
// rounded up to a multiple of the shard count).
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	perShard := (capacity + cacheShards - 1) / cacheShards
	c := &LRU{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i] = lruShard{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[string]*list.Element),
		}
	}
	return c
}

func (c *LRU) shard(key string) *lruShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// Get returns the cached result for key and refreshes its recency.
func (c *LRU) Get(key string) (*Result, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	var res *Result
	if ok {
		s.ll.MoveToFront(el)
		// Read the entry under the lock: Put overwrites res in place on an
		// existing key.
		res = el.Value.(*lruEntry).res
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return res, true
}

// Put stores res under key, evicting the shard's least recently used entry
// when the shard is full.
func (c *LRU) Put(key string, res *Result) {
	if res == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*lruEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&lruEntry{key: key, res: res})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Stats snapshots the cache's effectiveness counters.
func (c *LRU) Stats() CacheStats {
	st := CacheStats{Tier: "lru", Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		st.Capacity += s.cap
		s.mu.Unlock()
	}
	return st
}
