package punt

// The benchmarks in this file regenerate the paper's evaluation:
//
//   - BenchmarkTable1PUNT          — the "PUNT ACG" columns of Table 1
//   - BenchmarkTable1SIS           — the explicit state-graph baseline column
//   - BenchmarkTable1Petrify       — the symbolic (BDD) baseline column
//   - BenchmarkFigure6PUNT/SIS/Petrify — the scaling series of Figure 6
//   - BenchmarkCounterflowPUNT     — the circled counterflow-pipeline point
//   - BenchmarkUnfoldOnly / BenchmarkExactMode — ablations of the design
//     choices called out in DESIGN.md (segment construction cost, exact
//     versus approximated cover derivation)
//
// Run them all with:  go test -bench=. -benchmem
// EXPERIMENTS.md records a full set of measured numbers next to the values
// the paper reports.

import (
	"context"
	"fmt"
	"testing"

	"punt/internal/baseline"
	"punt/internal/benchgen"
	"punt/internal/core"
	"punt/internal/unfolding"
)

// table1Small selects the benchmarks whose explicit state graph is small
// enough for the baselines to process within the benchmark budget.
func table1Small() []benchgen.BenchmarkEntry {
	var out []benchgen.BenchmarkEntry
	for _, e := range benchgen.Table1Suite() {
		if e.Signals <= 14 {
			out = append(out, e)
		}
	}
	return out
}

func BenchmarkTable1PUNT(b *testing.B) {
	for _, entry := range benchgen.Table1Suite() {
		entry := entry
		b.Run(fmt.Sprintf("%s-%dsig", entry.Name, entry.Signals), func(b *testing.B) {
			g := entry.Build()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.New(core.Options{}).Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1SIS(b *testing.B) {
	for _, entry := range table1Small() {
		entry := entry
		b.Run(fmt.Sprintf("%s-%dsig", entry.Name, entry.Signals), func(b *testing.B) {
			g := entry.Build()
			s := &baseline.ExplicitSynthesizer{MaxStates: 2000000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1Petrify(b *testing.B) {
	for _, entry := range table1Small() {
		entry := entry
		b.Run(fmt.Sprintf("%s-%dsig", entry.Name, entry.Signals), func(b *testing.B) {
			g := entry.Build()
			s := &baseline.SymbolicSynthesizer{MaxNodes: 4000000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// figure6Sizes is the signal-count sweep of Figure 6.  The baselines only run
// on the sizes they can finish; the larger sizes are exactly where the paper
// shows them choking.
var figure6Sizes = []int{5, 8, 12, 17, 22, 32, 42, 50}

func BenchmarkFigure6PUNT(b *testing.B) {
	for _, signals := range figure6Sizes {
		signals := signals
		b.Run(fmt.Sprintf("%dsig", signals), func(b *testing.B) {
			g := benchgen.MullerPipelineWithSignals(signals)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.New(core.Options{}).Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure6SIS(b *testing.B) {
	for _, signals := range figure6Sizes {
		if signals > 12 {
			continue // the explicit state graph is out of reach beyond this size
		}
		signals := signals
		b.Run(fmt.Sprintf("%dsig", signals), func(b *testing.B) {
			g := benchgen.MullerPipelineWithSignals(signals)
			s := &baseline.ExplicitSynthesizer{MaxStates: 2000000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure6Petrify(b *testing.B) {
	for _, signals := range figure6Sizes {
		if signals > 12 {
			continue // the BDD blows up beyond this size
		}
		signals := signals
		b.Run(fmt.Sprintf("%dsig", signals), func(b *testing.B) {
			g := benchgen.MullerPipelineWithSignals(signals)
			s := &baseline.SymbolicSynthesizer{MaxNodes: 8000000}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Synthesize(context.Background(), g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCounterflowPUNT(b *testing.B) {
	g := benchgen.CounterflowPipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.New(core.Options{}).Synthesize(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnfoldOnly isolates the cost of constructing the STG-unfolding
// segment (the "UnfTim" column) on the deepest pipeline of the sweep.
func BenchmarkUnfoldOnly(b *testing.B) {
	g := benchgen.MullerPipelineWithSignals(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unfolding.Build(context.Background(), g, unfolding.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactMode is the ablation of the paper's central design choice:
// deriving exact covers by slice enumeration instead of approximating them.
// Compare against BenchmarkApproximateMode on the same specification.
func BenchmarkExactMode(b *testing.B) {
	g := benchgen.MullerPipelineWithSignals(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.New(core.Options{Mode: core.Exact}).Synthesize(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproximateMode(b *testing.B) {
	g := benchgen.MullerPipelineWithSignals(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.New(core.Options{}).Synthesize(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadePipeline measures the full public-API path — Parse followed
// by New().Synthesize — on a mid-size pipeline, so the perf trajectory tracks
// the overhead of the facade itself next to the raw-core numbers above.
func BenchmarkFacadePipeline(b *testing.B) {
	text := MullerPipelineWithSignals(22).Text()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := New().Synthesize(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchTable1 measures the worker-pool driver on the paper's suite.
func BenchmarkBatchTable1(b *testing.B) {
	items := Table1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, sum := New().Batch(context.Background(), items); sum.Failed != 0 {
			b.Fatalf("batch failed: %+v", sum)
		}
	}
}
