package punt

import (
	"context"
	"testing"
)

// determinismSpecs is the satellite-d corpus: all Table 1 specs plus the
// pipeline-class and counterflow generators.
func determinismSpecs(t *testing.T) map[string]*Spec {
	t.Helper()
	specs := map[string]*Spec{
		"pipeline-12": MullerPipelineWithSignals(12),
		"pipeline-22": MullerPipelineWithSignals(22),
		"counterflow": CounterflowPipeline(),
	}
	for _, it := range Table1() {
		specs["table1-"+it.Name] = it.Spec
	}
	return specs
}

// TestWorkersDeterministic asserts the PR's headline guarantee end to end:
// every worker count produces byte-identical segments and byte-identical
// synthesized output for every spec class, so the width is a pure throughput
// knob.  Intermediate widths matter since the pool hands each lane a
// contiguous ceil(n/lanes) block per round, so the block boundaries shift
// with the lane count.
func TestWorkersDeterministic(t *testing.T) {
	ctx := context.Background()
	seq := New(WithWorkers(1))
	widths := []int{2, 3, 5, 8}
	for name, spec := range determinismSpecs(t) {
		segSeq, err := Unfold(ctx, spec, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: sequential unfold: %v", name, err)
		}
		rs, err := seq.Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("%s: sequential synthesis: %v", name, err)
		}
		for _, w := range widths {
			segPar, err := Unfold(ctx, spec, WithWorkers(w))
			if err != nil {
				t.Fatalf("%s: unfold at %d workers: %v", name, w, err)
			}
			if segSeq.Dump() != segPar.Dump() {
				t.Errorf("%s: segment dump differs between WithWorkers(1) and WithWorkers(%d)", name, w)
			}

			rp, err := New(WithWorkers(w)).Synthesize(ctx, spec)
			if err != nil {
				t.Fatalf("%s: synthesis at %d workers: %v", name, w, err)
			}
			if rs.Eqn() != rp.Eqn() {
				t.Errorf("%s: Eqn output differs between 1 and %d workers", name, w)
			}
			if rs.Verilog() != rp.Verilog() {
				t.Errorf("%s: Verilog output differs between 1 and %d workers", name, w)
			}
			if rp.Stats.Workers != w || !rp.Stats.PEParallel {
				t.Errorf("%s: parallel run must report Workers=%d/PEParallel, got %d/%t",
					name, w, rp.Stats.Workers, rp.Stats.PEParallel)
			}
		}
	}
}

// TestCacheKeyExcludesWorkers pins the cache-key contract the determinism
// guarantee makes sound: since output is byte-identical across worker
// counts, the content-addressed key must not vary with WithWorkers — a
// result synthesized at one width is served verbatim at any other.
func TestCacheKeyExcludesWorkers(t *testing.T) {
	spec := Fig1()
	k1 := New(WithWorkers(1)).CacheKey(spec)
	k8 := New(WithWorkers(8)).CacheKey(spec)
	if k1 != k8 {
		t.Fatalf("cache key varies with the worker count:\n%s\nvs\n%s", k1, k8)
	}

	// And the shared cache actually round-trips across worker counts.
	cache := NewLRU(8)
	ctx := context.Background()
	cold, err := New(WithCache(cache), WithWorkers(8)).Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(WithCache(cache), WithWorkers(1)).Synthesize(ctx, Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Cached {
		t.Fatal("WithWorkers(1) run was not served from the WithWorkers(8) cache entry")
	}
	if warm.Eqn() != cold.Eqn() {
		t.Fatal("cached result differs from the cold run")
	}
}
