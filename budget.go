package punt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"
)

// Resource governance: per-attempt budgets enforced by a watchdog, and a
// degradation ladder that retries exhausted attempts under cheaper
// configurations.  The paper's truncated-unfolding segment is itself a
// degradation strategy — a bounded approximation in place of the full state
// space — and this layer makes the operational half of that idea a facade
// concept: a request that cannot be served exactly within its budget is
// served approximately (or by a cheaper engine), never by dying.

// WithDeadline bounds every synthesis attempt to the given wall-clock
// duration.  The budget applies per attempt: each WithFallback step (and
// each Batch item) gets a fresh deadline, while the caller's own context
// still bounds the call as a whole.  An attempt that exceeds its deadline
// fails with a KindBudget diagnostic wrapping a *BudgetError that carries
// the attempt's partial stats; d <= 0 disables the deadline.
func WithDeadline(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}

// WithMemoryBudget bounds every synthesis attempt's heap growth to about the
// given number of bytes.  A watchdog goroutine samples runtime.MemStats
// while the attempt runs and aborts it with a KindBudget diagnostic when the
// heap has grown past the budget since the attempt started.  The measure is
// process-global (Go has no per-goroutine accounting), so concurrent
// synthesis shares the headroom; bytes <= 0 disables the budget.
func WithMemoryBudget(bytes int64) Option {
	return func(c *config) { c.memBudget = bytes }
}

// FallbackStep is one rung of the WithFallback degradation ladder: a named
// set of options applied on top of the Synthesizer's base configuration to
// produce a cheaper attempt.
type FallbackStep struct {
	// Name identifies the step in Stats.Attempts and diagnostics.
	Name string
	// Options is the configuration delta: typically WithMode(Approximate),
	// a lower WithMaxEvents/WithMaxStates, or an alternate WithEngine/
	// WithBackend.  Nested WithFallback options are ignored.
	Options []Option
}

// Fallback builds a FallbackStep for WithFallback.
func Fallback(name string, opts ...Option) FallbackStep {
	return FallbackStep{Name: name, Options: opts}
}

// WithFallback installs a degradation ladder: when an attempt fails with
// ErrLimit or ErrBudget — resource exhaustion, not a property of the
// specification — Synthesize retries through the given steps in order, each
// a cheaper configuration derived from the base options.  Every attempt is
// recorded in Stats.Attempts; a result produced by a fallback step is tagged
// with an informational KindDegraded diagnostic in Result.Degradation and is
// never cached (only primary-configuration results are, so the cache always
// answers with the best-quality result the configuration can produce).
// Failures that no amount of resources can fix (CSC conflicts, unsafe nets,
// semi-modularity violations, the caller's own cancellation) never trigger
// the ladder.
func WithFallback(steps ...FallbackStep) Option {
	return func(c *config) { c.fallback = append(c.fallback[:0], steps...) }
}

// Attempt records one rung of a Synthesize call's attempt ladder: which
// backend selection ran under which step, how it ended, and how long it
// took.  The full ladder appears in Stats.Attempts on success and in
// Diagnostic.Attempts on failure.
type Attempt struct {
	// Backend is the attempt's backend selection ("unfolding",
	// "portfolio(...)", a registered name, ...).
	Backend string `json:"backend"`
	// Step names the WithFallback step that configured the attempt; empty
	// for the primary configuration.
	Step string `json:"step,omitempty"`
	// Outcome is "ok" for the winning attempt, otherwise the failure's
	// diagnostic kind ("resource limit", "budget exhausted", ...).
	Outcome string `json:"outcome"`
	// Elapsed is the attempt's wall-clock duration.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// String renders the attempt.
func (a Attempt) String() string {
	step := a.Step
	if step == "" {
		step = "primary"
	}
	return fmt.Sprintf("%s[%s]=%s(%v)", step, a.Backend, a.Outcome, a.Elapsed.Round(time.Microsecond))
}

// BudgetError reports that an attempt's watchdog tripped, and with which
// partial progress: it is the structured payload behind every KindBudget
// diagnostic and wraps ErrBudget for errors.Is.
type BudgetError struct {
	// Deadline is the configured WithDeadline bound when the wall clock
	// tripped the watchdog (zero for a memory trip), MemoryBudget the
	// WithMemoryBudget bound when the heap did (zero for a deadline trip).
	Deadline     time.Duration
	MemoryBudget int64
	// Elapsed is how long the attempt had run when the watchdog fired;
	// HeapGrowth the heap delta (bytes) since the attempt started.
	Elapsed    time.Duration
	HeapGrowth int64
	// Events and States are the last engine-progress observations before
	// the trip — the size of the partial segment / state space the budget
	// bought, zero when the attempt died before the first notification.
	Events int
	States int
}

func (e *BudgetError) Error() string {
	var sb strings.Builder
	if e.Deadline > 0 {
		fmt.Fprintf(&sb, "%v: deadline %v exceeded after %v", ErrBudget, e.Deadline, e.Elapsed.Round(time.Millisecond))
	} else {
		fmt.Fprintf(&sb, "%v: memory budget %d bytes exceeded (heap grew %d bytes) after %v",
			ErrBudget, e.MemoryBudget, e.HeapGrowth, e.Elapsed.Round(time.Millisecond))
	}
	if e.Events > 0 {
		fmt.Fprintf(&sb, " (%d events built)", e.Events)
	}
	if e.States > 0 {
		fmt.Fprintf(&sb, " (%d states built)", e.States)
	}
	return sb.String()
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// PanicError reports a panicking backend, recovered at the central dispatch
// so that every entry point — plain Synthesize, Batch, the portfolio
// scheduler — turns the panic into a KindPanic diagnostic instead of
// crashing the process.  It carries the stack captured at recovery.
type PanicError struct {
	// Backend names the backend (or pipeline stage) that panicked.
	Backend string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("backend %q panicked: %v", e.Backend, e.Value)
}

// memSampleInterval is how often the watchdog samples runtime.MemStats when
// a memory budget is armed.  ReadMemStats briefly stops the world, so the
// sampling is deliberately coarse: memory exhaustion is a trend, not an
// instant.
const memSampleInterval = 20 * time.Millisecond

// watchdog enforces the per-attempt budgets: it derives a cancellable
// context for the attempt and trips it — with a *BudgetError cause carrying
// the partial stats — when the wall clock or the heap runs past the bounds.
type watchdog struct {
	cancel context.CancelCauseFunc
	stop   chan struct{}
	done   chan struct{}
	events atomic.Int64 // last engine-progress observations
	states atomic.Int64
}

// startWatchdog arms the configured budgets around one attempt.  It returns
// the context the attempt must run under and a release function (always
// non-nil) that stops the watchdog goroutine and waits for it to exit, so
// attempts never leak goroutines.  Progress sampling is spliced into
// cfg.Progress whether or not the caller installed a callback: the watchdog
// records the last events/states notification for the BudgetError.
func startWatchdog(ctx context.Context, deadline time.Duration, memBudget int64, cfg *BackendConfig) (context.Context, func()) {
	if deadline <= 0 && memBudget <= 0 {
		return ctx, func() {}
	}
	actx, cancel := context.WithCancelCause(ctx)
	w := &watchdog{cancel: cancel, stop: make(chan struct{}), done: make(chan struct{})}

	user := cfg.Progress
	cfg.Progress = func(p Progress) {
		if p.Events > 0 {
			w.events.Store(int64(p.Events))
		}
		if p.States > 0 {
			w.states.Store(int64(p.States))
		}
		if user != nil {
			user(p)
		}
	}

	//puntlint:ignore gohygiene the watchdog is central governance machinery joined by release(); swallowing its panics would silently disable budget enforcement
	go w.run(actx, deadline, memBudget)
	release := func() {
		close(w.stop)
		<-w.done
		cancel(context.Canceled)
	}
	return actx, release
}

// run is the watchdog goroutine: one timer for the deadline, one coarse
// MemStats ticker for the memory budget, both racing the attempt's end.
func (w *watchdog) run(ctx context.Context, deadline time.Duration, memBudget int64) {
	defer close(w.done)
	start := time.Now()

	var deadlineC <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		deadlineC = t.C
	}
	var memC <-chan time.Time
	var baseHeap uint64
	if memBudget > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		baseHeap = ms.HeapAlloc
		tk := time.NewTicker(memSampleInterval)
		defer tk.Stop()
		memC = tk.C
	}

	for {
		select {
		case <-w.stop:
			return
		case <-ctx.Done():
			return
		case <-deadlineC:
			w.trip(&BudgetError{Deadline: deadline, Elapsed: time.Since(start)})
			return
		case <-memC:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			growth := int64(ms.HeapAlloc) - int64(baseHeap)
			if growth > memBudget {
				w.trip(&BudgetError{MemoryBudget: memBudget, HeapGrowth: growth, Elapsed: time.Since(start)})
				return
			}
		}
	}
}

// trip cancels the attempt with the budget error as the context cause,
// stamped with the last progress observations.
func (w *watchdog) trip(be *BudgetError) {
	be.Events = int(w.events.Load())
	be.States = int(w.states.Load())
	w.cancel(be)
}

// budgetCause extracts the *BudgetError behind an attempt context that the
// watchdog tripped, nil when the context ended for any other reason.
func budgetCause(ctx context.Context) *BudgetError {
	cause := context.Cause(ctx)
	if cause == nil {
		return nil
	}
	var be *BudgetError
	if errors.As(cause, &be) {
		return be
	}
	return nil
}

// retryable reports whether the WithFallback ladder may retry after err:
// only resource exhaustion is — a cheaper configuration can change how much
// a request costs, never what the specification means.
func retryable(err error) bool {
	return errors.Is(err, ErrLimit) || errors.Is(err, ErrBudget)
}
