package gates

import "testing"

func TestParseArchitecture(t *testing.T) {
	cases := map[string]Architecture{
		"complex-gate": ComplexGate,
		"standard-c":   StandardC,
		"rs-latch":     RSLatch,
	}
	for name, want := range cases {
		got, err := ParseArchitecture(name)
		if err != nil || got != want {
			t.Errorf("ParseArchitecture(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseArchitecture("nand-only"); err == nil {
		t.Error("unknown architecture must be rejected")
	}
}
