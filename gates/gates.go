// Package gates re-exports the gate-level implementation model of the punt
// synthesizer: the target architectures, the per-signal Gate and the circuit
// Implementation with its equation and Verilog emitters.  It exists so that
// programs using the public punt API can name these types without reaching
// into punt/internal.
package gates

import (
	"fmt"

	"punt/internal/gatelib"
)

// Architecture selects the gate-level target of synthesis.
type Architecture = gatelib.Architecture

// The three architectures of the paper.
const (
	// ComplexGate implements each signal as a single atomic complex gate of
	// its minimised on-set cover (the architecture Table 1 reports).
	ComplexGate Architecture = gatelib.ComplexGate
	// StandardC implements each signal as a C-element with set/reset networks.
	StandardC Architecture = gatelib.StandardC
	// RSLatch implements each signal as an RS latch with set/reset networks.
	RSLatch Architecture = gatelib.RSLatch
)

// Gate is the implementation of one output or internal signal: a single
// minimised cover for ComplexGate, or set/reset covers for the memory-element
// architectures.
type Gate = gatelib.Gate

// Implementation is a synthesised circuit: one Gate per output and internal
// signal, with Eqn and Verilog emitters and a literal-count metric.
type Implementation = gatelib.Implementation

// ParseArchitecture resolves the command-line names of the architectures:
// "complex-gate", "standard-c" or "rs-latch".
func ParseArchitecture(name string) (Architecture, error) {
	switch name {
	case "complex-gate":
		return ComplexGate, nil
	case "standard-c":
		return StandardC, nil
	case "rs-latch":
		return RSLatch, nil
	default:
		return ComplexGate, fmt.Errorf("gates: unknown architecture %q (want complex-gate, standard-c or rs-latch)", name)
	}
}
