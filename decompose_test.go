package punt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// unionSpecs builds the disjoint union of several specifications in one STG:
// every part's signals, places and transitions are re-added under a "uN_"
// prefix, markings and initial states concatenated.  The result is exactly
// the kind of multi-component specification decompose.Split factors.
func unionSpecs(t *testing.T, name string, parts ...*Spec) *Spec {
	t.Helper()
	g := stg.New(name)
	var bits []bool
	for pi, part := range parts {
		src := part.g
		prefix := fmt.Sprintf("u%d_", pi)
		net := src.Net()
		sigMap := make([]int, src.NumSignals())
		for s := 0; s < src.NumSignals(); s++ {
			sig := src.Signal(s)
			sigMap[s] = g.AddSignal(prefix+sig.Name, sig.Kind)
		}
		placeMap := make([]petri.PlaceID, net.NumPlaces())
		for p := 0; p < net.NumPlaces(); p++ {
			placeMap[p] = g.AddPlace(prefix + net.PlaceName(petri.PlaceID(p)))
		}
		for ti := 0; ti < net.NumTransitions(); ti++ {
			id := petri.TransitionID(ti)
			l := src.Label(id)
			var nt petri.TransitionID
			if l.IsDummy {
				nt = g.AddDummyTransition(prefix + l.DummyName)
			} else {
				nt = g.AddTransition(sigMap[l.Signal], l.Dir)
			}
			for _, p := range net.Pre(id) {
				g.AddArcPT(placeMap[p], nt)
			}
			for _, p := range net.Post(id) {
				g.AddArcTP(nt, placeMap[p])
			}
		}
		initial := net.Initial()
		for p := 0; p < net.NumPlaces(); p++ {
			if initial.Marked(petri.PlaceID(p)) {
				g.MarkInitially(placeMap[p])
			}
		}
		st := src.InitialState()
		for s := 0; s < src.NumSignals(); s++ {
			bits = append(bits, st.Get(s))
		}
	}
	g.SetInitialState(bitvec.FromBools(bits))
	spec, err := wrapSpec(g)
	if err != nil {
		t.Fatalf("union spec %s: %v", name, err)
	}
	return spec
}

// TestDecomposeCounterflow is the tentpole's acceptance path: the counterflow
// pipeline — two independent Muller pipelines in one net, 2^34 monolithic
// states — factors into two components, synthesizes compositionally, and the
// recombined circuit carries the per-component breakdown.  (The closed-loop
// verification against the full spec runs inside the backend before the
// result is returned; Verify here re-checks it through the public facade.)
func TestDecomposeCounterflow(t *testing.T) {
	ctx := context.Background()
	spec := CounterflowPipeline()
	res, err := New(WithEngine(Decompose)).Synthesize(ctx, spec)
	if err != nil {
		t.Fatalf("decompose synthesis: %v", err)
	}
	if !res.Decomposed() {
		t.Fatal("counterflow must decompose, result reports monolithic")
	}
	if res.Stats.Backend != "decompose" || res.Stats.Engine != Decompose {
		t.Errorf("stats identity = %q/%v, want decompose", res.Stats.Backend, res.Stats.Engine)
	}
	if len(res.Stats.Components) != 2 {
		t.Fatalf("want 2 components, got %d", len(res.Stats.Components))
	}
	for _, c := range res.Stats.Components {
		if c.Backend != "unfolding" {
			t.Errorf("component %s ran %q, want the default inner engine", c.Name, c.Backend)
		}
		if c.Outputs == 0 || c.Literals == 0 {
			t.Errorf("component %s contributed no gates (outputs=%d literals=%d)", c.Name, c.Outputs, c.Literals)
		}
	}
	if res.Decomposition != nil {
		t.Error("a factored run must not carry the KindIndivisible record")
	}
	if _, err := Verify(ctx, spec, res); err != nil {
		t.Fatalf("recombined circuit fails facade Verify: %v", err)
	}
	if !strings.Contains(res.Stats.String(), "decomposed=2[") {
		t.Errorf("Stats.String misses the component breakdown: %s", res.Stats.String())
	}
}

// TestDecomposeIndivisibleByteIdentical pins the fallthrough contract on
// every Table 1 spec: an indivisible specification through the decompose
// backend produces output byte-identical to the inner engine run directly, at
// every worker count, and records the fallthrough as a KindIndivisible
// informational.
func TestDecomposeIndivisibleByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, it := range Table1() {
		mono, err := New(WithEngine(Unfolding)).Synthesize(ctx, it.Spec)
		if err != nil {
			t.Fatalf("%s: monolithic synthesis: %v", it.Name, err)
		}
		for _, workers := range []int{1, 4} {
			res, err := New(WithEngine(Decompose), WithWorkers(workers)).Synthesize(ctx, it.Spec)
			if err != nil {
				t.Fatalf("%s: decompose synthesis (workers=%d): %v", it.Name, workers, err)
			}
			if res.Decomposed() {
				t.Fatalf("%s: Table 1 specs are indivisible, result reports a split", it.Name)
			}
			if res.Decomposition == nil || res.Decomposition.Kind != KindIndivisible {
				t.Fatalf("%s: fallthrough must be recorded as KindIndivisible, got %+v", it.Name, res.Decomposition)
			}
			if res.Decomposition.Signal != "unfolding" {
				t.Errorf("%s: fallthrough records inner %q, want unfolding", it.Name, res.Decomposition.Signal)
			}
			if res.Stats.Backend != "decompose" {
				t.Errorf("%s: Stats.Backend = %q, want decompose (the selected backend)", it.Name, res.Stats.Backend)
			}
			if res.Eqn() != mono.Eqn() || res.Verilog() != mono.Verilog() {
				t.Errorf("%s: fallthrough output differs from the inner engine at workers=%d", it.Name, workers)
			}
		}
	}
}

// TestDecomposeWorkerDeterminism: a split synthesis is byte-identical across
// worker counts — components are recombined in plan order, never in
// completion order.
func TestDecomposeWorkerDeterminism(t *testing.T) {
	ctx := context.Background()
	spec := CounterflowPipeline()
	var eqn string
	for i, workers := range []int{1, 2, 8} {
		res, err := New(WithEngine(Decompose), WithWorkers(workers)).Synthesize(ctx, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			eqn = res.Eqn()
		} else if res.Eqn() != eqn {
			t.Fatalf("workers=%d: recombined output differs from workers=1", workers)
		}
	}
}

// TestDecomposeInnerEngine drives the components through the explicit
// baseline and rejects the recursive inner engines.
func TestDecomposeInnerEngine(t *testing.T) {
	ctx := context.Background()
	// A small product: the full counterflow's 131k-state halves are exactly
	// what the explicit baseline cannot chew through in test time.
	res, err := New(WithEngine(Decompose), WithDecomposeInner("explicit")).
		Synthesize(ctx, mustWrap(benchgen.Product(3)))
	if err != nil {
		t.Fatalf("decompose over explicit: %v", err)
	}
	for _, c := range res.Stats.Components {
		if c.Backend != "explicit" {
			t.Errorf("component %s ran %q, want explicit", c.Name, c.Backend)
		}
		if c.States == 0 {
			t.Errorf("component %s reports no states from the explicit baseline", c.Name)
		}
	}
	for _, bad := range []string{"decompose", "portfolio"} {
		if _, err := New(WithEngine(Decompose), WithDecomposeInner(bad)).Synthesize(ctx, Fig1()); err == nil {
			t.Errorf("inner engine %q must be rejected", bad)
		}
	}
}

// TestDecomposeComponentErrorPropagates: a CSC conflict inside one component
// of a sound split is a genuine conflict of the whole specification and must
// surface as ErrCSC, not be masked by the compositional path — and the
// facade's WithResolveCSC repair must still work through the decompose
// backend, re-factoring the repaired specification on the retry.
func TestDecomposeComponentErrorPropagates(t *testing.T) {
	ctx := context.Background()
	conflicted, err := LoadFile("testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	combined := unionSpecs(t, "handshake+csc", Handshake(), conflicted)

	_, err = New(WithEngine(Decompose)).Synthesize(ctx, combined)
	if !errors.Is(err, ErrCSC) {
		t.Fatalf("component CSC conflict must propagate as ErrCSC, got %v", err)
	}

	res, err := New(WithEngine(Decompose), WithResolveCSC(0)).Synthesize(ctx, combined)
	if err != nil {
		t.Fatalf("WithResolveCSC through decompose: %v", err)
	}
	if !res.Resolved() {
		t.Fatal("repaired result must carry the Resolution record")
	}
	if !res.Decomposed() {
		t.Fatal("the repaired retry must still synthesize compositionally")
	}
}

// TestPortfolioDecomposeAttribution is the satellite regression: in a
// decompose-vs-explicit race the top-level contender list is exactly the
// raced pair, and the decompose winner's per-component runs roll up under its
// own entry as Contender.Sub — never as phantom top-level contenders.
func TestPortfolioDecomposeAttribution(t *testing.T) {
	ctx := context.Background()
	// WithWorkers(1) runs the contenders sequentially in order, so decompose
	// deterministically wins the race.
	res, err := New(WithContenders("decompose", "explicit"), WithWorkers(1)).
		Synthesize(ctx, CounterflowPipeline())
	if err != nil {
		t.Fatalf("portfolio race: %v", err)
	}
	if res.Stats.Backend != "decompose" {
		t.Fatalf("winner = %q, want decompose", res.Stats.Backend)
	}
	if len(res.Stats.Contenders) != 2 {
		t.Fatalf("top-level contenders = %d, want exactly the raced pair:\n%s",
			len(res.Stats.Contenders), res.Stats.String())
	}
	names := []string{res.Stats.Contenders[0].Engine, res.Stats.Contenders[1].Engine}
	if names[0] != "decompose" || names[1] != "explicit" {
		t.Fatalf("contender names = %v, want [decompose explicit]", names)
	}
	winner := res.Stats.Contenders[0]
	if !winner.Winner {
		t.Fatal("decompose entry not marked winner")
	}
	if len(winner.Sub) != 2 {
		t.Fatalf("decompose winner carries %d sub-entries, want its 2 component runs", len(winner.Sub))
	}
	for _, sub := range winner.Sub {
		if !strings.Contains(sub.Engine, "/unfolding") {
			t.Errorf("sub-entry %q does not attribute its inner engine", sub.Engine)
		}
		if sub.Winner {
			t.Errorf("sub-entry %q marked winner of a race it was never entered in", sub.Engine)
		}
	}
	// The rendering nests too.
	if s := res.Stats.String(); !strings.Contains(s, "(winner){") {
		t.Errorf("Stats.String does not nest the sub-breakdown: %s", s)
	}
}

// TestDecomposeDifferentialSplit cross-checks the compositional result
// state-by-state against the explicit oracle on a spec that actually splits
// (the small two-pipeline product stays within the oracle's reach, unlike the
// full counterflow).
func TestDecomposeDifferentialSplit(t *testing.T) {
	spec := mustWrap(benchgen.Product(3))
	rep, err := Differential(context.Background(), spec)
	if err != nil {
		t.Fatalf("differential: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("engines disagree on %s:\n%s", spec.Name(), rep)
	}
}

// TestDecomposeRandomSweep drives 100 random single-component specifications
// through the decompose fallthrough and byte-compares against the monolithic
// inner engine; oracle-rejected specs must be rejected by both paths alike.
func TestDecomposeRandomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep is long")
	}
	ctx := context.Background()
	mono := New(WithEngine(Unfolding))
	comp := New(WithEngine(Decompose), WithWorkers(4))
	for seed := int64(0); seed < 100; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed%14))
		spec, err := wrapSpec(g)
		if err != nil {
			continue
		}
		rm, errM := mono.Synthesize(ctx, spec)
		rc, errC := comp.Synthesize(ctx, spec)
		if (errM == nil) != (errC == nil) {
			t.Fatalf("seed %d: monolithic err=%v, decompose err=%v", seed, errM, errC)
		}
		if errM != nil {
			continue
		}
		if rm.Eqn() != rc.Eqn() {
			t.Fatalf("seed %d: decompose output differs from monolithic", seed)
		}
	}
}
