package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"punt"
)

// ErrorBody is the JSON error payload of every non-2xx response.  ExitCode
// carries the CLI exit status the failure corresponds to, so `punt -server`
// preserves the local command's exit-code contract (1 synthesis failure,
// 2 usage, 3 verification failure, 4 budget exhaustion) without parsing
// messages.
type ErrorBody struct {
	Error      string `json:"error"`
	Kind       string `json:"kind,omitempty"`
	ExitCode   int    `json:"exit_code"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
	// Diagnostic is the full structured error when the failure carries one;
	// clients that want the trace, the conflicting signal or the attempt
	// ladder decode it with the library's Diagnostic type.
	Diagnostic *punt.Diagnostic `json:"diagnostic,omitempty"`
}

// errOverloaded is the admission-control rejection: every synthesis slot is
// busy and the wait queue is full.
var errOverloaded = errors.New("server overloaded: all synthesis slots busy and the queue is full")

// overloadedError is errOverloaded with a load-derived retry hint attached:
// RetryAfter estimates, from the queue depth and the median observed synthesis
// time, how long until a slot plausibly frees up.  errors.Is(err,
// errOverloaded) still holds, so classification is unchanged.
type overloadedError struct{ RetryAfter int }

func (e *overloadedError) Error() string { return errOverloaded.Error() }
func (e *overloadedError) Unwrap() error { return errOverloaded }

// parseError marks a specification that failed to parse — a malformed .g
// body, reported like the CLI's load failure (exit 1) but with a 400 status
// because the request itself is at fault.
type parseError struct{ err error }

func (e *parseError) Error() string { return e.err.Error() }
func (e *parseError) Unwrap() error { return e.err }

// classify maps an error to its HTTP status and CLI exit code, mirroring the
// punt command's exit statuses.
func classify(err error) (status, exitCode int) {
	var ue *usageError
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, 1
	case errors.As(err, &ue):
		return http.StatusBadRequest, 2
	case errors.Is(err, punt.ErrBudget):
		// The request's own resource budget ran out: the service is fine,
		// this configuration is not — 503 tells load balancers not to blame
		// the replica, exit code 4 tells the client what the CLI would.
		return http.StatusServiceUnavailable, 4
	case errors.Is(err, punt.ErrVerification):
		return http.StatusUnprocessableEntity, 3
	case errors.As(err, new(*parseError)):
		return http.StatusBadRequest, 1
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, 4
	default:
		// A property of the specification (CSC, safeness, …) or an engine
		// failure: the request was well-formed but cannot be satisfied.
		return http.StatusUnprocessableEntity, 1
	}
}

// errorBody builds the wire payload for err.
func errorBody(err error) ErrorBody {
	_, exit := classify(err)
	body := ErrorBody{Error: err.Error(), ExitCode: exit}
	var oe *overloadedError
	switch {
	case errors.As(err, &oe):
		body.RetryAfter = oe.RetryAfter
	case errors.Is(err, errOverloaded):
		body.RetryAfter = 1
	}
	var d *punt.Diagnostic
	if errors.As(err, &d) {
		body.Kind = d.Kind.String()
		body.Diagnostic = d
	}
	return body
}

// writeError sends err as a JSON error response.
func writeError(w http.ResponseWriter, err error) {
	status, _ := classify(err)
	body := errorBody(err)
	w.Header().Set("Content-Type", "application/json")
	if body.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfter))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
