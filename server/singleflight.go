package server

import (
	"context"
	"sync"
	"time"

	"punt"
)

// flight is one in-progress synthesis shared by every request that asked
// for the same specification under the same configuration.  The first
// request becomes the leader and runs the synthesis; the rest join as
// waiters and receive the leader's outcome.  The synthesis runs under its
// own context, detached from any single request's, so a disconnecting
// client — the leader included — does not abort work other waiters still
// want; only when the last waiter leaves is the synthesis cancelled.
type flight struct {
	done   chan struct{} // closed when res/err are published
	res    *punt.Result
	err    error
	cancel context.CancelFunc
	// guarded by the owning group's mutex:
	waiters  int
	finished bool
}

// flightGroup deduplicates concurrent identical synthesis requests: N
// requests for one key cause exactly one synthesis.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// join registers interest in key.  The first caller becomes the leader and
// receives a fresh synthesis context — detached from reqCtx's cancellation
// but bounded by maxRun — to run the work under; later callers receive
// leader=false and wait on the flight's done channel.  Every caller must
// pair join with leave.
func (g *flightGroup) join(reqCtx context.Context, key string, maxRun time.Duration) (f *flight, synthCtx context.Context, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		return f, nil, false
	}
	// The synthesis outlives the leader's request on purpose (waiters may
	// still want it) but never the server's per-request ceiling.  The
	// fault-injection schedule and similar values survive WithoutCancel.
	synthCtx, cancel := context.WithTimeout(context.WithoutCancel(reqCtx), maxRun)
	f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.m[key] = f
	return f, synthCtx, true
}

// leave withdraws one waiter.  When the last waiter leaves an unfinished
// flight the synthesis is cancelled — nobody wants the result any more —
// and the key is released so a later request starts fresh.
func (g *flightGroup) leave(key string, f *flight) {
	g.mu.Lock()
	f.waiters--
	abandoned := f.waiters == 0 && !f.finished
	if abandoned {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
}

// complete publishes the outcome to every waiter and retires the key.  The
// result cache (inside Synthesize) has already been fed by this point, so
// requests arriving after complete hit the cache instead of a flight.
func (g *flightGroup) complete(key string, f *flight, res *punt.Result, err error) {
	g.mu.Lock()
	f.res, f.err = res, err
	f.finished = true
	// The key may already belong to a fresh flight when this one was
	// abandoned (last waiter left) and a new request arrived since.
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.cancel()
	close(f.done)
}
