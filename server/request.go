package server

import (
	"fmt"
	"slices"
	"time"

	"punt"
	"punt/gates"
)

// Request is the JSON body of POST /v1/synthesize.  Every field mirrors a
// functional option of the punt facade (or a flag of the punt CLI, which is
// the same vocabulary): the zero value of each field selects the same
// default the library would.
type Request struct {
	// Spec is the STG specification as .g text — the same format LoadFile
	// reads and Spec.Text renders.
	Spec string `json:"spec"`
	// Engine selects the synthesis engine by name: "unfolding" (default),
	// "explicit", "symbolic" or "portfolio".
	Engine string `json:"engine,omitempty"`
	// Backend selects a registered backend by name, overriding Engine —
	// the WithBackend option.
	Backend string `json:"backend,omitempty"`
	// Arch selects the implementation architecture: "complex-gate"
	// (default), "standard-c" or "rs-latch".
	Arch string `json:"arch,omitempty"`
	// Exact derives exact covers by slice enumeration instead of the
	// default approximation.
	Exact bool `json:"exact,omitempty"`
	// MaxEvents, MaxStates and MaxNodes bound the engines, as the options
	// of the same names do (0 = the engine defaults).
	MaxEvents int `json:"max_events,omitempty"`
	MaxStates int `json:"max_states,omitempty"`
	MaxNodes  int `json:"max_nodes,omitempty"`
	// ResolveCSC repairs Complete State Coding conflicts by internal-signal
	// insertion; MaxCSCSignals bounds the insertions (0 = the default).
	ResolveCSC    bool `json:"resolve_csc,omitempty"`
	MaxCSCSignals int  `json:"max_csc_signals,omitempty"`
	// DeadlineMS and MemBudget install the per-attempt resource watchdog
	// (WithDeadline / WithMemoryBudget); exhaustion is reported with
	// exit_code 4 like the CLI's status 4.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	MemBudget  int64 `json:"mem_budget,omitempty"`
	// Fallback enables the CLI's built-in degradation ladder: approximate
	// covers, then the unfolding engine with a reduced segment bound.
	Fallback bool `json:"fallback,omitempty"`
	// Verify additionally checks the implementation with the closed-loop
	// verifier; a failure is reported with exit_code 3.
	Verify bool `json:"verify,omitempty"`
	// Stream switches the response to newline-delimited JSON: one
	// {"progress": …} line per WithProgress event as synthesis runs,
	// terminated by a single {"result": …} or {"error": …} line.
	Stream bool `json:"stream,omitempty"`
}

// usageError marks a request whose configuration vocabulary is wrong (an
// unknown engine, architecture or backend name) — the HTTP analogue of the
// CLI's usage exit status 2, distinct from a specification that parses but
// cannot be synthesised.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

// options translates the request into the facade's functional options,
// mirroring the CLI flag handling exactly (including the built-in fallback
// ladder).  Unknown names are usage errors.
func (req *Request) options() ([]punt.Option, error) {
	engine, err := punt.ParseEngine(orDefault(req.Engine, "unfolding"))
	if err != nil {
		return nil, &usageError{err}
	}
	arch, err := gates.ParseArchitecture(orDefault(req.Arch, "complex-gate"))
	if err != nil {
		return nil, &usageError{err}
	}
	opts := []punt.Option{
		punt.WithEngine(engine),
		punt.WithArch(arch),
		punt.WithMaxEvents(req.MaxEvents),
		punt.WithMaxStates(req.MaxStates),
		punt.WithMaxNodes(req.MaxNodes),
	}
	if req.Backend != "" {
		// Validate eagerly so a typo is a 400, not a failed synthesis.
		if !slices.Contains(punt.Backends(), req.Backend) {
			return nil, &usageError{fmt.Errorf("unknown backend %q (have %v)", req.Backend, punt.Backends())}
		}
		opts = append(opts, punt.WithBackend(req.Backend))
	}
	if req.Exact {
		opts = append(opts, punt.WithMode(punt.Exact))
	}
	if req.ResolveCSC {
		opts = append(opts, punt.WithResolveCSC(req.MaxCSCSignals))
	}
	if req.DeadlineMS > 0 {
		opts = append(opts, punt.WithDeadline(time.Duration(req.DeadlineMS)*time.Millisecond))
	}
	if req.MemBudget > 0 {
		opts = append(opts, punt.WithMemoryBudget(req.MemBudget))
	}
	if req.Fallback {
		opts = append(opts, punt.WithFallback(
			punt.Fallback("approximate", punt.WithMode(punt.Approximate)),
			punt.Fallback("unfolding-small", punt.WithEngine(punt.Unfolding), punt.WithMaxEvents(10000)),
		))
	}
	return opts, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
