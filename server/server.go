// Package server implements puntd's HTTP API: synthesis as a service over
// the punt facade.
//
// Endpoints:
//
//	POST /v1/synthesize  — submit a .g specification plus configuration
//	                       (JSON, see Request); responds with the Result's
//	                       canonical JSON document, or — with "stream": true
//	                       — with newline-delimited JSON forwarding progress
//	                       events live before the final result line.
//	GET  /v1/stats       — counters: requests, warm hits, syntheses,
//	                       single-flight joins, rejections, and the per-tier
//	                       cache breakdown.
//	GET  /healthz        — liveness probe.
//
// The server answers warm cache hits before admission control, deduplicates
// concurrent identical requests into a single synthesis (single-flight), and
// bounds cold work with a slot pool plus a bounded wait queue; beyond that it
// rejects with 429 and a Retry-After header instead of queueing without
// bound.  Every error response carries the CLI exit status the failure maps
// to (see ErrorBody), so remote and local invocations are interchangeable.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"punt"
	"punt/internal/faultinject"
)

// Config parameterises a Server.  The zero value is usable: an in-memory
// result cache, one synthesis slot per CPU, a queue twice that deep and a
// two-minute ceiling per synthesis.
type Config struct {
	// Cache is the shared result cache consulted before any synthesis and
	// fed by every successful one.  Wire a punt.Tiered over a punt.DiskCache
	// for warm hits that survive restarts and span replicas.  nil selects a
	// process-local punt.NewLRU(0).
	Cache punt.Cache
	// MaxConcurrent bounds how many syntheses run at once (0 = GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for a slot before
	// the server answers 429 (0 = 2×MaxConcurrent, negative = no queue).
	MaxQueue int
	// MaxRequestBytes bounds the request body (0 = 1 MiB).
	MaxRequestBytes int64
	// MaxSynthTime is the hard per-synthesis wall-clock ceiling, applied on
	// top of any client-requested deadline (0 = 2 minutes).
	MaxSynthTime time.Duration
	// WrapContext, when non-nil, wraps every request context before use —
	// the hook the chaos tests use to attach a fault-injection schedule.
	WrapContext func(context.Context) context.Context
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	// Requests counts synthesis requests accepted for processing (malformed
	// ones included); WarmHits the subset answered straight from the cache;
	// Syntheses the syntheses actually started (after warm hits and
	// single-flight dedup); Joined the requests that attached to another
	// request's in-flight synthesis; Rejected the admission-control 429s;
	// Errors the failed syntheses.
	Requests  int64 `json:"requests"`
	WarmHits  int64 `json:"warm_hits"`
	Syntheses int64 `json:"syntheses"`
	Joined    int64 `json:"joined"`
	Rejected  int64 `json:"rejected"`
	Errors    int64 `json:"errors"`
	// InFlight and Queued are point-in-time gauges of the admission state.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Cache is the per-tier cache breakdown, when the cache reports one.
	Cache *punt.CacheStats `json:"cache,omitempty"`
}

// Server is the puntd request handler.  Create with New, expose with
// Handler, and on shutdown call Drain after the HTTP listener has stopped
// accepting requests, so detached single-flight syntheses finish writing the
// shared store.
type Server struct {
	cfg     Config
	cache   punt.Cache
	sem     chan struct{}
	queued  atomic.Int64
	flights *flightGroup
	wg      sync.WaitGroup

	// durMu guards a ring of recent synthesis wall-clock times; its median
	// feeds the Retry-After estimate of overload rejections.
	durMu   sync.Mutex
	durRing [durRingSize]time.Duration
	durLen  int
	durNext int

	requests  atomic.Int64
	warmHits  atomic.Int64
	syntheses atomic.Int64
	joined    atomic.Int64
	rejected  atomic.Int64
	errs      atomic.Int64
}

// New builds a Server from cfg, applying the documented defaults.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 2 * cfg.MaxConcurrent
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	if cfg.MaxSynthTime <= 0 {
		cfg.MaxSynthTime = 2 * time.Minute
	}
	cache := cfg.Cache
	if cache == nil {
		cache = punt.NewLRU(0)
	}
	return &Server{
		cfg:     cfg,
		cache:   cache,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		flights: newFlightGroup(),
	}
}

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Drain waits for detached syntheses (single-flight leaders whose clients
// disconnected, in-flight cache writes) to finish, up to ctx's deadline.
// Call it after the HTTP server has stopped accepting requests.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	//puntlint:ignore gohygiene the body is wg.Wait plus a channel close — panic-free by construction
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:  s.requests.Load(),
		WarmHits:  s.warmHits.Load(),
		Syntheses: s.syntheses.Load(),
		Joined:    s.joined.Load(),
		Rejected:  s.rejected.Load(),
		Errors:    s.errs.Load(),
		InFlight:  len(s.sem),
		Queued:    int(s.queued.Load()),
	}
	if sp, ok := s.cache.(interface{ Stats() punt.CacheStats }); ok {
		cs := sp.Stats()
		st.Cache = &cs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	ctx := r.Context()
	if s.cfg.WrapContext != nil {
		ctx = s.cfg.WrapContext(ctx)
	}

	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, &usageError{fmt.Errorf("decoding request: %w", err)})
		return
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := punt.Parse(req.Spec)
	if err != nil {
		writeError(w, &parseError{err})
		return
	}

	events := make(chan punt.Progress, 64)
	stream := req.Stream || r.URL.Query().Get("stream") == "1"
	if stream {
		opts = append(opts, punt.WithProgress(func(p punt.Progress) {
			// Never let a slow client stall the synthesizing goroutine:
			// drop events the stream writer has not drained yet.
			select {
			case events <- p:
			default:
			}
		}))
	}
	opts = append(opts, punt.WithCache(s.cache))
	synth := punt.New(opts...)

	// Warm hits are answered before admission control: a repeat request
	// costs a cache lookup, and must never be queued — or rejected —
	// behind cold work.
	if res, ok := synth.Cached(ctx, spec); ok {
		s.warmHits.Add(1)
		s.respond(w, req, stream, res, nil)
		return
	}

	if stream {
		// Streaming requests run solo: progress events belong to one
		// response, so they bypass single-flight (the final result still
		// lands in the shared cache for everyone else).
		s.streamSynthesize(ctx, w, synth, spec, req, events)
		return
	}

	// Single-flight: concurrent identical requests share one synthesis.
	// An injected fault downgrades to solo execution — dedup is an
	// optimisation, never a correctness dependency.
	if faultinject.Check(ctx, faultinject.OpSingleFlight) != nil {
		res, err := s.runAdmitted(ctx, func(runCtx context.Context) (*punt.Result, error) {
			return s.synthesize(runCtx, synth, spec, req)
		})
		s.respond(w, req, false, res, err)
		return
	}

	key := flightKey(synth, spec, req)
	f, synthCtx, leader := s.flights.join(ctx, key, s.cfg.MaxSynthTime)
	defer s.flights.leave(key, f)
	if leader {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Last-line recover, mirroring the portfolio contender's: panics
			// inside the synthesis are already turned into KindPanic
			// diagnostics by the facade's central dispatch, so this only
			// catches the flight bookkeeping around it — and a panic there
			// must fail this flight's waiters, never the whole daemon.
			completed := false
			defer func() {
				if p := recover(); p != nil && !completed {
					s.flights.complete(key, f, nil, fmt.Errorf("internal panic during synthesis flight: %v", p))
				}
			}()
			res, err := s.runAdmitted(synthCtx, func(runCtx context.Context) (*punt.Result, error) {
				return s.synthesize(runCtx, synth, spec, req)
			})
			completed = true
			s.flights.complete(key, f, res, err)
		}()
	} else {
		s.joined.Add(1)
	}
	select {
	case <-f.done:
		s.respond(w, req, false, f.res, f.err)
	case <-ctx.Done():
		// Client gone: nothing to write.  The deferred leave withdraws our
		// interest; the synthesis continues only while other waiters remain.
	}
}

// durRingSize is how many recent synthesis durations feed the Retry-After
// median.  Small on purpose: overload hints should track the current load
// mix, not the server's lifetime average.
const durRingSize = 32

// observeSynthesis records one synthesis wall-clock time (success or failure
// — either way it occupied a slot for that long).
func (s *Server) observeSynthesis(d time.Duration) {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	s.durRing[s.durNext] = d
	s.durNext = (s.durNext + 1) % durRingSize
	if s.durLen < durRingSize {
		s.durLen++
	}
}

// retryAfterSeconds derives the overload retry hint: the median observed
// synthesis time, scaled by how many syntheses stand between the rejected
// request and a free slot (everything queued, everything in flight, and
// itself), divided across the slot pool.  Clamped to [1s, 60s]; with no
// observations yet it falls back to 1.
func (s *Server) retryAfterSeconds() int {
	s.durMu.Lock()
	n := s.durLen
	buf := make([]time.Duration, n)
	copy(buf, s.durRing[:n])
	s.durMu.Unlock()
	if n == 0 {
		return 1
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	median := buf[n/2]
	ahead := int(s.queued.Load()) + len(s.sem) + 1
	est := time.Duration(float64(median) * float64(ahead) / float64(s.cfg.MaxConcurrent))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// runAdmitted runs fn under admission control: a bounded slot pool with a
// bounded wait queue.  Requests beyond both bounds fail with an overload
// rejection (a 429 on the wire) whose Retry-After reflects the current load.
func (s *Server) runAdmitted(ctx context.Context, fn func(context.Context) (*punt.Result, error)) (*punt.Result, error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// No free slot: wait in the bounded queue.
		if n := s.queued.Add(1); n > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.rejected.Add(1)
			return nil, &overloadedError{RetryAfter: s.retryAfterSeconds()}
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			return nil, ctx.Err()
		}
	}
	defer func() { <-s.sem }()
	return fn(ctx)
}

// synthesize runs one synthesis (plus optional verification) and keeps the
// error counters.
func (s *Server) synthesize(ctx context.Context, synth *punt.Synthesizer, spec *punt.Spec, req Request) (*punt.Result, error) {
	s.syntheses.Add(1)
	start := time.Now()
	defer func() { s.observeSynthesis(time.Since(start)) }()
	res, err := synth.Synthesize(ctx, spec)
	if err != nil {
		s.errs.Add(1)
		return nil, err
	}
	// Mirror the CLI: skip re-verification of cached results (verified when
	// they entered the cache) and of resolver-repaired ones (closed-loop
	// verified inside Synthesize).
	if req.Verify && !res.Stats.Cached && !res.Resolved() {
		if _, err := punt.Verify(ctx, res.Spec, res, punt.WithMaxStates(req.MaxStates)); err != nil {
			s.errs.Add(1)
			return nil, err
		}
	}
	return res, nil
}

// streamSynthesize serves the newline-delimited JSON variant: progress lines
// while the synthesis runs, one result or error line to finish.
func (s *Server) streamSynthesize(ctx context.Context, w http.ResponseWriter, synth *punt.Synthesizer, spec *punt.Spec, req Request, events <-chan punt.Progress) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	// Commit the response immediately: a streaming client must see headers
	// (and start reading lines) while the synthesis is still running, even
	// before the first progress event exists.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	type outcome struct {
		res *punt.Result
		err error
	}
	done := make(chan outcome, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Same last-line recover as the single-flight leader: the stream's
		// consumer below must always receive an outcome, and a bookkeeping
		// panic must cost one request, not the daemon.
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("internal panic during synthesis: %v", p)}
			}
		}()
		res, err := s.runAdmitted(ctx, func(runCtx context.Context) (*punt.Result, error) {
			return s.synthesize(runCtx, synth, spec, req)
		})
		done <- outcome{res, err}
	}()

	writeLine := func(line streamLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		select {
		//puntlint:ignore ctxdiscipline the done arm below always fires — runAdmitted honours ctx — and events must keep draining after a disconnect so the progress callback never blocks
		case p := <-events:
			if !writeLine(streamLine{Progress: &p}) {
				// Client gone; ctx cancellation is tearing the synthesis
				// down.  Keep draining events until it finishes so the
				// progress callback never blocks.
				continue
			}
		//puntlint:ignore ctxdiscipline this arm is the escape hatch itself: the goroutine above always sends an outcome, under cancellation included
		case out := <-done:
			if out.err != nil {
				body := errorBody(out.err)
				writeLine(streamLine{Error: &body})
				return
			}
			blob, err := punt.EncodeResult(out.res)
			if err != nil {
				body := errorBody(err)
				writeLine(streamLine{Error: &body})
				return
			}
			writeLine(streamLine{Result: blob})
			return
		}
	}
}

// streamLine is one line of the streaming response: exactly one field set.
type streamLine struct {
	Progress *punt.Progress  `json:"progress,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    *ErrorBody      `json:"error,omitempty"`
}

// respond writes the terminal response for a non-streaming request (or the
// warm-hit short-circuit of a streaming one).
func (s *Server) respond(w http.ResponseWriter, req Request, stream bool, res *punt.Result, err error) {
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return // client gone
		}
		if stream {
			w.Header().Set("Content-Type", "application/x-ndjson")
			body := errorBody(err)
			_ = json.NewEncoder(w).Encode(streamLine{Error: &body})
			return
		}
		writeError(w, err)
		return
	}
	blob, encErr := punt.EncodeResult(res)
	if encErr != nil {
		writeError(w, encErr)
		return
	}
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = json.NewEncoder(w).Encode(streamLine{Result: blob})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Stats.Cached {
		w.Header().Set("X-Punt-Cache", "hit")
	} else {
		w.Header().Set("X-Punt-Cache", "miss")
	}
	_, _ = w.Write(append(blob, '\n'))
}

// flightKey names one synthesis for single-flight dedup: the cache key (spec
// hash × result-affecting configuration) extended with the budget and ladder
// fields the cache key deliberately omits — two requests that differ only in
// budget must not share a flight, or one request's tight deadline could fail
// the other's generous one.
func flightKey(synth *punt.Synthesizer, spec *punt.Spec, req Request) string {
	return fmt.Sprintf("%s|dl=%d|mb=%d|fb=%t|vf=%t",
		synth.CacheKey(spec), req.DeadlineMS, req.MemBudget, req.Fallback, req.Verify)
}
