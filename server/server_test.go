package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"punt"
	"punt/internal/faultinject"
)

// slowBackend is a registered backend that blocks until its gate is opened,
// counting entries — the instrument behind the single-flight and admission
// tests.  It delegates the actual synthesis to the real unfolding flow.
type slowBackend struct {
	mu    sync.Mutex
	gate  chan struct{}
	count atomic.Int64
}

func (b *slowBackend) Name() string { return "server-test-slow" }

func (b *slowBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	b.count.Add(1)
	b.mu.Lock()
	gate := b.gate
	b.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return punt.New(punt.WithEngine(punt.Unfolding)).Synthesize(ctx, spec)
}

// arm installs a fresh closed gate and resets the counter; the returned
// function opens it.
func (b *slowBackend) arm() (release func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gate := make(chan struct{})
	b.gate = gate
	b.count.Store(0)
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

var slow = &slowBackend{}

func init() { punt.Register(slow) }

// post submits one synthesis request and returns the response.
func post(t *testing.T, client *http.Client, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// wantResult decodes a 200 response through the canonical serializer.
func wantResult(t *testing.T, resp *http.Response, data []byte) *punt.Result {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	res, err := punt.DecodeResult(bytes.TrimSpace(data))
	if err != nil {
		t.Fatalf("decoding result: %v\n%s", err, data)
	}
	return res
}

func TestSynthesizeColdThenWarm(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := Request{Spec: punt.Fig1().Text()}
	resp, data := post(t, ts.Client(), ts.URL, req)
	cold := wantResult(t, resp, data)
	if cold.Stats.Cached {
		t.Error("first synthesis reported cached")
	}
	if got := resp.Header.Get("X-Punt-Cache"); got != "miss" {
		t.Errorf("X-Punt-Cache = %q, want miss", got)
	}

	resp, data = post(t, ts.Client(), ts.URL, req)
	warm := wantResult(t, resp, data)
	if !warm.Stats.Cached {
		t.Error("second synthesis not served from the cache")
	}
	if got := resp.Header.Get("X-Punt-Cache"); got != "hit" {
		t.Errorf("X-Punt-Cache = %q, want hit", got)
	}
	if warm.Eqn() != cold.Eqn() {
		t.Error("warm hit changed the implementation")
	}

	st := srv.Stats()
	if st.Requests != 2 || st.WarmHits != 1 || st.Syntheses != 1 {
		t.Errorf("stats = %+v, want 2 requests / 1 warm hit / 1 synthesis", st)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRepliasShareStore stands up two servers over one store directory —
// two puntd replicas behind a load balancer — and proves a result
// synthesized by one is a warm hit on the other.
func TestReplicasShareStore(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	dir := t.TempDir()
	replica := func() (*Server, *httptest.Server) {
		disk, err := punt.NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{Cache: punt.NewTiered(punt.NewLRU(0), disk)})
		return srv, httptest.NewServer(srv.Handler())
	}
	srvA, tsA := replica()
	defer tsA.Close()
	srvB, tsB := replica()
	defer tsB.Close()

	req := Request{Spec: punt.Handshake().Text()}
	respA, dataA := post(t, tsA.Client(), tsA.URL, req)
	cold := wantResult(t, respA, dataA)

	respB, dataB := post(t, tsB.Client(), tsB.URL, req)
	warm := wantResult(t, respB, dataB)
	if !warm.Stats.Cached {
		t.Fatal("replica B did not serve replica A's result as a warm hit")
	}
	if warm.Eqn() != cold.Eqn() || warm.Spec.Hash() != cold.Spec.Hash() {
		t.Error("replicas disagree on the shared result")
	}
	if st := srvB.Stats(); st.WarmHits != 1 || st.Syntheses != 0 {
		t.Errorf("replica B stats = %+v, want a pure warm hit", st)
	}
	for _, srv := range []*Server{srvA, srvB} {
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSingleFlight floods the server with identical concurrent requests and
// proves exactly one synthesis runs: the rest join the in-flight one.
func TestSingleFlight(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := slow.arm()
	defer release()

	const n = 8
	req := Request{Spec: punt.Fig1().Text(), Backend: slow.Name()}
	var wg sync.WaitGroup
	results := make([]*punt.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.Client(), ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			results[i], errs[i] = punt.DecodeResult(bytes.TrimSpace(data))
		}(i)
	}
	// Wait until the one leader is inside the backend, then let it finish.
	deadline := time.Now().Add(10 * time.Second)
	for slow.count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Give followers a moment to join the flight before releasing.
	time.Sleep(50 * time.Millisecond)
	release()
	wg.Wait()

	if got := slow.count.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d identical requests, want exactly 1", got, n)
	}
	eqns := make(map[string]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		eqns[results[i].Eqn()] = true
	}
	if len(eqns) != 1 {
		t.Errorf("deduplicated requests returned %d distinct implementations", len(eqns))
	}
	st := srv.Stats()
	if st.Syntheses != 1 {
		t.Errorf("syntheses = %d, want 1", st.Syntheses)
	}
	if st.Joined == 0 {
		t.Error("no request joined the in-flight synthesis")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadRejects proves the admission bound: with one slot, no queue
// and the slot held, a request for different work is answered 429 with a
// Retry-After header instead of waiting without bound.
func TestOverloadRejects(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := slow.arm()
	defer release()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text(), Backend: slow.Name()})
		wantResult(t, resp, data)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for slow.count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Different spec → different flight → needs its own slot → 429.
	resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Handshake().Text(), Backend: slow.Name()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, data)
	}
	if body.ExitCode != 1 || body.RetryAfter == 0 {
		t.Errorf("429 body = %+v", body)
	}

	release()
	wg.Wait()
	if st := srv.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestErrorMapping pins the HTTP status and exit code of each failure class
// the client CLI keys off.
func TestErrorMapping(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cscText := mustReadSpecText(t, "../testdata/csc.g")
	for _, tc := range []struct {
		name     string
		req      Request
		status   int
		exitCode int
		sentinel error
	}{
		{
			name:     "unknown engine is usage",
			req:      Request{Spec: punt.Fig1().Text(), Engine: "warp-drive"},
			status:   http.StatusBadRequest,
			exitCode: 2,
		},
		{
			name:     "unknown backend is usage",
			req:      Request{Spec: punt.Fig1().Text(), Backend: "no-such"},
			status:   http.StatusBadRequest,
			exitCode: 2,
		},
		{
			name:     "unparsable spec",
			req:      Request{Spec: "this is not a .g file"},
			status:   http.StatusBadRequest,
			exitCode: 1,
		},
		{
			name:     "CSC conflict",
			req:      Request{Spec: cscText},
			status:   http.StatusUnprocessableEntity,
			exitCode: 1,
			sentinel: punt.ErrCSC,
		},
		{
			// Explicit enumeration of a 22-stage pipeline (2^22-ish states)
			// cannot finish in 50ms, so the watchdog trips deterministically.
			name:     "budget exhaustion",
			req:      Request{Spec: punt.MullerPipelineWithSignals(24).Text(), Engine: "explicit", DeadlineMS: 50},
			status:   http.StatusServiceUnavailable,
			exitCode: 4,
			sentinel: punt.ErrBudget,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.Client(), ts.URL, tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var body ErrorBody
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("error body is not JSON: %v\n%s", err, data)
			}
			if body.ExitCode != tc.exitCode {
				t.Errorf("exit_code = %d, want %d (%s)", body.ExitCode, tc.exitCode, body.Error)
			}
			if tc.sentinel != nil {
				if body.Diagnostic == nil {
					t.Fatalf("no structured diagnostic attached: %s", data)
				}
				if !errors.Is(body.Diagnostic, tc.sentinel) {
					t.Errorf("decoded diagnostic does not match %v: %+v", tc.sentinel, body.Diagnostic)
				}
			}
		})
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func mustReadSpecText(t *testing.T, path string) string {
	t.Helper()
	spec, err := punt.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Text()
}

// TestStreaming drives the newline-delimited variant: progress lines arrive
// before the terminal result line, and the result decodes through the same
// serializer as the plain response.
func TestStreaming(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Request{Spec: punt.MullerPipeline(6).Text(), Stream: true})
	resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var progress int
	var res *punt.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Progress *punt.Progress  `json:"progress"`
			Result   json.RawMessage `json:"result"`
			Error    *ErrorBody      `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Progress != nil:
			if res != nil {
				t.Error("progress after the terminal line")
			}
			if line.Progress.Stage == "" {
				t.Errorf("progress without a stage: %+v", line.Progress)
			}
			progress++
		case line.Result != nil:
			res, err = punt.DecodeResult(line.Result)
			if err != nil {
				t.Fatalf("terminal result does not decode: %v", err)
			}
		case line.Error != nil:
			t.Fatalf("stream failed: %+v", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Error("no progress events forwarded")
	}
	if res == nil {
		t.Fatal("stream ended without a result line")
	}
	if res.Eqn() == "" {
		t.Error("streamed result has no implementation")
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDisconnect cancels a streaming request mid-synthesis and proves
// the server tears the work down without leaking goroutines.
func TestStreamDisconnect(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := slow.arm()
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(Request{Spec: punt.Fig1().Text(), Backend: slow.Name(), Stream: true})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	// The backend is now blocked on its gate; hang up mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for slow.count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The synthesis must unwind through the cancelled context — the gate
	// stays closed, so anything still running would hang Drain.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("server did not drain after a mid-stream disconnect: %v", err)
	}

	// And the server still works afterwards.
	release()
	resp2, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text()})
	wantResult(t, resp2, data)
}

// TestAbandonedFlightIsCancelled proves the single-flight refcount: when
// every client of an in-flight synthesis disconnects, the work is cancelled
// instead of running to completion unobserved.
func TestAbandonedFlightIsCancelled(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := slow.arm()
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(Request{Spec: punt.Handshake().Text(), Backend: slow.Name()})
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/synthesize", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(hreq)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for slow.count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	// Without the abandon-cancel the leader goroutine would block on the
	// gate forever and Drain would time out.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("abandoned flight was not cancelled: %v", err)
	}
}

// TestChaosServer sweeps seeded fault schedules — injected cancellations,
// panics and corruptions across the facade, cache, disk store and
// single-flight checkpoints — through concurrent requests, asserting every
// response is either a valid result or a structured error, the server keeps
// serving, and nothing leaks.
func TestChaosServer(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}

	specs := []*punt.Spec{punt.Fig1(), punt.Handshake(), punt.MullerPipeline(4)}
	for seed := 0; seed < 12; seed++ {
		inj := faultinject.Schedule(int64(seed), faultinject.FacadeOps, 1+seed%3, 2)
		disk, err := punt.NewDiskCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{
			Cache: punt.NewTiered(punt.NewLRU(0), disk),
			WrapContext: func(ctx context.Context) context.Context {
				return faultinject.With(ctx, inj)
			},
		})
		ts := httptest.NewServer(srv.Handler())

		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := Request{Spec: specs[(seed+i)%len(specs)].Text(), Stream: i%2 == 1}
				body, _ := json.Marshal(req)
				resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("seed %d: transport error: %v", seed, err)
					return
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				checkChaosResponse(t, seed, req, resp, data)
			}(i)
		}
		wg.Wait()

		// The replica must still serve clean requests after the schedule.
		resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: server unhealthy after chaos (fired %v): %d %s",
				seed, inj.Fired(), resp.StatusCode, data)
		}
		if _, err := punt.DecodeResult(bytes.TrimSpace(data)); err != nil {
			t.Fatalf("seed %d: post-chaos result does not decode: %v", seed, err)
		}
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Drain(dctx); err != nil {
			t.Fatalf("seed %d: drain failed: %v", seed, err)
		}
		dcancel()
		ts.Close()
	}
}

// checkChaosResponse asserts the chaos invariant for one response: a 200
// carries a decodable result, anything else carries a structured JSON error.
func checkChaosResponse(t *testing.T, seed int, req Request, resp *http.Response, data []byte) {
	t.Helper()
	if req.Stream {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		terminal := false
		for sc.Scan() {
			var line struct {
				Progress *punt.Progress  `json:"progress"`
				Result   json.RawMessage `json:"result"`
				Error    *ErrorBody      `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Errorf("seed %d: bad stream line %q: %v", seed, sc.Text(), err)
				return
			}
			if line.Result != nil {
				if _, err := punt.DecodeResult(line.Result); err != nil {
					t.Errorf("seed %d: stream result does not decode: %v", seed, err)
				}
				terminal = true
			}
			if line.Error != nil {
				if line.Error.Error == "" || line.Error.ExitCode == 0 {
					t.Errorf("seed %d: malformed stream error: %+v", seed, line.Error)
				}
				terminal = true
			}
		}
		if !terminal {
			t.Errorf("seed %d: stream ended without a terminal line:\n%s", seed, data)
		}
		return
	}
	if resp.StatusCode == http.StatusOK {
		if _, err := punt.DecodeResult(bytes.TrimSpace(data)); err != nil {
			t.Errorf("seed %d: 200 response does not decode: %v\n%s", seed, err, data)
		}
		return
	}
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Errorf("seed %d: %d response is not a JSON error: %v\n%s", seed, resp.StatusCode, err, data)
		return
	}
	if body.Error == "" || body.ExitCode == 0 {
		t.Errorf("seed %d: malformed error body: %+v", seed, body)
	}
}

// TestStatsEndpoint smoke-checks the observability surface.
func TestStatsEndpoint(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	disk, err := punt.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Cache: punt.NewTiered(punt.NewLRU(0), disk)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text()})
	wantResult(t, resp, data)
	resp, data = post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text()})
	wantResult(t, resp, data)

	sresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.WarmHits != 1 || st.Syntheses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cache == nil || st.Cache.Tier != "tiered" || len(st.Cache.Tiers) != 2 {
		t.Fatalf("stats carry no per-tier cache breakdown: %+v", st.Cache)
	}
	if disk := st.Cache.Tiers[1]; disk.Tier != "disk" || disk.Entries != 1 {
		t.Errorf("disk tier = %+v, want one persisted entry", disk)
	}

	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hresp.StatusCode)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(srv.Stats().Cache.String(), "tiered") {
		t.Error("cache stats String lost the tier name")
	}
}

// TestRetryAfterScalesWithLoad pins the derived overload hint: Retry-After
// is the median observed synthesis time scaled by the work standing between
// the rejected request and a free slot, so a deeper queue means a longer
// back-off — not a hard-coded "1".
func TestRetryAfterScalesWithLoad(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2, MaxQueue: -1})

	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("with no observations retryAfterSeconds = %d, want the 1s fallback", got)
	}

	for i := 0; i < 5; i++ {
		srv.observeSynthesis(4 * time.Second)
	}
	idle := srv.retryAfterSeconds() // ahead=1, slots=2 → ceil(4s·1/2) = 2
	if idle != 2 {
		t.Fatalf("idle retryAfterSeconds = %d, want 2", idle)
	}

	// Saturate the slots and stack a queue: the same median must now yield a
	// proportionally longer hint.  ahead = 3 queued + 2 in flight + 1 self.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	srv.queued.Add(3)
	loaded := srv.retryAfterSeconds() // ceil(4s·6/2) = 12
	if loaded != 12 {
		t.Fatalf("loaded retryAfterSeconds = %d, want 12", loaded)
	}
	if loaded <= idle {
		t.Fatalf("hint does not scale with load: idle %d, loaded %d", idle, loaded)
	}

	// Pathological synthesis times clamp at the 60s ceiling.
	for i := 0; i < durRingSize; i++ {
		srv.observeSynthesis(10 * time.Minute)
	}
	if got := srv.retryAfterSeconds(); got != 60 {
		t.Fatalf("clamped retryAfterSeconds = %d, want 60", got)
	}
}

// TestRetryAfterHeaderMatchesBody drives a real rejection end to end after
// seeding the duration ring, asserting the header carries the derived value
// (not "1") and agrees with the JSON body.
func TestRetryAfterHeaderMatchesBody(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	srv := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	for i := 0; i < 5; i++ {
		srv.observeSynthesis(7 * time.Second)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	release := slow.arm()
	defer release()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Fig1().Text(), Backend: slow.Name()})
		wantResult(t, resp, data)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for slow.count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp, data := post(t, ts.Client(), ts.URL, Request{Spec: punt.Handshake().Text(), Backend: slow.Name()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	var body ErrorBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, data)
	}
	// median 7s, ahead = 0 queued + 1 in flight + 1 self, slots 1 → 14s.
	if body.RetryAfter != 14 {
		t.Errorf("derived RetryAfter = %d, want 14", body.RetryAfter)
	}
	if got := resp.Header.Get("Retry-After"); got != fmt.Sprintf("%d", body.RetryAfter) {
		t.Errorf("Retry-After header %q disagrees with body %d", got, body.RetryAfter)
	}

	release()
	wg.Wait()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
