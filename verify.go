package punt

import (
	"context"
	"errors"

	"punt/internal/verify"
)

// errEmptyResult guards Verify against a nil or implementation-less Result.
var errEmptyResult = errors.New("verify needs a Result with an implementation")

// VerifyReport summarises a successful closed-loop verification: how many
// gates were checked over how many composed circuit-plus-environment states.
type VerifyReport = verify.Report

// DifferentialReport is the outcome of a Differential run: the per-engine
// results and any cross-engine disagreements (empty when all engines agree).
type DifferentialReport = verify.DiffReport

// Verify checks a synthesised implementation against its specification with
// an event-driven gate-level simulation closed over the environment the
// specification describes.  Every gate — and, for the memory-element
// architectures, every set/reset network output — switches after an
// arbitrary, unbounded delay, and all interleavings are explored.  Three
// properties are checked:
//
//   - conformance: the circuit can only drive output edges the specification
//     enables (no unexpected transitions in the output trace);
//   - hazard-freedom: an excited gate stays excited until it fires, so no
//     delay assignment can glitch an output;
//   - liveness: every specification-enabled output transition is producible
//     by the circuit.
//
// Disjoint parts of the specification (connected components of the net,
// merged when a gate's support couples them) are verified independently, so
// product-state-space specifications such as the counterflow pipeline stay
// tractable.
//
// On a violation Verify returns a *Diagnostic whose Kind is KindConformance,
// KindHazard or KindLiveness (all matched by errors.Is against
// ErrVerification) carrying the offending Signal and a timed counterexample
// in Trace.  WithMaxStates bounds the per-cluster exploration (exceeding it
// fails with ErrLimit); ctx cancellation aborts promptly.
func Verify(ctx context.Context, spec *Spec, res *Result, opts ...Option) (*VerifyReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if res == nil || res.Impl == nil {
		return nil, &Diagnostic{Op: "verify", Kind: KindUnknown, Err: errEmptyResult}
	}
	rep, err := verify.Verify(ctx, spec.g, res.Impl, verify.Options{MaxStates: cfg.maxStates})
	if err != nil {
		return nil, diagnose("verify", spec.Name(), err)
	}
	return rep, nil
}

// Differential synthesises the specification with every engine — the
// unfolding flow in both modes, the explicit and the symbolic state-graph
// baselines, and optionally the memory-element architectures — and
// cross-checks the next-state function of every output signal state by state
// against the explicit state graph.  Specifications the oracle rejects (CSC
// conflicts, persistency violations) must be rejected by the engines too.
//
// Engine failures and mismatches are reported inside the DifferentialReport
// (check Ok()); Differential only returns an error when the oracle itself
// cannot be built.  WithMaxStates bounds the oracle and the engines' budgets.
func Differential(ctx context.Context, spec *Spec, opts ...Option) (*DifferentialReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	rep, err := verify.Differential(ctx, spec.g, verify.DiffOptions{
		MaxStates:     cfg.maxStates,
		Architectures: true,
	})
	if err != nil {
		return nil, diagnose("differential", spec.Name(), err)
	}
	return rep, nil
}
