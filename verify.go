package punt

import (
	"context"
	"errors"

	"punt/gates"
	"punt/internal/verify"
)

// errEmptyResult guards Verify against a nil or implementation-less Result.
var errEmptyResult = errors.New("verify needs a Result with an implementation")

// VerifyReport summarises a successful closed-loop verification: how many
// gates were checked over how many composed circuit-plus-environment states.
type VerifyReport = verify.Report

// DifferentialReport is the outcome of a Differential run: the per-engine
// results and any cross-engine disagreements (empty when all engines agree).
type DifferentialReport = verify.DiffReport

// Verify checks a synthesised implementation against its specification with
// an event-driven gate-level simulation closed over the environment the
// specification describes.  Every gate — and, for the memory-element
// architectures, every set/reset network output — switches after an
// arbitrary, unbounded delay, and all interleavings are explored.  Three
// properties are checked:
//
//   - conformance: the circuit can only drive output edges the specification
//     enables (no unexpected transitions in the output trace);
//   - hazard-freedom: an excited gate stays excited until it fires, so no
//     delay assignment can glitch an output;
//   - liveness: every specification-enabled output transition is producible
//     by the circuit.
//
// Disjoint parts of the specification (connected components of the net,
// merged when a gate's support couples them) are verified independently, so
// product-state-space specifications such as the counterflow pipeline stay
// tractable.
//
// On a violation Verify returns a *Diagnostic whose Kind is KindConformance,
// KindHazard or KindLiveness (all matched by errors.Is against
// ErrVerification) carrying the offending Signal and a timed counterexample
// in Trace.  WithMaxStates bounds the per-cluster exploration (exceeding it
// fails with ErrLimit); ctx cancellation aborts promptly.
func Verify(ctx context.Context, spec *Spec, res *Result, opts ...Option) (*VerifyReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if res == nil || res.Impl == nil {
		return nil, &Diagnostic{Op: "verify", Kind: KindUnknown, Err: errEmptyResult}
	}
	rep, err := verify.Verify(ctx, spec.g, res.Impl, verify.Options{MaxStates: cfg.maxStates})
	if err != nil {
		return nil, diagnose("verify", spec.Name(), err)
	}
	return rep, nil
}

// Differential synthesises the specification with every engine — the
// unfolding flow in both modes, the explicit and the symbolic state-graph
// baselines, and the memory-element architectures — and cross-checks the
// next-state function of every output signal state by state against the
// explicit state graph.  Specifications the oracle rejects (CSC conflicts,
// persistency violations) must be rejected by the engines too.  The engine
// configurations are driven through the registered public backends, so the
// harness exercises exactly the dispatch path Synthesize takes.
//
// Engine failures and mismatches are reported inside the DifferentialReport
// (check Ok()); Differential only returns an error when the oracle itself
// cannot be built.  WithMaxStates bounds the oracle and the engines' budgets.
func Differential(ctx context.Context, spec *Spec, opts ...Option) (*DifferentialReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	rep, err := verify.Differential(ctx, spec.g, verify.DiffOptions{
		MaxStates: cfg.maxStates,
		Engines:   differentialEngines(spec, cfg.maxStates),
	})
	if err != nil {
		return nil, diagnose("differential", spec.Name(), err)
	}
	return rep, nil
}

// differentialEngines builds the engine configurations Differential
// cross-checks, each one running a registered backend through the same
// runBackend dispatch as Synthesize: both unfolding modes, both state-graph
// baselines and the memory-element architectures.
func differentialEngines(spec *Spec, maxStates int) []verify.EngineUnderTest {
	limit := maxStates
	if limit <= 0 {
		limit = verify.DefaultMaxStates
	}
	type engineCfg struct {
		name     string
		backend  string
		baseline bool
		cfg      BackendConfig
	}
	configs := []engineCfg{
		{name: "unfolding-approx", backend: "unfolding", cfg: BackendConfig{Mode: Approximate}},
		{name: "unfolding-exact", backend: "unfolding", cfg: BackendConfig{Mode: Exact}},
		{name: "explicit", backend: "explicit", baseline: true, cfg: BackendConfig{MaxStates: limit}},
		{name: "symbolic", backend: "symbolic", baseline: true, cfg: BackendConfig{}},
		{name: "unfolding/standard-c", backend: "unfolding", cfg: BackendConfig{Arch: gates.StandardC}},
		{name: "unfolding/rs-latch", backend: "unfolding", cfg: BackendConfig{Arch: gates.RSLatch}},
		{name: "decompose", backend: "decompose", cfg: BackendConfig{}},
	}
	engines := make([]verify.EngineUnderTest, 0, len(configs))
	for _, c := range configs {
		c := c
		engines = append(engines, verify.EngineUnderTest{
			Name:     c.name,
			Baseline: c.baseline,
			Run: func(ctx context.Context) (*gates.Implementation, error) {
				b, err := lookupBackend(c.backend)
				if err != nil {
					return nil, err
				}
				res, err := runBackend(ctx, b, spec, c.cfg)
				if err != nil {
					return nil, err
				}
				return res.Impl, nil
			},
		})
	}
	return engines
}
