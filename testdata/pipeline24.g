.model muller-pipeline-22
.inputs c0 c23
.outputs c1 c2 c3 c4 c5 c6 c7 c8 c9 c10 c11 c12 c13 c14 c15 c16 c17 c18 c19 c20 c21 c22
.graph
c0+ c1+
c0- c1-
c1+ c2+ c0-
c1- c2- c0+
c2+ c1- c3+
c2- c1+ c3-
c3+ c2- c4+
c3- c2+ c4-
c4+ c3- c5+
c4- c3+ c5-
c5+ c4- c6+
c5- c4+ c6-
c6+ c5- c7+
c6- c5+ c7-
c7+ c6- c8+
c7- c6+ c8-
c8+ c7- c9+
c8- c7+ c9-
c9+ c8- c10+
c9- c8+ c10-
c10+ c9- c11+
c10- c9+ c11-
c11+ c10- c12+
c11- c10+ c12-
c12+ c11- c13+
c12- c11+ c13-
c13+ c12- c14+
c13- c12+ c14-
c14+ c13- c15+
c14- c13+ c15-
c15+ c14- c16+
c15- c14+ c16-
c16+ c15- c17+
c16- c15+ c17-
c17+ c16- c18+
c17- c16+ c18-
c18+ c17- c19+
c18- c17+ c19-
c19+ c18- c20+
c19- c18+ c20-
c20+ c19- c21+
c20- c19+ c21-
c21+ c20- c22+
c21- c20+ c22-
c22+ c21- c23+
c22- c21+ c23-
c23+ c22-
c23- c22+
.marking { <c1-,c0+> <c10-,c9+> <c11-,c10+> <c12-,c11+> <c13-,c12+> <c14-,c13+> <c15-,c14+> <c16-,c15+> <c17-,c16+> <c18-,c17+> <c19-,c18+> <c2-,c1+> <c20-,c19+> <c21-,c20+> <c22-,c21+> <c23-,c22+> <c3-,c2+> <c4-,c3+> <c5-,c4+> <c6-,c5+> <c7-,c6+> <c8-,c7+> <c9-,c8+> }
.initial_state 000000000000000000000000
.end
