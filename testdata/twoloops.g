# Two fully independent request/acknowledge handshake loops sharing no
# signals, places or transitions — the smallest specification the decompose
# engine splits into two components.
.model two-loops
.inputs r1 r2
.outputs a1 a2
.graph
r1+ a1+
a1+ r1-
r1- a1-
a1- r1+
r2+ a2+
a2+ r2-
r2- a2-
a2- r2+
.marking { <a1-,r1+> <a2-,r2+> }
.initial_state 0000
.end
