# A non-semi-modular specification: after the input a+ the choice place p
# feeds two *output* transitions, so firing one disables the other excited
# output — an output-persistency violation that no hazard-free
# speed-independent circuit can implement.
.model nonsm
.inputs a
.outputs x y
.graph
a+ p
p x+
p y+
x+ a-/1
y+ a-/2
a-/1 x-
a-/2 y-
x- q
y- q
q a+
.marking { q }
.initial_state 000
.end
