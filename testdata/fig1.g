# The worked example of the paper's Figure 1 (three signals; the output b
# synthesises to the cover b = a + c).
.model paper-fig1
.inputs a c
.outputs b
.graph
a+ p2 p3
b+ p7 p8
b+/2 p5
c+ p4
c+/2 p6 p8
a- p7
b- p1
c- p9
p1 a+ c+
p2 b+/2
p3 c+/2
p4 b+
p5 a-
p6 a-
p7 c-
p8 c-
p9 b-
.marking { p1 }
.initial_state 000
.end
