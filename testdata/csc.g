# A Complete State Coding violation: the input req performs two successive
# handshakes with two different outputs, and no signal distinguishes the two
# phases — two reachable states share the code 100 but excite different
# outputs.
.model csc-broken
.inputs req
.outputs out1 out2
.graph
req+ out1+
out1+ req-
req- out1-
out1- req+/2
req+/2 out2+
out2+ req-/2
req-/2 out2-
out2- req+
.marking { <out2-,req+> }
.initial_state 000
.end
