package punt

import (
	"context"
	"errors"
	"strings"
	"testing"

	"punt/gates"
	"punt/internal/boolcover"
)

// synthAndVerify runs one spec through synthesis and closed-loop verification
// with the given options.
func synthAndVerify(t *testing.T, name string, spec *Spec, opts ...Option) *VerifyReport {
	t.Helper()
	ctx := context.Background()
	res, err := New(opts...).Synthesize(ctx, spec)
	if err != nil {
		t.Fatalf("%s: synthesize: %v", name, err)
	}
	rep, err := Verify(ctx, spec, res, opts...)
	if err != nil {
		t.Fatalf("%s: verify: %v", name, err)
	}
	return rep
}

// TestVerifyTable1GoldenSuite is the verification golden suite: every Table 1
// benchmark must verify conformant, hazard-free and live in both cover
// derivation modes.
func TestVerifyTable1GoldenSuite(t *testing.T) {
	for _, mode := range []Mode{Approximate, Exact} {
		for _, item := range Table1() {
			rep := synthAndVerify(t, item.Name, item.Spec, WithMode(mode))
			if rep.Outputs == 0 || rep.ComposedStates == 0 {
				t.Errorf("%s (mode %v): degenerate report %v", item.Name, mode, rep)
			}
		}
	}
}

// TestVerifyPipelines verifies the scalable Figure 6 examples.
func TestVerifyPipelines(t *testing.T) {
	for _, stages := range []int{1, 3, 6, 9} {
		spec := MullerPipeline(stages)
		synthAndVerify(t, spec.Name(), spec)
	}
}

// TestVerifyCounterflow verifies the 34-signal counterflow pipeline — the
// product state graph is astronomically large, but the verifier decomposes it
// into its two independent pipelines.
func TestVerifyCounterflow(t *testing.T) {
	if testing.Short() {
		t.Skip("explores 2x131072 composed states")
	}
	spec := CounterflowPipeline()
	rep := synthAndVerify(t, spec.Name(), spec)
	if rep.Clusters != 2 {
		t.Errorf("counterflow should verify as 2 independent clusters, got %d", rep.Clusters)
	}
}

// TestVerifyArchitecturesGolden verifies the memory-element architectures —
// where the set and reset networks are independently delayed simulation nodes
// — on the worked examples and the full Table 1 suite.
func TestVerifyArchitecturesGolden(t *testing.T) {
	for _, arch := range []gates.Architecture{gates.StandardC, gates.RSLatch} {
		synthAndVerify(t, "fig1", Fig1(), WithArch(arch))
		synthAndVerify(t, "handshake", Handshake(), WithArch(arch))
		for _, item := range Table1() {
			synthAndVerify(t, item.Name, item.Spec, WithArch(arch))
		}
	}
}

// TestVerifyCorruptedFig1 hand-mutates the synthesised cover of
// testdata/fig1.g (b = a + c) and checks every corruption is rejected with a
// structured diagnostic and a concrete counterexample trace.
func TestVerifyCorruptedFig1(t *testing.T) {
	cases := []struct {
		name  string
		cover string // single-cube cover over (a, b, c)
		kind  DiagKind
	}{
		// b = a forgets the environment's c-branch: after c+ the spec waits
		// for b+ forever.
		{"dropped-term", "1--", KindLiveness},
		// b = 1 rises immediately, before the specification allows any b+.
		{"constant-one", "---", KindConformance},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := LoadFile("testdata/fig1.g")
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			res, err := New().Synthesize(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Verify(ctx, spec, res); err != nil {
				t.Fatalf("the honest implementation must verify: %v", err)
			}
			for i := range res.Impl.Gates {
				if res.Impl.Gates[i].Signal == "b" {
					res.Impl.Gates[i].Cover = boolcover.CoverFromStrings(tc.cover)
				}
			}
			_, err = Verify(ctx, spec, res)
			if err == nil {
				t.Fatal("the corrupted cover must fail verification")
			}
			if !errors.Is(err, ErrVerification) {
				t.Fatalf("errors.Is(err, ErrVerification) = false for %v", err)
			}
			var diag *Diagnostic
			if !errors.As(err, &diag) {
				t.Fatalf("expected a *Diagnostic, got %T", err)
			}
			if diag.Kind != tc.kind {
				t.Errorf("Kind = %v, want %v (%v)", diag.Kind, tc.kind, diag)
			}
			if diag.Signal != "b" {
				t.Errorf("Signal = %q, want b", diag.Signal)
			}
			if tc.kind == KindLiveness && len(diag.Trace) == 0 {
				t.Errorf("expected a timed counterexample trace, got none: %v", diag)
			}
			if !strings.Contains(diag.Error(), "b") {
				t.Errorf("diagnostic should name the signal: %v", diag)
			}
		})
	}
}

// TestVerifyStateLimit checks the budget path surfaces as ErrLimit.
func TestVerifyStateLimit(t *testing.T) {
	spec := Fig1()
	ctx := context.Background()
	res, err := New().Synthesize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(ctx, spec, res, WithMaxStates(2))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("expected ErrLimit, got %v", err)
	}
}

// TestVerifyCancellation checks ctx cancellation aborts the exploration.
func TestVerifyCancellation(t *testing.T) {
	spec := MullerPipeline(12)
	res, err := New().Synthesize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Verify(ctx, spec, res)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	var diag *Diagnostic
	if !errors.As(err, &diag) || diag.Kind != KindCanceled {
		t.Errorf("cancellation should be a KindCanceled diagnostic, got %v", err)
	}
}

// TestDifferentialFacade drives the differential harness through the public
// API on a worked example and on a CSC-conflicted spec.
func TestDifferentialFacade(t *testing.T) {
	rep, err := Differential(context.Background(), Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() || rep.CSCConflict {
		t.Errorf("Fig1 differential: %s", rep)
	}
	csc, err := LoadFile("testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	rep, err = Differential(context.Background(), csc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CSCConflict {
		t.Error("csc.g must be flagged as CSC-conflicted")
	}
	if !rep.Ok() {
		t.Errorf("all engines must agree on the CSC verdict: %s", rep)
	}
}
