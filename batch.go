package punt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BatchItem is one unit of work for Batch: a named specification.
type BatchItem struct {
	// Name identifies the item in results and diagnostics; when empty, the
	// specification's model name is used.
	Name string
	// Spec is the specification to synthesise.  The same *Spec value may
	// appear in several items: synthesis never mutates a loaded Spec.
	Spec *Spec
}

// BatchResult is the outcome of one Batch item: exactly one of Result and
// Err is set.
type BatchResult struct {
	// Name is the item's resolved name.
	Name string
	// Index is the item's position in the input slice; results are returned
	// in input order regardless of completion order.
	Index int
	// Result is the synthesis outcome, nil when the item failed.
	Result *Result
	// Err is the item's failure (a *Diagnostic), nil when it succeeded.
	// Items never started because the batch context was cancelled carry the
	// context's error.
	Err error
	// Elapsed is the item's wall-clock synthesis time.
	Elapsed time.Duration
}

// BatchSummary aggregates a Batch run.
type BatchSummary struct {
	// Items, Succeeded and Failed count the work; Items = Succeeded + Failed.
	Items     int
	Succeeded int
	Failed    int
	// Workers is the parallelism the pool ran with.
	Workers int
	// Elapsed is the wall-clock time of the whole batch; Work is the sum of
	// the per-item synthesis times (Work/Elapsed ≈ achieved parallelism).
	Elapsed time.Duration
	Work    time.Duration
	// Events and Literals total the segment events and implementation
	// literals of the successful items.
	Events   int
	Literals int
	// Resolved counts the successful items whose specification was repaired
	// by the WithResolveCSC resolver before synthesis.
	Resolved int
	// Degraded counts the successful items whose result was produced by a
	// WithFallback step instead of the primary configuration.
	Degraded int
	// BudgetExceeded counts the failed items that exhausted their
	// WithDeadline/WithMemoryBudget budget (after any fallback steps).
	BudgetExceeded int
}

// String summarises the batch.
func (s BatchSummary) String() string {
	out := fmt.Sprintf("batch: %d items, %d ok, %d failed, %d workers, wall=%v work=%v",
		s.Items, s.Succeeded, s.Failed, s.Workers,
		s.Elapsed.Round(time.Millisecond), s.Work.Round(time.Millisecond))
	if s.Resolved > 0 {
		out += fmt.Sprintf(", %d CSC-resolved", s.Resolved)
	}
	if s.Degraded > 0 {
		out += fmt.Sprintf(", %d degraded", s.Degraded)
	}
	if s.BudgetExceeded > 0 {
		out += fmt.Sprintf(", %d over budget", s.BudgetExceeded)
	}
	return out
}

// Batch synthesises many specifications concurrently with the options of s:
// a worker pool of WithWorkers size (GOMAXPROCS by default) drains the items,
// every item's failure is isolated into its own BatchResult, and the summary
// aggregates the run.  Results are returned in input order.
//
// Cancelling ctx stops the batch promptly: running items abort through the
// engines' cancellation checks and unstarted items fail with the context's
// error.  A worker that panics fails only its item.
func (s *Synthesizer) Batch(ctx context.Context, items []BatchItem) ([]BatchResult, BatchSummary) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := s.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]BatchResult, len(items))
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//puntlint:ignore gohygiene worker panics are recovered by runItem's own last-line defer; the loop here is panic-free bookkeeping
		go func() {
			defer wg.Done()
			for idx := range work {
				results[idx] = s.runItem(ctx, idx, items[idx])
			}
		}()
	}
feed:
	for i := range items {
		select {
		case work <- i:
		case <-ctx.Done():
			// Fail everything not yet handed out; the workers abort their
			// in-flight items through the engines' cancellation checks.
			for j := i; j < len(items); j++ {
				results[j] = BatchResult{
					Name:  itemName(items[j]),
					Index: j,
					Err:   diagnose("synthesize", itemName(items[j]), ctx.Err()),
				}
			}
			break feed
		}
	}
	close(work)
	wg.Wait()

	sum := BatchSummary{Items: len(items), Workers: workers, Elapsed: time.Since(start)}
	for _, r := range results {
		sum.Work += r.Elapsed
		if r.Err != nil {
			sum.Failed++
			if errors.Is(r.Err, ErrBudget) {
				sum.BudgetExceeded++
			}
			continue
		}
		sum.Succeeded++
		sum.Events += r.Result.Stats.Events
		sum.Literals += r.Result.Literals()
		if r.Result.Resolved() {
			sum.Resolved++
		}
		if r.Result.Degraded() {
			sum.Degraded++
		}
	}
	return results, sum
}

// runItem synthesises one batch item.  Panics inside the synthesis pipeline
// are already recovered into KindPanic diagnostics by the central dispatch;
// the recover here is the worker's last line of defence (facade bookkeeping
// outside the dispatch), so a panic fails only its item, never the batch.
func (s *Synthesizer) runItem(ctx context.Context, idx int, item BatchItem) (res BatchResult) {
	name := itemName(item)
	res = BatchResult{Name: name, Index: idx}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Result = nil
			res.Err = diagnose("synthesize", name,
				&PanicError{Backend: s.cfg.selection(), Value: p, Stack: debug.Stack()})
		}
	}()
	if item.Spec == nil {
		res.Err = diagnose("synthesize", name, fmt.Errorf("batch item %d has no specification", idx))
		return res
	}
	r, err := s.Synthesize(ctx, item.Spec)
	res.Result, res.Err = r, err
	return res
}

func itemName(item BatchItem) string {
	if item.Name != "" {
		return item.Name
	}
	if item.Spec != nil {
		return item.Spec.Name()
	}
	return "?"
}

// Batch is the package-level convenience: a one-shot worker-pool run with
// the given options.  See (*Synthesizer).Batch.
func Batch(ctx context.Context, items []BatchItem, opts ...Option) ([]BatchResult, BatchSummary) {
	return New(opts...).Batch(ctx, items)
}
