// gfile: the end-to-end flow on a textual .g specification.
//
// The program parses an STG written in the astg ".g" interchange format (the
// format used by SIS and Petrify), checks every correctness criterion
// required for speed-independent implementation (consistency, safeness,
// output persistency, CSC), builds the unfolding segment, synthesises the
// circuit in the standard C-element architecture and prints both the boolean
// equations and a behavioural Verilog module.  Pass a path to your own .g
// file to run the same flow on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"punt"
	"punt/gates"
)

// A small memory-read controller: the processor (pr) requests a read, the
// controller handshakes with the memory (mr/ma) and acknowledges (pa).
const defaultSpec = `
.model read-ctl
.inputs pr ma
.outputs mr pa
.graph
pr+ mr+
mr+ ma+
ma+ pa+
pa+ pr-
pr- mr-
mr- ma-
ma- pa-
pa- pr+
.marking { <pa-,pr+> }
.initial_state 0000
.end
`

func main() {
	path := flag.String("file", "", "path to a .g file (default: a built-in read controller)")
	flag.Parse()

	var spec *punt.Spec
	var err error
	if *path != "" {
		spec, err = punt.LoadFile(*path)
	} else {
		spec, err = punt.Parse(defaultSpec)
	}
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	ctx := context.Background()
	fmt.Print(spec.Describe())

	// Correctness checks on the state graph.
	sg, err := punt.BuildStateGraph(ctx, spec, punt.WithMaxStates(500000))
	if err != nil {
		log.Fatalf("state graph: %v", err)
	}
	fmt.Print(sg.Report())

	// The unfolding segment the synthesis works on.
	seg, err := punt.Unfold(ctx, spec)
	if err != nil {
		log.Fatalf("unfolding: %v", err)
	}
	fmt.Printf("unfolding segment: %s\n\n", seg.Stats())

	res, err := punt.New(punt.WithArch(gates.StandardC)).Synthesize(ctx, spec)
	if err != nil {
		log.Fatalf("synthesis: %v", err)
	}
	fmt.Println("set/reset equations (standard C-element architecture):")
	fmt.Print(res.Eqn())
	fmt.Println()
	fmt.Println("Verilog:")
	fmt.Print(res.Verilog())
}
