// gfile: the end-to-end flow on a textual .g specification.
//
// The program parses an STG written in the astg ".g" interchange format (the
// format used by SIS and Petrify), checks every correctness criterion
// required for speed-independent implementation (consistency, safeness,
// output persistency, CSC), builds the unfolding segment, synthesises the
// circuit in the standard C-element architecture and prints both the boolean
// equations and a behavioural Verilog module.  Pass a path to your own .g
// file to run the same flow on it.
package main

import (
	"flag"
	"fmt"
	"log"

	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// A small memory-read controller: the processor (pr) requests a read, the
// controller handshakes with the memory (mr/ma) and acknowledges (pa).
const defaultSpec = `
.model read-ctl
.inputs pr ma
.outputs mr pa
.graph
pr+ mr+
mr+ ma+
ma+ pa+
pa+ pr-
pr- mr-
mr- ma-
ma- pa-
pa- pr+
.marking { <pa-,pr+> }
.initial_state 0000
.end
`

func main() {
	path := flag.String("file", "", "path to a .g file (default: a built-in read controller)")
	flag.Parse()

	var g *stg.STG
	var err error
	if *path != "" {
		g, err = stg.ParseFile(*path)
	} else {
		g, err = stg.ParseString(defaultSpec)
	}
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	fmt.Print(stg.Describe(g))

	// Correctness checks on the state graph.
	sg, err := stategraph.Build(g, stategraph.Options{MaxStates: 500000})
	if err != nil {
		log.Fatalf("state graph: %v", err)
	}
	fmt.Print(sg.Report())

	// The unfolding segment the synthesis works on.
	u, err := unfolding.Build(g, unfolding.Options{})
	if err != nil {
		log.Fatalf("unfolding: %v", err)
	}
	fmt.Printf("unfolding segment: %s\n\n", u.Statistics())

	im, _, err := core.New(core.Options{Arch: gatelib.StandardC}).Synthesize(g)
	if err != nil {
		log.Fatalf("synthesis: %v", err)
	}
	fmt.Println("set/reset equations (standard C-element architecture):")
	fmt.Print(im.Eqn())
	fmt.Println()
	fmt.Println("Verilog:")
	fmt.Print(im.Verilog())
}
