// Muller pipeline: the scalable experiment of the paper's Figure 6.
//
// The program generates an n-stage Muller pipeline control STG, synthesises
// it with the unfolding-based flow and (for sizes where it is feasible) with
// the explicit state-graph baseline — both through the same public punt API —
// and reports how the two compare.  Run it with increasing -stages to watch
// the state graph explode while the unfolding segment, and therefore the
// synthesis time, grows gently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"punt"
)

func main() {
	stages := flag.Int("stages", 10, "number of pipeline stages")
	withBaseline := flag.Bool("baseline", true, "also run the explicit state-graph baseline (bounded)")
	stateLimit := flag.Int("state-limit", 200000, "state budget for the explicit baseline")
	flag.Parse()

	ctx := context.Background()
	spec := punt.MullerPipeline(*stages)
	fmt.Printf("Muller pipeline with %d stages (%d signals)\n", *stages, spec.NumSignals())

	start := time.Now()
	res, err := punt.New().Synthesize(ctx, spec)
	if err != nil {
		log.Fatalf("unfolding-based synthesis failed: %v", err)
	}
	fmt.Printf("PUNT (unfolding): %v, %d literals, segment of %d events\n",
		time.Since(start).Round(time.Millisecond), res.Literals(), res.Stats.Events)

	// Print the gate of a middle stage: the classic C-element equation
	// c_i = c_{i-1}·c_i + c_i·¬c_{i+1} + c_{i-1}·¬c_{i+1}.
	mid := fmt.Sprintf("c%d", (*stages+1)/2)
	if gate, ok := res.Gate(mid); ok {
		fmt.Printf("gate for %s: %d literals\n", mid, gate.Literals())
	}

	if *withBaseline {
		start = time.Now()
		resB, err := punt.New(
			punt.WithBaseline(punt.Explicit),
			punt.WithMaxStates(*stateLimit),
		).Synthesize(ctx, punt.MullerPipeline(*stages))
		switch {
		case errors.Is(err, punt.ErrLimit):
			fmt.Printf("SIS-like (explicit SG): gave up after %v: %v\n",
				time.Since(start).Round(time.Millisecond), err)
		case err != nil:
			log.Fatalf("explicit baseline failed: %v", err)
		default:
			fmt.Printf("SIS-like (explicit SG): %v, %d literals, %d states\n",
				time.Since(start).Round(time.Millisecond), resB.Literals(), resB.Stats.States)
		}
	}
}
