// cscconflict: what happens when a specification violates Complete State
// Coding.
//
// The program builds a controller in which the same input performs two
// successive handshakes with two different outputs.  The specification is
// consistent, safe and semi-modular, yet it cannot be implemented as a
// speed-independent circuit: two reachable states carry the same binary code
// but require different output behaviour.  The example shows how the
// unfolding-based flow reports the conflict (after refining its approximated
// covers to exact ones) and how the state-graph analysis pinpoints the pair
// of conflicting states.  It then repairs the specification by inserting an
// internal state signal and synthesises the corrected controller.
package main

import (
	"errors"
	"fmt"
	"log"

	"punt/internal/core"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

func broken() *stg.STG {
	b := stg.NewBuilder("csc-broken")
	b.Inputs("req").Outputs("out1", "out2")
	b.Chain("req+", "out1+", "req-", "out1-", "req+/2", "out2+", "req-/2", "out2-")
	b.Arc("out2-", "req+").MarkBetween("out2-", "req+")
	b.InitialState("000")
	return b.MustBuild()
}

// repaired inserts an internal signal x that distinguishes the first
// handshake from the second (the standard CSC repair by signal insertion the
// paper mentions in Section 2.2).
func repaired() *stg.STG {
	b := stg.NewBuilder("csc-repaired")
	b.Inputs("req").Outputs("out1", "out2").Internals("x")
	b.Chain("req+", "out1+", "x+", "req-", "out1-", "req+/2", "out2+", "x-", "req-/2", "out2-")
	b.Arc("out2-", "req+").MarkBetween("out2-", "req+")
	b.InitialState("0000")
	return b.MustBuild()
}

func main() {
	g := broken()
	fmt.Println("synthesising the broken controller...")
	_, _, err := core.New(core.Options{}).Synthesize(g)
	var csc *core.CSCError
	if errors.As(err, &csc) {
		fmt.Printf("unfolding-based flow: %v\n", err)
	} else if err != nil {
		log.Fatalf("unexpected error: %v", err)
	} else {
		log.Fatal("the broken controller should not be synthesisable")
	}

	sg, err := stategraph.Build(broken(), stategraph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	conflicts := sg.CheckCSC()
	fmt.Printf("state graph analysis: %d CSC conflict(s); first: %s\n\n", len(conflicts), conflicts[0])

	fmt.Println("synthesising the repaired controller (internal signal x inserted)...")
	im, stats, err := core.New(core.Options{}).Synthesize(repaired())
	if err != nil {
		log.Fatalf("repaired controller failed: %v", err)
	}
	fmt.Printf("success: %d literals, segment of %d events\n\n", im.Literals(), stats.Events)
	fmt.Print(im.Eqn())
}
