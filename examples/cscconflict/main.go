// cscconflict: what happens when a specification violates Complete State
// Coding.
//
// The program parses a controller in which the same input performs two
// successive handshakes with two different outputs.  The specification is
// consistent, safe and semi-modular, yet it cannot be implemented as a
// speed-independent circuit: two reachable states carry the same binary code
// but require different output behaviour.  The example shows how the
// unfolding-based flow reports the conflict through the structured
// *punt.Diagnostic (after refining its approximated covers to exact ones) and
// how the state-graph analysis pinpoints the pair of conflicting states.  It
// then repairs the specification by inserting an internal state signal and
// synthesises the corrected controller.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"punt"
)

// The broken controller: input req handshakes first with out1, then with
// out2, with no state signal distinguishing the two phases.
const brokenSpec = `
.model csc-broken
.inputs req
.outputs out1 out2
.graph
req+ out1+
out1+ req-
req- out1-
out1- req+/2
req+/2 out2+
out2+ req-/2
req-/2 out2-
out2- req+
.marking { <out2-,req+> }
.initial_state 000
.end
`

// The repaired controller: an internal signal x distinguishes the first
// handshake from the second (the standard CSC repair by signal insertion the
// paper mentions in Section 2.2).
const repairedSpec = `
.model csc-repaired
.inputs req
.outputs out1 out2
.internal x
.graph
req+ out1+
out1+ x+
x+ req-
req- out1-
out1- req+/2
req+/2 out2+
out2+ x-
x- req-/2
req-/2 out2-
out2- req+
.marking { <out2-,req+> }
.initial_state 0000
.end
`

func main() {
	ctx := context.Background()
	broken, err := punt.Parse(brokenSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesising the broken controller...")
	_, err = punt.New().Synthesize(ctx, broken)
	var diag *punt.Diagnostic
	switch {
	case errors.As(err, &diag) && diag.Kind == punt.KindCSC:
		fmt.Printf("unfolding-based flow: %v\n", err)
		fmt.Printf("structured diagnostic: kind=%v signal=%q\n", diag.Kind, diag.Signal)
	case err != nil:
		log.Fatalf("unexpected error: %v", err)
	default:
		log.Fatal("the broken controller should not be synthesisable")
	}
	// The same failure also matches the package sentinel:
	if !errors.Is(err, punt.ErrCSC) {
		log.Fatal("the diagnostic should match punt.ErrCSC")
	}

	sg, err := punt.BuildStateGraph(ctx, broken)
	if err != nil {
		log.Fatal(err)
	}
	conflicts := sg.CSCConflicts()
	fmt.Printf("state graph analysis: %d CSC conflict(s); first: %s\n\n", len(conflicts), conflicts[0])

	fmt.Println("synthesising the repaired controller (internal signal x inserted)...")
	repaired, err := punt.Parse(repairedSpec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := punt.New().Synthesize(ctx, repaired)
	if err != nil {
		log.Fatalf("repaired controller failed: %v", err)
	}
	fmt.Printf("success: %d literals, segment of %d events\n\n", res.Literals(), res.Stats.Events)
	fmt.Print(res.Eqn())
}
