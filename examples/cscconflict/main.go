// cscconflict: what happens when a specification violates Complete State
// Coding — and how the resolver repairs it automatically.
//
// The program parses a controller in which the same input performs two
// successive handshakes with two different outputs.  The specification is
// consistent, safe and semi-modular, yet it cannot be implemented as a
// speed-independent circuit: two reachable states carry the same binary code
// but require different output behaviour.  The example shows how the
// synthesis flow reports the conflict through the structured
// *punt.Diagnostic, how the state-graph analysis pinpoints the pair of
// conflicting states (with witness traces), and how WithResolveCSC repairs
// the specification without manual intervention: an internal state signal is
// inserted to distinguish the two handshake phases, the repaired controller
// is synthesised, and the result is proven conformant, hazard-free and live
// by the closed-loop verifier.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"punt"
)

// The broken controller: input req handshakes first with out1, then with
// out2, with no state signal distinguishing the two phases.
const brokenSpec = `
.model csc-broken
.inputs req
.outputs out1 out2
.graph
req+ out1+
out1+ req-
req- out1-
out1- req+/2
req+/2 out2+
out2+ req-/2
req-/2 out2-
out2- req+
.marking { <out2-,req+> }
.initial_state 000
.end
`

func main() {
	ctx := context.Background()
	broken, err := punt.Parse(brokenSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("synthesising the broken controller...")
	_, err = punt.New().Synthesize(ctx, broken)
	var diag *punt.Diagnostic
	switch {
	case errors.As(err, &diag) && diag.Kind == punt.KindCSC:
		fmt.Printf("unfolding-based flow: %v\n", err)
		fmt.Printf("structured diagnostic: kind=%v signal=%q\n", diag.Kind, diag.Signal)
	case err != nil:
		log.Fatalf("unexpected error: %v", err)
	default:
		log.Fatal("the broken controller should not be synthesisable")
	}
	// The same failure also matches the package sentinel:
	if !errors.Is(err, punt.ErrCSC) {
		log.Fatal("the diagnostic should match punt.ErrCSC")
	}

	// The state graph pinpoints the conflict: the same code, two states,
	// different excited outputs — with a shortest witness trace to each.
	sg, err := punt.BuildStateGraph(ctx, broken)
	if err != nil {
		log.Fatal(err)
	}
	conflicts := sg.CSCConflicts()
	fmt.Printf("state graph analysis: %d CSC conflict(s)\n", len(conflicts))
	c := conflicts[0]
	fmt.Printf("  %s\n", c)
	fmt.Printf("  differing outputs: %s\n", strings.Join(c.DiffSignals, ", "))
	fmt.Printf("  witness to state %d: %s\n", c.StateA, strings.Join(c.TraceA, " "))
	fmt.Printf("  witness to state %d: %s\n\n", c.StateB, strings.Join(c.TraceB, " "))

	// The repair is automatic: WithResolveCSC inserts internal state signals
	// until Complete State Coding holds, re-synthesises, and checks the
	// repaired circuit with the closed-loop verifier.
	fmt.Println("synthesising again with punt.WithResolveCSC(4)...")
	res, err := punt.New(punt.WithResolveCSC(4)).Synthesize(ctx, broken)
	if err != nil {
		log.Fatalf("automatic resolution failed: %v", err)
	}
	fmt.Printf("resolved: inserted %d internal signal(s) [%s] in %d iteration(s)\n",
		res.Stats.CSCSignalsInserted, res.Resolution.Signal, res.Stats.CSCIterations)
	for _, line := range res.Resolution.Trace {
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("repaired specification signals: %s\n\n", strings.Join(res.Spec.SignalNames(), " "))

	// Result.Spec is the repaired specification; the implementation is
	// verified against it (Synthesize already did this once internally).
	rep, err := punt.Verify(ctx, res.Spec, res)
	if err != nil {
		log.Fatalf("the repaired circuit must verify: %v", err)
	}
	fmt.Printf("closed-loop verification: %s\n\n", rep)
	fmt.Printf("success: %d literals, segment of %d events\n\n", res.Literals(), res.Stats.Events)
	fmt.Print(res.Eqn())
}
