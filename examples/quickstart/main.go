// Quickstart: synthesise the worked example of the paper (Figure 1).
//
// The program builds the three-signal STG of Figure 1 programmatically,
// derives a speed-independent implementation with the unfolding-based flow
// (approximated covers, refined where needed) and prints the resulting
// complex-gate equations together with the synthesis statistics.  The
// expected result for the output signal b is the cover a + c, exactly as in
// Section 4.1 of the paper.
package main

import (
	"fmt"
	"log"

	"punt/internal/benchgen"
	"punt/internal/core"
	"punt/internal/stg"
)

func main() {
	g := benchgen.PaperFig1()
	fmt.Print(stg.Describe(g))
	fmt.Println("specification (.g format):")
	fmt.Println(stg.Format(g))

	synth := core.New(core.Options{}) // approximate mode, complex gate per signal
	im, stats, err := synth.Synthesize(g)
	if err != nil {
		log.Fatalf("synthesis failed: %v", err)
	}

	fmt.Println("implementation:")
	fmt.Print(im.Eqn())
	fmt.Println()
	fmt.Printf("unfolding segment: %d events (%d cut-offs), %d conditions\n",
		stats.Events, stats.Cutoffs, stats.Conditions)
	fmt.Printf("time breakdown: unfolding=%v covers=%v minimisation=%v total=%v\n",
		stats.UnfTime, stats.SynTime, stats.EspTime, stats.Total)
	fmt.Printf("approximation terms refined: %d\n", stats.TermsRefined)
}
