// Quickstart: synthesise the worked example of the paper (Figure 1).
//
// The program takes the built-in three-signal STG of Figure 1, derives a
// speed-independent implementation with the unfolding-based flow (approximated
// covers, refined where needed) through the public punt API and prints the
// resulting complex-gate equations together with the synthesis statistics.
// The expected result for the output signal b is the cover a + c, exactly as
// in Section 4.1 of the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"punt"
)

func main() {
	spec := punt.Fig1()
	fmt.Print(spec.Describe())
	fmt.Println("specification (.g format):")
	fmt.Println(spec.Text())

	res, err := punt.New().Synthesize(context.Background(), spec) // approximate mode, complex gate per signal
	if err != nil {
		log.Fatalf("synthesis failed: %v", err)
	}

	fmt.Println("implementation:")
	fmt.Print(res.Eqn())
	fmt.Println()
	st := res.Stats
	fmt.Printf("unfolding segment: %d events (%d cut-offs), %d conditions\n",
		st.Events, st.Cutoffs, st.Conditions)
	fmt.Printf("time breakdown: unfolding=%v covers=%v minimisation=%v total=%v\n",
		st.UnfTime, st.SynTime, st.EspTime, st.Total)
	fmt.Printf("approximation terms refined: %d\n", st.TermsRefined)
}
