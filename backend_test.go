package punt_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"punt"
	"punt/gates"
)

// Test backends shared by the backend, portfolio and cache tests.  The
// registry is package-global, so each is registered exactly once per test
// binary.

// fakeBackend is a registered custom backend that delegates to the default
// unfolding flow, proving third-party backends ride the same dispatch.
type fakeBackend struct{}

func (fakeBackend) Name() string { return "test-fake" }

func (fakeBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	return punt.New().Synthesize(ctx, spec)
}

// sleeperBackend blocks until its context is cancelled (or an absurdly long
// timeout proves cancellation never came); the portfolio tests race it
// against a real engine to measure loser-cancellation promptness.
type sleeperBackend struct {
	mu      sync.Mutex
	aborted []time.Duration // how long each run waited before cancellation
}

func (*sleeperBackend) Name() string { return "test-sleeper" }

func (s *sleeperBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	start := time.Now()
	select {
	case <-ctx.Done():
		s.mu.Lock()
		s.aborted = append(s.aborted, time.Since(start))
		s.mu.Unlock()
		return nil, ctx.Err()
	case <-time.After(2 * time.Minute):
		return nil, errors.New("test-sleeper was never cancelled")
	}
}

// panicBackend panics on every run; the portfolio must survive it.
type panicBackend struct{}

func (panicBackend) Name() string { return "test-panic" }

func (panicBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	panic("deliberate test panic")
}

var theSleeper = &sleeperBackend{}

func init() {
	punt.Register(fakeBackend{})
	punt.Register(theSleeper)
	punt.Register(panicBackend{})
}

func TestEngineStringParseRoundTrip(t *testing.T) {
	for _, e := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic, punt.Portfolio} {
		back, err := punt.ParseEngine(e.String())
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", e.String(), err)
		}
		if back != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", e.String(), back, e)
		}
	}
	// ParseArchitecture round-trips the same way: the two parsers are
	// symmetric halves of the CLI vocabulary.
	for _, a := range []gates.Architecture{gates.ComplexGate, gates.StandardC, gates.RSLatch} {
		back, err := gates.ParseArchitecture(a.String())
		if err != nil || back != a {
			t.Errorf("ParseArchitecture(%q) = %v, %v; want %v", a.String(), back, err, a)
		}
	}
}

func TestUnknownEngineIsNotSilentlyUnfolding(t *testing.T) {
	bogus := punt.Engine(42)
	if s := bogus.String(); s == "unfolding" || !strings.Contains(s, "42") {
		t.Errorf("Engine(42).String() = %q: unknown values must be visible, not read as the default", s)
	}
	if _, err := punt.ParseEngine("engine(42)"); err == nil {
		t.Error("ParseEngine must reject the unknown-value rendering")
	}
	if _, err := punt.ParseEngine("quantum"); err == nil {
		t.Error("ParseEngine must reject unknown names")
	}
	// Dispatching a bad Engine value fails loudly instead of falling back to
	// the unfolding flow.
	_, err := punt.New(punt.WithEngine(bogus)).Synthesize(context.Background(), punt.Fig1())
	if err == nil || !strings.Contains(err.Error(), "no backend") {
		t.Errorf("Synthesize with Engine(42) = %v, want a no-backend diagnostic", err)
	}
}

func TestBackendsRegistry(t *testing.T) {
	names := punt.Backends()
	for _, want := range []string{"unfolding", "explicit", "symbolic", "test-fake"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Backends() = %v: missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
}

func TestRegisterRejectsDuplicatesAndReservedNames(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", what)
			}
		}()
		fn()
	}
	mustPanic("duplicate Register", func() { punt.Register(fakeBackend{}) })
	mustPanic("nil Register", func() { punt.Register(nil) })
	mustPanic("reserved name", func() { punt.Register(reservedBackend{}) })
}

type reservedBackend struct{}

func (reservedBackend) Name() string { return "portfolio" }
func (reservedBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	return nil, errors.New("unreachable")
}

func TestCustomBackendThroughDispatch(t *testing.T) {
	res, err := punt.New(punt.WithBackend("test-fake")).Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Eqn(), "b = a + c") {
		t.Errorf("custom backend result:\n%s", res.Eqn())
	}
	if res.Stats.Backend != "test-fake" {
		t.Errorf("Stats.Backend = %q, want test-fake", res.Stats.Backend)
	}
	if res.Spec != punt.Fig1() {
		// Fig1 constructs a fresh Spec per call, so pointer equality cannot
		// hold; the result must still carry a spec with the right name.
		if res.Spec == nil || res.Spec.Name() != "paper-fig1" {
			t.Errorf("result spec = %v", res.Spec)
		}
	}
}

func TestWithBackendUnknownName(t *testing.T) {
	_, err := punt.New(punt.WithBackend("warp-drive")).Synthesize(context.Background(), punt.Fig1())
	var diag *punt.Diagnostic
	if !errors.As(err, &diag) {
		t.Fatalf("unknown backend error is not a *Diagnostic: %v", err)
	}
	if !strings.Contains(err.Error(), "warp-drive") || !strings.Contains(err.Error(), "unfolding") {
		t.Errorf("the diagnostic should name the bad backend and list the registered ones: %v", err)
	}
}

// TestDispatchMatchesLegacySelection pins the refactor: WithEngine and the
// WithBaseline synonym produce identical implementations for every builtin
// engine.
func TestDispatchMatchesLegacySelection(t *testing.T) {
	spec := punt.MullerPipeline(4)
	for _, e := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic} {
		viaEngine, err := punt.New(punt.WithEngine(e)).Synthesize(context.Background(), spec)
		if err != nil {
			t.Fatalf("WithEngine(%v): %v", e, err)
		}
		viaBaseline, err := punt.New(punt.WithBaseline(e)).Synthesize(context.Background(), spec)
		if err != nil {
			t.Fatalf("WithBaseline(%v): %v", e, err)
		}
		if viaEngine.Eqn() != viaBaseline.Eqn() || viaEngine.Verilog() != viaBaseline.Verilog() {
			t.Errorf("%v: WithEngine and WithBaseline disagree", e)
		}
		if viaEngine.Stats.Engine != e || viaEngine.Stats.Backend != e.String() {
			t.Errorf("%v: stats identity = (%v, %q)", e, viaEngine.Stats.Engine, viaEngine.Stats.Backend)
		}
	}
}

func TestStatsStringCoversTable1Columns(t *testing.T) {
	res, err := punt.New().Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.String()
	for _, want := range []string{"events=8", "conditions=", "cutoffs=2", "refined-terms=", "refined-signals="} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() missing %q: %s", want, s)
		}
	}
	if res.Stats.Conditions <= 0 {
		t.Errorf("Conditions not filled: %+v", res.Stats)
	}
}
