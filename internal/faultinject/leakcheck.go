package faultinject

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the leak checker needs; an interface so
// this package (which the engines link) never imports testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakCheck snapshots the current goroutine count and returns a function
// that asserts the count settles back to (at most) that baseline.  Use as
//
//	defer faultinject.LeakCheck(t)()
//
// at the top of any test that spawns portfolio contenders, batch workers or
// budget watchdogs.  Cancelled goroutines need a moment to unwind, so the
// check polls with a grace period before reporting a leak, and dumps all
// goroutine stacks when it does.
func LeakCheck(tb TB) func() {
	tb.Helper()
	base := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		tb.Errorf("goroutine leak: %d goroutines alive, baseline %d\n%s", n, base, buf)
	}
}
