package faultinject

import "context"

type ctxKey struct{}

// With returns a context carrying the injector; every pipeline checkpoint
// reached under it consults the schedule.
func With(ctx context.Context, i *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, i)
}

// From extracts the context's injector, nil when none was installed.
func From(ctx context.Context) *Injector {
	i, _ := ctx.Value(ctxKey{}).(*Injector)
	return i
}

// Check fires any due cancel/panic/delay rule for op on the context's
// injector.  Without an injector it is a single Value lookup — the
// checkpoints sit next to the engines' existing periodic cancellation
// checks, so production runs pay nothing measurable.
func Check(ctx context.Context, op string) error {
	i := From(ctx)
	if i == nil {
		return nil
	}
	return i.Check(op)
}

// Corrupt reports whether a corruption rule fires for op on the context's
// injector.
func Corrupt(ctx context.Context, op string) bool {
	return From(ctx).Corrupt(op)
}
