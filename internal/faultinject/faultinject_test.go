package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCheckWithoutInjectorIsNil(t *testing.T) {
	if err := Check(context.Background(), OpUnfoldPop); err != nil {
		t.Fatalf("bare context must never inject: %v", err)
	}
	if Corrupt(context.Background(), OpCacheGet) {
		t.Fatal("bare context must never corrupt")
	}
}

func TestCancelRuleFiresOnceAtTheConfiguredHit(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Op: OpUnfoldPop, AfterN: 2, Act: ActCancel}))
	for i := 0; i < 2; i++ {
		if err := Check(ctx, OpUnfoldPop); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := Check(ctx, OpUnfoldPop)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 should inject, got %v", err)
	}
	// One-shot: the rule never fires again.
	if err := Check(ctx, OpUnfoldPop); err != nil {
		t.Fatalf("rule fired twice: %v", err)
	}
	// Other ops are untouched.
	if err := Check(ctx, OpCoreCovers); err != nil {
		t.Fatalf("unrelated op injected: %v", err)
	}
}

func TestPanicRulePanicsWithInjectedPanic(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Op: OpCoreCovers, Act: ActPanic}))
	defer func() {
		p := recover()
		ip, ok := p.(InjectedPanic)
		if !ok || ip.Op != OpCoreCovers {
			t.Fatalf("recovered %v, want InjectedPanic at %s", p, OpCoreCovers)
		}
	}()
	Check(ctx, OpCoreCovers)
	t.Fatal("checkpoint did not panic")
}

func TestDelayRuleSleeps(t *testing.T) {
	ctx := With(context.Background(), New(Rule{Op: OpCacheGet, Act: ActDelay, Delay: 20 * time.Millisecond}))
	start := time.Now()
	if err := Check(ctx, OpCacheGet); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("delay rule slept only %v", d)
	}
}

func TestCorruptRuleIsInvisibleToCheck(t *testing.T) {
	inj := New(Rule{Op: OpCacheGet, Act: ActCorrupt})
	ctx := With(context.Background(), inj)
	if err := Check(ctx, OpCacheGet); err != nil {
		t.Fatalf("Check must ignore corrupt rules: %v", err)
	}
	if !Corrupt(ctx, OpCacheGet) {
		t.Fatal("Corrupt should fire")
	}
	if Corrupt(ctx, OpCacheGet) {
		t.Fatal("corrupt rule fired twice")
	}
}

func TestScheduleIsReproducibleAndNeverPanicsFacadeOps(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := Schedule(seed, AllOps, 3, 20)
		b := Schedule(seed, AllOps, 3, 20)
		if len(a.rules) != len(b.rules) {
			t.Fatalf("seed %d: rule counts differ", seed)
		}
		for i := range a.rules {
			if a.rules[i] != b.rules[i] {
				t.Fatalf("seed %d: rule %d differs: %v vs %v", seed, i, a.rules[i], b.rules[i])
			}
			if a.rules[i].Act == ActPanic && !isEngineOp(a.rules[i].Op) {
				t.Fatalf("seed %d: panic armed on facade op %s", seed, a.rules[i].Op)
			}
		}
	}
}

func TestFiredRecordsFiringOrder(t *testing.T) {
	inj := New(
		Rule{Op: OpUnfoldPop, AfterN: 0, Act: ActCancel},
		Rule{Op: OpCoreCovers, AfterN: 0, Act: ActDelay, Delay: time.Millisecond},
	)
	ctx := With(context.Background(), inj)
	Check(ctx, OpCoreCovers)
	Check(ctx, OpUnfoldPop)
	fired := inj.Fired()
	if len(fired) != 2 || fired[0] != (Rule{Op: OpCoreCovers, Act: ActDelay, Delay: time.Millisecond}).String() {
		t.Errorf("Fired() = %v", fired)
	}
}
