// Package faultinject provides seeded, schedule-driven fault injection for
// the synthesis pipeline, plus a goroutine-leak checker for tests.
//
// An Injector carries a set of Rules, each naming an operation checkpoint
// (one of the Op* constants compiled into the engines and the facade) and an
// Action to take when the checkpoint has been hit a configured number of
// times: return an injected error, panic, sleep, or flag an entry as
// corrupted.  The injector travels through the context, so injection is
// strictly per-request: a context without an injector pays a single Value
// lookup per checkpoint and nothing else, and production callers never see
// injected faults.
//
// The chaos sweep in the root package drives hundreds of seeded Schedules
// through Synthesize/Batch/portfolio and asserts the facade never crashes,
// never leaks goroutines and never caches a faulted result.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// The operation checkpoints compiled into the pipeline.  Engine checkpoints
// sit inside the loops that already check context cancellation; the facade
// checkpoints bracket dispatch and the result-cache accesses.
const (
	// OpUnfoldPop: the unfolding builder's possible-extension loop.
	OpUnfoldPop = "unfolding.pop"
	// OpUnfoldShard: a per-task checkpoint inside the unfolding builder's
	// parallel worker pool (Workers > 1).  Faults here land mid-shard, on
	// worker goroutines: a cancel must drain the round without deadlocking
	// and a panic must resurface on the Build goroutine after the pool is
	// quiescent.
	OpUnfoldShard = "unfolding.shard"
	// OpStategraphExpand: the explicit state-graph BFS expansion loop.
	OpStategraphExpand = "stategraph.expand"
	// OpExplicitCovers: the explicit baseline's per-signal cover loop.
	OpExplicitCovers = "explicit.covers"
	// OpSymbolicFixpoint: the symbolic baseline's image-computation loop.
	OpSymbolicFixpoint = "symbolic.fixpoint"
	// OpCoreCovers: the unfolding flow's per-signal cover loop.
	OpCoreCovers = "core.covers"
	// OpFacadeSynthesize: facade admission, before backend dispatch.
	OpFacadeSynthesize = "facade.synthesize"
	// OpCacheGet / OpCachePut: the facade's result-cache accesses.  A fault
	// on either degrades to a cache miss (or a skipped store) instead of
	// failing the request.
	OpCacheGet = "cache.get"
	OpCachePut = "cache.put"
	// OpDiskGet / OpDiskPut: the persistent result store's file accesses.  A
	// cancel fault degrades to a miss (or a skipped store); a corrupt fault
	// on put writes a deliberately damaged entry, which later reads must
	// detect and treat as a miss.
	OpDiskGet = "diskstore.get"
	OpDiskPut = "diskstore.put"
	// OpSingleFlight: the server's in-flight request deduplication.  A fault
	// here makes the request bypass deduplication and synthesize solo —
	// dedup is an optimisation, never a point of failure.
	OpSingleFlight = "server.singleflight"
)

// EngineOps are the checkpoints inside backend synthesis runs, where an
// injected panic is recovered by the dispatch layer.  Schedule only assigns
// ActPanic to these.
var EngineOps = []string{OpUnfoldPop, OpUnfoldShard, OpStategraphExpand, OpExplicitCovers, OpSymbolicFixpoint, OpCoreCovers}

// FacadeOps are the checkpoints in facade code outside the backends, where a
// panic would be a real bug: Schedule assigns only non-panicking actions.
var FacadeOps = []string{OpFacadeSynthesize, OpCacheGet, OpCachePut, OpDiskGet, OpDiskPut, OpSingleFlight}

// AllOps lists every checkpoint, for schedule generation.
var AllOps = append(append([]string{}, EngineOps...), FacadeOps...)

// ErrInjected is the error returned by a checkpoint when a cancellation rule
// fires; errors.Is-matchable through whatever diagnostic wraps it.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedPanic is the value a checkpoint panics with when a panic rule
// fires, so recovery layers (and tests) can tell a drill from a real crash.
type InjectedPanic struct{ Op string }

func (p InjectedPanic) String() string { return "faultinject: injected panic at " + p.Op }

// Action selects what a firing rule does.
type Action uint8

// The injectable faults.
const (
	// ActCancel makes the checkpoint return ErrInjected.
	ActCancel Action = iota + 1
	// ActPanic makes the checkpoint panic with an InjectedPanic.
	ActPanic
	// ActDelay makes the checkpoint sleep for Rule.Delay.
	ActDelay
	// ActCorrupt fires only through Corrupt (Check ignores it): the caller
	// owning the checkpoint simulates a corrupted entry.
	ActCorrupt
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActCancel:
		return "cancel"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	case ActCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Rule arms one fault: at the AfterN-th hit of Op (counting from 0), perform
// Act.  Each rule fires exactly once.
type Rule struct {
	Op     string
	AfterN int64
	Act    Action
	Delay  time.Duration // ActDelay only
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s@%d:%s", r.Op, r.AfterN, r.Act)
}

// Injector is a set of armed rules with per-op hit counters.  Safe for
// concurrent use: portfolio contenders and batch workers hit checkpoints
// from many goroutines at once.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	used   []bool
	counts map[string]int64
	fired  []string
}

// New returns an injector armed with the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, used: make([]bool, len(rules)), counts: map[string]int64{}}
}

// Schedule builds a reproducible random fault schedule: n rules drawn from
// the given ops with hit counts in [0, maxHits).  Panics are only armed on
// EngineOps — a panic at a facade checkpoint would be a genuine bug, not a
// simulated backend failure — and delays stay small so sweeps run fast.
func Schedule(seed int64, ops []string, n, maxHits int) *Injector {
	rng := rand.New(rand.NewSource(seed))
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		act := Action(1 + rng.Intn(4))
		if act == ActPanic && !isEngineOp(op) {
			act = ActCancel
		}
		rules = append(rules, Rule{
			Op:     op,
			AfterN: int64(rng.Intn(maxHits)),
			Act:    act,
			Delay:  time.Duration(1+rng.Intn(3)) * time.Millisecond,
		})
	}
	return New(rules...)
}

func isEngineOp(op string) bool {
	for _, e := range EngineOps {
		if e == op {
			return true
		}
	}
	return false
}

// hit advances the op's counter and returns the rule that fires now, if any.
func (i *Injector) hit(op string, corrupt bool) (Rule, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.counts[op]
	i.counts[op] = n + 1
	for idx, r := range i.rules {
		if i.used[idx] || r.Op != op || r.AfterN > n {
			continue
		}
		if (r.Act == ActCorrupt) != corrupt {
			continue
		}
		i.used[idx] = true
		i.fired = append(i.fired, r.String())
		return r, true
	}
	return Rule{}, false
}

// Check is the checkpoint the engines and the facade call (through the
// package-level Check): it fires due cancel/panic/delay rules for op.
func (i *Injector) Check(op string) error {
	r, ok := i.hit(op, false)
	if !ok {
		return nil
	}
	switch r.Act {
	case ActPanic:
		panic(InjectedPanic{Op: op})
	case ActDelay:
		time.Sleep(r.Delay)
		return nil
	default:
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, op, r.AfterN)
	}
}

// Corrupt reports whether a corruption rule fires for op now; the caller
// simulates the corrupted entry itself.
func (i *Injector) Corrupt(op string) bool {
	if i == nil {
		return false
	}
	r, ok := i.hit(op, true)
	return ok && r.Act == ActCorrupt
}

// Fired returns the rules that have fired so far, in firing order.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}
