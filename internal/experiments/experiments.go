// Package experiments reproduces the evaluation of the paper: Table 1 (the
// benchmark suite synthesised with the unfolding-based flow and the two
// state-graph baselines) and Figure 6 (synthesis time versus signal count on
// the scalable Muller pipeline, plus the counterflow-pipeline point).  The
// benchtab command and the repository-level benchmarks are thin wrappers
// around this package.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"punt/internal/baseline"
	"punt/internal/benchgen"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stg"
)

// ToolResult is the outcome of running one synthesis flow on one benchmark.
type ToolResult struct {
	Ok       bool
	Reason   string // why the run did not complete (limit exceeded, ...)
	Time     time.Duration
	Literals int
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Name    string
	Signals int

	// PUNT ACG columns: the segment size (events |E| and conditions |B|), the
	// phase timings and the refinement counters, as in the paper's Table 1.
	UnfTime    time.Duration
	SynTime    time.Duration
	EspTime    time.Duration
	TotalTime  time.Duration
	Literals   int
	Events     int
	Conditions int
	Refined    int
	SigRefined int

	// Baseline columns ("Other tools").
	Petrify ToolResult // symbolic (BDD) state-graph synthesis
	SIS     ToolResult // explicit state-graph synthesis
}

// Table1Options configures the Table 1 run.
type Table1Options struct {
	// MaxStates bounds the explicit baseline (0 = 2,000,000).
	MaxStates int
	// MaxNodes bounds the symbolic baseline's BDD size (0 = 4,000,000).
	MaxNodes int
	// SkipBaselines runs only the PUNT flow (used by quick benchmarks).
	SkipBaselines bool
}

// RunTable1Entry synthesises one benchmark with all three flows.
func RunTable1Entry(ctx context.Context, entry benchgen.BenchmarkEntry, opts Table1Options) Table1Row {
	row := Table1Row{Name: entry.Name, Signals: entry.Signals}

	g := entry.Build()
	im, stats, err := core.New(core.Options{}).Synthesize(ctx, g)
	if err == nil {
		row.UnfTime = stats.UnfTime
		row.SynTime = stats.SynTime
		row.EspTime = stats.EspTime
		row.TotalTime = stats.Total
		row.Literals = im.Literals()
		row.Events = stats.Events
		row.Conditions = stats.Conditions
		row.Refined = stats.TermsRefined
		row.SigRefined = stats.SignalsRefined
	} else {
		row.TotalTime = stats.Total
		row.Literals = -1
	}
	if opts.SkipBaselines {
		return row
	}
	row.Petrify = runSymbolic(ctx, entry.Build(), opts)
	row.SIS = runExplicit(ctx, entry.Build(), opts)
	return row
}

// RunTable1 synthesises the whole suite.
func RunTable1(ctx context.Context, entries []benchgen.BenchmarkEntry, opts Table1Options) []Table1Row {
	rows := make([]Table1Row, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, RunTable1Entry(ctx, e, opts))
	}
	return rows
}

func runExplicit(ctx context.Context, g *stg.STG, opts Table1Options) ToolResult {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 2000000
	}
	s := &baseline.ExplicitSynthesizer{MaxStates: maxStates, Arch: gatelib.ComplexGate}
	start := time.Now()
	im, _, err := s.Synthesize(ctx, g)
	elapsed := time.Since(start)
	if err != nil {
		return ToolResult{Ok: false, Reason: err.Error(), Time: elapsed, Literals: -1}
	}
	return ToolResult{Ok: true, Time: elapsed, Literals: im.Literals()}
}

func runSymbolic(ctx context.Context, g *stg.STG, opts Table1Options) ToolResult {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4000000
	}
	s := &baseline.SymbolicSynthesizer{MaxNodes: maxNodes, Arch: gatelib.ComplexGate}
	start := time.Now()
	im, _, err := s.Synthesize(ctx, g)
	elapsed := time.Since(start)
	if err != nil {
		return ToolResult{Ok: false, Reason: err.Error(), Time: elapsed, Literals: -1}
	}
	return ToolResult{Ok: true, Time: elapsed, Literals: im.Literals()}
}

// FormatTable1 renders the rows in the layout of the paper's Table 1, segment
// size columns (|E| events, |B| conditions) included.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %5s %7s %7s | %9s %9s %9s %9s %7s | %12s %12s %9s\n",
		"Benchmark", "Sigs", "Events", "Conds", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt", "Petrify", "SIS", "LitCnt")
	sb.WriteString(strings.Repeat("-", 140) + "\n")
	var totSigs, totEvents, totConds, totLit, totPetLit, totSisLit int
	var totUnf, totSyn, totEsp, totTot, totPet, totSis time.Duration
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %5d %7d %7d | %9s %9s %9s %9s %7d | %12s %12s %4s/%-4s\n",
			r.Name, r.Signals, r.Events, r.Conditions,
			fmtDur(r.UnfTime), fmtDur(r.SynTime), fmtDur(r.EspTime), fmtDur(r.TotalTime), r.Literals,
			fmtTool(r.Petrify), fmtTool(r.SIS), fmtLit(r.Petrify.Literals), fmtLit(r.SIS.Literals))
		totSigs += r.Signals
		totEvents += r.Events
		totConds += r.Conditions
		totLit += max0(r.Literals)
		totPetLit += max0(r.Petrify.Literals)
		totSisLit += max0(r.SIS.Literals)
		totUnf += r.UnfTime
		totSyn += r.SynTime
		totEsp += r.EspTime
		totTot += r.TotalTime
		totPet += r.Petrify.Time
		totSis += r.SIS.Time
	}
	sb.WriteString(strings.Repeat("-", 140) + "\n")
	fmt.Fprintf(&sb, "%-22s %5d %7d %7d | %9s %9s %9s %9s %7d | %12s %12s %4d/%-4d\n",
		"Total", totSigs, totEvents, totConds,
		fmtDur(totUnf), fmtDur(totSyn), fmtDur(totEsp), fmtDur(totTot), totLit,
		fmtDur(totPet), fmtDur(totSis), totPetLit, totSisLit)
	return sb.String()
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

func fmtLit(v int) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtTool(t ToolResult) string {
	if !t.Ok {
		return ">" + fmtDur(t.Time) + "*"
	}
	return fmtDur(t.Time)
}

// FacadePoint is one end-to-end public-API measurement: the full
// parse → synthesize pipeline through the root punt facade on one
// specification.  It tracks the overhead of the public API on the perf
// trajectory, next to the raw-core measurements of Table 1 and Figure 6.
// The measurement itself lives in punt/bench, which can import the facade.
type FacadePoint struct {
	Spec     string
	Runs     int
	Parse    time.Duration // average per-run parse time
	Synth    time.Duration // average per-run synthesis time
	Total    time.Duration // average per-run end-to-end time
	Literals int
	Events   int
}

// FormatFacade renders the facade measurements.
func FormatFacade(points []FacadePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %5s | %10s %10s %10s | %7s %7s\n",
		"Spec", "Runs", "Parse", "Synth", "Total", "LitCnt", "Events")
	sb.WriteString(strings.Repeat("-", 76) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %5d | %10v %10v %10v | %7d %7d\n",
			p.Spec, p.Runs, p.Parse.Round(time.Microsecond), p.Synth.Round(time.Microsecond),
			p.Total.Round(time.Microsecond), p.Literals, p.Events)
	}
	return sb.String()
}

// CachePoint is one cache-effectiveness measurement: the cold (first,
// cache-miss) synthesis time of a specification against the average warm
// (cache-hit) time of repeating it through a WithCache synthesizer.  It
// tracks the content-addressed result cache on the perf trajectory.  The
// measurement itself lives in punt/bench, which can import the facade.
type CachePoint struct {
	Spec string
	// Runs is how many warm lookups the Warm average covers.
	Runs int
	// Cold is the initial synthesis time (the run that populates the cache).
	Cold time.Duration
	// Warm is the average cache-hit time of the repeated synthesis.
	Warm time.Duration
	// Speedup is Cold/Warm.
	Speedup  float64
	Literals int
}

// FormatCache renders the cache-effectiveness measurements.
func FormatCache(points []CachePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %5s | %12s %12s %9s | %7s\n",
		"Spec", "Runs", "Cold", "Warm", "Speedup", "LitCnt")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %5d | %12v %12v %8.0fx | %7d\n",
			p.Spec, p.Runs, p.Cold.Round(time.Microsecond), p.Warm.Round(time.Microsecond),
			p.Speedup, p.Literals)
	}
	return sb.String()
}

// Figure6Point is one measurement of the Figure 6 experiment: synthesis time
// of each tool for a Muller pipeline with the given number of signals.
type Figure6Point struct {
	Signals int
	PUNT    ToolResult
	Petrify ToolResult
	SIS     ToolResult
}

// Figure6Options configures the scaling experiment.
type Figure6Options struct {
	// Signals lists the pipeline sizes to measure (number of signals).
	Signals []int
	// ExplicitLimit and SymbolicLimit bound the baselines so that the
	// experiment terminates even where the paper's tools "choke"
	// (0 = 200,000 states / 2,000,000 BDD nodes).
	ExplicitLimit int
	SymbolicLimit int
	// SkipBaselines measures only PUNT.
	SkipBaselines bool
	// IncludeCounterflow appends the 34-signal counterflow-pipeline point
	// (the circled dot of Figure 6).
	IncludeCounterflow bool
}

// DefaultFigure6Signals is the sweep used by the benchmarks: 5 to 50 signals.
func DefaultFigure6Signals() []int { return []int{5, 8, 12, 17, 22, 27, 32, 42, 50} }

// RunFigure6 measures the scaling experiment.
func RunFigure6(ctx context.Context, opts Figure6Options) []Figure6Point {
	signals := opts.Signals
	if len(signals) == 0 {
		signals = DefaultFigure6Signals()
	}
	explicitLimit := opts.ExplicitLimit
	if explicitLimit == 0 {
		explicitLimit = 200000
	}
	symbolicLimit := opts.SymbolicLimit
	if symbolicLimit == 0 {
		symbolicLimit = 2000000
	}
	var out []Figure6Point
	measure := func(name string, mk func() *stg.STG, signals int) Figure6Point {
		p := Figure6Point{Signals: signals}
		start := time.Now()
		im, _, err := core.New(core.Options{}).Synthesize(ctx, mk())
		if err != nil {
			p.PUNT = ToolResult{Ok: false, Reason: err.Error(), Time: time.Since(start), Literals: -1}
		} else {
			p.PUNT = ToolResult{Ok: true, Time: time.Since(start), Literals: im.Literals()}
		}
		if !opts.SkipBaselines {
			p.Petrify = runSymbolic(ctx, mk(), Table1Options{MaxNodes: symbolicLimit})
			p.SIS = runExplicit(ctx, mk(), Table1Options{MaxStates: explicitLimit})
		}
		_ = name
		return p
	}
	for _, s := range signals {
		s := s
		out = append(out, measure(fmt.Sprintf("pipeline-%d", s),
			func() *stg.STG { return benchgen.MullerPipelineWithSignals(s) }, s))
	}
	if opts.IncludeCounterflow {
		out = append(out, measure("counterflow", benchgen.CounterflowPipeline, 34))
	}
	return out
}

// FormatFigure6 renders the scaling series as the table underlying Figure 6.
func FormatFigure6(points []Figure6Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s | %14s | %14s | %14s\n", "Signals", "PUNT", "Petrify", "SIS")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%8d | %14s | %14s | %14s\n",
			p.Signals, fmtTool(p.PUNT), fmtTool(p.Petrify), fmtTool(p.SIS))
	}
	sb.WriteString("(* = aborted after exceeding its state/node budget: the tool \"chokes\" at this size)\n")
	return sb.String()
}
