package experiments

import (
	"encoding/json"
	"io"
	"time"
)

// The JSON report gives future PRs a machine-readable perf trajectory to
// regress against: benchtab -json emits one Report per run; diffing two
// reports shows where synthesis time moved.

// JSONTool is the JSON shape of one tool's result on one benchmark.
type JSONTool struct {
	Ok       bool    `json:"ok"`
	Reason   string  `json:"reason,omitempty"`
	Seconds  float64 `json:"seconds"`
	Literals int     `json:"literals"`
}

func jsonTool(t ToolResult) JSONTool {
	return JSONTool{Ok: t.Ok, Reason: t.Reason, Seconds: t.Time.Seconds(), Literals: t.Literals}
}

// JSONTable1Row is the JSON shape of one Table 1 row.
type JSONTable1Row struct {
	Name           string   `json:"name"`
	Signals        int      `json:"signals"`
	UnfSeconds     float64  `json:"unf_seconds"`
	SynSeconds     float64  `json:"syn_seconds"`
	EspSeconds     float64  `json:"esp_seconds"`
	TotalSeconds   float64  `json:"total_seconds"`
	Literals       int      `json:"literals"`
	Events         int      `json:"events"`
	Conditions     int      `json:"conditions"`
	Refined        int      `json:"refined"`
	SignalsRefined int      `json:"signals_refined"`
	Petrify        JSONTool `json:"petrify"`
	SIS            JSONTool `json:"sis"`
}

// JSONFigure6Point is the JSON shape of one Figure 6 measurement.
type JSONFigure6Point struct {
	Signals int      `json:"signals"`
	PUNT    JSONTool `json:"punt"`
	Petrify JSONTool `json:"petrify"`
	SIS     JSONTool `json:"sis"`
}

// JSONFacadePoint is the JSON shape of one end-to-end public-API
// measurement.
type JSONFacadePoint struct {
	Spec         string  `json:"spec"`
	Runs         int     `json:"runs"`
	ParseSeconds float64 `json:"parse_seconds"`
	SynthSeconds float64 `json:"synth_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
	Literals     int     `json:"literals"`
	Events       int     `json:"events"`
}

// JSONCachePoint is the JSON shape of one cache-effectiveness measurement
// (cold synthesis vs warm cache hit).
type JSONCachePoint struct {
	Spec        string  `json:"spec"`
	Runs        int     `json:"runs"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	Literals    int     `json:"literals"`
}

// JSONParallelPoint is the JSON shape of one parallel-unfolding measurement.
type JSONParallelPoint struct {
	Spec       string  `json:"spec"`
	Workers    int     `json:"workers"`
	Runs       int     `json:"runs"`
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
	Events     int     `json:"events"`
}

// JSONResolveRetryPoint is the JSON shape of one CSC-retry sweep.
type JSONResolveRetryPoint struct {
	Seeds             int     `json:"seeds"`
	FullSeconds       float64 `json:"full_seconds"`
	IncrSeconds       float64 `json:"incr_seconds"`
	Speedup           float64 `json:"speedup"`
	IncrementalBuilds int     `json:"incremental_builds"`
	FullRebuilds      int     `json:"full_rebuilds"`
	StatesReused      int     `json:"states_reused"`
}

// JSONDecomposePoint is the JSON shape of one compositional-synthesis
// measurement.
type JSONDecomposePoint struct {
	Spec        string  `json:"spec"`
	Runs        int     `json:"runs"`
	Components  int     `json:"components"`
	MonoSeconds float64 `json:"mono_seconds"`
	DecSeconds  float64 `json:"dec_seconds"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
	Literals    int     `json:"literals"`
}

// Report is the top-level JSON document emitted by benchtab -json.
type Report struct {
	GeneratedAt string             `json:"generated_at"`
	Table1      []JSONTable1Row    `json:"table1,omitempty"`
	Figure6     []JSONFigure6Point `json:"figure6,omitempty"`
	Facade      []JSONFacadePoint  `json:"facade,omitempty"`
	Cache       []JSONCachePoint   `json:"cache,omitempty"`
	// DiskCache holds the persistent-store measurements: Warm is a hit served
	// by the on-disk tier through fresh in-memory tiers, i.e. the cost of a
	// warm request after a daemon restart.
	DiskCache []JSONCachePoint `json:"disk_cache,omitempty"`
	// Parallel holds the sharded-possible-extension measurements (sequential
	// vs WithWorkers unfold, with the byte-identity verdict); ResolveRetry the
	// full-rebuild-vs-incremental CSC-resolution sweep.
	Parallel     []JSONParallelPoint     `json:"parallel,omitempty"`
	ResolveRetry []JSONResolveRetryPoint `json:"resolve_retry,omitempty"`
	// Decompose holds the compositional-synthesis measurements (monolithic vs
	// split-synthesize-recombine, with the output-identity verdict).
	Decompose []JSONDecomposePoint `json:"decompose,omitempty"`
}

// NewReport converts measured rows and points into the JSON report shape.
func NewReport(rows []Table1Row, points []Figure6Point, facade []FacadePoint, cache, disk []CachePoint, parallel []ParallelPoint, retry []ResolveRetryPoint, decomp []DecomposePoint, now time.Time) Report {
	r := Report{GeneratedAt: now.UTC().Format(time.RFC3339)}
	for _, p := range decomp {
		r.Decompose = append(r.Decompose, JSONDecomposePoint{
			Spec:        p.Spec,
			Runs:        p.Runs,
			Components:  p.Components,
			MonoSeconds: p.Monolithic.Seconds(),
			DecSeconds:  p.Decomposed.Seconds(),
			Speedup:     p.Speedup,
			Identical:   p.Identical,
			Literals:    p.Literals,
		})
	}
	for _, p := range parallel {
		r.Parallel = append(r.Parallel, JSONParallelPoint{
			Spec:       p.Spec,
			Workers:    p.Workers,
			Runs:       p.Runs,
			SeqSeconds: p.Sequential.Seconds(),
			ParSeconds: p.Parallel.Seconds(),
			Speedup:    p.Speedup,
			Identical:  p.Identical,
			Events:     p.Events,
		})
	}
	for _, p := range retry {
		r.ResolveRetry = append(r.ResolveRetry, JSONResolveRetryPoint{
			Seeds:             p.Seeds,
			FullSeconds:       p.FullRebuild.Seconds(),
			IncrSeconds:       p.Incremental.Seconds(),
			Speedup:           p.Speedup,
			IncrementalBuilds: p.IncrementalBuilds,
			FullRebuilds:      p.FullRebuilds,
			StatesReused:      p.StatesReused,
		})
	}
	for _, p := range facade {
		r.Facade = append(r.Facade, JSONFacadePoint{
			Spec:         p.Spec,
			Runs:         p.Runs,
			ParseSeconds: p.Parse.Seconds(),
			SynthSeconds: p.Synth.Seconds(),
			TotalSeconds: p.Total.Seconds(),
			Literals:     p.Literals,
			Events:       p.Events,
		})
	}
	r.Cache = jsonCachePoints(cache)
	r.DiskCache = jsonCachePoints(disk)
	for _, row := range rows {
		r.Table1 = append(r.Table1, JSONTable1Row{
			Name:           row.Name,
			Signals:        row.Signals,
			UnfSeconds:     row.UnfTime.Seconds(),
			SynSeconds:     row.SynTime.Seconds(),
			EspSeconds:     row.EspTime.Seconds(),
			TotalSeconds:   row.TotalTime.Seconds(),
			Literals:       row.Literals,
			Events:         row.Events,
			Conditions:     row.Conditions,
			Refined:        row.Refined,
			SignalsRefined: row.SigRefined,
			Petrify:        jsonTool(row.Petrify),
			SIS:            jsonTool(row.SIS),
		})
	}
	for _, p := range points {
		r.Figure6 = append(r.Figure6, JSONFigure6Point{
			Signals: p.Signals,
			PUNT:    jsonTool(p.PUNT),
			Petrify: jsonTool(p.Petrify),
			SIS:     jsonTool(p.SIS),
		})
	}
	return r
}

func jsonCachePoints(points []CachePoint) []JSONCachePoint {
	var out []JSONCachePoint
	for _, p := range points {
		out = append(out, JSONCachePoint{
			Spec:        p.Spec,
			Runs:        p.Runs,
			ColdSeconds: p.Cold.Seconds(),
			WarmSeconds: p.Warm.Seconds(),
			Speedup:     p.Speedup,
			Literals:    p.Literals,
		})
	}
	return out
}

// WriteJSON writes the report, indented, to w.
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
