package experiments

import (
	"fmt"
	"strings"
	"time"
)

// ParallelPoint is one unfold-only parallelism measurement: the same
// specification unfolded sequentially and with a sharded possible-extension
// pool, plus the byte-identity check that makes the worker count a pure
// throughput knob.  The measurement itself lives in punt/bench, which can
// import the facade.
type ParallelPoint struct {
	Spec string
	// Workers is the pool width of the parallel run (GOMAXPROCS by default).
	Workers int
	// Runs is how many repetitions each average covers.
	Runs int
	// Sequential and Parallel are the average unfold-only times.
	Sequential time.Duration
	Parallel   time.Duration
	// Speedup is Sequential/Parallel.
	Speedup float64
	// Identical reports whether the two segments dumped byte-identically —
	// the determinism guarantee, checked on every run.
	Identical bool
	Events    int
}

// ResolveRetryPoint aggregates one CSC-resolution retry sweep: the same
// conflicted specifications resolved once with full state-graph rebuilds per
// candidate and once with incremental extension.  The measurement itself
// lives in punt/bench.
type ResolveRetryPoint struct {
	// Seeds is how many conflicted random specifications the sweep resolved.
	Seeds int
	// FullRebuild and Incremental are the total resolution times of the two
	// validation modes over the whole sweep.
	FullRebuild time.Duration
	Incremental time.Duration
	// Speedup is FullRebuild/Incremental.
	Speedup float64
	// IncrementalBuilds and FullRebuilds count candidate validations by kind
	// in the incremental run; StatesReused is the total parent states copied
	// instead of re-explored.
	IncrementalBuilds int
	FullRebuilds      int
	StatesReused      int
}

// FormatParallel renders the parallel-unfolding measurements as a table.
func FormatParallel(points []ParallelPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %3s %5s | %10s %10s %8s | %9s %7s\n",
		"Spec", "W", "Runs", "Seq", "Par", "Speedup", "Identical", "Events")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %3d %5d | %10v %10v %7.2fx | %9t %7d\n",
			p.Spec, p.Workers, p.Runs, p.Sequential.Round(time.Microsecond),
			p.Parallel.Round(time.Microsecond), p.Speedup, p.Identical, p.Events)
	}
	return sb.String()
}

// FormatResolveRetry renders the retry-sweep measurement as a table.
func FormatResolveRetry(points []ResolveRetryPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%5s | %10s %10s %8s | %6s %6s %8s\n",
		"Seeds", "Full", "Incr", "Speedup", "IncB", "FullB", "Reused")
	sb.WriteString(strings.Repeat("-", 66) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%5d | %10v %10v %7.2fx | %6d %6d %8d\n",
			p.Seeds, p.FullRebuild.Round(time.Millisecond), p.Incremental.Round(time.Millisecond),
			p.Speedup, p.IncrementalBuilds, p.FullRebuilds, p.StatesReused)
	}
	return sb.String()
}
