package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"punt/internal/benchgen"
)

func TestRunTable1SmallSubset(t *testing.T) {
	suite := benchgen.Table1Suite()
	var small []benchgen.BenchmarkEntry
	for _, e := range suite {
		if e.Signals <= 10 {
			small = append(small, e)
		}
	}
	rows := RunTable1(context.Background(), small, Table1Options{})
	if len(rows) != len(small) {
		t.Fatalf("rows = %d, want %d", len(rows), len(small))
	}
	for _, r := range rows {
		if r.Literals <= 0 {
			t.Errorf("%s: PUNT produced no implementation (literals=%d)", r.Name, r.Literals)
		}
		if !r.SIS.Ok || !r.Petrify.Ok {
			t.Errorf("%s: baselines failed (SIS=%v petrify=%v)", r.Name, r.SIS.Reason, r.Petrify.Reason)
		}
		// On small benchmarks all three flows derive exact or refined-exact
		// covers and use the same minimiser: literal counts should be close.
		if r.SIS.Ok && r.Literals > 2*r.SIS.Literals+4 {
			t.Errorf("%s: PUNT literal count %d far above SIS %d", r.Name, r.Literals, r.SIS.Literals)
		}
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "Benchmark") || !strings.Contains(text, "Total") {
		t.Fatalf("bad table formatting:\n%s", text)
	}
}

func TestRunTable1SkipBaselines(t *testing.T) {
	entry := benchgen.Table1Suite()[2] // nowick, 6 signals
	row := RunTable1Entry(context.Background(), entry, Table1Options{SkipBaselines: true})
	if row.Literals <= 0 {
		t.Fatalf("no PUNT result: %+v", row)
	}
	if row.SIS.Ok || row.Petrify.Ok {
		t.Fatal("baselines should have been skipped")
	}
}

func TestRunFigure6SmallSweep(t *testing.T) {
	points := RunFigure6(context.Background(), Figure6Options{
		Signals:       []int{5, 8, 12},
		ExplicitLimit: 50000,
		SymbolicLimit: 500000,
	})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if !p.PUNT.Ok {
			t.Fatalf("PUNT failed at %d signals: %s", p.Signals, p.PUNT.Reason)
		}
	}
	// The smallest size must be solvable by everyone.
	if !points[0].SIS.Ok || !points[0].Petrify.Ok {
		t.Fatal("baselines must handle the 5-signal pipeline")
	}
	text := FormatFigure6(points)
	if !strings.Contains(text, "Signals") {
		t.Fatalf("bad figure formatting:\n%s", text)
	}
}

func TestFigure6BaselineChokesWherePUNTDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// With a deliberately small state budget the explicit baseline must give
	// up on a deep pipeline while PUNT completes: the crossover of Figure 6.
	points := RunFigure6(context.Background(), Figure6Options{
		Signals:       []int{22},
		ExplicitLimit: 20000,
		SymbolicLimit: 100000,
	})
	p := points[0]
	if !p.PUNT.Ok {
		t.Fatalf("PUNT must complete the 22-signal pipeline: %s", p.PUNT.Reason)
	}
	if p.SIS.Ok {
		t.Fatal("the explicit baseline should exceed its state budget at this size")
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	suite := benchgen.Table1Suite()[:2]
	rows := RunTable1(context.Background(), suite, Table1Options{SkipBaselines: true})
	points := RunFigure6(context.Background(), Figure6Options{Signals: []int{5}, SkipBaselines: true})
	facade := []FacadePoint{{Spec: "fig1", Runs: 3, Parse: time.Millisecond, Synth: 2 * time.Millisecond, Total: 3 * time.Millisecond, Literals: 5, Events: 8}}
	cache := []CachePoint{{Spec: "fig1", Runs: 3, Cold: 4 * time.Millisecond, Warm: 2 * time.Microsecond, Speedup: 2000, Literals: 2}}
	disk := []CachePoint{{Spec: "fig1", Runs: 3, Cold: 4 * time.Millisecond, Warm: 80 * time.Microsecond, Speedup: 50, Literals: 2}}
	report := NewReport(rows, points, facade, cache, disk, nil, nil, nil, time.Unix(0, 0))

	if len(report.Table1) != len(rows) || len(report.Figure6) != len(points) {
		t.Fatalf("report sizes: table1=%d figure6=%d", len(report.Table1), len(report.Figure6))
	}
	if len(report.Facade) != 1 || report.Facade[0].Spec != "fig1" || report.Facade[0].SynthSeconds != 0.002 {
		t.Fatalf("facade point not carried into the report: %+v", report.Facade)
	}
	if len(report.Cache) != 1 || report.Cache[0].ColdSeconds != 0.004 || report.Cache[0].Speedup != 2000 {
		t.Fatalf("cache point not carried into the report: %+v", report.Cache)
	}
	if len(report.DiskCache) != 1 || report.DiskCache[0].WarmSeconds != 0.00008 {
		t.Fatalf("disk-cache point not carried into the report: %+v", report.DiskCache)
	}
	if report.Table1[0].Conditions != rows[0].Conditions {
		t.Fatal("table1 conditions column not carried into the report")
	}
	if report.Table1[0].Name != rows[0].Name || report.Table1[0].Events != rows[0].Events {
		t.Fatal("table1 row not carried into the report")
	}
	if report.Table1[0].TotalSeconds != rows[0].TotalTime.Seconds() {
		t.Fatal("durations must be converted to seconds")
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Table1) != len(report.Table1) || back.Table1[0].Name != report.Table1[0].Name {
		t.Fatal("JSON round trip lost rows")
	}
	if back.GeneratedAt != "1970-01-01T00:00:00Z" {
		t.Fatalf("generated_at = %q", back.GeneratedAt)
	}
}
