package experiments

import (
	"fmt"
	"strings"
	"time"
)

// DecomposePoint is one compositional-synthesis measurement: the same
// specification synthesised end to end by the monolithic unfolding engine and
// by the decompose engine (split → per-component synthesis → recombination →
// closed-loop re-verification), plus the output-identity verdict.  The
// measurement itself lives in punt/bench, which can import the facade.
type DecomposePoint struct {
	Spec string
	// Runs is how many repetitions each average covers.
	Runs int
	// Components is how many components the decompose engine split the
	// specification into; 1 means indivisible fallthrough.
	Components int
	// Monolithic and Decomposed are the average end-to-end synthesis times.
	Monolithic time.Duration
	Decomposed time.Duration
	// Speedup is Monolithic/Decomposed.
	Speedup float64
	// Identical reports whether the two implementations printed
	// byte-identically — guaranteed on indivisible fallthrough, and expected
	// on exact splits since components share nothing.
	Identical bool
	Literals  int
}

// FormatDecompose renders the compositional-synthesis measurements as a
// table.
func FormatDecompose(points []DecomposePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %5s %5s | %10s %10s %8s | %9s %8s\n",
		"Spec", "Comps", "Runs", "Mono", "Decomp", "Speedup", "Identical", "Literals")
	sb.WriteString(strings.Repeat("-", 82) + "\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %5d %5d | %10v %10v %7.2fx | %9t %8d\n",
			p.Spec, p.Components, p.Runs, p.Monolithic.Round(time.Microsecond),
			p.Decomposed.Round(time.Microsecond), p.Speedup, p.Identical, p.Literals)
	}
	return sb.String()
}
