// Package bitvec provides a compact fixed-width bit vector used throughout the
// library to represent binary signal codes, markings of safe Petri nets and
// sets of small integer identifiers.
//
// The zero value of Vec is an empty vector of width 0.  Vectors are mutable;
// use Clone before handing a vector to code that may modify it.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-width vector of bits.  Bit indices run from 0 to Len()-1.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector from a slice of booleans.
func FromBools(bits []bool) Vec {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// FromString builds a vector from a string of '0' and '1' characters.
// Index 0 of the vector corresponds to the first character.
func FromString(s string) (Vec, error) {
	v := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vec{}, fmt.Errorf("bitvec: invalid character %q at position %d", c, i)
		}
	}
	return v, nil
}

// MustFromString is FromString but panics on malformed input.  It is intended
// for tests and package-internal literals.
func MustFromString(s string) Vec {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len reports the number of bits in the vector.
func (v Vec) Len() int { return v.n }

// Get reports the value of bit i.
func (v Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set assigns bit i.
func (v Vec) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip inverts bit i and returns its new value.
func (v Vec) Flip(i int) bool {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
	return v.Get(i)
}

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy of the vector.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports whether the two vectors have the same width and contents.
func (v Vec) Equal(w Vec) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit hash of the vector's width and contents, chaining a
// full-avalanche mix per word (plain FNV-1a cancels the top bit of each word:
// (x^2⁶³)·p = x·p ^ 2⁶³, so adjacent words' MSBs would collide).  Equal
// vectors hash equally; callers that cannot tolerate collisions must verify
// candidates with Equal.
func (v Vec) Hash() uint64 {
	h := Mix64(uint64(v.n) ^ 0x9e3779b97f4a7c15)
	for _, w := range v.words {
		h = Mix64(h ^ w)
	}
	return h
}

// Mix64 is the splitmix64 finaliser: a cheap full-avalanche bijection.  It is
// the mixing primitive shared by every hash table in the library (markings,
// cuts, state keys).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Key returns a compact string usable as a map key.  Two vectors have the same
// key iff they are Equal.
func (v Vec) Key() string {
	var sb strings.Builder
	sb.Grow(len(v.words)*8 + 4)
	fmt.Fprintf(&sb, "%d:", v.n)
	for _, w := range v.words {
		sb.WriteByte(byte(w))
		sb.WriteByte(byte(w >> 8))
		sb.WriteByte(byte(w >> 16))
		sb.WriteByte(byte(w >> 24))
		sb.WriteByte(byte(w >> 32))
		sb.WriteByte(byte(w >> 40))
		sb.WriteByte(byte(w >> 48))
		sb.WriteByte(byte(w >> 56))
	}
	return sb.String()
}

// String renders the vector as a string of '0' and '1' characters with bit 0
// first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Count returns the number of bits set to 1.
func (v Vec) Count() int {
	c := 0
	for _, w := range v.words {
		c += popcount(w)
	}
	return c
}

// Or sets v to the bitwise OR of v and w.  The vectors must have equal length.
func (v Vec) Or(w Vec) {
	v.sameLen(w)
	for i := range v.words {
		v.words[i] |= w.words[i]
	}
}

// And sets v to the bitwise AND of v and w.  The vectors must have equal length.
func (v Vec) And(w Vec) {
	v.sameLen(w)
	for i := range v.words {
		v.words[i] &= w.words[i]
	}
}

// AndNot clears in v every bit that is set in w.
func (v Vec) AndNot(w Vec) {
	v.sameLen(w)
	for i := range v.words {
		v.words[i] &^= w.words[i]
	}
}

// Intersects reports whether v and w share at least one set bit.
func (v Vec) Intersects(w Vec) bool {
	v.sameLen(w)
	for i := range v.words {
		if v.words[i]&w.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every bit set in w is also set in v.
func (v Vec) ContainsAll(w Vec) bool {
	v.sameLen(w)
	for i := range v.words {
		if w.words[i]&^v.words[i] != 0 {
			return false
		}
	}
	return true
}

func (v Vec) sameLen(w Vec) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
}

// Ones returns the indices of all bits set to 1, in increasing order.
func (v Vec) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := trailingZeros(w)
			idx := wi*wordBits + b
			if idx < v.n {
				out = append(out, idx)
			}
			w &^= 1 << uint(b)
		}
	}
	return out
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
