package bitvec

import (
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d should be 0", i)
		}
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(100)
	v.Set(0, true)
	v.Set(63, true)
	v.Set(64, true)
	v.Set(99, true)
	for _, i := range []int{0, 63, 64, 99} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 4 {
		t.Fatalf("Count = %d, want 4", v.Count())
	}
	if v.Flip(63) {
		t.Errorf("Flip(63) should return false after clearing")
	}
	if v.Get(63) {
		t.Errorf("bit 63 should now be clear")
	}
	v.Set(0, false)
	if v.Get(0) {
		t.Errorf("bit 0 should be clear")
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	s := "0110010111010001"
	v, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != s {
		t.Fatalf("round trip mismatch: %s vs %s", v.String(), s)
	}
	if _, err := FromString("01x"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestKeyEquality(t *testing.T) {
	a := MustFromString("10110")
	b := MustFromString("10110")
	c := MustFromString("10111")
	if a.Key() != b.Key() {
		t.Fatal("equal vectors must have equal keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("different vectors must have different keys")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal misbehaves")
	}
	d := New(6)
	if a.Equal(d) {
		t.Fatal("vectors of different widths must not be equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("1010")
	b := a.Clone()
	b.Set(0, false)
	if !a.Get(0) {
		t.Fatal("Clone must not alias the original")
	}
}

func TestSetOps(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	c := a.Clone()
	c.Or(b)
	if c.String() != "1110" {
		t.Fatalf("Or = %s, want 1110", c.String())
	}
	c = a.Clone()
	c.And(b)
	if c.String() != "1000" {
		t.Fatalf("And = %s, want 1000", c.String())
	}
	c = a.Clone()
	c.AndNot(b)
	if c.String() != "0100" {
		t.Fatalf("AndNot = %s, want 0100", c.String())
	}
	if !a.Intersects(b) {
		t.Fatal("a and b intersect")
	}
	if !MustFromString("1110").ContainsAll(a) {
		t.Fatal("1110 contains 1100")
	}
	if MustFromString("0110").ContainsAll(a) {
		t.Fatal("0110 does not contain 1100")
	}
}

func TestOnes(t *testing.T) {
	v := New(70)
	for _, i := range []int{3, 64, 69} {
		v.Set(i, true)
	}
	ones := v.Ones()
	want := []int{3, 64, 69}
	if len(ones) != len(want) {
		t.Fatalf("Ones = %v, want %v", ones, want)
	}
	for i := range want {
		if ones[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", ones, want)
		}
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		v := FromBools(bits)
		w, err := FromString(v.String())
		if err != nil {
			return false
		}
		return v.Equal(w) && v.Key() == w.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesOnes(t *testing.T) {
	f := func(bits []bool) bool {
		v := FromBools(bits)
		return v.Count() == len(v.Ones())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	v := New(4)
	v.Get(4)
}

func TestQuickHashMatchesEquality(t *testing.T) {
	f := func(a, b []bool) bool {
		va, vb := FromBools(a), FromBools(b)
		if va.Equal(vb) && va.Hash() != vb.Hash() {
			return false
		}
		// The hash must agree with Key-based equality on clones.
		return va.Hash() == va.Clone().Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDiscriminates(t *testing.T) {
	// Not a guarantee, but the common cases must not collide: single-bit
	// differences and width differences.
	seen := map[uint64]string{}
	for n := 0; n <= 130; n++ {
		v := New(n)
		for i := -1; i < n; i++ {
			if i >= 0 {
				v = New(n)
				v.Set(i, true)
			}
			h := v.Hash()
			if prev, ok := seen[h]; ok && prev != v.Key() {
				t.Fatalf("hash collision between %q and %q", prev, v.Key())
			}
			seen[h] = v.Key()
		}
	}
}
