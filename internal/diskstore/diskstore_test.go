package diskstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"punt/internal/faultinject"
)

func ctx() context.Context { return context.Background() }

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"hello":"world"}`)
	if !s.Put(ctx(), "key-1", blob) {
		t.Fatal("put failed")
	}
	got, ok := s.Get(ctx(), "key-1")
	if !ok || string(got) != string(blob) {
		t.Fatalf("get = %q, %v; want %q, true", got, ok, blob)
	}
	if _, ok := s.Get(ctx(), "key-2"); ok {
		t.Fatal("absent key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirAndDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	s.Put(ctx(), "key-1", []byte("payload"))
	s.Delete("key-1")
	if _, ok := s.Get(ctx(), "key-1"); ok {
		t.Fatal("deleted entry still served")
	}
	if got := s.Stats().Entries; got != 0 {
		t.Fatalf("entries = %d after delete, want 0", got)
	}
	s.Delete("never-existed") // must be a no-op, not a panic or a counter glitch
	if got := s.Stats().Entries; got != 0 {
		t.Fatalf("entries = %d after deleting an absent key", got)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 5; i++ {
		s.Put(ctx(), fmt.Sprintf("key-%d", i), []byte("payload"))
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Stats().Entries; got != 5 {
		t.Fatalf("reopened store counts %d entries, want 5", got)
	}
	if _, ok := again.Get(ctx(), "key-3"); !ok {
		t.Fatal("entry lost across reopen")
	}
}

// entryFiles returns the paths of all entry files in the store directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorruptionIsAMiss(t *testing.T) {
	for name, damage := range map[string]func([]byte) []byte{
		"flipped body byte": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"truncated":         func(b []byte) []byte { return b[:len(b)/2] },
		"wrong magic":       func(b []byte) []byte { copy(b, "BADSTORE!"); return b },
		"future version":    func(b []byte) []byte { return append([]byte("puntstore 99"), b[11:]...) },
		"empty file":        func(b []byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := Open(dir)
			s.Put(ctx(), "key", []byte("precious payload"))
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected one entry file, found %v", files)
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], damage(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(ctx(), "key"); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			st := s.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1 (stats %+v)", st.Corrupt, st)
			}
			// The damaged file is dropped: the slot re-warms on the next Put.
			if remaining := entryFiles(t, dir); len(remaining) != 0 {
				t.Fatalf("corrupted entry not deleted: %v", remaining)
			}
		})
	}
}

func TestInjectedFaults(t *testing.T) {
	t.Run("get fault is a miss", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		s.Put(ctx(), "key", []byte("payload"))
		inj := faultinject.New(faultinject.Rule{Op: faultinject.OpDiskGet, Act: faultinject.ActCancel})
		fctx := faultinject.With(context.Background(), inj)
		if _, ok := s.Get(fctx, "key"); ok {
			t.Fatal("faulted get served a hit")
		}
		if _, ok := s.Get(fctx, "key"); !ok {
			t.Fatal("rule fired more than once")
		}
	})
	t.Run("put fault skips the store", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		inj := faultinject.New(faultinject.Rule{Op: faultinject.OpDiskPut, Act: faultinject.ActCancel})
		fctx := faultinject.With(context.Background(), inj)
		if s.Put(fctx, "key", []byte("payload")) {
			t.Fatal("faulted put claimed success")
		}
		if _, ok := s.Get(ctx(), "key"); ok {
			t.Fatal("faulted put persisted anyway")
		}
		if s.Stats().PutErrors != 1 {
			t.Fatalf("put errors = %d, want 1", s.Stats().PutErrors)
		}
	})
	t.Run("corrupt put is detected by get", func(t *testing.T) {
		s, _ := Open(t.TempDir())
		inj := faultinject.New(faultinject.Rule{Op: faultinject.OpDiskPut, Act: faultinject.ActCorrupt})
		fctx := faultinject.With(context.Background(), inj)
		if !s.Put(fctx, "key", []byte("a payload long enough to damage")) {
			t.Fatal("corrupt put should still write")
		}
		if _, ok := s.Get(ctx(), "key"); ok {
			t.Fatal("damaged entry served as a hit")
		}
		if s.Stats().Corrupt != 1 {
			t.Fatalf("corrupt counter = %d, want 1", s.Stats().Corrupt)
		}
	})
}

func TestConcurrentSharedDir(t *testing.T) {
	// Two Store instances on one directory stand in for two puntd replicas
	// behind a load balancer: entries written by one are served by the other,
	// and concurrent mixed traffic stays consistent (atomic rename means a
	// reader sees either the whole entry or none of it).
	dir := t.TempDir()
	a, _ := Open(dir)
	b, _ := Open(dir)
	a.Put(ctx(), "shared", []byte("written by a"))
	if got, ok := b.Get(ctx(), "shared"); !ok || string(got) != "written by a" {
		t.Fatalf("replica b missed replica a's entry: %q, %v", got, ok)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			store := a
			if w%2 == 1 {
				store = b
			}
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%10)
				store.Put(ctx(), key, []byte(key+" payload"))
				if got, ok := store.Get(ctx(), key); ok && string(got) != key+" payload" {
					t.Errorf("torn read: %q for %s", got, key)
				}
			}
		}(w)
	}
	wg.Wait()
}
