// Package diskstore is a content-addressed, corruption-tolerant on-disk blob
// store: the persistence layer under the punt result cache and the puntd
// synthesis daemon.
//
// Keys are opaque strings (the facade's cache keys: spec hash × canonical
// configuration); each key maps to one file whose name is the SHA-256 of the
// key, sharded into 256 two-hex-digit subdirectories so even millions of
// entries keep directory listings cheap.  Every write goes to a temporary
// file in the same directory followed by an atomic rename, so concurrent
// readers — including other processes sharing the directory, the N-replica
// deployment the store exists for — never observe a half-written entry.
//
// The file format is versioned and checksummed:
//
//	puntstore <version> <sha256-of-body-hex> <body-length>\n
//	<body bytes>
//
// Reads verify all four header fields and the checksum; any mismatch — a
// torn file from a crashed writer, bit rot, a foreign file, a future format
// — is reported as a miss with the Corrupt counter bumped, never as an
// error.  The store is an accelerator: losing an entry costs a re-synthesis,
// trusting a damaged one would cost correctness.
package diskstore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"punt/internal/faultinject"
)

// FormatVersion is the on-disk envelope version this package writes and
// accepts.  (The body carries its own format version managed by the result
// serializer; this one only covers the envelope.)
const FormatVersion = 1

// magic is the first header token of every entry file.
const magic = "puntstore"

// Stats is a point-in-time snapshot of the store's effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Corrupt counts the subset of
	// misses caused by an entry that existed but failed validation (and was
	// deleted).
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	// Puts counts successful stores, PutErrors failed ones (the entry is
	// simply not persisted; the store never fails a request).
	Puts      int64 `json:"puts"`
	PutErrors int64 `json:"put_errors"`
	// Entries is the number of entry files currently on disk (scanned at
	// Open, maintained incrementally afterwards; other replicas' writes
	// appear after their next Open or are approximated).
	Entries int64 `json:"entries"`
}

// Store is a content-addressed blob store rooted at one directory.  It is
// safe for concurrent use by multiple goroutines and — thanks to atomic
// renames — by multiple processes sharing the directory.
type Store struct {
	dir string

	hits      atomic.Int64
	misses    atomic.Int64
	corrupt   atomic.Int64
	puts      atomic.Int64
	putErrors atomic.Int64
	entries   atomic.Int64
}

// Open prepares a store rooted at dir, creating the directory when missing
// and counting the entries already present (the warm state a restarted
// daemon inherits).
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{dir: dir}
	// Count existing entries: one level of shard directories, entry files
	// below.  Foreign files are ignored here and rejected by the header
	// check on read.
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var n int64
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.Type().IsRegular() {
				n++
			}
		}
	}
	s.entries.Store(n)
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file: <dir>/<h[0:2]>/<h>, h = SHA-256(key).
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h)
}

// Get returns the blob stored under key.  Every failure mode — absent
// entry, unreadable file, header or checksum mismatch — is a miss; corrupt
// entries are additionally counted and deleted so they are re-warmed instead
// of being re-validated on every request.  The context carries the
// fault-injection schedule in tests.
func (s *Store) Get(ctx context.Context, key string) ([]byte, bool) {
	if faultinject.Check(ctx, faultinject.OpDiskGet) != nil {
		s.misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, ok := decodeEntry(raw)
	if !ok || faultinject.Corrupt(ctx, faultinject.OpDiskGet) {
		// A corrupted entry is evidence, not an error: count it, drop the
		// file, report a miss.  The next synthesis re-warms the slot.
		s.corrupt.Add(1)
		s.misses.Add(1)
		if os.Remove(path) == nil {
			s.entries.Add(-1)
		}
		return nil, false
	}
	s.hits.Add(1)
	return body, true
}

// Put stores blob under key with an atomic write-then-rename.  Failures are
// counted and swallowed: a store that cannot persist degrades to a smaller
// cache, never to a failing request.  It reports whether the entry was
// persisted.
func (s *Store) Put(ctx context.Context, key string, blob []byte) bool {
	if faultinject.Check(ctx, faultinject.OpDiskPut) != nil {
		s.putErrors.Add(1)
		return false
	}
	payload := blob
	if faultinject.Corrupt(ctx, faultinject.OpDiskPut) {
		// Simulated bit rot: flip a byte of the body so the checksum written
		// below no longer matches it — exactly the damage Get must detect.
		payload = append([]byte(nil), blob...)
		if len(payload) > 0 {
			payload[len(payload)/2] ^= 0xff
		}
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.putErrors.Add(1)
		return false
	}
	sum := sha256.Sum256(blob)
	header := fmt.Sprintf("%s %d %s %d\n", magic, FormatVersion, hex.EncodeToString(sum[:]), len(payload))
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		s.putErrors.Add(1)
		return false
	}
	_, werr := tmp.WriteString(header)
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return false
	}
	fresh := !s.exists(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return false
	}
	s.puts.Add(1)
	if fresh {
		s.entries.Add(1)
	}
	return true
}

// Delete removes the entry stored under key, if any.
func (s *Store) Delete(key string) {
	if os.Remove(s.path(key)) == nil {
		s.entries.Add(-1)
	}
}

func (s *Store) exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		Entries:   s.entries.Load(),
	}
}

// decodeEntry validates an entry file and returns its body.  The header
// must parse exactly and the body must match the recorded length and
// checksum; anything else is corruption.
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, false
	}
	fields := bytes.Fields(raw[:nl])
	if len(fields) != 4 || string(fields[0]) != magic {
		return nil, false
	}
	version, err := strconv.Atoi(string(fields[1]))
	if err != nil || version != FormatVersion {
		return nil, false
	}
	length, err := strconv.Atoi(string(fields[3]))
	if err != nil || length < 0 {
		return nil, false
	}
	body := raw[nl+1:]
	if len(body) != length {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != string(fields[2]) {
		return nil, false
	}
	return body, true
}
