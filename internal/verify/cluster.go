package verify

import (
	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/petri"
	"punt/internal/stg"
)

// cluster is one independently verifiable sub-circuit: a union of connected
// components of the net, closed under the input support of its gates.
type cluster struct {
	signals     []int                // global signal indices, ascending
	places      []petri.PlaceID      // ascending
	transitions []petri.TransitionID // ascending
	gates       map[int]gatelib.Gate // by global signal index
}

// unionFind is a plain union-find over integer nodes.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// coverSupport marks in supp the variables some cube of c constrains.
func coverSupport(c *boolcover.Cover, supp []bool) {
	if c == nil {
		return
	}
	for _, cb := range c.Cubes() {
		for i := 0; i < cb.Len(); i++ {
			if cb.Get(i) != boolcover.Dash {
				supp[i] = true
			}
		}
	}
}

// partition splits the specification and its gates into independently
// verifiable clusters.  Two parts of the net end up in the same cluster when
// they are connected through places and transitions, when they carry
// transitions of the same signal, or when a gate of one reads a signal of the
// other.  Clusters without a single gate have nothing to check and are
// dropped.
func partition(g *stg.STG, gates map[int]gatelib.Gate) []*cluster {
	net := g.Net()
	nP, nT, nS := net.NumPlaces(), net.NumTransitions(), g.NumSignals()
	// Node ids: [0,nP) places, [nP,nP+nT) transitions, [nP+nT,nP+nT+nS) signals.
	uf := newUnionFind(nP + nT + nS)
	place := func(p petri.PlaceID) int { return int(p) }
	trans := func(t petri.TransitionID) int { return nP + int(t) }
	signal := func(s int) int { return nP + nT + s }

	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		for _, p := range net.Pre(id) {
			uf.union(trans(id), place(p))
		}
		for _, p := range net.Post(id) {
			uf.union(trans(id), place(p))
		}
		if l := g.Label(id); !l.IsDummy {
			uf.union(trans(id), signal(l.Signal))
		}
	}
	supp := make([]bool, nS)
	for sig, gate := range gates {
		for i := range supp {
			supp[i] = false
		}
		coverSupport(gate.Cover, supp)
		coverSupport(gate.Set, supp)
		coverSupport(gate.Reset, supp)
		for v, used := range supp {
			if used {
				uf.union(signal(sig), signal(v))
			}
		}
	}

	byRoot := map[int]*cluster{}
	get := func(root int) *cluster {
		c, ok := byRoot[root]
		if !ok {
			c = &cluster{gates: map[int]gatelib.Gate{}}
			byRoot[root] = c
		}
		return c
	}
	for p := 0; p < nP; p++ {
		c := get(uf.find(place(petri.PlaceID(p))))
		c.places = append(c.places, petri.PlaceID(p))
	}
	for t := 0; t < nT; t++ {
		c := get(uf.find(trans(petri.TransitionID(t))))
		c.transitions = append(c.transitions, petri.TransitionID(t))
	}
	for s := 0; s < nS; s++ {
		c := get(uf.find(signal(s)))
		c.signals = append(c.signals, s)
		if gate, ok := gates[s]; ok {
			c.gates[s] = gate
		}
	}

	var out []*cluster
	for s := 0; s < nS; s++ {
		root := uf.find(signal(s))
		c := byRoot[root]
		if c == nil || len(c.gates) == 0 {
			continue
		}
		out = append(out, c)
		delete(byRoot, root)
	}
	return out
}
