package verify

import (
	"context"
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/petri"
	"punt/internal/stg"
)

// moveKind is the agent of one composed firing.
type moveKind uint8

const (
	// mvEnv: the environment fires an input or dummy transition of the
	// specification.
	mvEnv moveKind = iota
	// mvOut: a gate drives its output signal; the matching specification
	// transition fires simultaneously.
	mvOut
	// mvNet: a set/reset network output settles to its function value
	// (memory-element architectures only).
	mvNet
)

// move is one composed firing.
type move struct {
	kind  moveKind
	trans int  // index into sim.trans (mvEnv, mvOut)
	gate  int  // index into sim.gates (mvOut, mvNet)
	set   bool // mvNet: true = the set network, false = the reset network
}

// simTrans is a specification transition localised to the cluster.
type simTrans struct {
	id     petri.TransitionID
	pre    []int // bit indices into the cluster marking
	post   []int
	signal int // global signal index, -1 for dummies
	dir    stg.Direction
	env    bool // input-labelled or dummy: fired by the environment
}

// simGate is one gate of the cluster.
type simGate struct {
	sig     int // global signal index
	name    string
	complex bool
	cover   *boolcover.Cover // complex-gate next-state function
	set     *boolcover.Cover // memory-element excitation networks
	reset   *boolcover.Cover
	auxSet  int // aux bit indices (memory gates), -1 otherwise
	auxRst  int
}

// state is one composed closed-loop state.
type state struct {
	marking bitvec.Vec // tokens on the cluster's places
	code    bitvec.Vec // full-width signal code (wires)
	aux     bitvec.Vec // set/reset network output values
	excited bitvec.Vec // gates currently excited (by cluster gate index)
	parent  int        // predecessor state index, -1 for the initial state
	via     move       // the firing that produced this state
}

// sim explores the composition of one cluster's circuit with its environment.
type sim struct {
	g         *stg.STG
	maxStates int

	places  []petri.PlaceID
	trans   []simTrans
	gates   []simGate
	gateOf  map[int]int // global signal index -> gate index
	auxBits int

	states []state
	index  map[uint64][]int
	queue  []int
	edges  int
}

func newSim(g *stg.STG, cl *cluster, opts Options) *sim {
	s := &sim{
		g:         g,
		maxStates: opts.MaxStates,
		places:    cl.places,
		gateOf:    map[int]int{},
		index:     map[uint64][]int{},
	}
	if s.maxStates <= 0 {
		s.maxStates = DefaultMaxStates
	}
	placeIdx := make(map[petri.PlaceID]int, len(cl.places))
	for i, p := range cl.places {
		placeIdx[p] = i
	}
	net := g.Net()
	for _, t := range cl.transitions {
		st := simTrans{id: t, signal: -1}
		for _, p := range net.Pre(t) {
			st.pre = append(st.pre, placeIdx[p])
		}
		for _, p := range net.Post(t) {
			st.post = append(st.post, placeIdx[p])
		}
		if l := g.Label(t); l.IsDummy {
			st.env = true
		} else {
			st.signal = l.Signal
			st.dir = l.Dir
			st.env = g.Signal(l.Signal).Kind == stg.Input
		}
		s.trans = append(s.trans, st)
	}
	for _, sig := range cl.signals {
		gate, ok := cl.gates[sig]
		if !ok {
			continue
		}
		sg := simGate{sig: sig, name: gate.Signal, auxSet: -1, auxRst: -1}
		if gate.Arch == gatelib.ComplexGate {
			sg.complex = true
			sg.cover = gate.Cover
		} else {
			sg.set, sg.reset = gate.Set, gate.Reset
			sg.auxSet, sg.auxRst = s.auxBits, s.auxBits+1
			s.auxBits += 2
		}
		s.gateOf[sig] = len(s.gates)
		s.gates = append(s.gates, sg)
	}
	return s
}

// run explores the composed state space and performs all checks.  It returns
// nil when the cluster verifies, a *Violation on a failed check, ErrStateLimit
// past the budget, and a plain error on malformed input (unsafe or
// inconsistent specification).
func (s *sim) run(ctx context.Context) error {
	if err := s.pushInitial(); err != nil {
		return err
	}
	for head := 0; head < len(s.queue); head++ {
		if head%512 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := s.expand(s.queue[head]); err != nil {
			return err
		}
	}
	return nil
}

func (s *sim) pushInitial() error {
	marking := bitvec.New(len(s.places))
	init := s.g.Net().Initial()
	for i, p := range s.places {
		switch n := init.Tokens(p); {
		case n == 1:
			marking.Set(i, true)
		case n > 1:
			return fmt.Errorf("verify: place %q carries %d tokens initially; only 1-safe nets are supported",
				s.g.Net().PlaceName(p), n)
		}
	}
	code := s.g.InitialState()
	aux := bitvec.New(s.auxBits)
	for i := range s.gates {
		gt := &s.gates[i]
		if gt.complex {
			continue
		}
		aux.Set(gt.auxSet, gt.set.CoversMinterm(code))
		aux.Set(gt.auxRst, gt.reset.CoversMinterm(code))
	}
	st := state{marking: marking, code: code, aux: aux, excited: s.excitedVec(code, aux), parent: -1}
	s.states = append(s.states, st)
	s.index[s.hash(st.marking, st.code, st.aux)] = []int{0}
	s.queue = append(s.queue, 0)
	return nil
}

// expand generates and checks every firing enabled in state cur.
func (s *sim) expand(cur int) error {
	var enabled []int
	{
		st := &s.states[cur]
		for ti := range s.trans {
			if s.enabled(st.marking, ti) {
				enabled = append(enabled, ti)
			}
		}
	}
	// Liveness: every specification-enabled output transition must be
	// producible with the wires frozen — the networks must settle into an
	// excitation of the expected direction.
	for _, ti := range enabled {
		tr := &s.trans[ti]
		if tr.env || tr.signal < 0 {
			continue
		}
		gi := s.gateOf[tr.signal]
		if !s.settledExcited(s.states[cur].code, gi, tr.dir) {
			return s.violation(Liveness, s.gates[gi].name, cur, nil,
				fmt.Sprintf("the specification enables %s here, but the circuit can never produce it: with the wires frozen the %s of gate %q settles without exciting it",
					s.g.TransitionString(tr.id), s.networksNoun(gi), s.gates[gi].name))
		}
	}
	// Environment moves: input and dummy transitions fire whenever the token
	// game enables them.
	for _, ti := range enabled {
		if s.trans[ti].env {
			if err := s.step(cur, move{kind: mvEnv, trans: ti}); err != nil {
				return err
			}
		}
	}
	// The state's vectors are immutable once stored, so they stay valid while
	// step appends to (and may reallocate) s.states.
	code, aux, excited := s.states[cur].code, s.states[cur].aux, s.states[cur].excited
	// Gate output moves: an excited gate may switch its output after an
	// arbitrary delay; the specification must enable the matching transition
	// (conformance), and the firing must not disable other excitations
	// (checked in step).
	for gi := range s.gates {
		if !excited.Get(gi) {
			continue
		}
		gt := &s.gates[gi]
		dir := stg.Plus
		if code.Get(gt.sig) {
			dir = stg.Minus
		}
		matched := false
		for _, ti := range enabled {
			tr := &s.trans[ti]
			if tr.signal == gt.sig && tr.dir == dir {
				matched = true
				if err := s.step(cur, move{kind: mvOut, trans: ti, gate: gi}); err != nil {
					return err
				}
			}
		}
		if !matched {
			attempt := Step{Actor: "gate", Event: fmt.Sprintf("gate %s drives %s%s (not allowed by the specification)", gt.name, gt.name, dir)}
			return s.violation(Conformance, gt.name, cur, &attempt,
				fmt.Sprintf("gate %q is ready to drive %s%s, but the specification does not enable that transition in this state",
					gt.name, gt.name, dir))
		}
	}
	// Network moves: a stale set/reset output settles to its function value
	// after an arbitrary delay.
	for gi := range s.gates {
		gt := &s.gates[gi]
		if gt.complex {
			continue
		}
		if gt.set.CoversMinterm(code) != aux.Get(gt.auxSet) {
			if err := s.step(cur, move{kind: mvNet, gate: gi, set: true}); err != nil {
				return err
			}
		}
		if gt.reset.CoversMinterm(code) != aux.Get(gt.auxRst) {
			if err := s.step(cur, move{kind: mvNet, gate: gi, set: false}); err != nil {
				return err
			}
		}
	}
	return nil
}

// step fires mv from state cur, checks excitation persistence along the edge
// and records the successor state.
func (s *sim) step(cur int, mv move) error {
	src := s.states[cur]
	marking, code, aux := src.marking, src.code, src.aux
	firedGate := -1
	switch mv.kind {
	case mvEnv, mvOut:
		tr := &s.trans[mv.trans]
		next, err := s.fire(marking, mv.trans)
		if err != nil {
			return err
		}
		marking = next
		if tr.signal >= 0 {
			target := tr.dir == stg.Plus
			if code.Get(tr.signal) == target {
				return fmt.Errorf("verify: inconsistent specification: %s fires with %q already %v",
					s.g.TransitionString(tr.id), s.g.Signal(tr.signal).Name, target)
			}
			code = code.Clone()
			code.Set(tr.signal, target)
		}
		if mv.kind == mvOut {
			firedGate = mv.gate
		}
	case mvNet:
		gt := &s.gates[mv.gate]
		bit := gt.auxRst
		if mv.set {
			bit = gt.auxSet
		}
		aux = aux.Clone()
		aux.Flip(bit)
	}
	excited := s.excitedVec(code, aux)

	// Hazard check: every gate excited before the firing (other than the one
	// that fired) must still be excited after it.  The direction of an
	// excitation is toward the opposite of the gate's current output, which
	// this firing did not change, so a persisting bit persists in direction.
	lost := src.excited.Clone()
	if firedGate >= 0 {
		lost.Set(firedGate, false)
	}
	lost.AndNot(excited)
	if ones := lost.Ones(); len(ones) > 0 {
		gt := &s.gates[ones[0]]
		dir := stg.Plus
		if src.code.Get(gt.sig) {
			dir = stg.Minus
		}
		actor, event := s.describeMove(mv)
		final := Step{Actor: actor, Event: event}
		return s.violation(Hazard, gt.name, cur, &final,
			fmt.Sprintf("%s disables the pending excitation of gate %q toward %s%s — under an adversarial delay assignment the output glitches",
				event, gt.name, gt.name, dir))
	}

	s.edges++
	h := s.hash(marking, code, aux)
	for _, idx := range s.index[h] {
		st := &s.states[idx]
		if st.marking.Equal(marking) && st.code.Equal(code) && st.aux.Equal(aux) {
			return nil
		}
	}
	if len(s.states) >= s.maxStates {
		return ErrStateLimit
	}
	idx := len(s.states)
	s.states = append(s.states, state{marking: marking, code: code, aux: aux, excited: excited, parent: cur, via: mv})
	s.index[h] = append(s.index[h], idx)
	s.queue = append(s.queue, idx)
	return nil
}

// fire plays the token game for cluster transition ti on a 1-safe marking.
func (s *sim) fire(marking bitvec.Vec, ti int) (bitvec.Vec, error) {
	tr := &s.trans[ti]
	next := marking.Clone()
	for _, p := range tr.pre {
		next.Set(p, false)
	}
	for _, p := range tr.post {
		if next.Get(p) {
			return bitvec.Vec{}, fmt.Errorf("verify: firing %s overloads place %q; only 1-safe nets are supported",
				s.g.TransitionString(tr.id), s.g.Net().PlaceName(s.places[p]))
		}
		next.Set(p, true)
	}
	return next, nil
}

func (s *sim) enabled(marking bitvec.Vec, ti int) bool {
	for _, p := range s.trans[ti].pre {
		if !marking.Get(p) {
			return false
		}
	}
	return true
}

// excitedVec computes which gates are excited under the given wires and
// network values.
func (s *sim) excitedVec(code, aux bitvec.Vec) bitvec.Vec {
	ex := bitvec.New(len(s.gates))
	for i := range s.gates {
		gt := &s.gates[i]
		cur := code.Get(gt.sig)
		var next bool
		if gt.complex {
			// An atomic complex gate is excited when its function disagrees
			// with its output.
			next = gt.cover.CoversMinterm(code)
			if next != cur {
				ex.Set(i, true)
			}
			continue
		}
		// A memory element switches when exactly one of its networks is
		// asserted against the current output; with both (or neither)
		// asserted it holds.
		setV, rstV := aux.Get(gt.auxSet), aux.Get(gt.auxRst)
		if !cur && setV && !rstV {
			ex.Set(i, true)
		} else if cur && rstV && !setV {
			ex.Set(i, true)
		}
	}
	return ex
}

// settledExcited reports whether gate gi would be excited toward dir once its
// networks settle with the wires frozen at code.
func (s *sim) settledExcited(code bitvec.Vec, gi int, dir stg.Direction) bool {
	gt := &s.gates[gi]
	if gt.complex {
		return gt.cover.CoversMinterm(code) == (dir == stg.Plus)
	}
	setV, rstV := gt.set.CoversMinterm(code), gt.reset.CoversMinterm(code)
	if dir == stg.Plus {
		return setV && !rstV
	}
	return rstV && !setV
}

func (s *sim) networksNoun(gi int) string {
	if s.gates[gi].complex {
		return "cover"
	}
	return "set/reset networks"
}

// violation assembles a Violation with the timed counterexample leading to
// state cur (plus an optional final step for the offending firing).
func (s *sim) violation(kind ViolationKind, signal string, cur int, final *Step, detail string) *Violation {
	var rev []int
	for i := cur; i >= 0 && s.states[i].parent >= 0; i = s.states[i].parent {
		rev = append(rev, i)
	}
	trace := make([]Step, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		actor, event := s.describeMove(s.states[rev[i]].via)
		trace = append(trace, Step{Time: len(trace) + 1, Actor: actor, Event: event})
	}
	if final != nil {
		final.Time = len(trace) + 1
		trace = append(trace, *final)
	}
	return &Violation{Kind: kind, Signal: signal, Detail: detail, Trace: trace}
}

func (s *sim) describeMove(mv move) (actor, event string) {
	switch mv.kind {
	case mvEnv:
		tr := &s.trans[mv.trans]
		if tr.signal < 0 {
			return "env", fmt.Sprintf("dummy %s fires", s.g.TransitionString(tr.id))
		}
		return "env", fmt.Sprintf("input %s", s.g.TransitionString(tr.id))
	case mvOut:
		tr := &s.trans[mv.trans]
		return "gate", fmt.Sprintf("gate %s drives %s", s.gates[mv.gate].name, s.g.TransitionString(tr.id))
	default:
		gt := &s.gates[mv.gate]
		which := "reset"
		if mv.set {
			which = "set"
		}
		return "net", fmt.Sprintf("%s(%s) network settles", which, gt.name)
	}
}

// hash combines the three state components; collisions are resolved by full
// equality in step.
func (s *sim) hash(marking, code, aux bitvec.Vec) uint64 {
	h := marking.Hash() ^ bitvec.Mix64(code.Hash())
	if s.auxBits > 0 {
		h ^= bitvec.Mix64(aux.Hash() + 0x6a09e667f3bcc909)
	}
	return h
}
