package verify

import (
	"context"
	"errors"
	"fmt"

	"punt/internal/baseline"
	"punt/internal/bitvec"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// maxDisagreements caps the number of disagreements collected per run; one is
// enough to prove a bug, a handful is enough to localise it.
const maxDisagreements = 16

// DiffOptions configures the differential harness.
type DiffOptions struct {
	// MaxStates bounds the oracle state graph and the per-engine resource
	// budgets (0 = DefaultMaxStates).
	MaxStates int
	// Architectures additionally synthesises and cross-checks the StandardC
	// and RSLatch implementations of the unfolding flow.
	Architectures bool
}

// EngineRun records the outcome of one engine/architecture configuration.
type EngineRun struct {
	Engine   string // e.g. "unfolding-approx", "explicit", "unfolding/standard-c"
	Err      error  // nil on success
	Literals int
}

// Disagreement is one cross-engine (or engine-vs-oracle) mismatch.
type Disagreement struct {
	Engine string
	Signal string // empty for verdict-level mismatches
	State  int    // oracle state index, -1 for verdict-level mismatches
	Code   string
	Detail string
}

// String renders the disagreement.
func (d Disagreement) String() string {
	if d.Signal == "" {
		return fmt.Sprintf("%s: %s", d.Engine, d.Detail)
	}
	return fmt.Sprintf("%s: signal %q state %d (code %s): %s", d.Engine, d.Signal, d.State, d.Code, d.Detail)
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Spec   string
	States int // oracle state graph size
	// CSCConflict / NonSemiModular report what the oracle found; when set,
	// the expectation flips from "all engines agree on the next-state
	// functions" to "all engines reject the specification accordingly".
	CSCConflict    bool
	NonSemiModular bool
	Runs           []EngineRun
	Disagreements  []Disagreement
}

// Ok reports whether every engine agreed.
func (r *DiffReport) Ok() bool { return len(r.Disagreements) == 0 }

// String summarises the report.
func (r *DiffReport) String() string {
	verdict := "agree"
	if !r.Ok() {
		verdict = fmt.Sprintf("%d disagreements (first: %s)", len(r.Disagreements), r.Disagreements[0])
	}
	return fmt.Sprintf("differential %s: %d engines over %d states: %s", r.Spec, len(r.Runs), r.States, verdict)
}

// Differential synthesises the specification with every engine (the unfolding
// flow in both modes, the explicit and the symbolic state-graph baselines) and
// cross-checks the next-state function of every output signal state by state
// against the explicit state graph as the oracle.  On specifications the
// oracle rejects (CSC conflicts, persistency violations) the engines must
// reject too.  The unfolding implementation is additionally passed through the
// closed-loop Verify as an end-to-end cross-check.
//
// It returns an error only when the oracle itself cannot be built (unsafe or
// inconsistent nets, state limit); engine failures and mismatches are reported
// in the DiffReport.
func Differential(ctx context.Context, g *stg.STG, opts DiffOptions) (*DiffReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	limit := opts.MaxStates
	if limit <= 0 {
		limit = DefaultMaxStates
	}
	sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: limit})
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{
		Spec:           g.Name(),
		States:         sg.NumStates(),
		CSCConflict:    len(sg.CheckCSC()) > 0,
		NonSemiModular: len(sg.CheckOutputPersistency()) > 0,
	}

	type config struct {
		name string
		run  func() (*gatelib.Implementation, error)
		// baseline engines derive covers from their own state space and are
		// exempt from the semi-modularity expectation (they do not check it).
		baseline bool
	}
	configs := []config{
		{"unfolding-approx", func() (*gatelib.Implementation, error) {
			im, _, err := core.New(core.Options{Mode: core.Approximate}).Synthesize(ctx, g)
			return im, err
		}, false},
		{"unfolding-exact", func() (*gatelib.Implementation, error) {
			im, _, err := core.New(core.Options{Mode: core.Exact}).Synthesize(ctx, g)
			return im, err
		}, false},
		{"explicit", func() (*gatelib.Implementation, error) {
			im, _, err := (&baseline.ExplicitSynthesizer{MaxStates: limit}).Synthesize(ctx, g)
			return im, err
		}, true},
		{"symbolic", func() (*gatelib.Implementation, error) {
			im, _, err := (&baseline.SymbolicSynthesizer{}).Synthesize(ctx, g)
			return im, err
		}, true},
	}
	if opts.Architectures {
		for _, arch := range []gatelib.Architecture{gatelib.StandardC, gatelib.RSLatch} {
			arch := arch
			configs = append(configs, config{fmt.Sprintf("unfolding/%s", arch), func() (*gatelib.Implementation, error) {
				im, _, err := core.New(core.Options{Arch: arch}).Synthesize(ctx, g)
				return im, err
			}, false})
		}
	}

	disagree := func(d Disagreement) {
		if len(rep.Disagreements) < maxDisagreements {
			rep.Disagreements = append(rep.Disagreements, d)
		}
	}

	var approxImpl *gatelib.Implementation // kept for the closed-loop cross-check
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		im, err := cfg.run()
		run := EngineRun{Engine: cfg.name, Err: err}
		if im != nil {
			run.Literals = im.Literals()
		}
		if cfg.name == "unfolding-approx" && err == nil {
			approxImpl = im
		}
		rep.Runs = append(rep.Runs, run)
		switch {
		case rep.NonSemiModular:
			// The unfolding flow must reject the specification; the baselines
			// synthesise from their own state space without that check, so
			// their outcome is not constrained.
			if !cfg.baseline && !errors.Is(err, core.ErrNotSemiModular) {
				disagree(Disagreement{Engine: cfg.name, State: -1,
					Detail: fmt.Sprintf("oracle finds persistency violations but the engine returned %v", err)})
			}
		case rep.CSCConflict:
			if !isCSCError(err) {
				disagree(Disagreement{Engine: cfg.name, State: -1,
					Detail: fmt.Sprintf("oracle finds a CSC conflict but the engine returned %v", err)})
			}
		default:
			if err != nil {
				disagree(Disagreement{Engine: cfg.name, State: -1,
					Detail: fmt.Sprintf("oracle accepts the specification but the engine failed: %v", err)})
				continue
			}
			compareImplied(sg, g, im, cfg.name, disagree)
		}
	}

	// End-to-end cross-check: the unfolding implementation must also survive
	// the closed-loop simulation.
	if !rep.CSCConflict && !rep.NonSemiModular && approxImpl != nil {
		if _, verr := Verify(ctx, g, approxImpl, Options{MaxStates: limit}); verr != nil {
			var v *Violation
			if errors.As(verr, &v) {
				disagree(Disagreement{Engine: "verify(unfolding-approx)", Signal: v.Signal, State: -1, Detail: v.Detail})
			} else {
				return nil, verr
			}
		}
	}
	return rep, nil
}

// compareImplied checks the implementation's next-state function of every
// output signal against the oracle's implied value in every reachable state.
func compareImplied(sg *stategraph.Graph, g *stg.STG, im *gatelib.Implementation, engine string, disagree func(Disagreement)) {
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			disagree(Disagreement{Engine: engine, Signal: gate.Signal, State: -1, Detail: "gate for a signal the specification does not declare"})
			continue
		}
		for i := range sg.States {
			code := sg.States[i].Code
			want := sg.ImpliedValue(i, sig)
			got := gateNextValue(gate, code, code.Get(sig))
			if got != want {
				disagree(Disagreement{Engine: engine, Signal: gate.Signal, State: i, Code: code.String(),
					Detail: fmt.Sprintf("next-state value %v, oracle implies %v", got, want)})
				break // one state per signal pins the bug; move on
			}
		}
	}
}

// gateNextValue evaluates the gate's next-state function on a state code.
func gateNextValue(gate gatelib.Gate, code bitvec.Vec, cur bool) bool {
	switch gate.Arch {
	case gatelib.ComplexGate:
		return gate.Cover.CoversMinterm(code)
	default:
		set := gate.Set.CoversMinterm(code)
		reset := gate.Reset.CoversMinterm(code)
		switch {
		case set && !reset:
			return true
		case reset && !set:
			return false
		default:
			return cur
		}
	}
}

func isCSCError(err error) bool {
	var coreCSC *core.CSCError
	return errors.As(err, &coreCSC) || errors.Is(err, baseline.ErrCSC)
}
