package verify

import (
	"context"
	"errors"
	"fmt"

	"punt/internal/baseline"
	"punt/internal/bitvec"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// maxDisagreements caps the number of disagreements collected per run; one is
// enough to prove a bug, a handful is enough to localise it.
const maxDisagreements = 16

// DiffOptions configures the differential harness.
type DiffOptions struct {
	// MaxStates bounds the oracle state graph and the per-engine resource
	// budgets (0 = DefaultMaxStates).
	MaxStates int
	// Architectures additionally synthesises and cross-checks the StandardC
	// and RSLatch implementations of the unfolding flow (default engine set
	// only; ignored when Engines is supplied).
	Architectures bool
	// Engines, when non-empty, replaces the builtin engine set: the facade
	// layer injects its registered backends here, so the harness cross-checks
	// whatever engines the public registry knows without this package having
	// to import them.
	Engines []EngineUnderTest
}

// EngineUnderTest is one synthesis configuration for Differential to
// cross-check against the oracle.
type EngineUnderTest struct {
	// Name labels the engine in EngineRun and Disagreement records.
	Name string
	// Baseline marks engines that synthesise from their own state space and
	// are therefore exempt from the semi-modularity-rejection expectation
	// (they do not perform that check).
	Baseline bool
	// Run synthesises the specification.
	Run func(ctx context.Context) (*gatelib.Implementation, error)
}

// EngineRun records the outcome of one engine/architecture configuration.
type EngineRun struct {
	Engine   string // e.g. "unfolding-approx", "explicit", "unfolding/standard-c"
	Err      error  // nil on success
	Literals int
}

// Disagreement is one cross-engine (or engine-vs-oracle) mismatch.
type Disagreement struct {
	Engine string
	Signal string // empty for verdict-level mismatches
	State  int    // oracle state index, -1 for verdict-level mismatches
	Code   string
	Detail string
}

// String renders the disagreement.
func (d Disagreement) String() string {
	if d.Signal == "" {
		return fmt.Sprintf("%s: %s", d.Engine, d.Detail)
	}
	return fmt.Sprintf("%s: signal %q state %d (code %s): %s", d.Engine, d.Signal, d.State, d.Code, d.Detail)
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Spec   string
	States int // oracle state graph size
	// CSCConflict / NonSemiModular report what the oracle found; when set,
	// the expectation flips from "all engines agree on the next-state
	// functions" to "all engines reject the specification accordingly".
	CSCConflict    bool
	NonSemiModular bool
	Runs           []EngineRun
	Disagreements  []Disagreement
}

// Ok reports whether every engine agreed.
func (r *DiffReport) Ok() bool { return len(r.Disagreements) == 0 }

// String summarises the report.
func (r *DiffReport) String() string {
	verdict := "agree"
	if !r.Ok() {
		verdict = fmt.Sprintf("%d disagreements (first: %s)", len(r.Disagreements), r.Disagreements[0])
	}
	return fmt.Sprintf("differential %s: %d engines over %d states: %s", r.Spec, len(r.Runs), r.States, verdict)
}

// Differential synthesises the specification with every engine (the unfolding
// flow in both modes, the explicit and the symbolic state-graph baselines) and
// cross-checks the next-state function of every output signal state by state
// against the explicit state graph as the oracle.  On specifications the
// oracle rejects (CSC conflicts, persistency violations) the engines must
// reject too.  The unfolding implementation is additionally passed through the
// closed-loop Verify as an end-to-end cross-check.
//
// It returns an error only when the oracle itself cannot be built (unsafe or
// inconsistent nets, state limit); engine failures and mismatches are reported
// in the DiffReport.
func Differential(ctx context.Context, g *stg.STG, opts DiffOptions) (*DiffReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	limit := opts.MaxStates
	if limit <= 0 {
		limit = DefaultMaxStates
	}
	sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: limit})
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{
		Spec:           g.Name(),
		States:         sg.NumStates(),
		CSCConflict:    len(sg.CheckCSC()) > 0,
		NonSemiModular: len(sg.CheckOutputPersistency()) > 0,
	}

	configs := opts.Engines
	if len(configs) == 0 {
		configs = defaultEngines(g, limit, opts.Architectures)
	}

	disagree := func(d Disagreement) {
		if len(rep.Disagreements) < maxDisagreements {
			rep.Disagreements = append(rep.Disagreements, d)
		}
	}

	// The first successful non-baseline implementation is additionally passed
	// through the closed-loop Verify as an end-to-end cross-check.
	var closedLoopImpl *gatelib.Implementation
	var closedLoopName string
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		im, err := cfg.Run(ctx)
		run := EngineRun{Engine: cfg.Name, Err: err}
		if im != nil {
			run.Literals = im.Literals()
		}
		if !cfg.Baseline && err == nil && closedLoopImpl == nil {
			closedLoopImpl = im
			closedLoopName = cfg.Name
		}
		rep.Runs = append(rep.Runs, run)
		switch {
		case rep.NonSemiModular:
			// The unfolding flow must reject the specification; the baselines
			// synthesise from their own state space without that check, so
			// their outcome is not constrained.
			if !cfg.Baseline && !errors.Is(err, core.ErrNotSemiModular) {
				disagree(Disagreement{Engine: cfg.Name, State: -1,
					Detail: fmt.Sprintf("oracle finds persistency violations but the engine returned %v", err)})
			}
		case rep.CSCConflict:
			if !isCSCError(err) {
				disagree(Disagreement{Engine: cfg.Name, State: -1,
					Detail: fmt.Sprintf("oracle finds a CSC conflict but the engine returned %v", err)})
			}
		default:
			if err != nil {
				disagree(Disagreement{Engine: cfg.Name, State: -1,
					Detail: fmt.Sprintf("oracle accepts the specification but the engine failed: %v", err)})
				continue
			}
			compareImplied(sg, g, im, cfg.Name, disagree)
		}
	}

	// End-to-end cross-check: the implementation must also survive the
	// closed-loop simulation.
	if !rep.CSCConflict && !rep.NonSemiModular && closedLoopImpl != nil {
		if _, verr := Verify(ctx, g, closedLoopImpl, Options{MaxStates: limit}); verr != nil {
			var v *Violation
			if errors.As(verr, &v) {
				disagree(Disagreement{Engine: "verify(" + closedLoopName + ")", Signal: v.Signal, State: -1, Detail: v.Detail})
			} else {
				return nil, verr
			}
		}
	}
	return rep, nil
}

// defaultEngines is the builtin engine set used when DiffOptions.Engines is
// empty: both unfolding modes, both state-graph baselines and optionally the
// memory-element architectures.  The internal tests and the fuzz harness run
// on it; the facade injects the registered public backends instead.
func defaultEngines(g *stg.STG, limit int, architectures bool) []EngineUnderTest {
	engines := []EngineUnderTest{
		{Name: "unfolding-approx", Run: func(ctx context.Context) (*gatelib.Implementation, error) {
			im, _, err := core.New(core.Options{Mode: core.Approximate}).Synthesize(ctx, g)
			return im, err
		}},
		{Name: "unfolding-exact", Run: func(ctx context.Context) (*gatelib.Implementation, error) {
			im, _, err := core.New(core.Options{Mode: core.Exact}).Synthesize(ctx, g)
			return im, err
		}},
		{Name: "explicit", Baseline: true, Run: func(ctx context.Context) (*gatelib.Implementation, error) {
			im, _, err := (&baseline.ExplicitSynthesizer{MaxStates: limit}).Synthesize(ctx, g)
			return im, err
		}},
		{Name: "symbolic", Baseline: true, Run: func(ctx context.Context) (*gatelib.Implementation, error) {
			im, _, err := (&baseline.SymbolicSynthesizer{}).Synthesize(ctx, g)
			return im, err
		}},
	}
	if architectures {
		for _, arch := range []gatelib.Architecture{gatelib.StandardC, gatelib.RSLatch} {
			arch := arch
			engines = append(engines, EngineUnderTest{
				Name: fmt.Sprintf("unfolding/%s", arch),
				Run: func(ctx context.Context) (*gatelib.Implementation, error) {
					im, _, err := core.New(core.Options{Arch: arch}).Synthesize(ctx, g)
					return im, err
				},
			})
		}
	}
	return engines
}

// compareImplied checks the implementation's next-state function of every
// output signal against the oracle's implied value in every reachable state.
func compareImplied(sg *stategraph.Graph, g *stg.STG, im *gatelib.Implementation, engine string, disagree func(Disagreement)) {
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			disagree(Disagreement{Engine: engine, Signal: gate.Signal, State: -1, Detail: "gate for a signal the specification does not declare"})
			continue
		}
		for i := range sg.States {
			code := sg.States[i].Code
			want := sg.ImpliedValue(i, sig)
			got := gateNextValue(gate, code, code.Get(sig))
			if got != want {
				disagree(Disagreement{Engine: engine, Signal: gate.Signal, State: i, Code: code.String(),
					Detail: fmt.Sprintf("next-state value %v, oracle implies %v", got, want)})
				break // one state per signal pins the bug; move on
			}
		}
	}
}

// gateNextValue evaluates the gate's next-state function on a state code.
func gateNextValue(gate gatelib.Gate, code bitvec.Vec, cur bool) bool {
	switch gate.Arch {
	case gatelib.ComplexGate:
		return gate.Cover.CoversMinterm(code)
	default:
		set := gate.Set.CoversMinterm(code)
		reset := gate.Reset.CoversMinterm(code)
		switch {
		case set && !reset:
			return true
		case reset && !set:
			return false
		default:
			return cur
		}
	}
}

func isCSCError(err error) bool {
	var coreCSC *core.CSCError
	return errors.As(err, &coreCSC) || errors.Is(err, baseline.ErrCSC)
}
