package verify

import (
	"context"
	"errors"
	"strings"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/boolcover"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stg"
)

func synth(t *testing.T, g *stg.STG, opts core.Options) *gatelib.Implementation {
	t.Helper()
	im, _, err := core.New(opts).Synthesize(context.Background(), g)
	if err != nil {
		t.Fatalf("%s: synthesize: %v", g.Name(), err)
	}
	return im
}

func mustVerify(t *testing.T, g *stg.STG, im *gatelib.Implementation) *Report {
	t.Helper()
	rep, err := Verify(context.Background(), g, im, Options{})
	if err != nil {
		t.Fatalf("%s: verify: %v", g.Name(), err)
	}
	return rep
}

func TestVerifyFig1(t *testing.T) {
	g := benchgen.PaperFig1()
	im := synth(t, g, core.Options{})
	rep := mustVerify(t, g, im)
	// Figure 1 has 8 reachable states and a single cluster.
	if rep.ComposedStates != 8 {
		t.Errorf("composed states = %d, want 8", rep.ComposedStates)
	}
	if rep.Clusters != 1 {
		t.Errorf("clusters = %d, want 1", rep.Clusters)
	}
}

func TestVerifyHandshakeAllArchitectures(t *testing.T) {
	for _, arch := range []gatelib.Architecture{gatelib.ComplexGate, gatelib.StandardC, gatelib.RSLatch} {
		g := benchgen.Handshake()
		im := synth(t, g, core.Options{Arch: arch})
		mustVerify(t, g, im)
	}
}

// TestVerifyCorruptedCover mutates the Figure 1 cover (b = a + c) and checks
// that each corruption is caught with a counterexample trace.
func TestVerifyCorruptedCover(t *testing.T) {
	cases := []struct {
		name  string
		cover *boolcover.Cover // over (a, b, c)
		want  ViolationKind
	}{
		// b = a misses the c-branch: after the environment chooses c+, the
		// specification enables b+ but the gate never rises.
		{"missing-term", boolcover.CoverFromStrings("1--"), Liveness},
		// b = 1 drives b immediately, which the specification does not allow
		// in the initial state.
		{"constant-one", boolcover.CoverFromStrings("---"), Conformance},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := benchgen.PaperFig1()
			im := synth(t, g, core.Options{})
			for i := range im.Gates {
				if im.Gates[i].Signal == "b" {
					im.Gates[i].Cover = tc.cover
				}
			}
			_, err := Verify(context.Background(), g, im, Options{})
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("expected a *Violation, got %v", err)
			}
			if v.Kind != tc.want {
				t.Errorf("kind = %v, want %v (violation: %v)", v.Kind, tc.want, v)
			}
			if v.Signal != "b" {
				t.Errorf("signal = %q, want b", v.Signal)
			}
			if tc.want != Conformance && len(v.Trace) == 0 {
				t.Errorf("expected a non-empty counterexample trace: %v", v)
			}
			if !strings.Contains(v.Error(), "b") {
				t.Errorf("rendered violation should mention the signal: %s", v)
			}
		})
	}
}

func TestVerifyCounterflowDecomposes(t *testing.T) {
	if testing.Short() {
		t.Skip("counterflow verification explores 2x131072 composed states")
	}
	g := benchgen.CounterflowPipeline()
	im := synth(t, g, core.Options{})
	rep := mustVerify(t, g, im)
	if rep.Clusters != 2 {
		t.Errorf("counterflow should split into 2 clusters, got %d", rep.Clusters)
	}
	if rep.ComposedStates != 2*131072 {
		t.Errorf("composed states = %d, want %d", rep.ComposedStates, 2*131072)
	}
}
