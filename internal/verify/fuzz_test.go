package verify

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stategraph"
)

// FuzzDifferential is the differential fuzzing entry point: the fuzzer
// mutates the generator seed and signal budget, RandomSTG turns them into a
// structurally varied specification, and every synthesis engine must agree
// with the state-graph oracle on the verdict and on every next-state
// function.  Run it with:
//
//	go test -run=NONE -fuzz=FuzzDifferential -fuzztime=30s ./internal/verify
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed, uint8(seed*5))
	}
	f.Fuzz(func(t *testing.T, seed int64, budget uint8) {
		g := benchgen.RandomSTG(seed, 4+int(budget)%11)
		rep, err := Differential(context.Background(), g, DiffOptions{MaxStates: 50000, Architectures: true})
		if err != nil {
			// Exhausting a resource budget on an adversarial seed is not an
			// engine disagreement.
			if errors.Is(err, stategraph.ErrStateLimit) || errors.Is(err, ErrStateLimit) {
				t.Skip()
			}
			t.Fatalf("seed %d budget %d: %v", seed, budget, err)
		}
		if rep.NonSemiModular {
			t.Fatalf("seed %d budget %d: RandomSTG must be semi-modular by construction", seed, budget)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d budget %d: %s", seed, budget, rep)
		}
	})
}
