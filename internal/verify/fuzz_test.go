package verify

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/resolve"
	"punt/internal/stategraph"
)

// FuzzDifferential is the differential fuzzing entry point: the fuzzer
// mutates the generator seed and signal budget, RandomSTG turns them into a
// structurally varied specification, and every synthesis engine must agree
// with the state-graph oracle on the verdict and on every next-state
// function.  Seeds whose specification carries a deliberate CSC conflict
// gadget are not discarded: the conflict is repaired by the resolver and the
// repaired specification is cross-checked end to end, so roughly a third of
// the generator's output space is real coverage of the resolution path.
// Run it with:
//
//	go test -run=NONE -fuzz=FuzzDifferential -fuzztime=30s ./internal/verify
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed, uint8(seed*5))
	}
	f.Fuzz(func(t *testing.T, seed int64, budget uint8) {
		ctx := context.Background()
		g := benchgen.RandomSTG(seed, 4+int(budget)%11)
		rep, err := Differential(ctx, g, DiffOptions{MaxStates: 50000, Architectures: true})
		if err != nil {
			// Exhausting a resource budget on an adversarial seed is not an
			// engine disagreement.
			if errors.Is(err, stategraph.ErrStateLimit) || errors.Is(err, ErrStateLimit) {
				t.Skip()
			}
			t.Fatalf("seed %d budget %d: %v", seed, budget, err)
		}
		if rep.NonSemiModular {
			t.Fatalf("seed %d budget %d: RandomSTG must be semi-modular by construction", seed, budget)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d budget %d: %s", seed, budget, rep)
		}
		if !rep.CSCConflict {
			return
		}
		// The oracle found a CSC conflict (and every engine rejected
		// accordingly): repair the specification by internal-signal insertion
		// and cross-check the repaired implementation the same way.
		rg, _, err := resolve.Resolve(ctx, g, resolve.Options{MaxSignals: 12, MaxStates: 50000})
		if err != nil {
			if errors.Is(err, stategraph.ErrStateLimit) {
				t.Skip()
			}
			t.Fatalf("seed %d budget %d: resolve: %v", seed, budget, err)
		}
		rrep, err := Differential(ctx, rg, DiffOptions{MaxStates: 50000, Architectures: true})
		if err != nil {
			if errors.Is(err, stategraph.ErrStateLimit) || errors.Is(err, ErrStateLimit) {
				t.Skip()
			}
			t.Fatalf("seed %d budget %d: resolved differential: %v", seed, budget, err)
		}
		if rrep.CSCConflict {
			t.Fatalf("seed %d budget %d: resolver left a CSC conflict behind", seed, budget)
		}
		if rrep.NonSemiModular {
			t.Fatalf("seed %d budget %d: resolver broke semi-modularity", seed, budget)
		}
		if !rrep.Ok() {
			t.Fatalf("seed %d budget %d: resolved: %s", seed, budget, rrep)
		}
	})
}
