// Package verify implements closed-loop verification of synthesised
// speed-independent circuits against their STG specifications.
//
// The verifier composes the gate-level implementation with the environment
// the specification describes and explores every interleaving the composition
// admits under arbitrary gate delays: each gate (and, for the memory-element
// architectures, each set/reset network output) is an independent node that
// switches an unbounded, unknown time after it becomes excited, while the
// environment fires input transitions whenever the specification's token game
// enables them.  Three properties are checked on the composed state space:
//
//   - Conformance: whenever a gate is ready to switch its output, the
//     specification must enable the corresponding signal transition — a gate
//     that can drive an edge the STG does not allow produces an output trace
//     outside the specified behaviour.
//   - Hazard-freedom: an excited gate must stay excited (toward the same
//     value) until it fires, no matter which other gate or input switches
//     first.  A disabled excitation is the canonical speed-independence
//     hazard: under an adversarial delay assignment the gate output glitches.
//   - Liveness: every output transition the specification enables must be
//     producible by the circuit from the state that enables it — with the
//     wires frozen, the gate networks must settle into an excitation of the
//     expected direction, otherwise the expected edge is lost and the
//     environment can wait for it forever.
//
// A violation is reported as a *Violation carrying a concrete timed
// counterexample trace (unit delays, one firing per time step) from the
// initial state to the offending event.
//
// The composition is explored per cluster: connected components of the
// underlying net, merged whenever a gate's input support couples two
// components.  Independent components multiply state counts in the product
// but never interact, so verifying them separately is sound and turns
// specifications like the counterflow pipeline (two disjoint pipelines whose
// product state graph is astronomically large) into two tractable runs.
package verify

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"punt/internal/gatelib"
	"punt/internal/stg"
)

// DefaultMaxStates is the per-cluster composed-state budget used when
// Options.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// ErrStateLimit is returned when the composed exploration exceeds the
// configured state budget before finishing all checks.
var ErrStateLimit = errors.New("verify: composed state limit exceeded")

// Options configures verification.
type Options struct {
	// MaxStates bounds the number of composed states explored per cluster
	// (0 = DefaultMaxStates).  Exceeding it fails with ErrStateLimit.
	MaxStates int
}

// Report summarises a successful verification run.
type Report struct {
	// Clusters is the number of independent sub-circuits verified (connected
	// components of the net, merged by gate support).
	Clusters int
	// ComposedStates and ComposedEdges count the explored closed-loop states
	// and firings, summed over all clusters.
	ComposedStates int
	ComposedEdges  int
	// Outputs is the number of gates checked.
	Outputs int
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("verified %d gates over %d composed states (%d firings, %d clusters)",
		r.Outputs, r.ComposedStates, r.ComposedEdges, r.Clusters)
}

// ViolationKind classifies a verification failure.
type ViolationKind int

// The three failure classes of the closed-loop checks.
const (
	// Conformance: a gate can drive an output edge the specification does
	// not enable.
	Conformance ViolationKind = iota
	// Hazard: an excited gate is disabled before it fires; under an
	// adversarial delay assignment the output glitches.
	Hazard
	// Liveness: a specification-enabled output transition can never be
	// produced by the circuit.
	Liveness
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case Conformance:
		return "conformance violation"
	case Hazard:
		return "hazard"
	case Liveness:
		return "lost liveness"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Step is one firing of the counterexample trace, stamped with a unit-delay
// time (one firing per time step, starting at 1).
type Step struct {
	Time  int
	Actor string // "env", "gate" or "net"
	Event string // e.g. "input r+", "gate b drives b+", "set(b) settles to 0"
}

// String renders the step.
func (s Step) String() string { return fmt.Sprintf("t=%d\t[%s]\t%s", s.Time, s.Actor, s.Event) }

// Violation is a verification failure: the check that failed, the offending
// signal and a timed counterexample trace from the initial state to the
// failure.  It implements error.
type Violation struct {
	Kind   ViolationKind
	Signal string // the offending output signal
	Detail string // human-readable description of the failing check
	Trace  []Step // timed counterexample (may be empty when the initial state fails)
}

// Error renders the violation with its counterexample.
func (v *Violation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify: %s on signal %q: %s", v.Kind, v.Signal, v.Detail)
	if len(v.Trace) > 0 {
		sb.WriteString("; counterexample:")
		for _, st := range v.Trace {
			sb.WriteString("\n  ")
			sb.WriteString(st.String())
		}
	}
	return sb.String()
}

// TraceStrings renders the counterexample steps line by line.
func (v *Violation) TraceStrings() []string {
	out := make([]string, len(v.Trace))
	for i, s := range v.Trace {
		out[i] = s.String()
	}
	return out
}

// Verify checks the implementation against the specification with the
// closed-loop gate-level simulation described in the package comment.  It
// returns a *Violation (as error) on a failed check, ErrStateLimit when the
// exploration budget is exhausted, or another error when the inputs are
// malformed (missing gates, mismatched signal ordering, unsafe or
// inconsistent specification).
func Verify(ctx context.Context, g *stg.STG, im *gatelib.Implementation, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !g.HasInitialState() {
		if err := g.InferInitialState(opts.MaxStates); err != nil {
			return nil, err
		}
	}
	gates, err := gateTable(g, im)
	if err != nil {
		return nil, err
	}
	clusters := partition(g, gates)
	rep := &Report{Clusters: len(clusters), Outputs: len(gates)}
	for _, cl := range clusters {
		s := newSim(g, cl, opts)
		if err := s.run(ctx); err != nil {
			return nil, err
		}
		rep.ComposedStates += len(s.states)
		rep.ComposedEdges += s.edges
	}
	return rep, nil
}

// gateTable resolves one gate per implemented (non-input) signal and checks
// that the implementation matches the specification's signal alphabet.
func gateTable(g *stg.STG, im *gatelib.Implementation) (map[int]gatelib.Gate, error) {
	if im == nil {
		return nil, errors.New("verify: nil implementation")
	}
	names := g.SignalNames()
	if len(im.SignalNames) != len(names) {
		return nil, fmt.Errorf("verify: implementation is over %d signals, specification has %d",
			len(im.SignalNames), len(names))
	}
	for i, n := range im.SignalNames {
		if n != names[i] {
			return nil, fmt.Errorf("verify: implementation signal order differs from the specification at position %d (%q vs %q)",
				i, n, names[i])
		}
	}
	table := make(map[int]gatelib.Gate, len(im.Gates))
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			return nil, fmt.Errorf("verify: implementation has a gate for unknown signal %q", gate.Signal)
		}
		if k := g.Signal(sig).Kind; k == stg.Input {
			return nil, fmt.Errorf("verify: implementation drives input signal %q", gate.Signal)
		}
		if _, dup := table[sig]; dup {
			return nil, fmt.Errorf("verify: implementation has two gates for signal %q", gate.Signal)
		}
		if err := checkGateWidth(gate, len(names)); err != nil {
			return nil, err
		}
		table[sig] = gate
	}
	for _, sig := range g.OutputSignals() {
		if _, ok := table[sig]; !ok {
			return nil, fmt.Errorf("verify: implementation has no gate for output signal %q", g.Signal(sig).Name)
		}
	}
	return table, nil
}

func checkGateWidth(gate gatelib.Gate, n int) error {
	if gate.Arch == gatelib.ComplexGate {
		if gate.Cover == nil {
			return fmt.Errorf("verify: gate %q has no cover", gate.Signal)
		}
		if gate.Cover.Vars() != n {
			return fmt.Errorf("verify: cover of gate %q is over %d variables, want %d", gate.Signal, gate.Cover.Vars(), n)
		}
		return nil
	}
	if gate.Set == nil || gate.Reset == nil {
		return fmt.Errorf("verify: gate %q is missing its set/reset covers", gate.Signal)
	}
	if gate.Set.Vars() != n || gate.Reset.Vars() != n {
		return fmt.Errorf("verify: set/reset covers of gate %q do not match the %d-signal alphabet", gate.Signal, n)
	}
	return nil
}
