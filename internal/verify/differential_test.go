package verify

import (
	"context"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/boolcover"
	"punt/internal/core"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// TestDifferentialTable1 cross-checks all engines on the small Table 1
// benchmarks: every engine must synthesise the same next-state functions.
func TestDifferentialTable1(t *testing.T) {
	for _, entry := range benchgen.Table1Suite() {
		if entry.Signals > 14 {
			continue // keep the symbolic baseline cheap; larger specs are covered by Verify
		}
		rep, err := Differential(context.Background(), entry.Build(), DiffOptions{Architectures: true})
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if !rep.Ok() {
			t.Errorf("%s: %s", entry.Name, rep)
		}
		if rep.CSCConflict || rep.NonSemiModular {
			t.Errorf("%s: Table 1 specs are implementable, oracle says csc=%v nonsm=%v",
				entry.Name, rep.CSCConflict, rep.NonSemiModular)
		}
	}
}

// TestDifferentialRandomSeeds is the acceptance sweep of the differential
// harness: across at least 200 random specifications, no engine may disagree
// with the state-graph oracle (or with the others) — neither on the verdict
// (CSC conflict vs clean) nor on any next-state function value.
func TestDifferentialRandomSeeds(t *testing.T) {
	const seeds = 220
	csc, clean := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed%14))
		rep, err := Differential(context.Background(), g, DiffOptions{MaxStates: 200000, Architectures: seed%4 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			t.Errorf("seed %d: %s", seed, rep)
		}
		if rep.NonSemiModular {
			t.Errorf("seed %d: RandomSTG must be semi-modular by construction", seed)
		}
		if rep.CSCConflict {
			csc++
		} else {
			clean++
		}
	}
	if csc == 0 || clean == 0 {
		t.Errorf("the seed sweep must cover both classes, got csc=%d clean=%d", csc, clean)
	}
	t.Logf("%d seeds: %d CSC-conflicted, %d clean, zero disagreements", seeds, csc, clean)
}

// TestDifferentialDetectsCorruption plants a wrong cover into the oracle
// comparison path to prove the harness is not vacuous: a corrupted explicit
// implementation must disagree.
func TestDifferentialDetectsCorruption(t *testing.T) {
	g := benchgen.PaperFig1()
	im, _, err := core.New(core.Options{}).Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Gates {
		if im.Gates[i].Signal == "b" {
			im.Gates[i].Cover = boolcover.CoverFromStrings("1--") // b = a, drops the c term
		}
	}
	sg, err := stategraph.Build(context.Background(), g, stategraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Disagreement
	compareImplied(sg, g, im, "corrupted", func(d Disagreement) { got = append(got, d) })
	if len(got) == 0 {
		t.Fatal("compareImplied accepted a cover that drops an on-set term")
	}
	if got[0].Signal != "b" {
		t.Errorf("disagreement should pin signal b, got %+v", got[0])
	}
}

// TestDifferentialNonSemiModular checks the verdict normalisation on a
// specification with an output-choice persistency violation: the oracle flags
// it and the unfolding engines must reject it.
func TestDifferentialNonSemiModular(t *testing.T) {
	g := nonSemiModularSTG(t)
	rep, err := Differential(context.Background(), g, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NonSemiModular {
		t.Fatal("oracle should find persistency violations")
	}
	if !rep.Ok() {
		t.Errorf("unfolding engines must reject the spec consistently: %s", rep)
	}
}

// nonSemiModularSTG builds the output-choice controller of testdata/nonsm.g
// programmatically: after the input a+, a choice place feeds two output
// transitions, so firing one disables the other excited output.
func nonSemiModularSTG(t *testing.T) *stg.STG {
	t.Helper()
	b := stg.NewBuilder("nonsm")
	b.Inputs("a").Outputs("x", "y")
	b.Place("p").Place("q")
	b.PlaceArc("a+", "p")
	b.PlaceArc("p", "x+").PlaceArc("p", "y+")
	b.Arc("x+", "a-").Arc("y+", "a-/2")
	b.Arc("a-", "x-").Arc("a-/2", "y-")
	b.PlaceArc("x-", "q").PlaceArc("y-", "q")
	b.PlaceArc("q", "a+")
	b.Mark("q")
	b.InitialState("000")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
