package baseline

import (
	"context"
	"fmt"
	"time"

	"punt/internal/bdd"
	"punt/internal/boolcover"
	"punt/internal/faultinject"
	"punt/internal/gatelib"
	"punt/internal/petri"
	"punt/internal/stg"
)

// SymbolicSynthesizer is the "Petrify-like" baseline: the reachable state
// space of the STG is represented by a BDD over one variable per place plus
// one variable per signal; the on/off-sets of every output signal are
// computed symbolically and converted into covers for minimisation.
type SymbolicSynthesizer struct {
	// MaxNodes aborts synthesis with ErrLimit when the BDD manager exceeds
	// this many nodes (0 = unlimited).
	MaxNodes int
	// Arch selects the implementation architecture (default ComplexGate).
	Arch gatelib.Architecture
	// Progress, when non-nil, receives coarse progress notifications.
	Progress ProgressFunc
}

// Synthesize derives an implementation for every output and internal signal.
// Cancellation of ctx is checked on every image-computation iteration and
// before every signal's cover extraction.
func (s *SymbolicSynthesizer) Synthesize(ctx context.Context, g *stg.STG) (*gatelib.Implementation, *Stats, error) {
	stats := &Stats{}
	total := time.Now()
	if !g.HasInitialState() {
		if err := g.InferInitialState(0); err != nil {
			return nil, stats, err
		}
	}
	net := g.Net()
	nPlaces := net.NumPlaces()
	nSignals := g.NumSignals()
	m := bdd.New(nPlaces + nSignals)
	placeVar := func(p petri.PlaceID) int { return int(p) }
	signalVar := func(sig int) int { return nPlaces + sig }

	// Initial state: conjunction of all place variables (1 if marked) and all
	// signal variables (per the initial binary code).
	buildStart := time.Now()
	init := m.Const(true)
	initialMarking := net.Initial()
	for p := 0; p < nPlaces; p++ {
		if initialMarking.Tokens(petri.PlaceID(p)) > 1 {
			return nil, stats, fmt.Errorf("baseline: symbolic synthesis requires a safe net (place %q holds %d tokens)",
				net.PlaceName(petri.PlaceID(p)), initialMarking.Tokens(petri.PlaceID(p)))
		}
		if initialMarking.Marked(petri.PlaceID(p)) {
			init = m.And(init, m.Var(placeVar(petri.PlaceID(p))))
		} else {
			init = m.And(init, m.NVar(placeVar(petri.PlaceID(p))))
		}
	}
	code := g.InitialState()
	for sig := 0; sig < nSignals; sig++ {
		if code.Get(sig) {
			init = m.And(init, m.Var(signalVar(sig)))
		} else {
			init = m.And(init, m.NVar(signalVar(sig)))
		}
	}

	// Pre-compute per-transition data: enabling condition, variables changed
	// by the firing and the constraint describing the new values.
	type transRel struct {
		enabled bdd.Node
		changed []int
		newVals bdd.Node
		label   stg.Label
		name    string
	}
	rels := make([]transRel, net.NumTransitions())
	for t := 0; t < net.NumTransitions(); t++ {
		tid := petri.TransitionID(t)
		enabled := m.Const(true)
		for _, p := range net.Pre(tid) {
			enabled = m.And(enabled, m.Var(placeVar(p)))
		}
		inPre := map[petri.PlaceID]bool{}
		for _, p := range net.Pre(tid) {
			inPre[p] = true
		}
		inPost := map[petri.PlaceID]bool{}
		for _, p := range net.Post(tid) {
			inPost[p] = true
		}
		var changed []int
		newVals := m.Const(true)
		for _, p := range net.Pre(tid) {
			if !inPost[p] {
				changed = append(changed, placeVar(p))
				newVals = m.And(newVals, m.NVar(placeVar(p)))
			}
		}
		for _, p := range net.Post(tid) {
			if !inPre[p] {
				changed = append(changed, placeVar(p))
				newVals = m.And(newVals, m.Var(placeVar(p)))
			}
		}
		label := g.Label(tid)
		if !label.IsDummy {
			changed = append(changed, signalVar(label.Signal))
			if label.Dir == stg.Plus {
				// Consistency: the signal must be 0 before a rising edge.
				enabled = m.And(enabled, m.NVar(signalVar(label.Signal)))
				newVals = m.And(newVals, m.Var(signalVar(label.Signal)))
			} else {
				enabled = m.And(enabled, m.Var(signalVar(label.Signal)))
				newVals = m.And(newVals, m.NVar(signalVar(label.Signal)))
			}
		}
		rels[t] = transRel{enabled: enabled, changed: changed, newVals: newVals, label: label, name: g.TransitionString(tid)}
	}

	// Least fixed point of the image computation.
	reached := init
	frontier := init
	for frontier != bdd.False {
		if err := ctx.Err(); err != nil {
			stats.BuildTime = time.Since(buildStart)
			return nil, stats, err
		}
		if err := faultinject.Check(ctx, faultinject.OpSymbolicFixpoint); err != nil {
			stats.BuildTime = time.Since(buildStart)
			return nil, stats, err
		}
		next := bdd.False
		for _, rel := range rels {
			from := m.And(frontier, rel.enabled)
			if from == bdd.False {
				continue
			}
			img := m.And(m.Exists(from, rel.changed), rel.newVals)
			next = m.Or(next, img)
		}
		newStates := m.And(next, m.Not(reached))
		reached = m.Or(reached, newStates)
		frontier = newStates
		if s.MaxNodes > 0 && m.NumNodes() > s.MaxNodes {
			stats.BuildTime = time.Since(buildStart)
			return nil, stats, fmt.Errorf("%w: BDD grew beyond %d nodes", ErrLimit, s.MaxNodes)
		}
	}
	stats.BuildTime = time.Since(buildStart)
	// Every satisfying assignment of `reached` fixes all place and signal
	// variables, so the satisfy count equals the number of reachable states.
	stats.States = int(m.SatCount(reached))
	if s.Progress != nil {
		s.Progress("build", "", stats.States)
	}

	// Consistency of the specification is enforced by construction above: a
	// rising edge is only enabled when the signal is 0.  A specification that
	// violates consistency simply yields unreachable successors; the explicit
	// flow reports it precisely, so we do not duplicate the diagnostics here.

	placeVars := make([]int, nPlaces)
	for p := 0; p < nPlaces; p++ {
		placeVars[p] = p
	}

	im := &gatelib.Implementation{Name: g.Name(), SignalNames: g.SignalNames()}
	for _, sig := range g.OutputSignals() {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if s.Progress != nil {
			s.Progress("covers", g.Signal(sig).Name, stats.States)
		}
		coverStart := time.Now()
		excitedPlus := bdd.False
		excitedMinus := bdd.False
		for t := 0; t < net.NumTransitions(); t++ {
			l := rels[t].label
			if l.IsDummy || l.Signal != sig {
				continue
			}
			if l.Dir == stg.Plus {
				excitedPlus = m.Or(excitedPlus, rels[t].enabled)
			} else {
				excitedMinus = m.Or(excitedMinus, rels[t].enabled)
			}
		}
		sigVar := m.Var(signalVar(sig))
		onStates := m.And(reached, m.Or(excitedPlus, m.And(sigVar, m.Not(excitedMinus))))
		offStates := m.And(reached, m.Or(excitedMinus, m.And(m.Not(sigVar), m.Not(excitedPlus))))
		onCodes := m.Exists(onStates, placeVars)
		offCodes := m.Exists(offStates, placeVars)
		if m.And(onCodes, offCodes) != bdd.False {
			stats.CoverTime += time.Since(coverStart)
			stats.Total = time.Since(total)
			return nil, stats, &CSCError{Signal: g.Signal(sig).Name}
		}
		on := coverFromBDD(m, onCodes, nPlaces, nSignals)
		off := coverFromBDD(m, offCodes, nPlaces, nSignals)
		var erPlus, erMinus *boolcover.Cover
		if s.Arch != gatelib.ComplexGate {
			erPlus = coverFromBDD(m, m.Exists(m.And(reached, excitedPlus), placeVars), nPlaces, nSignals)
			erMinus = coverFromBDD(m, m.Exists(m.And(reached, excitedMinus), placeVars), nPlaces, nSignals)
		}
		stats.CoverTime += time.Since(coverStart)

		gate, minTime := buildGate(g, sig, s.Arch, on, off, erPlus, erMinus)
		stats.MinimizeTime += minTime
		im.Gates = append(im.Gates, gate)
	}
	stats.Total = time.Since(total)
	return im, stats, nil
}

// coverFromBDD converts a BDD whose support lies within the signal variables
// into a cover over the signals.
func coverFromBDD(m *bdd.Manager, f bdd.Node, nPlaces, nSignals int) *boolcover.Cover {
	cover := boolcover.NewCover(nSignals)
	m.AllCubes(f, func(cube []bdd.CubeValue) bool {
		c := boolcover.NewCube(nSignals)
		for sig := 0; sig < nSignals; sig++ {
			switch cube[nPlaces+sig] {
			case bdd.CubeOne:
				c.Set(sig, boolcover.One)
			case bdd.CubeZero:
				c.Set(sig, boolcover.Zero)
			}
		}
		cover.Add(c)
		return true
	})
	return cover
}
