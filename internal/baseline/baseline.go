// Package baseline implements the two state-graph-based synthesis flows the
// paper compares PUNT against:
//
//   - ExplicitSynthesizer ("SIS-like"): enumerates the state graph explicitly
//     and derives exact on/off-set covers from the state codes.
//   - SymbolicSynthesizer ("Petrify-like"): represents the state graph
//     symbolically with BDDs, computes the reachable set by a fixed-point of
//     image computations, and extracts the covers from the BDDs.
//
// Both flows then minimise the covers with the same two-level minimiser used
// by the unfolding-based flow, so literal counts are directly comparable.
package baseline

import (
	"errors"
	"fmt"
	"time"

	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/stg"
)

// ErrCSC is returned when a specification violates Complete State Coding and
// therefore cannot be implemented without changing the specification.
var ErrCSC = errors.New("baseline: specification has a CSC conflict")

// CSCError carries the offending signal and/or a description of the state
// pair of a Complete State Coding conflict.  It wraps ErrCSC.
type CSCError struct {
	Signal   string // the conflicting signal, when identified
	Conflict string // human-readable description of the conflicting states
}

func (e *CSCError) Error() string {
	switch {
	case e.Signal != "" && e.Conflict != "":
		return fmt.Sprintf("%v: signal %q: %s", ErrCSC, e.Signal, e.Conflict)
	case e.Signal != "":
		return fmt.Sprintf("%v: signal %q", ErrCSC, e.Signal)
	default:
		return fmt.Sprintf("%v: %s", ErrCSC, e.Conflict)
	}
}

func (e *CSCError) Unwrap() error { return ErrCSC }

// ErrLimit is returned when a synthesis run exceeds its configured state or
// node budget (the state-explosion guard used by the Figure 6 experiment).
var ErrLimit = errors.New("baseline: resource limit exceeded")

// ProgressFunc receives coarse progress notifications during a baseline
// synthesis run: stage "build" once the state space has been constructed
// (states = its size) and "covers" before each signal's cover extraction.
// It must be cheap; it runs on the synthesizing goroutine.
type ProgressFunc func(stage, signal string, states int)

// Stats is the timing breakdown of a baseline synthesis run.
type Stats struct {
	// States is the number of reachable states of the state graph.
	States int
	// BuildTime is the time spent constructing the state graph (explicitly or
	// symbolically).
	BuildTime time.Duration
	// CoverTime is the time spent deriving the on/off-set covers.
	CoverTime time.Duration
	// MinimizeTime is the time spent in two-level minimisation (the paper's
	// "EspTim" for the PUNT column; for the baselines it is folded into the
	// total, but we keep the breakdown for analysis).
	MinimizeTime time.Duration
	// Total is the complete wall-clock synthesis time.
	Total time.Duration
}

// String summarises the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("states=%d build=%v covers=%v minimize=%v total=%v",
		s.States, s.BuildTime.Round(time.Microsecond), s.CoverTime.Round(time.Microsecond),
		s.MinimizeTime.Round(time.Microsecond), s.Total.Round(time.Microsecond))
}

// buildGate assembles a gate for one signal in the requested architecture
// from its exact on-set, off-set and excitation-region covers.
func buildGate(
	g *stg.STG,
	signal int,
	arch gatelib.Architecture,
	on, off, erPlus, erMinus *boolcover.Cover,
) (gatelib.Gate, time.Duration) {
	name := g.Signal(signal).Name
	start := time.Now()
	switch arch {
	case gatelib.ComplexGate:
		cover := boolcover.MinimizeAgainstOff(on, off)
		return gatelib.Gate{Signal: name, Arch: arch, Cover: cover}, time.Since(start)
	default:
		// Memory-element architectures: the set function must cover ER(+a)
		// and may extend into QR(a=1); it must not hold where the signal is 0
		// and not excited to rise.  Dually for reset.
		setOff := off.Sharp(erPlus)   // states with implied 0, minus nothing: set must avoid all of them
		resetOff := on.Sharp(erMinus) // states with implied 1: reset must avoid them
		set := boolcover.MinimizeAgainstOff(erPlus, setOff)
		reset := boolcover.MinimizeAgainstOff(erMinus, resetOff)
		return gatelib.Gate{Signal: name, Arch: arch, Set: set, Reset: reset}, time.Since(start)
	}
}
