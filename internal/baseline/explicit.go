package baseline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"punt/internal/boolcover"
	"punt/internal/faultinject"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// ExplicitSynthesizer is the "SIS-like" baseline: it enumerates the state
// graph explicitly, reads the truth table of every output signal off the
// state codes and minimises it.
type ExplicitSynthesizer struct {
	// MaxStates aborts synthesis with ErrLimit when the state graph exceeds
	// this size (0 = unlimited).
	MaxStates int
	// Arch selects the implementation architecture (default ComplexGate).
	Arch gatelib.Architecture
	// Progress, when non-nil, receives coarse progress notifications.
	Progress ProgressFunc
}

// Synthesize derives an implementation for every output and internal signal
// of the STG.  Cancellation of ctx aborts the state-graph exploration and the
// per-signal cover loop promptly.
func (s *ExplicitSynthesizer) Synthesize(ctx context.Context, g *stg.STG) (*gatelib.Implementation, *Stats, error) {
	stats := &Stats{}
	total := time.Now()

	sgOpts := stategraph.Options{MaxStates: s.MaxStates}
	if p := s.Progress; p != nil {
		// Periodic in-flight notifications: a watchdog observing the attempt
		// sees the partial state count, not just the final size.
		sgOpts.Progress = func(states int) { p("build", "", states) }
	}
	start := time.Now()
	sg, err := stategraph.Build(ctx, g, sgOpts)
	stats.BuildTime = time.Since(start)
	if err != nil {
		if errors.Is(err, stategraph.ErrStateLimit) {
			return nil, stats, fmt.Errorf("%w: state graph larger than %d states", ErrLimit, s.MaxStates)
		}
		return nil, stats, err
	}
	stats.States = sg.NumStates()
	if s.Progress != nil {
		s.Progress("build", "", stats.States)
	}

	if conflicts := sg.CheckCSC(); len(conflicts) > 0 {
		return nil, stats, &CSCError{Conflict: conflicts[0].String()}
	}

	im := &gatelib.Implementation{Name: g.Name(), SignalNames: g.SignalNames()}
	for _, sig := range g.OutputSignals() {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if err := faultinject.Check(ctx, faultinject.OpExplicitCovers); err != nil {
			return nil, stats, err
		}
		if s.Progress != nil {
			s.Progress("covers", g.Signal(sig).Name, stats.States)
		}
		coverStart := time.Now()
		on := sg.OnSet(sig)
		off := sg.OffSet(sig)
		var erPlus, erMinus *boolcover.Cover
		if s.Arch != gatelib.ComplexGate {
			erPlus = regionCover(sg, sig, stg.Plus)
			erMinus = regionCover(sg, sig, stg.Minus)
		}
		stats.CoverTime += time.Since(coverStart)

		gate, minTime := buildGate(g, sig, s.Arch, on, off, erPlus, erMinus)
		stats.MinimizeTime += minTime
		im.Gates = append(im.Gates, gate)
	}
	stats.Total = time.Since(total)
	return im, stats, nil
}

// regionCover builds the cover of the binary codes of the excitation region
// of the given signal edge.
func regionCover(sg *stategraph.Graph, signal int, dir stg.Direction) *boolcover.Cover {
	c := boolcover.NewCover(sg.STG.NumSignals())
	for _, i := range sg.ExcitationRegion(signal, dir) {
		c.Add(boolcover.CubeFromMinterm(sg.States[i].Code))
	}
	return c
}
