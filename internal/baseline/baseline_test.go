package baseline

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// verifyImplementation checks every gate of the implementation against the
// explicit state graph.
func verifyImplementation(t *testing.T, g *stg.STG, im *gatelib.Implementation) {
	t.Helper()
	sg, err := stategraph.Build(context.Background(), g, stategraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			t.Fatalf("implementation has unknown signal %q", gate.Signal)
		}
		switch gate.Arch {
		case gatelib.ComplexGate:
			if err := sg.VerifyCover(sig, gate.Cover); err != nil {
				t.Fatalf("gate %s: %v", gate.Signal, err)
			}
		default:
			if err := sg.VerifySetReset(sig, gate.Set, gate.Reset); err != nil {
				t.Fatalf("gate %s: %v", gate.Signal, err)
			}
		}
	}
}

func TestExplicitFig1(t *testing.T) {
	g := benchgen.PaperFig1()
	s := &ExplicitSynthesizer{}
	im, stats, err := s.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.States != 8 {
		t.Fatalf("states = %d, want 8", stats.States)
	}
	gate, ok := im.Gate("b")
	if !ok {
		t.Fatal("no gate for b")
	}
	// The paper's result: C(b) = a + c, two literals.
	if !gate.Cover.Equivalent(boolcover.CoverFromStrings("1--", "--1")) {
		t.Fatalf("cover = %s, want a + c", gate.Cover)
	}
	if im.Literals() != 2 {
		t.Fatalf("literals = %d, want 2", im.Literals())
	}
	verifyImplementation(t, g, im)
}

func TestSymbolicFig1(t *testing.T) {
	g := benchgen.PaperFig1()
	s := &SymbolicSynthesizer{}
	im, stats, err := s.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.States != 8 {
		t.Fatalf("states = %d, want 8", stats.States)
	}
	gate, ok := im.Gate("b")
	if !ok {
		t.Fatal("no gate for b")
	}
	if !gate.Cover.Equivalent(boolcover.CoverFromStrings("1--", "--1")) {
		t.Fatalf("cover = %s, want a + c", gate.Cover)
	}
	verifyImplementation(t, g, im)
}

func TestExplicitAndSymbolicAgree(t *testing.T) {
	for _, build := range []func() *stg.STG{benchgen.PaperFig1, benchgen.PaperFig4, benchgen.Handshake} {
		g := build()
		e := &ExplicitSynthesizer{}
		imE, statsE, err := e.Synthesize(context.Background(), g)
		if err != nil {
			t.Fatalf("%s explicit: %v", g.Name(), err)
		}
		g2 := build()
		y := &SymbolicSynthesizer{}
		imS, statsS, err := y.Synthesize(context.Background(), g2)
		if err != nil {
			t.Fatalf("%s symbolic: %v", g.Name(), err)
		}
		if statsE.States != statsS.States {
			t.Fatalf("%s: explicit found %d states, symbolic %d", g.Name(), statsE.States, statsS.States)
		}
		// Both implementations must be functionally correct; covers may differ
		// syntactically but must be equivalent on reachable states, which the
		// verifier checks.
		verifyImplementation(t, build(), imE)
		verifyImplementation(t, build(), imS)
		if imE.Literals() != imS.Literals() {
			// Same minimiser, same exact covers: literal counts should agree.
			t.Fatalf("%s: literal counts differ: explicit %d, symbolic %d",
				g.Name(), imE.Literals(), imS.Literals())
		}
	}
}

func TestCElementArchitecture(t *testing.T) {
	for _, arch := range []gatelib.Architecture{gatelib.StandardC, gatelib.RSLatch} {
		g := benchgen.PaperFig4()
		s := &ExplicitSynthesizer{Arch: arch}
		im, _, err := s.Synthesize(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		verifyImplementation(t, benchgen.PaperFig4(), im)
		for _, gate := range im.Gates {
			if gate.Set == nil || gate.Reset == nil {
				t.Fatalf("gate %s missing set/reset covers", gate.Signal)
			}
		}
	}
}

func TestExplicitStateLimit(t *testing.T) {
	g := benchgen.PaperFig4()
	s := &ExplicitSynthesizer{MaxStates: 4}
	_, _, err := s.Synthesize(context.Background(), g)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("expected ErrLimit, got %v", err)
	}
}

func TestSymbolicNodeLimit(t *testing.T) {
	g := benchgen.PaperFig4()
	s := &SymbolicSynthesizer{MaxNodes: 16}
	_, _, err := s.Synthesize(context.Background(), g)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("expected ErrLimit, got %v", err)
	}
}

func TestCSCConflictReported(t *testing.T) {
	// Two sequential handshakes on the same input: classic CSC failure.
	b := stg.NewBuilder("csc-conflict")
	b.Inputs("in").Outputs("out1", "out2")
	b.Chain("in+", "out1+", "in-", "out1-", "in+/2", "out2+", "in-/2", "out2-")
	b.Arc("out2-", "in+").MarkBetween("out2-", "in+")
	b.InitialState("000")
	g := b.MustBuild()

	e := &ExplicitSynthesizer{}
	if _, _, err := e.Synthesize(context.Background(), g); !errors.Is(err, ErrCSC) {
		t.Fatalf("explicit: expected ErrCSC, got %v", err)
	}
	y := &SymbolicSynthesizer{}
	if _, _, err := y.Synthesize(context.Background(), b.MustBuild()); !errors.Is(err, ErrCSC) {
		t.Fatalf("symbolic: expected ErrCSC, got %v", err)
	}
}

func TestHandshakeLiteralCount(t *testing.T) {
	g := benchgen.Handshake()
	e := &ExplicitSynthesizer{}
	im, _, err := e.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// ack = req: a single literal.
	if im.Literals() != 1 {
		t.Fatalf("literals = %d, want 1", im.Literals())
	}
}
