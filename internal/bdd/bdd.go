// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table and an ITE computed cache.  It is the symbolic
// substrate of the "Petrify-like" baseline synthesizer: the paper compares
// PUNT against Petrify, which represents the state graph of an STG with BDDs.
//
// Nodes are identified by small integer handles; 0 and 1 are the terminal
// nodes.  All operations are performed through a Manager, which owns the
// node table.  The variable order is the natural order of variable indices.
package bdd

import (
	"fmt"
)

// Node is a handle to a BDD node owned by a Manager.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level     int32 // variable index; terminals use level = maxLevel
	low, high Node
}

type uniqueKey struct {
	level     int32
	low, high Node
}

type opKey struct {
	op      uint8
	a, b, c Node
}

const (
	opAnd uint8 = iota
	opOr
	opXor
	opIte
	opExists
	opRestrict
)

// Manager owns a forest of shared ROBDD nodes over a fixed number of
// variables.
type Manager struct {
	nvars  int
	nodes  []nodeData
	unique map[uniqueKey]Node
	cache  map[opKey]Node
}

// New returns a manager for nvars boolean variables.
func New(nvars int) *Manager {
	if nvars < 0 {
		panic("bdd: negative variable count")
	}
	m := &Manager{
		nvars:  nvars,
		unique: map[uniqueKey]Node{},
		cache:  map[opKey]Node{},
	}
	term := int32(nvars)
	m.nodes = append(m.nodes,
		nodeData{level: term}, // False
		nodeData{level: term}, // True
	)
	return m
}

// NumVars reports the number of variables of the manager.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes reports the number of allocated nodes (including terminals); a
// rough measure of memory use.
func (m *Manager) NumNodes() int { return len(m.nodes) }

func (m *Manager) level(n Node) int32 { return m.nodes[n].level }

func (m *Manager) mk(level int32, low, high Node) Node {
	if low == high {
		return low
	}
	key := uniqueKey{level, low, high}
	if n, ok := m.unique[key]; ok {
		return n
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, low: low, high: high})
	m.unique[key] = n
	return n
}

// Const returns the terminal for the given boolean.
func (m *Manager) Const(b bool) Node {
	if b {
		return True
	}
	return False
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Node {
	m.checkVar(i)
	return m.mk(int32(i), False, True)
}

// NVar returns the BDD of the negation of variable i.
func (m *Manager) NVar(i int) Node {
	m.checkVar(i)
	return m.mk(int32(i), True, False)
}

func (m *Manager) checkVar(i int) {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nvars))
	}
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node {
	return m.Ite(f, False, True)
}

// And returns f ∧ g.
func (m *Manager) And(f, g Node) Node {
	if f == g {
		return f
	}
	if f == False || g == False {
		return False
	}
	if f == True {
		return g
	}
	if g == True {
		return f
	}
	if f > g {
		f, g = g, f
	}
	key := opKey{op: opAnd, a: f, b: g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lv := min32(m.level(f), m.level(g))
	f0, f1 := m.cofactors(f, lv)
	g0, g1 := m.cofactors(g, lv)
	r := m.mk(lv, m.And(f0, g0), m.And(f1, g1))
	m.cache[key] = r
	return r
}

// Or returns f ∨ g.
func (m *Manager) Or(f, g Node) Node {
	if f == g {
		return f
	}
	if f == True || g == True {
		return True
	}
	if f == False {
		return g
	}
	if g == False {
		return f
	}
	if f > g {
		f, g = g, f
	}
	key := opKey{op: opOr, a: f, b: g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lv := min32(m.level(f), m.level(g))
	f0, f1 := m.cofactors(f, lv)
	g0, g1 := m.cofactors(g, lv)
	r := m.mk(lv, m.Or(f0, g0), m.Or(f1, g1))
	m.cache[key] = r
	return r
}

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Node) Node {
	if f == g {
		return False
	}
	if f == False {
		return g
	}
	if g == False {
		return f
	}
	if f == True {
		return m.Not(g)
	}
	if g == True {
		return m.Not(f)
	}
	if f > g {
		f, g = g, f
	}
	key := opKey{op: opXor, a: f, b: g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lv := min32(m.level(f), m.level(g))
	f0, f1 := m.cofactors(f, lv)
	g0, g1 := m.cofactors(g, lv)
	r := m.mk(lv, m.Xor(f0, g0), m.Xor(f1, g1))
	m.cache[key] = r
	return r
}

// Ite returns if-then-else(f, g, h).
func (m *Manager) Ite(f, g, h Node) Node {
	if f == True {
		return g
	}
	if f == False {
		return h
	}
	if g == h {
		return g
	}
	if g == True && h == False {
		return f
	}
	key := opKey{op: opIte, a: f, b: g, c: h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lv := min32(m.level(f), min32(m.level(g), m.level(h)))
	f0, f1 := m.cofactors(f, lv)
	g0, g1 := m.cofactors(g, lv)
	h0, h1 := m.cofactors(h, lv)
	r := m.mk(lv, m.Ite(f0, g0, h0), m.Ite(f1, g1, h1))
	m.cache[key] = r
	return r
}

// Implies returns f → g.
func (m *Manager) Implies(f, g Node) Node {
	return m.Or(m.Not(f), g)
}

func (m *Manager) cofactors(f Node, lv int32) (Node, Node) {
	if m.level(f) != lv {
		return f, f
	}
	return m.nodes[f].low, m.nodes[f].high
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// RestrictVar returns f with variable v fixed to the given value.
func (m *Manager) RestrictVar(f Node, v int, value bool) Node {
	m.checkVar(v)
	var b Node
	if value {
		b = True
	}
	key := opKey{op: opRestrict, a: f, b: Node(v)*2 + b}
	if r, ok := m.cache[key]; ok {
		return r
	}
	var r Node
	switch {
	case m.level(f) > int32(v):
		r = f
	case m.level(f) == int32(v):
		if value {
			r = m.nodes[f].high
		} else {
			r = m.nodes[f].low
		}
	default:
		lv := m.level(f)
		r = m.mk(lv, m.RestrictVar(m.nodes[f].low, v, value), m.RestrictVar(m.nodes[f].high, v, value))
	}
	m.cache[key] = r
	return r
}

// ExistsVar existentially quantifies variable v out of f.
func (m *Manager) ExistsVar(f Node, v int) Node {
	return m.Or(m.RestrictVar(f, v, false), m.RestrictVar(f, v, true))
}

// Exists existentially quantifies all the given variables out of f.
func (m *Manager) Exists(f Node, vars []int) Node {
	r := f
	for _, v := range vars {
		r = m.ExistsVar(r, v)
	}
	return r
}

// ForAll universally quantifies all the given variables out of f.
func (m *Manager) ForAll(f Node, vars []int) Node {
	r := f
	for _, v := range vars {
		r = m.And(m.RestrictVar(r, v, false), m.RestrictVar(r, v, true))
	}
	return r
}

// Eval evaluates f under the assignment given by vals (indexed by variable).
func (m *Manager) Eval(f Node, vals []bool) bool {
	for f != True && f != False {
		d := m.nodes[f]
		if vals[d.level] {
			f = d.high
		} else {
			f = d.low
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// variables of the manager, as a float64 (the counts grow exponentially).
func (m *Manager) SatCount(f Node) float64 {
	memo := map[Node]float64{}
	var count func(Node) float64
	count = func(n Node) float64 {
		if n == False {
			return 0
		}
		if n == True {
			return 1
		}
		if v, ok := memo[n]; ok {
			return v
		}
		d := m.nodes[n]
		low := count(d.low) * pow2(int(m.level(d.low)-d.level-1))
		high := count(d.high) * pow2(int(m.level(d.high)-d.level-1))
		v := low + high
		memo[n] = v
		return v
	}
	return count(f) * pow2(int(m.level(f)))
}

func pow2(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= 2
	}
	return v
}

// CubeValue is the value of one variable along a satisfying path.
type CubeValue int8

// Possible CubeValue values.
const (
	CubeDontCare CubeValue = -1
	CubeZero     CubeValue = 0
	CubeOne      CubeValue = 1
)

// AllCubes enumerates the satisfying paths of f as cubes over the manager's
// variables (CubeDontCare marks variables not on the path).  The callback may
// return false to stop the enumeration early.
func (m *Manager) AllCubes(f Node, visit func(cube []CubeValue) bool) {
	cube := make([]CubeValue, m.nvars)
	for i := range cube {
		cube[i] = CubeDontCare
	}
	m.allCubes(f, cube, visit)
}

func (m *Manager) allCubes(f Node, cube []CubeValue, visit func([]CubeValue) bool) bool {
	if f == False {
		return true
	}
	if f == True {
		out := make([]CubeValue, len(cube))
		copy(out, cube)
		return visit(out)
	}
	d := m.nodes[f]
	cube[d.level] = CubeZero
	if !m.allCubes(d.low, cube, visit) {
		cube[d.level] = CubeDontCare
		return false
	}
	cube[d.level] = CubeOne
	if !m.allCubes(d.high, cube, visit) {
		cube[d.level] = CubeDontCare
		return false
	}
	cube[d.level] = CubeDontCare
	return true
}

// Support returns the variables that f depends on, in increasing order.
func (m *Manager) Support(f Node) []int {
	seen := map[Node]bool{}
	vars := map[int]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if n == True || n == False || seen[n] {
			return
		}
		seen[n] = true
		vars[int(m.nodes[n].level)] = true
		walk(m.nodes[n].low)
		walk(m.nodes[n].high)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := 0; v < m.nvars; v++ {
		if vars[v] {
			out = append(out, v)
		}
	}
	return out
}
