package bdd

import (
	"math/rand"
	"testing"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if m.Const(true) != True || m.Const(false) != False {
		t.Fatal("constants wrong")
	}
	x := m.Var(0)
	if m.Var(0) != x {
		t.Fatal("unique table must share equal nodes")
	}
	if m.Not(m.NVar(0)) != x {
		t.Fatal("double negation must be canonical")
	}
}

func TestBasicIdentities(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if m.And(a, m.Not(a)) != False {
		t.Fatal("a ∧ ¬a = 0")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Fatal("a ∨ ¬a = 1")
	}
	if m.And(a, b) != m.And(b, a) {
		t.Fatal("∧ commutative (canonical form)")
	}
	if m.Xor(a, a) != False {
		t.Fatal("a ⊕ a = 0")
	}
	if m.Ite(a, True, False) != a {
		t.Fatal("ite(a,1,0) = a")
	}
	if m.Implies(False, a) != True {
		t.Fatal("0 → a = 1")
	}
	// De Morgan.
	if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
		t.Fatal("De Morgan violated")
	}
}

func TestEvalAgainstTruthTable(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.Xor(b, c))
	for mask := 0; mask < 8; mask++ {
		vals := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := (vals[0] && vals[1]) || (vals[1] != vals[2])
		if m.Eval(f, vals) != want {
			t.Fatalf("Eval mismatch at %v", vals)
		}
	}
}

func TestRestrictAndQuantify(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.And(a, m.Or(b, c))
	if m.RestrictVar(f, 0, false) != False {
		t.Fatal("f|a=0 should be 0")
	}
	if m.RestrictVar(f, 0, true) != m.Or(b, c) {
		t.Fatal("f|a=1 should be b ∨ c")
	}
	if m.ExistsVar(f, 0) != m.Or(b, c) {
		t.Fatal("∃a.f should be b ∨ c")
	}
	if m.ForAll(f, []int{0}) != False {
		t.Fatal("∀a.f should be 0")
	}
	if m.Exists(f, []int{0, 1, 2}) != True {
		t.Fatal("∃abc.f should be 1 since f is satisfiable")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.Or(a, b) // 6 of 8 assignments
	if got := m.SatCount(f); got != 6 {
		t.Fatalf("SatCount = %v, want 6", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Fatalf("SatCount(True) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(False) = %v, want 0", got)
	}
}

func TestAllCubesCoverFunction(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	covered := map[int]bool{}
	m.AllCubes(f, func(cube []CubeValue) bool {
		// Expand the cube into minterms.
		expand := func(mask int) bool {
			for i, v := range cube {
				bit := mask&(1<<uint(i)) != 0
				if v == CubeOne && !bit || v == CubeZero && bit {
					return false
				}
			}
			return true
		}
		for mask := 0; mask < 8; mask++ {
			if expand(mask) {
				covered[mask] = true
			}
		}
		return true
	})
	for mask := 0; mask < 8; mask++ {
		vals := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := (vals[0] && vals[1]) || vals[2]
		if covered[mask] != want {
			t.Fatalf("cube enumeration disagrees with function at %03b", mask)
		}
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(1)))
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("Support = %v, want [1 3]", sup)
	}
}

// Property test: random expression trees evaluated both via BDD and directly.
func TestRandomExpressionsAgreeWithEvaluation(t *testing.T) {
	const nvars = 6
	r := rand.New(rand.NewSource(42))
	type expr struct {
		node Node
		eval func(v []bool) bool
	}
	m := New(nvars)
	for trial := 0; trial < 30; trial++ {
		var leaves []expr
		for i := 0; i < nvars; i++ {
			i := i
			leaves = append(leaves, expr{m.Var(i), func(v []bool) bool { return v[i] }})
		}
		cur := leaves
		for step := 0; step < 20; step++ {
			a := cur[r.Intn(len(cur))]
			b := cur[r.Intn(len(cur))]
			var e expr
			switch r.Intn(4) {
			case 0:
				e = expr{m.And(a.node, b.node), func(v []bool) bool { return a.eval(v) && b.eval(v) }}
			case 1:
				e = expr{m.Or(a.node, b.node), func(v []bool) bool { return a.eval(v) || b.eval(v) }}
			case 2:
				e = expr{m.Xor(a.node, b.node), func(v []bool) bool { return a.eval(v) != b.eval(v) }}
			default:
				e = expr{m.Not(a.node), func(v []bool) bool { return !a.eval(v) }}
			}
			cur = append(cur, e)
		}
		f := cur[len(cur)-1]
		for mask := 0; mask < (1 << nvars); mask++ {
			vals := make([]bool, nvars)
			for i := range vals {
				vals[i] = mask&(1<<uint(i)) != 0
			}
			if m.Eval(f.node, vals) != f.eval(vals) {
				t.Fatalf("trial %d: disagreement at %v", trial, vals)
			}
		}
	}
}

func BenchmarkBDDAndOrChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(24)
		f := m.Const(true)
		for v := 0; v+1 < 24; v += 2 {
			f = m.And(f, m.Or(m.Var(v), m.Var(v+1)))
		}
		if f == False {
			b.Fatal("unexpected false")
		}
	}
}
