package petri

import (
	"fmt"
	"sort"
	"strings"

	"punt/internal/bitvec"
)

// Marking is a multiset of tokens over the places of a net.
type Marking struct {
	tokens map[PlaceID]int
}

// NewMarking returns an empty marking.
func NewMarking() Marking {
	return Marking{tokens: map[PlaceID]int{}}
}

// MarkingOf returns a marking with one token in each of the given places.
func MarkingOf(places ...PlaceID) Marking {
	m := NewMarking()
	for _, p := range places {
		m.Add(p, 1)
	}
	return m
}

// Add adds k tokens to place p (k may be negative to remove tokens; the count
// never drops below zero and zero-count entries are removed).
func (m Marking) Add(p PlaceID, k int) {
	if m.tokens == nil {
		panic("petri: Add on zero Marking; use NewMarking")
	}
	v := m.tokens[p] + k
	if v < 0 {
		panic(fmt.Sprintf("petri: negative token count on place %d", p))
	}
	if v == 0 {
		delete(m.tokens, p)
	} else {
		m.tokens[p] = v
	}
}

// Tokens returns the number of tokens on place p.
func (m Marking) Tokens(p PlaceID) int {
	if m.tokens == nil {
		return 0
	}
	return m.tokens[p]
}

// Marked reports whether place p carries at least one token.
func (m Marking) Marked(p PlaceID) bool { return m.Tokens(p) > 0 }

// Places returns the marked places in increasing order.
func (m Marking) Places() []PlaceID {
	out := make([]PlaceID, 0, len(m.tokens))
	for p := range m.tokens {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the total number of tokens.
func (m Marking) Total() int {
	n := 0
	for _, k := range m.tokens {
		n += k
	}
	return n
}

// Clone returns an independent copy of the marking.
func (m Marking) Clone() Marking {
	c := NewMarking()
	for p, k := range m.tokens {
		c.tokens[p] = k
	}
	return c
}

// Equal reports whether two markings are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m.tokens) != len(o.tokens) {
		return false
	}
	for p, k := range m.tokens {
		if o.tokens[p] != k {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit hash of the marking.  Each place/count entry is
// avalanche-mixed independently and the results are combined commutatively,
// so the hash is independent of map iteration order and never allocates.
// Equal markings hash equally; callers that cannot tolerate collisions must
// verify candidates with Equal.
func (m Marking) Hash() uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for p, k := range m.tokens {
		h += bitvec.Mix64(uint64(p)<<32 ^ uint64(uint32(k)))
	}
	return bitvec.Mix64(h ^ uint64(len(m.tokens)))
}

// Key returns a canonical string usable as a map key.
func (m Marking) Key() string {
	places := m.Places()
	var sb strings.Builder
	for _, p := range places {
		fmt.Fprintf(&sb, "%d*%d,", p, m.tokens[p])
	}
	return sb.String()
}

// String renders the marking using the net-independent place indices.
func (m Marking) String() string {
	places := m.Places()
	parts := make([]string, 0, len(places))
	for _, p := range places {
		if m.tokens[p] == 1 {
			parts = append(parts, fmt.Sprintf("p%d", p))
		} else {
			parts = append(parts, fmt.Sprintf("p%d*%d", p, m.tokens[p]))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Describe renders the marking with place names from the net.
func (m Marking) Describe(n *Net) string {
	places := m.Places()
	parts := make([]string, 0, len(places))
	for _, p := range places {
		name := n.PlaceName(p)
		if m.tokens[p] == 1 {
			parts = append(parts, name)
		} else {
			parts = append(parts, fmt.Sprintf("%s*%d", name, m.tokens[p]))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Enabled reports whether transition t is enabled at marking m in net n.
func (n *Net) Enabled(m Marking, t TransitionID) bool {
	for _, p := range n.pre[t] {
		if m.Tokens(p) < 1 {
			return false
		}
	}
	return true
}

// EnabledTransitions returns all transitions enabled at m, in increasing order.
func (n *Net) EnabledTransitions(m Marking) []TransitionID {
	var out []TransitionID
	for t := 0; t < n.NumTransitions(); t++ {
		if n.Enabled(m, TransitionID(t)) {
			out = append(out, TransitionID(t))
		}
	}
	return out
}

// Fire returns the marking reached by firing transition t from m.  It panics
// if t is not enabled.
func (n *Net) Fire(m Marking, t TransitionID) Marking {
	if !n.Enabled(m, t) {
		panic(fmt.Sprintf("petri: transition %q not enabled at %s", n.TransitionName(t), m))
	}
	next := m.Clone()
	for _, p := range n.pre[t] {
		next.Add(p, -1)
	}
	for _, p := range n.post[t] {
		next.Add(p, 1)
	}
	return next
}
