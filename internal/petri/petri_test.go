package petri

import (
	"errors"
	"testing"
)

// simpleCycle builds the net  p0 -> t0 -> p1 -> t1 -> p0  with a token on p0.
func simpleCycle() (*Net, []PlaceID, []TransitionID) {
	n := NewNet("cycle")
	p0 := n.AddPlace("p0")
	p1 := n.AddPlace("p1")
	t0 := n.AddTransition("t0")
	t1 := n.AddTransition("t1")
	n.AddArcPT(p0, t0)
	n.AddArcTP(t0, p1)
	n.AddArcPT(p1, t1)
	n.AddArcTP(t1, p0)
	n.MarkInitially(p0)
	return n, []PlaceID{p0, p1}, []TransitionID{t0, t1}
}

func TestEnablingAndFiring(t *testing.T) {
	n, ps, ts := simpleCycle()
	m := n.Initial()
	if !n.Enabled(m, ts[0]) {
		t.Fatal("t0 must be enabled initially")
	}
	if n.Enabled(m, ts[1]) {
		t.Fatal("t1 must not be enabled initially")
	}
	m2 := n.Fire(m, ts[0])
	if m2.Tokens(ps[0]) != 0 || m2.Tokens(ps[1]) != 1 {
		t.Fatalf("unexpected marking after firing: %s", m2)
	}
	m3 := n.Fire(m2, ts[1])
	if !m3.Equal(n.Initial()) {
		t.Fatal("firing the cycle must return to the initial marking")
	}
}

func TestFireNotEnabledPanics(t *testing.T) {
	n, _, ts := simpleCycle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when firing a disabled transition")
		}
	}()
	n.Fire(n.Initial(), ts[1])
}

func TestMarkingKeyAndEqual(t *testing.T) {
	a := MarkingOf(1, 3, 3)
	b := MarkingOf(3, 1, 3)
	c := MarkingOf(1, 3)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("marking equality/keys must be order independent")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("different multisets must differ")
	}
	if a.Total() != 3 {
		t.Fatalf("Total = %d, want 3", a.Total())
	}
}

func TestReachabilityCycle(t *testing.T) {
	n, _, _ := simpleCycle()
	g, err := n.Reachability(ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", g.NumStates())
	}
	if len(g.Edges) != 2 {
		t.Fatalf("Edges = %d, want 2", len(g.Edges))
	}
	if len(g.Deadlocks) != 0 {
		t.Fatal("cycle has no deadlocks")
	}
}

// fork-join net with concurrency: t0 produces into p1 and p2; t1, t2 consume
// them independently; t3 joins.
func forkJoin() *Net {
	n := NewNet("forkjoin")
	p0 := n.AddPlace("p0")
	p1 := n.AddPlace("p1")
	p2 := n.AddPlace("p2")
	p3 := n.AddPlace("p3")
	p4 := n.AddPlace("p4")
	t0 := n.AddTransition("fork")
	t1 := n.AddTransition("left")
	t2 := n.AddTransition("right")
	t3 := n.AddTransition("join")
	n.AddArcPT(p0, t0)
	n.AddArcTP(t0, p1)
	n.AddArcTP(t0, p2)
	n.AddArcPT(p1, t1)
	n.AddArcTP(t1, p3)
	n.AddArcPT(p2, t2)
	n.AddArcTP(t2, p4)
	n.AddArcPT(p3, t3)
	n.AddArcPT(p4, t3)
	n.AddArcTP(t3, p0)
	n.MarkInitially(p0)
	return n
}

func TestReachabilityForkJoin(t *testing.T) {
	n := forkJoin()
	g, err := n.Reachability(ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// states: {p0},{p1,p2},{p3,p2},{p1,p4},{p3,p4}
	if g.NumStates() != 5 {
		t.Fatalf("NumStates = %d, want 5", g.NumStates())
	}
	if !n.IsMarkedGraph() {
		t.Fatal("fork-join net is a marked graph")
	}
	if !n.IsFreeChoice() {
		t.Fatal("marked graphs are free choice")
	}
	safe, err := n.IsSafe(0)
	if err != nil || !safe {
		t.Fatalf("IsSafe = %v,%v", safe, err)
	}
}

func TestUnboundedDetection(t *testing.T) {
	n := NewNet("unbounded")
	p0 := n.AddPlace("p0")
	p1 := n.AddPlace("p1")
	t0 := n.AddTransition("t0")
	n.AddArcPT(p0, t0)
	n.AddArcTP(t0, p0)
	n.AddArcTP(t0, p1) // accumulates tokens in p1 forever
	n.MarkInitially(p0)
	_, err := n.Reachability(ReachOptions{Bound: 1})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("expected ErrUnbounded, got %v", err)
	}
	safe, err := n.IsSafe(0)
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("net is not safe")
	}
	// With a higher bound it is still unbounded, but a small state limit stops
	// exploration first.
	_, err = n.Reachability(ReachOptions{Bound: 1000, MaxStates: 10})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("expected ErrStateLimit, got %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	n := NewNet("deadlock")
	p0 := n.AddPlace("p0")
	p1 := n.AddPlace("p1")
	t0 := n.AddTransition("t0")
	n.AddArcPT(p0, t0)
	n.AddArcTP(t0, p1)
	n.MarkInitially(p0)
	g, err := n.Reachability(ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Deadlocks) != 1 {
		t.Fatalf("Deadlocks = %v, want exactly one", g.Deadlocks)
	}
}

func TestChoiceAndFreeChoice(t *testing.T) {
	n := NewNet("choice")
	p0 := n.AddPlace("p0")
	p1 := n.AddPlace("p1")
	p2 := n.AddPlace("p2")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	n.AddArcPT(p0, a)
	n.AddArcPT(p0, b)
	n.AddArcTP(a, p1)
	n.AddArcTP(b, p2)
	n.MarkInitially(p0)
	if !n.IsChoicePlace(p0) {
		t.Fatal("p0 is a choice place")
	}
	if n.IsMarkedGraph() {
		t.Fatal("net with choice is not a marked graph")
	}
	if !n.IsFreeChoice() {
		t.Fatal("net is free choice")
	}
	// Make it non-free-choice by adding another input place to b only.
	p3 := n.AddPlace("p3")
	n.AddArcPT(p3, b)
	n.MarkInitially(p3)
	if n.IsFreeChoice() {
		t.Fatal("net is no longer free choice")
	}
}

func TestValidate(t *testing.T) {
	n := NewNet("bad")
	n.AddPlace("p0")
	n.AddTransition("t0") // no arcs
	if err := n.Validate(); err == nil {
		t.Fatal("expected validation error for transition without preset")
	}
	good, _, _ := simpleCycle()
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected validation error: %v", err)
	}
}

func TestDuplicatePlacePanics(t *testing.T) {
	n := NewNet("dup")
	n.AddPlace("p")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate place name")
		}
	}()
	n.AddPlace("p")
}

func TestLookupsAndNames(t *testing.T) {
	n, ps, ts := simpleCycle()
	if n.PlaceName(ps[0]) != "p0" || n.TransitionName(ts[1]) != "t1" {
		t.Fatal("name lookup failed")
	}
	id, ok := n.PlaceByName("p1")
	if !ok || id != ps[1] {
		t.Fatal("PlaceByName failed")
	}
	if _, ok := n.PlaceByName("nope"); ok {
		t.Fatal("PlaceByName should fail for unknown place")
	}
	if len(n.Pre(ts[0])) != 1 || n.Pre(ts[0])[0] != ps[0] {
		t.Fatal("Pre lookup failed")
	}
	if len(n.PlacePost(ps[0])) != 1 || n.PlacePost(ps[0])[0] != ts[0] {
		t.Fatal("PlacePost lookup failed")
	}
}

func TestMarkingHash(t *testing.T) {
	n, ps, _ := simpleCycle()
	_ = n
	a := MarkingOf(ps[0], ps[1])
	b := MarkingOf(ps[1], ps[0]) // same multiset, different insertion order
	if a.Hash() != b.Hash() {
		t.Fatal("equal markings must hash equally regardless of construction order")
	}
	if !a.Equal(b) {
		t.Fatal("markings should be equal")
	}
	c := MarkingOf(ps[0])
	if c.Hash() == a.Hash() {
		t.Fatal("sub-marking unexpectedly collides with its superset")
	}
	d := a.Clone()
	d.Add(ps[0], 1) // token count matters, not just the marked-place set
	if d.Hash() == a.Hash() {
		t.Fatal("multiplicity change unexpectedly preserves the hash")
	}
	if NewMarking().Hash() != NewMarking().Hash() {
		t.Fatal("empty markings must hash equally")
	}
}
