// Package petri implements marked place/transition Petri nets: the structural
// substrate underneath Signal Transition Graphs.  It provides net
// construction, the token game (enabling and firing), explicit reachability
// analysis with safeness/boundedness checking, and the structural queries
// (presets, postsets, choice places, marked-graph and free-choice tests) used
// by the higher layers.
package petri

import (
	"fmt"
	"sort"
)

// PlaceID identifies a place of a net by its index.
type PlaceID int

// TransitionID identifies a transition of a net by its index.
type TransitionID int

// Net is a marked Petri net N = <P, T, F, m0>.  Arc weights are always 1
// (ordinary nets), which is the class STGs are defined over.
type Net struct {
	name       string
	placeNames []string
	transNames []string

	pre  [][]PlaceID // pre[t]: input places of transition t (•t)
	post [][]PlaceID // post[t]: output places of transition t (t•)

	placeOut [][]TransitionID // placeOut[p]: transitions consuming from p (p•)
	placeIn  [][]TransitionID // placeIn[p]: transitions producing into p (•p)

	initial Marking
}

// NewNet returns an empty net with the given name.
func NewNet(name string) *Net {
	return &Net{name: name}
}

// Name returns the net's name.
func (n *Net) Name() string { return n.name }

// SetName renames the net.
func (n *Net) SetName(name string) { n.name = name }

// NumPlaces reports the number of places.
func (n *Net) NumPlaces() int { return len(n.placeNames) }

// NumTransitions reports the number of transitions.
func (n *Net) NumTransitions() int { return len(n.transNames) }

// AddPlace adds a place with the given name and returns its identifier.
// Place names must be unique; AddPlace panics on duplicates.
func (n *Net) AddPlace(name string) PlaceID {
	for _, existing := range n.placeNames {
		if existing == name {
			panic(fmt.Sprintf("petri: duplicate place name %q", name))
		}
	}
	id := PlaceID(len(n.placeNames))
	n.placeNames = append(n.placeNames, name)
	n.placeOut = append(n.placeOut, nil)
	n.placeIn = append(n.placeIn, nil)
	return id
}

// AddTransition adds a transition with the given name and returns its
// identifier.  Transition names need not be unique (an STG may contain several
// transitions with the same signal label).
func (n *Net) AddTransition(name string) TransitionID {
	id := TransitionID(len(n.transNames))
	n.transNames = append(n.transNames, name)
	n.pre = append(n.pre, nil)
	n.post = append(n.post, nil)
	return id
}

// AddArcPT adds an arc from place p to transition t.
func (n *Net) AddArcPT(p PlaceID, t TransitionID) {
	n.checkPlace(p)
	n.checkTransition(t)
	for _, q := range n.pre[t] {
		if q == p {
			return
		}
	}
	n.pre[t] = append(n.pre[t], p)
	n.placeOut[p] = append(n.placeOut[p], t)
}

// RemoveArcTP removes the arc from transition t to place p, if present.  It
// is the surgical counterpart of AddArcTP used by net rewrites (signal
// insertion redirects a transition's postset through a fresh transition).
func (n *Net) RemoveArcTP(t TransitionID, p PlaceID) {
	n.checkPlace(p)
	n.checkTransition(t)
	n.post[t] = removeID(n.post[t], p)
	n.placeIn[p] = removeID(n.placeIn[p], t)
}

// removeID deletes the first occurrence of id from ids, preserving order.
func removeID[T comparable](ids []T, id T) []T {
	for i, q := range ids {
		if q == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Clone returns a deep copy of the net: rewrites of the copy (adding places,
// transitions or arcs, removing arcs, changing the marking) never affect the
// original.
func (n *Net) Clone() *Net {
	c := &Net{
		name:       n.name,
		placeNames: append([]string(nil), n.placeNames...),
		transNames: append([]string(nil), n.transNames...),
		pre:        cloneIDLists(n.pre),
		post:       cloneIDLists(n.post),
		placeOut:   cloneIDLists(n.placeOut),
		placeIn:    cloneIDLists(n.placeIn),
		initial:    n.initial.Clone(),
	}
	return c
}

func cloneIDLists[T any](lists [][]T) [][]T {
	out := make([][]T, len(lists))
	for i, l := range lists {
		if l != nil {
			out[i] = append([]T(nil), l...)
		}
	}
	return out
}

// AddArcTP adds an arc from transition t to place p.
func (n *Net) AddArcTP(t TransitionID, p PlaceID) {
	n.checkPlace(p)
	n.checkTransition(t)
	for _, q := range n.post[t] {
		if q == p {
			return
		}
	}
	n.post[t] = append(n.post[t], p)
	n.placeIn[p] = append(n.placeIn[p], t)
}

func (n *Net) checkPlace(p PlaceID) {
	if int(p) < 0 || int(p) >= len(n.placeNames) {
		panic(fmt.Sprintf("petri: invalid place id %d", p))
	}
}

func (n *Net) checkTransition(t TransitionID) {
	if int(t) < 0 || int(t) >= len(n.transNames) {
		panic(fmt.Sprintf("petri: invalid transition id %d", t))
	}
}

// PlaceName returns the name of place p.
func (n *Net) PlaceName(p PlaceID) string {
	n.checkPlace(p)
	return n.placeNames[p]
}

// TransitionName returns the name of transition t.
func (n *Net) TransitionName(t TransitionID) string {
	n.checkTransition(t)
	return n.transNames[t]
}

// PlaceByName looks a place up by name.
func (n *Net) PlaceByName(name string) (PlaceID, bool) {
	for i, p := range n.placeNames {
		if p == name {
			return PlaceID(i), true
		}
	}
	return -1, false
}

// Pre returns the input places of transition t (•t).  The returned slice must
// not be modified.
func (n *Net) Pre(t TransitionID) []PlaceID {
	n.checkTransition(t)
	return n.pre[t]
}

// Post returns the output places of transition t (t•).  The returned slice
// must not be modified.
func (n *Net) Post(t TransitionID) []PlaceID {
	n.checkTransition(t)
	return n.post[t]
}

// PlacePre returns the transitions producing into place p (•p).
func (n *Net) PlacePre(p PlaceID) []TransitionID {
	n.checkPlace(p)
	return n.placeIn[p]
}

// PlacePost returns the transitions consuming from place p (p•).
func (n *Net) PlacePost(p PlaceID) []TransitionID {
	n.checkPlace(p)
	return n.placeOut[p]
}

// SetInitial sets the initial marking of the net.
func (n *Net) SetInitial(m Marking) {
	n.initial = m.Clone()
}

// Initial returns a copy of the initial marking.
func (n *Net) Initial() Marking {
	return n.initial.Clone()
}

// MarkInitially adds one token to place p in the initial marking.
func (n *Net) MarkInitially(p PlaceID) {
	n.checkPlace(p)
	if n.initial.tokens == nil {
		n.initial = NewMarking()
	}
	n.initial.Add(p, 1)
}

// IsChoicePlace reports whether place p has more than one output transition.
func (n *Net) IsChoicePlace(p PlaceID) bool {
	return len(n.PlacePost(p)) > 1
}

// IsMergePlace reports whether place p has more than one input transition.
func (n *Net) IsMergePlace(p PlaceID) bool {
	return len(n.PlacePre(p)) > 1
}

// IsMarkedGraph reports whether every place has at most one input and at most
// one output transition (no choice and no merge).
func (n *Net) IsMarkedGraph() bool {
	for p := range n.placeNames {
		if len(n.placeIn[p]) > 1 || len(n.placeOut[p]) > 1 {
			return false
		}
	}
	return true
}

// IsFreeChoice reports whether the net is (extended) free choice: any two
// transitions sharing an input place have identical presets.
func (n *Net) IsFreeChoice() bool {
	for p := range n.placeNames {
		outs := n.placeOut[p]
		if len(outs) <= 1 {
			continue
		}
		first := n.pre[outs[0]]
		for _, t := range outs[1:] {
			if !samePlaceSet(first, n.pre[t]) {
				return false
			}
		}
	}
	return true
}

func samePlaceSet(a, b []PlaceID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]PlaceID(nil), a...)
	bs := append([]PlaceID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Validate performs basic structural sanity checks: every transition has a
// non-empty preset and postset and the initial marking refers to valid places.
func (n *Net) Validate() error {
	for t := range n.transNames {
		if len(n.pre[t]) == 0 {
			return fmt.Errorf("petri: transition %q has an empty preset", n.transNames[t])
		}
		if len(n.post[t]) == 0 {
			return fmt.Errorf("petri: transition %q has an empty postset", n.transNames[t])
		}
	}
	for p := range n.initial.tokens {
		if int(p) < 0 || int(p) >= len(n.placeNames) {
			return fmt.Errorf("petri: initial marking refers to unknown place %d", p)
		}
	}
	return nil
}
