package petri

import (
	"errors"
	"fmt"
)

// ErrUnbounded is returned when reachability analysis exceeds the requested
// token bound on some place.
var ErrUnbounded = errors.New("petri: net exceeds the requested bound")

// ErrStateLimit is returned when reachability analysis exceeds the configured
// maximum number of states.
var ErrStateLimit = errors.New("petri: reachability state limit exceeded")

// ReachOptions configures explicit reachability exploration.
type ReachOptions struct {
	// Bound is the maximum number of tokens allowed on any place; 0 means
	// 1-safe (the default for STGs).  Exceeding the bound aborts with
	// ErrUnbounded.
	Bound int
	// MaxStates aborts exploration with ErrStateLimit when more than this
	// many distinct markings have been generated; 0 means no limit.
	MaxStates int
}

// ReachEdge is one arc of the reachability graph.
type ReachEdge struct {
	From, To   int
	Transition TransitionID
}

// ReachGraph is the explicit reachability graph of a net: a list of distinct
// markings and the firing edges between them.  Index 0 is the initial marking.
type ReachGraph struct {
	Markings []Marking
	Edges    []ReachEdge
	// Succ[i] lists the indices of edges leaving marking i.
	Succ [][]int
	// Deadlocks lists the indices of markings with no enabled transition.
	Deadlocks []int
}

// NumStates reports the number of distinct reachable markings.
func (g *ReachGraph) NumStates() int { return len(g.Markings) }

// Reachability explores the state space of the net starting from its initial
// marking.
func (n *Net) Reachability(opts ReachOptions) (*ReachGraph, error) {
	bound := opts.Bound
	if bound <= 0 {
		bound = 1
	}
	g := &ReachGraph{}
	index := map[string]int{}

	initial := n.Initial()
	if err := checkBound(initial, bound); err != nil {
		return nil, err
	}
	g.Markings = append(g.Markings, initial)
	g.Succ = append(g.Succ, nil)
	index[initial.Key()] = 0

	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		m := g.Markings[cur]
		enabled := n.EnabledTransitions(m)
		if len(enabled) == 0 {
			g.Deadlocks = append(g.Deadlocks, cur)
			continue
		}
		for _, t := range enabled {
			next := n.Fire(m, t)
			if err := checkBound(next, bound); err != nil {
				return nil, fmt.Errorf("%w (firing %q from %s)", err, n.TransitionName(t), m.Describe(n))
			}
			key := next.Key()
			idx, seen := index[key]
			if !seen {
				idx = len(g.Markings)
				if opts.MaxStates > 0 && idx >= opts.MaxStates {
					return nil, ErrStateLimit
				}
				index[key] = idx
				g.Markings = append(g.Markings, next)
				g.Succ = append(g.Succ, nil)
				queue = append(queue, idx)
			}
			edge := len(g.Edges)
			g.Edges = append(g.Edges, ReachEdge{From: cur, To: idx, Transition: t})
			g.Succ[cur] = append(g.Succ[cur], edge)
		}
	}
	return g, nil
}

func checkBound(m Marking, bound int) error {
	for _, p := range m.Places() {
		if m.Tokens(p) > bound {
			return ErrUnbounded
		}
	}
	return nil
}

// IsSafe reports whether the net is 1-bounded, by explicit exploration.  The
// optional maxStates argument bounds the exploration (0 = unlimited).
func (n *Net) IsSafe(maxStates int) (bool, error) {
	_, err := n.Reachability(ReachOptions{Bound: 1, MaxStates: maxStates})
	if errors.Is(err, ErrUnbounded) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
