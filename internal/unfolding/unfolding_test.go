package unfolding

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/bitvec"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

func build(t *testing.T, g *stg.STG) *Unfolding {
	t.Helper()
	u, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatalf("Build(context.Background(), %s): %v", g.Name(), err)
	}
	return u
}

func TestFig1Unfolding(t *testing.T) {
	g := benchgen.PaperFig1()
	u := build(t, g)
	a, _ := g.SignalIndex("a")
	b, _ := g.SignalIndex("b")
	c, _ := g.SignalIndex("c")

	// The segment of Fig. 2 contains two instances of +b and +c (one per
	// branch of the choice), one instance of +a, -a, -b, -c, plus the cut-off
	// instance(s) that close the cycle back to the initial state.
	if got := len(u.EventsOfEdge(b, stg.Plus)); got != 2 {
		t.Fatalf("+b instances = %d, want 2", got)
	}
	if got := len(u.EventsOfEdge(c, stg.Plus)); got != 2 {
		t.Fatalf("+c instances = %d, want 2", got)
	}
	if got := len(u.EventsOfEdge(a, stg.Plus)); got != 1 {
		t.Fatalf("+a instances = %d, want 1", got)
	}
	if u.NumCutoffs() == 0 {
		t.Fatal("the segment must contain at least one cut-off event closing the cycle")
	}
	if u.NumEvents() > 12 {
		t.Fatalf("segment unexpectedly large: %d events", u.NumEvents())
	}
	if s := u.String(); s == "" {
		t.Fatal("String must describe the segment")
	}
	if d := u.Dump(); d == "" {
		t.Fatal("Dump must render the segment")
	}
}

// statesOfSG converts the explicit state graph into the same key space used
// by Unfolding.ReachableStates.
func statesOfSG(sg *stategraph.Graph) map[string]string {
	out := map[string]string{}
	for _, s := range sg.States {
		out[s.Marking.Key()+"|"+s.Code.String()] = s.Code.String()
	}
	return out
}

// TestCompleteness verifies the fundamental property the synthesis method
// relies on: the set of states represented by configurations of the segment
// equals the set of states of the explicit state graph.
func TestCompleteness(t *testing.T) {
	builders := map[string]func() *stg.STG{
		"fig1":      benchgen.PaperFig1,
		"fig4":      benchgen.PaperFig4,
		"handshake": benchgen.Handshake,
	}
	for name, mk := range builders {
		g := mk()
		u := build(t, g)
		sg, err := stategraph.Build(context.Background(), mk(), stategraph.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := statesOfSG(sg)
		got := u.ReachableStates()
		if len(got) != len(want) {
			t.Fatalf("%s: unfolding represents %d states, SG has %d", name, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("%s: state %s missing from the unfolding", name, k)
			}
		}
	}
}

func TestFig4UnfoldingSmallerThanSG(t *testing.T) {
	g := benchgen.PaperFig4()
	u := build(t, g)
	sg, err := stategraph.Build(context.Background(), benchgen.PaperFig4(), stategraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEvents() >= sg.NumStates() {
		t.Fatalf("unfolding (%d events) should be smaller than the SG (%d states) for a highly concurrent STG",
			u.NumEvents(), sg.NumStates())
	}
}

func TestCausalityAndConcurrencyFig4(t *testing.T) {
	g := benchgen.PaperFig4()
	u := build(t, g)
	ai, _ := g.SignalIndex("a")
	bi, _ := g.SignalIndex("b")
	ci, _ := g.SignalIndex("c")
	plusA := u.EventsOfEdge(ai, stg.Plus)[0]
	plusB := u.EventsOfEdge(bi, stg.Plus)[0]
	plusC := u.EventsOfEdge(ci, stg.Plus)[0]
	minusA := u.EventsOfEdge(ai, stg.Minus)[0]

	if !u.Before(plusA, plusB) || !u.Before(plusA, minusA) {
		t.Fatal("+a precedes +b and -a")
	}
	if u.Before(plusB, plusC) || u.Before(plusC, plusB) {
		t.Fatal("+b and +c are not ordered")
	}
	if !u.Concurrent(plusB, plusC) {
		t.Fatal("+b and +c are concurrent")
	}
	if u.Concurrent(plusA, plusB) {
		t.Fatal("+a and +b are not concurrent (they are ordered)")
	}
	if u.InConflict(plusB, plusC) {
		t.Fatal("no conflict in a marked graph")
	}
	// next(+a) is -a; first(a) is +a.
	next := u.Next(plusA)
	if len(next) != 1 || next[0].label.Dir != stg.Minus {
		t.Fatalf("next(+a) = %v", next)
	}
	first := u.First(ai)
	if len(first) != 1 || first[0] != plusA {
		t.Fatalf("first(a) should be the +a instance")
	}
}

func TestConflictFig1(t *testing.T) {
	g := benchgen.PaperFig1()
	u := build(t, g)
	ai, _ := g.SignalIndex("a")
	ci, _ := g.SignalIndex("c")
	plusA := u.EventsOfEdge(ai, stg.Plus)[0]
	// The +c instance consuming p1 is in conflict with +a; the other +c
	// instance is causally after +a.
	var choiceC, chainC *Event
	for _, e := range u.EventsOfEdge(ci, stg.Plus) {
		if u.Before(plusA, e) {
			chainC = e
		} else {
			choiceC = e
		}
	}
	if choiceC == nil || chainC == nil {
		t.Fatal("expected one +c instance per branch")
	}
	if !u.InConflict(plusA, choiceC) {
		t.Fatal("+a and the choice-branch +c must be in conflict")
	}
	if u.Concurrent(plusA, choiceC) {
		t.Fatal("conflicting events are not concurrent")
	}
	if u.InConflict(plusA, chainC) {
		t.Fatal("+a and its causal successor +c are not in conflict")
	}
}

func TestMinCutsAndParentCode(t *testing.T) {
	g := benchgen.PaperFig1()
	u := build(t, g)
	bi, _ := g.SignalIndex("b")
	// Find the +b instance on the choice branch: its minimal excitation cut is
	// (p4) with code 001 and its minimal stable cut is (p7,p8) with code 011.
	for _, e := range u.EventsOfEdge(bi, stg.Plus) {
		if e.Code.String() == "011" {
			if got := u.DescribeCut(u.MinExcitationCut(e)); got != "(p4)" {
				t.Fatalf("min excitation cut = %s, want (p4)", got)
			}
			if got := u.DescribeCut(u.MinStableCut(e)); got != "(p7,p8)" {
				t.Fatalf("min stable cut = %s, want (p7,p8)", got)
			}
			if got := u.ParentCode(e).String(); got != "001" {
				t.Fatalf("parent code = %s, want 001", got)
			}
		}
	}
}

func TestSemiModularityChecks(t *testing.T) {
	// Fig. 1: the only conflict is between two input signals: no violations.
	u := build(t, benchgen.PaperFig1())
	if v := u.CheckSemiModularity(); len(v) != 0 {
		t.Fatalf("fig1 should be semi-modular, got %v", v)
	}
	// An output in direct conflict with an input is a violation.
	g := stg.New("nonpersistent")
	in := g.AddSignal("in", stg.Input)
	out := g.AddSignal("out", stg.Output)
	p0 := g.AddPlace("p0")
	p1 := g.AddPlace("p1")
	p2 := g.AddPlace("p2")
	tOut := g.AddTransition(out, stg.Plus)
	tIn := g.AddTransition(in, stg.Plus)
	tOutM := g.AddTransition(out, stg.Minus)
	tInM := g.AddTransition(in, stg.Minus)
	g.AddArcPT(p0, tOut)
	g.AddArcPT(p0, tIn)
	g.AddArcTP(tOut, p1)
	g.AddArcTP(tIn, p2)
	g.AddArcPT(p1, tOutM)
	g.AddArcPT(p2, tInM)
	g.AddArcTP(tOutM, p0)
	g.AddArcTP(tInM, p0)
	g.MarkInitially(p0)
	if err := g.InferInitialState(0); err != nil {
		t.Fatal(err)
	}
	u2 := build(t, g)
	if v := u2.CheckSemiModularity(); len(v) == 0 {
		t.Fatal("expected a semi-modularity violation")
	}
}

func TestStatistics(t *testing.T) {
	u := build(t, benchgen.Handshake())
	s := u.Statistics()
	if s.Events != u.NumEvents() || s.Conditions != u.NumConditions() || s.Cutoffs != u.NumCutoffs() {
		t.Fatal("statistics disagree with accessors")
	}
	if s.String() == "" {
		t.Fatal("Stats.String empty")
	}
	// A four-phase handshake unfolds into its four edges plus one cut-off
	// cycle closer, give or take the cut-off instance itself.
	if s.Events < 4 || s.Events > 6 {
		t.Fatalf("handshake unfolding has %d events", s.Events)
	}
}

func TestInconsistentSpecificationRejected(t *testing.T) {
	b := stg.NewBuilder("inconsistent")
	b.Outputs("x", "y")
	b.Arc("x+", "y+").Arc("y+", "x+/2").Arc("x+/2", "x-").Arc("x-", "y-").Arc("y-", "x+").MarkBetween("y-", "x+")
	b.InitialState("00")
	g := b.MustBuild()
	_, err := Build(context.Background(), g, Options{})
	var ie *InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("expected InconsistencyError, got %v", err)
	}
}

func TestUnsafeNetRejected(t *testing.T) {
	// A dummy transition that reproduces its input place and accumulates
	// tokens in a second place: p1 becomes unbounded.
	g := stg.New("unsafe")
	p0 := g.AddPlace("p0")
	p1 := g.AddPlace("p1")
	d := g.AddDummyTransition("d")
	g.AddArcPT(p0, d)
	g.AddArcTP(d, p0)
	g.AddArcTP(d, p1)
	g.MarkInitially(p0)
	g.SetInitialState(bitvec.New(0))
	_, err := Build(context.Background(), g, Options{})
	if !errors.Is(err, ErrNotSafe) {
		t.Fatalf("expected ErrNotSafe, got %v", err)
	}
}

func TestInitiallyUnsafeMarkingRejected(t *testing.T) {
	g := stg.New("unsafe-initial")
	p0 := g.AddPlace("p0")
	d := g.AddDummyTransition("d")
	g.AddArcPT(p0, d)
	g.AddArcTP(d, p0)
	g.MarkInitially(p0)
	g.MarkInitially(p0) // two tokens on p0
	g.SetInitialState(bitvec.New(0))
	_, err := Build(context.Background(), g, Options{})
	if !errors.Is(err, ErrNotSafe) {
		t.Fatalf("expected ErrNotSafe, got %v", err)
	}
}

func TestEventLimit(t *testing.T) {
	g := benchgen.PaperFig4()
	_, err := Build(context.Background(), g, Options{MaxEvents: 3})
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("expected ErrEventLimit, got %v", err)
	}
}
