package unfolding

import (
	"sort"

	"punt/internal/bitvec"
	"punt/internal/stg"
)

// Before reports whether event e causally precedes event f (e ∈ [f], e ≠ f).
// The root event precedes every other event.
func (u *Unfolding) Before(e, f *Event) bool {
	if e == f {
		return false
	}
	if e.IsRoot {
		return true
	}
	if f.IsRoot {
		return false
	}
	return f.Local.has(e.ID)
}

// InConflict reports whether two events are in structural conflict: their
// local configurations consume some condition through different events, so no
// single run can fire both.
func (u *Unfolding) InConflict(e, f *Event) bool {
	if e == f || e.IsRoot || f.IsRoot {
		return false
	}
	if !u.hasAnyConflict() {
		return false
	}
	if u.Before(e, f) || u.Before(f, e) {
		return false
	}
	key := pairKey(e.ID, f.ID)
	if u.conflictCache == nil {
		u.conflictCache = map[uint64]bool{}
	}
	if v, ok := u.conflictCache[key]; ok {
		return v
	}
	v := u.computeConflict(e, f)
	u.conflictCache[key] = v
	return v
}

// hasAnyConflict reports whether the segment contains any condition with more
// than one consumer; if not, no two events can ever be in conflict.
func (u *Unfolding) hasAnyConflict() bool {
	if u.anyConflict == 0 {
		u.anyConflict = 2
		for _, c := range u.Conditions {
			if len(c.Consumers) > 1 {
				u.anyConflict = 1
				break
			}
		}
	}
	return u.anyConflict == 1
}

func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

func (u *Unfolding) computeConflict(e, f *Event) bool {
	// Record, for every condition consumed by [e], which event consumed it;
	// a condition consumed by a different event in [f] is a conflict witness.
	consumedBy := map[int]int{}
	collect := func(ev *Event) {
		for _, c := range ev.Preset {
			consumedBy[c.ID] = ev.ID
		}
	}
	collect(e)
	e.Local.forEach(func(id int) { collect(u.Events[id]) })
	conflict := false
	check := func(ev *Event) {
		for _, c := range ev.Preset {
			if other, ok := consumedBy[c.ID]; ok && other != ev.ID {
				conflict = true
			}
		}
	}
	check(f)
	f.Local.forEach(func(id int) {
		if !conflict {
			check(u.Events[id])
		}
	})
	return conflict
}

// Concurrent reports whether two events are concurrent: not causally ordered
// and not in conflict.
func (u *Unfolding) Concurrent(e, f *Event) bool {
	if e == f || e.IsRoot || f.IsRoot {
		return false
	}
	return !u.Before(e, f) && !u.Before(f, e) && !u.InConflict(e, f)
}

// ConditionBeforeEvent reports whether condition c causally precedes event f:
// some consumer of c lies in [f] ∪ {f}.
func (u *Unfolding) ConditionBeforeEvent(c *Condition, f *Event) bool {
	for _, consumer := range c.Consumers {
		if consumer == f || (!f.IsRoot && f.Local.has(consumer.ID)) {
			return true
		}
	}
	return false
}

// EventBeforeCondition reports whether event f causally precedes condition c:
// f produced c or lies in the local configuration of c's producer.
func (u *Unfolding) EventBeforeCondition(f *Event, c *Condition) bool {
	if c.Producer == f {
		return true
	}
	if f.IsRoot {
		return true
	}
	return c.Producer.Local.has(f.ID)
}

// ConcurrentConditionEvent reports whether condition c and event f are
// concurrent: f can fire while c stays marked.
func (u *Unfolding) ConcurrentConditionEvent(c *Condition, f *Event) bool {
	if f.IsRoot {
		return false
	}
	if u.ConditionBeforeEvent(c, f) || u.EventBeforeCondition(f, c) {
		return false
	}
	if c.Producer != nil && !c.Producer.IsRoot && u.InConflict(c.Producer, f) {
		return false
	}
	return true
}

// ConcurrentConditions reports whether two conditions are concurrent, using
// the co-relation maintained during construction.
func (u *Unfolding) ConcurrentConditions(a, b *Condition) bool {
	if a == b {
		return false
	}
	return u.co[a.ID].has(b.ID)
}

// Next returns next(e): the instances of e's signal that are reachable from e
// with no other instance of that signal in between.  For events of different
// branches of a choice, one successor per branch is returned.
func (u *Unfolding) Next(e *Event) []*Event {
	if e.IsRoot || e.label.IsDummy {
		return nil
	}
	return u.nextOfSignal(e, e.label.Signal)
}

// NextOfSignal returns the instances of the given signal that follow event e
// with no other instance of that signal strictly in between.  It generalises
// Next to entry events of a different signal (in particular the root).
func (u *Unfolding) NextOfSignal(e *Event, signal int) []*Event {
	return u.nextOfSignal(e, signal)
}

func (u *Unfolding) nextOfSignal(e *Event, signal int) []*Event {
	var candidates []*Event
	for _, f := range u.EventsOfSignal(signal) {
		if f == e {
			continue
		}
		if e.IsRoot || u.Before(e, f) {
			candidates = append(candidates, f)
		}
	}
	var out []*Event
	for _, f := range candidates {
		minimal := true
		for _, g := range candidates {
			if g != f && u.Before(g, f) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// First returns first(a): the instances of the signal with no earlier
// instance of the same signal, i.e. the signal's first change on every branch.
func (u *Unfolding) First(signal int) []*Event {
	return u.nextOfSignal(u.Root, signal)
}

// ParentCode returns the binary code of the configuration [e] \ {e}: the code
// of the minimal excitation cut of e.
func (u *Unfolding) ParentCode(e *Event) bitvec.Vec {
	code := e.Code.Clone()
	if !e.IsRoot && !e.label.IsDummy {
		code.Set(e.label.Signal, e.label.Dir == stg.Minus)
	}
	return code
}

// MinExcitationCut returns the cut at which event e first becomes enabled:
// the cut reached by firing [e] \ {e}.
func (u *Unfolding) MinExcitationCut(e *Event) []*Condition {
	if e.IsRoot {
		return append([]*Condition(nil), e.Cut...)
	}
	inPost := map[int]bool{}
	for _, c := range e.Postset {
		inPost[c.ID] = true
	}
	var cut []*Condition
	for _, c := range e.Cut {
		if !inPost[c.ID] {
			cut = append(cut, c)
		}
	}
	cut = append(cut, e.Preset...)
	sort.Slice(cut, func(i, j int) bool { return cut[i].ID < cut[j].ID })
	return cut
}

// MinStableCut returns the cut reached by firing [e]: the minimal stable cut
// of the event.
func (u *Unfolding) MinStableCut(e *Event) []*Condition {
	return append([]*Condition(nil), e.Cut...)
}

// EnabledAt returns the non-root events of the segment whose whole preset is
// contained in the given cut.
func (u *Unfolding) EnabledAt(cut []*Condition) []*Event {
	inCut := map[int]bool{}
	for _, c := range cut {
		inCut[c.ID] = true
	}
	seen := map[int]bool{}
	var out []*Event
	for _, c := range cut {
		for _, e := range c.Consumers {
			if seen[e.ID] {
				continue
			}
			seen[e.ID] = true
			ok := true
			for _, b := range e.Preset {
				if !inCut[b.ID] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FireAt returns the cut reached from the given cut by firing event e, which
// must be enabled there.
func (u *Unfolding) FireAt(cut []*Condition, e *Event) []*Condition {
	inPre := map[int]bool{}
	for _, c := range e.Preset {
		inPre[c.ID] = true
	}
	next := make([]*Condition, 0, len(cut))
	for _, c := range cut {
		if !inPre[c.ID] {
			next = append(next, c)
		}
	}
	next = append(next, e.Postset...)
	sort.Slice(next, func(i, j int) bool { return next[i].ID < next[j].ID })
	return next
}

// CutHash returns a canonical 64-bit map key for a cut.  Each condition ID is
// avalanche-mixed and the results are combined commutatively, so the hash is
// independent of the cut's order and requires neither sorting nor allocation.
// Two equal cuts always hash equally; distinct cuts collide with probability
// ~2⁻⁶⁴ per pair.
func CutHash(cut []*Condition) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, c := range cut {
		h += bitvec.Mix64(uint64(c.ID) + 1)
	}
	return bitvec.Mix64(h ^ uint64(len(cut)))
}

// SameCut reports whether two cuts contain exactly the same conditions.
// Conditions are canonical objects within an unfolding and every cut this
// package produces is sorted by condition ID, so element-wise identity
// suffices.  It is the verification step for hash tables keyed by CutHash.
func SameCut(a, b []*Condition) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
