// Package unfolding constructs the STG-unfolding segment of a Signal
// Transition Graph: a finite, complete prefix of the occurrence-net unfolding
// of the underlying Petri net, in which every transition instance carries the
// binary code reached by firing its local configuration (Semenov & Yakovlev,
// the model underlying the paper).  The segment is the partial-order
// representation of the state graph from which the synthesis method of the
// paper derives its covers.
//
// The construction follows McMillan's algorithm: possible extensions are
// processed in order of increasing local-configuration size and an event is a
// cut-off when the state (final marking plus binary code) reached by its
// local configuration has already been produced by a smaller configuration.
// Consistency of the state assignment is checked while codes are assigned;
// boundedness is implied by the requirement that the underlying net is safe.
//
// # Builder internals
//
// Segment construction is the hot path of the whole system and the builder is
// organised around three ideas:
//
//   - Incremental state.  An event's cut, marking and binary code are derived
//     from its preset producers instead of replaying the local configuration:
//     cut([e]) = (∪ cut([p])) \ (∪ consumed([p]) ∪ •e) ∪ e•, and the parent
//     code starts from the dominant producer's code and applies only the
//     toggles of the events the other producers add.  The original O(|[e]|)
//     replay is retained behind Options.DebugCheck and cross-validated by the
//     tests.
//
//   - Word-level bit sets.  Local configurations, the co-relation co(c), the
//     per-place candidate sets and the cut/consumed sets are idSet bit sets;
//     intersection, union and difference run a word (64 IDs) at a time, and
//     chooseCoset prunes its candidates by intersecting co-sets with the
//     per-place live-condition sets instead of rescanning condition lists.
//
//   - Hashed state tables.  Cut-off detection keys (marking, code) pairs by a
//     64-bit hash; bucket entries are verified with full equality, so a
//     collision can never produce a wrong cut-off.  Possible-extension dedup
//     uses the same scheme with exact fingerprints.
package unfolding

import (
	"fmt"
	"strings"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// Condition is an instance of a place in the occurrence net.
type Condition struct {
	ID    int
	Place petri.PlaceID
	// Producer is the event whose firing created this condition (the root
	// event for conditions of the initial marking).
	Producer *Event
	// Consumers are the events that consume this condition; more than one
	// consumer means the consumers are in conflict.
	Consumers []*Event
}

// Event is an instance of a transition in the occurrence net.  The root event
// ⊥ represents the initial state of the STG and has no transition.
type Event struct {
	ID         int
	Transition petri.TransitionID
	IsRoot     bool
	Preset     []*Condition
	Postset    []*Condition

	// Local is the local configuration [e]: the set of event IDs that must
	// fire to fire this event, including the event itself, excluding the
	// root.
	Local *idSet
	// Size is |[e]|.
	Size int
	// Code is the binary code reached by firing the local configuration.
	Code bitvec.Vec
	// Marking is the final state Mark([e]): the marking of the original STG
	// reached by firing the local configuration.
	Marking petri.Marking
	// Cut is the set of conditions marked after firing the local
	// configuration (the minimal stable cut of the event).
	Cut []*Condition

	// IsCutoff marks cut-off events; Correspondent is the earlier event (or
	// the root) reaching the same state.
	IsCutoff      bool
	Correspondent *Event

	// label caches the STG label of the transition (zero Label for the root).
	label stg.Label
}

// Unfolding is the STG-unfolding segment.
type Unfolding struct {
	STG        *stg.STG
	Root       *Event
	Events     []*Event     // all events including the root (index = ID)
	Conditions []*Condition // all conditions (index = ID)

	// co[c.ID] is the set of condition IDs concurrent with condition c.
	co []*idSet

	// byTransition groups non-root events by their STG transition.
	byTransition map[petri.TransitionID][]*Event

	// conflictCache memoises pairwise event-conflict queries; anyConflict is
	// the lazily computed "does any condition have two consumers" fast path
	// (conflict-free segments, e.g. of marked graphs, answer every query in
	// constant time).
	conflictCache map[uint64]bool
	anyConflict   int8 // 0 = unknown, 1 = yes, 2 = no
}

// Label returns the STG label of the event's transition.  The root event has
// no label; callers must check IsRoot.
func (u *Unfolding) Label(e *Event) stg.Label { return e.label }

// EventName renders the event as "a+/2:e17" (signal edge plus event id) or
// "⊥" for the root.
func (u *Unfolding) EventName(e *Event) string {
	if e.IsRoot {
		return "⊥"
	}
	return fmt.Sprintf("%s:e%d", u.STG.TransitionString(e.Transition), e.ID)
}

// ConditionName renders the condition as "p3:c12".
func (u *Unfolding) ConditionName(c *Condition) string {
	return fmt.Sprintf("%s:c%d", u.STG.Net().PlaceName(c.Place), c.ID)
}

// NumEvents reports the number of events excluding the root.
func (u *Unfolding) NumEvents() int { return len(u.Events) - 1 }

// NumConditions reports the number of conditions.
func (u *Unfolding) NumConditions() int { return len(u.Conditions) }

// NumCutoffs reports the number of cut-off events.
func (u *Unfolding) NumCutoffs() int {
	n := 0
	for _, e := range u.Events {
		if e.IsCutoff {
			n++
		}
	}
	return n
}

// EventsOf returns the instances of the given STG transition.
func (u *Unfolding) EventsOf(t petri.TransitionID) []*Event { return u.byTransition[t] }

// EventsOfSignal returns all events labelled with the given signal, in either
// direction, ordered by event ID.
func (u *Unfolding) EventsOfSignal(signal int) []*Event {
	var out []*Event
	for _, e := range u.Events {
		if e.IsRoot {
			continue
		}
		if !e.label.IsDummy && e.label.Signal == signal {
			out = append(out, e)
		}
	}
	return out
}

// EventsOfEdge returns all events labelled with the given signal edge.
func (u *Unfolding) EventsOfEdge(signal int, dir stg.Direction) []*Event {
	var out []*Event
	for _, e := range u.EventsOfSignal(signal) {
		if e.label.Dir == dir {
			out = append(out, e)
		}
	}
	return out
}

// String summarises the unfolding.
func (u *Unfolding) String() string {
	return fmt.Sprintf("unfolding of %q: %d events (%d cut-offs), %d conditions",
		u.STG.Name(), u.NumEvents(), u.NumCutoffs(), u.NumConditions())
}

// Dump renders the full segment in a readable multi-line format (used by the
// unfdump tool and in debugging).
func (u *Unfolding) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", u.String())
	for _, e := range u.Events {
		if e.IsRoot {
			fmt.Fprintf(&sb, "  ⊥ -> {")
		} else {
			pres := make([]string, len(e.Preset))
			for i, c := range e.Preset {
				pres[i] = u.ConditionName(c)
			}
			flag := ""
			if e.IsCutoff {
				flag = " [cutoff]"
			}
			fmt.Fprintf(&sb, "  %s%s  code=%s  {%s} -> {", u.EventName(e), flag, e.Code, strings.Join(pres, ","))
		}
		posts := make([]string, len(e.Postset))
		for i, c := range e.Postset {
			posts[i] = u.ConditionName(c)
		}
		fmt.Fprintf(&sb, "%s}\n", strings.Join(posts, ","))
	}
	return sb.String()
}
