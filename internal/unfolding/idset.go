package unfolding

import "math/bits"

// idSet is a growable bit set over small non-negative integers (event or
// condition IDs).  All binary operations work a word (64 IDs) at a time; the
// builder's hot loops — co-relation maintenance, co-set candidate pruning and
// the incremental cut computation — are built on top of them.
type idSet struct {
	words []uint64
}

func newIDSet() *idSet { return &idSet{} }

func (s *idSet) ensure(i int) {
	w := i/64 + 1
	for len(s.words) < w {
		s.words = append(s.words, 0)
	}
}

func (s *idSet) add(i int) {
	s.ensure(i)
	s.words[i/64] |= 1 << uint(i%64)
}

func (s *idSet) has(i int) bool {
	if i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// copyFrom makes s an exact copy of o, reusing s's storage when possible.
func (s *idSet) copyFrom(o *idSet) {
	if o == nil {
		s.words = s.words[:0]
		return
	}
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// orWith adds every element of o to s.
func (s *idSet) orWith(o *idSet) {
	if o == nil {
		return
	}
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// andWith removes from s every element not in o.
func (s *idSet) andWith(o *idSet) {
	if o == nil {
		s.words = s.words[:0]
		return
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	s.words = s.words[:n]
}

// andNotWith removes from s every element of o.
func (s *idSet) andNotWith(o *idSet) {
	if o == nil {
		return
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// intersectInto sets s to a ∩ b without allocating (beyond growing s's
// storage once).  s must not alias a or b.
func (s *idSet) intersectInto(a, b *idSet) {
	if a == nil || b == nil {
		s.words = s.words[:0]
		return
	}
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(s.words) < n {
		s.words = make([]uint64, n)
	} else {
		s.words = s.words[:n]
	}
	for i := 0; i < n; i++ {
		s.words[i] = a.words[i] & b.words[i]
	}
}

func (s *idSet) clone() *idSet {
	c := &idSet{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

func (s *idSet) count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s *idSet) empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *idSet) forEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func (s *idSet) intersects(o *idSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// equal reports whether the two sets hold the same elements.
func (s *idSet) equal(o *idSet) bool {
	long, short := s.words, o.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}
