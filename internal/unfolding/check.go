package unfolding

import (
	"fmt"
	"sort"
	"strings"

	"punt/internal/stg"
)

// PersistencyViolation reports a potential semi-modularity violation detected
// structurally on the segment: an event of an output signal shares an input
// condition with an event of a different signal, so firing the latter can
// disable the excited output.
type PersistencyViolation struct {
	Output   string // the event of the output signal that can be disabled
	Disabler string // the conflicting event
	Place    string // the shared condition's place
}

// String renders the violation.
func (v PersistencyViolation) String() string {
	return fmt.Sprintf("output event %s can be disabled by %s (shared place %s)", v.Output, v.Disabler, v.Place)
}

// CheckSemiModularity performs the structural semi-modularity check the paper
// performs while the segment is built: every direct conflict (two events
// consuming the same condition) involving an event of an output or internal
// signal and an event of a different signal is reported as a potential
// hazard.  Conflicts between events of input signals only are the
// environment's free choice and are allowed; so are conflicts between
// instances of the same signal (a specification-level choice of which
// instance fires, invisible at the circuit level).
func (u *Unfolding) CheckSemiModularity() []PersistencyViolation {
	var out []PersistencyViolation
	g := u.STG
	for _, c := range u.Conditions {
		if len(c.Consumers) < 2 {
			continue
		}
		for i, e := range c.Consumers {
			le := u.Label(e)
			if le.IsDummy {
				continue
			}
			if g.Signal(le.Signal).Kind == stg.Input {
				continue
			}
			for j, f := range c.Consumers {
				if i == j {
					continue
				}
				lf := u.Label(f)
				if !lf.IsDummy && lf.Signal == le.Signal {
					continue
				}
				out = append(out, PersistencyViolation{
					Output:   u.EventName(e),
					Disabler: u.EventName(f),
					Place:    g.Net().PlaceName(c.Place),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Output != out[j].Output {
			return out[i].Output < out[j].Output
		}
		return out[i].Disabler < out[j].Disabler
	})
	return out
}

// Stats summarises the size of the segment.
type Stats struct {
	Events     int
	Conditions int
	Cutoffs    int
}

// Statistics returns size statistics of the segment.
func (u *Unfolding) Statistics() Stats {
	return Stats{
		Events:     u.NumEvents(),
		Conditions: u.NumConditions(),
		Cutoffs:    u.NumCutoffs(),
	}
}

// String renders the statistics.
func (s Stats) String() string {
	return fmt.Sprintf("events=%d conditions=%d cutoffs=%d", s.Events, s.Conditions, s.Cutoffs)
}

// ReachableStates enumerates every state (binary code keyed by marking and
// code) represented by configurations of the segment, by playing the token
// game over the segment's conditions starting from the root cut.  It is used
// by tests to validate that the segment is a complete prefix: the states it
// represents are exactly the states of the explicit state graph.  The walk is
// exponential in the worst case and intended for moderate sizes only.
func (u *Unfolding) ReachableStates() map[string]string {
	type node struct {
		cut  []*Condition
		code string
	}
	out := map[string]string{}
	start := node{cut: u.Root.Cut, code: u.Root.Code.String()}
	key := func(n node) uint64 {
		const prime = 1099511628211
		h := CutHash(n.cut)
		for i := 0; i < len(n.code); i++ {
			h = (h ^ uint64(n.code[i])) * prime
		}
		return h
	}
	// seen dedups (cut, code) nodes by 64-bit hash with full verification
	// inside each bucket: a collision must never drop a state from the
	// completeness check.
	seen := map[uint64][]node{key(start): {start}}
	visited := func(n node, k uint64) bool {
		for _, prev := range seen[k] {
			if prev.code == n.code && SameCut(prev.cut, n.cut) {
				return true
			}
		}
		return false
	}
	record := func(n node) {
		m := markingOfCut(n.cut)
		out[m.Key()+"|"+n.code] = n.code
	}
	record(start)
	queue := []node{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range u.EnabledAt(cur.cut) {
			nextCut := u.FireAt(cur.cut, e)
			code := cur.code
			if l := u.Label(e); !l.IsDummy {
				b := []byte(code)
				if l.Dir == stg.Plus {
					b[l.Signal] = '1'
				} else {
					b[l.Signal] = '0'
				}
				code = string(b)
			}
			n := node{cut: nextCut, code: code}
			k := key(n)
			if visited(n, k) {
				continue
			}
			seen[k] = append(seen[k], n)
			record(n)
			queue = append(queue, n)
		}
	}
	return out
}

// DescribeCut renders a cut with place names, mirroring the notation of the
// paper's figures, e.g. "(p2,p3)".
func (u *Unfolding) DescribeCut(cut []*Condition) string {
	names := make([]string, len(cut))
	for i, c := range cut {
		names[i] = u.STG.Net().PlaceName(c.Place)
	}
	sort.Strings(names)
	return "(" + strings.Join(names, ",") + ")"
}
