package unfolding

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"punt/internal/faultinject"
	"punt/internal/petri"
)

// pePool is the worker pool behind Options.Workers: a fixed set of lanes —
// lane 0 is the goroutine running Build, lanes 1..n-1 are persistent worker
// goroutines — that execute one round of index-addressed tasks at a time.
// Rounds are synchronous: runRound publishes a task body and count, every
// lane claims indices from a shared atomic counter, and the round ends only
// when every lane has drained.  Between rounds the pool is quiescent and the
// builder is touched exclusively by the Build goroutine, so round tasks may
// freely read any builder state that the other tasks of the same round do
// not write.
//
// Determinism: workers never push possible extensions themselves.  Each
// search task records its discoveries in a per-task slot, and the Build
// goroutine merges the slots in task order — exactly the order the
// sequential search would have visited them — through pushPE, so dedup
// order, seq tie-breaks, and therefore the whole segment are byte-identical
// to the sequential build.
type pePool struct {
	b     *builder
	inj   *faultinject.Injector
	lanes int

	// Per-lane chooseCoset scratch; lane 0 belongs to the Build goroutine.
	scratch []searchScratch

	// Round state, published by runRound before bumping seq.  chunk is the
	// contiguous block of task indices a lane claims per atomic increment:
	// ceil(n/lanes), so one claim hands a lane its whole share of the round
	// and the counter is touched once per lane instead of once per task —
	// the per-task claim overhead was measurable (~5-25%) on small specs.
	task  func(lane, i int)
	n     int
	chunk int
	next  atomic.Int64
	busy  atomic.Int64 // lanes that have not finished draining this round
	seq   atomic.Uint64

	// Parking: a worker with nothing to do spins briefly, then flags itself
	// parked and blocks on its wake channel; runRound and close wake parked
	// lanes with a non-blocking send (the channels are buffered, so a stale
	// token at worst causes one spurious loop iteration).
	parked []atomic.Bool
	wake   []chan struct{}
	quit   atomic.Bool
	wg     sync.WaitGroup

	// First panic recovered from a round task; re-raised on the Build
	// goroutine once the round is quiescent, so the dispatch layer's usual
	// recovery (KindPanic) applies and no worker is left wedged.
	panicMu  sync.Mutex
	panicVal any

	// Reusable per-round storage for searchExtensions.
	tasks []peSearchTask
	found [][]foundPE
	errs  []error

	// Reusable per-shard slots for the co-relation round: the last unsafe
	// place each shard observed (placeNone when the shard saw none).
	coUnsafe []petri.PlaceID

	// Result slots of the cut-set task of the co-relation round.
	cutSet, consumedSet *idSet
	cut                 []*Condition
	marking             petri.Marking
}

// placeNone marks an empty coUnsafe slot; real place IDs are non-negative.
const placeNone = petri.PlaceID(-1)

// parkSpin is how many Gosched iterations a lane spins before parking.  It
// is deliberately tiny: on a loaded or single-CPU machine spinning only
// steals time from the lanes doing real work.
const parkSpin = 32

// coShardMinWords is the minimum width of b.common (in 64-bit words) before
// the reverse co-relation update is worth sharding; below it the coordinator
// updates the rows inline.
const coShardMinWords = 16

func newPEPool(b *builder, workers int, inj *faultinject.Injector) *pePool {
	p := &pePool{
		b:       b,
		inj:     inj,
		lanes:   workers,
		scratch: make([]searchScratch, workers),
		parked:  make([]atomic.Bool, workers),
		wake:    make([]chan struct{}, workers),
	}
	for w := 1; w < workers; w++ {
		p.wake[w] = make(chan struct{}, 1)
		p.wg.Add(1)
		//puntlint:ignore gohygiene lane panics are recovered per round task and re-raised on the Build goroutine (panicVal); outside the task runner the lane only parks and polls
		go func(lane int) {
			defer p.wg.Done()
			p.worker(lane)
		}(w)
	}
	return p
}

// close shuts the worker lanes down and waits for them to exit, so tests
// guarded by faultinject.LeakCheck see no straggling goroutines.  It must be
// called between rounds (Build's defer satisfies this: runRound only returns
// quiescent).
func (p *pePool) close() {
	p.quit.Store(true)
	for w := 1; w < p.lanes; w++ {
		select {
		case p.wake[w] <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

// worker is the lane body: drain each round exactly once, park in between.
func (p *pePool) worker(lane int) {
	var last uint64
	for {
		seq := p.seq.Load()
		if seq == last {
			if !p.await(lane, last) {
				return
			}
			continue
		}
		last = seq
		p.drain(lane)
	}
}

// await blocks the lane until a round newer than last begins or the pool
// closes; it returns false on close.
func (p *pePool) await(lane int, last uint64) bool {
	for spin := 0; ; spin++ {
		if p.quit.Load() {
			return false
		}
		if p.seq.Load() != last {
			return true
		}
		if spin < parkSpin {
			runtime.Gosched()
			continue
		}
		p.parked[lane].Store(true)
		// Re-check after publishing the parked flag: a round (or close) that
		// started in between is guaranteed to either be visible here or to
		// see the flag and send a wake token.
		if p.seq.Load() == last && !p.quit.Load() {
			<-p.wake[lane]
		}
		p.parked[lane].Store(false)
	}
}

// drain claims and runs tasks of the current round until none remain: one
// contiguous block of p.chunk indices per claim, so a lane wakes into its
// whole share of the round instead of fighting the counter task by task.
// Task results are indexed slots merged in task order by the coordinator, so
// block claiming cannot perturb the output.  A panicking task is recovered
// and parked in panicVal; the lane still counts itself done so the round
// terminates, and runRound re-raises the panic on the Build goroutine.
func (p *pePool) drain(lane int) {
	defer p.busy.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
		}
	}()
	chunk := p.chunk
	for {
		lo := int(p.next.Add(int64(chunk))) - chunk
		if lo >= p.n {
			return
		}
		hi := lo + chunk
		if hi > p.n {
			hi = p.n
		}
		for i := lo; i < hi; i++ {
			p.task(lane, i)
		}
	}
}

// runRound runs task(lane, i) for every i in [0, n) across all lanes and
// returns once every lane has drained.  The coordinator (lane 0) claims
// tasks like any worker.  A panic recovered from any lane is re-raised here,
// after the pool is quiescent.
func (p *pePool) runRound(n int, task func(lane, i int)) {
	if n <= 0 {
		return
	}
	p.task, p.n = task, n
	p.chunk = (n + p.lanes - 1) / p.lanes
	p.next.Store(0)
	p.busy.Store(int64(p.lanes))
	p.seq.Add(1)
	for w := 1; w < p.lanes; w++ {
		if p.parked[w].Load() {
			select {
			case p.wake[w] <- struct{}{}:
			default:
			}
		}
	}
	p.drain(0)
	for p.busy.Load() != 0 {
		runtime.Gosched()
	}
	p.task = nil
	if v := p.panicVal; v != nil {
		p.panicVal = nil
		panic(v)
	}
}

// finishParallel is the pool-sharded twin of finishSequential: the reverse
// co-relation update is split by word ranges of b.common — every shard owns
// a disjoint range of condition IDs, so no co row is written by two lanes —
// while the cut/consumed-set derivation runs as one more task of the same
// round.  The forward rows are word-level copies and stay on the
// coordinator.  The merged result is bit-for-bit the sequential one: set
// bits are order-independent, and the unsafe-place report keeps the
// sequential last-wins choice by taking the highest shard's last hit.
func (b *builder) finishParallel(pe *possibleExtension, e *Event) error {
	p := b.pool
	common := &b.common
	for _, c := range e.Postset {
		co := b.u.co[c.ID]
		co.copyFrom(common)
		for _, sib := range e.Postset {
			if sib != c {
				co.add(sib.ID)
			}
		}
	}

	words := len(common.words)
	shards := p.lanes
	if shards > words {
		shards = words
	}
	if words < coShardMinWords || shards < 2 {
		return b.finishSmall(pe, e)
	}

	p.coUnsafe = p.coUnsafe[:0]
	for s := 0; s < shards; s++ {
		p.coUnsafe = append(p.coUnsafe, placeNone)
	}
	per := (words + shards - 1) / shards
	post := e.Postset
	// Task 0 derives the final state; tasks 1..shards update the co rows of
	// one word range each.
	p.runRound(shards+1, func(lane, i int) {
		if i == 0 {
			cutSet, consumedSet := b.buildCutSets(pe, e)
			cut := make([]*Condition, 0, cutSet.count())
			cutSet.forEach(func(id int) { cut = append(cut, b.u.Conditions[id]) })
			p.cutSet, p.consumedSet = cutSet, consumedSet
			p.cut, p.marking = cut, markingOfCut(cut)
			return
		}
		lo, hi := (i-1)*per, i*per
		if hi > words {
			hi = words
		}
		shard := &idSet{words: common.words[lo:hi]}
		shard.forEach(func(off int) {
			otherID := lo*64 + off
			other := b.u.Conditions[otherID]
			row := b.u.co[otherID]
			for _, c := range post {
				if other.Place == c.Place {
					p.coUnsafe[i-1] = c.Place
				}
				row.add(c.ID)
			}
		})
	})
	for s := shards - 1; s >= 0; s-- {
		if p.coUnsafe[s] != placeNone {
			return &UnsafeError{
				Place:      b.net.PlaceName(p.coUnsafe[s]),
				Transition: b.g.TransitionString(pe.transition),
				Tokens:     2,
			}
		}
	}
	cutSet, consumedSet, cut, marking := p.cutSet, p.consumedSet, p.cut, p.marking
	p.cutSet, p.consumedSet, p.cut, p.marking = nil, nil, nil, petri.Marking{}
	return b.commitState(e, cutSet, consumedSet, cut, marking)
}

// finishSmall completes a small event inline: the co-relation footprint is
// too narrow for sharding to pay for a round barrier.
func (b *builder) finishSmall(pe *possibleExtension, e *Event) error {
	common := &b.common
	var unsafePlace petri.PlaceID
	unsafe := false
	common.forEach(func(otherID int) {
		other := b.u.Conditions[otherID]
		row := b.u.co[otherID]
		for _, c := range e.Postset {
			if other.Place == c.Place {
				unsafe = true
				unsafePlace = c.Place
			}
			row.add(c.ID)
		}
	})
	if unsafe {
		return &UnsafeError{
			Place:      b.net.PlaceName(unsafePlace),
			Transition: b.g.TransitionString(pe.transition),
			Tokens:     2,
		}
	}
	cutSet, consumedSet := b.buildCutSets(pe, e)
	cut := make([]*Condition, 0, cutSet.count())
	cutSet.forEach(func(id int) { cut = append(cut, b.u.Conditions[id]) })
	return b.commitState(e, cutSet, consumedSet, cut, markingOfCut(cut))
}

// peSearchTask is one unit of the possible-extension fan-out: enumerate the
// extensions of transition t whose preset contains the fresh condition c.
type peSearchTask struct {
	c *Condition
	t petri.TransitionID
}

// foundPE is a discovered extension, preset already sorted by condition ID.
type foundPE struct {
	t      petri.TransitionID
	preset []*Condition
}

// searchExtensions is the pool-sharded twin of the findExtensionsWith loop
// in commitState: the (condition, transition) search tasks of the fresh
// event fan out across the lanes, and the discoveries are merged on the
// Build goroutine in task order through pushPE.  Injected faults
// (OpUnfoldShard) land mid-shard on worker goroutines: an error is recorded
// in the task's slot and returned — lowest task index first, so the reported
// fault is deterministic — after the round has fully drained; a panic is
// re-raised by runRound once the pool is quiescent.
func (p *pePool) searchExtensions(e *Event) error {
	b := p.b
	p.tasks = p.tasks[:0]
	for _, c := range e.Postset {
		for _, t := range b.net.PlacePost(c.Place) {
			p.tasks = append(p.tasks, peSearchTask{c: c, t: t})
		}
	}
	n := len(p.tasks)
	if n == 0 {
		return nil
	}
	if n == 1 && p.inj == nil {
		// A single task gains nothing from a round barrier.
		st := p.tasks[0]
		b.searchTransition(st.t, st.c, &p.scratch[0], b.emitPE)
		return nil
	}
	for len(p.found) < n {
		p.found = append(p.found, nil)
		p.errs = append(p.errs, nil)
	}
	p.runRound(n, func(lane, i int) {
		if p.inj != nil {
			if err := p.inj.Check(faultinject.OpUnfoldShard); err != nil {
				p.errs[i] = err
				return
			}
		}
		st := p.tasks[i]
		p.found[i] = p.found[i][:0]
		b.searchTransition(st.t, st.c, &p.scratch[lane], func(t petri.TransitionID, c *Condition, chosen []*Condition) {
			preset := make([]*Condition, 0, len(chosen)+1)
			preset = append(preset, c)
			preset = append(preset, chosen...)
			sort.Slice(preset, func(x, y int) bool { return preset[x].ID < preset[y].ID })
			p.found[i] = append(p.found[i], foundPE{t: t, preset: preset})
		})
	})
	var firstErr error
	for i := 0; i < n; i++ {
		if firstErr == nil && p.errs[i] != nil {
			firstErr = p.errs[i]
		}
		p.errs[i] = nil
		for _, f := range p.found[i] {
			b.pushPE(f.t, f.preset)
		}
		p.found[i] = p.found[i][:0]
	}
	return firstErr
}
