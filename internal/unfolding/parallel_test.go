package unfolding

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/faultinject"
	"punt/internal/stg"
)

// parallelSpecs is the determinism corpus: the full Table 1 suite plus the
// pipeline-class and synthetic specs whose co-relation is wide enough to
// actually exercise the sharded paths.
func parallelSpecs() map[string]*stg.STG {
	specs := map[string]*stg.STG{
		"pipeline-12":  benchgen.MullerPipelineWithSignals(12),
		"pipeline-22":  benchgen.MullerPipelineWithSignals(22),
		"counterflow":  benchgen.CounterflowPipeline(),
		"synthetic-24": benchgen.SyntheticController("synthetic-24", 24, 7),
		"choice-16":    benchgen.ChoiceController("choice-16", 16, 11),
	}
	for _, e := range benchgen.Table1Suite() {
		specs["table1-"+e.Name] = e.Build()
	}
	return specs
}

// TestParallelDeterminism asserts the tentpole guarantee: the segment built
// with a worker pool is byte-identical to the sequential one, for every
// worker count and every spec class.
func TestParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	for name, g := range parallelSpecs() {
		seq, err := Build(ctx, g, Options{})
		if err != nil {
			t.Fatalf("%s: sequential build: %v", name, err)
		}
		want := seq.Dump()
		for _, workers := range []int{2, 3, 8} {
			par, err := Build(ctx, g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s: workers=%d build: %v", name, workers, err)
			}
			if got := par.Dump(); got != want {
				t.Errorf("%s: workers=%d segment differs from sequential (%d vs %d events)",
					name, workers, par.NumEvents(), seq.NumEvents())
			}
		}
	}
}

// TestParallelDebugCheck runs the parallel build with the incremental-engine
// cross-validation on: the replay oracle must agree with the pool-sharded
// state derivation too.
func TestParallelDebugCheck(t *testing.T) {
	g := benchgen.MullerPipelineWithSignals(12)
	if _, err := Build(context.Background(), g, Options{Workers: 4, DebugCheck: true}); err != nil {
		t.Fatalf("parallel DebugCheck build: %v", err)
	}
}

// TestParallelProgressSerialized is the -race regression test for the
// Progress satellite: with a worker pool active, callbacks must stay on the
// Build goroutine (the race detector catches any worker-side call into the
// closure) and the reported event counts must be monotonic.
func TestParallelProgressSerialized(t *testing.T) {
	g := benchgen.MullerPipelineWithSignals(22)
	var counts []int
	_, err := Build(context.Background(), g, Options{
		Workers:  8,
		Progress: func(events int) { counts = append(counts, events) },
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(counts) == 0 {
		t.Fatal("Progress was never called")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("Progress counts not monotonic: %d after %d", counts[i], counts[i-1])
		}
	}
}

// TestParallelShardCancel injects a cancel fault mid-shard: the round must
// drain without deadlocking, Build must return the injected error, and the
// pool's lanes must exit (LeakCheck).
func TestParallelShardCancel(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	inj := faultinject.New(faultinject.Rule{Op: faultinject.OpUnfoldShard, AfterN: 5, Act: faultinject.ActCancel})
	ctx := faultinject.With(context.Background(), inj)
	_, err := Build(ctx, benchgen.MullerPipelineWithSignals(12), Options{Workers: 4})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected cancel error, got %v", err)
	}
}

// TestParallelShardPanic injects a panic mid-shard on a worker goroutine:
// it must resurface on the goroutine running Build after the round is
// quiescent, and no lane may be left wedged.
func TestParallelShardPanic(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	inj := faultinject.New(faultinject.Rule{Op: faultinject.OpUnfoldShard, AfterN: 7, Act: faultinject.ActPanic})
	ctx := faultinject.With(context.Background(), inj)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want the injected panic to resurface on the Build goroutine")
		}
		if _, ok := r.(faultinject.InjectedPanic); !ok {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	_, _ = Build(ctx, benchgen.MullerPipelineWithSignals(12), Options{Workers: 4})
}
