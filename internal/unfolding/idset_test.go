package unfolding

import (
	"math/rand"
	"testing"
)

func setOf(ids ...int) *idSet {
	s := newIDSet()
	for _, i := range ids {
		s.add(i)
	}
	return s
}

func elems(s *idSet) []int {
	var out []int
	s.forEach(func(i int) { out = append(out, i) })
	return out
}

func TestIDSetWordOps(t *testing.T) {
	a := setOf(1, 3, 64, 100, 200)
	b := setOf(3, 64, 99, 200, 300)

	got := a.clone()
	got.andWith(b)
	if want := setOf(3, 64, 200); !got.equal(want) {
		t.Fatalf("andWith = %v", elems(got))
	}

	got = a.clone()
	got.andNotWith(b)
	if want := setOf(1, 100); !got.equal(want) {
		t.Fatalf("andNotWith = %v", elems(got))
	}

	got = a.clone()
	got.orWith(b)
	if want := setOf(1, 3, 64, 99, 100, 200, 300); !got.equal(want) {
		t.Fatalf("orWith = %v", elems(got))
	}

	dst := newIDSet()
	dst.intersectInto(a, b)
	if want := setOf(3, 64, 200); !dst.equal(want) {
		t.Fatalf("intersectInto = %v", elems(dst))
	}
	// Reuse must not leak previous contents.
	dst.intersectInto(setOf(7), setOf(7, 8))
	if want := setOf(7); !dst.equal(want) {
		t.Fatalf("intersectInto reuse = %v", elems(dst))
	}

	if !a.intersects(b) {
		t.Fatal("a and b intersect")
	}
	if setOf(1, 2).intersects(setOf(3, 400)) {
		t.Fatal("disjoint sets must not intersect")
	}
	if a.count() != 5 {
		t.Fatalf("count = %d", a.count())
	}
	if !newIDSet().empty() || a.empty() {
		t.Fatal("empty misreports")
	}
}

func TestIDSetEqualAcrossLengths(t *testing.T) {
	a := setOf(1, 2)
	b := setOf(1, 2)
	b.ensure(500) // trailing zero words must not affect equality
	if !a.equal(b) || !b.equal(a) {
		t.Fatal("sets with different storage lengths but equal elements must be equal")
	}
	b.add(500)
	if a.equal(b) || b.equal(a) {
		t.Fatal("sets differing in a high element must not be equal")
	}
}

// TestIDSetRandomizedAgainstMap cross-checks the word-level operations against
// a reference map implementation.
func TestIDSetRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a, b := newIDSet(), newIDSet()
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < 50; i++ {
			x := rng.Intn(300)
			a.add(x)
			ma[x] = true
			y := rng.Intn(300)
			b.add(y)
			mb[y] = true
		}
		inter := newIDSet()
		inter.intersectInto(a, b)
		diff := a.clone()
		diff.andNotWith(b)
		union := a.clone()
		union.orWith(b)
		for x := 0; x < 300; x++ {
			if inter.has(x) != (ma[x] && mb[x]) {
				t.Fatalf("iter %d: intersect wrong at %d", iter, x)
			}
			if diff.has(x) != (ma[x] && !mb[x]) {
				t.Fatalf("iter %d: andNot wrong at %d", iter, x)
			}
			if union.has(x) != (ma[x] || mb[x]) {
				t.Fatalf("iter %d: or wrong at %d", iter, x)
			}
		}
	}
}
