package unfolding

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// ErrNotSafe is returned when the underlying net is not 1-safe, which the
// STG-unfolding segment (and speed-independent synthesis in general)
// requires.
var ErrNotSafe = errors.New("unfolding: the net is not safe")

// ErrEventLimit is returned when the segment exceeds the configured maximum
// number of events.
var ErrEventLimit = errors.New("unfolding: event limit exceeded")

// InconsistencyError reports a violation of consistent state assignment
// detected while assigning binary codes to events.
type InconsistencyError struct {
	Transition string
	Detail     string
}

func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("unfolding: inconsistent state assignment at %s: %s", e.Transition, e.Detail)
}

// Options configures the construction of the STG-unfolding segment.
type Options struct {
	// MaxEvents aborts construction with ErrEventLimit when the number of
	// non-root events exceeds this value (0 means 1,000,000).
	MaxEvents int
}

// possibleExtension is a transition instance that may be appended to the
// segment: a transition together with a co-set of conditions forming its
// preset.
type possibleExtension struct {
	transition  petri.TransitionID
	preset      []*Condition
	parentLocal *idSet // union of the local configurations of the preset producers
	size        int    // |[e]| of the event this extension would create
	seq         int    // insertion sequence, used as a deterministic tie-break
}

type peHeap []*possibleExtension

func (h peHeap) Len() int { return len(h) }
func (h peHeap) Less(i, j int) bool {
	if h[i].size != h[j].size {
		return h[i].size < h[j].size
	}
	return h[i].seq < h[j].seq
}
func (h peHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *peHeap) Push(x interface{}) { *h = append(*h, x.(*possibleExtension)) }
func (h *peHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type builder struct {
	g       *stg.STG
	net     *petri.Net
	u       *Unfolding
	opts    Options
	queue   peHeap
	seq     int
	seenPE  map[string]bool
	states  map[string]*Event // (marking,code) -> first event reaching it
	condsOf map[petri.PlaceID][]*Condition
}

// Build constructs the STG-unfolding segment of the STG.
func Build(g *stg.STG, opts Options) (*Unfolding, error) {
	if !g.HasInitialState() {
		if err := g.InferInitialState(0); err != nil {
			return nil, err
		}
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 1000000
	}
	b := &builder{
		g:       g,
		net:     g.Net(),
		opts:    opts,
		seenPE:  map[string]bool{},
		states:  map[string]*Event{},
		condsOf: map[petri.PlaceID][]*Condition{},
	}
	b.u = &Unfolding{STG: g, byTransition: map[petri.TransitionID][]*Event{}}

	if err := b.createRoot(); err != nil {
		return nil, err
	}
	for b.queue.Len() > 0 {
		pe := heap.Pop(&b.queue).(*possibleExtension)
		if err := b.instantiate(pe); err != nil {
			return nil, err
		}
		if b.u.NumEvents() > b.opts.MaxEvents {
			return nil, fmt.Errorf("%w (%d events)", ErrEventLimit, b.u.NumEvents())
		}
	}
	return b.u, nil
}

func (b *builder) createRoot() error {
	root := &Event{
		ID:      0,
		IsRoot:  true,
		Local:   newIDSet(),
		Size:    0,
		Code:    b.g.InitialState(),
		Marking: b.net.Initial(),
	}
	b.u.Root = root
	b.u.Events = append(b.u.Events, root)

	initial := b.net.Initial()
	for _, p := range initial.Places() {
		if initial.Tokens(p) > 1 {
			return fmt.Errorf("%w: place %q initially holds %d tokens", ErrNotSafe, b.net.PlaceName(p), initial.Tokens(p))
		}
		c := b.newCondition(p, root)
		root.Postset = append(root.Postset, c)
		root.Cut = append(root.Cut, c)
	}
	// Initial conditions are pairwise concurrent.
	for _, c1 := range root.Postset {
		for _, c2 := range root.Postset {
			if c1 != c2 {
				b.u.co[c1.ID].add(c2.ID)
			}
		}
	}
	b.states[stateKey(root.Marking, root.Code)] = root
	for _, c := range root.Postset {
		b.findExtensionsWith(c)
	}
	return nil
}

func (b *builder) newCondition(p petri.PlaceID, producer *Event) *Condition {
	c := &Condition{ID: len(b.u.Conditions), Place: p, Producer: producer}
	b.u.Conditions = append(b.u.Conditions, c)
	b.u.co = append(b.u.co, newIDSet())
	b.condsOf[p] = append(b.condsOf[p], c)
	return c
}

func stateKey(m petri.Marking, code bitvec.Vec) string {
	return m.Key() + "|" + code.Key()
}

// codeOfConfig computes the binary code reached by firing the given event set
// from the initial state.
func (b *builder) codeOfConfig(set *idSet) bitvec.Vec {
	code := b.g.InitialState()
	set.forEach(func(id int) {
		e := b.u.Events[id]
		if e.IsRoot || e.label.IsDummy {
			return
		}
		code.Set(e.label.Signal, e.label.Dir == stg.Plus)
	})
	return code
}

// cutOfConfig computes the set of conditions marked after firing the given
// event set (which must be causally closed).
func (b *builder) cutOfConfig(set *idSet) []*Condition {
	consumed := map[int]bool{}
	var produced []*Condition
	produced = append(produced, b.u.Root.Postset...)
	set.forEach(func(id int) {
		e := b.u.Events[id]
		for _, c := range e.Preset {
			consumed[c.ID] = true
		}
		produced = append(produced, e.Postset...)
	})
	var cut []*Condition
	for _, c := range produced {
		if !consumed[c.ID] {
			cut = append(cut, c)
		}
	}
	sort.Slice(cut, func(i, j int) bool { return cut[i].ID < cut[j].ID })
	return cut
}

func markingOfCut(cut []*Condition) petri.Marking {
	m := petri.NewMarking()
	for _, c := range cut {
		m.Add(c.Place, 1)
	}
	return m
}

// instantiate turns a possible extension into an event of the segment.
func (b *builder) instantiate(pe *possibleExtension) error {
	label := b.g.Label(pe.transition)
	parentCode := b.codeOfConfig(pe.parentLocal)
	if !label.IsDummy {
		val := parentCode.Get(label.Signal)
		if label.Dir == stg.Plus && val {
			return &InconsistencyError{
				Transition: b.g.TransitionString(pe.transition),
				Detail:     fmt.Sprintf("signal %q is already 1", b.g.Signal(label.Signal).Name),
			}
		}
		if label.Dir == stg.Minus && !val {
			return &InconsistencyError{
				Transition: b.g.TransitionString(pe.transition),
				Detail:     fmt.Sprintf("signal %q is already 0", b.g.Signal(label.Signal).Name),
			}
		}
	}

	e := &Event{
		ID:         len(b.u.Events),
		Transition: pe.transition,
		Preset:     pe.preset,
		label:      label,
	}
	e.Local = pe.parentLocal.clone()
	e.Local.add(e.ID)
	e.Size = pe.size
	code := parentCode.Clone()
	if !label.IsDummy {
		code.Set(label.Signal, label.Dir == stg.Plus)
	}
	e.Code = code
	b.u.Events = append(b.u.Events, e)
	b.u.byTransition[pe.transition] = append(b.u.byTransition[pe.transition], e)
	for _, c := range pe.preset {
		c.Consumers = append(c.Consumers, e)
	}

	// Create the postset conditions and update the concurrency relation:
	// co(c) for c in e• is the intersection of the co-sets of the preset
	// conditions, plus the siblings in e•.
	common := newIDSet()
	if len(pe.preset) > 0 {
		common = b.u.co[pe.preset[0].ID].clone()
		for _, c := range pe.preset[1:] {
			common = intersectIDSets(common, b.u.co[c.ID])
		}
	}
	for _, p := range b.net.Post(pe.transition) {
		c := b.newCondition(p, e)
		e.Postset = append(e.Postset, c)
	}
	for _, c := range e.Postset {
		co := b.u.co[c.ID]
		common.forEach(func(otherID int) {
			other := b.u.Conditions[otherID]
			if other.Place == c.Place {
				// Two concurrent conditions with the same place label mean the
				// net can mark the place twice: not safe.  Record via panic-free
				// error by storing; handled below.
				return
			}
			co.add(otherID)
			b.u.co[otherID].add(c.ID)
		})
		for _, sib := range e.Postset {
			if sib != c {
				co.add(sib.ID)
			}
		}
	}
	// Safeness check: a new condition concurrent with a condition of the same
	// place, or a postset place that is still marked in the parent cut and not
	// consumed, indicates a non-safe net.
	unsafe := false
	common.forEach(func(otherID int) {
		other := b.u.Conditions[otherID]
		for _, p := range b.net.Post(pe.transition) {
			if other.Place == p {
				unsafe = true
			}
		}
	})
	if unsafe {
		return fmt.Errorf("%w: firing %s marks an already marked place", ErrNotSafe, b.g.TransitionString(pe.transition))
	}

	// Final state of the local configuration.
	e.Cut = b.cutOfConfig(e.Local)
	e.Marking = markingOfCut(e.Cut)

	key := stateKey(e.Marking, e.Code)
	if prior, seen := b.states[key]; seen {
		e.IsCutoff = true
		e.Correspondent = prior
		return nil // no extensions beyond a cut-off event
	}
	b.states[key] = e
	for _, c := range e.Postset {
		b.findExtensionsWith(c)
	}
	return nil
}

func intersectIDSets(a, bSet *idSet) *idSet {
	out := newIDSet()
	a.forEach(func(i int) {
		if bSet.has(i) {
			out.add(i)
		}
	})
	return out
}

// findExtensionsWith enumerates all possible extensions whose preset contains
// the (freshly created) condition c.
func (b *builder) findExtensionsWith(c *Condition) {
	for _, t := range b.net.PlacePost(c.Place) {
		pre := b.net.Pre(t)
		// Candidate conditions for every other preset place, restricted to
		// conditions concurrent with c and not produced by cut-off events.
		others := make([]petri.PlaceID, 0, len(pre)-1)
		for _, p := range pre {
			if p != c.Place {
				others = append(others, p)
			}
		}
		chosen := make([]*Condition, 0, len(others))
		b.chooseCoset(t, c, others, chosen)
	}
}

// chooseCoset recursively selects one condition per remaining preset place so
// that the selection plus c is a co-set, then records the possible extension.
func (b *builder) chooseCoset(t petri.TransitionID, c *Condition, remaining []petri.PlaceID, chosen []*Condition) {
	if len(remaining) == 0 {
		b.addPE(t, c, chosen)
		return
	}
	place := remaining[0]
	for _, cand := range b.condsOf[place] {
		if cand.Producer != nil && cand.Producer.IsCutoff {
			continue
		}
		if !b.u.co[c.ID].has(cand.ID) {
			continue
		}
		ok := true
		for _, prev := range chosen {
			if !b.u.co[prev.ID].has(cand.ID) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		b.chooseCoset(t, c, remaining[1:], append(chosen, cand))
	}
}

func (b *builder) addPE(t petri.TransitionID, c *Condition, chosen []*Condition) {
	preset := make([]*Condition, 0, len(chosen)+1)
	preset = append(preset, c)
	preset = append(preset, chosen...)
	sort.Slice(preset, func(i, j int) bool { return preset[i].ID < preset[j].ID })
	key := fmt.Sprintf("%d:", t)
	for _, p := range preset {
		key += fmt.Sprintf("%d,", p.ID)
	}
	if b.seenPE[key] {
		return
	}
	b.seenPE[key] = true

	parent := newIDSet()
	for _, p := range preset {
		if p.Producer != nil {
			parent.orWith(p.Producer.Local)
		}
	}
	pe := &possibleExtension{
		transition:  t,
		preset:      preset,
		parentLocal: parent,
		size:        parent.count() + 1,
		seq:         b.seq,
	}
	b.seq++
	heap.Push(&b.queue, pe)
}
