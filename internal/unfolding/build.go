package unfolding

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	"punt/internal/bitvec"
	"punt/internal/faultinject"
	"punt/internal/petri"
	"punt/internal/stg"
)

// ErrNotSafe is returned when the underlying net is not 1-safe, which the
// STG-unfolding segment (and speed-independent synthesis in general)
// requires.
var ErrNotSafe = errors.New("unfolding: the net is not safe")

// ErrEventLimit is returned when the segment exceeds the configured maximum
// number of events.
var ErrEventLimit = errors.New("unfolding: event limit exceeded")

// UnsafeError reports where 1-safeness is violated: the place that receives a
// second token and, unless the initial marking itself is unsafe, the
// transition whose firing overloads it.  It wraps ErrNotSafe, so
// errors.Is(err, ErrNotSafe) keeps working.
type UnsafeError struct {
	Place      string
	Transition string // empty when the initial marking is already unsafe
	Tokens     int    // token count on Place when the violation was detected
}

func (e *UnsafeError) Error() string {
	if e.Transition == "" {
		return fmt.Sprintf("%v: place %q initially holds %d tokens", ErrNotSafe, e.Place, e.Tokens)
	}
	return fmt.Sprintf("%v: firing %s marks the already marked place %q", ErrNotSafe, e.Transition, e.Place)
}

func (e *UnsafeError) Unwrap() error { return ErrNotSafe }

// EventLimitError reports that the segment construction was aborted after
// exceeding its event budget.  It wraps ErrEventLimit.
type EventLimitError struct {
	Events int
	Limit  int
}

func (e *EventLimitError) Error() string {
	return fmt.Sprintf("%v (%d events, limit %d)", ErrEventLimit, e.Events, e.Limit)
}

func (e *EventLimitError) Unwrap() error { return ErrEventLimit }

// InconsistencyError reports a violation of consistent state assignment
// detected while assigning binary codes to events.
type InconsistencyError struct {
	Transition string
	Detail     string
}

func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("unfolding: inconsistent state assignment at %s: %s", e.Transition, e.Detail)
}

// Options configures the construction of the STG-unfolding segment.
type Options struct {
	// MaxEvents aborts construction with ErrEventLimit when the number of
	// non-root events exceeds this value (0 means 1,000,000).
	MaxEvents int
	// Workers bounds the parallelism of the per-event work: the co-relation
	// update, the final-state derivation and the possible-extension searches
	// are sharded across Workers goroutines (the coordinator included) and
	// merged deterministically, so the segment is byte-identical to the
	// sequential build.  Values <= 1 select the sequential path.
	Workers int
	// DebugCheck cross-validates the incremental cut/code/marking engine
	// against a full replay of every local configuration (the original
	// construction).  It is quadratic and meant for tests only.
	DebugCheck bool
	// Progress, when non-nil, is called periodically with the number of
	// events instantiated so far.  It must be cheap; it is only ever called
	// from the goroutine running Build (even with Workers > 1), so successive
	// event counts are monotonic.
	Progress func(events int)
}

// cancelCheckInterval is how many possible-extension pops go by between
// context cancellation checks (and Progress callbacks).  Checking on every pop
// would put a synchronised load on the hottest loop of the system for no
// benefit: cancellation only needs to be prompt on the human timescale.
const cancelCheckInterval = 256

// possibleExtension is a transition instance that may be appended to the
// segment: a transition together with a co-set of conditions forming its
// preset.
type possibleExtension struct {
	transition  petri.TransitionID
	preset      []*Condition
	parentLocal *idSet // union of the local configurations of the preset producers
	size        int    // |[e]| of the event this extension would create
	seq         int    // insertion sequence, used as a deterministic tie-break
}

type peHeap []*possibleExtension

func (h peHeap) Len() int { return len(h) }
func (h peHeap) Less(i, j int) bool {
	if h[i].size != h[j].size {
		return h[i].size < h[j].size
	}
	return h[i].seq < h[j].seq
}
func (h peHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *peHeap) Push(x any)   { *h = append(*h, x.(*possibleExtension)) }
func (h *peHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// peFingerprint identifies a possible extension exactly: the transition plus
// the sorted preset condition IDs.  Entries live in hash buckets so that the
// dedup test never suffers a false positive on a hash collision.
type peFingerprint struct {
	transition petri.TransitionID
	preset     []int32
}

func (f peFingerprint) matches(t petri.TransitionID, preset []*Condition) bool {
	if f.transition != t || len(f.preset) != len(preset) {
		return false
	}
	for i, c := range preset {
		if f.preset[i] != int32(c.ID) {
			return false
		}
	}
	return true
}

type builder struct {
	g     *stg.STG
	net   *petri.Net
	u     *Unfolding
	opts  Options
	queue peHeap
	seq   int

	// seenPE deduplicates possible extensions by 64-bit hash with exact
	// fingerprint verification inside each bucket.
	seenPE map[uint64][]peFingerprint
	// states maps hash(final marking, binary code) to the events reaching
	// that state; bucket entries are verified with full marking/code
	// equality, so a hash collision can never produce a wrong cut-off.
	states map[uint64][]*Event
	// placeConds[p] is the bit set of live condition IDs with place label p:
	// conditions produced by non-cut-off events (or the root).  chooseCoset
	// prunes its candidates by intersecting these sets with co-sets instead
	// of rescanning per-place condition lists.
	placeConds map[petri.PlaceID]*idSet

	// cutSets[e.ID] / consumedSets[e.ID] hold, in bit-set form, the cut of
	// [e] and the conditions consumed by [e].  They drive the incremental
	// state engine and are discarded with the builder after construction.
	cutSets      []*idSet
	consumedSets []*idSet

	// Scratch storage reused across instantiate/chooseCoset calls.
	common idSet         // intersection of the preset co-sets
	diff   idSet         // parentLocal \ dominant.Local in parentCodeOf
	search searchScratch // per-recursion-depth scratch for chooseCoset

	// pool is the worker pool driving the parallel per-event fan-out; nil
	// when Options.Workers <= 1 (the sequential path).
	pool *pePool
}

// Build constructs the STG-unfolding segment of the STG.  The construction
// checks ctx periodically and aborts with the context's error when it is
// cancelled.
func Build(ctx context.Context, g *stg.STG, opts Options) (*Unfolding, error) {
	if !g.HasInitialState() {
		if err := g.InferInitialState(0); err != nil {
			return nil, err
		}
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 1000000
	}
	b := &builder{
		g:          g,
		net:        g.Net(),
		opts:       opts,
		seenPE:     map[uint64][]peFingerprint{},
		states:     map[uint64][]*Event{},
		placeConds: map[petri.PlaceID]*idSet{},
	}
	b.u = &Unfolding{STG: g, byTransition: map[petri.TransitionID][]*Event{}}
	if opts.Workers > 1 {
		b.pool = newPEPool(b, opts.Workers, faultinject.From(ctx))
		defer b.pool.close()
	}

	if err := b.createRoot(); err != nil {
		return nil, err
	}
	pops := 0
	for b.queue.Len() > 0 {
		if pops%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultinject.Check(ctx, faultinject.OpUnfoldPop); err != nil {
				return nil, err
			}
			if b.opts.Progress != nil {
				b.opts.Progress(b.u.NumEvents())
			}
		}
		pops++
		pe := heap.Pop(&b.queue).(*possibleExtension)
		if err := b.instantiate(pe); err != nil {
			return nil, err
		}
		if b.u.NumEvents() > b.opts.MaxEvents {
			return nil, &EventLimitError{Events: b.u.NumEvents(), Limit: b.opts.MaxEvents}
		}
	}
	return b.u, nil
}

func (b *builder) createRoot() error {
	root := &Event{
		ID:      0,
		IsRoot:  true,
		Local:   newIDSet(),
		Size:    0,
		Code:    b.g.InitialState(),
		Marking: b.net.Initial(),
	}
	b.u.Root = root
	b.u.Events = append(b.u.Events, root)

	initial := b.net.Initial()
	for _, p := range initial.Places() {
		if initial.Tokens(p) > 1 {
			return &UnsafeError{Place: b.net.PlaceName(p), Tokens: initial.Tokens(p)}
		}
		c := b.newCondition(p, root)
		root.Postset = append(root.Postset, c)
		root.Cut = append(root.Cut, c)
	}
	// Initial conditions are pairwise concurrent.
	for _, c1 := range root.Postset {
		for _, c2 := range root.Postset {
			if c1 != c2 {
				b.u.co[c1.ID].add(c2.ID)
			}
		}
	}
	rootCut := newIDSet()
	for _, c := range root.Postset {
		rootCut.add(c.ID)
	}
	b.cutSets = append(b.cutSets, rootCut)
	b.consumedSets = append(b.consumedSets, newIDSet())

	b.putState(stateHash(root.Marking, root.Code), root)
	for _, c := range root.Postset {
		b.markLive(c)
	}
	for _, c := range root.Postset {
		b.findExtensionsWith(c)
	}
	return nil
}

func (b *builder) newCondition(p petri.PlaceID, producer *Event) *Condition {
	c := &Condition{ID: len(b.u.Conditions), Place: p, Producer: producer}
	b.u.Conditions = append(b.u.Conditions, c)
	b.u.co = append(b.u.co, newIDSet())
	return c
}

// markLive records the condition as a co-set candidate for future possible
// extensions.  Conditions produced by cut-off events are never marked live.
func (b *builder) markLive(c *Condition) {
	s := b.placeConds[c.Place]
	if s == nil {
		s = newIDSet()
		b.placeConds[c.Place] = s
	}
	s.add(c.ID)
}

// stateHash keys the cut-off detection table by final marking and binary code.
func stateHash(m petri.Marking, code bitvec.Vec) uint64 {
	const prime = 1099511628211
	h := m.Hash()
	h = (h ^ code.Hash()) * prime
	return h
}

// putState records the event as the canonical representative of its final
// state under the precomputed state hash.
func (b *builder) putState(h uint64, e *Event) {
	b.states[h] = append(b.states[h], e)
}

// lookupState returns the earlier event reaching the same final state, if
// any.  Bucket entries are verified with full equality: hashing is a speed
// optimisation, never a correctness shortcut.
func (b *builder) lookupState(h uint64, m petri.Marking, code bitvec.Vec) *Event {
	for _, prior := range b.states[h] {
		if prior.Code.Equal(code) && prior.Marking.Equal(m) {
			return prior
		}
	}
	return nil
}

// codeOfConfig computes the binary code reached by firing the given event set
// from the initial state.  It is the original full-replay implementation,
// retained as the cross-validation oracle for the incremental engine
// (Options.DebugCheck).
func (b *builder) codeOfConfig(set *idSet) bitvec.Vec {
	code := b.g.InitialState()
	set.forEach(func(id int) {
		e := b.u.Events[id]
		if e.IsRoot || e.label.IsDummy {
			return
		}
		code.Set(e.label.Signal, e.label.Dir == stg.Plus)
	})
	return code
}

// cutOfConfig computes the set of conditions marked after firing the given
// event set (which must be causally closed).  Like codeOfConfig it replays
// the whole configuration and exists only as the DebugCheck oracle for the
// incremental cut maintained in builder.cutSets.
func (b *builder) cutOfConfig(set *idSet) []*Condition {
	consumed := map[int]bool{}
	var produced []*Condition
	produced = append(produced, b.u.Root.Postset...)
	set.forEach(func(id int) {
		e := b.u.Events[id]
		for _, c := range e.Preset {
			consumed[c.ID] = true
		}
		produced = append(produced, e.Postset...)
	})
	var cut []*Condition
	for _, c := range produced {
		if !consumed[c.ID] {
			cut = append(cut, c)
		}
	}
	sort.Slice(cut, func(i, j int) bool { return cut[i].ID < cut[j].ID })
	return cut
}

func markingOfCut(cut []*Condition) petri.Marking {
	m := petri.NewMarking()
	for _, c := range cut {
		m.Add(c.Place, 1)
	}
	return m
}

// parentCodeOf computes the binary code of the parent configuration (the
// union of the preset producers' local configurations) incrementally: it
// starts from the code of the dominant producer — the one with the largest
// local configuration — and applies only the signal toggles of the events the
// other producers add.  When one producer dominates (the common case: chains
// and join-free presets) this is O(1) instead of O(|[e]|).
func (b *builder) parentCodeOf(pe *possibleExtension) bitvec.Vec {
	var dom *Event
	for _, c := range pe.preset {
		p := c.Producer
		if dom == nil || p.Size > dom.Size {
			dom = p
		}
	}
	code := dom.Code.Clone()
	if dom.Size == pe.size-1 {
		return code // the dominant producer's local configuration is the parent
	}
	b.diff.copyFrom(pe.parentLocal)
	b.diff.andNotWith(dom.Local)
	b.diff.forEach(func(id int) {
		ev := b.u.Events[id]
		if ev.label.IsDummy {
			return
		}
		code.Set(ev.label.Signal, ev.label.Dir == stg.Plus)
	})
	return code
}

// buildCutSets derives the cut and consumed sets of the new event from its
// preset producers:
//
//	consumed([e]) = ∪ consumed([p]) ∪ •e
//	cut([e])      = (∪ cut([p])) \ consumed([e]) ∪ e•
//
// which follows from cut(C) = produced(C) \ consumed(C) and the fact that
// produced and consumed distribute over configuration union.
func (b *builder) buildCutSets(pe *possibleExtension, e *Event) (cut, consumed *idSet) {
	consumed = newIDSet()
	cut = newIDSet()
	for _, c := range pe.preset {
		p := c.Producer
		cut.orWith(b.cutSets[p.ID])
		consumed.orWith(b.consumedSets[p.ID])
	}
	for _, c := range pe.preset {
		consumed.add(c.ID)
	}
	cut.andNotWith(consumed)
	for _, c := range e.Postset {
		cut.add(c.ID)
	}
	return cut, consumed
}

// instantiate turns a possible extension into an event of the segment: the
// shared head (consistency checks, event and postset creation, the co-set
// intersection) followed by the sequential or the pool-sharded tail.  Both
// tails produce byte-identical segments: the parallel one merges its results
// in the exact order the sequential code would have produced them.
func (b *builder) instantiate(pe *possibleExtension) error {
	e, err := b.newEventFor(pe)
	if err != nil {
		return err
	}
	if b.pool != nil {
		return b.finishParallel(pe, e)
	}
	return b.finishSequential(pe, e)
}

// newEventFor validates the extension against the consistent-state-assignment
// criterion, appends the event and its postset conditions to the segment, and
// leaves the intersection of the preset co-sets in b.common.
func (b *builder) newEventFor(pe *possibleExtension) (*Event, error) {
	label := b.g.Label(pe.transition)
	parentCode := b.parentCodeOf(pe)
	if b.opts.DebugCheck {
		if replay := b.codeOfConfig(pe.parentLocal); !replay.Equal(parentCode) {
			return nil, fmt.Errorf("unfolding: internal error: incremental parent code %s != replay %s at %s",
				parentCode, replay, b.g.TransitionString(pe.transition))
		}
	}
	if !label.IsDummy {
		val := parentCode.Get(label.Signal)
		if label.Dir == stg.Plus && val {
			return nil, &InconsistencyError{
				Transition: b.g.TransitionString(pe.transition),
				Detail:     fmt.Sprintf("signal %q is already 1", b.g.Signal(label.Signal).Name),
			}
		}
		if label.Dir == stg.Minus && !val {
			return nil, &InconsistencyError{
				Transition: b.g.TransitionString(pe.transition),
				Detail:     fmt.Sprintf("signal %q is already 0", b.g.Signal(label.Signal).Name),
			}
		}
	}

	e := &Event{
		ID:         len(b.u.Events),
		Transition: pe.transition,
		Preset:     pe.preset,
		label:      label,
	}
	// The possible extension is instantiated exactly once, so its parent
	// configuration can be adopted as the event's local configuration.
	e.Local = pe.parentLocal
	e.Local.add(e.ID)
	e.Size = pe.size
	code := parentCode
	if !label.IsDummy {
		code.Set(label.Signal, label.Dir == stg.Plus)
	}
	e.Code = code
	b.u.Events = append(b.u.Events, e)
	b.u.byTransition[pe.transition] = append(b.u.byTransition[pe.transition], e)
	for _, c := range pe.preset {
		c.Consumers = append(c.Consumers, e)
	}

	// Create the postset conditions and leave the intersection of the preset
	// co-sets in b.common for the tails.
	common := &b.common
	common.copyFrom(b.u.co[pe.preset[0].ID])
	for _, c := range pe.preset[1:] {
		common.andWith(b.u.co[c.ID])
	}
	for _, p := range b.net.Post(pe.transition) {
		c := b.newCondition(p, e)
		e.Postset = append(e.Postset, c)
	}
	return e, nil
}

// finishSequential completes instantiation on the calling goroutine.
func (b *builder) finishSequential(pe *possibleExtension, e *Event) error {
	// Update the concurrency relation: co(c) for c in e• is the intersection
	// of the co-sets of the preset conditions, plus the siblings in e•, so
	// the forward rows are a word-level copy of b.common.  A condition of the
	// parent cut that stays concurrent with a same-place postset condition
	// would mean the place can hold two tokens at once: the net is not safe.
	common := &b.common
	for _, c := range e.Postset {
		co := b.u.co[c.ID]
		co.copyFrom(common)
		for _, sib := range e.Postset {
			if sib != c {
				co.add(sib.ID)
			}
		}
	}
	var unsafePlace petri.PlaceID
	unsafe := false
	common.forEach(func(otherID int) {
		other := b.u.Conditions[otherID]
		row := b.u.co[otherID]
		for _, c := range e.Postset {
			if other.Place == c.Place {
				unsafe = true
				unsafePlace = c.Place
			}
			row.add(c.ID)
		}
	})
	if unsafe {
		return &UnsafeError{
			Place:      b.net.PlaceName(unsafePlace),
			Transition: b.g.TransitionString(pe.transition),
			Tokens:     2,
		}
	}

	// Final state of the local configuration, derived incrementally from the
	// preset producers.
	cutSet, consumedSet := b.buildCutSets(pe, e)
	cut := make([]*Condition, 0, cutSet.count())
	cutSet.forEach(func(id int) { cut = append(cut, b.u.Conditions[id]) })
	return b.commitState(e, cutSet, consumedSet, cut, markingOfCut(cut))
}

// commitState records the event's final state (cut, marking, cut-off status)
// and, unless the event is a cut-off, searches its postset for new possible
// extensions.  Shared by the sequential and the parallel tails.
func (b *builder) commitState(e *Event, cutSet, consumedSet *idSet, cut []*Condition, marking petri.Marking) error {
	b.cutSets = append(b.cutSets, cutSet)
	b.consumedSets = append(b.consumedSets, consumedSet)
	e.Cut = cut
	e.Marking = marking
	if b.opts.DebugCheck {
		replay := b.cutOfConfig(e.Local)
		if !SameCut(e.Cut, replay) {
			return fmt.Errorf("unfolding: internal error: incremental cut != replay cut at %s", b.u.EventName(e))
		}
		if replayM := markingOfCut(replay); !replayM.Equal(e.Marking) {
			return fmt.Errorf("unfolding: internal error: incremental marking != replay marking at %s", b.u.EventName(e))
		}
	}

	h := stateHash(e.Marking, e.Code)
	if prior := b.lookupState(h, e.Marking, e.Code); prior != nil {
		e.IsCutoff = true
		e.Correspondent = prior
		return nil // no extensions beyond a cut-off event
	}
	b.putState(h, e)
	for _, c := range e.Postset {
		b.markLive(c)
	}
	if b.pool != nil {
		return b.pool.searchExtensions(e)
	}
	for _, c := range e.Postset {
		b.findExtensionsWith(c)
	}
	return nil
}

// findExtensionsWith enumerates all possible extensions whose preset contains
// the (freshly created) condition c.
func (b *builder) findExtensionsWith(c *Condition) {
	for _, t := range b.net.PlacePost(c.Place) {
		b.searchTransition(t, c, &b.search, b.emitPE)
	}
}

// emitPE is the sequential emit hook: discovered extensions go straight into
// the dedup table and the heap.
func (b *builder) emitPE(t petri.TransitionID, c *Condition, chosen []*Condition) {
	b.addPE(t, c, chosen)
}

// searchTransition enumerates the possible extensions of transition t whose
// preset contains c, invoking emit for each co-set found (chosen excludes c).
// It only reads builder state, so concurrent calls with distinct scratch are
// safe while the segment is quiescent.
func (b *builder) searchTransition(t petri.TransitionID, c *Condition, sc *searchScratch, emit func(t petri.TransitionID, c *Condition, chosen []*Condition)) {
	pre := b.net.Pre(t)
	if len(pre) == 1 {
		emit(t, c, nil)
		return
	}
	// Candidate conditions for every other preset place, restricted to
	// conditions concurrent with c and not produced by cut-off events.
	others := make([]petri.PlaceID, 0, len(pre)-1)
	for _, p := range pre {
		if p != c.Place {
			others = append(others, p)
		}
	}
	if len(others) == 0 {
		emit(t, c, nil)
		return
	}
	chosen := make([]*Condition, 0, len(others))
	b.chooseCoset(t, c, others, chosen, b.u.co[c.ID], sc, emit)
}

// searchScratch is the per-recursion-depth scratch of one chooseCoset caller;
// every goroutine searching concurrently owns its own instance.
type searchScratch struct {
	cand []*idSet // candidate sets, one per recursion depth
	co   []*idSet // accumulated co-sets, one per recursion depth
}

// at returns the candidate and co-accumulator scratch sets for the given
// recursion depth, growing the pools on demand.
func (sc *searchScratch) at(depth int) (cands, coAcc *idSet) {
	for len(sc.cand) <= depth {
		sc.cand = append(sc.cand, newIDSet())
		sc.co = append(sc.co, newIDSet())
	}
	return sc.cand[depth], sc.co[depth]
}

// chooseCoset recursively selects one condition per remaining preset place so
// that the selection plus c is a co-set, then records the possible extension.
// coAcc is the intersection of the co-sets of c and every chosen condition;
// the candidates for the next place are coAcc ∩ placeConds[place], computed a
// word at a time instead of filtering the place's conditions one by one.
func (b *builder) chooseCoset(t petri.TransitionID, c *Condition, remaining []petri.PlaceID, chosen []*Condition, coAcc *idSet, sc *searchScratch, emit func(t petri.TransitionID, c *Condition, chosen []*Condition)) {
	place := remaining[0]
	cands, nextCo := sc.at(len(chosen))
	cands.intersectInto(coAcc, b.placeConds[place])
	if len(remaining) == 1 {
		cands.forEach(func(id int) {
			emit(t, c, append(chosen, b.u.Conditions[id]))
		})
		return
	}
	cands.forEach(func(id int) {
		nextCo.intersectInto(coAcc, b.u.co[id])
		b.chooseCoset(t, c, remaining[1:], append(chosen, b.u.Conditions[id]), nextCo, sc, emit)
	})
}

// peHash keys the possible-extension dedup table.
func peHash(t petri.TransitionID, preset []*Condition) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(t)) * prime
	for _, c := range preset {
		h = (h ^ uint64(c.ID)) * prime
	}
	return h
}

// addPE builds the sorted preset of a freshly discovered co-set and hands it
// to pushPE.
func (b *builder) addPE(t petri.TransitionID, c *Condition, chosen []*Condition) {
	preset := make([]*Condition, 0, len(chosen)+1)
	preset = append(preset, c)
	preset = append(preset, chosen...)
	sort.Slice(preset, func(i, j int) bool { return preset[i].ID < preset[j].ID })
	b.pushPE(t, preset)
}

// pushPE deduplicates a possible extension (preset already sorted by condition
// ID) and pushes it onto the queue.  Only the goroutine running Build may call
// it: the parallel path funnels worker-discovered candidates through here in
// the exact order the sequential search would have produced them, so the seq
// tie-break — and therefore the whole segment — is byte-identical.
func (b *builder) pushPE(t petri.TransitionID, preset []*Condition) {
	h := peHash(t, preset)
	for _, fp := range b.seenPE[h] {
		if fp.matches(t, preset) {
			return
		}
	}
	ids := make([]int32, len(preset))
	for i, p := range preset {
		ids[i] = int32(p.ID)
	}
	b.seenPE[h] = append(b.seenPE[h], peFingerprint{transition: t, preset: ids})

	parent := newIDSet()
	for _, p := range preset {
		parent.orWith(p.Producer.Local)
	}
	pe := &possibleExtension{
		transition:  t,
		preset:      preset,
		parentLocal: parent,
		size:        parent.count() + 1,
		seq:         b.seq,
	}
	b.seq++
	heap.Push(&b.queue, pe)
}
