package unfolding

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/bitvec"
	"punt/internal/stg"
)

// incrementalSuite is the corpus the incremental-engine properties are checked
// against: the whole Table 1 suite plus scalable pipelines and the synthetic
// controllers.
func incrementalSuite() []struct {
	name string
	mk   func() *stg.STG
} {
	var out []struct {
		name string
		mk   func() *stg.STG
	}
	add := func(name string, mk func() *stg.STG) {
		out = append(out, struct {
			name string
			mk   func() *stg.STG
		}{name, mk})
	}
	for _, e := range benchgen.Table1Suite() {
		add(e.Name, e.Build)
	}
	for _, n := range []int{5, 12, 22} {
		n := n
		add(fmt.Sprintf("pipeline-%d", n), func() *stg.STG { return benchgen.MullerPipelineWithSignals(n) })
	}
	add("counterflow", benchgen.CounterflowPipeline)
	add("synthetic-24", func() *stg.STG { return benchgen.SyntheticController("synthetic-24", 24, 7) })
	add("choice-12", func() *stg.STG { return benchgen.ChoiceController("choice-12", 12, 11) })
	return out
}

// TestIncrementalMatchesReplay is the property test of the incremental state
// engine: with DebugCheck enabled, Build cross-validates every event's
// incremental cut, marking and parent code against the retained full-replay
// implementation and fails on the first mismatch.
func TestIncrementalMatchesReplay(t *testing.T) {
	for _, c := range incrementalSuite() {
		u, err := Build(context.Background(), c.mk(), Options{DebugCheck: true})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		plain, err := Build(context.Background(), c.mk(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if u.Statistics() != plain.Statistics() {
			t.Fatalf("%s: DebugCheck changed the segment: %v vs %v", c.name, u.Statistics(), plain.Statistics())
		}
	}
}

// TestHashedCutoffMatchesStringKeyed verifies that the hash-keyed cut-off
// detection reproduces the seed's string-keyed behaviour: replaying events in
// instantiation order against a string-keyed (marking, code) table must mark
// exactly the same events as cut-offs, with the same correspondents.
func TestHashedCutoffMatchesStringKeyed(t *testing.T) {
	for _, c := range incrementalSuite() {
		u, err := Build(context.Background(), c.mk(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		states := map[string]*Event{}
		for _, e := range u.Events {
			key := e.Marking.Key() + "|" + e.Code.Key()
			prior, seen := states[key]
			if e.IsCutoff {
				if !seen {
					t.Fatalf("%s: %s is a cut-off but no earlier event reaches its state", c.name, u.EventName(e))
				}
				if e.Correspondent != prior {
					t.Fatalf("%s: %s corresponds to %s, string-keyed table says %s",
						c.name, u.EventName(e), u.EventName(e.Correspondent), u.EventName(prior))
				}
				continue
			}
			if seen {
				t.Fatalf("%s: %s reaches the state of %s but is not a cut-off", c.name, u.EventName(e), u.EventName(prior))
			}
			states[key] = e
		}
	}
}

// TestCutBitsetsMatchCutSlices checks the bit-set form of every cut against
// the materialised Cut slice and the marking derived from it.
func TestCutBitsetsMatchCutSlices(t *testing.T) {
	for _, c := range incrementalSuite() {
		u, err := Build(context.Background(), c.mk(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, e := range u.Events {
			prev := -1
			for _, cond := range e.Cut {
				if cond.ID <= prev {
					t.Fatalf("%s: cut of %s is not sorted by condition ID", c.name, u.EventName(e))
				}
				prev = cond.ID
			}
			if !markingOfCut(e.Cut).Equal(e.Marking) {
				t.Fatalf("%s: marking of %s disagrees with its cut", c.name, u.EventName(e))
			}
		}
	}
}

// TestUnsafeConcurrentPlaceRejected exercises the unified safeness check: a
// transition whose postset place is already marked by a concurrent condition
// makes the net non-safe (the place would hold two tokens).
func TestUnsafeConcurrentPlaceRejected(t *testing.T) {
	g := stg.New("unsafe-concurrent")
	p0 := g.AddPlace("p0")
	p1 := g.AddPlace("p1")
	d := g.AddDummyTransition("d")
	g.AddArcPT(p0, d)
	g.AddArcTP(d, p1)
	g.MarkInitially(p0)
	g.MarkInitially(p1) // p1 is marked while d can mark it again
	g.SetInitialState(bitvec.New(0))
	_, err := Build(context.Background(), g, Options{})
	if !errors.Is(err, ErrNotSafe) {
		t.Fatalf("expected ErrNotSafe, got %v", err)
	}
}
