package unfolding

import (
	"context"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stg"
)

// BenchmarkUnfoldIncremental measures segment construction alone — the hot
// path of the whole system — on specifications of increasing size.  The
// larger pipelines are where the incremental state engine and the word-level
// co-relation pay off; track these numbers across PRs via cmd/benchtab's
// JSON output.
func BenchmarkUnfoldIncremental(b *testing.B) {
	cases := []struct {
		name string
		mk   func() *stg.STG
	}{
		{"pipeline-12", func() *stg.STG { return benchgen.MullerPipelineWithSignals(12) }},
		{"pipeline-22", func() *stg.STG { return benchgen.MullerPipelineWithSignals(22) }},
		{"pipeline-50", func() *stg.STG { return benchgen.MullerPipelineWithSignals(50) }},
		{"counterflow", benchgen.CounterflowPipeline},
		{"synthetic-24", func() *stg.STG { return benchgen.SyntheticController("synthetic-24", 24, 7) }},
		{"synthetic-48", func() *stg.STG { return benchgen.SyntheticController("synthetic-48", 48, 7) }},
		{"choice-16", func() *stg.STG { return benchgen.ChoiceController("choice-16", 16, 11) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			g := c.mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(context.Background(), g, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnfoldDebugCheck measures the same construction with the
// full-replay cross-validation enabled: the gap between this and
// BenchmarkUnfoldIncremental is the cost the incremental engine removed.
func BenchmarkUnfoldDebugCheck(b *testing.B) {
	g := benchgen.MullerPipelineWithSignals(22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(context.Background(), g, Options{DebugCheck: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Unfold runs segment construction over the whole Table 1
// suite in one iteration, the workload the paper's UnfTim column measures.
func BenchmarkTable1Unfold(b *testing.B) {
	entries := benchgen.Table1Suite()
	specs := make([]*stg.STG, len(entries))
	for i, e := range entries {
		specs[i] = e.Build()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range specs {
			if _, err := Build(context.Background(), g, Options{}); err != nil {
				b.Fatalf("%s: %v", entries[j].Name, err)
			}
		}
	}
}

var sinkStats Stats

// BenchmarkRelationQueries measures the relation predicates downstream
// consumers (slicing, cover derivation) issue against the segment.
func BenchmarkRelationQueries(b *testing.B) {
	u, err := Build(context.Background(), benchgen.MullerPipelineWithSignals(22), Options{})
	if err != nil {
		b.Fatal(err)
	}
	events := u.Events[1:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, e := range events {
			for _, f := range events {
				if u.Concurrent(e, f) {
					n++
				}
			}
		}
		sinkStats.Events = n
	}
}
