package resolve

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stategraph"
)

// FuzzResolve mutates the RandomSTG generator seed and signal budget and
// checks the resolver's contract on every specification the generator can
// produce: resolution terminates within the signal bound, the repaired state
// graph has zero CSC conflicts, and the repair preserves consistency, output
// persistency and deadlock-freedom.  Run it with:
//
//	go test -run=NONE -fuzz=FuzzResolve -fuzztime=30s ./internal/resolve
func FuzzResolve(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, uint8(seed*7))
	}
	f.Fuzz(func(t *testing.T, seed int64, budget uint8) {
		ctx := context.Background()
		g := benchgen.RandomSTG(seed, 4+int(budget)%11)
		sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: 50000})
		if err != nil {
			t.Skip() // state explosion on an adversarial budget
		}
		conflicts := sg.CheckCSC()
		rg, rep, err := Resolve(ctx, g, Options{MaxSignals: 12, MaxStates: 50000})
		if err != nil {
			if errors.Is(err, stategraph.ErrStateLimit) {
				t.Skip()
			}
			t.Fatalf("seed %d budget %d (%d conflicts): %v", seed, budget, len(conflicts), err)
		}
		if len(conflicts) == 0 {
			// A conflict-free input must come back untouched.
			if rg != g || rep.Iterations != 0 || len(rep.Inserted) != 0 {
				t.Fatalf("seed %d budget %d: resolver modified a CSC-clean specification: %s", seed, budget, rep)
			}
			return
		}
		if len(rep.Inserted) == 0 || len(rep.Inserted) > 12 {
			t.Fatalf("seed %d budget %d: inserted %d signals", seed, budget, len(rep.Inserted))
		}
		nsg, err := stategraph.Build(ctx, rg, stategraph.Options{MaxStates: 500000})
		if err != nil {
			t.Fatalf("seed %d budget %d: repaired state graph: %v", seed, budget, err)
		}
		if n := len(nsg.CheckCSC()); n != 0 {
			t.Fatalf("seed %d budget %d: %d conflicts remain", seed, budget, n)
		}
		if v := nsg.CheckOutputPersistency(); len(v) != 0 {
			t.Fatalf("seed %d budget %d: repair broke persistency: %s", seed, budget, v[0])
		}
		if d := nsg.Deadlocks(); len(d) != 0 {
			t.Fatalf("seed %d budget %d: repair introduced %d deadlocks", seed, budget, len(d))
		}
		if err := rg.Validate(); err != nil {
			t.Fatalf("seed %d budget %d: repaired STG invalid: %v", seed, budget, err)
		}
	})
}
