// Package resolve repairs Complete State Coding conflicts by internal-signal
// insertion: the standard transformation that turns an unimplementable STG
// (two reachable states share a binary code but require different output
// behaviour) into an equivalent one whose extra internal state signal
// disambiguates the conflicting states.
//
// The resolver works on the explicit state graph.  Each iteration it
//
//  1. collects the structured CSC conflicts (stategraph.CheckCSC),
//  2. searches for a pair of transitions (t↑, t↓) such that inserting a fresh
//     internal signal x with x+ in series after t↑ and x- in series after t↓
//     admits a consistent value assignment of x over the whole state graph
//     (x alternates along every firing sequence) while separating as many
//     conflicting state pairs as possible, and
//  3. validates the best candidates by actually rewriting the STG and
//     rebuilding its state graph: the rewrite must keep the specification
//     consistent, output-persistent and deadlock-free, and must strictly
//     reduce the number of CSC conflicts.
//
// Serial insertion after a transition t redirects t's entire postset through
// the new signal transition (t → x* → old postset), so the new signal's only
// input place is fresh and private: x* can never be disabled once excited
// (the insertion preserves output persistency and speed-independence by
// construction) and every behaviour of the rewritten STG maps back to the
// original by erasing the x* firings.  Iterating inserts csc0, csc1, … until
// CSC holds or the signal budget is exhausted.
package resolve

import (
	"context"
	"fmt"
	"strings"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// DefaultMaxSignals bounds the number of inserted signals when
// Options.MaxSignals is zero.
const DefaultMaxSignals = 8

// DefaultMaxCandidates bounds how many ranked candidates are validated by a
// full state-graph rebuild per iteration when Options.MaxCandidates is zero.
const DefaultMaxCandidates = 24

// DefaultPrefix names inserted signals csc0, csc1, … when Options.Prefix is
// empty.
const DefaultPrefix = "csc"

// Options configures Resolve.
type Options struct {
	// MaxSignals bounds the number of internal signals the resolver may
	// insert (0 = DefaultMaxSignals).
	MaxSignals int
	// MaxStates bounds every state-graph construction (0 = unlimited).
	MaxStates int
	// MaxCandidates bounds the number of insertion candidates validated by a
	// full state-graph rebuild per iteration (0 = DefaultMaxCandidates).
	MaxCandidates int
	// Prefix names the inserted signals Prefix0, Prefix1, …
	// (empty = DefaultPrefix).
	Prefix string
}

// Insertion records one inserted signal.
type Insertion struct {
	// Signal is the fresh internal signal's name.
	Signal string
	// Rise and Fall name the transitions after which Signal+ and Signal-
	// were inserted in series.
	Rise string
	Fall string
	// Separated is the number of conflicting state pairs the insertion's
	// value assignment separated at selection time.
	Separated int
	// Remaining is the number of CSC conflicts left after the insertion.
	Remaining int
}

// String renders the insertion.
func (in Insertion) String() string {
	return fmt.Sprintf("%s: %s+ after %s, %s- after %s (separated %d, %d left)",
		in.Signal, in.Signal, in.Rise, in.Signal, in.Fall, in.Separated, in.Remaining)
}

// Report summarises a resolution run.
type Report struct {
	// ConflictsBefore is the number of CSC conflicts of the input.
	ConflictsBefore int
	// StatesBefore and StatesAfter are the state-graph sizes of the input and
	// of the resolved specification.
	StatesBefore int
	StatesAfter  int
	// Iterations counts resolution rounds (state-graph rebuild plus candidate
	// search); zero when the input already satisfied CSC.
	Iterations int
	// Inserted lists the inserted signals in order.
	Inserted []Insertion
}

// Signals returns the names of the inserted signals in order.
func (r *Report) Signals() []string {
	out := make([]string, len(r.Inserted))
	for i, in := range r.Inserted {
		out[i] = in.Signal
	}
	return out
}

// String summarises the report.
func (r *Report) String() string {
	if len(r.Inserted) == 0 {
		return "resolve: no CSC conflicts"
	}
	return fmt.Sprintf("resolve: %d conflicts repaired by inserting %s in %d iterations",
		r.ConflictsBefore, strings.Join(r.Signals(), ", "), r.Iterations)
}

// UnresolvedError reports that the resolver could not eliminate every CSC
// conflict within the configured signal budget.
type UnresolvedError struct {
	// Inserted is the number of signals inserted before giving up.
	Inserted int
	// Remaining is the number of CSC conflicts still present.
	Remaining int
	// MaxSignals is the configured budget.
	MaxSignals int
}

func (e *UnresolvedError) Error() string {
	return fmt.Sprintf("resolve: %d CSC conflicts remain after inserting %d of at most %d signals",
		e.Remaining, e.Inserted, e.MaxSignals)
}

// Resolve returns a CSC-conflict-free rewrite of g obtained by inserting
// fresh internal state signals, together with a report of what was done.  The
// input STG is never mutated; when it already satisfies CSC it is returned
// unchanged.  Resolve fails with *UnresolvedError when the signal budget is
// exhausted (or no insertion makes progress), and propagates state-graph
// construction failures (inconsistent or unsafe nets, ErrStateLimit, context
// cancellation) unchanged.
func Resolve(ctx context.Context, g *stg.STG, opts Options) (*stg.STG, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxSignals := opts.MaxSignals
	if maxSignals <= 0 {
		maxSignals = DefaultMaxSignals
	}
	maxCandidates := opts.MaxCandidates
	if maxCandidates <= 0 {
		maxCandidates = DefaultMaxCandidates
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = DefaultPrefix
	}
	sgOpts := stategraph.Options{MaxStates: opts.MaxStates}

	rep := &Report{}
	cur := g
	sg, err := stategraph.Build(ctx, cur, sgOpts)
	if err != nil {
		return nil, nil, err
	}
	conflicts := sg.CheckCSC()
	rep.ConflictsBefore = len(conflicts)
	rep.StatesBefore = sg.NumStates()
	rep.StatesAfter = sg.NumStates()
	if len(conflicts) == 0 {
		return cur, rep, nil
	}
	// The rewrite must not make the specification worse than it already is:
	// remember the input's persistency-violation and deadlock counts as the
	// acceptance baseline (zero for every specification the synthesis flow
	// hands over, but Resolve is also callable directly).
	baseViolations := len(sg.CheckOutputPersistency())
	baseDeadlocks := len(sg.Deadlocks())

	for len(conflicts) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if len(rep.Inserted) >= maxSignals {
			return nil, nil, &UnresolvedError{Inserted: len(rep.Inserted), Remaining: len(conflicts), MaxSignals: maxSignals}
		}
		rep.Iterations++
		name := freshSignalName(cur, prefix)
		cands := findCandidates(sg, conflicts)

		// Validate the ranked candidates by rebuilding the state graph of the
		// rewritten STG; keep the best strict improvement, stopping early on a
		// perfect repair.
		var (
			best          *stg.STG
			bestSG        *stategraph.Graph
			bestConflicts []stategraph.CSCConflict
			bestCand      candidate
			tried         int
		)
		for _, cand := range cands {
			if tried >= maxCandidates {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			tried++
			next := insertToggle(cur, name, cand.rise, cand.fall, cand.initHigh)
			nsg, err := stategraph.Build(ctx, next, sgOpts)
			if err != nil {
				if ctx.Err() != nil {
					return nil, nil, ctx.Err()
				}
				continue // the rewrite broke the net; try the next candidate
			}
			ncs := nsg.CheckCSC()
			if len(ncs) >= len(conflicts) {
				continue
			}
			if len(nsg.CheckOutputPersistency()) > baseViolations {
				continue
			}
			if len(nsg.Deadlocks()) > baseDeadlocks {
				continue
			}
			if best == nil || len(ncs) < len(bestConflicts) {
				best, bestSG, bestConflicts, bestCand = next, nsg, ncs, cand
			}
			if len(ncs) == 0 {
				break
			}
		}
		if best == nil {
			return nil, nil, &UnresolvedError{Inserted: len(rep.Inserted), Remaining: len(conflicts), MaxSignals: maxSignals}
		}
		rep.Inserted = append(rep.Inserted, Insertion{
			Signal:    name,
			Rise:      cur.TransitionString(bestCand.rise),
			Fall:      cur.TransitionString(bestCand.fall),
			Separated: bestCand.separated,
			Remaining: len(bestConflicts),
		})
		cur, sg, conflicts = best, bestSG, bestConflicts
		rep.StatesAfter = sg.NumStates()
	}
	return cur, rep, nil
}

// freshSignalName returns prefixN for the smallest N not already declared.
func freshSignalName(g *stg.STG, prefix string) string {
	for n := 0; ; n++ {
		name := fmt.Sprintf("%s%d", prefix, n)
		if _, taken := g.SignalIndex(name); !taken {
			return name
		}
	}
}

// insertToggle clones g and inserts a fresh internal signal that rises in
// series after transition rise and falls in series after transition fall:
// each insertion point's postset is redirected through the new signal
// transition, whose single fresh input place makes it persistent by
// construction.  initHigh is the signal's initial binary value.
func insertToggle(g *stg.STG, name string, rise, fall petri.TransitionID, initHigh bool) *stg.STG {
	ng := g.Clone()
	sig := ng.AddSignal(name, stg.Internal)

	insert := func(after petri.TransitionID, dir stg.Direction) {
		x := ng.AddTransition(sig, dir)
		net := ng.Net()
		post := append([]petri.PlaceID(nil), net.Post(after)...)
		for _, p := range post {
			net.RemoveArcTP(after, p)
			net.AddArcTP(x, p)
		}
		ng.AddArcTT(after, x)
	}
	insert(rise, stg.Plus)
	insert(fall, stg.Minus)

	// Extend the initial binary state with the new signal's value.
	old := g.InitialState()
	ext := make([]bool, old.Len()+1)
	for i := 0; i < old.Len(); i++ {
		ext[i] = old.Get(i)
	}
	ext[len(ext)-1] = initHigh
	ng.SetInitialState(bitvec.FromBools(ext))
	return ng
}
