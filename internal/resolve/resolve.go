// Package resolve repairs Complete State Coding conflicts by internal-signal
// insertion: the standard transformation that turns an unimplementable STG
// (two reachable states share a binary code but require different output
// behaviour) into an equivalent one whose extra internal state signal
// disambiguates the conflicting states.
//
// The resolver works on the explicit state graph.  Each iteration it
//
//  1. collects the structured CSC conflicts (stategraph.CheckCSC),
//  2. searches for a pair of transitions (t↑, t↓) such that inserting a fresh
//     internal signal x with x+ in series after t↑ and x- in series after t↓
//     admits a consistent value assignment of x over the whole state graph
//     (x alternates along every firing sequence) while separating as many
//     conflicting state pairs as possible, and
//  3. validates the best candidates by actually rewriting the STG and
//     rebuilding its state graph: the rewrite must keep the specification
//     consistent, output-persistent and deadlock-free, and must strictly
//     reduce the number of CSC conflicts.
//
// Serial insertion after a transition t redirects t's entire postset through
// the new signal transition (t → x* → old postset), so the new signal's only
// input place is fresh and private: x* can never be disabled once excited
// (the insertion preserves output persistency and speed-independence by
// construction) and every behaviour of the rewritten STG maps back to the
// original by erasing the x* firings.  Iterating inserts csc0, csc1, … until
// CSC holds or the signal budget is exhausted.
package resolve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// DefaultMaxSignals bounds the number of inserted signals when
// Options.MaxSignals is zero.
const DefaultMaxSignals = 8

// DefaultMaxCandidates bounds how many ranked candidates are validated by a
// full state-graph rebuild per iteration when Options.MaxCandidates is zero.
const DefaultMaxCandidates = 24

// DefaultPrefix names inserted signals csc0, csc1, … when Options.Prefix is
// empty.
const DefaultPrefix = "csc"

// Options configures Resolve.
type Options struct {
	// MaxSignals bounds the number of internal signals the resolver may
	// insert (0 = DefaultMaxSignals).
	MaxSignals int
	// MaxStates bounds every state-graph construction (0 = unlimited).
	MaxStates int
	// MaxCandidates bounds the number of insertion candidates validated by a
	// full state-graph rebuild per iteration (0 = DefaultMaxCandidates).
	MaxCandidates int
	// Prefix names the inserted signals Prefix0, Prefix1, …
	// (empty = DefaultPrefix).
	Prefix string
	// Workers bounds how many candidate validations run concurrently; each
	// validation (rewrite plus state-graph construction) is independent, and
	// the winner is picked deterministically by rank, so the resolved STG is
	// identical to the sequential one.  Values <= 1 validate sequentially.
	Workers int
	// FullRebuild disables incremental revalidation: every candidate's state
	// graph is rebuilt from scratch (the pre-incremental behaviour, kept for
	// benchmarking and as an escape hatch).
	FullRebuild bool
	// DebugCheck cross-validates every incremental state graph against a full
	// rebuild; meant for tests, it defeats the point of incrementality.
	DebugCheck bool
}

// Insertion records one inserted signal.
type Insertion struct {
	// Signal is the fresh internal signal's name.
	Signal string
	// Rise and Fall name the transitions after which Signal+ and Signal-
	// were inserted in series.
	Rise string
	Fall string
	// Separated is the number of conflicting state pairs the insertion's
	// value assignment separated at selection time.
	Separated int
	// Remaining is the number of CSC conflicts left after the insertion.
	Remaining int
}

// String renders the insertion.
func (in Insertion) String() string {
	return fmt.Sprintf("%s: %s+ after %s, %s- after %s (separated %d, %d left)",
		in.Signal, in.Signal, in.Rise, in.Signal, in.Fall, in.Separated, in.Remaining)
}

// Report summarises a resolution run.
type Report struct {
	// ConflictsBefore is the number of CSC conflicts of the input.
	ConflictsBefore int
	// StatesBefore and StatesAfter are the state-graph sizes of the input and
	// of the resolved specification.
	StatesBefore int
	StatesAfter  int
	// Iterations counts resolution rounds (state-graph rebuild plus candidate
	// search); zero when the input already satisfied CSC.
	Iterations int
	// Inserted lists the inserted signals in order.
	Inserted []Insertion
	// CandidatesTried counts candidate validations across all iterations;
	// CandidatesFailed counts the ones whose state-graph construction failed
	// (the rewrite broke the net) — previously swallowed silently, they are
	// what explains an exhausted search.
	CandidatesTried  int
	CandidatesFailed int
	// StatesReused / StatesExpanded count parent states patched into candidate
	// graphs without re-exploration versus delta states actually explored by
	// incremental revalidation; IncrementalBuilds / FullRebuilds count how
	// many validations took each path.
	StatesReused      int
	StatesExpanded    int
	IncrementalBuilds int
	FullRebuilds      int
}

// Signals returns the names of the inserted signals in order.
func (r *Report) Signals() []string {
	out := make([]string, len(r.Inserted))
	for i, in := range r.Inserted {
		out[i] = in.Signal
	}
	return out
}

// String summarises the report.
func (r *Report) String() string {
	if len(r.Inserted) == 0 {
		return "resolve: no CSC conflicts"
	}
	return fmt.Sprintf("resolve: %d conflicts repaired by inserting %s in %d iterations",
		r.ConflictsBefore, strings.Join(r.Signals(), ", "), r.Iterations)
}

// UnresolvedError reports that the resolver could not eliminate every CSC
// conflict within the configured signal budget.
type UnresolvedError struct {
	// Inserted is the number of signals inserted before giving up.
	Inserted int
	// Remaining is the number of CSC conflicts still present.
	Remaining int
	// MaxSignals is the configured budget.
	MaxSignals int
}

func (e *UnresolvedError) Error() string {
	return fmt.Sprintf("resolve: %d CSC conflicts remain after inserting %d of at most %d signals",
		e.Remaining, e.Inserted, e.MaxSignals)
}

// Resolve returns a CSC-conflict-free rewrite of g obtained by inserting
// fresh internal state signals, together with a report of what was done.  The
// input STG is never mutated; when it already satisfies CSC it is returned
// unchanged.  Resolve fails with *UnresolvedError when the signal budget is
// exhausted (or no insertion makes progress), and propagates state-graph
// construction failures (inconsistent or unsafe nets, ErrStateLimit, context
// cancellation) unchanged.
func Resolve(ctx context.Context, g *stg.STG, opts Options) (*stg.STG, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxSignals := opts.MaxSignals
	if maxSignals <= 0 {
		maxSignals = DefaultMaxSignals
	}
	maxCandidates := opts.MaxCandidates
	if maxCandidates <= 0 {
		maxCandidates = DefaultMaxCandidates
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = DefaultPrefix
	}
	sgOpts := stategraph.Options{MaxStates: opts.MaxStates}

	rep := &Report{}
	cur := g
	sg, err := stategraph.Build(ctx, cur, sgOpts)
	if err != nil {
		return nil, nil, err
	}
	conflicts := sg.CheckCSC()
	rep.ConflictsBefore = len(conflicts)
	rep.StatesBefore = sg.NumStates()
	rep.StatesAfter = sg.NumStates()
	if len(conflicts) == 0 {
		return cur, rep, nil
	}
	// The rewrite must not make the specification worse than it already is:
	// remember the input's persistency-violation and deadlock counts as the
	// acceptance baseline (zero for every specification the synthesis flow
	// hands over, but Resolve is also callable directly).
	baseViolations := len(sg.CheckOutputPersistency())
	baseDeadlocks := len(sg.Deadlocks())

	for len(conflicts) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if len(rep.Inserted) >= maxSignals {
			return nil, nil, &UnresolvedError{Inserted: len(rep.Inserted), Remaining: len(conflicts), MaxSignals: maxSignals}
		}
		rep.Iterations++
		name := freshSignalName(cur, prefix)
		cands := findCandidates(sg, conflicts, opts.Workers)
		if len(cands) > maxCandidates {
			cands = cands[:maxCandidates]
		}

		// Validate the ranked candidates — concurrently when Workers > 1, each
		// validation being an independent rewrite-and-rebuild — and keep the
		// best strict improvement.  The pick is deterministic regardless of
		// completion order: scanning in rank order for the strictly smallest
		// conflict count selects exactly the candidate the sequential
		// keep-best loop would have kept.
		vals := make([]validation, len(cands))
		v := &validator{
			cur: cur, sg: sg, name: name,
			conflicts:      len(conflicts),
			baseViolations: baseViolations,
			baseDeadlocks:  baseDeadlocks,
			sgOpts:         sgOpts,
			fullRebuild:    opts.FullRebuild,
			debugCheck:     opts.DebugCheck,
			maxDelta:       sg.NumStates() + 64,
		}
		if opts.Workers > 1 && len(cands) > 1 {
			var next atomic.Int64
			var wg sync.WaitGroup
			var panicMu sync.Mutex
			var panicked any
			n := opts.Workers
			if n > len(cands) {
				n = len(cands)
			}
			for w := 0; w < n; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// A panic on a bare goroutine bypasses every recover up the
					// stack and kills the process.  Capture the first one and
					// re-raise it on the coordinating goroutine below, where the
					// facade's central dispatch turns it into a KindPanic
					// diagnostic that fails only this synthesis.
					defer func() {
						if p := recover(); p != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = p
							}
							panicMu.Unlock()
						}
					}()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(cands) {
							return
						}
						v.validate(ctx, &vals[i], cands[i])
					}
				}()
			}
			wg.Wait()
			if panicked != nil {
				panic(panicked)
			}
		} else {
			for i := range cands {
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
				v.validate(ctx, &vals[i], cands[i])
				if vals[i].ok && len(vals[i].ncs) == 0 {
					break // a perfect repair cannot be beaten by a lower rank
				}
			}
		}

		best := -1
		for i := range vals {
			if !vals[i].tried {
				continue
			}
			if vals[i].err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, nil, cerr
				}
				return nil, nil, vals[i].err
			}
			rep.CandidatesTried++
			if vals[i].failed {
				rep.CandidatesFailed++
				continue
			}
			if vals[i].incremental {
				rep.IncrementalBuilds++
				rep.StatesReused += vals[i].reused
				rep.StatesExpanded += vals[i].expanded
			} else {
				rep.FullRebuilds++
			}
			if !vals[i].ok {
				continue
			}
			if best < 0 || len(vals[i].ncs) < len(vals[best].ncs) {
				best = i
			}
		}
		if best < 0 {
			return nil, nil, &UnresolvedError{Inserted: len(rep.Inserted), Remaining: len(conflicts), MaxSignals: maxSignals}
		}
		bestCand, bestConflicts := cands[best], vals[best].ncs
		rep.Inserted = append(rep.Inserted, Insertion{
			Signal:    name,
			Rise:      cur.TransitionString(bestCand.rise),
			Fall:      cur.TransitionString(bestCand.fall),
			Separated: bestCand.separated,
			Remaining: len(bestConflicts),
		})
		cur, sg, conflicts = vals[best].next, vals[best].nsg, bestConflicts
		rep.StatesAfter = sg.NumStates()
	}
	return cur, rep, nil
}

// validation is the outcome of validating one candidate.
type validation struct {
	tried bool
	next  *stg.STG
	nsg   *stategraph.Graph
	ncs   []stategraph.CSCConflict
	// ok marks a strict improvement that passed the persistency and deadlock
	// gates; failed marks a rewrite whose state-graph construction errored
	// (counted, no longer silent); err is a hard failure that aborts Resolve
	// (context cancellation, internal cross-check mismatch).
	ok, failed bool
	err        error
	// incremental reports the graph was built by ExtendToggle, reusing reused
	// parent states and exploring expanded delta states.
	incremental      bool
	reused, expanded int
}

// validator carries the per-iteration context shared by all candidate
// validations; its fields are read-only during the fan-out, so concurrent
// validate calls on distinct validation slots are safe.
type validator struct {
	cur            *stg.STG
	sg             *stategraph.Graph
	name           string
	conflicts      int
	baseViolations int
	baseDeadlocks  int
	sgOpts         stategraph.Options
	fullRebuild    bool
	debugCheck     bool
	maxDelta       int
}

// validate rewrites the STG for one candidate and builds the resulting state
// graph, incrementally when the toggle's delta region stays below the
// threshold.  ErrExtendMiss falls back to a full rebuild; every other
// incremental error is a genuine property of the rewrite (inconsistency,
// state limit) that a full build would report the same way, because the
// incremental graph is isomorphic to the fully rebuilt one.
func (v *validator) validate(ctx context.Context, out *validation, cand candidate) {
	out.tried = true
	if err := ctx.Err(); err != nil {
		out.err = err
		return
	}
	next, xPlus, xMinus := insertToggle(v.cur, v.name, cand.rise, cand.fall, cand.initHigh)
	out.next = next

	var nsg *stategraph.Graph
	var err error
	if !v.fullRebuild {
		if value, ok := colorAssignment(v.sg, cand.rise, cand.fall); ok {
			var est stategraph.ExtendStats
			nsg, est, err = stategraph.ExtendToggle(ctx, v.sg, next, cand.rise, cand.fall, xPlus, xMinus, value, v.maxDelta, v.sgOpts)
			if err == nil {
				out.incremental = true
				out.reused, out.expanded = est.Reused, est.Expanded
				if v.debugCheck {
					if derr := crossCheck(ctx, nsg, next, v.sgOpts); derr != nil {
						out.err = derr
						return
					}
				}
			} else if errors.Is(err, stategraph.ErrExtendMiss) {
				nsg, err = nil, nil // assumptions broke: rebuild in full
			}
		}
	}
	if nsg == nil && err == nil {
		nsg, err = stategraph.Build(ctx, next, v.sgOpts)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			out.err = cerr
			return
		}
		out.failed = true // the rewrite broke the net; the caller counts this
		return
	}
	out.nsg = nsg
	out.ncs = nsg.CheckCSC()
	out.ok = len(out.ncs) < v.conflicts &&
		len(nsg.CheckOutputPersistency()) <= v.baseViolations &&
		len(nsg.Deadlocks()) <= v.baseDeadlocks
}

// crossCheck verifies an incrementally built state graph against a full
// rebuild (Options.DebugCheck): the two must agree on every count the
// resolver's decisions depend on.  The graphs are isomorphic rather than
// identical — the incremental one keeps the parent's state numbering — so
// the comparison is over sizes and check outcomes, which are
// numbering-invariant.
func crossCheck(ctx context.Context, inc *stategraph.Graph, g *stg.STG, sgOpts stategraph.Options) error {
	full, err := stategraph.Build(ctx, g, sgOpts)
	if err != nil {
		return fmt.Errorf("resolve: internal error: incremental build succeeded where full rebuild failed: %w", err)
	}
	if inc.NumStates() != full.NumStates() || inc.NumEdges() != full.NumEdges() {
		return fmt.Errorf("resolve: internal error: incremental state graph has %d states / %d edges, full rebuild %d / %d",
			inc.NumStates(), inc.NumEdges(), full.NumStates(), full.NumEdges())
	}
	if a, b := len(inc.CheckCSC()), len(full.CheckCSC()); a != b {
		return fmt.Errorf("resolve: internal error: incremental graph reports %d CSC conflicts, full rebuild %d", a, b)
	}
	if a, b := len(inc.CheckOutputPersistency()), len(full.CheckOutputPersistency()); a != b {
		return fmt.Errorf("resolve: internal error: incremental graph reports %d persistency violations, full rebuild %d", a, b)
	}
	if a, b := len(inc.Deadlocks()), len(full.Deadlocks()); a != b {
		return fmt.Errorf("resolve: internal error: incremental graph reports %d deadlocks, full rebuild %d", a, b)
	}
	return nil
}

// freshSignalName returns prefixN for the smallest N not already declared.
func freshSignalName(g *stg.STG, prefix string) string {
	for n := 0; ; n++ {
		name := fmt.Sprintf("%s%d", prefix, n)
		if _, taken := g.SignalIndex(name); !taken {
			return name
		}
	}
}

// insertToggle clones g and inserts a fresh internal signal that rises in
// series after transition rise and falls in series after transition fall:
// each insertion point's postset is redirected through the new signal
// transition, whose single fresh input place makes it persistent by
// construction.  initHigh is the signal's initial binary value.  The returned
// transition IDs of the inserted x+ and x- anchor the incremental
// revalidation.
func insertToggle(g *stg.STG, name string, rise, fall petri.TransitionID, initHigh bool) (ng *stg.STG, xPlus, xMinus petri.TransitionID) {
	ng = g.Clone()
	sig := ng.AddSignal(name, stg.Internal)

	insert := func(after petri.TransitionID, dir stg.Direction) petri.TransitionID {
		x := ng.AddTransition(sig, dir)
		net := ng.Net()
		post := append([]petri.PlaceID(nil), net.Post(after)...)
		for _, p := range post {
			net.RemoveArcTP(after, p)
			net.AddArcTP(x, p)
		}
		ng.AddArcTT(after, x)
		return x
	}
	xPlus = insert(rise, stg.Plus)
	xMinus = insert(fall, stg.Minus)

	// Extend the initial binary state with the new signal's value.
	old := g.InitialState()
	ext := make([]bool, old.Len()+1)
	for i := 0; i < old.Len(); i++ {
		ext[i] = old.Get(i)
	}
	ext[len(ext)-1] = initHigh
	ng.SetInitialState(bitvec.FromBools(ext))
	return ng, xPlus, xMinus
}
