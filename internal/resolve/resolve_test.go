package resolve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// loadCSCExample parses testdata/csc.g, the broken two-handshake controller
// whose manual repair the cscconflict example used to narrate.
func loadCSCExample(t *testing.T) *stg.STG {
	t.Helper()
	g, err := stg.ParseFile("../../testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCSCExampleGolden pins the resolver's behaviour on the canonical broken
// controller: exactly one internal signal repairs it, inserted at exactly the
// points the manual repair (the old cscconflict example) used — csc0+ after
// out1+, csc0- after out2+.
func TestCSCExampleGolden(t *testing.T) {
	g := loadCSCExample(t)
	rg, rep, err := Resolve(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 1 || rep.Iterations != 1 {
		t.Fatalf("want exactly one inserted signal in one iteration, got %s", rep)
	}
	in := rep.Inserted[0]
	if in.Signal != "csc0" || in.Rise != "out1+" || in.Fall != "out2+" {
		t.Errorf("insertion = %s, want csc0+ after out1+ and csc0- after out2+", in)
	}
	if in.Separated != 1 || in.Remaining != 0 {
		t.Errorf("insertion bookkeeping = %s", in)
	}
	if rep.ConflictsBefore != 1 {
		t.Errorf("ConflictsBefore = %d, want 1", rep.ConflictsBefore)
	}
	if rep.StatesBefore != 8 || rep.StatesAfter != 10 {
		t.Errorf("states %d -> %d, want 8 -> 10", rep.StatesBefore, rep.StatesAfter)
	}
	if got := rep.Signals(); len(got) != 1 || got[0] != "csc0" {
		t.Errorf("Signals() = %v", got)
	}
	if s := rep.String(); !strings.Contains(s, "inserting csc0 in 1 iterations") {
		t.Errorf("report renders %q", s)
	}
	if s := in.String(); !strings.Contains(s, "csc0+ after out1+") || !strings.Contains(s, "csc0- after out2+") {
		t.Errorf("insertion renders %q", s)
	}

	sg, err := stategraph.Build(context.Background(), rg, stategraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sg.CheckCSC()); n != 0 {
		t.Fatalf("%d conflicts remain", n)
	}
	if v := sg.CheckOutputPersistency(); len(v) != 0 {
		t.Fatalf("repair broke persistency: %s", v[0])
	}

	// The repaired STG must survive a .g round trip (it is what Spec.Text and
	// the content-addressed cache hash).
	back, err := stg.ParseString(stg.Format(rg))
	if err != nil {
		t.Fatalf("repaired STG does not round-trip: %v", err)
	}
	if stg.Format(back) != stg.Format(rg) {
		t.Error("repaired STG round trip is not stable")
	}

	// The input must not have been mutated.
	if _, ok := g.SignalIndex("csc0"); ok {
		t.Error("Resolve mutated its input STG")
	}
}

// TestCleanSpecUntouched: a CSC-clean specification comes back as the same
// *stg.STG value with an empty report.
func TestCleanSpecUntouched(t *testing.T) {
	g, err := stg.ParseFile("../../testdata/fig1.g")
	if err != nil {
		t.Fatal(err)
	}
	rg, rep, err := Resolve(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rg != g {
		t.Error("Resolve must return the input unchanged when CSC already holds")
	}
	if rep.Iterations != 0 || len(rep.Inserted) != 0 || rep.ConflictsBefore != 0 {
		t.Errorf("unexpected report on a clean spec: %s", rep)
	}
	if rep.String() != "resolve: no CSC conflicts" {
		t.Errorf("clean report renders %q", rep.String())
	}
}

// TestDeterministic: the resolver's candidate ranking is fully ordered, so
// the same input always yields byte-identical repaired text.
func TestDeterministic(t *testing.T) {
	first := ""
	for i := 0; i < 3; i++ {
		rg, _, err := Resolve(context.Background(), benchgen.RandomSTG(11, 8), Options{})
		if err != nil {
			t.Fatal(err)
		}
		text := stg.Format(rg)
		if i == 0 {
			first = text
			continue
		}
		if text != first {
			t.Fatalf("run %d produced a different repair:\n%s\nvs\n%s", i, text, first)
		}
	}
}

// TestBudgetExhausted: a specification needing several signals fails with
// *UnresolvedError when the bound is one, and the error survives as-is.
func TestBudgetExhausted(t *testing.T) {
	ctx := context.Background()
	// Find a generator seed whose repair needs at least two signals.
	for seed := int64(0); seed < 2000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: 100000})
		if err != nil || len(sg.CheckCSC()) == 0 {
			continue
		}
		_, rep, err := Resolve(ctx, g, Options{MaxStates: 100000})
		if err != nil || len(rep.Inserted) < 2 {
			continue
		}
		_, _, err = Resolve(ctx, g, Options{MaxSignals: 1, MaxStates: 100000})
		var un *UnresolvedError
		if !errors.As(err, &un) {
			t.Fatalf("seed %d: want *UnresolvedError with MaxSignals=1, got %v", seed, err)
		}
		if un.MaxSignals != 1 || un.Inserted > 1 || un.Remaining == 0 {
			t.Fatalf("seed %d: implausible error detail: %+v", seed, un)
		}
		if !strings.Contains(un.Error(), "CSC conflicts remain") {
			t.Errorf("error renders %q", un.Error())
		}
		return
	}
	t.Fatal("no generator seed needing two signals found in range")
}

// TestResolveProperty sweeps at least 200 RandomSTG seeds whose deliberate
// CSC gadget produced a real conflict and asserts the resolver's contract on
// every one: termination within the default signal bound, a conflict-free
// repaired state graph, preserved output persistency and deadlock-freedom.
// (The facade-level sweep in the root package additionally runs the repaired
// circuits through closed-loop verification and the differential harness.)
func TestResolveProperty(t *testing.T) {
	ctx := context.Background()
	want := 200
	if testing.Short() {
		want = 40
	}
	found := 0
	for seed := int64(0); found < want && seed < 20000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: 200000})
		if err != nil {
			continue
		}
		if len(sg.CheckCSC()) == 0 {
			continue
		}
		found++
		rg, rep, err := Resolve(ctx, g, Options{MaxStates: 200000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Inserted) == 0 || len(rep.Inserted) > DefaultMaxSignals {
			t.Fatalf("seed %d: inserted %d signals", seed, len(rep.Inserted))
		}
		nsg, err := stategraph.Build(ctx, rg, stategraph.Options{})
		if err != nil {
			t.Fatalf("seed %d: repaired state graph: %v", seed, err)
		}
		if n := len(nsg.CheckCSC()); n != 0 {
			t.Fatalf("seed %d: %d conflicts remain", seed, n)
		}
		if v := nsg.CheckOutputPersistency(); len(v) != 0 {
			t.Fatalf("seed %d: repair broke persistency: %s", seed, v[0])
		}
		if d := nsg.Deadlocks(); len(d) != 0 {
			t.Fatalf("seed %d: repair introduced deadlocks", seed)
		}
	}
	if found < want {
		t.Fatalf("only %d CSC-conflicted seeds found, want %d", found, want)
	}
	t.Logf("resolved %d CSC-conflicted specifications", found)
}
