package resolve

import (
	"sort"

	"punt/internal/petri"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// candidate is one feasible insertion: the new signal rises in series after
// rise and falls in series after fall.
type candidate struct {
	rise, fall petri.TransitionID
	// separated is the number of conflicting state pairs the induced value
	// assignment distinguishes.
	separated int
	// penalty prefers insertion points on output/internal transitions over
	// dummies and inputs (classic practice: the inserted state signal should
	// follow the circuit's own events where possible).
	penalty int
	// initHigh is the induced initial value of the new signal.
	initHigh bool
}

// findCandidates enumerates every ordered transition pair (rise, fall) whose
// serial insertion admits a consistent value assignment of the new signal
// over the state graph, and ranks the feasible ones: most conflict pairs
// separated first, then lowest insertion-point penalty, then deterministic
// transition order.
func findCandidates(sg *stategraph.Graph, conflicts []stategraph.CSCConflict) []candidate {
	g := sg.STG
	m := g.Net().NumTransitions()

	// Edges grouped by transition, so a pair's anchors are found without
	// rescanning the whole edge list.
	edgesByTrans := make([][]int, m)
	for e := range sg.Edges {
		t := sg.Edges[e].Transition
		edgesByTrans[t] = append(edgesByTrans[t], e)
	}
	// Undirected incidence: for the equality propagation every non-toggle
	// edge forces its endpoints to the same value.
	type half struct {
		other int // neighbouring state
		trans petri.TransitionID
	}
	inc := make([][]half, len(sg.States))
	for _, e := range sg.Edges {
		inc[e.From] = append(inc[e.From], half{other: e.To, trans: e.Transition})
		inc[e.To] = append(inc[e.To], half{other: e.From, trans: e.Transition})
	}

	penalty := func(t petri.TransitionID) int {
		l := g.Label(t)
		switch {
		case l.IsDummy:
			return 1
		case g.Signal(l.Signal).Kind == stg.Input:
			return 2
		default:
			return 0
		}
	}

	value := make([]int8, len(sg.States))
	var stack []int

	// color computes the value assignment induced by the pair (rise, fall):
	// rise edges force 0→1, fall edges force 1→0, every other edge forces
	// equality.  It reports whether the constraints are satisfiable.
	color := func(rise, fall petri.TransitionID) bool {
		for i := range value {
			value[i] = -1
		}
		stack = stack[:0]
		assign := func(s int, v int8) bool {
			if value[s] == -1 {
				value[s] = v
				stack = append(stack, s)
				return true
			}
			return value[s] == v
		}
		for _, e := range edgesByTrans[rise] {
			if !assign(sg.Edges[e].From, 0) || !assign(sg.Edges[e].To, 1) {
				return false
			}
		}
		for _, e := range edgesByTrans[fall] {
			if !assign(sg.Edges[e].From, 1) || !assign(sg.Edges[e].To, 0) {
				return false
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range inc[s] {
				if h.trans == rise || h.trans == fall {
					continue // toggle edges were anchored above
				}
				if !assign(h.other, value[s]) {
					return false
				}
			}
		}
		return true
	}

	var out []candidate
	for rise := petri.TransitionID(0); int(rise) < m; rise++ {
		if len(edgesByTrans[rise]) == 0 {
			continue // never fires: the new signal would never rise
		}
		for fall := petri.TransitionID(0); int(fall) < m; fall++ {
			if rise == fall || len(edgesByTrans[fall]) == 0 {
				continue
			}
			if !color(rise, fall) {
				continue
			}
			sep := 0
			for _, c := range conflicts {
				if value[c.StateA] != value[c.StateB] {
					sep++
				}
			}
			if sep == 0 {
				continue // the new signal would not distinguish any conflict
			}
			out = append(out, candidate{
				rise:      rise,
				fall:      fall,
				separated: sep,
				penalty:   penalty(rise) + penalty(fall),
				initHigh:  value[0] == 1,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].separated != out[j].separated {
			return out[i].separated > out[j].separated
		}
		if out[i].penalty != out[j].penalty {
			return out[i].penalty < out[j].penalty
		}
		if out[i].rise != out[j].rise {
			return out[i].rise < out[j].rise
		}
		return out[i].fall < out[j].fall
	})
	return out
}
