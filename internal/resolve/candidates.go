package resolve

import (
	"sort"

	"punt/internal/petri"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// candidate is one feasible insertion: the new signal rises in series after
// rise and falls in series after fall.
type candidate struct {
	rise, fall petri.TransitionID
	// separated is the number of conflicting state pairs the induced value
	// assignment distinguishes.
	separated int
	// penalty prefers insertion points on output/internal transitions over
	// dummies and inputs (classic practice: the inserted state signal should
	// follow the circuit's own events where possible).
	penalty int
	// initHigh is the induced initial value of the new signal.
	initHigh bool
}

// colorer computes, for transition pairs over one state graph, the value
// assignment a serially inserted toggle signal would take: rise edges force
// 0→1, fall edges force 1→0, every other edge forces equality.  The
// incidence structures are built once and reused across pairs.
type colorer struct {
	sg           *stategraph.Graph
	edgesByTrans [][]int
	inc          [][]half
	value        []int8
	stack        []int
}

// half is one undirected incidence entry of the equality propagation.
type half struct {
	other int // neighbouring state
	trans petri.TransitionID
}

func newColorer(sg *stategraph.Graph) *colorer {
	m := sg.STG.Net().NumTransitions()
	c := &colorer{
		sg:           sg,
		edgesByTrans: make([][]int, m),
		inc:          make([][]half, len(sg.States)),
		value:        make([]int8, len(sg.States)),
	}
	for e := range sg.Edges {
		t := sg.Edges[e].Transition
		c.edgesByTrans[t] = append(c.edgesByTrans[t], e)
	}
	for _, e := range sg.Edges {
		c.inc[e.From] = append(c.inc[e.From], half{other: e.To, trans: e.Transition})
		c.inc[e.To] = append(c.inc[e.To], half{other: e.From, trans: e.Transition})
	}
	return c
}

// color computes the assignment induced by (rise, fall) into c.value and
// reports whether the constraints are satisfiable.
func (c *colorer) color(rise, fall petri.TransitionID) bool {
	sg := c.sg
	for i := range c.value {
		c.value[i] = -1
	}
	c.stack = c.stack[:0]
	assign := func(s int, v int8) bool {
		if c.value[s] == -1 {
			c.value[s] = v
			c.stack = append(c.stack, s)
			return true
		}
		return c.value[s] == v
	}
	for _, e := range c.edgesByTrans[rise] {
		if !assign(sg.Edges[e].From, 0) || !assign(sg.Edges[e].To, 1) {
			return false
		}
	}
	for _, e := range c.edgesByTrans[fall] {
		if !assign(sg.Edges[e].From, 1) || !assign(sg.Edges[e].To, 0) {
			return false
		}
	}
	for len(c.stack) > 0 {
		s := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		for _, h := range c.inc[s] {
			if h.trans == rise || h.trans == fall {
				continue // toggle edges were anchored above
			}
			if !assign(h.other, c.value[s]) {
				return false
			}
		}
	}
	return true
}

// colorAssignment computes the per-state toggle value induced by the pair
// (rise, fall) on its own — the form the incremental revalidation needs.  The
// returned slice is freshly allocated; ok is false when the pair admits no
// consistent assignment.
func colorAssignment(sg *stategraph.Graph, rise, fall petri.TransitionID) (value []int8, ok bool) {
	c := newColorer(sg)
	if !c.color(rise, fall) {
		return nil, false
	}
	return append([]int8(nil), c.value...), true
}

// findCandidates enumerates every ordered transition pair (rise, fall) whose
// serial insertion admits a consistent value assignment of the new signal
// over the state graph, and ranks the feasible ones: most conflict pairs
// separated first, then lowest insertion-point penalty, then deterministic
// transition order.
func findCandidates(sg *stategraph.Graph, conflicts []stategraph.CSCConflict) []candidate {
	g := sg.STG
	m := g.Net().NumTransitions()
	c := newColorer(sg)

	penalty := func(t petri.TransitionID) int {
		l := g.Label(t)
		switch {
		case l.IsDummy:
			return 1
		case g.Signal(l.Signal).Kind == stg.Input:
			return 2
		default:
			return 0
		}
	}

	var out []candidate
	for rise := petri.TransitionID(0); int(rise) < m; rise++ {
		if len(c.edgesByTrans[rise]) == 0 {
			continue // never fires: the new signal would never rise
		}
		for fall := petri.TransitionID(0); int(fall) < m; fall++ {
			if rise == fall || len(c.edgesByTrans[fall]) == 0 {
				continue
			}
			if !c.color(rise, fall) {
				continue
			}
			sep := 0
			for _, cf := range conflicts {
				if c.value[cf.StateA] != c.value[cf.StateB] {
					sep++
				}
			}
			if sep == 0 {
				continue // the new signal would not distinguish any conflict
			}
			out = append(out, candidate{
				rise:      rise,
				fall:      fall,
				separated: sep,
				penalty:   penalty(rise) + penalty(fall),
				initHigh:  c.value[0] == 1,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].separated != out[j].separated {
			return out[i].separated > out[j].separated
		}
		if out[i].penalty != out[j].penalty {
			return out[i].penalty < out[j].penalty
		}
		if out[i].rise != out[j].rise {
			return out[i].rise < out[j].rise
		}
		return out[i].fall < out[j].fall
	})
	return out
}
