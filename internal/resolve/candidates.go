package resolve

import (
	"sort"
	"sync"
	"sync/atomic"

	"punt/internal/petri"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// candidate is one feasible insertion: the new signal rises in series after
// rise and falls in series after fall.
type candidate struct {
	rise, fall petri.TransitionID
	// separated is the number of conflicting state pairs the induced value
	// assignment distinguishes.
	separated int
	// penalty prefers insertion points on output/internal transitions over
	// dummies and inputs (classic practice: the inserted state signal should
	// follow the circuit's own events where possible).
	penalty int
	// initHigh is the induced initial value of the new signal.
	initHigh bool
}

// colorer computes, for transition pairs over one state graph, the value
// assignment a serially inserted toggle signal would take: rise edges force
// 0→1, fall edges force 1→0, every other edge forces equality.  The
// incidence structures are built once and reused across pairs.
type colorer struct {
	sg           *stategraph.Graph
	edgesByTrans [][]int
	inc          [][]half
	value        []int8
	stack        []int
}

// half is one undirected incidence entry of the equality propagation.
type half struct {
	other int // neighbouring state
	trans petri.TransitionID
}

func newColorer(sg *stategraph.Graph) *colorer {
	m := sg.STG.Net().NumTransitions()
	c := &colorer{
		sg:           sg,
		edgesByTrans: make([][]int, m),
		inc:          make([][]half, len(sg.States)),
		value:        make([]int8, len(sg.States)),
	}
	for e := range sg.Edges {
		t := sg.Edges[e].Transition
		c.edgesByTrans[t] = append(c.edgesByTrans[t], e)
	}
	for _, e := range sg.Edges {
		c.inc[e.From] = append(c.inc[e.From], half{other: e.To, trans: e.Transition})
		c.inc[e.To] = append(c.inc[e.To], half{other: e.From, trans: e.Transition})
	}
	return c
}

// color computes the assignment induced by (rise, fall) into c.value and
// reports whether the constraints are satisfiable.
func (c *colorer) color(rise, fall petri.TransitionID) bool {
	sg := c.sg
	for i := range c.value {
		c.value[i] = -1
	}
	c.stack = c.stack[:0]
	assign := func(s int, v int8) bool {
		if c.value[s] == -1 {
			c.value[s] = v
			c.stack = append(c.stack, s)
			return true
		}
		return c.value[s] == v
	}
	for _, e := range c.edgesByTrans[rise] {
		if !assign(sg.Edges[e].From, 0) || !assign(sg.Edges[e].To, 1) {
			return false
		}
	}
	for _, e := range c.edgesByTrans[fall] {
		if !assign(sg.Edges[e].From, 1) || !assign(sg.Edges[e].To, 0) {
			return false
		}
	}
	for len(c.stack) > 0 {
		s := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		for _, h := range c.inc[s] {
			if h.trans == rise || h.trans == fall {
				continue // toggle edges were anchored above
			}
			if !assign(h.other, c.value[s]) {
				return false
			}
		}
	}
	return true
}

// colorAssignment computes the per-state toggle value induced by the pair
// (rise, fall) on its own — the form the incremental revalidation needs.  The
// returned slice is freshly allocated; ok is false when the pair admits no
// consistent assignment.
func colorAssignment(sg *stategraph.Graph, rise, fall petri.TransitionID) (value []int8, ok bool) {
	c := newColorer(sg)
	if !c.color(rise, fall) {
		return nil, false
	}
	return append([]int8(nil), c.value...), true
}

// findCandidates enumerates every ordered transition pair (rise, fall) whose
// serial insertion admits a consistent value assignment of the new signal
// over the state graph, and ranks the feasible ones: most conflict pairs
// separated first, then lowest insertion-point penalty, then deterministic
// transition order.
//
// workers > 1 shards the enumeration by rise transition across that many
// goroutines, each with its own colorer (the shared scratch is not safe for
// concurrent use).  The result is identical to the sequential scan: per-rise
// candidate lists are produced in the same inner-loop order whichever worker
// claims them, flattened in rise order, and the final ranking sort is a total
// order over unique (rise, fall) pairs — so the parallel path is a pure
// throughput knob, exactly like the unfolding pool's.
func findCandidates(sg *stategraph.Graph, conflicts []stategraph.CSCConflict, workers int) []candidate {
	g := sg.STG
	m := g.Net().NumTransitions()

	penalty := func(t petri.TransitionID) int {
		l := g.Label(t)
		switch {
		case l.IsDummy:
			return 1
		case g.Signal(l.Signal).Kind == stg.Input:
			return 2
		default:
			return 0
		}
	}

	// scanRise appends every feasible (rise, *) candidate in fall order.
	scanRise := func(c *colorer, rise petri.TransitionID, out []candidate) []candidate {
		for fall := petri.TransitionID(0); int(fall) < m; fall++ {
			if rise == fall || len(c.edgesByTrans[fall]) == 0 {
				continue
			}
			if !c.color(rise, fall) {
				continue
			}
			sep := 0
			for _, cf := range conflicts {
				if c.value[cf.StateA] != c.value[cf.StateB] {
					sep++
				}
			}
			if sep == 0 {
				continue // the new signal would not distinguish any conflict
			}
			out = append(out, candidate{
				rise:      rise,
				fall:      fall,
				separated: sep,
				penalty:   penalty(rise) + penalty(fall),
				initHigh:  c.value[0] == 1,
			})
		}
		return out
	}

	var out []candidate
	if workers > 1 && m > 1 {
		perRise := make([][]candidate, m)
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicMu sync.Mutex
		var panicked any
		if workers > m {
			workers = m
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// A panic on a bare goroutine bypasses every recover up the
				// stack and kills the process: capture the first one and
				// re-raise it on the coordinating goroutine below.
				defer func() {
					if p := recover(); p != nil {
						panicMu.Lock()
						if panicked == nil {
							panicked = p
						}
						panicMu.Unlock()
					}
				}()
				c := newColorer(sg)
				for {
					i := int(next.Add(1)) - 1
					if i >= m {
						return
					}
					rise := petri.TransitionID(i)
					if len(c.edgesByTrans[rise]) == 0 {
						continue // never fires: the new signal would never rise
					}
					perRise[i] = scanRise(c, rise, nil)
				}
			}()
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		for _, cands := range perRise {
			out = append(out, cands...)
		}
	} else {
		c := newColorer(sg)
		for rise := petri.TransitionID(0); int(rise) < m; rise++ {
			if len(c.edgesByTrans[rise]) == 0 {
				continue // never fires: the new signal would never rise
			}
			out = scanRise(c, rise, out)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].separated != out[j].separated {
			return out[i].separated > out[j].separated
		}
		if out[i].penalty != out[j].penalty {
			return out[i].penalty < out[j].penalty
		}
		if out[i].rise != out[j].rise {
			return out[i].rise < out[j].rise
		}
		return out[i].fall < out[j].fall
	})
	return out
}
