package resolve

import (
	"context"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// conflictedGraphs collects state graphs with real CSC conflicts from the
// canonical example plus the random-gadget corpus.
func conflictedGraphs(t *testing.T, want int) []*stategraph.Graph {
	t.Helper()
	var out []*stategraph.Graph
	add := func(g *stg.STG) {
		sg, err := stategraph.Build(context.Background(), g, stategraph.Options{})
		if err != nil {
			return
		}
		if len(sg.CheckCSC()) == 0 {
			return
		}
		out = append(out, sg)
	}
	if g, err := stg.ParseFile("../../testdata/csc.g"); err == nil {
		add(g)
	}
	for seed := int64(0); seed < 200 && len(out) < want; seed++ {
		add(benchgen.RandomSTG(seed, 4+int(seed)%9))
	}
	if len(out) < want {
		t.Fatalf("only %d conflicted graphs found, want %d", len(out), want)
	}
	return out
}

// TestFindCandidatesParallelMatchesSequential pins the satellite's guarantee:
// sharding the (rise, fall) enumeration across workers yields exactly the
// sequential ranking, element by element, at every width.
func TestFindCandidatesParallelMatchesSequential(t *testing.T) {
	for gi, sg := range conflictedGraphs(t, 12) {
		conflicts := sg.CheckCSC()
		seq := findCandidates(sg, conflicts, 1)
		if len(seq) == 0 {
			continue
		}
		for _, workers := range []int{2, 3, 8} {
			par := findCandidates(sg, conflicts, workers)
			if len(par) != len(seq) {
				t.Fatalf("graph %d workers %d: %d candidates, sequential found %d",
					gi, workers, len(par), len(seq))
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("graph %d workers %d: candidate %d = %+v, sequential %+v",
						gi, workers, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestResolveWorkersDeterministic drives the whole resolver at several worker
// counts over the canonical conflicted controller: identical insertions and
// identical counters (CandidatesTried included) at every width.
func TestResolveWorkersDeterministic(t *testing.T) {
	g, err := stg.ParseFile("../../testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	base, baseRep, err := Resolve(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		rg, rep, err := Resolve(context.Background(), g, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stg.Format(rg) != stg.Format(base) {
			t.Fatalf("workers=%d: repaired specification differs from sequential", workers)
		}
		if len(rep.Inserted) != len(baseRep.Inserted) || rep.Iterations != baseRep.Iterations {
			t.Fatalf("workers=%d: insertion record differs from sequential", workers)
		}
		// CandidatesTried legitimately differs across widths (the sequential
		// validator stops at a perfect repair, the parallel one has already
		// started lower ranks), but the counter invariants hold at every
		// width: every tried candidate is accounted for exactly once.
		if rep.CandidatesTried < baseRep.CandidatesTried {
			t.Fatalf("workers=%d: tried %d candidates, fewer than the sequential %d",
				workers, rep.CandidatesTried, baseRep.CandidatesTried)
		}
		if rep.CandidatesFailed > rep.CandidatesTried {
			t.Fatalf("workers=%d: failed %d > tried %d", workers, rep.CandidatesFailed, rep.CandidatesTried)
		}
		if rep.IncrementalBuilds+rep.FullRebuilds+rep.CandidatesFailed != rep.CandidatesTried {
			t.Fatalf("workers=%d: builds(%d+%d)+failed(%d) != tried(%d)", workers,
				rep.IncrementalBuilds, rep.FullRebuilds, rep.CandidatesFailed, rep.CandidatesTried)
		}
	}
}
