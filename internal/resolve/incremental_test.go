package resolve

import (
	"context"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/stategraph"
	"punt/internal/stg"
)

// conflictedSeeds returns up to want RandomSTG seeds whose gadget produced a
// real CSC conflict, paired with their state graphs.
func conflictedSeeds(t *testing.T, want int) []int64 {
	t.Helper()
	ctx := context.Background()
	var seeds []int64
	for seed := int64(0); len(seeds) < want && seed < 20000; seed++ {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		sg, err := stategraph.Build(ctx, g, stategraph.Options{MaxStates: 200000})
		if err != nil {
			continue
		}
		if len(sg.CheckCSC()) == 0 {
			continue
		}
		seeds = append(seeds, seed)
	}
	if len(seeds) < want {
		t.Fatalf("only %d CSC-conflicted seeds found, want %d", len(seeds), want)
	}
	return seeds
}

// TestIncrementalCrossCheck resolves a sweep of conflicted specifications
// with DebugCheck on: every incrementally extended state graph is compared
// against a full rebuild inside the resolver, so a single divergence fails
// the run.  It also asserts incrementality actually engages — a threshold
// mistuned to always miss would silently degrade to full rebuilds.
func TestIncrementalCrossCheck(t *testing.T) {
	ctx := context.Background()
	n := 30
	if testing.Short() {
		n = 8
	}
	totalIncremental := 0
	for _, seed := range conflictedSeeds(t, n) {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		_, rep, err := Resolve(ctx, g, Options{MaxStates: 200000, DebugCheck: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalIncremental += rep.IncrementalBuilds
		if rep.StatesReused == 0 && rep.IncrementalBuilds > 0 {
			t.Fatalf("seed %d: incremental builds reported but no states reused", seed)
		}
	}
	if totalIncremental == 0 {
		t.Fatal("incremental revalidation never engaged across the sweep")
	}
	t.Logf("cross-checked %d incremental builds", totalIncremental)
}

// TestIncrementalMatchesFullRebuild asserts the observable contract: the
// resolved STG (inserted signals, rise/fall anchors, remaining-conflict
// trajectory) is identical whether candidate validation rebuilds from
// scratch or extends the parent graph.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	ctx := context.Background()
	n := 20
	if testing.Short() {
		n = 6
	}
	for _, seed := range conflictedSeeds(t, n) {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		rgInc, repInc, errInc := Resolve(ctx, g, Options{MaxStates: 200000})
		rgFull, repFull, errFull := Resolve(ctx, g, Options{MaxStates: 200000, FullRebuild: true})
		if (errInc == nil) != (errFull == nil) {
			t.Fatalf("seed %d: incremental err %v vs full-rebuild err %v", seed, errInc, errFull)
		}
		if errInc != nil {
			continue
		}
		if repFull.IncrementalBuilds != 0 || repFull.StatesReused != 0 {
			t.Fatalf("seed %d: FullRebuild mode still reports incremental builds", seed)
		}
		if got, want := stg.Format(rgInc), stg.Format(rgFull); got != want {
			t.Fatalf("seed %d: incremental and full-rebuild resolutions diverge:\n%s\nvs\n%s", seed, got, want)
		}
		if len(repInc.Inserted) != len(repFull.Inserted) {
			t.Fatalf("seed %d: inserted %d signals incrementally, %d with full rebuilds",
				seed, len(repInc.Inserted), len(repFull.Inserted))
		}
		for i := range repInc.Inserted {
			if repInc.Inserted[i] != repFull.Inserted[i] {
				t.Fatalf("seed %d: insertion %d differs: %s vs %s",
					seed, i, repInc.Inserted[i], repFull.Inserted[i])
			}
		}
	}
}

// TestParallelValidationDeterministic asserts the Workers fan-out picks the
// same winner as the sequential rank scan, seed by seed.
func TestParallelValidationDeterministic(t *testing.T) {
	ctx := context.Background()
	n := 15
	if testing.Short() {
		n = 5
	}
	for _, seed := range conflictedSeeds(t, n) {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		rgSeq, repSeq, errSeq := Resolve(ctx, g, Options{MaxStates: 200000})
		rgPar, repPar, errPar := Resolve(ctx, g, Options{MaxStates: 200000, Workers: 8})
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("seed %d: sequential err %v vs parallel err %v", seed, errSeq, errPar)
		}
		if errSeq != nil {
			continue
		}
		if got, want := stg.Format(rgPar), stg.Format(rgSeq); got != want {
			t.Fatalf("seed %d: parallel validation resolved a different STG", seed)
		}
		if len(repPar.Inserted) != len(repSeq.Inserted) {
			t.Fatalf("seed %d: parallel inserted %d signals, sequential %d",
				seed, len(repPar.Inserted), len(repSeq.Inserted))
		}
	}
}

// TestCandidatesFailedCounted asserts the failure-accounting satellite: a
// resolution run that tries candidates must report how many were tried, and
// the failed count can no longer vanish silently (it is bounded by tried).
func TestCandidatesFailedCounted(t *testing.T) {
	ctx := context.Background()
	for _, seed := range conflictedSeeds(t, 10) {
		g := benchgen.RandomSTG(seed, 4+int(seed)%9)
		_, rep, err := Resolve(ctx, g, Options{MaxStates: 200000})
		if err != nil {
			continue
		}
		if rep.CandidatesTried == 0 {
			t.Fatalf("seed %d: resolution succeeded without trying any candidate", seed)
		}
		if rep.CandidatesFailed > rep.CandidatesTried {
			t.Fatalf("seed %d: failed %d > tried %d", seed, rep.CandidatesFailed, rep.CandidatesTried)
		}
		if rep.IncrementalBuilds+rep.FullRebuilds+rep.CandidatesFailed != rep.CandidatesTried {
			t.Fatalf("seed %d: builds %d+%d plus failures %d do not account for %d tried",
				seed, rep.IncrementalBuilds, rep.FullRebuilds, rep.CandidatesFailed, rep.CandidatesTried)
		}
	}
}
