package lint

import (
	"strings"
	"testing"
)

// Each analyzer runs over its fixture package, which pairs at least one true
// positive (a `// want` line) with negative cases that must stay silent.
func TestMapIterDetFixture(t *testing.T) { RunFixture(t, ".", "mapiterdet", MapIterDet) }

func TestCtxDisciplineFixture(t *testing.T) { RunFixture(t, ".", "ctxdiscipline", CtxDiscipline) }

func TestDiagBoundaryFixture(t *testing.T) { RunFixture(t, ".", "diagboundary", DiagBoundary) }

func TestGoHygieneFixture(t *testing.T) { RunFixture(t, ".", "gohygiene", GoHygiene) }

func TestPureKeyFixture(t *testing.T) { RunFixture(t, ".", "purekey", PureKey) }

// TestDiagBoundarySuggestedFix checks the mechanical %v→%w rewrite that
// `puntlint -fix` applies: the edit replaces the whole format literal and
// the rewritten literal carries %w where %v stood.
func TestDiagBoundarySuggestedFix(t *testing.T) {
	prog, err := Load(".", "./testdata/src/diagboundary")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: DiagBoundary, Prog: prog, Pkg: prog.Packages[0], Fset: prog.Fset, diags: &diags}
	if err := DiagBoundary.Run(pass); err != nil {
		t.Fatal(err)
	}
	fixes := 0
	for _, d := range diags {
		for _, fix := range d.Fixes {
			fixes++
			if len(fix.Edits) != 1 {
				t.Fatalf("fix %q has %d edits, want 1", fix.Message, len(fix.Edits))
			}
			edit := fix.Edits[0]
			if !strings.Contains(edit.New, "%w") {
				t.Errorf("fix %q rewrites to %q, which has no %%w", fix.Message, edit.New)
			}
			if strings.Contains(edit.New, "%v") || strings.Contains(edit.New, "%s") {
				t.Errorf("fix %q leaves the flattening verb in %q", fix.Message, edit.New)
			}
			if edit.End <= edit.Pos {
				t.Errorf("fix %q has an empty edit range", fix.Message)
			}
		}
	}
	if fixes != 2 {
		t.Errorf("got %d suggested fixes, want 2 (one per flattened verb)", fixes)
	}
}
