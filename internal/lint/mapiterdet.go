package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIterDet guards the byte-identical-output guarantee: in the packages
// that produce deterministic artifacts (unfolding segments, state graphs,
// covers, gate netlists), iterating a map while appending to a slice,
// writing output or feeding a hash bakes Go's randomized map order into the
// artifact unless a deterministic sort follows.  This is exactly the class
// of bug that would silently break the Workers(1)≡Workers(N) segment
// equality enforced since PR 8.
var MapIterDet = &Analyzer{
	Name: "mapiterdet",
	Doc: "flags `for range` over a map whose body appends to a slice, writes output or feeds\n" +
		"a hash without a subsequent deterministic sort, in the determinism-critical packages\n" +
		"(internal/{unfolding,stategraph,resolve,boolcover,gatelib} and gates)",
	Filter: func(pkg *Package) bool {
		return pathHasSuffix(pkg.PkgPath,
			"internal/unfolding", "internal/stategraph", "internal/resolve",
			"internal/boolcover", "internal/gatelib", "gates")
	},
	Run: runMapIterDet,
}

func runMapIterDet(pass *Pass) error {
	for _, f := range pass.Pkg.Syntax {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sink := orderSink(pass, rng)
			if sink == "" {
				return true
			}
			if sortedAfter(pass, rng, stack) {
				return true
			}
			pass.Reportf(rng.For,
				"map iteration feeds an order-sensitive sink (%s) with no deterministic sort after the loop; "+
					"map order is randomized and will break byte-identical output — collect into a slice and sort it, "+
					"or sort the keys first", sink)
			return true
		})
	}
	return nil
}

// orderSink classifies the loop body's first order-sensitive operation:
// appending to a variable declared outside the loop, writing through a
// Write*/Fprint*/Print*/Sum/Encode-shaped callee, or sending on a channel.
func orderSink(pass *Pass, rng *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "append" && appendEscapesLoop(pass, n, rng) {
					sink = "append to a slice declared outside the loop"
					return false
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Fprint") ||
					strings.HasPrefix(name, "Print") || name == "Sum" || name == "Encode" {
					sink = "call to " + name
					return false
				}
			}
		}
		return true
	})
	return sink
}

// appendEscapesLoop reports whether the append target is declared outside
// the range statement — appends to loop-local scratch are order-free as long
// as the scratch doesn't escape, and the escape would be its own append.
func appendEscapesLoop(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		// append to a field or index expression: treat as escaping.
		return true
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a sort call follows the range statement inside
// the enclosing function — `sort.X(...)`, `slices.SortX(...)` or any callee
// whose name contains "sort"/"Sort" (the project's canonicalizing helpers).
func sortedAfter(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	fn := enclosingFunc(stack)
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if pkg, name := pass.pkgFunc(call); pkg == "sort" || pkg == "slices" ||
			strings.Contains(name, "sort") || strings.Contains(name, "Sort") {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}
