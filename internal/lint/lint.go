// Package lint is the project's static-analysis suite: a set of analyzers
// that turn the reproduction's cross-cutting invariants — deterministic
// output, context discipline, the *Diagnostic error taxonomy, goroutine
// hygiene and cache-key purity — into checked, un-mergeable properties
// instead of conventions.
//
// The package deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, suggested fixes, analysistest-style fixture
// runs) but is built entirely on the standard library (go/ast, go/types and a
// `go list -json -deps` loader), because the module has no external
// dependencies.  Should the repo ever vendor x/tools, each analyzer's Run
// function ports over mechanically.
//
// The enforced invariants, one analyzer each:
//
//   - mapiterdet: no map iteration feeding an order-sensitive sink (slice
//     append, writer, hash) without a subsequent deterministic sort, in the
//     packages that must produce byte-identical artifacts.
//   - ctxdiscipline: no context.Background/TODO outside main packages and
//     tests (except the nil-guard default at a public entry point), and no
//     blocking channel operation in a context-carrying function without a
//     ctx.Done() arm.
//   - diagboundary: errors are wrapped with %w, never flattened with %v/%s,
//     and the public facade returns *punt.Diagnostic values, not bare
//     errors.New/fmt.Errorf results.
//   - gohygiene: no bare `go` launch in library code that bypasses the
//     central panic-recovery machinery.
//   - purekey: nothing reachable from Spec.Hash, cacheKey, EncodeResult or
//     the diskstore envelope paths may consult time.Now or math/rand.
//
// A justified exception is recorded in the source with
//
//	//puntlint:ignore <analyzer>[,<analyzer>] <reason>
//
// on (or immediately above) the offending line; the reason is mandatory and
// an ignore directive that never matches a diagnostic is itself an error, so
// stale exceptions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the one-paragraph description printed by `puntlint -list`.
	Doc string
	// Filter restricts the packages the analyzer runs on (nil = every module
	// package).  Fixture runs bypass the filter, so analyzers keep their
	// scoping logic here rather than hard-coding package paths in Run.
	Filter func(pkg *Package) bool
	// Run reports the package's findings through pass.Report*.
	Run func(pass *Pass) error
}

// All is the project's analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIterDet,
		CtxDiscipline,
		DiagBoundary,
		GoHygiene,
		PureKey,
	}
}

// ByName resolves one analyzer from All.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fixes are mechanical rewrites that resolve the finding; `puntlint -fix`
	// applies them.
	Fixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with New.
type TextEdit struct {
	Pos, End token.Pos
	New      string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding, stamping the analyzer name.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the static type of e in this package, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Run executes the analyzers over every module package of prog and returns
// the surviving findings sorted by position.  Ignore directives
// (//puntlint:ignore name reason) suppress matching findings on their own or
// the following line; directives without a reason, and directives that
// suppress nothing, are reported as findings themselves so the exception
// inventory stays honest.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			if a.Filter != nil && !a.Filter(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Fset: prog.Fset, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = applyIgnores(prog, diags, ran)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// An ignoreDirective is one parsed //puntlint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int // diagnostics on this line or the next are candidates
	analyzers []string
	reason    string
	used      bool
}

const ignorePrefix = "//puntlint:ignore"

func parseIgnores(prog *Program) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					pos := prog.Fset.Position(c.Pos())
					d := &ignoreDirective{pos: c.Pos(), file: pos.Filename, line: pos.Line}
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						d.analyzers = strings.Split(fields[0], ",")
						d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs
}

func (d *ignoreDirective) matches(name, file string, line int) bool {
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// applyIgnores filters diags through the ignore directives and appends the
// directive-discipline findings (missing reason, stale directive).  Staleness
// is only judged for directives whose analyzers all ran: a partial run must
// not condemn a directive it never gave the chance to match.
func applyIgnores(prog *Program, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	dirs := parseIgnores(prog)
	var kept []Diagnostic
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if len(dir.analyzers) > 0 && dir.reason != "" && dir.matches(d.Analyzer, pos.Filename, pos.Line) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		switch {
		case len(dir.analyzers) == 0 || dir.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "puntlint",
				Message:  "ignore directive needs an analyzer name and a reason: //puntlint:ignore <analyzer> <reason>",
			})
		case !dir.used && allRan(dir.analyzers, ran):
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "puntlint",
				Message:  fmt.Sprintf("stale ignore directive: no %s finding on this or the next line", strings.Join(dir.analyzers, ",")),
			})
		}
	}
	return kept
}

func allRan(names []string, ran map[string]bool) bool {
	for _, n := range names {
		if !ran[n] {
			return false
		}
	}
	return true
}
