// Package mapiterdet exercises the map-iteration determinism analyzer:
// map ranges feeding order-sensitive sinks must be followed by a sort.
package mapiterdet

import (
	"fmt"
	"io"
	"sort"
)

// collect bakes randomized map order into the returned slice.
func collect(m map[string]int) []string {
	var names []string
	for name := range m { // want `map iteration feeds an order-sensitive sink \(append to a slice declared outside the loop\)`
		names = append(names, name)
	}
	return names
}

// collectSorted is the canonical repair: collect, then sort.
func collectSorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// dump writes entries in randomized order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `order-sensitive sink \(call to Fprintf\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// sendAll delivers entries on a channel in randomized order.
func sendAll(m map[string]int, ch chan int) {
	for _, v := range m { // want `order-sensitive sink \(channel send\)`
		ch <- v
	}
}

// overSlice ranges a slice, which iterates in index order.
func overSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// localScratch appends only to a loop-local slice; the aggregate it feeds
// (an integer sum) is order-free.
func localScratch(m map[string]int) int {
	total := 0
	for _, v := range m {
		buf := make([]int, 0, 1)
		buf = append(buf, v)
		total += buf[0]
	}
	return total
}

// keysFirst sorts the key set before iterating — but the analyzer keys on
// the sink, and here the body only reads.
func keysFirst(m map[string]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
