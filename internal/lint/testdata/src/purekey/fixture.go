// Package purekey exercises the cache-key purity analyzer: nothing reachable
// from a Hash method or a cacheKey function may consult the clock or a
// random source.
package purekey

import (
	"fmt"
	"time"
)

// Spec's Hash is a pure-key root with a pure call tree.
type Spec struct {
	text string
}

func (s *Spec) Hash() string {
	return canonical(s.text)
}

func canonical(text string) string {
	return fmt.Sprintf("%x", len(text))
}

// stamped's Hash reaches the clock two calls down.
type stamped struct{ text string }

func (s *stamped) Hash() string {
	return stamp(s.text)
}

func stamp(text string) string {
	return fmt.Sprintf("%s@%d", text, time.Now().UnixNano()) // want `time.Now reachable from Hash`
}

// cacheKey mixes a clock-derived salt into a content address.
func cacheKey(spec *Spec) string {
	return spec.Hash() + salt()
}

func salt() string {
	return fmt.Sprint(time.Now().Unix()) // want `time.Now reachable from cacheKey`
}

// latency is not a key root: timing instrumentation is fine here.
func latency(start time.Time) time.Duration {
	return time.Since(start)
}
