// Package diagboundary exercises the error-boundary analyzer: errors wrap
// with %w, and exported functions never return bare error constructors.
package diagboundary

import (
	"errors"
	"fmt"
)

var errBase = errors.New("diagboundary: base failure")

// flatten breaks the errors.Is/As chain.
func flatten(err error) error {
	return fmt.Errorf("operation failed: %v", err) // want `error formatted with %v instead of wrapped with %w`
}

// flattenS breaks the chain just the same.
func flattenS(err error) error {
	return fmt.Errorf("operation failed: %s", err) // want `error formatted with %s instead of wrapped with %w`
}

// wrap preserves the chain.
func wrap(err error) error {
	return fmt.Errorf("operation failed: %w", err)
}

// quoted formatting of an error is deliberate rendering, not wrapping.
func quoted(err error) string {
	return fmt.Sprintf("%q", err)
}

// Exported returns a bare constructor across the public boundary.
func Exported() error {
	return errors.New("bare failure") // want `exported Exported returns a bare errors.New`
}

// ExportedF returns an unwrapped fmt.Errorf across the public boundary.
func ExportedF(n int) error {
	return fmt.Errorf("bad value %d", n) // want `exported ExportedF returns a bare fmt.Errorf with no %w`
}

// ExportedWrapped routes through a matchable sentinel.
func ExportedWrapped(n int) error {
	return fmt.Errorf("%w: value %d", errBase, n)
}

// helper is unexported: raw constructors inside the package are fine.
func helper() error {
	return errors.New("internal detail")
}

// ExportedCallback's nested literal returns never cross the boundary.
func ExportedCallback(run func() error) error {
	cb := func() error { return errors.New("inner detail") }
	if err := cb(); err != nil {
		return fmt.Errorf("%w: callback failed", errBase)
	}
	return run()
}
