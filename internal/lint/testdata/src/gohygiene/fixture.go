// Package gohygiene exercises the goroutine-hygiene analyzer: library
// goroutines must recover their own panics.
package gohygiene

// namedLaunch cannot recover anything: a panic in f kills the process.
func namedLaunch(f func()) {
	go f() // want `goroutine launched on a named function`
}

// bareLiteral has no recovery either.
func bareLiteral(work func()) {
	go func() { // want `goroutine body has no deferred recover`
		work()
	}()
}

// recovered follows the portfolio-contender idiom.
func recovered(work func()) {
	go func() {
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

// recoverHelper delegates to a helper whose name says what it does.
func recoverHelper(work func()) {
	go func() {
		defer recoverToLog()
		work()
	}()
}

func recoverToLog() {
	_ = recover()
}

// nestedDeferDoesNotCount: the inner literal's recover protects only the
// inner call, not the goroutine body itself.
func nestedDeferDoesNotCount(work func()) {
	go func() { // want `goroutine body has no deferred recover`
		inner := func() {
			defer func() { _ = recover() }()
			work()
		}
		inner()
	}()
}
