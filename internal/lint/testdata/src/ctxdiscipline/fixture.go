// Package ctxdiscipline exercises the context-discipline analyzer: no fresh
// contexts in library code, no unguarded blocking channel ops in
// context-carrying functions.
package ctxdiscipline

import "context"

// fresh detaches its work from every caller.
func fresh() context.Context {
	return context.Background() // want `context.Background in library code`
}

// todo is a placeholder that never got replaced.
func todo() context.Context {
	return context.TODO() // want `context.TODO in library code`
}

// entryPoint uses the allowed nil-guard default.
func entryPoint(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// blockingSend hangs forever if the receiver is gone after cancellation.
func blockingSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `blocking channel send in a context-carrying function`
}

// blockingRecv hangs forever if the sender is gone after cancellation.
func blockingRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `blocking channel receive in a context-carrying function`
}

// guardedSend has the cancellation escape hatch.
func guardedSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

// defaultGuard never blocks.
func defaultGuard(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// noCtx advertises no cancellability, so it is not held to the rule.
func noCtx(ch chan int) {
	ch <- 1
}
