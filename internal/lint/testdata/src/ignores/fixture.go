// Package ignores exercises the //puntlint:ignore directive discipline:
// suppression with a reason, staleness detection, and the mandatory reason.
package ignores

import "context"

// suppressed carries a justified exception.
func suppressed() context.Context {
	//puntlint:ignore ctxdiscipline fixture exercises the suppression path
	return context.Background()
}

// unsuppressed is the finding that must survive.
func unsuppressed() context.Context {
	return context.Background()
}

// clean has a directive that matches nothing: the directive itself is stale.
func clean() int {
	//puntlint:ignore ctxdiscipline this directive suppresses nothing
	return 0
}

// missingReason's directive names no justification, so it neither
// suppresses nor passes.
func missingReason() context.Context {
	//puntlint:ignore ctxdiscipline
	return context.Background()
}
