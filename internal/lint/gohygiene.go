package lint

import (
	"go/ast"
	"strings"
)

// GoHygiene guards the goroutine discipline the chaos harness (PR 6)
// enforces dynamically: a goroutine in library code that panics takes the
// whole process down — recover in the *parent* does not help — so every
// launch must either recover its own panics or be a documented part of the
// central pool/watchdog machinery (recorded with a //puntlint:ignore and a
// reason, which keeps the exception inventory greppable).
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc: "flags bare `go` launches in non-main, non-test code whose function body does not\n" +
		"defer a recover: a panicking goroutine kills the process, bypassing the central\n" +
		"panic-recovery machinery (runBackend, the portfolio's last-line recover, LeakCheck)",
	Filter: func(pkg *Package) bool { return !pkg.IsMain },
	Run:    runGoHygiene,
}

func runGoHygiene(pass *Pass) error {
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(stmt.Pos(),
					"goroutine launched on a named function: a panic inside it kills the process; "+
						"wrap it in a func literal with a deferred recover, or justify with an ignore directive")
				return true
			}
			if !deferredRecover(lit) {
				pass.Reportf(stmt.Pos(),
					"goroutine body has no deferred recover: a panic here kills the process instead of "+
						"failing the one request (see the portfolio contender's last-line recover for the idiom)")
			}
			return true
		})
	}
	return nil
}

// deferredRecover reports whether the function literal's own body (not a
// nested literal) defers a call that mentions recover — either the built-in
// directly or a helper whose name says so (handlePanic, recoverToDiag, ...).
func deferredRecover(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested literal's defers don't protect this one
		case *ast.DeferStmt:
			if mentionsIdent(n.Call, "recover") || mentionsName(n.Call, "ecover") || mentionsName(n.Call, "anic") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsName reports whether any identifier in the subtree contains frag.
func mentionsName(n ast.Node, frag string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && strings.Contains(id.Name, frag) {
			found = true
		}
		return !found
	})
	return found
}
