package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PureKey guards cache-key and serialization purity (PRs 4/7): Spec.Hash,
// cacheKey, EncodeResult and the diskstore envelope are content addresses —
// two runs over the same input must produce the same bytes, across
// processes and replicas sharing one store.  A time.Now or math/rand call
// reachable from those paths poisons every key it touches, so the analyzer
// walks the static call graph from the key/envelope roots and flags any
// impure call it can reach.
var PureKey = &Analyzer{
	Name: "purekey",
	Doc: "flags time.Now/time.Since and math/rand calls statically reachable from Spec.Hash,\n" +
		"cacheKey, EncodeResult/DecodeResult or the diskstore envelope paths — impurity there\n" +
		"breaks content addressing across runs and replicas",
	Run: runPureKey,
}

// pureKeyRoots matches the functions whose call trees must stay pure.
func pureKeyRoots(pass *Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	switch {
	case name == "cacheKey", name == "CacheKey", name == "EncodeResult", name == "DecodeResult":
		return true
	case name == "Hash" && fn.Recv != nil:
		return true
	case pathHasSuffix(pass.Pkg.PkgPath, "internal/diskstore") && fn.Name.IsExported():
		return true
	}
	return false
}

func runPureKey(pass *Pass) error {
	graph := pass.Prog.callGraph()
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pureKeyRoots(pass, fn) {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			reportImpure(pass, graph, obj)
		}
	}
	return nil
}

// reportImpure BFSes the static call graph from root and reports every
// impure call site reachable from it, with the call chain in the message.
func reportImpure(pass *Pass, graph map[*types.Func][]callEdge, root *types.Func) {
	type step struct {
		fn    *types.Func
		chain string
	}
	seen := map[*types.Func]bool{root: true}
	queue := []step{{root, root.Name()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range graph[cur.fn] {
			if impure, what := impureCallee(edge.callee); impure {
				pass.Reportf(edge.pos,
					"%s reachable from %s (via %s): key/envelope paths must be pure — "+
						"derive content addresses only from the input bytes", what, root.Name(), cur.chain)
				continue
			}
			if edge.callee == nil || seen[edge.callee] {
				continue
			}
			seen[edge.callee] = true
			queue = append(queue, step{edge.callee, cur.chain + " → " + edge.callee.Name()})
		}
	}
}

// impureCallee classifies the functions forbidden on pure paths.
func impureCallee(fn *types.Func) (bool, string) {
	if fn == nil || fn.Pkg() == nil {
		return false, ""
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
		return true, "time." + fn.Name()
	case pkg == "math/rand" || pkg == "math/rand/v2":
		return true, pkg + "." + fn.Name()
	case pkg == "crypto/rand":
		return true, "crypto/rand." + fn.Name()
	}
	return false, ""
}

// A callEdge is one static call site inside a module function.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// callGraph builds (once per Program) the static call graph of the module's
// packages: for every declared function, the named functions and methods its
// body invokes directly.  Dynamic dispatch through interfaces and func
// values is invisible — acceptable for the purity check, whose paths are
// concrete by construction.
func (prog *Program) callGraph() map[*types.Func][]callEdge {
	if prog.graph != nil {
		return prog.graph
	}
	graph := make(map[*types.Func][]callEdge)
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var id *ast.Ident
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						id = fun
					case *ast.SelectorExpr:
						id = fun.Sel
					default:
						return true
					}
					if callee, ok := pkg.Info.Uses[id].(*types.Func); ok {
						graph[caller] = append(graph[caller], callEdge{callee: callee, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	prog.graph = graph
	return graph
}
