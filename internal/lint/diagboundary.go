package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// DiagBoundary guards the *punt.Diagnostic error taxonomy (PRs 2/5/6): the
// facade promises structured, errors.Is-matchable failures, which dies the
// moment an error is flattened into text with %v/%s or a bare
// errors.New/fmt.Errorf escapes an exported entry point un-wrapped.
var DiagBoundary = &Analyzer{
	Name: "diagboundary",
	Doc: "flags fmt.Errorf that formats an error with %v/%s instead of wrapping it with %w\n" +
		"(suggested fix rewrites the verb), and exported facade/server functions returning a\n" +
		"bare errors.New/fmt.Errorf instead of a *punt.Diagnostic or a %w-wrapped sentinel",
	Run: runDiagBoundary,
}

func runDiagBoundary(pass *Pass) error {
	for _, f := range pass.Pkg.Syntax {
		checkErrorfWrapping(pass, f)
		if isFacadePackage(pass.Pkg) {
			checkBareBoundaryErrors(pass, f)
		}
	}
	return nil
}

// isFacadePackage reports whether pkg is part of the public boundary: the
// module root (the punt facade), the server package, or a cmd binary.  Lint
// fixtures count as facade so the boundary check is exercisable under
// analysistest.
func isFacadePackage(pkg *Package) bool {
	return !strings.Contains(pkg.PkgPath, "/") || // module root ("punt")
		pathHasSuffix(pkg.PkgPath, "server") ||
		strings.Contains(pkg.PkgPath, "/cmd/") ||
		strings.Contains(pkg.PkgPath, "lint/testdata/")
}

// checkErrorfWrapping flags fmt.Errorf calls that pass an error value to a
// %v/%s/%d verb: the chain breaks (errors.Is/As stop seeing the cause) and
// the fix — flipping the verb to %w — is mechanical, so it ships as a
// suggested fix.
func checkErrorfWrapping(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pass.isCallTo(call, "fmt", "Errorf") || len(call.Args) < 2 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		verbs := formatVerbs(format)
		if len(verbs) != len(call.Args)-1 {
			return true // indexed/starred/mismatched format: out of scope
		}
		for i, v := range verbs {
			arg := call.Args[i+1]
			if v.letter == 'w' || !isErrorType(pass.TypeOf(arg)) {
				continue
			}
			if v.letter != 'v' && v.letter != 's' {
				continue // %q, %T, %p of an error are deliberate formatting
			}
			d := Diagnostic{
				Pos: arg.Pos(),
				Message: fmt.Sprintf("error formatted with %%%c instead of wrapped with %%w: "+
					"errors.Is/As lose the cause across this boundary", v.letter),
			}
			// The verb byte sits inside the (possibly escaped) string
			// literal; rewrite the whole literal so the edit is exact.
			fixed := format[:v.offset] + "%w" + format[v.offset+v.width:]
			d.Fixes = []SuggestedFix{{
				Message: fmt.Sprintf("replace %%%c with %%w", v.letter),
				Edits: []TextEdit{{
					Pos: lit.Pos(),
					End: lit.End(),
					New: strconv.Quote(fixed),
				}},
			}}
			pass.Report(d)
		}
		return true
	})
}

// A verb is one % directive of a format string.
type verb struct {
	offset int // byte offset of '%' in the unquoted format
	width  int // bytes from '%' through the verb letter
	letter byte
}

// formatVerbs extracts the argument-consuming verbs of a fmt format string,
// in order.  Flags and numeric width/precision are skipped; `%%` consumes no
// argument; `*` and explicit argument indexes make the mapping positional
// and are reported as a nil slice (callers skip those formats).
func formatVerbs(format string) []verb {
	var verbs []verb
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		start := i
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '*', '[':
			return nil
		}
		verbs = append(verbs, verb{offset: start, width: i - start + 1, letter: format[i]})
	}
	return verbs
}

// checkBareBoundaryErrors flags exported functions and methods of the
// facade packages that return a bare errors.New(...)/fmt.Errorf(...) call
// directly: the boundary contract is *punt.Diagnostic (or a %w-wrapped
// sentinel), so the raw constructor must pass through the diagnose wrapper.
func checkBareBoundaryErrors(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() || !returnsError(pass, fn) {
			continue
		}
		// Walk only this function's own return statements, not those of
		// nested function literals (their results don't cross the boundary).
		var check func(n ast.Node) bool
		check = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					call, ok := ast.Unparen(res).(*ast.CallExpr)
					if !ok {
						continue
					}
					if pass.isCallTo(call, "errors", "New") {
						pass.Reportf(res.Pos(),
							"exported %s returns a bare errors.New: boundary errors must be *punt.Diagnostic "+
								"or a %%w-wrapped sentinel (route it through the diagnose wrapper)", fn.Name.Name)
					}
					if pass.isCallTo(call, "fmt", "Errorf") && !errorfWraps(pass, call) {
						pass.Reportf(res.Pos(),
							"exported %s returns a bare fmt.Errorf with no %%w: boundary errors must be "+
								"*punt.Diagnostic or a %%w-wrapped sentinel", fn.Name.Name)
					}
				}
			}
			return true
		}
		ast.Inspect(fn.Body, check)
	}
}

func returnsError(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, res := range fn.Type.Results.List {
		if t := pass.TypeOf(res.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// errorfWraps reports whether a fmt.Errorf call's format contains %w.
func errorfWraps(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true // dynamic format: give it the benefit of the doubt
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return true
	}
	for _, v := range formatVerbs(format) {
		if v.letter == 'w' {
			return true
		}
	}
	return false
}
