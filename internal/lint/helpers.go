package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack drives fn over every node of f in source order with the stack of
// enclosing nodes (outermost first, n not included).  Returning false from fn
// prunes the subtree.
func walkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// pkgFunc resolves a call expression to the (package path, function name) of
// a package-level function or method it statically invokes, or "" when the
// callee is not a named function (a func value, a conversion, a builtin).
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	obj, ok := p.ObjectOf(id).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// isCallTo reports whether call statically invokes pkgPath.name.
func (p *Pass) isCallTo(call *ast.CallExpr, pkgPath, name string) bool {
	gotPkg, gotName := p.pkgFunc(call)
	return gotPkg == pkgPath && gotName == name
}

// ctxParam returns the object of the function's context.Context parameter,
// or nil when the signature has none.
func (p *Pass) ctxParam(ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.ObjectOf(name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isErrorType reports whether t (or *t) implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// mentionsIdent reports whether the subtree under n references an identifier
// with the given name.
func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// pathHasSuffix reports whether the import path matches one of the given
// suffix components (e.g. "internal/unfolding" matches
// "punt/internal/unfolding").
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
