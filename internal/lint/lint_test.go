package lint

import (
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) resolved")
	}
}

// TestFilters pins the package scoping of the filtered analyzers: fixture
// runs bypass Filter, so nothing else exercises these predicates.
func TestFilters(t *testing.T) {
	in := []string{
		"punt/internal/unfolding", "punt/internal/stategraph", "punt/internal/resolve",
		"punt/internal/boolcover", "punt/internal/gatelib", "punt/gates",
	}
	for _, path := range in {
		if !MapIterDet.Filter(&Package{PkgPath: path}) {
			t.Errorf("mapiterdet skips determinism-critical package %s", path)
		}
	}
	out := []string{"punt", "punt/server", "punt/internal/stg", "punt/internal/bitvec"}
	for _, path := range out {
		if MapIterDet.Filter(&Package{PkgPath: path}) {
			t.Errorf("mapiterdet runs on out-of-scope package %s", path)
		}
	}

	if CtxDiscipline.Filter(&Package{PkgPath: "punt/cmd/punt", IsMain: true}) {
		t.Error("ctxdiscipline runs on a main package")
	}
	if !CtxDiscipline.Filter(&Package{PkgPath: "punt/server"}) {
		t.Error("ctxdiscipline skips library code")
	}
	if GoHygiene.Filter(&Package{PkgPath: "punt/cmd/puntd", IsMain: true}) {
		t.Error("gohygiene runs on a main package")
	}
}

func TestIsFacadePackage(t *testing.T) {
	for _, path := range []string{"punt", "punt/server", "punt/cmd/punt"} {
		if !isFacadePackage(&Package{PkgPath: path}) {
			t.Errorf("%s not treated as facade", path)
		}
	}
	for _, path := range []string{"punt/internal/core", "punt/bench", "punt/gates"} {
		if isFacadePackage(&Package{PkgPath: path}) {
			t.Errorf("%s treated as facade", path)
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	tests := []struct {
		format string
		want   string // verb letters in order, "" for nil (out of scope)
	}{
		{"plain", ""},
		{"%d and %s", "ds"},
		{"%%d is literal", ""},
		{"%+v %#v %10.2f %w", "vvfw"},
		{"%*d", ""},   // starred width: positional, out of scope
		{"%[1]d", ""}, // indexed: out of scope
	}
	for _, tt := range tests {
		verbs := formatVerbs(tt.format)
		var got strings.Builder
		for _, v := range verbs {
			got.WriteByte(v.letter)
		}
		if got.String() != tt.want {
			t.Errorf("formatVerbs(%q) letters = %q, want %q", tt.format, got.String(), tt.want)
		}
	}
}

// TestIgnoreDirectives loads the ignores fixture through the full Run path:
// a reasoned directive suppresses its finding, a stale directive and a
// reasonless directive are findings themselves, and the undirected
// violation survives.
func TestIgnoreDirectives(t *testing.T) {
	prog, err := Load(".", "./testdata/src/ignores")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(prog, []*Analyzer{CtxDiscipline})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	wantSubstrings := []string{
		"ctxdiscipline: context.Background", // unsuppressed()
		"puntlint: stale ignore directive",  // clean()'s directive
		"puntlint: ignore directive needs",  // missingReason()'s directive
		"ctxdiscipline: context.Background", // missingReason() itself: no reason, no suppression
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(wantSubstrings), strings.Join(got, "\n"))
	}
	remaining := append([]string(nil), got...)
	for _, want := range wantSubstrings {
		found := false
		for i, g := range remaining {
			if strings.Contains(g, want) {
				remaining = append(remaining[:i], remaining[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding matching %q in:\n%s", want, strings.Join(got, "\n"))
		}
	}
}

// TestIgnoreDirectivesPartialRun checks that a run which did not include a
// directive's analyzer cannot condemn the directive as stale.
func TestIgnoreDirectivesPartialRun(t *testing.T) {
	prog, err := Load(".", "./testdata/src/ignores")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(prog, []*Analyzer{GoHygiene})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "stale ignore directive") {
			t.Errorf("partial run flagged a directive as stale: %s", d.Message)
		}
	}
	// The reasonless directive is malformed regardless of which analyzers ran.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "ignore directive needs") {
			found = true
		}
	}
	if !found {
		t.Error("partial run did not flag the reasonless directive")
	}
}
