package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader turns `go list -json -deps <patterns>` output into fully
// type-checked packages using only the standard library.  `go list -deps`
// emits every package after its dependencies, so a single forward sweep can
// type-check the whole closure with a map-backed importer.  Packages outside
// the module are checked with IgnoreFuncBodies — the analyzers only need
// their exported shapes — which keeps loading fast and avoids depending on
// the bodies of cgo-flavoured std packages (the loader forces CGO_ENABLED=0
// for the same reason).

// A Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string
	// InModule reports whether the package belongs to the module under
	// analysis (as opposed to std or another dependency).
	InModule bool
	IsMain   bool

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	// TypeErrors collects the package's type-check problems; the driver
	// refuses to trust analysis of a package that did not check cleanly.
	TypeErrors []error
}

// A Program is one loaded package closure.
type Program struct {
	Fset *token.FileSet
	// Packages holds the module's packages in dependency order — the ones
	// analyzers run on.
	Packages []*Package
	// All maps every import path in the closure, std included.
	All map[string]*Package

	// graph memoizes the module call graph for analyzers that need
	// reachability (see callGraph).
	graph map[*types.Func][]callEdge
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns from dir and type-checks the resulting closure.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, modPath, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: token.NewFileSet(), All: make(map[string]*Package)}
	typed := make(map[string]*types.Package)
	typed["unsafe"] = types.Unsafe

	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		inModule := lp.Module != nil && lp.Module.Path == modPath
		pkg := &Package{
			PkgPath:  lp.ImportPath,
			Dir:      lp.Dir,
			InModule: inModule,
			IsMain:   lp.Name == "main",
		}
		for _, f := range lp.GoFiles {
			pkg.GoFiles = append(pkg.GoFiles, filepath.Join(lp.Dir, f))
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s has cgo files despite CGO_ENABLED=0", lp.ImportPath)
		}
		for _, file := range pkg.GoFiles {
			src, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(prog.Fset, file, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pkg.Syntax = append(pkg.Syntax, f)
		}

		cfg := types.Config{
			Importer:         mapImporter(typed),
			IgnoreFuncBodies: !inModule,
			Error:            func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		if inModule {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
			}
		}
		tpkg, _ := cfg.Check(lp.ImportPath, prog.Fset, pkg.Syntax, pkg.Info)
		pkg.Types = tpkg
		typed[lp.ImportPath] = tpkg
		prog.All[lp.ImportPath] = pkg
		if inModule {
			if len(pkg.TypeErrors) > 0 {
				return nil, fmt.Errorf("lint: %s does not type-check: %w", lp.ImportPath, pkg.TypeErrors[0])
			}
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

// golist runs `go list -e -json -deps` and returns the packages in
// dependency order plus the module path of dir.
func golist(dir string, patterns []string) ([]listedPackage, string, error) {
	modPath, err := goCmd(dir, "list", "-m")
	if err != nil {
		return nil, "", err
	}

	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	var listed []listedPackage
	dec := json.NewDecoder(out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, "", fmt.Errorf("go list: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, "", fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, strings.TrimSpace(modPath), nil
}

func goCmd(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return string(out), nil
}

// mapImporter resolves imports from the already-type-checked closure.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not in the loaded closure", path)
}

var _ types.Importer = mapImporter(nil)
