package lint

import (
	"go/ast"
	"go/token"
)

// CtxDiscipline guards the cancellation invariant established in PR 2:
// every engine and facade path is cancellable through the caller's context.
// A fresh context.Background()/TODO() in library code detaches work from
// that chain, and a blocking channel operation in a context-carrying
// function with no ctx.Done() arm is a cancellation leak — under a tripped
// deadline or a disconnecting client the goroutine hangs forever.
var CtxDiscipline = &Analyzer{
	Name: "ctxdiscipline",
	Doc: "flags context.Background()/context.TODO() outside main packages and tests (the\n" +
		"`if ctx == nil { ctx = context.Background() }` entry-point default is allowed), and\n" +
		"blocking channel operations in context-carrying functions without a ctx.Done() arm",
	Filter: func(pkg *Package) bool { return !pkg.IsMain },
	Run:    runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) error {
	for _, f := range pass.Pkg.Syntax {
		checkFreshContexts(pass, f)
		checkBlockingOps(pass, f)
	}
	return nil
}

// checkFreshContexts flags context.Background/TODO calls, permitting the
// nil-guard default `if ctx == nil { ctx = context.Background() }` that the
// facade's entry points use to tolerate lazy callers: a defaulted nil is the
// caller's explicit choice, a fresh context deep in a call chain is not.
func checkFreshContexts(pass *Pass, f *ast.File) {
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isBackground := pass.isCallTo(call, "context", "Background")
		isTODO := pass.isCallTo(call, "context", "TODO")
		if !isBackground && !isTODO {
			return true
		}
		if isTODO {
			pass.Reportf(call.Pos(), "context.TODO in library code: thread the caller's context instead")
			return true
		}
		if isNilGuardDefault(pass, call, stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.Background in library code detaches this work from the caller's cancellation; "+
				"thread the caller's context (or default only under `if ctx == nil` at the entry point)")
		return true
	})
}

// isNilGuardDefault recognizes `if x == nil { x = context.Background() }`
// (and `x := context.Background()` inside such a guard) for the variable
// compared against nil.
func isNilGuardDefault(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// Immediate parent must be an assignment to a single identifier...
	if len(stack) < 2 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	// ...directly inside an if whose condition is `lhs == nil`.
	for i := len(stack) - 2; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return false
		}
		condID, ok := ast.Unparen(cond.X).(*ast.Ident)
		nilID, nilOK := ast.Unparen(cond.Y).(*ast.Ident)
		if !ok || !nilOK || nilID.Name != "nil" {
			return false
		}
		return pass.ObjectOf(condID) != nil && pass.ObjectOf(condID) == pass.ObjectOf(lhs)
	}
	return false
}

// checkBlockingOps flags channel sends and receives in functions that
// declare a context.Context parameter when the operation has no escape
// hatch: not inside a select with a ctx.Done() (or default) arm.  Only
// functions that themselves take a ctx are held to this — they advertise
// cancellability; nested goroutine literals with their own protocols are
// audited by gohygiene instead.
func checkBlockingOps(pass *Pass, f *ast.File) {
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		var op ast.Node
		switch stmt := n.(type) {
		case *ast.SendStmt:
			op = stmt
		case *ast.UnaryExpr:
			if stmt.Op != token.ARROW {
				return true
			}
			op = stmt
		default:
			return true
		}
		owner := enclosingFunc(stack)
		var ftype *ast.FuncType
		switch fn := owner.(type) {
		case *ast.FuncDecl:
			ftype = fn.Type
		case *ast.FuncLit:
			ftype = fn.Type
		default:
			return true
		}
		if pass.ctxParam(ftype) == nil {
			return true
		}
		if guarded(stack) {
			return true
		}
		what := "receive"
		if _, ok := op.(*ast.SendStmt); ok {
			what = "send"
		}
		pass.Reportf(op.Pos(),
			"blocking channel %s in a context-carrying function without a ctx.Done() arm; "+
				"a cancelled caller hangs here — select on the operation and ctx.Done()", what)
		return true
	})
}

// guarded reports whether the innermost enclosing select (within the same
// function) carries a ctx.Done() receive or a default arm.
func guarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if comm.Comm == nil {
					return true // default: never blocks
				}
				if commReceivesDone(comm.Comm) {
					return true
				}
			}
			// A select without an escape arm blocks as a unit; keep looking
			// for an outer one (nested selects are rare but legal).
		}
	}
	return false
}

// commReceivesDone matches `<-x.Done()` (any receiver: the analyzer accepts
// any Done() channel — ctx.Done(), a derived context, a done-compatible
// shutdown channel — as the cancellation arm).
func commReceivesDone(stmt ast.Stmt) bool {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	recv, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || recv.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(recv.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}
