package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// RunFixture is the analysistest analogue: it loads the fixture package at
// testdata/src/<pkg> (relative to dir), runs one analyzer over it bypassing
// the analyzer's package Filter, and matches the findings against the
// fixture's expectations, written as trailing comments:
//
//	code() // want `regexp`
//
// Every expectation must be matched by a finding on its line and every
// finding must be claimed by an expectation; lines without a want comment
// are the analyzer's negative cases.
func RunFixture(t *testing.T, dir, pkg string, a *Analyzer) {
	t.Helper()
	prog, err := Load(dir, "./testdata/src/"+pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("fixture %s loaded %d module packages, want 1", pkg, len(prog.Packages))
	}
	target := prog.Packages[0]

	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Prog: prog, Pkg: target, Fset: prog.Fset, diags: &diags}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, pkg, err)
	}

	wants := fixtureWants(t, prog, target)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		w := matchWant(wants, pos.Filename, pos.Line, d.Message)
		if w == nil {
			t.Errorf("%s: unexpected finding: %s", pos, d.Message)
			continue
		}
		w.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matched `%s`", w.file, w.line, a.Name, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// fixtureWants parses the `// want ...` expectations of the fixture.
func fixtureWants(t *testing.T, prog *Program, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Fatalf("%s: malformed want comment %q (use // want `regexp`)",
							prog.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern: %v", prog.Fset.Position(c.Pos()), err)
				}
				pos := prog.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// RenderDiagnostic formats one finding the way the driver prints it.
func RenderDiagnostic(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	out := fmt.Sprintf("%s:%d:%d: %s [%s]", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	for _, fix := range d.Fixes {
		out += "\n\tfix: " + fix.Message
	}
	return out
}
