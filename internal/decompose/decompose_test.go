package decompose

import (
	"context"
	"reflect"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/core"
	"punt/internal/gatelib"
	"punt/internal/stg"
	"punt/internal/verify"
)

// twoLoopSTG builds two independent request/acknowledge loops synchronised on
// a single dummy transition: the classic articulation case.  Removing "sync"
// disconnects the net into the (r1, a1) and (r2, a2) loops.
func twoLoopSTG(t *testing.T) *stg.STG {
	t.Helper()
	g := stg.New("twoloop")
	r1 := g.AddSignal("r1", stg.Input)
	a1 := g.AddSignal("a1", stg.Output)
	r2 := g.AddSignal("r2", stg.Input)
	a2 := g.AddSignal("a2", stg.Output)
	sync := g.AddDummyTransition("sync")
	for _, pair := range [][2]int{{r1, a1}, {r2, a2}} {
		rp := g.AddTransition(pair[0], stg.Plus)
		ap := g.AddTransition(pair[1], stg.Plus)
		rm := g.AddTransition(pair[0], stg.Minus)
		am := g.AddTransition(pair[1], stg.Minus)
		g.AddArcTT(rp, ap)
		g.AddArcTT(ap, rm)
		g.AddArcTT(rm, am)
		g.AddArcTT(am, sync)
		g.MarkInitially(g.AddArcTT(sync, rp))
	}
	g.SetInitialState(bitvec.New(g.NumSignals()))
	if err := g.Validate(); err != nil {
		t.Fatalf("twoloop STG invalid: %v", err)
	}
	return g
}

func TestSplitCounterflowIntoTwoComponents(t *testing.T) {
	g := benchgen.CounterflowPipeline()
	plan := Split(g)
	if !plan.Divisible() {
		t.Fatalf("counterflow must divide, got %d components", len(plan.Components))
	}
	if len(plan.Components) != 2 {
		t.Fatalf("counterflow: want 2 components, got %d", len(plan.Components))
	}
	totalSignals := 0
	for i, c := range plan.Components {
		totalSignals += len(c.Signals)
		if c.Outputs == 0 {
			t.Errorf("component %d has no outputs", i)
		}
		if err := c.Sub.Validate(); err != nil {
			t.Errorf("component %d projection invalid: %v", i, err)
		}
		if !c.Sub.HasInitialState() {
			t.Errorf("component %d lost the initial state", i)
		}
		if c.Articulated {
			t.Errorf("component %d of a union-find plan marked articulated", i)
		}
	}
	if totalSignals != g.NumSignals() {
		t.Errorf("components cover %d signals of %d", totalSignals, g.NumSignals())
	}
	// The projected signal names must match the global indices they map to.
	for i, c := range plan.Components {
		for local, global := range c.Signals {
			if c.Sub.Signal(local).Name != g.Signal(global).Name {
				t.Errorf("component %d: local signal %d is %q, global %d is %q",
					i, local, c.Sub.Signal(local).Name, global, g.Signal(global).Name)
			}
		}
	}
}

func TestSplitIndivisibleIsZeroCopy(t *testing.T) {
	g := benchgen.PaperFig1()
	plan := Split(g)
	if plan.Divisible() {
		t.Fatalf("fig1 must not divide, got %d components", len(plan.Components))
	}
	if len(plan.Components) != 1 {
		t.Fatalf("want exactly 1 component, got %d", len(plan.Components))
	}
	if plan.Components[0].Sub != g {
		t.Error("indivisible plan must hand back the input STG itself, not a copy")
	}
}

func TestSplitDeterministic(t *testing.T) {
	g := benchgen.CounterflowPipeline()
	a, b := Split(g), Split(g)
	if len(a.Components) != len(b.Components) {
		t.Fatalf("plans differ in size: %d vs %d", len(a.Components), len(b.Components))
	}
	for i := range a.Components {
		if !reflect.DeepEqual(a.Components[i].Signals, b.Components[i].Signals) {
			t.Errorf("component %d signal map differs across runs", i)
		}
		if stg.Format(a.Components[i].Sub) != stg.Format(b.Components[i].Sub) {
			t.Errorf("component %d projection differs across runs", i)
		}
	}
}

func TestArticulateTwoLoops(t *testing.T) {
	g := twoLoopSTG(t)
	if Split(g).Divisible() {
		t.Fatal("twoloop must not divide by plain union-find (the sync couples it)")
	}
	plan := Articulate(g)
	if plan == nil || len(plan.Components) != 2 {
		t.Fatalf("twoloop must articulate into 2 components, got %+v", plan)
	}
	for i, c := range plan.Components {
		if !c.Articulated {
			t.Errorf("component %d not marked articulated", i)
		}
		if err := c.Sub.Validate(); err != nil {
			t.Errorf("component %d projection invalid: %v", i, err)
		}
		if len(c.Signals) != 2 || c.Outputs != 1 {
			t.Errorf("component %d: want 2 signals / 1 output, got %d / %d",
				i, len(c.Signals), c.Outputs)
		}
	}
}

func TestArticulateRejectsIndivisible(t *testing.T) {
	// Fig1 has no dummy transitions at all, so no articulation exists.
	if plan := Articulate(benchgen.PaperFig1()); plan != nil {
		t.Fatalf("fig1 must not articulate, got %d components", len(plan.Components))
	}
}

// TestRecombineCounterflow synthesises the two counterflow components
// independently, recombines the covers onto the global signal alphabet and
// checks the merged circuit closed-loop against the full specification — the
// soundness property the decompose backend rests on.
func TestRecombineCounterflow(t *testing.T) {
	g := benchgen.CounterflowPipeline()
	plan := Split(g)
	if len(plan.Components) != 2 {
		t.Fatalf("want 2 components, got %d", len(plan.Components))
	}
	ctx := context.Background()
	impls := make([]*gatelib.Implementation, len(plan.Components))
	for i, c := range plan.Components {
		im, _, err := core.New(core.Options{}).Synthesize(ctx, c.Sub)
		if err != nil {
			t.Fatalf("component %d synthesis: %v", i, err)
		}
		impls[i] = im
	}
	merged, err := Recombine(g, plan, impls)
	if err != nil {
		t.Fatalf("recombine: %v", err)
	}
	if len(merged.SignalNames) != g.NumSignals() {
		t.Fatalf("merged implementation has %d signals, want %d", len(merged.SignalNames), g.NumSignals())
	}
	wantGates := 0
	for _, c := range plan.Components {
		wantGates += c.Outputs
	}
	if len(merged.Gates) != wantGates {
		t.Fatalf("merged implementation has %d gates, want %d", len(merged.Gates), wantGates)
	}
	// Every cube must be widened to the global width.
	for _, gate := range merged.Gates {
		if gate.Cover != nil && gate.Cover.Vars() != g.NumSignals() {
			t.Fatalf("gate %s cover width %d, want %d", gate.Signal, gate.Cover.Vars(), g.NumSignals())
		}
	}
	if _, err := verify.Verify(ctx, g, merged, verify.Options{}); err != nil {
		t.Fatalf("recombined counterflow circuit fails closed-loop verification: %v", err)
	}
}

func TestWidenCoverRemapsTrits(t *testing.T) {
	// Component variables {1, 3} of a 5-signal alphabet: local cube "01"
	// becomes "-0-1-" widened... local index 0 -> global 1, local 1 -> global 3.
	local := boolcover.CoverFromStrings("01", "1-")
	wide := widenCover(local, []int{1, 3}, 5)
	got := make([]string, 0, wide.Size())
	for _, c := range wide.Cubes() {
		got = append(got, c.String())
	}
	want := []string{"-0-1-", "-1---"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("widened cubes = %v, want %v", got, want)
	}
}

func TestRecombineRejectsMismatch(t *testing.T) {
	g := benchgen.CounterflowPipeline()
	plan := Split(g)
	if _, err := Recombine(g, plan, make([]*gatelib.Implementation, 1)); err == nil {
		t.Fatal("recombine must reject an implementation-count mismatch")
	}
}
