// Package decompose factors a Signal Transition Graph into independent
// components for compositional synthesis: when a specification is the
// disjoint union of smaller behaviours (the counterflow pipeline is two
// unconnected Muller pipelines in one net), each component can be synthesised
// on its own exponentially smaller state space and the per-component circuits
// recombined into one implementation of the whole.  This lifts the trick
// internal/verify already plays at checking time (cluster.go verifies the
// 2^34-state counterflow as two 131k-state clusters) into synthesis itself,
// following Devillers' product-of-transition-systems factoring.
//
// Two plans are offered.  Split is the sound one: a union-find over places,
// transitions and signals — two parts of the net share a component when they
// are connected through arcs or carry transitions of the same signal — so
// components share nothing at all and the specification's behaviour is
// exactly the independent interleaving of the component behaviours.  Every
// cover derived from a component is therefore a correct cover of the full
// specification (extended with don't-cares over the other components'
// signals).
//
// Articulate is the optimistic refinement for nets the union-find cannot
// split: a dummy articulation transition whose removal disconnects the net is
// replicated into each side with its arcs restricted to that side.  The
// projection over-approximates each side's environment (a side may fire its
// copy before the full net could), so callers must re-check the recombined
// circuit against the full specification and fall back when it does not
// conform — the decompose backend does exactly that.
package decompose

import (
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/petri"
	"punt/internal/stg"
)

// Component is one independent piece of a decomposition plan: the projected
// sub-STG together with the maps back into the full specification.
type Component struct {
	// Sub is the projected specification: the component's places, transitions
	// and arcs, its restriction of the initial marking and of the initial
	// binary state.  Signal names and kinds are preserved.
	Sub *stg.STG
	// Signals maps local signal indices of Sub to global signal indices of
	// the input STG, ascending: Sub's signal i is the input's Signals[i].
	Signals []int
	// Outputs counts the output and internal signals of the component — the
	// gates its synthesis will contribute.  A component with zero outputs
	// still constrains nothing and is dropped from plans.
	Outputs int
	// Articulated marks components produced by Articulate, whose projection
	// over-approximates the environment and needs the closed-loop re-check.
	Articulated bool
}

// Plan is an ordered decomposition of one STG.  Components are ordered by
// their smallest global signal index, so plans are deterministic.
type Plan struct {
	Components []Component
}

// Divisible reports whether the plan actually splits the specification.
func (p *Plan) Divisible() bool { return p != nil && len(p.Components) > 1 }

// Split partitions g into its independent components with a union-find over
// places, transitions and signals, exactly generalising the verifier's
// cluster partition: arcs connect transitions to their pre- and post-places,
// and every labelled transition connects to its signal, so two subnets end up
// in one component when they interact in any way at all.  Components without
// a single output or internal signal (pure-input or dummy-only subnets) are
// dropped — they contribute no gate and their behaviour is preserved by the
// remaining components' environments.  A specification that does not divide
// yields a single-component plan whose Sub is g itself (not a copy), so the
// indivisible path costs one linear scan and nothing else.
func Split(g *stg.STG) *Plan {
	net := g.Net()
	nP, nT, nS := net.NumPlaces(), net.NumTransitions(), g.NumSignals()
	uf := newUnionFind(nP + nT + nS)
	place := func(p petri.PlaceID) int { return int(p) }
	trans := func(t petri.TransitionID) int { return nP + int(t) }
	signal := func(s int) int { return nP + nT + s }

	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		for _, p := range net.Pre(id) {
			uf.union(trans(id), place(p))
		}
		for _, p := range net.Post(id) {
			uf.union(trans(id), place(p))
		}
		if l := g.Label(id); !l.IsDummy {
			uf.union(trans(id), signal(l.Signal))
		}
	}

	// Group signals by root, in ascending signal order so the component order
	// and the local signal order are both deterministic.
	roots := make([]int, 0, nS)
	bySignalRoot := make(map[int][]int)
	for s := 0; s < nS; s++ {
		r := uf.find(signal(s))
		if _, seen := bySignalRoot[r]; !seen {
			roots = append(roots, r)
		}
		bySignalRoot[r] = append(bySignalRoot[r], s)
	}

	var comps []Component
	for _, r := range roots {
		sigs := bySignalRoot[r]
		outputs := 0
		for _, s := range sigs {
			if k := g.Signal(s).Kind; k == stg.Output || k == stg.Internal {
				outputs++
			}
		}
		if outputs == 0 {
			continue
		}
		comps = append(comps, Component{Signals: sigs, Outputs: outputs})
	}
	plan := &Plan{Components: comps}
	if len(comps) <= 1 {
		// Indivisible (or a single synthesizable component): hand the caller
		// the input itself so the fallthrough path costs nothing.
		if len(comps) == 1 {
			plan.Components[0].Sub = g
			plan.Components[0].Signals = identity(nS)
		}
		return plan
	}

	// Project each component: membership arrays first, then the restricted
	// nets.  Places and transitions follow their roots; places or transitions
	// in a dropped (gate-less) component are simply left out of every
	// projection.
	for i := range plan.Components {
		c := &plan.Components[i]
		c.Sub = project(g, uf, c.Signals, nP, nT)
	}
	return plan
}

// identity returns [0, 1, …, n-1].
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// project builds the sub-STG of the component owning the given global
// signals: the places and transitions sharing the component's union-find
// root, their arcs, the restriction of the initial marking and the
// restriction of the initial binary state.
func project(g *stg.STG, uf *unionFind, sigs []int, nP, nT int) *stg.STG {
	net := g.Net()
	root := uf.find(nP + nT + sigs[0])
	sub := stg.New(fmt.Sprintf("%s_c%d", g.Name(), sigs[0]))

	sigMap := make(map[int]int, len(sigs)) // global signal -> local signal
	for _, s := range sigs {
		sigMap[s] = sub.AddSignal(g.Signal(s).Name, g.Signal(s).Kind)
	}

	placeMap := make(map[petri.PlaceID]petri.PlaceID, nP)
	for p := 0; p < nP; p++ {
		if uf.find(int(p)) != root {
			continue
		}
		placeMap[petri.PlaceID(p)] = sub.AddPlace(net.PlaceName(petri.PlaceID(p)))
	}
	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		if uf.find(nP+t) != root {
			continue
		}
		var st petri.TransitionID
		if l := g.Label(id); l.IsDummy {
			st = sub.AddDummyTransition(l.DummyName)
		} else {
			st = sub.AddTransition(sigMap[l.Signal], l.Dir)
		}
		for _, p := range net.Pre(id) {
			sub.AddArcPT(placeMap[p], st)
		}
		for _, p := range net.Post(id) {
			sub.AddArcTP(st, placeMap[p])
		}
	}

	initial := net.Initial()
	for p, lp := range placeMap {
		if initial.Marked(p) {
			sub.MarkInitially(lp)
		}
	}
	if g.HasInitialState() {
		full := g.InitialState()
		bits := make([]bool, len(sigs))
		for i, s := range sigs {
			bits[i] = full.Get(s)
		}
		sub.SetInitialState(bitvec.FromBools(bits))
	}
	return sub
}

// Recombine merges per-component implementations back into one circuit over
// the full specification's signal alphabet: every component cube is widened
// to the global variable order (don't-cares outside the component) and the
// gates are emitted in ascending global signal index order, so the merged
// netlist is deterministic regardless of which component finished first.
// Each impls[i] must be the implementation of plan.Components[i].Sub, with
// SignalNames exactly the component's local signal names.
func Recombine(g *stg.STG, plan *Plan, impls []*gatelib.Implementation) (*gatelib.Implementation, error) {
	if len(impls) != len(plan.Components) {
		return nil, fmt.Errorf("decompose: %d implementations for %d components", len(impls), len(plan.Components))
	}
	names := g.SignalNames()
	merged := &gatelib.Implementation{Name: g.Name(), SignalNames: names}

	// gateBySignal[s] is the remapped gate of global signal s, if any.
	gateBySignal := make([]*gatelib.Gate, len(names))
	for ci := range plan.Components {
		comp := &plan.Components[ci]
		im := impls[ci]
		if im == nil {
			return nil, fmt.Errorf("decompose: component %d has no implementation", ci)
		}
		if len(im.SignalNames) != len(comp.Signals) {
			return nil, fmt.Errorf("decompose: component %d implementation has %d signals, projection %d",
				ci, len(im.SignalNames), len(comp.Signals))
		}
		for gi := range im.Gates {
			gate := im.Gates[gi]
			local, ok := comp.Sub.SignalIndex(gate.Signal)
			if !ok {
				return nil, fmt.Errorf("decompose: component %d implements unknown signal %q", ci, gate.Signal)
			}
			global := comp.Signals[local]
			if gateBySignal[global] != nil {
				return nil, fmt.Errorf("decompose: signal %q implemented by two components", gate.Signal)
			}
			widened := gatelib.Gate{
				Signal: gate.Signal,
				Arch:   gate.Arch,
				Cover:  widenCover(gate.Cover, comp.Signals, len(names)),
				Set:    widenCover(gate.Set, comp.Signals, len(names)),
				Reset:  widenCover(gate.Reset, comp.Signals, len(names)),
			}
			gateBySignal[global] = &widened
		}
	}
	for s := range gateBySignal {
		if gateBySignal[s] != nil {
			merged.Gates = append(merged.Gates, *gateBySignal[s])
		}
	}
	return merged, nil
}

// widenCover remaps a component-local cover onto the global variable order:
// trit i of every cube moves to position sigs[i], everything else stays a
// don't-care.  A nil cover stays nil (the architectures leave unused networks
// nil).
func widenCover(c *boolcover.Cover, sigs []int, width int) *boolcover.Cover {
	if c == nil {
		return nil
	}
	out := boolcover.NewCover(width)
	for _, cube := range c.Cubes() {
		wc := boolcover.NewCube(width)
		for i := 0; i < cube.Len(); i++ {
			wc.Set(sigs[i], cube.Get(i))
		}
		out.Add(wc)
	}
	return out
}

// unionFind is a plain union-find over integer nodes (the verifier's, kept
// private to each package to avoid a dependency for thirty lines).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
