package decompose

import (
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// Articulate attempts the optimistic refinement on a specification the plain
// union-find cannot divide: it searches for a dummy articulation transition —
// one whose removal disconnects the net into parts with disjoint signal
// alphabets — and projects the specification onto each part, replicating the
// articulation into every side with its arcs restricted to that side's
// places.
//
// The classic instance is two cyclic subsystems synchronised on one shared
// dummy transition (Devillers' articulation): each side sees the articulation
// inside its own cycle, so the projection is a well-formed STG whose language
// over the side's signals equals the full specification's projection — the
// synchronisation constrains timing across sides, never the per-side order.
// The projection still over-approximates the environment (a side may fire its
// copy before the full net could), so the recombined circuit MUST be
// re-checked against the full specification; the decompose backend falls back
// to monolithic synthesis when the check fails.
//
// Articulate returns nil when no usable articulation exists: no dummy cut
// transition, a part whose copy of the articulation would lose its whole
// preset or postset (the projection would be unsafe or dead), or fewer than
// two parts carrying output signals.  Only the first usable articulation (in
// transition order) is applied, and only one level deep — the sub-plans are
// not articulated recursively.
func Articulate(g *stg.STG) *Plan {
	net := g.Net()
	nT := net.NumTransitions()
	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		if !g.Label(id).IsDummy {
			continue
		}
		if plan := tryArticulation(g, id); plan != nil {
			return plan
		}
	}
	return nil
}

// tryArticulation tests whether cutting transition art disconnects the net
// into independently synthesisable parts and builds the plan when it does.
func tryArticulation(g *stg.STG, art petri.TransitionID) *Plan {
	net := g.Net()
	nP, nT, nS := net.NumPlaces(), net.NumTransitions(), g.NumSignals()
	uf := newUnionFind(nP + nT + nS)
	place := func(p petri.PlaceID) int { return int(p) }
	trans := func(t petri.TransitionID) int { return nP + int(t) }
	signal := func(s int) int { return nP + nT + s }

	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		if id == art {
			continue // the candidate articulation's arcs are cut
		}
		for _, p := range net.Pre(id) {
			uf.union(trans(id), place(p))
		}
		for _, p := range net.Post(id) {
			uf.union(trans(id), place(p))
		}
		if l := g.Label(id); !l.IsDummy {
			uf.union(trans(id), signal(l.Signal))
		}
	}

	// Group signals by part, ascending, exactly like Split.
	roots := make([]int, 0, nS)
	bySignalRoot := make(map[int][]int)
	for s := 0; s < nS; s++ {
		r := uf.find(signal(s))
		if _, seen := bySignalRoot[r]; !seen {
			roots = append(roots, r)
		}
		bySignalRoot[r] = append(bySignalRoot[r], s)
	}

	var comps []Component
	for _, r := range roots {
		sigs := bySignalRoot[r]
		outputs := 0
		for _, s := range sigs {
			if k := g.Signal(s).Kind; k == stg.Output || k == stg.Internal {
				outputs++
			}
		}
		if outputs == 0 {
			continue
		}
		comps = append(comps, Component{Signals: sigs, Outputs: outputs, Articulated: true})
	}
	if len(comps) < 2 {
		return nil
	}

	for i := range comps {
		sub, ok := projectWithArticulation(g, uf, comps[i].Signals, art, nP, nT)
		if !ok {
			return nil
		}
		comps[i].Sub = sub
	}
	return &Plan{Components: comps}
}

// projectWithArticulation projects g onto the part owning sigs, adding a copy
// of the articulation transition with its arcs restricted to the part's
// places.  ok is false when the restricted copy loses its whole preset (it
// would fire unboundedly and break safeness) or its whole postset (the part
// would drain tokens into the cut and deadlock): such a part marks the whole
// articulation unusable.
func projectWithArticulation(g *stg.STG, uf *unionFind, sigs []int, art petri.TransitionID, nP, nT int) (*stg.STG, bool) {
	net := g.Net()
	root := uf.find(nP + nT + sigs[0])
	sub := stg.New(fmt.Sprintf("%s_a%d", g.Name(), sigs[0]))

	sigMap := make(map[int]int, len(sigs))
	for _, s := range sigs {
		sigMap[s] = sub.AddSignal(g.Signal(s).Name, g.Signal(s).Kind)
	}

	placeMap := make(map[petri.PlaceID]petri.PlaceID, nP)
	for p := 0; p < nP; p++ {
		if uf.find(p) != root {
			continue
		}
		placeMap[petri.PlaceID(p)] = sub.AddPlace(net.PlaceName(petri.PlaceID(p)))
	}
	for t := 0; t < nT; t++ {
		id := petri.TransitionID(t)
		if id == art || uf.find(nP+t) != root {
			continue
		}
		l := g.Label(id)
		var st petri.TransitionID
		if l.IsDummy {
			st = sub.AddDummyTransition(l.DummyName)
		} else {
			st = sub.AddTransition(sigMap[l.Signal], l.Dir)
		}
		for _, p := range net.Pre(id) {
			sub.AddArcPT(placeMap[p], st)
		}
		for _, p := range net.Post(id) {
			sub.AddArcTP(st, placeMap[p])
		}
	}

	// The articulation's local copy: arcs restricted to this part's places.
	copyName := g.Label(art).DummyName
	at := sub.AddDummyTransition(copyName)
	pre, post := 0, 0
	for _, p := range net.Pre(art) {
		if lp, ok := placeMap[p]; ok {
			sub.AddArcPT(lp, at)
			pre++
		}
	}
	for _, p := range net.Post(art) {
		if lp, ok := placeMap[p]; ok {
			sub.AddArcTP(at, lp)
			post++
		}
	}
	if pre == 0 || post == 0 {
		return nil, false
	}

	initial := net.Initial()
	for p, lp := range placeMap {
		if initial.Marked(p) {
			sub.MarkInitially(lp)
		}
	}
	if g.HasInitialState() {
		full := g.InitialState()
		bits := make([]bool, len(sigs))
		for i, s := range sigs {
			bits[i] = full.Get(s)
		}
		sub.SetInitialState(bitvec.FromBools(bits))
	}
	return sub, true
}
