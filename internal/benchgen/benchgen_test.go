package benchgen

import (
	"context"
	"testing"

	"punt/internal/stategraph"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// checkWellFormed verifies the general correctness criteria of the paper on a
// generated benchmark: safeness, consistent state assignment, output
// persistency and CSC — everything a Table 1 benchmark must satisfy to be
// synthesisable.
func checkWellFormed(t *testing.T, g *stg.STG, maxStates int) *stategraph.Graph {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid STG: %v", g.Name(), err)
	}
	sg, err := stategraph.Build(context.Background(), g, stategraph.Options{MaxStates: maxStates})
	if err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
	if v := sg.CheckOutputPersistency(); len(v) != 0 {
		t.Fatalf("%s: persistency violations: %v", g.Name(), v[0])
	}
	if c := sg.CheckCSC(); len(c) != 0 {
		t.Fatalf("%s: CSC conflicts: %v", g.Name(), c[0])
	}
	if d := sg.Deadlocks(); len(d) != 0 {
		t.Fatalf("%s: %d deadlocked states", g.Name(), len(d))
	}
	return sg
}

func TestPaperFig1WellFormed(t *testing.T) {
	sg := checkWellFormed(t, PaperFig1(), 0)
	if sg.NumStates() != 8 {
		t.Fatalf("fig1 has %d states, want 8", sg.NumStates())
	}
}

func TestPaperFig4WellFormed(t *testing.T) {
	checkWellFormed(t, PaperFig4(), 0)
}

func TestHandshakeWellFormed(t *testing.T) {
	sg := checkWellFormed(t, Handshake(), 0)
	if sg.NumStates() != 4 {
		t.Fatalf("handshake has %d states, want 4", sg.NumStates())
	}
}

func TestMullerPipelineWellFormed(t *testing.T) {
	for _, stages := range []int{1, 2, 3, 5} {
		g := MullerPipeline(stages)
		if g.NumSignals() != stages+2 {
			t.Fatalf("pipeline(%d) has %d signals", stages, g.NumSignals())
		}
		checkWellFormed(t, g, 0)
	}
}

func TestMullerPipelineSGGrowsUnfoldingDoesNot(t *testing.T) {
	// The point of Figure 6: the state graph grows exponentially with the
	// number of stages while the unfolding segment grows linearly.
	var prevStates int
	var prevEvents int
	for _, stages := range []int{2, 4, 6, 8} {
		g := MullerPipeline(stages)
		sg, err := stategraph.Build(context.Background(), g, stategraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		u, err := unfolding.Build(context.Background(), MullerPipeline(stages), unfolding.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prevStates > 0 {
			if sg.NumStates() < prevStates*3/2 {
				t.Fatalf("SG growth too slow: %d -> %d states", prevStates, sg.NumStates())
			}
			if u.NumEvents() > prevEvents*3 {
				t.Fatalf("unfolding growth too fast: %d -> %d events", prevEvents, u.NumEvents())
			}
		}
		prevStates, prevEvents = sg.NumStates(), u.NumEvents()
	}
	if prevEvents >= prevStates {
		t.Fatalf("for 8 stages the unfolding (%d events) must be much smaller than the SG (%d states)",
			prevEvents, prevStates)
	}
}

func TestMullerPipelineWithSignals(t *testing.T) {
	g := MullerPipelineWithSignals(10)
	if g.NumSignals() != 10 {
		t.Fatalf("signals = %d, want 10", g.NumSignals())
	}
}

func TestSyntheticControllerSignalCounts(t *testing.T) {
	for _, signals := range []int{4, 5, 6, 7, 9, 12, 15, 20, 25} {
		g := SyntheticController("synthetic", signals, int64(signals)*7)
		if g.NumSignals() != signals {
			t.Fatalf("requested %d signals, got %d", signals, g.NumSignals())
		}
	}
}

func TestSyntheticControllerDeterministic(t *testing.T) {
	a := SyntheticController("det", 12, 99)
	b := SyntheticController("det", 12, 99)
	if stg.Format(a) != stg.Format(b) {
		t.Fatal("same seed must give the same controller")
	}
	c := SyntheticController("det", 12, 100)
	if stg.Format(a) == stg.Format(c) {
		t.Fatal("different seeds should give different controllers")
	}
}

func TestSyntheticControllersWellFormed(t *testing.T) {
	for _, signals := range []int{4, 6, 8, 10, 12, 14} {
		g := SyntheticController("synthetic", signals, int64(signals)*13+1)
		checkWellFormed(t, g, 200000)
	}
}

func TestChoiceControllerWellFormed(t *testing.T) {
	g := ChoiceController("choice", 4, 7)
	if len(g.InputSignals()) < 2 {
		t.Fatal("choice controller must have at least the two request inputs")
	}
	checkWellFormed(t, g, 200000)
}

func TestTable1SuiteShape(t *testing.T) {
	suite := Table1Suite()
	if len(suite) != 21 {
		t.Fatalf("Table 1 has 21 rows, suite has %d", len(suite))
	}
	total := 0
	for _, e := range suite {
		total += e.Signals
	}
	if total != 228 {
		t.Fatalf("total signal count = %d, the paper reports 228", total)
	}
	// Spot-check that building an entry honours its declared signal count.
	for _, e := range suite[:6] {
		g := e.Build()
		if g.NumSignals() != e.Signals {
			t.Fatalf("%s: %d signals, want %d", e.Name, g.NumSignals(), e.Signals)
		}
	}
}

func TestTable1SmallEntriesWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Table1Suite() {
		if e.Signals > 14 {
			continue // the large entries are exercised by the benchmarks
		}
		g := e.Build()
		checkWellFormed(t, g, 500000)
	}
}

func TestCounterflowPipelineShape(t *testing.T) {
	g := CounterflowPipeline()
	if g.NumSignals() != 34 {
		t.Fatalf("counterflow stand-in has %d signals, want 34", g.NumSignals())
	}
	// Its unfolding must stay small even though the state graph is enormous.
	u, err := unfolding.Build(context.Background(), g, unfolding.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEvents() > 500 {
		t.Fatalf("counterflow unfolding unexpectedly large: %d events", u.NumEvents())
	}
}
