package benchgen

import (
	"fmt"
	"math/rand"

	"punt/internal/bitvec"
	"punt/internal/stg"
)

// RandomSTG generates a deterministic pseudo-random controller for the given
// seed: a handshake tree in the style of SyntheticController extended with
// environment-resolved free choice (as in ChoiceController, but nestable),
// internal (non-input, non-output) pad signals, and — for roughly a third of
// the seeds — a deliberate Complete State Coding conflict gadget.
//
// Every generated net is 1-safe, consistent and semi-modular by construction;
// whether it satisfies CSC depends on the seed, so callers must treat the
// explicit state graph (or the synthesis engines' CSC detection) as the
// oracle.  This is the workload generator of the differential fuzzing
// harness: the structural variety (sequencing, wide concurrency, nested input
// choice, non-free-choice falling phases, internal signals, CSC conflicts)
// exercises every engine path while the handshake discipline keeps the
// specifications well-formed.
//
// The budget steers the number of signals (minimum 4); the exact count
// depends on how the plan tree consumes it.
func RandomSTG(seed int64, budget int) *stg.STG {
	if budget < 4 {
		budget = 4
	}
	rng := rand.New(rand.NewSource(seed))
	allowCSC := rng.Intn(3) == 0
	plan := buildRandomPlan(budget-4, rng, allowCSC)
	b := stg.NewBuilder(fmt.Sprintf("random-%d", seed))
	b.Inputs("r").Outputs("a")
	e := &emitter{b: b}
	childReq, childAck := e.emit(plan, "0")
	b.Arc("r+", childReq+"+").Arc(childAck+"+", "a+")
	b.Arc("r-", childReq+"-").Arc(childAck+"-", "a-")
	b.Arc("a+", "r-")
	b.Arc("a-", "r+").MarkBetween("a-", "r+")
	g := b.MustBuild()
	g.SetInitialState(bitvec.New(g.NumSignals())) // every signal starts low
	return g
}

// buildRandomPlan builds a random plan tree consuming roughly the given
// signal budget.  Unlike buildPlan it may emit choice nodes, internal pads
// and (when allowCSC is set) CSC-conflict gadget leaves.
func buildRandomPlan(budget int, rng *rand.Rand, allowCSC bool) *planNode {
	if budget <= 3 {
		leaf := &planNode{kind: kindLeaf, pads: budget}
		if budget >= 2 && allowCSC && rng.Intn(4) == 0 {
			leaf.kind = kindCSCLeaf
			leaf.pads = 2
		}
		if rng.Intn(3) == 0 {
			leaf.internalPads = true
		}
		return leaf
	}
	roll := rng.Intn(10)
	if budget >= 8 && roll < 3 {
		// A choice node costs two input selects plus two child ports.
		node := &planNode{kind: kindChoice}
		remaining := budget - 6
		first := rng.Intn(remaining + 1)
		node.children = []*planNode{
			buildRandomPlan(first, rng, allowCSC),
			buildRandomPlan(remaining-first, rng, allowCSC),
		}
		return node
	}
	kind := kindSeq
	if roll >= 6 {
		kind = kindPar
	}
	k := 2
	if budget >= 10 && rng.Intn(2) == 0 {
		k = 3
	}
	remaining := budget - 2*k
	if remaining < 0 {
		leaf := &planNode{kind: kindLeaf, pads: budget}
		if rng.Intn(3) == 0 {
			leaf.internalPads = true
		}
		return leaf
	}
	node := &planNode{kind: kind}
	for i := 0; i < k; i++ {
		share := remaining / (k - i)
		if i < k-1 && share > 0 {
			share = rng.Intn(share + 1)
		}
		if i == k-1 {
			share = remaining
		}
		node.children = append(node.children, buildRandomPlan(share, rng, allowCSC))
		remaining -= share
	}
	return node
}
