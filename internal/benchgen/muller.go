package benchgen

import (
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// MullerPipeline builds the STG of an n-stage Muller pipeline control circuit
// (the scalable example of the paper's Figure 6).  Signal c0 is the request
// of the left environment, c(n+1) the acknowledgement of the right
// environment and c1..cn the C-element outputs of the n stages.  Stage i
// rises when its left neighbour is high and its right neighbour is low, and
// falls in the dual situation:
//
//	c(i-1)+ -> ci+ <- c(i+1)-      c(i-1)- -> ci- <- c(i+1)+
//
// The state graph of the pipeline grows exponentially with n while the
// unfolding segment grows linearly, which is exactly the behaviour Figure 6
// demonstrates.
func MullerPipeline(stages int) *stg.STG {
	if stages < 1 {
		panic("benchgen: MullerPipeline needs at least one stage")
	}
	g := stg.New(fmt.Sprintf("muller-pipeline-%d", stages))
	addPipeline(g, "c", stages)
	g.SetInitialState(bitvec.New(g.NumSignals()))
	return g
}

// addPipeline adds an n-stage Muller pipeline whose signals are named
// <prefix>0 .. <prefix>(n+1) to the STG.
func addPipeline(g *stg.STG, prefix string, stages int) {
	n := stages
	sig := make([]int, n+2)
	for i := 0; i <= n+1; i++ {
		kind := stg.Output
		if i == 0 || i == n+1 {
			kind = stg.Input
		}
		sig[i] = g.AddSignal(fmt.Sprintf("%s%d", prefix, i), kind)
	}
	plus := make([]petri.TransitionID, n+2)
	minus := make([]petri.TransitionID, n+2)
	for i := 0; i <= n+1; i++ {
		plus[i] = g.AddTransition(sig[i], stg.Plus)
		minus[i] = g.AddTransition(sig[i], stg.Minus)
	}
	arc := func(from, to petri.TransitionID, marked bool) {
		p := g.AddArcTT(from, to)
		if marked {
			g.MarkInitially(p)
		}
	}
	// Pipeline stages 1..n.
	for i := 1; i <= n; i++ {
		arc(plus[i-1], plus[i], false)
		arc(minus[i+1], plus[i], true) // initially the right neighbour is low
		arc(minus[i-1], minus[i], false)
		arc(plus[i+1], minus[i], false)
	}
	// Left environment: toggles its request after the first stage acknowledges.
	arc(minus[1], plus[0], true)
	arc(plus[1], minus[0], false)
	// Right environment: acknowledges the last stage.
	arc(plus[n], plus[n+1], false)
	arc(minus[n], minus[n+1], false)
}

// MullerPipelineWithSignals builds the pipeline whose total signal count
// (stages plus the two environment signals) equals the given number; it is
// the x-axis of the Figure 6 experiment.
func MullerPipelineWithSignals(signals int) *stg.STG {
	if signals < 3 {
		panic("benchgen: a pipeline needs at least 3 signals")
	}
	return MullerPipeline(signals - 2)
}

// CounterflowPipeline builds the 34-signal stand-in for the counterflow
// pipeline controller of the paper's second experiment (the circled dot of
// Figure 6): a request pipeline and a result pipeline flowing in opposite
// directions, modelled as two 15-stage Muller pipelines operating
// concurrently in one specification.  Its state graph is the product of the
// two pipelines' state graphs — far beyond explicit enumeration — while the
// unfolding segment is just the two segments side by side.  See DESIGN.md §4
// for the substitution rationale.
func CounterflowPipeline() *stg.STG {
	g := stg.New("counterflow-pipeline")
	addPipeline(g, "f", 15) // forward (request) flow: f0..f16
	addPipeline(g, "b", 15) // backward (result) flow: b0..b16
	g.SetInitialState(bitvec.New(g.NumSignals()))
	return g
}

// Product builds the counterflow topology at an arbitrary size: two n-stage
// Muller pipelines operating concurrently in one specification.  Small sizes
// keep the product state space within reach of the explicit oracle, which is
// what differential tests of compositional synthesis need — the full
// CounterflowPipeline is far beyond it by design.
func Product(stages int) *stg.STG {
	g := stg.New(fmt.Sprintf("product-%d", stages))
	addPipeline(g, "f", stages)
	addPipeline(g, "b", stages)
	g.SetInitialState(bitvec.New(g.NumSignals()))
	return g
}
