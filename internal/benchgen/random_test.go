package benchgen

import (
	"context"
	"errors"
	"testing"

	"punt/internal/core"
	"punt/internal/stategraph"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// TestRandomSTGProperties is the generator's property sweep: every seed must
// produce a 1-safe, consistent, semi-modular specification, and the CSC
// verdict of the state-graph oracle must match the synthesis engines'
// behaviour.  The sweep cross-validates the generator against both analyses —
// the unfolding segment (construction succeeds, structural semi-modularity
// check passes) and the explicit state graph (safety, consistency,
// persistency, CSC) — over more than 200 seeds.
func TestRandomSTGProperties(t *testing.T) {
	const seeds = 250
	var csc, clean, withChoice, withInternal int
	for seed := int64(0); seed < seeds; seed++ {
		budget := 4 + int(seed%14)
		g := RandomSTG(seed, budget)

		// Determinism: the same seed and budget must rebuild the same net.
		if stg.Format(g) != stg.Format(RandomSTG(seed, budget)) {
			t.Fatalf("seed %d: RandomSTG is not deterministic", seed)
		}
		if len(g.InputSignals()) > 1 {
			withChoice++
		}
		for _, s := range g.Signals() {
			if s.Kind == stg.Internal {
				withInternal++
				break
			}
		}

		// The state graph must build: the net is 1-safe and the labelling is
		// consistent (Build rejects both violations).
		sg, err := stategraph.Build(context.Background(), g, stategraph.Options{MaxStates: 200000})
		if err != nil {
			t.Fatalf("seed %d: state graph: %v", seed, err)
		}
		if v := sg.CheckOutputPersistency(); len(v) > 0 {
			t.Fatalf("seed %d: persistency violation: %v", seed, v[0])
		}

		// The unfolding segment must build and its structural semi-modularity
		// check must agree with the state graph.
		u, err := unfolding.Build(context.Background(), g, unfolding.Options{})
		if err != nil {
			t.Fatalf("seed %d: unfolding: %v", seed, err)
		}
		if v := u.CheckSemiModularity(); len(v) > 0 {
			t.Fatalf("seed %d: segment flags a semi-modularity violation the state graph does not: %v", seed, v[0])
		}

		// CSC: the oracle's verdict must match the engine's.
		_, _, synErr := core.New(core.Options{Mode: core.Exact}).Synthesize(context.Background(), g)
		if len(sg.CheckCSC()) > 0 {
			csc++
			var cscErr *core.CSCError
			if !errors.As(synErr, &cscErr) {
				t.Fatalf("seed %d: oracle finds a CSC conflict but exact synthesis returned %v", seed, synErr)
			}
		} else {
			clean++
			if synErr != nil {
				t.Fatalf("seed %d: oracle is clean but exact synthesis failed: %v", seed, synErr)
			}
		}
	}
	if csc == 0 || clean == 0 {
		t.Errorf("sweep must cover both CSC classes, got csc=%d clean=%d", csc, clean)
	}
	if withChoice == 0 {
		t.Error("no seed generated an input choice")
	}
	if withInternal == 0 {
		t.Error("no seed generated internal signals")
	}
	t.Logf("%d seeds: %d CSC-conflicted, %d clean, %d with choice, %d with internal signals",
		seeds, csc, clean, withChoice, withInternal)
}

// TestRandomSTGBudgetClamp checks the minimum-budget path.
func TestRandomSTGBudgetClamp(t *testing.T) {
	g := RandomSTG(1, 0)
	if g.NumSignals() < 4 {
		t.Errorf("budget 0 should clamp to the 4-signal minimum, got %d signals", g.NumSignals())
	}
	if _, err := stategraph.Build(context.Background(), g, stategraph.Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomSTGRoundTrips checks the generated specifications survive the .g
// writer/parser pair, so they can seed file-based tools and fuzz corpora.
func TestRandomSTGRoundTrips(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := RandomSTG(seed, 4+int(seed%14))
		text := stg.Format(g)
		g2, err := stg.ParseString(text)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, text)
		}
		if stg.Format(g2) != text {
			t.Fatalf("seed %d: write/parse round trip is unstable", seed)
		}
	}
}
