// Package benchgen provides the benchmark STGs used by the examples, tests
// and the experiment harness: the worked examples of the paper (Fig. 1 and
// Fig. 4), a library of small hand-written handshake controllers, scalable
// Muller-pipeline and counterflow-pipeline generators for the Figure 6
// experiment, and parameterised synthetic controllers standing in for the
// Table 1 benchmark suite (see DESIGN.md §4 for the substitution rationale).
package benchgen

import (
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/petri"
	"punt/internal/stg"
)

// PaperFig1 builds the STG of Figure 1 of the paper: signals a, b, c with a
// free choice at p1 between a branch (driven by the environment) that raises
// a and a branch that raises c first.  Its state graph has 8 states and the
// on-set cover of the output signal b minimises to a + c (the worked example
// of Sections 2.2 and 4.1).  Signals a and c are inputs: the free choice
// between them is the environment's, so output persistency holds for b.
func PaperFig1() *stg.STG {
	g := stg.New("paper-fig1")
	a := g.AddSignal("a", stg.Input)
	b := g.AddSignal("b", stg.Output)
	c := g.AddSignal("c", stg.Input)

	p := make([]petri.PlaceID, 10)
	for i := 1; i <= 9; i++ {
		p[i] = g.AddPlace(fmt.Sprintf("p%d", i))
	}
	plusA := g.AddTransition(a, stg.Plus)   // p1 -> +a -> p2,p3
	plusB1 := g.AddTransition(b, stg.Plus)  // p4 -> +b -> p7,p8
	plusB2 := g.AddTransition(b, stg.Plus)  // p2 -> +b/2 -> p5
	plusC1 := g.AddTransition(c, stg.Plus)  // p1 -> +c -> p4
	plusC2 := g.AddTransition(c, stg.Plus)  // p3 -> +c/2 -> p6,p8
	minusA := g.AddTransition(a, stg.Minus) // p5,p6 -> -a -> p7
	minusB := g.AddTransition(b, stg.Minus) // p9 -> -b -> p1
	minusC := g.AddTransition(c, stg.Minus) // p7,p8 -> -c -> p9

	type pt struct {
		pl int
		tr petri.TransitionID
	}
	for _, arc := range []pt{
		{1, plusA}, {1, plusC1}, {2, plusB2}, {3, plusC2}, {4, plusB1},
		{5, minusA}, {6, minusA}, {7, minusC}, {8, minusC}, {9, minusB},
	} {
		g.AddArcPT(p[arc.pl], arc.tr)
	}
	type tp struct {
		tr petri.TransitionID
		pl int
	}
	for _, arc := range []tp{
		{plusA, 2}, {plusA, 3}, {plusB2, 5}, {plusC2, 6}, {plusC2, 8},
		{plusC1, 4}, {plusB1, 7}, {plusB1, 8}, {minusA, 7}, {minusC, 9}, {minusB, 1},
	} {
		g.AddArcTP(arc.tr, p[arc.pl])
	}
	g.MarkInitially(p[1])
	g.SetInitialState(bitvec.New(3)) // abc = 000
	return g
}

// PaperFig4 builds an STG in the spirit of Figure 4 of the paper: seven
// signals a..g where +a forks into a wide band of mutually concurrent
// activity (b, c, e, f in parallel with the d/g chain) before -a closes the
// cycle.  It is used to exercise the ER/MR cover approximation and the
// refinement procedure on a specification with substantial concurrency.
func PaperFig4() *stg.STG {
	b := stg.NewBuilder("paper-fig4")
	b.Inputs("a").Outputs("b", "c", "d", "e", "f", "g")
	// +a forks three concurrent branches: (b,e), (c,f) and (d,g).
	b.Arc("a+", "b+").Arc("b+", "e+")
	b.Arc("a+", "c+").Arc("c+", "f+")
	b.Arc("a+", "d+").Arc("d+", "g+")
	// All branches join at -a.
	b.Arc("e+", "a-").Arc("f+", "a-").Arc("g+", "a-")
	// Return-to-zero phase, again concurrent per branch.
	b.Arc("a-", "b-").Arc("b-", "e-")
	b.Arc("a-", "c-").Arc("c-", "f-")
	b.Arc("a-", "d-").Arc("d-", "g-")
	b.Arc("e-", "a+").Arc("f-", "a+").Arc("g-", "a+")
	b.MarkBetween("e-", "a+").MarkBetween("f-", "a+").MarkBetween("g-", "a+")
	b.InitialState("0000000")
	return b.MustBuild()
}

// Handshake builds the elementary four-phase handshake controller
// (req -> ack), the smallest useful STG.
func Handshake() *stg.STG {
	b := stg.NewBuilder("handshake")
	b.Inputs("req").Outputs("ack")
	b.Arc("req+", "ack+").Arc("ack+", "req-").Arc("req-", "ack-").Arc("ack-", "req+")
	b.MarkBetween("ack-", "req+")
	b.InitialState("00")
	return b.MustBuild()
}
