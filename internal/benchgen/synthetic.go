package benchgen

import (
	"fmt"
	"math/rand"

	"punt/internal/bitvec"
	"punt/internal/stg"
)

// The synthetic controllers are handshake-component trees in the style of
// syntax-directed asynchronous controllers: a root handshake driven by the
// environment decomposes, through sequencer (SEQ) and paralleliser (PAR)
// nodes, into leaf handshakes, some of which contain extra internal signal
// toggles or an environment-resolved choice.  Every block is a four-phase
// "broad" handshake, which keeps the composed STG consistent, safe,
// semi-modular and free of CSC conflicts while mixing sequencing, wide
// concurrency and input choice — the structure class of the paper's Table 1
// benchmarks.  See DESIGN.md §4 for why the originals are substituted.

// nodeKind is the type of a plan-tree node.
type nodeKind int

const (
	kindLeaf nodeKind = iota
	kindSeq
	kindPar
	// kindChoice is an environment-resolved free choice between two child
	// blocks: two fresh input selects compete for the token the request
	// provides (RandomSTG only).
	kindChoice
	// kindCSCLeaf is a leaf whose two pads each toggle up and down in
	// sequence, so the states before and between the pad bursts share a
	// binary code while exciting different outputs — a deliberate Complete
	// State Coding conflict (RandomSTG only).
	kindCSCLeaf
)

// planNode is one block of the handshake tree.
type planNode struct {
	kind         nodeKind
	pads         int  // internal toggle signals (leaves only)
	internalPads bool // declare the pads as internal instead of output signals
	children     []*planNode
}

// cost returns the number of signals the node adds beyond its own port.
func (n *planNode) cost() int {
	switch n.kind {
	case kindLeaf:
		return n.pads
	default:
		total := 0
		for _, c := range n.children {
			total += 2 + c.cost()
		}
		return total
	}
}

// buildPlan builds a random plan tree consuming exactly the given signal
// budget (the number of signals beyond the root port).
func buildPlan(budget int, rng *rand.Rand) *planNode {
	if budget <= 3 {
		return &planNode{kind: kindLeaf, pads: budget}
	}
	// An internal node with k children costs 2 per child plus the children's
	// own budgets.  Pick 2 or 3 children when the budget allows.
	k := 2
	if budget >= 10 && rng.Intn(2) == 0 {
		k = 3
	}
	kind := kindSeq
	if rng.Intn(2) == 0 {
		kind = kindPar
	}
	node := &planNode{kind: kind}
	remaining := budget - 2*k
	if remaining < 0 {
		return &planNode{kind: kindLeaf, pads: budget}
	}
	for i := 0; i < k; i++ {
		share := remaining / (k - i)
		if i < k-1 && share > 0 {
			share = rng.Intn(share + 1)
		}
		if i == k-1 {
			share = remaining
		}
		node.children = append(node.children, buildPlan(share, rng))
		remaining -= share
	}
	return node
}

// SyntheticController generates a deterministic pseudo-random handshake-tree
// controller with exactly the requested number of signals (minimum 4).
func SyntheticController(name string, signals int, seed int64) *stg.STG {
	if signals < 4 {
		panic("benchgen: SyntheticController needs at least 4 signals")
	}
	rng := rand.New(rand.NewSource(seed))
	plan := buildPlan(signals-4, rng) // root port (2) + root child port (2)
	b := stg.NewBuilder(name)
	b.Inputs("r").Outputs("a")
	e := &emitter{b: b}
	// The root block has a single child implementing the request.
	childReq, childAck := e.emit(plan, "0")
	// Root protocol: r+ -> child request; child ack -> a+; the environment
	// lowers r after a+, the falling phase mirrors the rising one, and the
	// environment raises r again after a- (the initially marked arc).
	b.Arc("r+", childReq+"+").Arc(childAck+"+", "a+")
	b.Arc("r-", childReq+"-").Arc(childAck+"-", "a-")
	b.Arc("a+", "r-")
	b.Arc("a-", "r+").MarkBetween("a-", "r+")
	g := b.MustBuild()
	g.SetInitialState(bitvec.New(g.NumSignals())) // every signal starts low
	if g.NumSignals() != signals {
		panic(fmt.Sprintf("benchgen: %s generated %d signals, want %d", name, g.NumSignals(), signals))
	}
	return g
}

// emitter walks a plan tree and emits the handshake blocks into the builder.
type emitter struct {
	b *stg.Builder
}

// emit creates the block for the node and returns the names of its request
// and acknowledge signals (the port the parent connects to).
func (e *emitter) emit(n *planNode, path string) (req, ack string) {
	req = "r" + path
	ack = "a" + path
	e.b.Outputs(req, ack)
	switch n.kind {
	case kindLeaf:
		prevRise := req + "+"
		prevFall := req + "-"
		for i := 0; i < n.pads; i++ {
			x := fmt.Sprintf("x%s_%d", path, i)
			if n.internalPads {
				e.b.Internals(x)
			} else {
				e.b.Outputs(x)
			}
			e.b.Arc(prevRise, x+"+")
			e.b.Arc(prevFall, x+"-")
			prevRise, prevFall = x+"+", x+"-"
		}
		e.b.Arc(prevRise, ack+"+")
		e.b.Arc(prevFall, ack+"-")
	case kindCSCLeaf:
		// Both pads toggle fully during the rising phase: the markings before
		// x0+ and before x1+ carry identical codes but excite different
		// outputs, which is exactly a CSC conflict.
		x0 := "x" + path + "_0"
		x1 := "x" + path + "_1"
		if n.internalPads {
			e.b.Internals(x0, x1)
		} else {
			e.b.Outputs(x0, x1)
		}
		e.b.Chain(req+"+", x0+"+", x0+"-", x1+"+", x1+"-", ack+"+")
		e.b.Arc(req+"-", ack+"-")
	case kindChoice:
		// The environment resolves a free choice between the two children:
		// the request arms a choice place, one of two fresh input selects
		// consumes it, and the selected child's acknowledgement reaches the
		// block port through merge places.  The falling phase is steered back
		// into the selected branch by the per-branch memory place.
		pc, pd := "pc"+path, "pd"+path
		up, down := "pu"+path, "pv"+path
		e.b.Place(pc).Place(pd).Place(up).Place(down)
		e.b.PlaceArc(req+"+", pc)
		e.b.PlaceArc(req+"-", pd)
		for i, c := range n.children {
			tag := string(rune('a' + i))
			sel := "s" + path + tag
			q := "q" + path + tag
			e.b.Inputs(sel)
			e.b.Place(q)
			cReq, cAck := e.emit(c, path+tag)
			e.b.PlaceArc(pc, sel+"+")
			e.b.PlaceArc(sel+"+", q)
			e.b.Arc(sel+"+", cReq+"+")
			e.b.PlaceArc(cAck+"+", up)
			e.b.PlaceArc(q, sel+"-")
			e.b.PlaceArc(pd, sel+"-")
			e.b.Arc(sel+"-", cReq+"-")
			e.b.PlaceArc(cAck+"-", down)
		}
		e.b.PlaceArc(up, ack+"+")
		e.b.PlaceArc(down, ack+"-")
	case kindSeq:
		// Broad sequencer: child i+1 starts after child i acknowledges; the
		// falling phase releases the children in the same order.
		prevRise := req + "+"
		prevFall := req + "-"
		for i, c := range n.children {
			cReq, cAck := e.emit(c, fmt.Sprintf("%s%d", path, i))
			e.b.Arc(prevRise, cReq+"+")
			e.b.Arc(prevFall, cReq+"-")
			prevRise = cAck + "+"
			prevFall = cAck + "-"
		}
		e.b.Arc(prevRise, ack+"+")
		e.b.Arc(prevFall, ack+"-")
	case kindPar:
		// Paralleliser: all children proceed concurrently; the acknowledgement
		// joins them.
		for i, c := range n.children {
			cReq, cAck := e.emit(c, fmt.Sprintf("%s%d", path, i))
			e.b.Arc(req+"+", cReq+"+")
			e.b.Arc(cAck+"+", ack+"+")
			e.b.Arc(req+"-", cReq+"-")
			e.b.Arc(cAck+"-", ack+"-")
		}
	}
	return req, ack
}

// ChoiceController generates a controller with an environment-resolved free
// choice at the top: the environment raises one of two mutually exclusive
// requests, each serving its own handshake subtree, and a shared done output
// acknowledges either.  The per-branch budgets control the subtree sizes.
func ChoiceController(name string, branchBudget int, seed int64) *stg.STG {
	rng := rand.New(rand.NewSource(seed))
	b := stg.NewBuilder(name)
	b.Inputs("ra", "rb").Outputs("d")
	b.Place("pc")
	e := &emitter{b: b}
	emitBranch := func(tag, reqIn string, dPlus, dMinus string) {
		plan := buildPlan(branchBudget, rng)
		cReq, cAck := e.emit(plan, tag)
		b.PlaceArc("pc", reqIn+"+")
		b.Arc(reqIn+"+", cReq+"+")
		b.Arc(cAck+"+", dPlus)
		b.Arc(dPlus, reqIn+"-")
		b.Arc(reqIn+"-", cReq+"-")
		b.Arc(cAck+"-", dMinus)
		b.PlaceArc(dMinus, "pc")
	}
	emitBranch("A", "ra", "d+", "d-")
	emitBranch("B", "rb", "d+/2", "d-/2")
	b.Mark("pc")
	g := b.MustBuild()
	g.SetInitialState(bitvec.New(g.NumSignals()))
	return g
}

// BenchmarkEntry names one row of the Table 1 experiment: a benchmark name
// from the paper and the STG standing in for it.
type BenchmarkEntry struct {
	Name    string
	Signals int
	Build   func() *stg.STG
}

// Table1Suite returns the 21 benchmarks of the paper's Table 1.  The original
// circuit descriptions are not redistributable, so each entry is a
// deterministic synthetic controller with the same signal count and a
// comparable structure class (see DESIGN.md §4).
func Table1Suite() []BenchmarkEntry {
	rows := []struct {
		name    string
		signals int
	}{
		{"imec-master-read.csc", 18},
		{"nowick.asn", 7},
		{"nowick", 6},
		{"par_4.csc", 14},
		{"sis-master-read.csc", 14},
		{"tsbmSIBRK", 25},
		{"pn_stg_example", 6},
		{"forever_ordered", 8},
		{"alloc-outbound", 9},
		{"mp-forward-pkt", 20},
		{"nak-pa", 10},
		{"pe-send-ifc", 17},
		{"ram-read-sbuf", 11},
		{"rcv-setup", 5},
		{"sbuf-ram-write", 12},
		{"sbuf-read-ctl.old", 8},
		{"sbuf-read-ctl", 8},
		{"sbuf-send-ctl", 8},
		{"sbuf-send-pkt2", 9},
		{"sbuf-send-pkt2.yun", 9},
		{"sendr-done", 4},
	}
	var out []BenchmarkEntry
	for i, r := range rows {
		r := r
		seed := int64(1000 + i*37)
		out = append(out, BenchmarkEntry{
			Name:    r.name,
			Signals: r.signals,
			Build:   func() *stg.STG { return SyntheticController(r.name, r.signals, seed) },
		})
	}
	return out
}
