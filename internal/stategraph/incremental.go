// Incremental state-graph construction for the CSC resolver's retry loop.
//
// A single-signal serial insertion perturbs only a local region of the state
// graph (cf. Devillers, "Articulations and Products of Transition Systems"):
// every original transition keeps its preset, so a state of the rewritten STG
// in which neither fresh place is marked — a "stable" state — enables exactly
// the transitions its parent-graph counterpart enabled, and the new signal's
// value over the stable states is forced by the resolver's parity coloring.
// ExtendToggle therefore copies the parent graph verbatim (codes widened by
// the toggle bit) and explores only the "pending" regions: the states holding
// a token on one of the fresh private places between an insertion anchor and
// its toggle transition.
package stategraph

import (
	"context"
	"errors"
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/faultinject"
	"punt/internal/petri"
	"punt/internal/stg"
)

// ErrExtendMiss reports that the incremental construction hit a state outside
// its reuse assumptions (or a delta region past its threshold); callers fall
// back to a full Build.  It never indicates a property of the STG — real
// specification defects (inconsistency, unboundedness, state limits) surface
// as their usual errors.
var ErrExtendMiss = errors.New("stategraph: incremental extension assumption miss")

// ExtendStats reports what the incremental construction reused vs explored.
type ExtendStats struct {
	// Reused is the number of parent states copied without re-expansion.
	Reused int
	// Expanded is the number of delta states explored by the pending BFS.
	Expanded int
}

// ExtendToggle builds the state graph of ng — the parent graph's STG rewritten
// by serially inserting one toggle signal, with xPlus after rise and xMinus
// after fall — by patching parent instead of re-exploring it.  value is the
// per-parent-state parity assignment of the new signal (0 or 1, as computed by
// the resolver's coloring); it fixes the toggle bit of every stable state.
// maxDelta bounds the pending exploration: past it ExtendToggle returns
// ErrExtendMiss and the caller rebuilds in full.
//
// The result is isomorphic to Build(ctx, ng, opts) — same states, codes,
// edges and check outcomes, with the parent's state numbering preserved on
// the stable prefix — so downstream analyses cannot tell the two apart.
func ExtendToggle(ctx context.Context, parent *Graph, ng *stg.STG, rise, fall, xPlus, xMinus petri.TransitionID, value []int8, maxDelta int, opts Options) (*Graph, ExtendStats, error) {
	st := ExtendStats{Reused: len(parent.States)}
	if len(value) != len(parent.States) {
		return nil, st, fmt.Errorf("stategraph: %w: value assignment covers %d of %d states", ErrExtendMiss, len(value), len(parent.States))
	}
	net := ng.Net()
	bound := opts.Bound
	if bound <= 0 {
		bound = 1
	}
	// The fresh private places feeding the toggle transitions: a marking is
	// "pending" exactly when one of them holds a token.
	preRise, preFall := net.Pre(xPlus), net.Pre(xMinus)
	if len(preRise) != 1 || len(preFall) != 1 {
		return nil, st, fmt.Errorf("stategraph: %w: toggle preset is not a single fresh place", ErrExtendMiss)
	}
	pRise, pFall := preRise[0], preFall[0]
	stable := func(m petri.Marking) bool { return m.Tokens(pRise) == 0 && m.Tokens(pFall) == 0 }

	sg := &Graph{
		STG:    ng,
		States: make([]State, 0, len(parent.States)+maxDelta/2),
		Succ:   make([][]int, 0, len(parent.States)+maxDelta/2),
		index:  make(map[uint64][]int, len(parent.States)),
	}
	// 1. Copy the stable states: the parent's states with the toggle bit
	// appended, under the parent's numbering.
	for i, s := range parent.States {
		if value[i] != 0 && value[i] != 1 {
			return nil, st, fmt.Errorf("stategraph: %w: state %d has no assigned toggle value", ErrExtendMiss, i)
		}
		ns := State{Marking: s.Marking, Code: extendCode(s.Code, value[i] == 1)}
		sg.States = append(sg.States, ns)
		sg.Succ = append(sg.Succ, nil)
		sg.insert(stateHash(ns), i)
	}
	if opts.MaxStates > 0 && len(sg.States) >= opts.MaxStates {
		return nil, st, ErrStateLimit
	}

	// 2. Copy the parent's edges.  Non-toggle-anchor edges transfer verbatim:
	// the target's enabling and code are unchanged up to the (coloring-forced)
	// toggle bit.  Edges labelled with an anchor now route into a pending
	// state instead — the anchor's postset was redirected through the fresh
	// place — which seeds the delta BFS.
	var queue []int
	for u := range parent.States {
		for _, ei := range parent.Succ[u] {
			pe := parent.Edges[ei]
			if pe.Transition != rise && pe.Transition != fall {
				if value[pe.To] != value[u] {
					return nil, st, fmt.Errorf("stategraph: %w: coloring toggles across a non-anchor edge", ErrExtendMiss)
				}
				sg.addEdge(u, pe.Transition, pe.To)
				continue
			}
			m := net.Fire(sg.States[u].Marking, pe.Transition)
			// Firing the anchor still performs its own signal change — only
			// the toggle bit waits for xPlus/xMinus — so the pending code is
			// the parent target's code with the source's toggle value.
			ps := State{Marking: m, Code: extendCode(parent.States[pe.To].Code, value[u] == 1)}
			h := stateHash(ps)
			idx := sg.lookup(h, ps)
			if idx < 0 {
				idx = len(sg.States)
				if opts.MaxStates > 0 && idx >= opts.MaxStates {
					return nil, st, ErrStateLimit
				}
				sg.States = append(sg.States, ps)
				sg.Succ = append(sg.Succ, nil)
				sg.insert(h, idx)
				queue = append(queue, idx)
			}
			sg.addEdge(u, pe.Transition, idx)
		}
	}

	// 3. Explore the pending regions only.  A successor that is stable must
	// already exist in the copied prefix — the x-erasure projection maps it
	// onto a parent-reachable state — so a miss there aborts incrementality
	// rather than risking a divergent graph.  Consistency is re-checked for
	// the delta exactly as Build would: the code discipline of the toggle
	// signal itself is what validation is for.
	markingCode := map[uint64][]markingEntry{}
	for qi := 0; qi < len(queue); qi++ {
		if qi%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
			if err := faultinject.Check(ctx, faultinject.OpStategraphExpand); err != nil {
				return nil, st, err
			}
		}
		st.Expanded++
		if st.Expanded > maxDelta {
			return nil, st, fmt.Errorf("stategraph: %w: delta exceeds %d states", ErrExtendMiss, maxDelta)
		}
		cur := queue[qi]
		s := sg.States[cur]
		for _, t := range net.EnabledTransitions(s.Marking) {
			label := ng.Label(t)
			nextCode := s.Code.Clone()
			if !label.IsDummy {
				val := s.Code.Get(label.Signal)
				if label.Dir == stg.Plus && val || label.Dir == stg.Minus && !val {
					return nil, st, &InconsistencyError{
						Transition: ng.TransitionString(t),
						Detail: fmt.Sprintf("signal %q is already %d in state %s",
							ng.Signal(label.Signal).Name, b2i(val), s.Code),
					}
				}
				nextCode.Set(label.Signal, label.Dir == stg.Plus)
			}
			m := net.Fire(s.Marking, t)
			for _, p := range m.Places() {
				if m.Tokens(p) > bound {
					return nil, st, fmt.Errorf("stategraph: %w firing %s", petri.ErrUnbounded, ng.TransitionString(t))
				}
			}
			next := State{Marking: m, Code: nextCode}
			mh := m.Hash()
			h := stateHashFrom(mh, nextCode)
			idx := sg.lookup(h, next)
			if idx < 0 {
				if stable(m) {
					// The projection argument says this cannot happen for a
					// well-formed serial insertion; treat it as an assumption
					// break and let the full rebuild decide.
					return nil, st, fmt.Errorf("stategraph: %w: pending BFS reached an unknown stable state", ErrExtendMiss)
				}
				if err := checkMarkingCode(markingCode, mh, m, nextCode, ng, t); err != nil {
					return nil, st, err
				}
				idx = len(sg.States)
				if opts.MaxStates > 0 && idx >= opts.MaxStates {
					return nil, st, ErrStateLimit
				}
				sg.States = append(sg.States, next)
				sg.Succ = append(sg.Succ, nil)
				sg.insert(h, idx)
				queue = append(queue, idx)
			}
			sg.addEdge(cur, t, idx)
		}
	}
	return sg, st, nil
}

// markingEntry mirrors Build's same-marking-two-codes consistency table.
type markingEntry struct {
	marking petri.Marking
	code    bitvec.Vec
}

func checkMarkingCode(tbl map[uint64][]markingEntry, mh uint64, m petri.Marking, code bitvec.Vec, g *stg.STG, t petri.TransitionID) error {
	for _, entry := range tbl[mh] {
		if !entry.marking.Equal(m) {
			continue
		}
		if !entry.code.Equal(code) {
			return &InconsistencyError{
				Transition: g.TransitionString(t),
				Detail:     "the same marking is reachable with two different binary codes",
			}
		}
		return nil
	}
	tbl[mh] = append(tbl[mh], markingEntry{marking: m, code: code})
	return nil
}

func (sg *Graph) addEdge(from int, t petri.TransitionID, to int) {
	e := len(sg.Edges)
	sg.Edges = append(sg.Edges, Edge{From: from, To: to, Transition: t})
	sg.Succ[from] = append(sg.Succ[from], e)
}

// extendCode widens code by one trailing bit.
func extendCode(code bitvec.Vec, x bool) bitvec.Vec {
	v := bitvec.New(code.Len() + 1)
	for i := 0; i < code.Len(); i++ {
		if code.Get(i) {
			v.Set(i, true)
		}
	}
	if x {
		v.Set(code.Len(), true)
	}
	return v
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
