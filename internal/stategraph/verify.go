package stategraph

import (
	"fmt"

	"punt/internal/boolcover"
	"punt/internal/stg"
)

// VerifyCover checks that a next-state cover for the given signal is a
// correct atomic-complex-gate implementation with respect to this state
// graph: the cover must contain the binary code of every reachable state
// whose implied value of the signal is 1, and must not contain the code of
// any reachable state whose implied value is 0.  Unreachable codes (the
// DC-set) are unconstrained.
func (sg *Graph) VerifyCover(signal int, cover *boolcover.Cover) error {
	if cover == nil {
		return fmt.Errorf("stategraph: nil cover for signal %s", sg.STG.Signal(signal).Name)
	}
	for i, s := range sg.States {
		implied := sg.ImpliedValue(i, signal)
		covered := cover.CoversMinterm(s.Code)
		if implied && !covered {
			return fmt.Errorf("stategraph: cover for %s misses on-set state %s (state %d)",
				sg.STG.Signal(signal).Name, s.Code, i)
		}
		if !implied && covered {
			return fmt.Errorf("stategraph: cover for %s covers off-set state %s (state %d)",
				sg.STG.Signal(signal).Name, s.Code, i)
		}
	}
	return nil
}

// VerifySetReset checks a memory-element implementation (standard C-element
// or RS latch) of the signal: the set cover must hold exactly nowhere outside
// ER(+a) ∪ QR(a=1) and must hold on all of ER(+a); the reset cover must hold
// on all of ER(-a) and nowhere outside ER(-a) ∪ QR(a=0); and the two must
// never both hold in a reachable state.
func (sg *Graph) VerifySetReset(signal int, set, reset *boolcover.Cover) error {
	if set == nil || reset == nil {
		return fmt.Errorf("stategraph: nil set/reset cover for signal %s", sg.STG.Signal(signal).Name)
	}
	name := sg.STG.Signal(signal).Name
	for i, s := range sg.States {
		code := s.Code
		inSet := set.CoversMinterm(code)
		inReset := reset.CoversMinterm(code)
		if inSet && inReset {
			return fmt.Errorf("stategraph: set and reset of %s both active in state %s", name, code)
		}
		excitedUp := sg.SignalExcited(i, signal, stg.Plus)
		excitedDown := sg.SignalExcited(i, signal, stg.Minus)
		val := code.Get(signal)
		switch {
		case excitedUp && !inSet:
			return fmt.Errorf("stategraph: set(%s) misses excitation-region state %s", name, code)
		case excitedDown && !inReset:
			return fmt.Errorf("stategraph: reset(%s) misses excitation-region state %s", name, code)
		case inSet && !excitedUp && !val:
			return fmt.Errorf("stategraph: set(%s) fires in off-state %s", name, code)
		case inReset && !excitedDown && val:
			return fmt.Errorf("stategraph: reset(%s) fires in on-state %s", name, code)
		}
	}
	return nil
}
