package stategraph

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/stg"
)

func buildFig1(t *testing.T) *Graph {
	t.Helper()
	g := benchgen.PaperFig1()
	sg, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestFig1StateGraph(t *testing.T) {
	sg := buildFig1(t)
	if sg.NumStates() != 8 {
		t.Fatalf("states = %d, want 8", sg.NumStates())
	}
	// All eight 3-bit codes are reachable (the DC-set is empty, as the paper
	// notes for this example).
	if !sg.ReachableCodes().IsTautology() {
		t.Fatal("all 8 codes must be reachable")
	}
	if len(sg.Deadlocks()) != 0 {
		t.Fatal("fig1 has no deadlocks")
	}
	if v := sg.CheckOutputPersistency(); len(v) != 0 {
		t.Fatalf("unexpected persistency violations: %v", v)
	}
	if u := sg.CheckUSC(); len(u) != 0 {
		t.Fatalf("unexpected USC conflicts: %v", u)
	}
	if c := sg.CheckCSC(); len(c) != 0 {
		t.Fatalf("unexpected CSC conflicts: %v", c)
	}
}

func TestFig1OnOffSets(t *testing.T) {
	sg := buildFig1(t)
	g := sg.STG
	b, _ := g.SignalIndex("b")
	on := sg.OnSet(b)
	off := sg.OffSet(b)
	// Paper: On(b) = {100,110,101,111,011,001}, Off(b) = {000,010} (order abc).
	wantOn := boolcover.CoverFromStrings("100", "110", "101", "111", "011", "001")
	wantOff := boolcover.CoverFromStrings("000", "010")
	if !on.Equivalent(wantOn) {
		t.Fatalf("OnSet(b) = %s", on)
	}
	if !off.Equivalent(wantOff) {
		t.Fatalf("OffSet(b) = %s", off)
	}
	if on.Intersects(off) {
		t.Fatal("on and off sets must be disjoint for a CSC-compliant STG")
	}
	// Minimisation reproduces the paper's C(b) = a + c.
	min := boolcover.MinimizeAgainstOff(on, off)
	if !min.Equivalent(boolcover.CoverFromStrings("1--", "--1")) {
		t.Fatalf("minimised on-cover = %s, want a + c", min)
	}
	minOff := boolcover.MinimizeAgainstOff(off, on)
	if !minOff.Equivalent(boolcover.CoverFromStrings("0-0")) {
		t.Fatalf("minimised off-cover = %s, want a'c'", minOff)
	}
}

func TestFig1Regions(t *testing.T) {
	sg := buildFig1(t)
	g := sg.STG
	b, _ := g.SignalIndex("b")
	er := sg.ExcitationRegion(b, stg.Plus)
	// +b is excited in the states with codes 100, 101 (concurrent branch) and
	// 001 (choice branch).
	if len(er) != 3 {
		t.Fatalf("|ER(+b)| = %d, want 3", len(er))
	}
	qr := sg.QuiescentRegion(b, true)
	// b stable at 1 in codes 110, 111, 011.
	if len(qr) != 3 {
		t.Fatalf("|QR(b=1)| = %d, want 3", len(qr))
	}
	erMinus := sg.ExcitationRegion(b, stg.Minus)
	if len(erMinus) != 1 {
		t.Fatalf("|ER(-b)| = %d, want 1", len(erMinus))
	}
}

func TestHandshakeStateGraph(t *testing.T) {
	g := benchgen.Handshake()
	sg, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", sg.NumStates())
	}
	ack, _ := g.SignalIndex("ack")
	on := sg.OnSet(ack)
	off := sg.OffSet(ack)
	min := boolcover.MinimizeAgainstOff(on, off)
	// ack follows req: the cover is simply "req".
	if !min.Equivalent(boolcover.CoverFromStrings("1-")) {
		t.Fatalf("ack cover = %s, want req", min)
	}
}

func TestFig4StateGraph(t *testing.T) {
	g := benchgen.PaperFig4()
	sg, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three independent two-stage branches between a+ and a-: the SG is the
	// product of the branch chains, well above the 16 states a sequential
	// 7-signal cycle would have.
	if sg.NumStates() < 30 {
		t.Fatalf("states = %d, expected substantial concurrency", sg.NumStates())
	}
	if v := sg.CheckOutputPersistency(); len(v) != 0 {
		t.Fatalf("persistency violations: %v", v)
	}
	if c := sg.CheckCSC(); len(c) != 0 {
		t.Fatalf("CSC conflicts: %v", c)
	}
}

func TestInconsistentSTGDetected(t *testing.T) {
	// x rises twice in a row: violates consistent state assignment.
	b := stg.NewBuilder("inconsistent")
	b.Outputs("x", "y")
	b.Arc("x+", "y+").Arc("y+", "x+/2").Arc("x+/2", "x-").Arc("x-", "y-").Arc("y-", "x+").MarkBetween("y-", "x+")
	b.InitialState("00")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(context.Background(), g, Options{})
	var ie *InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("expected InconsistencyError, got %v", err)
	}
}

func TestStateLimit(t *testing.T) {
	g := benchgen.PaperFig4()
	_, err := Build(context.Background(), g, Options{MaxStates: 5})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("expected ErrStateLimit, got %v", err)
	}
}

func TestCSCConflictDetected(t *testing.T) {
	// Classic CSC conflict: two handshakes in sequence controlled by the same
	// input; the state after the first full cycle has the same code as the
	// initial state but different future behaviour.
	//   in+ -> out1+ -> in- -> out1- -> in+/2 -> out2+ -> in-/2 -> out2- -> (back)
	b := stg.NewBuilder("csc-conflict")
	b.Inputs("in").Outputs("out1", "out2")
	b.Chain("in+", "out1+", "in-", "out1-", "in+/2", "out2+", "in-/2", "out2-")
	b.Arc("out2-", "in+").MarkBetween("out2-", "in+")
	b.InitialState("000")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sg, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u := sg.CheckUSC(); len(u) == 0 {
		t.Fatal("expected USC conflicts")
	}
	if c := sg.CheckCSC(); len(c) == 0 {
		t.Fatal("expected CSC conflicts")
	}
	// The on/off sets of out1 must overlap, which is how synthesis notices.
	out1, _ := g.SignalIndex("out1")
	if !sg.OnSet(out1).Intersects(sg.OffSet(out1)) {
		t.Fatal("CSC conflict must surface as intersecting on/off sets")
	}
}

func TestPersistencyViolationDetected(t *testing.T) {
	// An output excited in a choice place can be disabled by an input firing:
	// p0 -> out+ and p0 -> in+ are in direct conflict.
	g := stg.New("nonpersistent")
	in := g.AddSignal("in", stg.Input)
	out := g.AddSignal("out", stg.Output)
	p0 := g.AddPlace("p0")
	p1 := g.AddPlace("p1")
	p2 := g.AddPlace("p2")
	tOut := g.AddTransition(out, stg.Plus)
	tIn := g.AddTransition(in, stg.Plus)
	tOutM := g.AddTransition(out, stg.Minus)
	tInM := g.AddTransition(in, stg.Minus)
	g.AddArcPT(p0, tOut)
	g.AddArcPT(p0, tIn)
	g.AddArcTP(tOut, p1)
	g.AddArcTP(tIn, p2)
	g.AddArcPT(p1, tOutM)
	g.AddArcPT(p2, tInM)
	g.AddArcTP(tOutM, p0)
	g.AddArcTP(tInM, p0)
	g.MarkInitially(p0)
	g.SetInitialState(bitvec.New(2))
	sg, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := sg.CheckOutputPersistency(); len(v) == 0 {
		t.Fatal("expected a persistency violation")
	}
	if rep := sg.Report(); rep == "" {
		t.Fatal("Report must not be empty")
	}
}
