// Package stategraph builds the explicit State Graph (State Transition
// Diagram) of a Signal Transition Graph: the reachability graph of the
// underlying Petri net with a consistent binary code attached to every state.
// It implements the general correctness checks of the paper (consistent state
// assignment, boundedness via safeness, semi-modularity / output persistency)
// and the architecture-specific checks (USC/CSC), and extracts the per-signal
// excitation/quiescent regions and on/off-set covers that drive logic
// synthesis.
package stategraph

import (
	"context"
	"errors"
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/faultinject"
	"punt/internal/petri"
	"punt/internal/stg"
)

// ErrStateLimit is returned when the exploration exceeds the configured
// maximum number of states (the "state explosion" guard used by the
// experiment harness).
var ErrStateLimit = errors.New("stategraph: state limit exceeded")

// InconsistencyError reports a violation of the consistent state assignment
// criterion discovered while building the state graph.
type InconsistencyError struct {
	Transition string // the transition whose firing is inconsistent
	Detail     string
}

func (e *InconsistencyError) Error() string {
	return fmt.Sprintf("stategraph: inconsistent state assignment at %s: %s", e.Transition, e.Detail)
}

// State is one vertex of the state graph: a reachable marking together with
// the binary code of all signals.
type State struct {
	Marking petri.Marking
	Code    bitvec.Vec
}

// Edge is one labelled arc of the state graph.
type Edge struct {
	From, To   int
	Transition petri.TransitionID
}

// Graph is the explicit state graph.  State 0 is the initial state.
type Graph struct {
	STG    *stg.STG
	States []State
	Edges  []Edge
	// Succ[i] lists indices into Edges of the arcs leaving state i.
	Succ [][]int

	// index maps hash(marking, code) to the states with that hash.  Bucket
	// entries are verified with full marking/code equality, so hashing never
	// merges distinct states.
	index map[uint64][]int
}

// lookup returns the index of the state equal to s under the precomputed
// state hash, or -1.
func (sg *Graph) lookup(h uint64, s State) int {
	for _, i := range sg.index[h] {
		if sg.States[i].Code.Equal(s.Code) && sg.States[i].Marking.Equal(s.Marking) {
			return i
		}
	}
	return -1
}

func (sg *Graph) insert(h uint64, idx int) {
	sg.index[h] = append(sg.index[h], idx)
}

// Options configures state graph construction.
type Options struct {
	// MaxStates aborts construction with ErrStateLimit once exceeded
	// (0 = unlimited).
	MaxStates int
	// Bound is the place-token bound; 0 means 1-safe, which is what STGs
	// require.
	Bound int
	// Progress, when non-nil, is called periodically with the number of
	// states discovered so far.  It must be cheap; it runs inside the
	// exploration loop.
	Progress func(states int)
}

// cancelCheckInterval is how many states are expanded between context
// cancellation checks.
const cancelCheckInterval = 1024

// Build explores the reachable state space of the STG.  The STG must have an
// initial binary state (set explicitly or inferred).  Build fails on
// unbounded nets, on violations of consistent state assignment, when the
// state limit is exceeded and when ctx is cancelled.
func Build(ctx context.Context, g *stg.STG, opts Options) (*Graph, error) {
	if !g.HasInitialState() {
		if err := g.InferInitialState(opts.MaxStates); err != nil {
			return nil, err
		}
	}
	bound := opts.Bound
	if bound <= 0 {
		bound = 1
	}
	net := g.Net()
	sg := &Graph{STG: g, index: map[uint64][]int{}}

	initial := State{Marking: net.Initial(), Code: g.InitialState()}
	sg.States = append(sg.States, initial)
	sg.Succ = append(sg.Succ, nil)
	sg.insert(stateHash(initial), 0)

	// markingCode detects the second flavour of inconsistency: the same
	// marking reached with two different binary codes.  It is keyed by the
	// marking's hash; bucket entries carry the marking so collisions are
	// resolved by full equality.
	type markingEntry struct {
		marking petri.Marking
		code    bitvec.Vec
	}
	markingCode := map[uint64][]markingEntry{
		initial.Marking.Hash(): {{marking: initial.Marking, code: initial.Code}},
	}

	queue := []int{0}
	expanded := 0
	for len(queue) > 0 {
		if expanded%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultinject.Check(ctx, faultinject.OpStategraphExpand); err != nil {
				return nil, err
			}
			if opts.Progress != nil {
				opts.Progress(len(sg.States))
			}
		}
		expanded++
		cur := queue[0]
		queue = queue[1:]
		st := sg.States[cur]
		for _, t := range net.EnabledTransitions(st.Marking) {
			label := g.Label(t)
			nextCode := st.Code.Clone()
			if !label.IsDummy {
				val := st.Code.Get(label.Signal)
				switch label.Dir {
				case stg.Plus:
					if val {
						return nil, &InconsistencyError{
							Transition: g.TransitionString(t),
							Detail: fmt.Sprintf("signal %q is already 1 in state %s",
								g.Signal(label.Signal).Name, st.Code),
						}
					}
					nextCode.Set(label.Signal, true)
				case stg.Minus:
					if !val {
						return nil, &InconsistencyError{
							Transition: g.TransitionString(t),
							Detail: fmt.Sprintf("signal %q is already 0 in state %s",
								g.Signal(label.Signal).Name, st.Code),
						}
					}
					nextCode.Set(label.Signal, false)
				}
			}
			nextMarking := net.Fire(st.Marking, t)
			for _, p := range nextMarking.Places() {
				if nextMarking.Tokens(p) > bound {
					return nil, fmt.Errorf("stategraph: %w firing %s", petri.ErrUnbounded, g.TransitionString(t))
				}
			}
			next := State{Marking: nextMarking, Code: nextCode}
			mh := nextMarking.Hash() // hashed once, reused for both tables below
			foundMarking := false
			for _, entry := range markingCode[mh] {
				if !entry.marking.Equal(nextMarking) {
					continue
				}
				foundMarking = true
				if !entry.code.Equal(nextCode) {
					return nil, &InconsistencyError{
						Transition: g.TransitionString(t),
						Detail:     "the same marking is reachable with two different binary codes",
					}
				}
				break
			}
			if !foundMarking {
				markingCode[mh] = append(markingCode[mh], markingEntry{marking: nextMarking, code: nextCode})
			}
			h := stateHashFrom(mh, next.Code)
			idx := sg.lookup(h, next)
			if idx < 0 {
				idx = len(sg.States)
				if opts.MaxStates > 0 && idx >= opts.MaxStates {
					return nil, ErrStateLimit
				}
				sg.States = append(sg.States, next)
				sg.Succ = append(sg.Succ, nil)
				sg.insert(h, idx)
				queue = append(queue, idx)
			}
			e := len(sg.Edges)
			sg.Edges = append(sg.Edges, Edge{From: cur, To: idx, Transition: t})
			sg.Succ[cur] = append(sg.Succ[cur], e)
		}
	}
	return sg, nil
}

func stateHash(s State) uint64 {
	return stateHashFrom(s.Marking.Hash(), s.Code)
}

// stateHashFrom combines an already computed marking hash with the code, so
// the exploration loop hashes each successor's marking exactly once.
func stateHashFrom(markingHash uint64, code bitvec.Vec) uint64 {
	const prime = 1099511628211
	return (markingHash ^ code.Hash()) * prime
}

// NumStates reports the number of reachable states.
func (sg *Graph) NumStates() int { return len(sg.States) }

// NumEdges reports the number of state graph arcs.
func (sg *Graph) NumEdges() int { return len(sg.Edges) }

// EnabledTransitionsAt returns the transitions enabled in state i.
func (sg *Graph) EnabledTransitionsAt(i int) []petri.TransitionID {
	var out []petri.TransitionID
	for _, e := range sg.Succ[i] {
		out = append(out, sg.Edges[e].Transition)
	}
	return out
}

// SignalExcited reports whether some transition of the given signal and
// direction is enabled in state i.
func (sg *Graph) SignalExcited(i, signal int, dir stg.Direction) bool {
	for _, e := range sg.Succ[i] {
		l := sg.STG.Label(sg.Edges[e].Transition)
		if !l.IsDummy && l.Signal == signal && l.Dir == dir {
			return true
		}
	}
	return false
}

// ImpliedValue returns the next (implied) value of the signal in state i: the
// value the implementation logic must produce.  A rising excitation implies 1,
// a falling excitation implies 0, otherwise the current value is kept.
func (sg *Graph) ImpliedValue(i, signal int) bool {
	if sg.SignalExcited(i, signal, stg.Plus) {
		return true
	}
	if sg.SignalExcited(i, signal, stg.Minus) {
		return false
	}
	return sg.States[i].Code.Get(signal)
}

// ExcitationRegion returns the indices of the states in which a transition of
// the given signal and direction is enabled (the ER of the paper).
func (sg *Graph) ExcitationRegion(signal int, dir stg.Direction) []int {
	var out []int
	for i := range sg.States {
		if sg.SignalExcited(i, signal, dir) {
			out = append(out, i)
		}
	}
	return out
}

// QuiescentRegion returns the indices of the states in which the signal is
// stable at the given value (QR of the paper): the signal holds the value and
// no transition of the signal is enabled.
func (sg *Graph) QuiescentRegion(signal int, value bool) []int {
	var out []int
	for i, s := range sg.States {
		if s.Code.Get(signal) == value &&
			!sg.SignalExcited(i, signal, stg.Plus) && !sg.SignalExcited(i, signal, stg.Minus) {
			out = append(out, i)
		}
	}
	return out
}

// OnSet returns the cover of the binary codes of all states whose implied
// value of the signal is 1 (ER(+a) ∪ QR(a=1)).
func (sg *Graph) OnSet(signal int) *boolcover.Cover {
	c := boolcover.NewCover(sg.STG.NumSignals())
	for i, s := range sg.States {
		if sg.ImpliedValue(i, signal) {
			c.Add(boolcover.CubeFromMinterm(s.Code))
		}
	}
	return c
}

// OffSet returns the cover of the binary codes of all states whose implied
// value of the signal is 0.
func (sg *Graph) OffSet(signal int) *boolcover.Cover {
	c := boolcover.NewCover(sg.STG.NumSignals())
	for i, s := range sg.States {
		if !sg.ImpliedValue(i, signal) {
			c.Add(boolcover.CubeFromMinterm(s.Code))
		}
	}
	return c
}

// ReachableCodes returns the cover of all reachable binary codes; its
// complement is the DC-set.
func (sg *Graph) ReachableCodes() *boolcover.Cover {
	c := boolcover.NewCover(sg.STG.NumSignals())
	for _, s := range sg.States {
		c.Add(boolcover.CubeFromMinterm(s.Code))
	}
	return c
}

// Deadlocks returns the indices of states with no enabled transition.
func (sg *Graph) Deadlocks() []int {
	var out []int
	for i := range sg.States {
		if len(sg.Succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}
