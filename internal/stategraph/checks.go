package stategraph

import (
	"fmt"
	"sort"
	"strings"

	"punt/internal/stg"
)

// PersistencyViolation reports a state in which an excited output signal can
// be disabled by firing another transition — a violation of semi-modularity
// (output signal persistency), which would manifest as a hazard in any
// speed-independent implementation.
type PersistencyViolation struct {
	State      int // state in which the output is excited
	Signal     int // the excited output signal
	Dir        stg.Direction
	DisabledBy string // the transition whose firing disables the excitation
}

// String renders the violation for diagnostics.
func (v PersistencyViolation) String() string {
	return fmt.Sprintf("output signal %d%s excited in state %d is disabled by %s",
		v.Signal, v.Dir, v.State, v.DisabledBy)
}

// CheckOutputPersistency verifies semi-modularity: an excited output (or
// internal) signal must stay excited, in the same direction, after any other
// transition fires.  Input signals may be disabled by other inputs (that is
// the environment's choice) and are not checked.
func (sg *Graph) CheckOutputPersistency() []PersistencyViolation {
	var out []PersistencyViolation
	g := sg.STG
	for i := range sg.States {
		for _, sig := range g.OutputSignals() {
			for _, dir := range []stg.Direction{stg.Plus, stg.Minus} {
				if !sg.SignalExcited(i, sig, dir) {
					continue
				}
				// Firing any other enabled transition must preserve the
				// excitation.
				for _, eIdx := range sg.Succ[i] {
					e := sg.Edges[eIdx]
					l := g.Label(e.Transition)
					if !l.IsDummy && l.Signal == sig {
						continue // the signal's own firing resolves the excitation
					}
					if !sg.SignalExcited(e.To, sig, dir) {
						out = append(out, PersistencyViolation{
							State:      i,
							Signal:     sig,
							Dir:        dir,
							DisabledBy: g.TransitionString(e.Transition),
						})
					}
				}
			}
		}
	}
	return out
}

// CSCConflict reports two reachable states that carry the same binary code
// but disagree on the excited output signals, violating Complete State
// Coding.  Beyond the rendered excitation summaries it carries the structure
// a resolver (or a detailed report) needs: which output signals actually
// differ, and a shortest firing sequence from the initial state to each of
// the two conflicting states.
type CSCConflict struct {
	Code     string
	StateA   int
	StateB   int
	SignalsA string // excitation summary of state A
	SignalsB string
	// DiffSignals names the output signals whose excitation differs between
	// the two states, sorted.
	DiffSignals []string
	// TraceA and TraceB are shortest witness traces: the transition labels of
	// a minimal firing sequence from the initial state to StateA and StateB
	// respectively.
	TraceA []string
	TraceB []string
}

// String renders the conflict for diagnostics.
func (c CSCConflict) String() string {
	return fmt.Sprintf("CSC conflict on code %s: state %d excites {%s}, state %d excites {%s}",
		c.Code, c.StateA, c.SignalsA, c.StateB, c.SignalsB)
}

// excitationSummary returns a canonical description of the output excitations
// of a state, e.g. "b+,c-".
func (sg *Graph) excitationSummary(i int) string {
	return strings.Join(sg.excitationEdges(i), ",")
}

// excitationEdges lists the excited output signal edges of a state, sorted.
func (sg *Graph) excitationEdges(i int) []string {
	g := sg.STG
	var parts []string
	for _, sig := range g.OutputSignals() {
		if sg.SignalExcited(i, sig, stg.Plus) {
			parts = append(parts, g.Signal(sig).Name+"+")
		}
		if sg.SignalExcited(i, sig, stg.Minus) {
			parts = append(parts, g.Signal(sig).Name+"-")
		}
	}
	sort.Strings(parts)
	return parts
}

// diffSignals returns the sorted names of the output signals whose excitation
// (in either direction) differs between states a and b.
func (sg *Graph) diffSignals(a, b int) []string {
	g := sg.STG
	var out []string
	for _, sig := range g.OutputSignals() {
		if sg.SignalExcited(a, sig, stg.Plus) != sg.SignalExcited(b, sig, stg.Plus) ||
			sg.SignalExcited(a, sig, stg.Minus) != sg.SignalExcited(b, sig, stg.Minus) {
			out = append(out, g.Signal(sig).Name)
		}
	}
	sort.Strings(out)
	return out
}

// shortestTraces runs one breadth-first search from the initial state and
// returns, for every state, the edge through which it was first discovered
// (-1 for the initial state).  Following the parents backwards yields a
// shortest witness firing sequence.
func (sg *Graph) shortestTraces() []int {
	parent := make([]int, len(sg.States))
	for i := range parent {
		parent[i] = -2 // undiscovered
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range sg.Succ[cur] {
			to := sg.Edges[e].To
			if parent[to] == -2 {
				parent[to] = e
				queue = append(queue, to)
			}
		}
	}
	return parent
}

// witness renders the shortest firing sequence to state i under the parent
// edges computed by shortestTraces.
func (sg *Graph) witness(parent []int, i int) []string {
	var rev []string
	for cur := i; parent[cur] >= 0; {
		e := sg.Edges[parent[cur]]
		rev = append(rev, sg.STG.TransitionString(e.Transition))
		cur = e.From
	}
	out := make([]string, len(rev))
	for k, s := range rev {
		out[len(rev)-1-k] = s
	}
	return out
}

// CheckCSC verifies Complete State Coding: any two states with equal binary
// codes must have the same set of excited output signals.  Each conflict
// carries the differing output signals and shortest witness traces to both
// states, so callers (the stginfo report, the CSC resolver) can act on the
// conflict structurally instead of parsing the rendered string.
func (sg *Graph) CheckCSC() []CSCConflict {
	byCode := map[string][]int{}
	for i, s := range sg.States {
		k := s.Code.String()
		byCode[k] = append(byCode[k], i)
	}
	var out []CSCConflict
	var parent []int // witness BFS, computed lazily on the first conflict
	for code, states := range byCode {
		if len(states) < 2 {
			continue
		}
		ref := sg.excitationSummary(states[0])
		for _, other := range states[1:] {
			sum := sg.excitationSummary(other)
			if sum == ref {
				continue
			}
			if parent == nil {
				parent = sg.shortestTraces()
			}
			out = append(out, CSCConflict{
				Code:        code,
				StateA:      states[0],
				StateB:      other,
				SignalsA:    ref,
				SignalsB:    sum,
				DiffSignals: sg.diffSignals(states[0], other),
				TraceA:      sg.witness(parent, states[0]),
				TraceB:      sg.witness(parent, other),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		if out[i].StateA != out[j].StateA {
			return out[i].StateA < out[j].StateA
		}
		return out[i].StateB < out[j].StateB
	})
	return out
}

// CheckUSC verifies Unique State Coding: no two distinct states share a
// binary code.  It returns the codes that are shared.
func (sg *Graph) CheckUSC() []string {
	byCode := map[string]int{}
	for _, s := range sg.States {
		byCode[s.Code.String()]++
	}
	var out []string
	for code, n := range byCode {
		if n > 1 {
			out = append(out, code)
		}
	}
	sort.Strings(out)
	return out
}

// Report summarises all correctness checks in a human-readable form; it is
// what the stginfo command prints.
func (sg *Graph) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "states: %d, arcs: %d\n", sg.NumStates(), sg.NumEdges())
	if d := sg.Deadlocks(); len(d) > 0 {
		fmt.Fprintf(&sb, "deadlocks: %d\n", len(d))
	} else {
		sb.WriteString("deadlocks: none\n")
	}
	if v := sg.CheckOutputPersistency(); len(v) > 0 {
		fmt.Fprintf(&sb, "output persistency: %d violations (first: %s)\n", len(v), v[0])
	} else {
		sb.WriteString("output persistency: ok\n")
	}
	if u := sg.CheckUSC(); len(u) > 0 {
		fmt.Fprintf(&sb, "USC: %d shared codes\n", len(u))
	} else {
		sb.WriteString("USC: ok\n")
	}
	if c := sg.CheckCSC(); len(c) > 0 {
		fmt.Fprintf(&sb, "CSC: %d conflicts (first: %s)\n", len(c), c[0])
	} else {
		sb.WriteString("CSC: ok\n")
	}
	return sb.String()
}
