package core

import (
	"punt/internal/boolcover"
	"punt/internal/unfolding"
)

// approxTerm is one term of an approximated slice cover: either the
// excitation-region approximation of the slice's entry instance (Cond == nil)
// or the marked-region approximation of one condition of the approximation
// set.  When refinement replaces the approximation by the exact
// locally-enumerated cover, Exact is set.
type approxTerm struct {
	Slice *Slice
	Cond  *unfolding.Condition // nil for the ER term of the entry instance
	Cover *boolcover.Cover
	Exact bool
}

// signalApprox holds the approximated on- and off-set covers of one signal,
// term by term, so that refinement can replace exactly the offending terms.
type signalApprox struct {
	Signal   int
	OnTerms  []*approxTerm
	OffTerms []*approxTerm
}

// onCover returns the union of all on-set terms.
func (sa *signalApprox) onCover(nvars int) *boolcover.Cover {
	return unionTerms(sa.OnTerms, nvars)
}

// offCover returns the union of all off-set terms.
func (sa *signalApprox) offCover(nvars int) *boolcover.Cover {
	return unionTerms(sa.OffTerms, nvars)
}

func unionTerms(terms []*approxTerm, nvars int) *boolcover.Cover {
	c := boolcover.NewCover(nvars)
	for _, t := range terms {
		c.AddAll(t.Cover)
	}
	return c
}

// erApproxCube computes the excitation-region cover approximation C*_e of the
// slice's entry instance: the binary code of its minimal excitation cut with
// the literals of every signal that has an instance in the slice concurrent
// to the entry replaced by don't-cares.
func erApproxCube(u *unfolding.Unfolding, s *Slice) boolcover.Cube {
	cube := boolcover.CubeFromMinterm(s.MinCode)
	for _, f := range s.Events {
		if f == s.Entry {
			continue
		}
		lf := u.Label(f)
		if lf.IsDummy || lf.Signal == s.Signal {
			continue
		}
		if u.Concurrent(s.Entry, f) {
			cube.Set(lf.Signal, boolcover.Dash)
		}
	}
	return cube
}

// concurrentSliceSignals returns, for a condition of the slice, the set of
// signals that have an instance in the slice concurrent to the condition —
// the literals weakened to don't-care by the MR approximation.
func concurrentSliceSignals(u *unfolding.Unfolding, s *Slice, c *unfolding.Condition) map[int]bool {
	out := map[int]bool{}
	for _, f := range s.Events {
		lf := u.Label(f)
		if lf.IsDummy || lf.Signal == s.Signal {
			continue
		}
		if out[lf.Signal] {
			continue
		}
		if u.ConcurrentConditionEvent(c, f) {
			out[lf.Signal] = true
		}
	}
	return out
}

// mrCube builds one marked-region cube for the condition: the binary code of
// the local configuration of its preceding transition with the given signals
// replaced by don't-cares.
func mrCube(c *unfolding.Condition, dash map[int]bool) boolcover.Cube {
	cube := boolcover.CubeFromMinterm(c.Producer.Code)
	for sig := range dash {
		cube.Set(sig, boolcover.Dash)
	}
	return cube
}

// approximationSet selects the conditions of the slice used for the MR
// approximation (the paper's P'_a).  It keeps the conditions that lie on
// causal paths from the entry to the slice boundary (the "sequential"
// approximation set of the paper) plus any condition not subsumed by them,
// where subsumption is established structurally: condition c2 is dropped when
// some kept condition c1 is produced no later than c2, cannot have been
// consumed while c2 exists, and can only be consumed by leaving the slice or
// after c2 itself is consumed — then every cut containing c2 also contains
// c1, so dropping c2 loses no coverage.
func approximationSet(u *unfolding.Unfolding, s *Slice) []*unfolding.Condition {
	precedesBoundary := func(c *unfolding.Condition) bool {
		for _, n := range s.Boundary {
			if u.ConditionBeforeEvent(c, n) {
				return true
			}
		}
		return false
	}
	var group1, group2 []*unfolding.Condition
	for _, c := range s.Conditions {
		if precedesBoundary(c) {
			group1 = append(group1, c)
		} else {
			group2 = append(group2, c)
		}
	}
	kept := append([]*unfolding.Condition(nil), group1...)
	for _, c2 := range group2 {
		if !subsumedBy(u, s, c2, group1) {
			kept = append(kept, c2)
		}
	}
	return kept
}

// subsumedBy reports whether every slice cut containing c2 necessarily also
// contains one of the candidate conditions.
func subsumedBy(u *unfolding.Unfolding, s *Slice, c2 *unfolding.Condition, candidates []*unfolding.Condition) bool {
	for _, c1 := range candidates {
		if c1 == c2 {
			continue
		}
		// (a) c1 is produced no later than c2.
		if !(c1.Producer == c2.Producer || u.Before(c1.Producer, c2.Producer)) {
			continue
		}
		ok := true
		for _, f := range c1.Consumers {
			// (b) c1 is not consumed before c2 appears.
			if f == c2.Producer || u.Before(f, c2.Producer) {
				ok = false
				break
			}
			// (c) c1 can only be consumed by leaving the slice (a boundary
			// instance) or after c2 itself has been consumed.
			if s.isBoundary(f) {
				continue
			}
			consumedAfterC2 := false
			for _, g := range c2.Consumers {
				if g == f || u.Before(g, f) {
					consumedAfterC2 = true
					break
				}
			}
			if !consumedAfterC2 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// boundaryInputTerms implements the paper's special treatment of places that
// are inputs of an instance in next(a'): their MR approximation must not
// cover markings enabling the boundary instance, so it is built as a sum of
// approximations each of which keeps the literal of one immediately-preceding
// instance t_k at its pre-firing value (Section 4.2).  It returns
// (cover, true) when the structural preconditions for the construction hold;
// (nil, true) when the condition provably contributes no state of the slice's
// phase and can be skipped; and (nil, false) when the plain approximation
// must be used instead.
func boundaryInputTerms(u *unfolding.Unfolding, s *Slice, c *unfolding.Condition) (*boolcover.Cover, bool) {
	var boundary *unfolding.Event
	for _, f := range c.Consumers {
		if s.isBoundary(f) {
			if boundary != nil && boundary != f {
				return nil, false // feeds two boundary instances: fall back
			}
			boundary = f
		}
	}
	if boundary == nil {
		return nil, false
	}
	// Examine the other input conditions of the boundary instance.
	var concurrentProducers []*unfolding.Event
	for _, b := range boundary.Preset {
		if b == c {
			continue
		}
		// The construction is only sound when the sibling input can only be
		// consumed by the boundary instance itself.
		if len(b.Consumers) != 1 {
			return nil, false
		}
		prod := b.Producer
		switch {
		case prod == c.Producer || u.Before(prod, c.Producer) || prod.IsRoot && c.Producer.IsRoot:
			// Already produced when c appears and never consumed inside the
			// slice: it does not prevent the boundary from being enabled.
			continue
		case prod.IsRoot:
			// Produced by the initial state: same as the "already produced"
			// case.
			continue
		case u.ConcurrentConditionEvent(c, prod):
			// The pre-firing value of prod's signal is only determined by the
			// base code if no other instance of that signal can fire
			// concurrently to c.
			lp := u.Label(prod)
			if lp.IsDummy {
				return nil, false
			}
			for _, other := range u.EventsOfSignal(lp.Signal) {
				if other != prod && u.ConcurrentConditionEvent(c, other) {
					return nil, false
				}
			}
			concurrentProducers = append(concurrentProducers, prod)
		default:
			return nil, false
		}
	}
	if len(concurrentProducers) == 0 {
		// Every other input of the boundary is marked whenever c is marked:
		// the boundary is enabled throughout c's marked region, so the region
		// contributes no state of this slice's phase.
		return nil, true
	}
	dash := concurrentSliceSignals(u, s, c)
	cover := boolcover.NewCover(u.STG.NumSignals())
	for _, tk := range concurrentProducers {
		restricted := map[int]bool{}
		for sig := range dash {
			restricted[sig] = true
		}
		delete(restricted, u.Label(tk).Signal)
		cover.Add(mrCube(c, restricted))
	}
	return cover, true
}

// approximateSlice builds the list of approximation terms of a slice: the ER
// approximation of its entry instance (unless the entry is the initial
// transition) followed by the MR approximations of the approximation set,
// with the boundary-input places handled by the restricted construction of
// Section 4.2.
func approximateSlice(u *unfolding.Unfolding, s *Slice) []*approxTerm {
	nvars := u.STG.NumSignals()
	var terms []*approxTerm
	addCover := func(cond *unfolding.Condition, cov *boolcover.Cover) {
		if cov.IsEmpty() {
			return
		}
		terms = append(terms, &approxTerm{Slice: s, Cond: cond, Cover: cov})
	}
	addCube := func(cond *unfolding.Condition, cube boolcover.Cube) {
		cov := boolcover.NewCover(nvars)
		cov.Add(cube)
		addCover(cond, cov)
	}
	if !s.Entry.IsRoot {
		addCube(nil, erApproxCube(u, s))
	}
	for _, c := range approximationSet(u, s) {
		if cov, handled := boundaryInputTerms(u, s, c); handled {
			if cov != nil {
				addCover(c, cov)
			}
			continue
		}
		addCube(c, mrCube(c, concurrentSliceSignals(u, s, c)))
	}
	if len(terms) == 0 {
		// Degenerate slice (e.g. the initial slice of a signal that changes
		// immediately): the minimal cut itself is its only state.
		cov := boolcover.NewCover(nvars)
		cov.Add(boolcover.CubeFromMinterm(s.MinCode))
		terms = append(terms, &approxTerm{Slice: s, Cover: cov})
	}
	return terms
}

// approximateSignal builds the approximated on- and off-set covers of one
// signal from its slices.
func approximateSignal(u *unfolding.Unfolding, signal int, on, off []*Slice) *signalApprox {
	sa := &signalApprox{Signal: signal}
	for _, s := range on {
		sa.OnTerms = append(sa.OnTerms, approximateSlice(u, s)...)
	}
	for _, s := range off {
		sa.OffTerms = append(sa.OffTerms, approximateSlice(u, s)...)
	}
	return sa
}
