package core

import (
	"punt/internal/bitvec"
	"punt/internal/boolcover"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// sliceWalk is a token-game walk restricted to a slice of the segment.  It
// starts at a given cut/code, fires only the allowed events, never fires or
// crosses the slice boundary, and reports every visited state whose implied
// value matches the slice phase.
type sliceWalk struct {
	u     *unfolding.Unfolding
	s     *Slice
	allow map[int]bool // event IDs that may be fired
}

func newSliceWalk(u *unfolding.Unfolding, s *Slice) *sliceWalk {
	w := &sliceWalk{u: u, s: s, allow: map[int]bool{}}
	for _, e := range s.Events {
		w.allow[e.ID] = true
	}
	return w
}

// run explores from the given start cut and code.  For every visited state it
// decides whether the state belongs to the slice (no boundary instance is
// excited there); if so, visit is called with the state's binary code.
// States in which a boundary instance is excited are neither reported nor
// explored further: they belong to the opposite phase and are handled by the
// slices of that phase.
func (w *sliceWalk) run(startCut []*unfolding.Condition, startCode bitvec.Vec, fireable func(*unfolding.Event) bool, visit func(code bitvec.Vec)) {
	type node struct {
		cut  []*unfolding.Condition
		code bitvec.Vec
	}
	start := node{cut: startCut, code: startCode.Clone()}
	// seen dedups cuts by 64-bit hash with full verification inside each
	// bucket: a collision must never prune a branch of the exact walk.
	seen := map[uint64][][]*unfolding.Condition{unfolding.CutHash(start.cut): {start.cut}}
	visited := func(cut []*unfolding.Condition, h uint64) bool {
		for _, prev := range seen[h] {
			if unfolding.SameCut(prev, cut) {
				return true
			}
		}
		return false
	}
	queue := []node{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		enabled := w.u.EnabledAt(cur.cut)
		boundaryExcited := false
		for _, e := range enabled {
			if w.s.isBoundary(e) {
				boundaryExcited = true
				break
			}
		}
		if boundaryExcited {
			continue
		}
		visit(cur.code)
		for _, e := range enabled {
			if !w.allow[e.ID] {
				continue
			}
			if fireable != nil && !fireable(e) {
				continue
			}
			nextCut := w.u.FireAt(cur.cut, e)
			nextCode := cur.code.Clone()
			if l := w.u.Label(e); !l.IsDummy {
				nextCode.Set(l.Signal, l.Dir == stg.Plus)
			}
			h := unfolding.CutHash(nextCut)
			if !visited(nextCut, h) {
				seen[h] = append(seen[h], nextCut)
				queue = append(queue, node{cut: nextCut, code: nextCode})
			}
		}
	}
}

// exactSliceCover enumerates the states encapsulated by the slice and returns
// the exact cover of their binary codes.
func exactSliceCover(u *unfolding.Unfolding, s *Slice) *boolcover.Cover {
	cover := boolcover.NewCover(u.STG.NumSignals())
	w := newSliceWalk(u, s)
	w.run(s.MinCut, s.MinCode, nil, func(code bitvec.Vec) {
		cover.Add(boolcover.CubeFromMinterm(code))
	})
	return cover
}

// exactExcitationCover enumerates the states in which the slice's entry
// instance is excited (its excitation region) and returns their exact cover.
// For the root entry it returns nil: the initial transition has no excitation
// region.
func exactExcitationCover(u *unfolding.Unfolding, s *Slice) *boolcover.Cover {
	if s.Entry.IsRoot {
		return nil
	}
	cover := boolcover.NewCover(u.STG.NumSignals())
	w := newSliceWalk(u, s)
	w.run(s.MinCut, s.MinCode, func(e *unfolding.Event) bool {
		return e != s.Entry // keep the entry excited: never fire it
	}, func(code bitvec.Vec) {
		cover.Add(boolcover.CubeFromMinterm(code))
	})
	return cover
}

// exactMRCover enumerates the states of the slice in which the given
// condition is marked and returns their exact cover (the exact marked region
// of the place instance, restricted to the slice).
func exactMRCover(u *unfolding.Unfolding, s *Slice, c *unfolding.Condition) *boolcover.Cover {
	cover := boolcover.NewCover(u.STG.NumSignals())
	w := newSliceWalk(u, s)
	prod := c.Producer
	startCut := prod.Cut
	startCode := prod.Code
	consumers := map[int]bool{}
	for _, e := range c.Consumers {
		consumers[e.ID] = true
	}
	w.run(startCut, startCode, func(e *unfolding.Event) bool {
		return !consumers[e.ID] // keep the condition marked
	}, func(code bitvec.Vec) {
		cover.Add(boolcover.CubeFromMinterm(code))
	})
	return cover
}
