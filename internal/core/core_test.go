package core

import (
	"context"
	"errors"
	"testing"

	"punt/internal/benchgen"
	"punt/internal/boolcover"
	"punt/internal/gatelib"
	"punt/internal/stategraph"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// verifyAgainstSG checks every gate of the implementation against the
// explicit state graph of a freshly built copy of the STG.
func verifyAgainstSG(t *testing.T, mk func() *stg.STG, im *gatelib.Implementation) {
	t.Helper()
	g := mk()
	sg, err := stategraph.Build(context.Background(), g, stategraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, gate := range im.Gates {
		sig, ok := g.SignalIndex(gate.Signal)
		if !ok {
			t.Fatalf("unknown signal %q in implementation", gate.Signal)
		}
		switch gate.Arch {
		case gatelib.ComplexGate:
			if err := sg.VerifyCover(sig, gate.Cover); err != nil {
				t.Fatalf("gate %s: %v", gate.Signal, err)
			}
		default:
			if err := sg.VerifySetReset(sig, gate.Set, gate.Reset); err != nil {
				t.Fatalf("gate %s: %v", gate.Signal, err)
			}
		}
	}
}

func TestFig1ApproximateSynthesis(t *testing.T) {
	g := benchgen.PaperFig1()
	s := New(Options{})
	im, stats, err := s.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	gate, ok := im.Gate("b")
	if !ok {
		t.Fatal("no gate for b")
	}
	if !gate.Cover.Equivalent(boolcover.CoverFromStrings("1--", "--1")) {
		t.Fatalf("C(b) = %s, want a + c", gate.Cover)
	}
	if im.Literals() != 2 {
		t.Fatalf("literals = %d, want 2", im.Literals())
	}
	if stats.Events == 0 || stats.Total == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	// With the boundary-place treatment of Section 4.2 the approximation is
	// already interference-free on the paper's example: no refinement needed.
	if stats.TermsRefined != 0 {
		t.Logf("fig1 needed %d refined terms", stats.TermsRefined)
	}
	verifyAgainstSG(t, benchgen.PaperFig1, im)
}

func TestRefinementExercised(t *testing.T) {
	// Fig. 4 contains marked regions whose approximations interfere with the
	// opposite phase (the situation of Section 4.3); the refinement loop must
	// resolve them and the result must still verify against the state graph.
	g := benchgen.PaperFig4()
	im, stats, err := New(Options{}).Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TermsRefined == 0 {
		t.Skip("approximation needed no refinement on this structure")
	}
	if stats.SignalsRefined == 0 {
		t.Fatal("SignalsRefined must be positive when TermsRefined is")
	}
	verifyAgainstSG(t, benchgen.PaperFig4, im)
}

func TestFig1ExactSynthesis(t *testing.T) {
	g := benchgen.PaperFig1()
	s := New(Options{Mode: Exact})
	im, _, err := s.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	gate, _ := im.Gate("b")
	if !gate.Cover.Equivalent(boolcover.CoverFromStrings("1--", "--1")) {
		t.Fatalf("C(b) = %s, want a + c", gate.Cover)
	}
	verifyAgainstSG(t, benchgen.PaperFig1, im)
}

func TestFig1ExactSliceStatesMatchPaper(t *testing.T) {
	// Section 4.1: the on-set partitioning of the segment for signal b
	// consists of two slices covering {100,110,101,111} and {001,011}; the
	// off-set slices cover {000,010}.
	g := benchgen.PaperFig1()
	u, err := unfolding.Build(context.Background(), g, unfolding.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.SignalIndex("b")
	onSlices, offSlices := buildSlices(u, b)
	if len(onSlices) != 2 {
		t.Fatalf("on-slices = %d, want 2", len(onSlices))
	}
	onAll := boolcover.NewCover(3)
	for _, sl := range onSlices {
		onAll.AddAll(exactSliceCover(u, sl))
	}
	wantOn := boolcover.CoverFromStrings("100", "110", "101", "111", "001", "011")
	if !onAll.Equivalent(wantOn) {
		t.Fatalf("exact on covers = %s", onAll)
	}
	offAll := boolcover.NewCover(3)
	for _, sl := range offSlices {
		offAll.AddAll(exactSliceCover(u, sl))
	}
	if !offAll.Equivalent(boolcover.CoverFromStrings("000", "010")) {
		t.Fatalf("exact off covers = %s", offAll)
	}
}

func TestFig4ApproximateSynthesis(t *testing.T) {
	// Fig. 4 is a pure marked graph with wide concurrency: the approximation
	// plus (at most light) refinement must produce a correct implementation
	// that the explicit state graph verifies.
	g := benchgen.PaperFig4()
	s := New(Options{})
	im, stats, err := s.Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig4: %s", stats)
	if stats.Events >= 40 {
		t.Fatalf("fig4 segment unexpectedly large: %d events", stats.Events)
	}
	verifyAgainstSG(t, benchgen.PaperFig4, im)
}

func TestExactAndApproximateAgreeOnLiterals(t *testing.T) {
	for _, mk := range []func() *stg.STG{benchgen.PaperFig1, benchgen.PaperFig4, benchgen.Handshake} {
		g := mk()
		approx, _, err := New(Options{}).Synthesize(context.Background(), g)
		if err != nil {
			t.Fatalf("%s approx: %v", g.Name(), err)
		}
		exact, _, err := New(Options{Mode: Exact}).Synthesize(context.Background(), mk())
		if err != nil {
			t.Fatalf("%s exact: %v", g.Name(), err)
		}
		verifyAgainstSG(t, mk, approx)
		verifyAgainstSG(t, mk, exact)
		if approx.Literals() != exact.Literals() {
			t.Logf("%s: literal counts differ approx=%d exact=%d (both verified correct)",
				g.Name(), approx.Literals(), exact.Literals())
		}
	}
}

func TestAgreementWithStateGraphBaseline(t *testing.T) {
	// The unfolding-based flow and the SG-based exact flow must produce
	// functionally equivalent gates (verified against the SG) with identical
	// literal counts on these benchmarks.
	for _, mk := range []func() *stg.STG{benchgen.PaperFig1, benchgen.PaperFig4, benchgen.Handshake} {
		g := mk()
		punt, _, err := New(Options{}).Synthesize(context.Background(), g)
		if err != nil {
			t.Fatalf("%s punt: %v", g.Name(), err)
		}
		sg, err := stategraph.Build(context.Background(), mk(), stategraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, gate := range punt.Gates {
			sig, _ := mk().SignalIndex(gate.Signal)
			on := sg.OnSet(sig)
			off := sg.OffSet(sig)
			ref := boolcover.MinimizeAgainstOff(on, off)
			if gate.Cover.Literals() > ref.Literals() {
				t.Errorf("%s gate %s: PUNT cover has %d literals, SG-exact has %d",
					g.Name(), gate.Signal, gate.Cover.Literals(), ref.Literals())
			}
		}
	}
}

func TestCElementArchitecture(t *testing.T) {
	for _, arch := range []gatelib.Architecture{gatelib.StandardC, gatelib.RSLatch} {
		g := benchgen.PaperFig4()
		im, _, err := New(Options{Arch: arch}).Synthesize(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		for _, gate := range im.Gates {
			if gate.Set == nil || gate.Reset == nil {
				t.Fatalf("gate %s missing set/reset", gate.Signal)
			}
		}
		verifyAgainstSG(t, benchgen.PaperFig4, im)
	}
}

func TestCSCConflictDetected(t *testing.T) {
	b := stg.NewBuilder("csc-conflict")
	b.Inputs("in").Outputs("out1", "out2")
	b.Chain("in+", "out1+", "in-", "out1-", "in+/2", "out2+", "in-/2", "out2-")
	b.Arc("out2-", "in+").MarkBetween("out2-", "in+")
	b.InitialState("000")
	g := b.MustBuild()

	for _, mode := range []Mode{Approximate, Exact} {
		_, _, err := New(Options{Mode: mode}).Synthesize(context.Background(), b.MustBuild())
		var csc *CSCError
		if !errors.As(err, &csc) {
			t.Fatalf("mode %s: expected CSCError, got %v", mode, err)
		}
	}
	_ = g
}

func TestNonSemiModularRejected(t *testing.T) {
	// An output in direct conflict with an input signal.
	g := stg.New("nonpersistent")
	in := g.AddSignal("in", stg.Input)
	out := g.AddSignal("out", stg.Output)
	p0 := g.AddPlace("p0")
	p1 := g.AddPlace("p1")
	p2 := g.AddPlace("p2")
	tOut := g.AddTransition(out, stg.Plus)
	tIn := g.AddTransition(in, stg.Plus)
	tOutM := g.AddTransition(out, stg.Minus)
	tInM := g.AddTransition(in, stg.Minus)
	g.AddArcPT(p0, tOut)
	g.AddArcPT(p0, tIn)
	g.AddArcTP(tOut, p1)
	g.AddArcTP(tIn, p2)
	g.AddArcPT(p1, tOutM)
	g.AddArcPT(p2, tInM)
	g.AddArcTP(tOutM, p0)
	g.AddArcTP(tInM, p0)
	g.MarkInitially(p0)
	if err := g.InferInitialState(0); err != nil {
		t.Fatal(err)
	}
	_, _, err := New(Options{}).Synthesize(context.Background(), g)
	if !errors.Is(err, ErrNotSemiModular) {
		t.Fatalf("expected ErrNotSemiModular, got %v", err)
	}
}

func TestConstantSignal(t *testing.T) {
	// A declared output that never switches is implemented as a constant.
	b := stg.NewBuilder("constant")
	b.Inputs("req").Outputs("ack", "never")
	b.Arc("req+", "ack+").Arc("ack+", "req-").Arc("req-", "ack-").Arc("ack-", "req+").MarkBetween("ack-", "req+")
	b.InitialState("000")
	g := b.MustBuild()
	im, _, err := New(Options{}).Synthesize(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	gate, ok := im.Gate("never")
	if !ok {
		t.Fatal("constant signal must still get a gate")
	}
	if !gate.Cover.IsEmpty() {
		t.Fatalf("constant-0 signal should have the empty cover, got %s", gate.Cover)
	}
}

func TestModeString(t *testing.T) {
	if Approximate.String() != "approximate" || Exact.String() != "exact" {
		t.Fatal("mode names changed")
	}
}

func TestUnfoldHelper(t *testing.T) {
	u, err := Unfold(context.Background(), benchgen.Handshake(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEvents() == 0 {
		t.Fatal("empty unfolding")
	}
}
