// Package core implements the paper's contribution: synthesis of
// speed-independent circuits directly from the STG-unfolding segment.
//
// For every output signal the segment is partitioned into slices — portions
// of the partial order bounded by a minimal cut (where an instance of the
// signal becomes excited) and the cuts just before the next change of the
// signal.  Each slice represents a connected set of state-graph states that
// belong to the signal's on-set or off-set.  Covers for these state sets are
// obtained either exactly (by enumerating the states encapsulated in the
// slice) or approximately (from the binary codes of local configurations,
// weakening the literals of concurrent signals), with the approximated covers
// refined only where the on- and off-set covers interfere.  See DESIGN.md for
// the correspondence between this package and the sections of the paper.
package core

import (
	"sort"

	"punt/internal/bitvec"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// Slice is a slice of the STG-unfolding segment for one phase of one signal:
// the states where the signal's implied value is 1 (an on-slice, entered by a
// rising instance or by the initial state with the signal at 1) or 0 (an
// off-slice).
type Slice struct {
	// Signal is the index of the signal the slice belongs to.
	Signal int
	// Phase is true for on-slices (implied value 1) and false for off-slices.
	Phase bool
	// Entry is the entry transition of the slice: an instance of the signal
	// edge that enters the phase, or the root event for the initial slice.
	Entry *unfolding.Event
	// MinCut is the minimal cut of the slice: the cut at which the entry
	// instance becomes excited (or the initial cut for the root entry).
	MinCut []*unfolding.Condition
	// MinCode is the binary code of the minimal cut.
	MinCode bitvec.Vec
	// Boundary are the instances of the signal's next change: firing any of
	// them leaves the slice.  The states in which a boundary instance is
	// excited belong to the opposite phase and are excluded from the slice.
	Boundary []*unfolding.Event
	// Events are the events that may fire inside the slice, including the
	// entry event itself when it is not the root.
	Events []*unfolding.Event
	// Conditions are the place instances of the slice that are sequential to
	// the entry event; they are the candidates of the approximation set.
	Conditions []*unfolding.Condition
}

// buildSlices partitions the segment into the on- and off-slices of the given
// signal.
func buildSlices(u *unfolding.Unfolding, signal int) (on, off []*Slice) {
	g := u.STG
	initial := g.InitialState().Get(signal)

	for _, e := range u.EventsOfEdge(signal, stg.Plus) {
		on = append(on, newSlice(u, signal, true, e))
	}
	for _, e := range u.EventsOfEdge(signal, stg.Minus) {
		off = append(off, newSlice(u, signal, false, e))
	}
	// The initial slice: the phase the signal is in at the initial state,
	// entered by the (virtual) initial transition.
	if initial {
		on = append(on, newSlice(u, signal, true, u.Root))
	} else {
		off = append(off, newSlice(u, signal, false, u.Root))
	}
	return on, off
}

// newSlice constructs the slice entered by the given event for the given
// signal phase.
func newSlice(u *unfolding.Unfolding, signal int, phase bool, entry *unfolding.Event) *Slice {
	s := &Slice{Signal: signal, Phase: phase, Entry: entry}
	if entry.IsRoot {
		s.MinCut = u.MinStableCut(entry)
		s.MinCode = entry.Code.Clone()
		s.Boundary = u.First(signal)
	} else {
		s.MinCut = u.MinExcitationCut(entry)
		s.MinCode = u.ParentCode(entry)
		s.Boundary = u.Next(entry)
	}

	beyond := func(f *unfolding.Event) bool {
		for _, n := range s.Boundary {
			if n == f || u.Before(n, f) {
				return true
			}
		}
		return false
	}

	for _, f := range u.Events {
		if f.IsRoot {
			continue
		}
		if f.IsCutoff && f != entry {
			// Cut-off events never fire inside a slice: the states beyond them
			// are represented by the configurations of their correspondents
			// (McMillan's completeness argument), so excluding them loses no
			// states and keeps every visited cut inside the fully expanded
			// part of the segment.
			continue
		}
		lf := u.Label(f)
		if !lf.IsDummy && lf.Signal == signal && f != entry {
			continue // other instances of the signal never fire inside the slice
		}
		if beyond(f) {
			continue
		}
		if !entry.IsRoot {
			if f != entry {
				if u.Before(f, entry) {
					continue // already fired before the slice is entered
				}
				if u.InConflict(entry, f) {
					continue // belongs to a different branch of a choice
				}
			}
		}
		s.Events = append(s.Events, f)
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].ID < s.Events[j].ID })

	// The approximation-set candidates are the conditions sequential to the
	// entry: produced by the entry itself or by a slice event causally after
	// it (for the root entry, every condition produced by the root or by a
	// slice event qualifies).
	inEvents := map[int]bool{}
	for _, f := range s.Events {
		inEvents[f.ID] = true
	}
	for _, c := range u.Conditions {
		prod := c.Producer
		if prod == nil {
			continue
		}
		switch {
		case prod.IsRoot:
			if entry.IsRoot {
				s.Conditions = append(s.Conditions, c)
			}
		case prod == entry:
			s.Conditions = append(s.Conditions, c)
		case inEvents[prod.ID] && (entry.IsRoot || u.Before(entry, prod)):
			s.Conditions = append(s.Conditions, c)
		}
	}
	sort.Slice(s.Conditions, func(i, j int) bool { return s.Conditions[i].ID < s.Conditions[j].ID })
	return s
}

// containsEvent reports whether the event belongs to the slice (may fire
// inside it).
func (s *Slice) containsEvent(f *unfolding.Event) bool {
	for _, e := range s.Events {
		if e == f {
			return true
		}
	}
	return false
}

// isBoundary reports whether the event is one of the slice's boundary
// instances.
func (s *Slice) isBoundary(f *unfolding.Event) bool {
	for _, n := range s.Boundary {
		if n == f {
			return true
		}
	}
	return false
}
