package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"punt/internal/boolcover"
	"punt/internal/faultinject"
	"punt/internal/gatelib"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

// Mode selects how covers are derived from the segment.
type Mode int

// Synthesis modes.
const (
	// Approximate derives covers from concurrency information local to the
	// unfolding and refines them only where the on- and off-set covers
	// interfere (Section 4.2/4.3 of the paper).  This is the default.
	Approximate Mode = iota
	// Exact enumerates the states encapsulated by every slice (Section 4.1).
	Exact
)

// String names the mode.
func (m Mode) String() string {
	if m == Exact {
		return "exact"
	}
	return "approximate"
}

// ErrNotSemiModular is returned when the specification violates
// semi-modularity (output persistency) and therefore has no hazard-free
// speed-independent implementation.
var ErrNotSemiModular = errors.New("core: specification is not semi-modular")

// SemiModularityError carries the structural persistency violations found on
// the segment.  It wraps ErrNotSemiModular, so errors.Is keeps working.
type SemiModularityError struct {
	Violations []unfolding.PersistencyViolation
}

func (e *SemiModularityError) Error() string {
	if len(e.Violations) == 1 {
		return fmt.Sprintf("%v: %s", ErrNotSemiModular, e.Violations[0])
	}
	return fmt.Sprintf("%v: %s (and %d more)", ErrNotSemiModular, e.Violations[0], len(e.Violations)-1)
}

func (e *SemiModularityError) Unwrap() error { return ErrNotSemiModular }

// ProgressFunc receives coarse progress notifications during synthesis.
// Stage is "unfold" while the segment is under construction (signal empty,
// events = segment size so far) and "covers" when the covers of a signal are
// about to be derived (signal names it, events = final segment size).
type ProgressFunc func(stage, signal string, events int)

// Options configures the PUNT synthesizer.
type Options struct {
	// Mode selects exact or approximate cover derivation (default
	// Approximate).
	Mode Mode
	// Arch selects the implementation architecture (default ComplexGate, the
	// architecture the paper demonstrates).
	Arch gatelib.Architecture
	// MaxEvents bounds the size of the unfolding segment (0 = default).
	MaxEvents int
	// Workers bounds the parallelism of the segment construction (see
	// unfolding.Options.Workers); <= 1 selects the sequential path.
	Workers int
	// SkipSemiModularityCheck disables the structural semi-modularity check
	// (useful for benchmarking the synthesis core in isolation).
	SkipSemiModularityCheck bool
	// Progress, when non-nil, receives coarse progress notifications.  It must
	// be cheap and safe to call from the synthesis goroutine.
	Progress ProgressFunc
}

// Stats is the timing breakdown reported for a synthesis run; the field names
// follow the columns of Table 1 of the paper.
type Stats struct {
	// UnfTime is the time taken to construct the STG-unfolding segment
	// ("UnfTim").
	UnfTime time.Duration
	// SynTime is the time taken to derive the on- and off-set covers from the
	// segment, including approximation and refinement ("SynTim").
	SynTime time.Duration
	// EspTime is the time spent in two-level minimisation of the covers
	// ("EspTim").
	EspTime time.Duration
	// Total is the complete wall-clock synthesis time ("TotTim").
	Total time.Duration

	// Segment size statistics.
	Events     int
	Conditions int
	Cutoffs    int

	// TermsRefined counts approximation terms that refinement had to replace
	// by exact covers; 0 means the pure approximation was already correct.
	TermsRefined int
	// SignalsRefined counts signals for which any refinement was necessary.
	SignalsRefined int
}

// String summarises the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("unf=%v syn=%v esp=%v total=%v events=%d cutoffs=%d refined-terms=%d",
		s.UnfTime.Round(time.Microsecond), s.SynTime.Round(time.Microsecond),
		s.EspTime.Round(time.Microsecond), s.Total.Round(time.Microsecond),
		s.Events, s.Cutoffs, s.TermsRefined)
}

// Synthesizer is the unfolding-based synthesis engine (the paper's "PUNT ACG"
// flow).
type Synthesizer struct {
	Options Options
}

// New returns a synthesizer with the given options.
func New(opts Options) *Synthesizer {
	return &Synthesizer{Options: opts}
}

// Synthesize derives a speed-independent implementation for every output and
// internal signal of the STG.  It checks ctx between phases (and, via the
// unfolding builder, inside the segment construction loop) and aborts with
// the context's error when cancelled.
func (s *Synthesizer) Synthesize(ctx context.Context, g *stg.STG) (*gatelib.Implementation, *Stats, error) {
	stats := &Stats{}
	totalStart := time.Now()

	uopts := unfolding.Options{MaxEvents: s.Options.MaxEvents, Workers: s.Options.Workers}
	if p := s.Options.Progress; p != nil {
		uopts.Progress = func(events int) { p("unfold", "", events) }
	}
	unfStart := time.Now()
	u, err := unfolding.Build(ctx, g, uopts)
	stats.UnfTime = time.Since(unfStart)
	if err != nil {
		return nil, stats, err
	}
	seg := u.Statistics()
	stats.Events, stats.Conditions, stats.Cutoffs = seg.Events, seg.Conditions, seg.Cutoffs

	if !s.Options.SkipSemiModularityCheck {
		if v := u.CheckSemiModularity(); len(v) > 0 {
			return nil, stats, &SemiModularityError{Violations: v}
		}
	}

	im := &gatelib.Implementation{Name: g.Name(), SignalNames: g.SignalNames()}
	nvars := g.NumSignals()
	for _, sig := range g.OutputSignals() {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if err := faultinject.Check(ctx, faultinject.OpCoreCovers); err != nil {
			return nil, stats, err
		}
		if p := s.Options.Progress; p != nil {
			p("covers", g.Signal(sig).Name, stats.Events)
		}
		synStart := time.Now()
		on, off, erPlus, erMinus, refined, err := s.coversFor(u, sig)
		stats.SynTime += time.Since(synStart)
		if err != nil {
			return nil, stats, err
		}
		if refined > 0 {
			stats.TermsRefined += refined
			stats.SignalsRefined++
		}

		espStart := time.Now()
		gate := s.buildGate(g, sig, on, off, erPlus, erMinus, nvars)
		stats.EspTime += time.Since(espStart)
		im.Gates = append(im.Gates, gate)
	}
	stats.Total = time.Since(totalStart)
	return im, stats, nil
}

// coversFor derives the on/off-set covers (and, for memory-element
// architectures, the excitation-region covers) of one signal.
func (s *Synthesizer) coversFor(u *unfolding.Unfolding, sig int) (on, off, erPlus, erMinus *boolcover.Cover, refined int, err error) {
	g := u.STG
	nvars := g.NumSignals()

	onSlices, offSlices := buildSlices(u, sig)

	// Signals that never switch are constant: their cover is the constant of
	// their initial value and the opposite set is empty.
	if len(u.EventsOfSignal(sig)) == 0 {
		if g.InitialState().Get(sig) {
			return boolcover.Universe(nvars), boolcover.NewCover(nvars), boolcover.NewCover(nvars), boolcover.NewCover(nvars), 0, nil
		}
		return boolcover.NewCover(nvars), boolcover.Universe(nvars), boolcover.NewCover(nvars), boolcover.NewCover(nvars), 0, nil
	}

	switch s.Options.Mode {
	case Exact:
		on = boolcover.NewCover(nvars)
		for _, sl := range onSlices {
			on.AddAll(exactSliceCover(u, sl))
		}
		off = boolcover.NewCover(nvars)
		for _, sl := range offSlices {
			off.AddAll(exactSliceCover(u, sl))
		}
		if on.Intersects(off) {
			return nil, nil, nil, nil, 0, &CSCError{Signal: g.Signal(sig).Name}
		}
	default:
		sa := approximateSignal(u, sig, onSlices, offSlices)
		rs, rerr := refine(u, sa)
		if rerr != nil {
			return nil, nil, nil, nil, rs.TermsRefined, rerr
		}
		refined = rs.TermsRefined
		on, off = coverPair(sa, nvars)
	}

	if s.Options.Arch != gatelib.ComplexGate {
		erPlus = boolcover.NewCover(nvars)
		for _, sl := range onSlices {
			if sl.Entry.IsRoot {
				continue
			}
			erPlus.AddAll(exactExcitationCover(u, sl))
		}
		erMinus = boolcover.NewCover(nvars)
		for _, sl := range offSlices {
			if sl.Entry.IsRoot {
				continue
			}
			erMinus.AddAll(exactExcitationCover(u, sl))
		}
	}
	return on, off, erPlus, erMinus, refined, nil
}

// buildGate minimises the covers and assembles the gate in the selected
// architecture.
func (s *Synthesizer) buildGate(g *stg.STG, sig int, on, off, erPlus, erMinus *boolcover.Cover, nvars int) gatelib.Gate {
	name := g.Signal(sig).Name
	switch s.Options.Arch {
	case gatelib.ComplexGate:
		return gatelib.Gate{
			Signal: name,
			Arch:   gatelib.ComplexGate,
			Cover:  boolcover.MinimizeAgainstOff(on, off),
		}
	default:
		return gatelib.Gate{
			Signal: name,
			Arch:   s.Options.Arch,
			Set:    boolcover.MinimizeAgainstOff(erPlus, off),
			Reset:  boolcover.MinimizeAgainstOff(erMinus, on),
		}
	}
}

// Unfold exposes the segment construction on its own, with the same options
// as the synthesizer; used by callers that only need the segment or its
// verification.
func Unfold(ctx context.Context, g *stg.STG, opts Options) (*unfolding.Unfolding, error) {
	uopts := unfolding.Options{MaxEvents: opts.MaxEvents, Workers: opts.Workers}
	if p := opts.Progress; p != nil {
		uopts.Progress = func(events int) { p("unfold", "", events) }
	}
	return unfolding.Build(ctx, g, uopts)
}
