package core

import (
	"fmt"

	"punt/internal/boolcover"
	"punt/internal/unfolding"
)

// CSCError reports that after complete refinement the on- and off-set covers
// of a signal still intersect: the specification violates Complete State
// Coding and cannot be implemented without changing it.
type CSCError struct {
	Signal string
}

func (e *CSCError) Error() string {
	return fmt.Sprintf("core: signal %q has a Complete State Coding conflict", e.Signal)
}

// refineStats counts the work done by the refinement loop; it is reported by
// the synthesizer for analysis of how often approximation suffices.
type refineStats struct {
	// TermsRefined is the number of approximation terms that had to be
	// replaced by exactly enumerated covers.
	TermsRefined int
	// Rounds is the number of interference checks performed.
	Rounds int
}

// refineTerm replaces the approximated single-cube cover of a term by the
// exact cover of the states it stands for: the exact excitation region of the
// slice's entry instance (for ER terms) or the exact marked region of the
// condition restricted to the slice (for MR terms).  This realises the
// paper's refinement — restoring the marking component of the reachable
// states represented by the slice — at the granularity of whole terms; see
// DESIGN.md §4 item 6.
func refineTerm(u *unfolding.Unfolding, t *approxTerm) {
	if t.Exact {
		return
	}
	switch {
	case t.Cond != nil:
		t.Cover = exactMRCover(u, t.Slice, t.Cond)
	case t.Slice.Entry.IsRoot:
		t.Cover = exactSliceCover(u, t.Slice)
	default:
		t.Cover = exactExcitationCover(u, t.Slice)
	}
	t.Exact = true
}

// refine repeatedly eliminates interference between the approximated on- and
// off-set covers of a signal.  While some on-term intersects some off-term,
// the term that is still approximate is refined (replaced by its exact
// cover); once both sides of an intersecting pair are exact the intersection
// is a genuine CSC conflict.  The procedure terminates because every step
// makes one term exact and the number of terms is finite.
func refine(u *unfolding.Unfolding, sa *signalApprox) (*refineStats, error) {
	stats := &refineStats{}
	for {
		stats.Rounds++
		conflictOn, conflictOff := findInterference(sa)
		if conflictOn == nil {
			return stats, nil
		}
		switch {
		case !conflictOn.Exact:
			refineTerm(u, conflictOn)
			stats.TermsRefined++
		case !conflictOff.Exact:
			refineTerm(u, conflictOff)
			stats.TermsRefined++
		default:
			return stats, &CSCError{Signal: u.STG.Signal(sa.Signal).Name}
		}
	}
}

// findInterference returns an intersecting pair of on/off terms, preferring
// pairs in which at least one side is still approximate so that refinement
// always makes progress before a conflict is declared.
func findInterference(sa *signalApprox) (*approxTerm, *approxTerm) {
	var exactPairOn, exactPairOff *approxTerm
	for _, on := range sa.OnTerms {
		for _, off := range sa.OffTerms {
			if !on.Cover.Intersects(off.Cover) {
				continue
			}
			if !on.Exact || !off.Exact {
				return on, off
			}
			if exactPairOn == nil {
				exactPairOn, exactPairOff = on, off
			}
		}
	}
	return exactPairOn, exactPairOff
}

// interferenceFree reports whether the approximated covers are already
// correct in the sense of Definition 2.1 with the stronger empty-intersection
// condition used by the approximation flow.
func interferenceFree(sa *signalApprox, nvars int) bool {
	on := sa.onCover(nvars)
	off := sa.offCover(nvars)
	return !on.Intersects(off)
}

// coverPair returns the final on/off covers of the signal after
// approximation/refinement.
func coverPair(sa *signalApprox, nvars int) (on, off *boolcover.Cover) {
	return sa.onCover(nvars), sa.offCover(nvars)
}
