package stg

import (
	"testing"
)

func TestBuilderHandshake(t *testing.T) {
	// Simple two-signal four-phase handshake: req+ -> ack+ -> req- -> ack- -> req+
	b := NewBuilder("handshake")
	b.Inputs("req").Outputs("ack")
	b.Arc("req+", "ack+").Arc("ack+", "req-").Arc("req-", "ack-").Arc("ack-", "req+")
	b.MarkBetween("ack-", "req+")
	b.InitialState("00")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Net().NumTransitions() != 4 || g.Net().NumPlaces() != 4 {
		t.Fatalf("transitions=%d places=%d", g.Net().NumTransitions(), g.Net().NumPlaces())
	}
	if !g.Net().IsMarkedGraph() {
		t.Fatal("handshake is a marked graph")
	}
	safe, err := g.Net().IsSafe(0)
	if err != nil || !safe {
		t.Fatal("handshake is safe")
	}
}

func TestBuilderChain(t *testing.T) {
	b := NewBuilder("chain")
	b.Outputs("a", "b")
	b.Chain("a+", "b+", "a-", "b-").Arc("b-", "a+").MarkBetween("b-", "a+")
	b.InitialState("00")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Net().NumTransitions() != 4 {
		t.Fatalf("transitions = %d", g.Net().NumTransitions())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("err")
	b.Outputs("a")
	b.Arc("a+", "z+") // z not declared
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undeclared signal")
	}

	b2 := NewBuilder("err2")
	b2.Outputs("a")
	b2.Arc("a+", "a-").Arc("a-", "a+").MarkBetween("a-", "a+")
	b2.InitialState("01") // wrong width
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for initial state width")
	}

	b3 := NewBuilder("err3")
	b3.Outputs("a")
	b3.MarkBetween("a+", "a-") // no such arc yet
	if _, err := b3.Build(); err == nil {
		t.Fatal("expected error for marking a non-existent implicit place")
	}
}

func TestBuilderExplicitPlaces(t *testing.T) {
	b := NewBuilder("explicit")
	b.Inputs("x").Outputs("y")
	b.Place("p0").Place("p1")
	b.PlaceArc("p0", "x+").PlaceArc("x+", "p1").PlaceArc("p1", "y+")
	b.Arc("y+", "x-").Arc("x-", "y-").Arc("y-", "x+")
	// route y- back to p0 as well to close the cycle for x+'s second input
	b.PlaceArc("y-", "p0")
	b.Mark("p0").MarkBetween("y-", "x+")
	b.InitialState("00")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Net().PlaceByName("p0"); !ok {
		t.Fatal("explicit place p0 missing")
	}
	safe, err := g.Net().IsSafe(0)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatal("explicit-place STG should be safe")
	}
}

func TestParseEdge(t *testing.T) {
	cases := []struct {
		in   string
		sig  string
		dir  Direction
		inst int
		ok   bool
	}{
		{"a+", "a", Plus, 0, true},
		{"req-/3", "req", Minus, 3, true},
		{"x_1+", "x_1", Plus, 0, true},
		{"p0", "", 0, 0, false},
		{"a~", "", 0, 0, false},
	}
	for _, tc := range cases {
		sig, dir, inst, ok := ParseEdge(tc.in)
		if ok != tc.ok {
			t.Errorf("ParseEdge(%q) ok=%v want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if sig != tc.sig || dir != tc.dir || inst != tc.inst {
			t.Errorf("ParseEdge(%q) = %q,%v,%d", tc.in, sig, dir, inst)
		}
	}
}

func TestDescribe(t *testing.T) {
	b := NewBuilder("desc")
	b.Inputs("i").Outputs("o")
	b.Arc("i+", "o+").Arc("o+", "i-").Arc("i-", "o-").Arc("o-", "i+").MarkBetween("o-", "i+")
	b.InitialState("00")
	g := b.MustBuild()
	s := Describe(g)
	if s == "" || !contains(s, "desc") {
		t.Fatalf("Describe = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
