package stg

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"punt/internal/bitvec"
	"punt/internal/petri"
)

// Builder offers a compact fluent API for constructing STGs in Go code.  It is
// the programmatic counterpart of the .g text format: signal edges are
// referred to by strings like "a+", "b-", or "a+/2" for repeated edges, and
// places by any other identifier.
type Builder struct {
	g *STG
	// named transitions: "a+/1" -> id
	trans map[string]petri.TransitionID
	err   error
}

var edgeRE = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_.\[\]]*)([+\-~])(?:/([0-9]+))?$`)

// NewBuilder returns a builder for a new STG with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: New(name), trans: map[string]petri.TransitionID{}}
}

// Err returns the first error recorded during building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Inputs declares input signals.
func (b *Builder) Inputs(names ...string) *Builder {
	for _, n := range names {
		b.g.AddSignal(n, Input)
	}
	return b
}

// Outputs declares output signals.
func (b *Builder) Outputs(names ...string) *Builder {
	for _, n := range names {
		b.g.AddSignal(n, Output)
	}
	return b
}

// Internals declares internal signals.
func (b *Builder) Internals(names ...string) *Builder {
	for _, n := range names {
		b.g.AddSignal(n, Internal)
	}
	return b
}

// ParseEdge splits a transition reference such as "req+/2" into signal name,
// direction and instance (0 if not given).
func ParseEdge(s string) (signal string, dir Direction, instance int, ok bool) {
	m := edgeRE.FindStringSubmatch(s)
	if m == nil || m[2] == "~" {
		return "", 0, 0, false
	}
	d := Plus
	if m[2] == "-" {
		d = Minus
	}
	inst := 0
	if m[3] != "" {
		inst, _ = strconv.Atoi(m[3])
	}
	return m[1], d, inst, true
}

// transition resolves or creates the transition named by ref ("a+", "a+/2", or
// a dummy name).
func (b *Builder) transition(ref string) petri.TransitionID {
	if t, ok := b.trans[ref]; ok {
		return t
	}
	sig, dir, inst, ok := ParseEdge(ref)
	if !ok {
		b.fail("stg builder: %q is not a signal edge", ref)
		return 0
	}
	idx, found := b.g.SignalIndex(sig)
	if !found {
		b.fail("stg builder: signal %q not declared", sig)
		return 0
	}
	t := b.g.AddTransition(idx, dir)
	got := b.g.Label(t)
	if inst != 0 && got.Instance != inst {
		// The caller requested a specific instance number; honour it as an
		// alias so subsequent references by either name resolve identically.
		b.trans[fmt.Sprintf("%s%s/%d", sig, dir, inst)] = t
	}
	canonical := b.g.TransitionString(t)
	b.trans[canonical] = t
	b.trans[ref] = t
	if got.Instance == 1 {
		b.trans[sig+dir.String()] = t
	}
	return t
}

// Edge pre-declares a transition instance and returns the builder (useful when
// an edge participates only in arcs written target-first).
func (b *Builder) Edge(ref string) *Builder {
	b.transition(ref)
	return b
}

// Arc adds causality src -> dst between two signal edges via an implicit
// place.
func (b *Builder) Arc(src, dst string) *Builder {
	s := b.transition(src)
	d := b.transition(dst)
	if b.err == nil {
		b.g.AddArcTT(s, d)
	}
	return b
}

// ArcMarked adds causality src -> dst via an implicit place that carries a
// token in the initial marking.
func (b *Builder) ArcMarked(src, dst string) *Builder {
	s := b.transition(src)
	d := b.transition(dst)
	if b.err == nil {
		p := b.g.AddArcTT(s, d)
		b.g.MarkInitially(p)
	}
	return b
}

// Place adds an explicit place.
func (b *Builder) Place(name string) *Builder {
	if _, exists := b.g.Net().PlaceByName(name); !exists {
		b.g.AddPlace(name)
	}
	return b
}

// PlaceArc adds an arc between an explicit place and a signal edge (or vice
// versa), determined by which argument names a declared place.
func (b *Builder) PlaceArc(from, to string) *Builder {
	if p, ok := b.g.Net().PlaceByName(from); ok {
		b.g.AddArcPT(p, b.transition(to))
		return b
	}
	if p, ok := b.g.Net().PlaceByName(to); ok {
		b.g.AddArcTP(b.transition(from), p)
		return b
	}
	b.fail("stg builder: neither %q nor %q is a declared place", from, to)
	return b
}

// Mark puts an initial token on the named explicit place.
func (b *Builder) Mark(place string) *Builder {
	p, ok := b.g.Net().PlaceByName(place)
	if !ok {
		b.fail("stg builder: unknown place %q", place)
		return b
	}
	b.g.MarkInitially(p)
	return b
}

// MarkBetween puts an initial token on the implicit place between two edges;
// the arc must already exist (created by Arc).
func (b *Builder) MarkBetween(src, dst string) *Builder {
	s, okS := b.trans[src]
	d, okD := b.trans[dst]
	if !okS || !okD {
		b.fail("stg builder: MarkBetween(%q,%q): unknown edge", src, dst)
		return b
	}
	name := fmt.Sprintf("<%s,%s>", b.g.TransitionString(s), b.g.TransitionString(d))
	p, ok := b.g.Net().PlaceByName(name)
	if !ok {
		b.fail("stg builder: no implicit place between %q and %q", src, dst)
		return b
	}
	b.g.MarkInitially(p)
	return b
}

// InitialState sets the initial binary state from a string over the declared
// signal order, e.g. "0101".
func (b *Builder) InitialState(bits string) *Builder {
	v, err := bitvec.FromString(bits)
	if err != nil {
		b.fail("stg builder: %v", err)
		return b
	}
	if v.Len() != b.g.NumSignals() {
		b.fail("stg builder: initial state %q has %d bits for %d signals", bits, v.Len(), b.g.NumSignals())
		return b
	}
	b.g.SetInitialState(v)
	return b
}

// InitialStateByName sets the initial value of individual named signals; all
// unlisted signals default to 0.
func (b *Builder) InitialStateByName(ones ...string) *Builder {
	v := bitvec.New(b.g.NumSignals())
	for _, name := range ones {
		idx, ok := b.g.SignalIndex(name)
		if !ok {
			b.fail("stg builder: unknown signal %q in initial state", name)
			return b
		}
		v.Set(idx, true)
	}
	b.g.SetInitialState(v)
	return b
}

// Build validates and returns the constructed STG.
func (b *Builder) Build() (*STG, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose structure is fixed.
func (b *Builder) MustBuild() *STG {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Chain adds arcs src->e1->e2->...->en for a sequence of edges.
func (b *Builder) Chain(edges ...string) *Builder {
	for i := 0; i+1 < len(edges); i++ {
		b.Arc(edges[i], edges[i+1])
	}
	return b
}

// Describe returns a short human-readable summary of the built STG (used by
// the CLI tools).
func Describe(g *STG) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "STG %q: %d signals (%d in, %d out/int), %d transitions, %d places\n",
		g.Name(), g.NumSignals(), len(g.InputSignals()), len(g.OutputSignals()),
		g.Net().NumTransitions(), g.Net().NumPlaces())
	return sb.String()
}
