package stg

import (
	"strings"
	"testing"

	"punt/internal/petri"
)

const handshakeG = `
# four-phase handshake controller
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial_state 00
.end
`

func TestParseHandshake(t *testing.T) {
	g, err := ParseString(handshakeG)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "hs" {
		t.Fatalf("name = %q", g.Name())
	}
	if g.NumSignals() != 2 {
		t.Fatalf("signals = %d", g.NumSignals())
	}
	if g.Net().NumTransitions() != 4 || g.Net().NumPlaces() != 4 {
		t.Fatalf("transitions=%d places=%d", g.Net().NumTransitions(), g.Net().NumPlaces())
	}
	if g.Net().Initial().Total() != 1 {
		t.Fatalf("initial tokens = %d", g.Net().Initial().Total())
	}
	if !g.HasInitialState() {
		t.Fatal("initial state should be parsed")
	}
	reach, err := g.Net().Reachability(petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reach.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", reach.NumStates())
	}
}

const explicitPlacesG = `
.model choice
.inputs sel
.outputs go stop
.dummy done
.graph
p0 sel+ sel-
sel+ go+
go+ p1
sel- stop+
stop+ p1
p1 done
done p0
.marking { p0 }
.initial_state 000
.end
`

func TestParseExplicitPlacesAndDummy(t *testing.T) {
	g, err := ParseString(explicitPlacesG)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSignals() != 3 {
		t.Fatalf("signals = %d (dummies must not count)", g.NumSignals())
	}
	p0, ok := g.Net().PlaceByName("p0")
	if !ok {
		t.Fatal("explicit place p0 missing")
	}
	if !g.Net().IsChoicePlace(p0) {
		t.Fatal("p0 is a choice place")
	}
	// One of the transitions is a dummy.
	foundDummy := false
	for tr := 0; tr < g.Net().NumTransitions(); tr++ {
		if g.Label(petri.TransitionID(tr)).IsDummy {
			foundDummy = true
		}
	}
	if !foundDummy {
		t.Fatal("dummy transition not parsed")
	}
}

func TestParseInstanceSuffixes(t *testing.T) {
	src := `
.model inst
.outputs a b
.graph
a+ b+ b+/2
b+ a-
b+/2 a-
a- b-
b- a+
.marking { <b-,a+> }
.initial_state 00
.end
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := g.SignalIndex("a")
	bi, _ := g.SignalIndex("b")
	if len(g.TransitionsOf(bi)) != 3 {
		t.Fatalf("expected three b transitions, got %d", len(g.TransitionsOf(bi)))
	}
	if len(g.TransitionsOf(ai)) != 2 {
		t.Fatalf("expected two a transitions, got %d", len(g.TransitionsOf(ai)))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".model x\n.graph\np0 p1\n.end\n",                                                              // place-to-place arc
		".model x\n.outputs a\n.graph\na+ a-\n.unknown\n.end\n",                                        // unknown directive
		".model x\n.outputs a\nfoo bar\n.end\n",                                                        // line outside .graph
		".model x\n.outputs a\n.graph\na+ a-\na- a+\n.marking { <a+,b-> }\n.end\n",                     // unknown marking place
		".model x\n.outputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.initial_state 011\n.end\n", // wrong width
	}
	for i, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	g, err := ParseString(handshakeG)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(g)
	if text == "" {
		t.Fatal("Format returned empty")
	}
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if g2.NumSignals() != g.NumSignals() ||
		g2.Net().NumTransitions() != g.Net().NumTransitions() ||
		g2.Net().NumPlaces() != g.Net().NumPlaces() {
		t.Fatalf("round trip changed sizes:\n%s", text)
	}
	r1, err := g.Net().Reachability(petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Net().Reachability(petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumStates() != r2.NumStates() {
		t.Fatalf("round trip changed state count %d -> %d", r1.NumStates(), r2.NumStates())
	}
}

func TestWriteRoundTripExplicitPlaces(t *testing.T) {
	g, err := ParseString(explicitPlacesG)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(g)
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if g2.Net().NumPlaces() != g.Net().NumPlaces() {
		t.Fatalf("place count changed:\n%s", text)
	}
	if !strings.Contains(text, ".dummy done") {
		t.Fatalf("dummy section missing:\n%s", text)
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := "# leading comment\n\n" + handshakeG + "\n# trailing comment\n"
	if _, err := ParseString(src); err != nil {
		t.Fatal(err)
	}
}
