go test fuzz v1
string("# The worked example of the paper's Figure 1 (three signals; the output b\n# synthesises to the cover b = a + c).\n.model paper-fig1\n.inputs a c\n.outputs b\n.graph\na+ p2 p3\nb+ p7 p8\nb+/2 p5\nc+ p4\nc+/2 p6 p8\na- p7\nb- p1\nc- p9\np1 a+ c+\np2 b+/2\np3 c+/2\np4 b+\np5 a-\np6 a-\np7 c-\np8 c-\np9 b-\n.marking { p1 }\n.initial_state 000\n.end\n")
