go test fuzz v1
string(".model random-22\n.inputs r\n.outputs a r0 a0 r00 a00 r01 a01 x01_0 x01_1\n.graph\nr00+ a00+\na00+ a0+\nr00- a00-\na00- a0-\nr0+ r00+ r01+\na0+ a+\nr0- r00- r01-\na0- a-\nr01+ x01_0+\nx01_0+ x01_0-\nx01_0- x01_1+\nx01_1+ x01_1-\nx01_1- a01+\na01+ a0+\nr01- a01-\na01- a0-\nr+ r0+\na+ r-\nr- r0-\na- r+\n.marking { <a-,r+> }\n.initial_state 0000000000\n.end\n")
