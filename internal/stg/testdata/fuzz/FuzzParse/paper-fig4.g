go test fuzz v1
string(".model paper-fig4\n.inputs a\n.outputs b c d e f g\n.graph\na+ b+ c+ d+\nb+ e+\ne+ a-\nc+ f+\nf+ a-\nd+ g+\ng+ a-\na- b- c- d-\nb- e-\ne- a+\nc- f-\nf- a+\nd- g-\ng- a+\n.marking { <e-,a+> <f-,a+> <g-,a+> }\n.initial_state 0000000\n.end\n")
