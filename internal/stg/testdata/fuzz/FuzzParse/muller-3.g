go test fuzz v1
string(".model muller-pipeline-3\n.inputs c0 c4\n.outputs c1 c2 c3\n.graph\nc0+ c1+\nc0- c1-\nc1+ c2+ c0-\nc1- c2- c0+\nc2+ c1- c3+\nc2- c1+ c3-\nc3+ c2- c4+\nc3- c2+ c4-\nc4+ c3-\nc4- c3+\n.marking { <c1-,c0+> <c2-,c1+> <c3-,c2+> <c4-,c3+> }\n.initial_state 00000\n.end\n")
