package stg

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"punt/internal/bitvec"
	"punt/internal/petri"
)

// Parse reads an STG in the astg ".g" text format (the interchange format of
// SIS, Petrify and related tools).  Supported sections:
//
//	.model / .name <name>
//	.inputs  <signals...>
//	.outputs <signals...>
//	.internal <signals...>
//	.dummy   <names...>
//	.graph                     arcs "src dst1 dst2 ..." where each node is a
//	                           signal edge ("a+", "b-/2"), a dummy name or an
//	                           explicit place name
//	.marking { p1 <a+,b-> ... }
//	.initial_state <bits>      non-standard extension giving the initial code
//	                           over the declared signal order
//	.end
//
// If no .initial_state directive is present the initial binary state is left
// unset; call (*STG).InferInitialState before building a state graph.
func Parse(r io.Reader) (*STG, error) {
	p := &parser{
		kinds:  map[string]SignalKind{},
		trans:  map[string]petri.TransitionID{},
		places: map[string]petri.PlaceID{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var pending []string // graph lines, processed after all declarations
	var markingLine string
	inGraph := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".model") || strings.HasPrefix(line, ".name"):
			fields := strings.Fields(line)
			if len(fields) > 1 {
				p.name = fields[1]
			}
			inGraph = false
		case strings.HasPrefix(line, ".inputs"):
			p.declare(strings.Fields(line)[1:], Input)
			inGraph = false
		case strings.HasPrefix(line, ".outputs"):
			p.declare(strings.Fields(line)[1:], Output)
			inGraph = false
		case strings.HasPrefix(line, ".internal"):
			p.declare(strings.Fields(line)[1:], Internal)
			inGraph = false
		case strings.HasPrefix(line, ".dummy"):
			p.declare(strings.Fields(line)[1:], Dummy)
			inGraph = false
		case strings.HasPrefix(line, ".graph"):
			inGraph = true
		case strings.HasPrefix(line, ".marking"):
			markingLine = line
			inGraph = false
		case strings.HasPrefix(line, ".initial_state"):
			fields := strings.Fields(line)
			if len(fields) > 1 {
				p.initialState = fields[1]
			}
			inGraph = false
		case strings.HasPrefix(line, ".capacity"):
			// Capacities beyond 1 are not supported; ignore the directive.
			inGraph = false
		case strings.HasPrefix(line, ".end"):
			inGraph = false
		case strings.HasPrefix(line, "."):
			return nil, fmt.Errorf("stg: line %d: unsupported directive %q", lineNo, strings.Fields(line)[0])
		default:
			if !inGraph {
				return nil, fmt.Errorf("stg: line %d: unexpected line %q outside .graph", lineNo, line)
			}
			pending = append(pending, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.finish(pending, markingLine)
}

// ParseFile reads an STG from a .g file on disk.
func ParseFile(path string) (*STG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ParseString reads an STG from a .g format string.
func ParseString(text string) (*STG, error) {
	return Parse(strings.NewReader(text))
}

type parser struct {
	name         string
	order        []string
	kinds        map[string]SignalKind
	initialState string

	g      *STG
	trans  map[string]petri.TransitionID
	places map[string]petri.PlaceID
}

func (p *parser) declare(names []string, kind SignalKind) {
	for _, n := range names {
		if _, dup := p.kinds[n]; dup {
			continue
		}
		p.kinds[n] = kind
		p.order = append(p.order, n)
	}
}

// node resolves a .graph identifier to either a transition or an explicit
// place, creating it on first reference.
func (p *parser) node(ref string) (isPlace bool, t petri.TransitionID, pl petri.PlaceID, err error) {
	if t, ok := p.trans[ref]; ok {
		return false, t, 0, nil
	}
	if pl, ok := p.places[ref]; ok {
		return true, 0, pl, nil
	}
	if sig, dir, _, ok := ParseEdge(ref); ok {
		if kind, declared := p.kinds[sig]; declared && kind != Dummy {
			idx, _ := p.g.SignalIndex(sig)
			id := p.g.AddTransition(idx, dir)
			p.trans[ref] = id
			return false, id, 0, nil
		}
	}
	if kind, declared := p.kinds[ref]; declared && kind == Dummy {
		id := p.g.AddDummyTransition(ref)
		p.trans[ref] = id
		return false, id, 0, nil
	}
	// Anything else is an explicit place.
	id := p.g.AddPlace(ref)
	p.places[ref] = id
	return true, 0, id, nil
}

func (p *parser) finish(graphLines []string, markingLine string) (*STG, error) {
	if p.name == "" {
		p.name = "stg"
	}
	p.g = New(p.name)
	for _, n := range p.order {
		if p.kinds[n] != Dummy {
			p.g.AddSignal(n, p.kinds[n])
		}
	}
	// First pass: create the node at the head of every line, in line order,
	// so that node identifiers (and the instance numbering of repeated signal
	// edges) follow the order of appearance rather than the order of first
	// reference.  WriteG emits one line per transition in identifier order,
	// so this is also what makes write/parse round trips stable.
	type arc struct{ src, dst string }
	var arcs []arc
	for _, line := range graphLines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("stg: malformed graph line %q", line)
		}
		if _, _, _, err := p.node(fields[0]); err != nil {
			return nil, err
		}
		for _, dst := range fields[1:] {
			arcs = append(arcs, arc{src: fields[0], dst: dst})
		}
	}
	for _, a := range arcs {
		srcIsPlace, srcT, srcP, err := p.node(a.src)
		if err != nil {
			return nil, err
		}
		dstIsPlace, dstT, dstP, err := p.node(a.dst)
		if err != nil {
			return nil, err
		}
		switch {
		case srcIsPlace && dstIsPlace:
			return nil, fmt.Errorf("stg: arc between two places %q -> %q", a.src, a.dst)
		case srcIsPlace:
			p.g.AddArcPT(srcP, dstT)
		case dstIsPlace:
			p.g.AddArcTP(srcT, dstP)
		default:
			// transition -> transition through an implicit place; remember it
			// under the "<src,dst>" name used by .marking.
			pl := p.g.AddArcTT(srcT, dstT)
			p.places[fmt.Sprintf("<%s,%s>", a.src, a.dst)] = pl
		}
	}
	if markingLine != "" {
		if err := p.parseMarking(markingLine); err != nil {
			return nil, err
		}
	}
	if p.initialState != "" {
		v, err := bitvec.FromString(p.initialState)
		if err != nil {
			return nil, fmt.Errorf("stg: bad .initial_state: %w", err)
		}
		if v.Len() != p.g.NumSignals() {
			return nil, fmt.Errorf("stg: .initial_state has %d bits for %d signals", v.Len(), p.g.NumSignals())
		}
		p.g.SetInitialState(v)
	}
	if err := p.g.Validate(); err != nil {
		return nil, err
	}
	return p.g, nil
}

func (p *parser) parseMarking(line string) error {
	open := strings.IndexByte(line, '{')
	closeIdx := strings.LastIndexByte(line, '}')
	if open < 0 || closeIdx < open {
		return fmt.Errorf("stg: malformed .marking line %q", line)
	}
	body := line[open+1 : closeIdx]
	// Tokens are either bare place names or implicit places "<a+,b->", possibly
	// with a token count suffix "=2" which we reject (safe nets only).
	var tokens []string
	cur := strings.Builder{}
	depth := 0
	for _, ch := range body {
		switch ch {
		case '<':
			depth++
			cur.WriteRune(ch)
		case '>':
			depth--
			cur.WriteRune(ch)
		case ' ', '\t':
			if depth > 0 {
				cur.WriteRune(ch)
			} else if cur.Len() > 0 {
				tokens = append(tokens, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(ch)
		}
	}
	if cur.Len() > 0 {
		tokens = append(tokens, cur.String())
	}
	seen := map[string]bool{}
	for _, tok := range tokens {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if strings.Contains(tok, "=") {
			return fmt.Errorf("stg: weighted marking %q not supported (safe nets only)", tok)
		}
		name := strings.ReplaceAll(tok, " ", "")
		if seen[name] {
			return fmt.Errorf("stg: place %q listed twice in .marking (safe nets only)", name)
		}
		seen[name] = true
		pl, ok := p.places[name]
		if !ok {
			// Also try with the raw token (explicit place with unusual name).
			if id, found := p.g.Net().PlaceByName(name); found {
				pl = id
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("stg: .marking refers to unknown place %q", tok)
		}
		p.g.MarkInitially(pl)
	}
	return nil
}
