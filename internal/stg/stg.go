// Package stg implements Signal Transition Graphs: labelled Petri nets whose
// transitions denote rising (+) and falling (-) edges of circuit signals.
// It provides the STG data model, a programmatic builder, a reader and writer
// for the astg ".g" text format used by SIS/Petrify-style tools, and
// inference of the initial binary state.
package stg

import (
	"fmt"
	"sort"

	"punt/internal/bitvec"
	"punt/internal/petri"
)

// SignalKind classifies a signal of an STG.
type SignalKind int

// Signal kinds.  Input signals are driven by the environment; output and
// internal signals must be implemented by the synthesised circuit.
const (
	Input SignalKind = iota
	Output
	Internal
	Dummy // dummy "signals" label transitions that change no wire
)

// String returns the .g-style section keyword for the kind.
func (k SignalKind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case Internal:
		return "internal"
	case Dummy:
		return "dummy"
	default:
		return fmt.Sprintf("SignalKind(%d)", int(k))
	}
}

// Direction is the direction of a signal transition.
type Direction int

// Transition directions.
const (
	Plus  Direction = +1 // rising edge, a+
	Minus Direction = -1 // falling edge, a-
)

// String renders the direction as "+" or "-".
func (d Direction) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Signal is one named signal of the STG.
type Signal struct {
	Name string
	Kind SignalKind
}

// Label is the signal interpretation of a transition: which signal it toggles
// and in which direction.  A transition labelled with a Dummy signal changes
// no signal value.
type Label struct {
	Signal    int // index into the STG's signal list; -1 for unlabelled/dummy ε-transitions
	Dir       Direction
	Instance  int // instance number distinguishing multiple transitions of the same signal edge (a+/1, a+/2, ...)
	IsDummy   bool
	DummyName string // original name for dummy transitions
}

// String renders the label in the conventional "a+/2" notation.
func (l Label) String() string {
	if l.IsDummy {
		return l.DummyName
	}
	return fmt.Sprintf("sig%d%s/%d", l.Signal, l.Dir, l.Instance)
}

// STG is a Signal Transition Graph: a marked Petri net together with a signal
// alphabet, a transition labelling and an initial binary state.
type STG struct {
	net     *petri.Net
	signals []Signal
	byName  map[string]int
	labels  []Label // indexed by petri.TransitionID

	initialState    bitvec.Vec
	initialStateSet bool
}

// New returns an empty STG with the given name.
func New(name string) *STG {
	return &STG{
		net:    petri.NewNet(name),
		byName: map[string]int{},
	}
}

// Clone returns a deep copy of the STG: signals, labels, the underlying net
// and the initial state are all copied, so rewrites of the clone (such as the
// CSC resolver's signal insertion) never affect the original.
func (g *STG) Clone() *STG {
	c := &STG{
		net:             g.net.Clone(),
		signals:         append([]Signal(nil), g.signals...),
		byName:          make(map[string]int, len(g.byName)),
		labels:          append([]Label(nil), g.labels...),
		initialStateSet: g.initialStateSet,
	}
	for name, i := range g.byName {
		c.byName[name] = i
	}
	if g.initialStateSet {
		c.initialState = g.initialState.Clone()
	}
	return c
}

// Name returns the STG's name.
func (g *STG) Name() string { return g.net.Name() }

// SetName renames the STG.
func (g *STG) SetName(name string) { g.net.SetName(name) }

// Net exposes the underlying Petri net.  Callers must keep the labelling in
// sync when adding transitions, so prefer the STG-level mutators.
func (g *STG) Net() *petri.Net { return g.net }

// NumSignals reports the number of declared signals (excluding dummies).
func (g *STG) NumSignals() int { return len(g.signals) }

// Signals returns the declared signals in declaration order.
func (g *STG) Signals() []Signal { return g.signals }

// Signal returns the i-th signal.
func (g *STG) Signal(i int) Signal { return g.signals[i] }

// SignalIndex looks a signal up by name.
func (g *STG) SignalIndex(name string) (int, bool) {
	i, ok := g.byName[name]
	return i, ok
}

// AddSignal declares a new signal and returns its index.
func (g *STG) AddSignal(name string, kind SignalKind) int {
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("stg: duplicate signal %q", name))
	}
	idx := len(g.signals)
	g.signals = append(g.signals, Signal{Name: name, Kind: kind})
	g.byName[name] = idx
	return idx
}

// OutputSignals returns the indices of all non-input signals (outputs and
// internals), i.e. the signals the circuit must implement.
func (g *STG) OutputSignals() []int {
	var out []int
	for i, s := range g.signals {
		if s.Kind == Output || s.Kind == Internal {
			out = append(out, i)
		}
	}
	return out
}

// InputSignals returns the indices of all input signals.
func (g *STG) InputSignals() []int {
	var out []int
	for i, s := range g.signals {
		if s.Kind == Input {
			out = append(out, i)
		}
	}
	return out
}

// AddPlace adds an explicit place.
func (g *STG) AddPlace(name string) petri.PlaceID {
	return g.net.AddPlace(name)
}

// AddTransition adds a transition labelled with the given signal edge.  The
// instance number is assigned automatically so that repeated edges of the same
// signal get /1, /2, ... suffixes.
func (g *STG) AddTransition(signal int, dir Direction) petri.TransitionID {
	if signal < 0 || signal >= len(g.signals) {
		panic(fmt.Sprintf("stg: invalid signal index %d", signal))
	}
	inst := 1
	for _, l := range g.labels {
		if !l.IsDummy && l.Signal == signal && l.Dir == dir {
			inst++
		}
	}
	name := g.TransitionLabelString(Label{Signal: signal, Dir: dir, Instance: inst})
	t := g.net.AddTransition(name)
	g.labels = append(g.labels, Label{Signal: signal, Dir: dir, Instance: inst})
	return t
}

// AddDummyTransition adds an unlabelled (ε) transition.
func (g *STG) AddDummyTransition(name string) petri.TransitionID {
	t := g.net.AddTransition(name)
	g.labels = append(g.labels, Label{Signal: -1, IsDummy: true, DummyName: name})
	return t
}

// Label returns the label of transition t.
func (g *STG) Label(t petri.TransitionID) Label {
	return g.labels[t]
}

// TransitionLabelString renders a label with the signal's name, e.g. "a+" or
// "b-/2" when the instance number is above 1.
func (g *STG) TransitionLabelString(l Label) string {
	if l.IsDummy {
		return l.DummyName
	}
	base := g.signals[l.Signal].Name + l.Dir.String()
	if l.Instance > 1 {
		return fmt.Sprintf("%s/%d", base, l.Instance)
	}
	return base
}

// TransitionString renders the name of transition t (signal edge plus
// instance suffix).
func (g *STG) TransitionString(t petri.TransitionID) string {
	return g.TransitionLabelString(g.labels[t])
}

// TransitionsOf returns all transitions labelled with the given signal
// (either direction), in id order.
func (g *STG) TransitionsOf(signal int) []petri.TransitionID {
	var out []petri.TransitionID
	for t, l := range g.labels {
		if !l.IsDummy && l.Signal == signal {
			out = append(out, petri.TransitionID(t))
		}
	}
	return out
}

// AddArcPT, AddArcTP and AddArcTT add arcs; AddArcTT creates an implicit place
// named "<src,dst>" between two transitions.
func (g *STG) AddArcPT(p petri.PlaceID, t petri.TransitionID) { g.net.AddArcPT(p, t) }

// AddArcTP adds an arc from a transition to a place.
func (g *STG) AddArcTP(t petri.TransitionID, p petri.PlaceID) { g.net.AddArcTP(t, p) }

// AddArcTT connects two transitions through a fresh implicit place and returns
// that place.
func (g *STG) AddArcTT(src, dst petri.TransitionID) petri.PlaceID {
	name := fmt.Sprintf("<%s,%s>", g.TransitionString(src), g.TransitionString(dst))
	// Implicit place names may repeat if the same pair is connected twice; make
	// them unique.
	if _, exists := g.net.PlaceByName(name); exists {
		for i := 2; ; i++ {
			candidate := fmt.Sprintf("%s#%d", name, i)
			if _, exists := g.net.PlaceByName(candidate); !exists {
				name = candidate
				break
			}
		}
	}
	p := g.net.AddPlace(name)
	g.net.AddArcTP(src, p)
	g.net.AddArcPT(p, dst)
	return p
}

// MarkInitially puts a token on place p in the initial marking.
func (g *STG) MarkInitially(p petri.PlaceID) { g.net.MarkInitially(p) }

// SetInitialState sets the initial binary code of the signals (indexed by
// signal declaration order).
func (g *STG) SetInitialState(v bitvec.Vec) {
	if v.Len() != len(g.signals) {
		panic(fmt.Sprintf("stg: initial state has %d bits for %d signals", v.Len(), len(g.signals)))
	}
	g.initialState = v.Clone()
	g.initialStateSet = true
}

// HasInitialState reports whether the initial binary state has been set
// explicitly or inferred.
func (g *STG) HasInitialState() bool { return g.initialStateSet }

// InitialState returns a copy of the initial binary code.  It panics if the
// state was neither set nor inferred; call InferInitialState first.
func (g *STG) InitialState() bitvec.Vec {
	if !g.initialStateSet {
		panic("stg: initial state not set; call SetInitialState or InferInitialState")
	}
	return g.initialState.Clone()
}

// Validate checks structural well-formedness of the STG: the underlying net is
// valid, and every non-dummy transition carries a valid signal label.
func (g *STG) Validate() error {
	if err := g.net.Validate(); err != nil {
		return err
	}
	if len(g.labels) != g.net.NumTransitions() {
		return fmt.Errorf("stg: %d labels for %d transitions", len(g.labels), g.net.NumTransitions())
	}
	for t, l := range g.labels {
		if l.IsDummy {
			continue
		}
		if l.Signal < 0 || l.Signal >= len(g.signals) {
			return fmt.Errorf("stg: transition %d has invalid signal index %d", t, l.Signal)
		}
	}
	if g.initialStateSet && g.initialState.Len() != len(g.signals) {
		return fmt.Errorf("stg: initial state width %d does not match %d signals",
			g.initialState.Len(), len(g.signals))
	}
	return nil
}

// SignalNames returns the names of all signals in declaration order.
func (g *STG) SignalNames() []string {
	names := make([]string, len(g.signals))
	for i, s := range g.signals {
		names[i] = s.Name
	}
	return names
}

// SortedSignalIndicesByName returns signal indices ordered by signal name;
// useful for deterministic reporting.
func (g *STG) SortedSignalIndicesByName() []int {
	idx := make([]int, len(g.signals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.signals[idx[a]].Name < g.signals[idx[b]].Name })
	return idx
}
