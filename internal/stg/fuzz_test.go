package stg

import (
	"os"
	"testing"
)

// FuzzParse feeds mutated ".g" sources to the parser.  Three properties are
// enforced on every input the parser accepts:
//
//   - no panics (the fuzzer rejects them automatically),
//   - WriteG output must parse again (the writer may not emit syntax the
//     parser rejects),
//   - the round trip must be semantically faithful and textually stable:
//     the reparsed STG carries the same signals (by name and kind), the same
//     net size, the same marking and the same per-signal initial state, and
//     writing it again reproduces the text byte for byte.
//
// The seed corpus under testdata/fuzz/FuzzParse is generated from the
// repository's testdata specifications; the shipped .g files are also added
// here so the corpus survives file moves.  Run with:
//
//	go test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/stg
func FuzzParse(f *testing.F) {
	for _, path := range []string{
		"../../testdata/fig1.g",
		"../../testdata/csc.g",
		"../../testdata/nonsm.g",
	} {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	// Hand-written fragments covering the trickier syntax: dummies, explicit
	// places, instance numbering, interleaved declarations.
	f.Add(".model m\n.inputs a\n.outputs b\n.dummy d\n.graph\na+ d\nd b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n")
	f.Add(".model m\n.outputs b\n.inputs a\n.graph\np a+ a-\na+ b+\nb+ q\nq a-\na- b-\nb- p\n.marking { p }\n.initial_state 10\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs b\n.graph\na+ b+/2\nb+/2 a-\na- b-/2\nb-/2 a+\n.marking { <b-/2,a+> }\n.end\n")

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return // rejected inputs are fine; only panics and mis-parses are bugs
		}
		text1 := Format(g)
		g2, err := ParseString(text1)
		if err != nil {
			t.Fatalf("WriteG emitted text the parser rejects: %v\n%s", err, text1)
		}
		sameSTG(t, g, g2, text1)
		if text2 := Format(g2); text2 != text1 {
			t.Fatalf("write/parse round trip is unstable:\n--- first:\n%s--- second:\n%s", text1, text2)
		}
	})
}

// sameSTG checks that the reparsed STG is semantically the one the writer was
// given (the writer may reorder declarations, so signals are compared by
// name).
func sameSTG(t *testing.T, g, g2 *STG, text string) {
	t.Helper()
	if g2.NumSignals() != g.NumSignals() {
		t.Fatalf("round trip changed signal count %d -> %d\n%s", g.NumSignals(), g2.NumSignals(), text)
	}
	for _, s := range g.Signals() {
		i2, ok := g2.SignalIndex(s.Name)
		if !ok {
			t.Fatalf("round trip lost signal %q\n%s", s.Name, text)
		}
		if g2.Signal(i2).Kind != s.Kind {
			t.Fatalf("round trip changed kind of %q: %v -> %v\n%s", s.Name, s.Kind, g2.Signal(i2).Kind, text)
		}
	}
	if g2.Net().NumTransitions() != g.Net().NumTransitions() {
		t.Fatalf("round trip changed transition count %d -> %d\n%s",
			g.Net().NumTransitions(), g2.Net().NumTransitions(), text)
	}
	if g2.Net().NumPlaces() != g.Net().NumPlaces() {
		t.Fatalf("round trip changed place count %d -> %d\n%s",
			g.Net().NumPlaces(), g2.Net().NumPlaces(), text)
	}
	if got, want := g2.Net().Initial().Total(), g.Net().Initial().Total(); got != want {
		t.Fatalf("round trip changed the marking: %d -> %d tokens\n%s", want, got, text)
	}
	if g2.HasInitialState() != g.HasInitialState() {
		t.Fatalf("round trip dropped the initial state\n%s", text)
	}
	if g.HasInitialState() {
		v, v2 := g.InitialState(), g2.InitialState()
		for i, s := range g.Signals() {
			i2, _ := g2.SignalIndex(s.Name)
			if v.Get(i) != v2.Get(i2) {
				t.Fatalf("round trip changed the initial value of %q\n%s", s.Name, text)
			}
		}
	}
}
