package stg

import (
	"fmt"

	"punt/internal/bitvec"
	"punt/internal/petri"
)

// InferInitialState derives the initial binary value of every signal from the
// net structure and initial marking: for a consistent STG, the first
// transition of a signal that can fire (along any run that fires no other
// transition of that signal) has a unique direction; if it is a rising edge
// the signal starts at 0, otherwise at 1.  Signals that never switch default
// to 0.
//
// The inference explores, per signal, the fragment of the state space
// reachable without firing that signal, bounded by maxStates markings
// (0 means 50000).  It returns an error if the exploration finds both a rising
// and a falling first edge, which means the specification violates consistent
// state assignment.
func (g *STG) InferInitialState(maxStates int) error {
	if g.initialStateSet {
		return nil
	}
	if maxStates <= 0 {
		maxStates = 50000
	}
	n := g.net
	v := bitvec.New(len(g.signals))
	for sig := range g.signals {
		plus, minus, err := g.firstDirections(sig, maxStates)
		if err != nil {
			return err
		}
		switch {
		case plus && minus:
			return fmt.Errorf("stg: signal %q can both rise and fall first; inconsistent specification",
				g.signals[sig].Name)
		case minus:
			v.Set(sig, true)
		default:
			// plus or never switching: starts at 0.
		}
	}
	g.SetInitialState(v)
	_ = n
	return nil
}

// firstDirections explores markings reachable without firing any transition of
// signal sig and reports which directions of sig become enabled.
func (g *STG) firstDirections(sig, maxStates int) (plus, minus bool, err error) {
	n := g.net
	initial := n.Initial()
	seen := map[string]bool{initial.Key(): true}
	queue := []petri.Marking{initial}
	for len(queue) > 0 && !(plus && minus) {
		m := queue[0]
		queue = queue[1:]
		for _, t := range n.EnabledTransitions(m) {
			l := g.labels[t]
			if !l.IsDummy && l.Signal == sig {
				if l.Dir == Plus {
					plus = true
				} else {
					minus = true
				}
				continue // do not fire transitions of the signal itself
			}
			next := n.Fire(m, t)
			key := next.Key()
			if seen[key] {
				continue
			}
			if len(seen) >= maxStates {
				return plus, minus, fmt.Errorf("stg: initial-state inference exceeded %d states for signal %q; set the initial state explicitly",
					maxStates, g.signals[sig].Name)
			}
			seen[key] = true
			queue = append(queue, next)
		}
	}
	return plus, minus, nil
}
