package stg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"punt/internal/petri"
)

// WriteG writes the STG in the astg ".g" text format accepted by Parse.
// Implicit places (those with exactly one producer and one consumer and a name
// of the form "<...>") are emitted as direct transition-to-transition arcs;
// all other places are written explicitly.
func WriteG(w io.Writer, g *STG) error {
	var b strings.Builder
	fmt.Fprintf(&b, ".model %s\n", g.Name())
	writeSignalSection(&b, g, Input, ".inputs")
	writeSignalSection(&b, g, Output, ".outputs")
	writeSignalSection(&b, g, Internal, ".internal")
	writeDummySection(&b, g)
	b.WriteString(".graph\n")

	net := g.Net()
	isImplicit := func(p petri.PlaceID) bool {
		return strings.HasPrefix(net.PlaceName(p), "<") &&
			len(net.PlacePre(p)) == 1 && len(net.PlacePost(p)) == 1
	}

	// Transition -> successors lines.  For implicit places we write the arc
	// src -> dst directly; explicit places appear as their own nodes.
	for t := 0; t < net.NumTransitions(); t++ {
		var dests []string
		for _, p := range net.Post(petri.TransitionID(t)) {
			if isImplicit(p) {
				dst := net.PlacePost(p)[0]
				dests = append(dests, g.TransitionString(dst))
			} else {
				dests = append(dests, net.PlaceName(p))
			}
		}
		if len(dests) > 0 {
			fmt.Fprintf(&b, "%s %s\n", g.TransitionString(petri.TransitionID(t)), strings.Join(dests, " "))
		}
	}
	// Explicit place -> successor transitions.
	for p := 0; p < net.NumPlaces(); p++ {
		pid := petri.PlaceID(p)
		if isImplicit(pid) {
			continue
		}
		var dests []string
		for _, t := range net.PlacePost(pid) {
			dests = append(dests, g.TransitionString(t))
		}
		if len(dests) > 0 {
			fmt.Fprintf(&b, "%s %s\n", net.PlaceName(pid), strings.Join(dests, " "))
		}
	}

	// Marking.
	marked := net.Initial().Places()
	if len(marked) > 0 {
		var parts []string
		for _, p := range marked {
			if isImplicit(p) {
				src := net.PlacePre(p)[0]
				dst := net.PlacePost(p)[0]
				parts = append(parts, fmt.Sprintf("<%s,%s>", g.TransitionString(src), g.TransitionString(dst)))
			} else {
				parts = append(parts, net.PlaceName(p))
			}
		}
		sort.Strings(parts)
		fmt.Fprintf(&b, ".marking { %s }\n", strings.Join(parts, " "))
	}
	if g.HasInitialState() {
		// The signal sections above are grouped by kind, which may reorder a
		// source that interleaved its declarations; the positional
		// .initial_state bits must follow the emitted order, not the
		// declaration order.
		v := g.InitialState()
		var bits strings.Builder
		for _, kind := range []SignalKind{Input, Output, Internal} {
			for i, s := range g.Signals() {
				if s.Kind == kind {
					if v.Get(i) {
						bits.WriteByte('1')
					} else {
						bits.WriteByte('0')
					}
				}
			}
		}
		fmt.Fprintf(&b, ".initial_state %s\n", bits.String())
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Format returns the .g text of the STG as a string.
func Format(g *STG) string {
	var sb strings.Builder
	if err := WriteG(&sb, g); err != nil {
		return ""
	}
	return sb.String()
}

func writeSignalSection(b *strings.Builder, g *STG, kind SignalKind, directive string) {
	var names []string
	for _, s := range g.Signals() {
		if s.Kind == kind {
			names = append(names, s.Name)
		}
	}
	if len(names) > 0 {
		fmt.Fprintf(b, "%s %s\n", directive, strings.Join(names, " "))
	}
}

func writeDummySection(b *strings.Builder, g *STG) {
	var names []string
	for t := 0; t < g.Net().NumTransitions(); t++ {
		l := g.Label(petri.TransitionID(t))
		if l.IsDummy {
			names = append(names, l.DummyName)
		}
	}
	if len(names) > 0 {
		fmt.Fprintf(b, ".dummy %s\n", strings.Join(names, " "))
	}
}
