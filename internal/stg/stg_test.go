package stg

import (
	"fmt"
	"strings"
	"testing"

	"punt/internal/bitvec"
	"punt/internal/petri"
)

// paperFig1 builds the STG of Figure 1 of the paper: three signals a, b, c
// with a free choice at p1 between the +a branch and the +c branch.
//
//	p1 -> +a -> p2,p3 ; p2 -> +b/2 -> p5 ; p3 -> +c/2 -> p6,p8
//	p5,p6 -> -a -> p7 ; p7,p8 -> -c -> p9 ; p9 -> -b -> p1
//	p1 -> +c -> p4 ; p4 -> +b -> p7,p8
func paperFig1(t *testing.T) *STG {
	t.Helper()
	g := New("paper-fig1")
	a := g.AddSignal("a", Input)
	b := g.AddSignal("b", Output)
	c := g.AddSignal("c", Output)

	p := make([]petri.PlaceID, 10)
	for i := 1; i <= 9; i++ {
		p[i] = g.AddPlace(fmt.Sprintf("p%d", i))
	}
	plusA := g.AddTransition(a, Plus)
	plusB1 := g.AddTransition(b, Plus)  // choice branch: p4 -> +b -> p7,p8
	plusB2 := g.AddTransition(b, Plus)  // concurrent branch: p2 -> +b/2 -> p5
	plusC1 := g.AddTransition(c, Plus)  // choice branch: p1 -> +c -> p4
	plusC2 := g.AddTransition(c, Plus)  // concurrent branch: p3 -> +c/2 -> p6,p8
	minusA := g.AddTransition(a, Minus) // p5,p6 -> -a -> p7
	minusB := g.AddTransition(b, Minus) // p9 -> -b -> p1
	minusC := g.AddTransition(c, Minus) // p7,p8 -> -c -> p9

	arcsPT := []struct {
		pl int
		tr petri.TransitionID
	}{
		{1, plusA}, {1, plusC1}, {2, plusB2}, {3, plusC2}, {4, plusB1},
		{5, minusA}, {6, minusA}, {7, minusC}, {8, minusC}, {9, minusB},
	}
	for _, a := range arcsPT {
		g.AddArcPT(p[a.pl], a.tr)
	}
	arcsTP := []struct {
		tr petri.TransitionID
		pl int
	}{
		{plusA, 2}, {plusA, 3}, {plusB2, 5}, {plusC2, 6}, {plusC2, 8},
		{plusC1, 4}, {plusB1, 7}, {plusB1, 8}, {minusA, 7}, {minusC, 9}, {minusB, 1},
	}
	for _, a := range arcsTP {
		g.AddArcTP(a.tr, p[a.pl])
	}
	g.MarkInitially(p[1])
	g.SetInitialState(bitvec.New(3))
	if err := g.Validate(); err != nil {
		t.Fatalf("fig1 STG invalid: %v", err)
	}
	return g
}

func TestSignalDeclaration(t *testing.T) {
	g := New("sig")
	a := g.AddSignal("a", Input)
	b := g.AddSignal("b", Output)
	c := g.AddSignal("c", Internal)
	if g.NumSignals() != 3 {
		t.Fatalf("NumSignals = %d", g.NumSignals())
	}
	if idx, ok := g.SignalIndex("b"); !ok || idx != b {
		t.Fatal("SignalIndex failed")
	}
	outs := g.OutputSignals()
	if len(outs) != 2 || outs[0] != b || outs[1] != c {
		t.Fatalf("OutputSignals = %v", outs)
	}
	ins := g.InputSignals()
	if len(ins) != 1 || ins[0] != a {
		t.Fatalf("InputSignals = %v", ins)
	}
	names := g.SignalNames()
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("SignalNames = %v", names)
	}
}

func TestDuplicateSignalPanics(t *testing.T) {
	g := New("dup")
	g.AddSignal("a", Input)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddSignal("a", Output)
}

func TestTransitionInstanceNumbering(t *testing.T) {
	g := New("inst")
	a := g.AddSignal("a", Output)
	t1 := g.AddTransition(a, Plus)
	t2 := g.AddTransition(a, Plus)
	t3 := g.AddTransition(a, Minus)
	if g.TransitionString(t1) != "a+" {
		t.Fatalf("first instance = %q", g.TransitionString(t1))
	}
	if g.TransitionString(t2) != "a+/2" {
		t.Fatalf("second instance = %q", g.TransitionString(t2))
	}
	if g.TransitionString(t3) != "a-" {
		t.Fatalf("minus instance = %q", g.TransitionString(t3))
	}
	if len(g.TransitionsOf(a)) != 3 {
		t.Fatal("TransitionsOf should report all three")
	}
}

func TestPaperFig1Structure(t *testing.T) {
	g := paperFig1(t)
	if g.Net().NumPlaces() != 9 || g.Net().NumTransitions() != 8 {
		t.Fatalf("places=%d transitions=%d", g.Net().NumPlaces(), g.Net().NumTransitions())
	}
	if g.Net().IsMarkedGraph() {
		t.Fatal("fig1 has a choice place, not a marked graph")
	}
	if !g.Net().IsFreeChoice() {
		t.Fatal("fig1 is free choice")
	}
	safe, err := g.Net().IsSafe(0)
	if err != nil || !safe {
		t.Fatalf("fig1 must be safe: %v %v", safe, err)
	}
	reach, err := g.Net().Reachability(petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reach.NumStates() != 8 {
		t.Fatalf("fig1 SG has %d states, want 8", reach.NumStates())
	}
}

func TestInferInitialState(t *testing.T) {
	g := paperFig1(t)
	h := paperFig1(t)
	h.initialStateSet = false
	if err := h.InferInitialState(0); err != nil {
		t.Fatal(err)
	}
	if !h.InitialState().Equal(g.InitialState()) {
		t.Fatalf("inferred %s, want %s", h.InitialState(), g.InitialState())
	}
}

func TestInferInitialStateStartsHigh(t *testing.T) {
	// A signal whose first edge is falling must be inferred as initially 1.
	b := NewBuilder("high")
	b.Outputs("x", "y")
	b.Arc("x-", "y+").Arc("y+", "x+").Arc("x+", "y-").Arc("y-", "x-").MarkBetween("y-", "x-")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InferInitialState(0); err != nil {
		t.Fatal(err)
	}
	st := g.InitialState()
	xi, _ := g.SignalIndex("x")
	yi, _ := g.SignalIndex("y")
	if !st.Get(xi) {
		t.Fatal("x starts high (its first edge is x-)")
	}
	if st.Get(yi) {
		t.Fatal("y starts low (its first edge is y+)")
	}
}

func TestValidateRejectsDanglingTransition(t *testing.T) {
	g := New("bad")
	a := g.AddSignal("a", Output)
	g.AddTransition(a, Plus) // no arcs
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestInitialStateWidthMismatchPanics(t *testing.T) {
	g := New("width")
	g.AddSignal("a", Output)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SetInitialState(bitvec.New(2))
}
