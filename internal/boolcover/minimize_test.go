package boolcover

import (
	"math/rand"
	"testing"

	"punt/internal/bitvec"
)

func mintermCover(n int, minterms ...string) *Cover {
	c := NewCover(n)
	for _, m := range minterms {
		c.Add(MustCube(m))
	}
	return c
}

// TestMinimizePaperExample reproduces the worked example of Section 2.2: the
// on-set of signal b in Fig. 1 minimises to a + c.
func TestMinimizePaperExample(t *testing.T) {
	// Signal order a, b, c.  On(b) = {100,110,101,111,011,001}, Off(b) = {000,010}.
	on := mintermCover(3, "100", "110", "101", "111", "011", "001")
	off := mintermCover(3, "000", "010")
	res := MinimizeAgainstOff(on, off)
	want := CoverFromStrings("1--", "--1") // a + c
	if !res.Equivalent(want) {
		t.Fatalf("minimised cover = %s, want a + c", res)
	}
	if res.Literals() != 2 {
		t.Fatalf("literal count = %d, want 2", res.Literals())
	}
	// Off-set implementation: Off(b) minimises to a'c'.
	resOff := MinimizeAgainstOff(off, on)
	if !resOff.Equivalent(CoverFromStrings("0-0")) {
		t.Fatalf("off cover = %s, want a'c'", resOff)
	}
}

func TestMinimizeEmptyOnSet(t *testing.T) {
	res := MinimizeAgainstOff(NewCover(4), Universe(4))
	if !res.IsEmpty() {
		t.Fatal("empty on-set must minimise to the empty cover")
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// f = 1 on {00}, dc = {01}, off = {10,11}: minimises to a' (one literal).
	on := mintermCover(2, "00")
	dc := mintermCover(2, "01")
	res := Minimize(on, dc)
	if res.Literals() != 1 {
		t.Fatalf("expected single-literal cover, got %s", res)
	}
	if !res.ContainsCover(on) {
		t.Fatal("result must cover on-set")
	}
	if res.Intersects(mintermCover(2, "10", "11")) {
		t.Fatal("result must not cover off-set")
	}
}

// Property: for random on/off partitions of random subsets of the space, the
// minimised cover covers all of ON, none of OFF, and never has more literals
// than the original minterm cover.
func TestQuickMinimizeSoundness(t *testing.T) {
	const n = 6
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 40; iter++ {
		on := NewCover(n)
		off := NewCover(n)
		onSet := map[string]bool{}
		offSet := map[string]bool{}
		for m := 0; m < (1 << uint(n)); m++ {
			v := bitvec.New(n)
			for i := 0; i < n; i++ {
				v.Set(i, m&(1<<uint(i)) != 0)
			}
			switch r.Intn(3) {
			case 0:
				on.Add(CubeFromMinterm(v))
				onSet[v.String()] = true
			case 1:
				off.Add(CubeFromMinterm(v))
				offSet[v.String()] = true
			}
		}
		if on.IsEmpty() {
			continue
		}
		res := MinimizeAgainstOff(on, off)
		if !res.ContainsCover(on) {
			t.Fatalf("iter %d: result does not cover on-set", iter)
		}
		if res.Intersects(off) {
			t.Fatalf("iter %d: result intersects off-set", iter)
		}
		if res.Literals() > on.Literals() {
			t.Fatalf("iter %d: minimisation increased literal count %d -> %d",
				iter, on.Literals(), res.Literals())
		}
	}
}

func BenchmarkMinimizeRandom(b *testing.B) {
	const n = 10
	r := rand.New(rand.NewSource(99))
	on := NewCover(n)
	off := NewCover(n)
	for m := 0; m < (1 << uint(n)); m++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, m&(1<<uint(i)) != 0)
		}
		switch r.Intn(4) {
		case 0:
			on.Add(CubeFromMinterm(v))
		case 1:
			off.Add(CubeFromMinterm(v))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinimizeAgainstOff(on, off)
	}
}
