package boolcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"punt/internal/bitvec"
)

func TestCubeFromString(t *testing.T) {
	c := MustCube("01-")
	if c.Len() != 3 || c.Get(0) != Zero || c.Get(1) != One || c.Get(2) != Dash {
		t.Fatalf("parsed cube mismatch: %s", c)
	}
	if c.String() != "01-" {
		t.Fatalf("String = %q", c.String())
	}
	if _, err := CubeFromString("01x"); err == nil {
		t.Fatal("expected error")
	}
	if c.Literals() != 2 {
		t.Fatalf("Literals = %d, want 2", c.Literals())
	}
}

func TestCubeContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"---", "010", true},
		{"0--", "010", true},
		{"1--", "010", false},
		{"01-", "010", true},
		{"010", "010", true},
		{"0--", "0--", true},
		{"0--", "---", false},
		{"-1-", "01-", true},
	}
	for _, tc := range cases {
		if got := MustCube(tc.a).Contains(MustCube(tc.b)); got != tc.want {
			t.Errorf("Contains(%s,%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCubeIntersect(t *testing.T) {
	a := MustCube("0-1")
	b := MustCube("-01")
	r, ok := a.Intersect(b)
	if !ok || r.String() != "001" {
		t.Fatalf("Intersect = %v,%v", r, ok)
	}
	c := MustCube("1--")
	if _, ok := a.Intersect(c); ok {
		t.Fatal("expected empty intersection")
	}
	if a.Distance(c) != 1 {
		t.Fatalf("Distance = %d, want 1", a.Distance(c))
	}
}

func TestCubeSupercube(t *testing.T) {
	a := MustCube("010")
	b := MustCube("011")
	s := a.Supercube(b)
	if s.String() != "01-" {
		t.Fatalf("Supercube = %s", s)
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Fatal("supercube must contain operands")
	}
}

func TestCubeCoversMinterm(t *testing.T) {
	c := MustCube("1-0")
	if !c.CoversMinterm(bitvec.MustFromString("110")) {
		t.Fatal("should cover 110")
	}
	if c.CoversMinterm(bitvec.MustFromString("111")) {
		t.Fatal("should not cover 111")
	}
}

func TestCubeSharpBasic(t *testing.T) {
	c := MustCube("---")
	d := MustCube("1--")
	pieces := c.Sharp(d)
	if len(pieces) != 1 || pieces[0].String() != "0--" {
		t.Fatalf("Sharp = %v", pieces)
	}
	// Sharp with disjoint cube returns the original.
	e := MustCube("0--")
	pieces = e.Sharp(MustCube("1--"))
	if len(pieces) != 1 || !pieces[0].Equal(e) {
		t.Fatalf("Sharp disjoint = %v", pieces)
	}
	// Sharp with containing cube is empty.
	if p := MustCube("01-").Sharp(MustCube("0--")); p != nil {
		t.Fatalf("Sharp contained = %v", p)
	}
}

// enumerate returns all minterms of width n covered by the cube.
func enumerate(c Cube, n int) map[string]bool {
	out := map[string]bool{}
	for m := 0; m < (1 << uint(n)); m++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, m&(1<<uint(i)) != 0)
		}
		if c.CoversMinterm(v) {
			out[v.String()] = true
		}
	}
	return out
}

func randomCube(r *rand.Rand, n int) Cube {
	c := NewCube(n)
	for i := 0; i < n; i++ {
		c.Set(i, Trit(r.Intn(3)))
	}
	return c
}

func TestQuickSharpSemantics(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		a := randomCube(r, n)
		b := randomCube(r, n)
		pieces := a.Sharp(b)
		// Semantics: union of pieces == minterms(a) \ minterms(b),
		// and the pieces are pairwise disjoint.
		want := enumerate(a, n)
		for m := range enumerate(b, n) {
			delete(want, m)
		}
		got := map[string]bool{}
		for i, p := range pieces {
			for m := range enumerate(p, n) {
				if got[m] {
					t.Fatalf("sharp pieces overlap at %s (a=%s b=%s)", m, a, b)
				}
				got[m] = true
			}
			for j := i + 1; j < len(pieces); j++ {
				if _, ok := p.Intersect(pieces[j]); ok {
					t.Fatalf("sharp pieces %s and %s intersect", p, pieces[j])
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("sharp wrong size: a=%s b=%s got=%d want=%d", a, b, len(got), len(want))
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("sharp missing %s for a=%s b=%s", m, a, b)
			}
		}
	}
}

func TestQuickIntersectSemantics(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		a := randomCube(r, n)
		b := randomCube(r, n)
		inter, ok := a.Intersect(b)
		want := map[string]bool{}
		ea, eb := enumerate(a, n), enumerate(b, n)
		for m := range ea {
			if eb[m] {
				want[m] = true
			}
		}
		if !ok {
			if len(want) != 0 {
				t.Fatalf("Intersect(%s,%s) reported empty but %d common minterms", a, b, len(want))
			}
			continue
		}
		got := enumerate(inter, n)
		if len(got) != len(want) {
			t.Fatalf("Intersect(%s,%s) = %s wrong size", a, b, inter)
		}
		for m := range want {
			if !got[m] {
				t.Fatalf("Intersect(%s,%s) missing %s", a, b, m)
			}
		}
	}
}

func TestQuickContainsIsPartialOrder(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		r := rand.New(rand.NewSource(seedA ^ seedB<<1))
		a := randomCube(r, 6)
		b := randomCube(r, 6)
		// Antisymmetry: mutual containment implies equality.
		if a.Contains(b) && b.Contains(a) && !a.Equal(b) {
			return false
		}
		// Reflexivity.
		return a.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
