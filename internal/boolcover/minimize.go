package boolcover

import "sort"

// Minimize performs heuristic two-level minimisation of the on-set cover,
// using dc as the don't-care set.  It stands in for Espresso in the synthesis
// flows: the result covers every minterm of on, covers no minterm outside
// on ∪ dc, and is irredundant with respect to on.  dc may be nil.
//
// Minimize computes the off-set explicitly by complementation, so it is meant
// for moderate variable counts; synthesis flows that already know the off-set
// should call MinimizeAgainstOff, which never complements.
func Minimize(on, dc *Cover) *Cover {
	if on == nil {
		panic("boolcover: Minimize requires an on-set")
	}
	n := on.Vars()
	if on.IsEmpty() {
		return NewCover(n)
	}
	if dc == nil {
		dc = NewCover(n)
	}
	care := on.Clone()
	care.AddAll(dc)
	off := care.Complement()
	return MinimizeAgainstOff(on, off)
}

// MinimizeAgainstOff minimises the on-set cover against an explicit off-set:
// the result covers every minterm of on, intersects no minterm of off, and
// everything outside on ∪ off is treated as don't-care.  This is the entry
// point used by all synthesis flows (the DC-set of a state graph is the set
// of unreachable binary codes and is never materialised).
func MinimizeAgainstOff(on, off *Cover) *Cover {
	if on == nil || off == nil {
		panic("boolcover: MinimizeAgainstOff requires both covers")
	}
	n := on.Vars()
	if on.IsEmpty() {
		return NewCover(n)
	}
	cur := on.Clone()
	prevCost := cost(cur)
	for iter := 0; iter < 4; iter++ {
		cur = expand(cur, off)
		cur = irredundant(cur, on)
		c := cost(cur)
		if c >= prevCost && iter > 0 {
			break
		}
		prevCost = c
	}
	return cur
}

func cost(c *Cover) int {
	// Primary cost: cube count; secondary: literal count.
	return c.Size()*10000 + c.Literals()
}

// expand greedily raises literals of each cube to don't-care as long as the
// expanded cube stays disjoint from the off-set, then removes cubes contained
// in other single cubes.
func expand(c, off *Cover) *Cover {
	n := c.Vars()
	cubes := make([]Cube, len(c.cubes))
	for i, cb := range c.cubes {
		cubes[i] = cb.Clone()
	}
	// Expand the largest cubes (fewest literals) first so that smaller ones
	// can subsequently be absorbed by single-cube containment.
	sort.SliceStable(cubes, func(i, j int) bool {
		return cubes[i].Literals() < cubes[j].Literals()
	})
	for i := range cubes {
		cb := cubes[i]
		for v := 0; v < n; v++ {
			if cb.Get(v) == Dash {
				continue
			}
			saved := cb.Get(v)
			cb.Set(v, Dash)
			if intersectsCover(cb, off) {
				cb.Set(v, saved)
			}
		}
	}
	out := NewCover(n)
	for _, cb := range cubes {
		out.Add(cb)
	}
	return out
}

func intersectsCover(cb Cube, c *Cover) bool {
	for _, e := range c.cubes {
		if _, ok := cb.Intersect(e); ok {
			return true
		}
	}
	return false
}

// irredundant removes cubes whose contribution to covering the on-set is
// already provided by the remaining cubes.  A cube may be dropped when every
// on-set minterm inside it is covered by the rest of the cover (anything else
// inside it is off-set-free by construction after expand, hence don't-care).
func irredundant(c, on *Cover) *Cover {
	n := c.Vars()
	cubes := make([]Cube, len(c.cubes))
	copy(cubes, c.cubes)
	// Try to remove the most expensive cubes first.
	order := make([]int, len(cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cubes[order[a]].Literals() > cubes[order[b]].Literals()
	})
	removed := make([]bool, len(cubes))
	for _, idx := range order {
		rest := NewCover(n)
		for j, cb := range cubes {
			if j == idx || removed[j] {
				continue
			}
			rest.cubes = append(rest.cubes, cb)
		}
		onInCube := on.IntersectCube(cubes[idx])
		if rest.ContainsCover(onInCube) {
			removed[idx] = true
		}
	}
	out := NewCover(n)
	for j, cb := range cubes {
		if !removed[j] {
			out.cubes = append(out.cubes, cb)
		}
	}
	return out
}
