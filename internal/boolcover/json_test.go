package boolcover

import (
	"encoding/json"
	"testing"
)

func TestCoverJSONRoundTrip(t *testing.T) {
	c := NewCover(3)
	for _, s := range []string{"10-", "-01"} {
		cb, err := CubeFromString(s)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(cb)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Cover
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Vars() != 3 || back.String() != c.String() {
		t.Fatalf("round trip changed the cover: %s -> %s", c, &back)
	}
}

func TestCoverJSONEmptyKeepsWidth(t *testing.T) {
	// The constant-0 function: no cubes, but the variable count must survive
	// the round trip (it cannot be recovered from an empty cube list).
	data, err := json.Marshal(NewCover(5))
	if err != nil {
		t.Fatal(err)
	}
	var back Cover
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Vars() != 5 || len(back.Cubes()) != 0 {
		t.Fatalf("empty cover round trip: vars=%d cubes=%d", back.Vars(), len(back.Cubes()))
	}
}

func TestCoverJSONRejectsDamage(t *testing.T) {
	for _, bad := range []string{
		`{"vars":-1}`,                // negative width
		`{"vars":3,"cubes":["10"]}`,  // cube narrower than declared
		`{"vars":3,"cubes":["1x-"]}`, // invalid ternary digit
		`{"vars":3,"cubes":[4]}`,     // wrong cube type
		`"not an object"`,            // wrong document shape
	} {
		var c Cover
		if err := json.Unmarshal([]byte(bad), &c); err == nil {
			t.Errorf("%s was accepted", bad)
		}
	}
}
