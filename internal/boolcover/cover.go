package boolcover

import (
	"sort"
	"strings"

	"punt/internal/bitvec"
)

// Cover is a single-output sum-of-products: a set of cubes over the same
// variable set, interpreted as their union.
type Cover struct {
	n     int
	cubes []Cube
}

// NewCover returns an empty cover over n variables.
func NewCover(n int) *Cover {
	return &Cover{n: n}
}

// CoverFromStrings builds a cover from positional-notation cube strings.
func CoverFromStrings(cubes ...string) *Cover {
	if len(cubes) == 0 {
		panic("boolcover: CoverFromStrings needs at least one cube")
	}
	c := NewCover(len(cubes[0]))
	for _, s := range cubes {
		c.Add(MustCube(s))
	}
	return c
}

// Universe returns the cover consisting of the single universal cube.
func Universe(n int) *Cover {
	c := NewCover(n)
	c.Add(NewCube(n))
	return c
}

// Vars reports the number of variables of the cover.
func (c *Cover) Vars() int { return c.n }

// Size reports the number of cubes in the cover.
func (c *Cover) Size() int { return len(c.cubes) }

// IsEmpty reports whether the cover contains no cubes (the constant-0
// function).
func (c *Cover) IsEmpty() bool { return len(c.cubes) == 0 }

// Cubes returns the cubes of the cover.  The returned slice must not be
// modified.
func (c *Cover) Cubes() []Cube { return c.cubes }

// Add appends a cube, skipping it if an existing cube already contains it.
func (c *Cover) Add(cb Cube) {
	if cb.Len() != c.n {
		panic("boolcover: cube width does not match cover")
	}
	for _, e := range c.cubes {
		if e.Contains(cb) {
			return
		}
	}
	c.cubes = append(c.cubes, cb)
}

// AddAll appends every cube of d (with single-cube containment filtering).
func (c *Cover) AddAll(d *Cover) {
	for _, cb := range d.cubes {
		c.Add(cb)
	}
}

// Clone returns an independent copy of the cover.
func (c *Cover) Clone() *Cover {
	d := NewCover(c.n)
	d.cubes = make([]Cube, len(c.cubes))
	for i, cb := range c.cubes {
		d.cubes[i] = cb.Clone()
	}
	return d
}

// CoversMinterm reports whether some cube of the cover contains the fully
// specified vector v.
func (c *Cover) CoversMinterm(v bitvec.Vec) bool {
	for _, cb := range c.cubes {
		if cb.CoversMinterm(v) {
			return true
		}
	}
	return false
}

// Literals reports the total number of literals across all cubes, the quality
// metric ("LitCnt") used in the paper's Table 1.
func (c *Cover) Literals() int {
	n := 0
	for _, cb := range c.cubes {
		n += cb.Literals()
	}
	return n
}

// String renders the cover as newline-free list of cubes sorted
// lexicographically, e.g. "1--+-1-".
func (c *Cover) String() string {
	if len(c.cubes) == 0 {
		return "<empty>"
	}
	strs := make([]string, len(c.cubes))
	for i, cb := range c.cubes {
		strs[i] = cb.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, " + ")
}

// Intersect returns the cover representing the intersection (boolean AND) of
// c and d.
func (c *Cover) Intersect(d *Cover) *Cover {
	out := NewCover(c.n)
	for _, a := range c.cubes {
		for _, b := range d.cubes {
			if r, ok := a.Intersect(b); ok {
				out.Add(r)
			}
		}
	}
	return out
}

// IntersectCube returns the intersection of the cover with a single cube.
func (c *Cover) IntersectCube(cb Cube) *Cover {
	out := NewCover(c.n)
	for _, a := range c.cubes {
		if r, ok := a.Intersect(cb); ok {
			out.Add(r)
		}
	}
	return out
}

// Intersects reports whether c and d share at least one minterm.
func (c *Cover) Intersects(d *Cover) bool {
	for _, a := range c.cubes {
		for _, b := range d.cubes {
			if _, ok := a.Intersect(b); ok {
				return true
			}
		}
	}
	return false
}

// SharpCube returns the cover c \ cb.
func (c *Cover) SharpCube(cb Cube) *Cover {
	out := NewCover(c.n)
	for _, a := range c.cubes {
		for _, piece := range a.Sharp(cb) {
			out.Add(piece)
		}
	}
	return out
}

// Sharp returns the cover c \ d.
func (c *Cover) Sharp(d *Cover) *Cover {
	out := c.Clone()
	for _, cb := range d.cubes {
		out = out.SharpCube(cb)
		if out.IsEmpty() {
			break
		}
	}
	return out
}

// Complement returns the complement of the cover over the full boolean space.
func (c *Cover) Complement() *Cover {
	return Universe(c.n).Sharp(c)
}

// Cofactor returns the cofactor of the cover with respect to cube p.
func (c *Cover) Cofactor(p Cube) *Cover {
	out := NewCover(c.n)
	for _, a := range c.cubes {
		if r, ok := a.Cofactor(p); ok {
			out.cubes = append(out.cubes, r)
		}
	}
	return out
}

// IsTautology reports whether the cover covers the entire boolean space.
func (c *Cover) IsTautology() bool {
	return tautology(c.cubes, c.n)
}

// ContainsCube reports whether every minterm of cb is covered by the cover.
func (c *Cover) ContainsCube(cb Cube) bool {
	return tautology(c.Cofactor(cb).cubes, c.n)
}

// ContainsCover reports whether every minterm of d is covered by c.
func (c *Cover) ContainsCover(d *Cover) bool {
	for _, cb := range d.cubes {
		if !c.ContainsCube(cb) {
			return false
		}
	}
	return true
}

// Equivalent reports whether c and d cover exactly the same set of minterms.
func (c *Cover) Equivalent(d *Cover) bool {
	return c.ContainsCover(d) && d.ContainsCover(c)
}

// tautology implements the recursive unate-style tautology check.
func tautology(cubes []Cube, n int) bool {
	if len(cubes) == 0 {
		return false
	}
	for _, cb := range cubes {
		if cb.Literals() == 0 {
			return true
		}
	}
	// Select the most binate variable (appearing in both phases); fall back
	// to the most frequently constrained variable.
	bestVar, bestScore := -1, -1
	for v := 0; v < n; v++ {
		zeros, ones := 0, 0
		for _, cb := range cubes {
			switch cb.Get(v) {
			case Zero:
				zeros++
			case One:
				ones++
			}
		}
		if zeros+ones == 0 {
			continue
		}
		score := zeros + ones
		if zeros > 0 && ones > 0 {
			score += len(cubes) // prefer binate variables
		}
		if score > bestScore {
			bestScore, bestVar = score, v
		}
	}
	if bestVar < 0 {
		// No cube constrains any variable but none is the universe: impossible
		// because a cube with zero literals is the universe; defensive answer.
		return false
	}
	p0 := NewCube(n)
	p0.Set(bestVar, Zero)
	p1 := NewCube(n)
	p1.Set(bestVar, One)
	return tautology(cofactorCubes(cubes, p0, n), n) && tautology(cofactorCubes(cubes, p1, n), n)
}

func cofactorCubes(cubes []Cube, p Cube, n int) []Cube {
	var out []Cube
	for _, cb := range cubes {
		if r, ok := cb.Cofactor(p); ok {
			out = append(out, r)
		}
	}
	return out
}
