package boolcover

import (
	"encoding/json"
	"fmt"
)

// coverJSON is the wire shape of a Cover: the variable count plus one
// positional-ternary string per cube ("10-").  The explicit variable count
// keeps empty covers (the constant-0 function) round-trippable — their width
// cannot be recovered from the cube list.
type coverJSON struct {
	Vars  int      `json:"vars"`
	Cubes []string `json:"cubes,omitempty"`
}

// MarshalJSON renders the cover in the shared wire format of the synthesis
// result serializer (the HTTP API and the on-disk result store use the same
// bytes).
func (c *Cover) MarshalJSON() ([]byte, error) {
	w := coverJSON{Vars: c.n}
	if len(c.cubes) > 0 {
		w.Cubes = make([]string, len(c.cubes))
		for i, cb := range c.cubes {
			w.Cubes[i] = cb.String()
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the wire format back into a cover, validating that
// every cube matches the declared variable count.
func (c *Cover) UnmarshalJSON(data []byte) error {
	var w coverJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Vars < 0 {
		return fmt.Errorf("boolcover: negative variable count %d", w.Vars)
	}
	cubes := make([]Cube, 0, len(w.Cubes))
	for _, s := range w.Cubes {
		cb, err := CubeFromString(s)
		if err != nil {
			return err
		}
		if cb.Len() != w.Vars {
			return fmt.Errorf("boolcover: cube %q has %d variables, cover declares %d", s, cb.Len(), w.Vars)
		}
		cubes = append(cubes, cb)
	}
	*c = Cover{n: w.Vars, cubes: cubes}
	return nil
}
