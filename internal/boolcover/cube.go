// Package boolcover implements ternary cubes, single-output covers and a
// two-level heuristic minimiser.  It plays the role of the Espresso step of
// the synthesis flows described in the paper and also provides the cover
// algebra (intersection, containment, sharp, complement, tautology) that the
// approximation and refinement procedures of the unfolding-based method rely
// on.
//
// A cube is a ternary vector over n variables with values 0, 1 and '-'
// (don't care).  A cover is a set of cubes interpreted as their union
// (sum-of-products).
package boolcover

import (
	"fmt"
	"strings"

	"punt/internal/bitvec"
)

// Trit is a single ternary value of a cube.
type Trit uint8

// The three possible values of a cube position.
const (
	Zero Trit = iota // the variable must be 0
	One              // the variable must be 1
	Dash             // the variable is free (don't care)
)

// String renders the trit with the conventional '0', '1', '-' characters.
func (t Trit) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "-"
	}
}

// Cube is a product term over a fixed number of boolean variables.
type Cube struct {
	t []Trit
}

// NewCube returns the universal cube (all don't cares) over n variables.
func NewCube(n int) Cube {
	c := Cube{t: make([]Trit, n)}
	for i := range c.t {
		c.t[i] = Dash
	}
	return c
}

// CubeFromString parses a cube from a string of '0', '1' and '-' characters.
func CubeFromString(s string) (Cube, error) {
	c := Cube{t: make([]Trit, len(s))}
	for i, ch := range s {
		switch ch {
		case '0':
			c.t[i] = Zero
		case '1':
			c.t[i] = One
		case '-':
			c.t[i] = Dash
		default:
			return Cube{}, fmt.Errorf("boolcover: invalid cube character %q", ch)
		}
	}
	return c, nil
}

// MustCube is CubeFromString but panics on malformed input; intended for
// literals in tests and generators.
func MustCube(s string) Cube {
	c, err := CubeFromString(s)
	if err != nil {
		panic(err)
	}
	return c
}

// CubeFromMinterm converts a fully specified binary vector into a cube with no
// don't cares.
func CubeFromMinterm(v bitvec.Vec) Cube {
	c := Cube{t: make([]Trit, v.Len())}
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			c.t[i] = One
		} else {
			c.t[i] = Zero
		}
	}
	return c
}

// Len reports the number of variables of the cube.
func (c Cube) Len() int { return len(c.t) }

// Get returns the value at position i.
func (c Cube) Get(i int) Trit { return c.t[i] }

// Set assigns position i.  It mutates the cube in place.
func (c Cube) Set(i int, v Trit) { c.t[i] = v }

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	d := Cube{t: make([]Trit, len(c.t))}
	copy(d.t, c.t)
	return d
}

// String renders the cube in positional ternary notation.
func (c Cube) String() string {
	var sb strings.Builder
	for _, v := range c.t {
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Equal reports whether the two cubes are identical.
func (c Cube) Equal(d Cube) bool {
	if len(c.t) != len(d.t) {
		return false
	}
	for i := range c.t {
		if c.t[i] != d.t[i] {
			return false
		}
	}
	return true
}

// Literals reports the number of care (non-dash) positions, i.e. the number of
// literals of the product term.
func (c Cube) Literals() int {
	n := 0
	for _, v := range c.t {
		if v != Dash {
			n++
		}
	}
	return n
}

// IsUniverse reports whether the cube has no care positions, covering the
// whole boolean space.
func (c Cube) IsUniverse() bool { return c.Literals() == 0 }

// Contains reports whether every minterm of d is covered by c.
func (c Cube) Contains(d Cube) bool {
	if len(c.t) != len(d.t) {
		panic("boolcover: cube width mismatch")
	}
	for i := range c.t {
		if c.t[i] != Dash && c.t[i] != d.t[i] {
			return false
		}
	}
	return true
}

// CoversMinterm reports whether the fully specified vector v lies inside c.
func (c Cube) CoversMinterm(v bitvec.Vec) bool {
	if len(c.t) != v.Len() {
		panic("boolcover: cube/minterm width mismatch")
	}
	for i := range c.t {
		switch c.t[i] {
		case Zero:
			if v.Get(i) {
				return false
			}
		case One:
			if !v.Get(i) {
				return false
			}
		}
	}
	return true
}

// Intersect returns the intersection of c and d.  The second result is false
// if the intersection is empty.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	if len(c.t) != len(d.t) {
		panic("boolcover: cube width mismatch")
	}
	r := Cube{t: make([]Trit, len(c.t))}
	for i := range c.t {
		a, b := c.t[i], d.t[i]
		switch {
		case a == Dash:
			r.t[i] = b
		case b == Dash:
			r.t[i] = a
		case a == b:
			r.t[i] = a
		default:
			return Cube{}, false
		}
	}
	return r, true
}

// Distance returns the number of variables in which c and d have opposing
// care values.  A distance of 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	if len(c.t) != len(d.t) {
		panic("boolcover: cube width mismatch")
	}
	n := 0
	for i := range c.t {
		a, b := c.t[i], d.t[i]
		if a != Dash && b != Dash && a != b {
			n++
		}
	}
	return n
}

// Supercube returns the smallest cube containing both c and d.
func (c Cube) Supercube(d Cube) Cube {
	if len(c.t) != len(d.t) {
		panic("boolcover: cube width mismatch")
	}
	r := Cube{t: make([]Trit, len(c.t))}
	for i := range c.t {
		if c.t[i] == d.t[i] {
			r.t[i] = c.t[i]
		} else {
			r.t[i] = Dash
		}
	}
	return r
}

// Cofactor returns the cofactor of c with respect to cube p (the Shannon
// cofactor generalised to cubes).  The second result is false if c and p do
// not intersect, in which case the cofactor is empty.
func (c Cube) Cofactor(p Cube) (Cube, bool) {
	if len(c.t) != len(p.t) {
		panic("boolcover: cube width mismatch")
	}
	if c.Distance(p) > 0 {
		return Cube{}, false
	}
	r := Cube{t: make([]Trit, len(c.t))}
	for i := range c.t {
		if p.t[i] != Dash {
			r.t[i] = Dash
		} else {
			r.t[i] = c.t[i]
		}
	}
	return r, true
}

// Sharp returns the set difference c \ d expressed as a cover (a disjoint set
// of cubes).  The result is empty if d contains c.
func (c Cube) Sharp(d Cube) []Cube {
	if len(c.t) != len(d.t) {
		panic("boolcover: cube width mismatch")
	}
	if d.Contains(c) {
		return nil
	}
	if c.Distance(d) > 0 {
		return []Cube{c.Clone()}
	}
	var out []Cube
	rem := c.Clone()
	for i := range c.t {
		if d.t[i] == Dash || rem.t[i] != Dash {
			// Either d does not constrain variable i, or the remainder is
			// already fixed there (if it were fixed to the opposite value the
			// distance check above would have fired; if fixed to the same
			// value the split contributes nothing).
			if rem.t[i] != Dash && d.t[i] != Dash && rem.t[i] != d.t[i] {
				return []Cube{c.Clone()}
			}
			continue
		}
		piece := rem.Clone()
		if d.t[i] == One {
			piece.t[i] = Zero
		} else {
			piece.t[i] = One
		}
		out = append(out, piece)
		rem.t[i] = d.t[i]
	}
	return out
}
