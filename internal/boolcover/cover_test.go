package boolcover

import (
	"math/rand"
	"testing"

	"punt/internal/bitvec"
)

func enumerateCover(c *Cover) map[string]bool {
	out := map[string]bool{}
	n := c.Vars()
	for m := 0; m < (1 << uint(n)); m++ {
		v := bitvec.New(n)
		for i := 0; i < n; i++ {
			v.Set(i, m&(1<<uint(i)) != 0)
		}
		if c.CoversMinterm(v) {
			out[v.String()] = true
		}
	}
	return out
}

func randomCover(r *rand.Rand, n, maxCubes int) *Cover {
	c := NewCover(n)
	k := 1 + r.Intn(maxCubes)
	for i := 0; i < k; i++ {
		c.Add(randomCube(r, n))
	}
	return c
}

func TestCoverAddAbsorbs(t *testing.T) {
	c := NewCover(3)
	c.Add(MustCube("0--"))
	c.Add(MustCube("01-")) // contained in previous, must be absorbed
	if c.Size() != 1 {
		t.Fatalf("Size = %d, want 1", c.Size())
	}
}

func TestCoverLiterals(t *testing.T) {
	c := CoverFromStrings("1--", "--1")
	if c.Literals() != 2 {
		t.Fatalf("Literals = %d, want 2", c.Literals())
	}
}

func TestCoverComplement(t *testing.T) {
	c := CoverFromStrings("1--", "--1")
	comp := c.Complement()
	// complement of a+c over (a,b,c) is a'c'
	if !comp.Equivalent(CoverFromStrings("0-0")) {
		t.Fatalf("Complement = %s", comp)
	}
	// c + complement(c) must be a tautology.
	u := c.Clone()
	u.AddAll(comp)
	if !u.IsTautology() {
		t.Fatal("cover plus complement must be tautology")
	}
	if c.Intersects(comp) {
		t.Fatal("cover must not intersect its complement")
	}
}

func TestCoverTautology(t *testing.T) {
	if !CoverFromStrings("1--", "0--").IsTautology() {
		t.Fatal("x + x' is a tautology")
	}
	if CoverFromStrings("1--", "01-").IsTautology() {
		t.Fatal("not a tautology")
	}
	if NewCover(3).IsTautology() {
		t.Fatal("empty cover is not a tautology")
	}
	if !Universe(3).IsTautology() {
		t.Fatal("universe is a tautology")
	}
}

func TestCoverContainsCube(t *testing.T) {
	c := CoverFromStrings("1-0", "11-")
	if !c.ContainsCube(MustCube("110")) {
		t.Fatal("110 is covered")
	}
	if c.ContainsCube(MustCube("0--")) {
		t.Fatal("0-- is not covered")
	}
	// Containment that needs more than one cube: 1-0 + 1-1 contains 1--.
	d := CoverFromStrings("1-0", "1-1")
	if !d.ContainsCube(MustCube("1--")) {
		t.Fatal("multi-cube containment failed")
	}
}

func TestCoverEquivalent(t *testing.T) {
	a := CoverFromStrings("1-0", "1-1")
	b := CoverFromStrings("1--")
	if !a.Equivalent(b) {
		t.Fatal("covers are equivalent")
	}
	c := CoverFromStrings("1-0")
	if a.Equivalent(c) {
		t.Fatal("covers are not equivalent")
	}
}

func TestQuickComplementSemantics(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		c := randomCover(r, n, 4)
		comp := c.Complement()
		e := enumerateCover(c)
		ec := enumerateCover(comp)
		for m := range e {
			if ec[m] {
				t.Fatalf("minterm %s in both cover and complement", m)
			}
		}
		if len(e)+len(ec) != 1<<uint(n) {
			t.Fatalf("cover(%d) + complement(%d) != 2^%d", len(e), len(ec), n)
		}
	}
}

func TestQuickSharpCoverSemantics(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		a := randomCover(r, n, 3)
		b := randomCover(r, n, 3)
		s := a.Sharp(b)
		ea, eb, es := enumerateCover(a), enumerateCover(b), enumerateCover(s)
		for m := range ea {
			want := !eb[m]
			if es[m] != want {
				t.Fatalf("sharp wrong at %s", m)
			}
		}
		for m := range es {
			if !ea[m] || eb[m] {
				t.Fatalf("sharp produced spurious minterm %s", m)
			}
		}
	}
}

func TestQuickIntersectCoverSemantics(t *testing.T) {
	const n = 5
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		a := randomCover(r, n, 3)
		b := randomCover(r, n, 3)
		i := a.Intersect(b)
		ea, eb, ei := enumerateCover(a), enumerateCover(b), enumerateCover(i)
		for m := range ea {
			if eb[m] && !ei[m] {
				t.Fatalf("intersection missing %s", m)
			}
		}
		for m := range ei {
			if !ea[m] || !eb[m] {
				t.Fatalf("intersection spurious %s", m)
			}
		}
		if a.Intersects(b) != (len(ei) > 0) {
			t.Fatal("Intersects predicate disagrees with enumeration")
		}
	}
}
