package gatelib

import (
	"encoding/json"
	"fmt"

	"punt/internal/boolcover"
)

// ParseArchitecture resolves an architecture's String() name; it is the
// inverse of Architecture.String for the three declared values.
func ParseArchitecture(name string) (Architecture, error) {
	switch name {
	case "complex-gate":
		return ComplexGate, nil
	case "standard-c":
		return StandardC, nil
	case "rs-latch":
		return RSLatch, nil
	default:
		return ComplexGate, fmt.Errorf("gatelib: unknown architecture %q", name)
	}
}

// MarshalJSON renders the architecture by name, so the wire format stays
// readable and stable even if the internal constant order ever changes.
func (a Architecture) MarshalJSON() ([]byte, error) {
	switch a {
	case ComplexGate, StandardC, RSLatch:
		return json.Marshal(a.String())
	default:
		return nil, fmt.Errorf("gatelib: cannot marshal unknown architecture %d", int(a))
	}
}

// UnmarshalJSON parses the architecture name written by MarshalJSON.
func (a *Architecture) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	parsed, err := ParseArchitecture(name)
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// Validate checks the structural invariants a deserialized implementation
// must satisfy before it can be trusted by callers: every gate names a
// declared signal, carries the covers its architecture requires, and every
// cover is as wide as the signal list.  It is the integrity gate of the
// result store — a corrupted or truncated entry fails here and is treated as
// a cache miss instead of escaping to a caller.
func (im *Implementation) Validate() error {
	if im == nil {
		return fmt.Errorf("gatelib: nil implementation")
	}
	if len(im.Gates) == 0 {
		return fmt.Errorf("gatelib: implementation %q has no gates", im.Name)
	}
	declared := make(map[string]bool, len(im.SignalNames))
	for _, s := range im.SignalNames {
		declared[s] = true
	}
	n := len(im.SignalNames)
	checkCover := func(signal, role string, c *boolcover.Cover) error {
		if c == nil {
			return fmt.Errorf("gatelib: gate %s has no %s cover", signal, role)
		}
		if c.Vars() != n {
			return fmt.Errorf("gatelib: gate %s %s cover has %d variables, implementation declares %d",
				signal, role, c.Vars(), n)
		}
		return nil
	}
	for _, g := range im.Gates {
		if !declared[g.Signal] {
			return fmt.Errorf("gatelib: gate %q implements an undeclared signal", g.Signal)
		}
		switch g.Arch {
		case ComplexGate:
			if err := checkCover(g.Signal, "on-set", g.Cover); err != nil {
				return err
			}
		case StandardC, RSLatch:
			if err := checkCover(g.Signal, "set", g.Set); err != nil {
				return err
			}
			if err := checkCover(g.Signal, "reset", g.Reset); err != nil {
				return err
			}
		default:
			return fmt.Errorf("gatelib: gate %q has unknown architecture %d", g.Signal, int(g.Arch))
		}
	}
	return nil
}
