// Package gatelib represents the synthesised implementations produced by the
// synthesis engines: one atomic complex gate (or memory element with set and
// reset functions) per non-input signal.  It provides literal counting — the
// quality metric of the paper's Table 1 — and netlist emission as boolean
// equations and as a behavioural Verilog module.
package gatelib

import (
	"fmt"
	"sort"
	"strings"

	"punt/internal/boolcover"
)

// Architecture selects how an output signal is implemented.
type Architecture int

// The implementation architectures considered by the paper (Section 2.1).
const (
	// ComplexGate is the "atomic complex gate per signal" architecture: the
	// whole next-state function of the signal is one atomic sum-of-products
	// gate with internal feedback.
	ComplexGate Architecture = iota
	// StandardC implements the signal with a Muller C-element whose set and
	// reset inputs are atomic complex gates.
	StandardC
	// RSLatch implements the signal with an RS latch whose set and reset
	// inputs are atomic complex gates.
	RSLatch
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case ComplexGate:
		return "complex-gate"
	case StandardC:
		return "standard-c"
	case RSLatch:
		return "rs-latch"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Gate is the implementation of a single output or internal signal.
type Gate struct {
	Signal string       `json:"signal"`
	Arch   Architecture `json:"arch"`

	// Cover is the next-state (on-set) cover for ComplexGate implementations.
	Cover *boolcover.Cover `json:"cover,omitempty"`
	// Set and Reset are the excitation function covers for StandardC and
	// RSLatch implementations.
	Set   *boolcover.Cover `json:"set,omitempty"`
	Reset *boolcover.Cover `json:"reset,omitempty"`
}

// Literals reports the number of literals of the gate, counting both the set
// and reset networks for memory-element architectures.
func (g Gate) Literals() int {
	switch g.Arch {
	case ComplexGate:
		if g.Cover == nil {
			return 0
		}
		return g.Cover.Literals()
	default:
		n := 0
		if g.Set != nil {
			n += g.Set.Literals()
		}
		if g.Reset != nil {
			n += g.Reset.Literals()
		}
		return n
	}
}

// Implementation is a complete circuit: one gate per implemented signal.
type Implementation struct {
	Name string `json:"name"`
	// SignalNames is the variable order of every cover in the implementation
	// (all signals of the STG, inputs included).
	SignalNames []string `json:"signals"`
	Gates       []Gate   `json:"gates"`
}

// Literals reports the total literal count of the circuit (the paper's
// "LitCnt" column).
func (im *Implementation) Literals() int {
	n := 0
	for _, g := range im.Gates {
		n += g.Literals()
	}
	return n
}

// Gate returns the gate implementing the named signal.
func (im *Implementation) Gate(signal string) (Gate, bool) {
	for _, g := range im.Gates {
		if g.Signal == signal {
			return g, true
		}
	}
	return Gate{}, false
}

// cubeExpr renders one cube as a product of named literals ("a b' c").
func cubeExpr(c boolcover.Cube, names []string) string {
	var parts []string
	for i := 0; i < c.Len(); i++ {
		switch c.Get(i) {
		case boolcover.One:
			parts = append(parts, names[i])
		case boolcover.Zero:
			parts = append(parts, names[i]+"'")
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, " ")
}

// coverExpr renders a cover as a sum of products.
func coverExpr(c *boolcover.Cover, names []string) string {
	if c == nil || c.IsEmpty() {
		return "0"
	}
	var terms []string
	for _, cube := range c.Cubes() {
		terms = append(terms, cubeExpr(cube, names))
	}
	sort.Strings(terms)
	return strings.Join(terms, " + ")
}

// Eqn renders the implementation as a list of boolean equations, one per
// gate, in the style of SIS .eqn files.
func (im *Implementation) Eqn() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# implementation of %s (%d literals)\n", im.Name, im.Literals())
	for _, g := range im.Gates {
		switch g.Arch {
		case ComplexGate:
			fmt.Fprintf(&sb, "%s = %s\n", g.Signal, coverExpr(g.Cover, im.SignalNames))
		default:
			fmt.Fprintf(&sb, "set(%s)   = %s\n", g.Signal, coverExpr(g.Set, im.SignalNames))
			fmt.Fprintf(&sb, "reset(%s) = %s\n", g.Signal, coverExpr(g.Reset, im.SignalNames))
		}
	}
	return sb.String()
}

// verilogExpr renders a cover as a Verilog boolean expression.
func verilogExpr(c *boolcover.Cover, names []string) string {
	if c == nil || c.IsEmpty() {
		return "1'b0"
	}
	var terms []string
	for _, cube := range c.Cubes() {
		var lits []string
		for i := 0; i < cube.Len(); i++ {
			switch cube.Get(i) {
			case boolcover.One:
				lits = append(lits, names[i])
			case boolcover.Zero:
				lits = append(lits, "~"+names[i])
			}
		}
		if len(lits) == 0 {
			terms = append(terms, "1'b1")
		} else {
			terms = append(terms, "("+strings.Join(lits, " & ")+")")
		}
	}
	sort.Strings(terms)
	return strings.Join(terms, " | ")
}

// Verilog renders the implementation as a behavioural Verilog module.  Complex
// gates become continuous assignments with feedback; memory-element
// architectures are modelled with set/reset always-blocks.
func (im *Implementation) Verilog() string {
	var sb strings.Builder
	implemented := map[string]bool{}
	for _, g := range im.Gates {
		implemented[g.Signal] = true
	}
	var inputs, outputs []string
	for _, s := range im.SignalNames {
		if implemented[s] {
			outputs = append(outputs, s)
		} else {
			inputs = append(inputs, s)
		}
	}
	modName := sanitizeIdent(im.Name)
	fmt.Fprintf(&sb, "// Generated by punt: %d literals\n", im.Literals())
	fmt.Fprintf(&sb, "module %s (%s);\n", modName, strings.Join(append(append([]string{}, inputs...), outputs...), ", "))
	if len(inputs) > 0 {
		fmt.Fprintf(&sb, "  input %s;\n", strings.Join(inputs, ", "))
	}
	if len(outputs) > 0 {
		fmt.Fprintf(&sb, "  output %s;\n", strings.Join(outputs, ", "))
	}
	for _, g := range im.Gates {
		switch g.Arch {
		case ComplexGate:
			fmt.Fprintf(&sb, "  assign %s = %s;\n", g.Signal, verilogExpr(g.Cover, im.SignalNames))
		default:
			fmt.Fprintf(&sb, "  reg %s_ff;\n", g.Signal)
			fmt.Fprintf(&sb, "  wire %s_set = %s;\n", g.Signal, verilogExpr(g.Set, im.SignalNames))
			fmt.Fprintf(&sb, "  wire %s_reset = %s;\n", g.Signal, verilogExpr(g.Reset, im.SignalNames))
			fmt.Fprintf(&sb, "  always @(*) if (%s_set) %s_ff = 1'b1; else if (%s_reset) %s_ff = 1'b0;\n",
				g.Signal, g.Signal, g.Signal, g.Signal)
			fmt.Fprintf(&sb, "  assign %s = %s_ff;\n", g.Signal, g.Signal)
		}
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "circuit"
	}
	return sb.String()
}
