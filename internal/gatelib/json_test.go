package gatelib

import (
	"encoding/json"
	"strings"
	"testing"

	"punt/internal/boolcover"
)

func TestParseArchitectureRoundTrip(t *testing.T) {
	for _, a := range []Architecture{ComplexGate, StandardC, RSLatch} {
		parsed, err := ParseArchitecture(a.String())
		if err != nil || parsed != a {
			t.Errorf("ParseArchitecture(%q) = %v, %v", a, parsed, err)
		}
	}
	if _, err := ParseArchitecture("nand-forest"); err == nil {
		t.Error("unknown architecture name was accepted")
	}
}

func TestArchitectureJSON(t *testing.T) {
	for _, a := range []Architecture{ComplexGate, StandardC, RSLatch} {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Architecture
		if err := json.Unmarshal(data, &back); err != nil || back != a {
			t.Errorf("round trip of %v: got %v, %v", a, back, err)
		}
	}
	if _, err := json.Marshal(Architecture(99)); err == nil {
		t.Error("unknown architecture value marshalled")
	}
	var a Architecture
	if err := json.Unmarshal([]byte(`"warp-drive"`), &a); err == nil {
		t.Error("unknown architecture name unmarshalled")
	}
	if err := json.Unmarshal([]byte(`7`), &a); err == nil {
		t.Error("non-string architecture unmarshalled")
	}
}

func coverN(t *testing.T, n int, cubes ...string) *boolcover.Cover {
	t.Helper()
	c := boolcover.NewCover(n)
	for _, s := range cubes {
		cb, err := boolcover.CubeFromString(s)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(cb)
	}
	return c
}

func TestValidate(t *testing.T) {
	good := &Implementation{
		Name:        "v",
		SignalNames: []string{"a", "b"},
		Gates: []Gate{
			{Signal: "b", Arch: ComplexGate, Cover: coverN(t, 2, "1-")},
			{Signal: "a", Arch: StandardC, Set: coverN(t, 2, "-1"), Reset: coverN(t, 2, "0-")},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid implementation rejected: %v", err)
	}

	cases := []struct {
		name string
		im   *Implementation
		want string
	}{
		{"nil", nil, "nil implementation"},
		{"no gates", &Implementation{Name: "v", SignalNames: []string{"a"}}, "no gates"},
		{"undeclared signal", &Implementation{SignalNames: []string{"a"},
			Gates: []Gate{{Signal: "z", Arch: ComplexGate, Cover: coverN(t, 1, "1")}}}, "undeclared"},
		{"missing on-set", &Implementation{SignalNames: []string{"a"},
			Gates: []Gate{{Signal: "a", Arch: ComplexGate}}}, "no on-set cover"},
		{"missing reset", &Implementation{SignalNames: []string{"a"},
			Gates: []Gate{{Signal: "a", Arch: RSLatch, Set: coverN(t, 1, "1")}}}, "no reset cover"},
		{"wrong width", &Implementation{SignalNames: []string{"a", "b"},
			Gates: []Gate{{Signal: "a", Arch: ComplexGate, Cover: coverN(t, 1, "1")}}}, "declares 2"},
		{"unknown arch", &Implementation{SignalNames: []string{"a"},
			Gates: []Gate{{Signal: "a", Arch: Architecture(99)}}}, "unknown architecture"},
	}
	for _, tc := range cases {
		err := tc.im.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
