package gatelib

import (
	"strings"
	"testing"

	"punt/internal/boolcover"
)

func sampleImpl() *Implementation {
	return &Implementation{
		Name:        "paper-fig1",
		SignalNames: []string{"a", "b", "c"},
		Gates: []Gate{
			{
				Signal: "b",
				Arch:   ComplexGate,
				Cover:  boolcover.CoverFromStrings("1--", "--1"),
			},
		},
	}
}

func TestLiteralCount(t *testing.T) {
	im := sampleImpl()
	if im.Literals() != 2 {
		t.Fatalf("Literals = %d, want 2", im.Literals())
	}
	g, ok := im.Gate("b")
	if !ok || g.Literals() != 2 {
		t.Fatal("Gate lookup or per-gate literal count failed")
	}
	if _, ok := im.Gate("nope"); ok {
		t.Fatal("unknown gate must not be found")
	}
}

func TestLiteralCountSetReset(t *testing.T) {
	im := &Implementation{
		Name:        "celem",
		SignalNames: []string{"a", "b", "c"},
		Gates: []Gate{
			{
				Signal: "c",
				Arch:   StandardC,
				Set:    boolcover.CoverFromStrings("11-"),
				Reset:  boolcover.CoverFromStrings("00-"),
			},
		},
	}
	if im.Literals() != 4 {
		t.Fatalf("Literals = %d, want 4", im.Literals())
	}
}

func TestEqnOutput(t *testing.T) {
	im := sampleImpl()
	eqn := im.Eqn()
	if !strings.Contains(eqn, "b = ") {
		t.Fatalf("Eqn missing equation: %s", eqn)
	}
	if !strings.Contains(eqn, "a + c") && !strings.Contains(eqn, "c + a") {
		t.Fatalf("Eqn should render a + c: %s", eqn)
	}
}

func TestEqnSetReset(t *testing.T) {
	im := &Implementation{
		Name:        "latch",
		SignalNames: []string{"x", "y"},
		Gates: []Gate{
			{Signal: "y", Arch: RSLatch,
				Set:   boolcover.CoverFromStrings("1-"),
				Reset: boolcover.CoverFromStrings("0-")},
		},
	}
	eqn := im.Eqn()
	if !strings.Contains(eqn, "set(y)") || !strings.Contains(eqn, "reset(y)") {
		t.Fatalf("set/reset equations missing: %s", eqn)
	}
}

func TestVerilogOutput(t *testing.T) {
	im := sampleImpl()
	v := im.Verilog()
	for _, want := range []string{"module paper_fig1", "input a, c;", "output b;", "assign b ="} {
		if !strings.Contains(v, want) {
			t.Fatalf("Verilog missing %q:\n%s", want, v)
		}
	}
	// Memory-element variant.
	im.Gates[0].Arch = StandardC
	im.Gates[0].Set = boolcover.CoverFromStrings("1--")
	im.Gates[0].Reset = boolcover.CoverFromStrings("0--")
	v = im.Verilog()
	if !strings.Contains(v, "b_set") || !strings.Contains(v, "b_reset") {
		t.Fatalf("C-element Verilog missing set/reset wires:\n%s", v)
	}
}

func TestEmptyCoverRendering(t *testing.T) {
	im := &Implementation{
		Name:        "empty",
		SignalNames: []string{"a", "b"},
		Gates:       []Gate{{Signal: "b", Arch: ComplexGate, Cover: boolcover.NewCover(2)}},
	}
	if !strings.Contains(im.Eqn(), "b = 0") {
		t.Fatalf("empty cover should render as 0: %s", im.Eqn())
	}
	if im.Literals() != 0 {
		t.Fatal("empty cover has no literals")
	}
}

func TestUniverseCubeRendering(t *testing.T) {
	im := &Implementation{
		Name:        "one",
		SignalNames: []string{"a", "b"},
		Gates:       []Gate{{Signal: "b", Arch: ComplexGate, Cover: boolcover.Universe(2)}},
	}
	if !strings.Contains(im.Eqn(), "b = 1") {
		t.Fatalf("universe cover should render as 1: %s", im.Eqn())
	}
}

func TestArchitectureString(t *testing.T) {
	if ComplexGate.String() != "complex-gate" || StandardC.String() != "standard-c" || RSLatch.String() != "rs-latch" {
		t.Fatal("architecture names changed")
	}
}
