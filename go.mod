module punt

go 1.24
