package punt_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"punt"
	"punt/internal/faultinject"
)

// TestSynthesizeCancellation aborts a large pipeline synthesis shortly after
// it starts: the PE-loop cancellation checks must surface the context error
// long before the run would complete on its own.
func TestSynthesizeCancellation(t *testing.T) {
	// Large enough that a full synthesis takes well over a second; the
	// cancelled run must return orders of magnitude faster.
	spec := punt.MullerPipelineWithSignals(220)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := punt.New().Synthesize(ctx, spec)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var diag *punt.Diagnostic
	if !errors.As(err, &diag) || diag.Kind != punt.KindCanceled {
		t.Errorf("diagnostic = %+v", diag)
	}
	// Generous bound: the run is cancelled after 10ms, so even a heavily
	// loaded CI machine should be far below this.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation was not prompt: took %v", elapsed)
	}
}

// TestSynthesizePreCancelled: an already-dead context never starts the work.
func TestSynthesizePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []punt.Engine{punt.Unfolding, punt.Explicit, punt.Symbolic} {
		_, err := punt.New(punt.WithBaseline(engine)).Synthesize(ctx, punt.MullerPipelineWithSignals(50))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", engine, err)
		}
	}
}

// TestUnfoldAndStateGraphCancellation covers the analysis entry points.
func TestUnfoldAndStateGraphCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := punt.Unfold(ctx, punt.MullerPipelineWithSignals(50)); !errors.Is(err, context.Canceled) {
		t.Errorf("Unfold: %v", err)
	}
	if _, err := punt.BuildStateGraph(ctx, punt.MullerPipeline(12)); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildStateGraph: %v", err)
	}
}

// TestBatchIsolatesFailures: one failing item must not poison the batch.
func TestBatchIsolatesFailures(t *testing.T) {
	nonsm, err := punt.LoadFile("testdata/nonsm.g")
	if err != nil {
		t.Fatal(err)
	}
	items := []punt.BatchItem{
		{Name: "fig1", Spec: punt.Fig1()},
		{Name: "bad", Spec: nonsm},
		{Name: "handshake", Spec: punt.Handshake()},
		{Name: "pipeline", Spec: punt.MullerPipeline(6)},
	}
	results, sum := punt.Batch(context.Background(), items, punt.WithWorkers(3))
	if len(results) != len(items) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Name != items[i].Name {
			t.Errorf("result %d out of order: %+v", i, r)
		}
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, punt.ErrNotSemiModular) {
		t.Errorf("bad item error = %v", results[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Errorf("%s failed: %v", results[i].Name, results[i].Err)
		}
		if results[i].Result == nil || results[i].Result.Literals() == 0 {
			t.Errorf("%s produced no implementation", results[i].Name)
		}
	}
	if sum.Items != 4 || sum.Succeeded != 3 || sum.Failed != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Literals == 0 || sum.Events == 0 {
		t.Errorf("summary aggregates missing: %+v", sum)
	}
}

// TestBatchSharedSpec synthesises the same *Spec value from many workers at
// once: a loaded Spec must be immutable, so this is race-free (the CI -race
// job enforces it).
func TestBatchSharedSpec(t *testing.T) {
	shared := punt.MullerPipeline(8)
	items := make([]punt.BatchItem, 16)
	for i := range items {
		items[i] = punt.BatchItem{Name: "shared", Spec: shared}
	}
	results, sum := punt.Batch(context.Background(), items, punt.WithWorkers(8))
	if sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	for _, r := range results {
		if r.Result.Literals() != results[0].Result.Literals() {
			t.Errorf("non-deterministic result: %d vs %d", r.Result.Literals(), results[0].Result.Literals())
		}
	}
}

// TestBatchTable1 runs the paper's whole suite through the pool.
func TestBatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, sum := punt.Batch(context.Background(), punt.Table1())
	if sum.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("%s: %v", r.Name, r.Err)
			}
		}
	}
	if sum.Succeeded != len(results) || sum.Workers < 1 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestBatchCancellation: cancelling the batch context fails the remaining
// items with the context error but keeps the completed ones, and the worker
// pool winds down without leaking goroutines.
func TestBatchCancellation(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []punt.BatchItem{
		{Name: "a", Spec: punt.Fig1()},
		{Name: "b", Spec: punt.Handshake()},
	}
	results, sum := punt.Batch(ctx, items, punt.WithWorkers(1))
	if sum.Failed != len(items) {
		t.Fatalf("summary = %+v", sum)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v", r.Name, r.Err)
		}
	}
}

// TestBatchNilSpec: a malformed item fails alone.
func TestBatchNilSpec(t *testing.T) {
	results, sum := punt.Batch(context.Background(), []punt.BatchItem{
		{Name: "ok", Spec: punt.Fig1()},
		{Name: "nil"},
	})
	if sum.Succeeded != 1 || sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if results[1].Err == nil {
		t.Error("nil spec must fail its item")
	}
}
