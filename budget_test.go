package punt_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"punt"
	"punt/internal/faultinject"
)

// The resource-governance tests: WithDeadline/WithMemoryBudget watchdogs,
// the WithFallback degradation ladder, central panic recovery and the
// anti-poisoning cache guarantees.

// pipelineSpec is a pipeline-class specification whose explicit state space
// (2^22-ish states) is far beyond any test-sized budget, while the unfolding
// segment stays linear — the paper's own motivating asymmetry.
func pipelineSpec() *punt.Spec { return punt.MullerPipelineWithSignals(24) }

func TestDeadlineBudgetTrips(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	s := punt.New(punt.WithEngine(punt.Explicit), punt.WithDeadline(50*time.Millisecond))
	start := time.Now()
	_, err := s.Synthesize(context.Background(), pipelineSpec())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("explicit enumeration of a 22-stage pipeline finished within 50ms; expected a budget trip")
	}
	if !errors.Is(err, punt.ErrBudget) {
		t.Fatalf("err = %v, want errors.Is(err, ErrBudget)", err)
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("err = %T, want *Diagnostic", err)
	}
	if d.Kind != punt.KindBudget {
		t.Errorf("Kind = %v, want KindBudget", d.Kind)
	}
	if len(d.Attempts) != 1 || d.Attempts[0].Outcome != punt.KindBudget.String() {
		t.Errorf("Attempts = %v, want one budget-exhausted attempt", d.Attempts)
	}
	var be *punt.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a wrapped *BudgetError", err)
	}
	if be.Deadline != 50*time.Millisecond || be.Elapsed <= 0 {
		t.Errorf("BudgetError = %+v, want Deadline=50ms and positive Elapsed", be)
	}
	// The watchdog must also have aborted the attempt promptly, not after the
	// full enumeration ran to completion.
	if elapsed > 5*time.Second {
		t.Errorf("budget trip took %v to surface; the watchdog did not abort the attempt", elapsed)
	}
}

func TestDeadlineBudgetCarriesPartialStats(t *testing.T) {
	// The explicit engine reports progress per BFS level; a deadline long
	// enough for a few levels must surface the partial state count.
	s := punt.New(punt.WithEngine(punt.Explicit), punt.WithDeadline(150*time.Millisecond))
	_, err := s.Synthesize(context.Background(), pipelineSpec())
	var be *punt.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a wrapped *BudgetError", err)
	}
	if be.States <= 0 {
		t.Errorf("BudgetError.States = %d, want >0 (partial state space observed before the trip)", be.States)
	}
	if !strings.Contains(be.Error(), "states built") {
		t.Errorf("BudgetError.Error() = %q, want the partial progress rendered", be.Error())
	}
}

// allocBackend allocates heap steadily until cancelled, so a memory budget
// has something to trip on without depending on engine internals.
type allocBackend struct {
	mu    sync.Mutex
	chunk [][]byte
}

func (*allocBackend) Name() string { return "test-alloc" }

func (b *allocBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	b.mu.Lock()
	b.chunk = nil
	b.mu.Unlock()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for i := 0; i < 2000; i++ { // hard cap ~4s / ~2GB in case cancellation is broken
		select {
		case <-ctx.Done():
			b.mu.Lock()
			b.chunk = nil // release promptly
			b.mu.Unlock()
			return nil, ctx.Err()
		case <-tick.C:
			buf := make([]byte, 1<<20)
			buf[0] = byte(i)
			b.mu.Lock()
			b.chunk = append(b.chunk, buf)
			b.mu.Unlock()
		}
	}
	return nil, errors.New("test-alloc was never cancelled")
}

var theAllocator = &allocBackend{}

func init() {
	punt.Register(theAllocator)
}

func TestMemoryBudgetTrips(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	s := punt.New(punt.WithBackend("test-alloc"), punt.WithMemoryBudget(8<<20))
	_, err := s.Synthesize(context.Background(), punt.Fig1())
	if !errors.Is(err, punt.ErrBudget) {
		t.Fatalf("err = %v, want errors.Is(err, ErrBudget)", err)
	}
	var be *punt.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a wrapped *BudgetError", err)
	}
	if be.MemoryBudget != 8<<20 || be.HeapGrowth <= be.MemoryBudget {
		t.Errorf("BudgetError = %+v, want MemoryBudget=8MiB and HeapGrowth beyond it", be)
	}
}

func TestFallbackLadderSucceeds(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	// Primary: explicit enumeration under a state bound the pipeline blows
	// through (ErrLimit).  Fallback: the unfolding engine — the paper's
	// segment stays linear where the state space is exponential.
	s := punt.New(
		punt.WithEngine(punt.Explicit),
		punt.WithMaxStates(500),
		punt.WithFallback(punt.Fallback("segment", punt.WithEngine(punt.Unfolding))),
	)
	res, err := s.Synthesize(context.Background(), pipelineSpec())
	if err != nil {
		t.Fatalf("Synthesize with fallback: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("Degraded() = false, want the fallback step's result tagged")
	}
	if res.Degradation.Kind != punt.KindDegraded || res.Degradation.Signal != "segment" {
		t.Errorf("Degradation = kind %v signal %q, want KindDegraded/segment", res.Degradation.Kind, res.Degradation.Signal)
	}
	at := res.Stats.Attempts
	if len(at) < 2 {
		t.Fatalf("Stats.Attempts = %v, want >= 2 entries", at)
	}
	if at[0].Outcome != punt.KindLimit.String() || at[0].Step != "" {
		t.Errorf("attempt 0 = %+v, want the primary configuration failing with a resource limit", at[0])
	}
	last := at[len(at)-1]
	if last.Outcome != "ok" || last.Step != "segment" || last.Backend != "unfolding" {
		t.Errorf("final attempt = %+v, want segment[unfolding]=ok", last)
	}
	if res.Impl == nil || res.Literals() == 0 {
		t.Error("degraded result carries no implementation")
	}
	if !strings.Contains(res.Stats.String(), "attempts=[") {
		t.Errorf("Stats.String() = %q, want the attempt breakdown rendered", res.Stats.String())
	}
}

func TestFallbackEachAttemptGetsFreshDeadline(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	// Primary: a backend that blocks until cancelled — only its own 100ms
	// deadline ends it.  Fallback: the real flow.  The fallback attempt must
	// run under a fresh deadline, not the primary's exhausted one.
	s := punt.New(
		punt.WithBackend("test-sleeper"),
		punt.WithDeadline(100*time.Millisecond),
		punt.WithFallback(punt.Fallback("real", punt.WithBackend("unfolding"))),
	)
	res, err := s.Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	at := res.Stats.Attempts
	if len(at) != 2 {
		t.Fatalf("Attempts = %v, want sleeper-budget then unfolding-ok", at)
	}
	if at[0].Outcome != punt.KindBudget.String() {
		t.Errorf("attempt 0 outcome = %q, want %q", at[0].Outcome, punt.KindBudget.String())
	}
	if at[1].Outcome != "ok" {
		t.Errorf("attempt 1 outcome = %q, want ok", at[1].Outcome)
	}
}

func TestFallbackNotTriggeredOnCSC(t *testing.T) {
	// A CSC conflict is a property of the specification: no cheaper
	// configuration fixes it, so the ladder must not run.
	spec, err := punt.LoadFile("testdata/csc.g")
	if err != nil {
		t.Fatal(err)
	}
	s := punt.New(punt.WithFallback(punt.Fallback("noop", punt.WithEngine(punt.Unfolding))))
	_, err = s.Synthesize(context.Background(), spec)
	if !errors.Is(err, punt.ErrCSC) {
		t.Fatalf("err = %v, want ErrCSC", err)
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("err = %T, want *Diagnostic", err)
	}
	if len(d.Attempts) != 1 {
		t.Errorf("Attempts = %v, want exactly the primary attempt (no ladder on CSC)", d.Attempts)
	}
}

func TestCallerCancellationNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := punt.New(punt.WithFallback(punt.Fallback("noop", punt.WithEngine(punt.Unfolding))))
	_, err := s.Synthesize(ctx, pipelineSpec())
	if err == nil {
		t.Fatal("Synthesize under a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("err = %T, want *Diagnostic", err)
	}
	if len(d.Attempts) > 1 {
		t.Errorf("Attempts = %v, want no ladder walk after the caller's own cancellation", d.Attempts)
	}
}

// Satellite regression: a backend panic during plain Synthesizer.Synthesize —
// not just under Batch or the portfolio — must surface as a structured
// KindPanic diagnostic instead of crashing the process.
func TestPlainSynthesizePanicIsDiagnostic(t *testing.T) {
	res, err := punt.New(punt.WithBackend("test-panic")).Synthesize(context.Background(), punt.Fig1())
	if err == nil {
		t.Fatalf("panicking backend returned a result: %v", res)
	}
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("err = %T, want *Diagnostic", err)
	}
	if d.Kind != punt.KindPanic {
		t.Errorf("Kind = %v, want KindPanic", d.Kind)
	}
	var pe *punt.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *PanicError", err)
	}
	if pe.Backend != "test-panic" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = backend %q stack %d bytes, want test-panic with a captured stack", pe.Backend, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("err = %q, want the panic rendered", err)
	}
}

func TestPanicDuringFallbackLadder(t *testing.T) {
	// A panicking rung is not retryable — the failure is structural, and the
	// diagnostic carries the ladder so far.
	s := punt.New(
		punt.WithBackend("test-panic"),
		punt.WithFallback(punt.Fallback("still-panics", punt.WithBackend("test-panic"))),
	)
	_, err := s.Synthesize(context.Background(), punt.Fig1())
	var d *punt.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("err = %T, want *Diagnostic", err)
	}
	if d.Kind != punt.KindPanic {
		t.Errorf("Kind = %v, want KindPanic", d.Kind)
	}
	if len(d.Attempts) != 1 {
		t.Errorf("Attempts = %v, want the panic to stop the ladder immediately", d.Attempts)
	}
}

// lateBackend ignores cancellation and hands back a "result" only after its
// context has already expired — the result of truncated work that must never
// be cached or returned.
type lateBackend struct{}

func (lateBackend) Name() string { return "test-late" }

func (lateBackend) Synthesize(ctx context.Context, spec *punt.Spec, cfg punt.BackendConfig) (*punt.Result, error) {
	<-ctx.Done()
	// Fabricate a plausible result anyway, as a buggy backend racing its own
	// cancellation check would.
	res, err := punt.New().Synthesize(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	punt.Register(lateBackend{})
}

// Satellite regression: results produced under an expired or faulted context
// must never be returned, and must never poison the cache.
func TestExpiredContextResultNotCachedOrReturned(t *testing.T) {
	cache := punt.NewLRU(0)
	s := punt.New(punt.WithBackend("test-late"), punt.WithCache(cache), punt.WithDeadline(30*time.Millisecond))
	res, err := s.Synthesize(context.Background(), punt.Fig1())
	if err == nil {
		t.Fatalf("late result under an expired budget was returned: %v", res)
	}
	if !errors.Is(err, punt.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget (the trip's cause)", err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("cache holds %d entries after a budget-failed run; a truncated result was cached", st.Entries)
	}

	// Same poisoning guard for the caller's own cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	s2 := punt.New(punt.WithBackend("test-late"), punt.WithCache(cache))
	if res, err := s2.Synthesize(ctx, punt.Fig1()); err == nil {
		t.Fatalf("late result under a cancelled context was returned: %v", res)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("cache holds %d entries after a cancelled run; a truncated result was cached", st.Entries)
	}
}

func TestDegradedResultNotCached(t *testing.T) {
	cache := punt.NewLRU(0)
	s := punt.New(
		punt.WithEngine(punt.Explicit),
		punt.WithMaxStates(500),
		punt.WithCache(cache),
		punt.WithFallback(punt.Fallback("segment", punt.WithEngine(punt.Unfolding))),
	)
	res, err := s.Synthesize(context.Background(), pipelineSpec())
	if err != nil || !res.Degraded() {
		t.Fatalf("want a degraded success, got res=%v err=%v", res, err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("cache holds %d entries; degraded results must not be cached", st.Entries)
	}
}

// corruptingCache wraps a real cache but hands back a truncated entry on
// every hit, as a faulty Cache implementation would.
type corruptingCache struct{ inner *punt.LRU }

func (c *corruptingCache) Get(key string) (*punt.Result, bool) {
	if _, ok := c.inner.Get(key); ok {
		return &punt.Result{}, true // a hit with no implementation
	}
	return nil, false
}

func (c *corruptingCache) Put(key string, res *punt.Result) { c.inner.Put(key, res) }

func TestCorruptCacheHitTreatedAsMiss(t *testing.T) {
	cache := &corruptingCache{inner: punt.NewLRU(0)}
	s := punt.New(punt.WithCache(cache))
	// First run populates the cache; second gets the corrupted hit.
	if _, err := s.Synthesize(context.Background(), punt.Fig1()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Synthesize(context.Background(), punt.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	if res.Impl == nil {
		t.Fatal("the corrupted cache entry was served to the caller")
	}
	if res.Stats.Cached {
		t.Error("Stats.Cached = true on a result re-synthesised past a corrupted entry")
	}
}

// Satellite: one slow Batch item exhausts its per-item deadline while the
// rest of the batch completes, and the summary says so.
func TestBatchPerItemDeadline(t *testing.T) {
	defer faultinject.LeakCheck(t)()
	s := punt.New(punt.WithEngine(punt.Explicit), punt.WithDeadline(250*time.Millisecond))
	items := []punt.BatchItem{
		{Name: "fast-1", Spec: punt.Fig1()},
		{Name: "slow", Spec: pipelineSpec()},
		{Name: "fast-2", Spec: punt.Handshake()},
	}
	results, sum := s.Batch(context.Background(), items)
	if sum.Succeeded != 2 || sum.Failed != 1 {
		t.Fatalf("summary = %v, want 2 ok / 1 failed", sum)
	}
	if sum.BudgetExceeded != 1 {
		t.Errorf("BudgetExceeded = %d, want 1", sum.BudgetExceeded)
	}
	for _, r := range results {
		if r.Name == "slow" {
			if !errors.Is(r.Err, punt.ErrBudget) {
				t.Errorf("slow item err = %v, want ErrBudget", r.Err)
			}
		} else if r.Err != nil {
			t.Errorf("item %s failed: %v", r.Name, r.Err)
		}
	}
	if !strings.Contains(sum.String(), "over budget") {
		t.Errorf("summary %q does not mention the over-budget item", sum.String())
	}
}

func TestBatchCountsDegradedItems(t *testing.T) {
	s := punt.New(
		punt.WithEngine(punt.Explicit),
		punt.WithMaxStates(500),
		punt.WithFallback(punt.Fallback("segment", punt.WithEngine(punt.Unfolding))),
	)
	items := []punt.BatchItem{
		{Name: "fits", Spec: punt.Fig1()},
		{Name: "degrades", Spec: pipelineSpec()},
	}
	results, sum := s.Batch(context.Background(), items)
	if sum.Failed != 0 {
		t.Fatalf("summary = %v, want no failures", sum)
	}
	if sum.Degraded != 1 {
		t.Errorf("Degraded = %d, want 1", sum.Degraded)
	}
	for _, r := range results {
		if r.Name == "degrades" && !r.Result.Degraded() {
			t.Error("the over-limit item was not served by the fallback ladder")
		}
	}
}
