package punt

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"punt/internal/baseline"
	"punt/internal/core"
	"punt/internal/resolve"
	"punt/internal/stategraph"
	"punt/internal/unfolding"
	"punt/internal/verify"
)

// Sentinel errors of the public API.  The first three are re-exported from
// the engine packages, so errors.Is works on errors that cross the facade in
// either direction; the remaining two unify failure classes that the engines
// report with distinct types.
var (
	// ErrNotSafe: the underlying Petri net is not 1-safe.
	ErrNotSafe = unfolding.ErrNotSafe
	// ErrEventLimit: the unfolding segment exceeded its event budget.
	ErrEventLimit = unfolding.ErrEventLimit
	// ErrNotSemiModular: the specification violates semi-modularity (output
	// persistency) and has no hazard-free speed-independent implementation.
	ErrNotSemiModular = core.ErrNotSemiModular
	// ErrCSC: the specification violates Complete State Coding; matched by
	// CSC conflicts from the unfolding flow and from both baselines.
	ErrCSC = errors.New("punt: specification has a Complete State Coding conflict")
	// ErrLimit: a state, node or event resource budget was exceeded; matched
	// by every flavour of resource exhaustion, ErrEventLimit included.
	ErrLimit = errors.New("punt: resource limit exceeded")
	// ErrBudget: a WithDeadline wall-clock or WithMemoryBudget heap budget
	// was exhausted by the attempt's watchdog.  Distinct from ErrLimit (a
	// structural engine bound) and from KindCanceled (the caller's own
	// context): both ErrLimit and ErrBudget are retryable through the
	// WithFallback degradation ladder.
	ErrBudget = errors.New("punt: resource budget exhausted")
	// ErrVerification: the implementation failed the closed-loop verification
	// (Verify); matched by conformance, hazard and liveness violations alike.
	ErrVerification = errors.New("punt: implementation fails verification")
	// ErrFormat: a serialized Result document (wire or disk) is malformed —
	// wrong format version, missing implementation, or a spec-hash mismatch.
	// The cache layers treat it as a miss; remote clients see a decode
	// failure they can match with errors.Is.
	ErrFormat = errors.New("punt: malformed result document")
	// ErrUnknownEngine: an engine name did not parse (ParseEngine); the CLIs
	// render it as a usage error.
	ErrUnknownEngine = errors.New("punt: unknown engine")
)

// DiagKind classifies a Diagnostic.
type DiagKind int

// Diagnostic kinds.
const (
	KindUnknown DiagKind = iota
	// KindParse: the ".g" input could not be parsed or finalised.
	KindParse
	// KindNotSafe: the net is not 1-safe.
	KindNotSafe
	// KindInconsistent: the specification violates consistent state
	// assignment (a signal rises when already 1, or a marking is reachable
	// with two codes).
	KindInconsistent
	// KindNotSemiModular: an excited output signal can be disabled.
	KindNotSemiModular
	// KindCSC: two reachable states share a binary code but disagree on the
	// excited outputs.
	KindCSC
	// KindLimit: an event/state/node resource budget was exceeded.
	KindLimit
	// KindCanceled: the context was cancelled or its deadline expired.
	KindCanceled
	// KindConformance: the implementation can drive an output edge the
	// specification does not enable (Verify).
	KindConformance
	// KindHazard: an excited gate of the implementation can be disabled
	// before it fires, so its output can glitch (Verify).
	KindHazard
	// KindLiveness: a specification-enabled output transition can never be
	// produced by the implementation (Verify).
	KindLiveness
	// KindResolved: informational, never returned as an error — the
	// WithResolveCSC resolver repaired a CSC-conflicted specification by
	// inserting internal state signals; see Result.Resolution.
	KindResolved
	// KindBudget: the attempt exhausted its WithDeadline wall-clock or
	// WithMemoryBudget heap budget; the Diagnostic wraps a *BudgetError
	// carrying the attempt's partial stats (elapsed time, heap growth, last
	// observed segment/state-space size).
	KindBudget
	// KindDegraded: informational, never returned as an error — the result
	// was produced by a WithFallback step after the primary configuration
	// ran out of resources; see Result.Degradation and Stats.Attempts.
	KindDegraded
	// KindPanic: a backend panicked and the dispatch layer recovered it into
	// a diagnostic (wrapping a *PanicError with the captured stack) instead
	// of crashing the process.
	KindPanic
	// KindIndivisible: informational, never returned as an error — the
	// decompose backend found no way to factor the specification and fell
	// through to its inner engine unchanged; see Result.Decomposition.  The
	// inner engine's name is in Signal.
	KindIndivisible
)

// String names the kind.
func (k DiagKind) String() string {
	switch k {
	case KindParse:
		return "parse error"
	case KindNotSafe:
		return "not safe"
	case KindInconsistent:
		return "inconsistent state assignment"
	case KindNotSemiModular:
		return "not semi-modular"
	case KindCSC:
		return "CSC conflict"
	case KindLimit:
		return "resource limit"
	case KindCanceled:
		return "canceled"
	case KindConformance:
		return "conformance violation"
	case KindHazard:
		return "hazard"
	case KindLiveness:
		return "lost liveness"
	case KindResolved:
		return "CSC resolved"
	case KindBudget:
		return "budget exhausted"
	case KindDegraded:
		return "degraded"
	case KindPanic:
		return "backend panic"
	case KindIndivisible:
		return "indivisible"
	default:
		return "error"
	}
}

// IsVerification reports whether the kind is one of the closed-loop
// verification failures (conformance, hazard, liveness).
func (k DiagKind) IsVerification() bool {
	return k == KindConformance || k == KindHazard || k == KindLiveness
}

// Diagnostic is the structured error type of the public API: every failing
// facade operation returns one (possibly wrapping a lower-level engine
// error), so callers branch on Kind or on the offending Signal/Place/Trace
// instead of parsing error strings.
//
// errors.Is continues to work through a Diagnostic: the wrapped engine error
// is reachable via Unwrap, and the unified sentinels ErrCSC and ErrLimit are
// matched by Kind.
type Diagnostic struct {
	// Op is the facade operation that failed: "parse", "load", "synthesize",
	// "unfold", "stategraph", "verify" or "differential".
	Op string
	// Spec names the specification, when known.
	Spec string
	// Kind classifies the failure.
	Kind DiagKind
	// Signal is the offending signal name, when the failure pins one down
	// (CSC conflicts, inconsistency on a signal edge).
	Signal string
	// Place is the offending place name, when one is known (safeness
	// violations, shared conflict places of persistency violations).
	Place string
	// Trace lists the offending transitions/events leading to the failure,
	// when known: the overloading transition of a safeness violation, the
	// inconsistent transition, or the disabled/disabling event pairs of a
	// semi-modularity violation.
	Trace []string
	// Attempts records the per-attempt breakdown of a Synthesize call that
	// walked the WithFallback degradation ladder before failing: one entry
	// per configuration tried, each with its outcome and duration.
	Attempts []Attempt
	// Err is the underlying engine error.
	Err error
}

// Error renders the diagnostic.
func (d *Diagnostic) Error() string {
	var sb strings.Builder
	sb.WriteString("punt: ")
	if d.Op != "" {
		sb.WriteString(d.Op)
	}
	if d.Spec != "" {
		fmt.Fprintf(&sb, " %s", d.Spec)
	}
	sb.WriteString(": ")
	if d.Err != nil {
		sb.WriteString(d.Err.Error())
	} else {
		sb.WriteString(d.Kind.String())
	}
	return sb.String()
}

// Unwrap exposes the underlying engine error to errors.Is/errors.As.
func (d *Diagnostic) Unwrap() error { return d.Err }

// Is matches the unified sentinels that the engine errors cannot reach
// through the Unwrap chain alone.
func (d *Diagnostic) Is(target error) bool {
	switch target {
	case ErrCSC:
		return d.Kind == KindCSC
	case ErrLimit:
		return d.Kind == KindLimit
	case ErrBudget:
		return d.Kind == KindBudget
	case ErrVerification:
		return d.Kind.IsVerification()
	default:
		return false
	}
}

// diagnose wraps an engine error into a Diagnostic, extracting structure from
// the typed errors the engines report.  A nil err returns nil; an error that
// already is a Diagnostic is returned unchanged.
func diagnose(op, spec string, err error) error {
	if err == nil {
		return nil
	}
	var prior *Diagnostic
	if errors.As(err, &prior) {
		return err
	}
	d := &Diagnostic{Op: op, Spec: spec, Kind: KindUnknown, Err: err}

	var (
		unsafeErr   *unfolding.UnsafeError
		unfIncons   *unfolding.InconsistencyError
		sgIncons    *stategraph.InconsistencyError
		smErr       *core.SemiModularityError
		coreCSC     *core.CSCError
		baselineCSC *baseline.CSCError
		violation   *verify.Violation
		unresolved  *resolve.UnresolvedError
		budget      *BudgetError
		panicked    *PanicError
	)
	switch {
	case errors.As(err, &budget):
		// Checked before the context cases: a budget trip surfaces as a
		// context cancellation to the engines, but the *cause* is the budget.
		d.Kind = KindBudget
	case errors.As(err, &panicked):
		d.Kind = KindPanic
		d.Trace = []string{fmt.Sprintf("backend %q panicked: %v", panicked.Backend, panicked.Value)}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		d.Kind = KindCanceled
	case errors.As(err, &violation):
		switch violation.Kind {
		case verify.Conformance:
			d.Kind = KindConformance
		case verify.Hazard:
			d.Kind = KindHazard
		case verify.Liveness:
			d.Kind = KindLiveness
		}
		d.Signal = violation.Signal
		d.Trace = violation.TraceStrings()
	case errors.As(err, &unsafeErr):
		d.Kind = KindNotSafe
		d.Place = unsafeErr.Place
		if unsafeErr.Transition != "" {
			d.Trace = []string{unsafeErr.Transition}
		}
	case errors.As(err, &unfIncons):
		d.Kind = KindInconsistent
		d.Trace = []string{unfIncons.Transition}
	case errors.As(err, &sgIncons):
		d.Kind = KindInconsistent
		d.Trace = []string{sgIncons.Transition}
	case errors.As(err, &smErr):
		d.Kind = KindNotSemiModular
		if len(smErr.Violations) > 0 {
			d.Place = smErr.Violations[0].Place
		}
		for _, v := range smErr.Violations {
			d.Trace = append(d.Trace, v.String())
		}
	case errors.As(err, &coreCSC):
		d.Kind = KindCSC
		d.Signal = coreCSC.Signal
	case errors.As(err, &baselineCSC):
		d.Kind = KindCSC
		d.Signal = baselineCSC.Signal
		if baselineCSC.Conflict != "" {
			d.Trace = []string{baselineCSC.Conflict}
		}
	case errors.As(err, &unresolved):
		// The resolver could not repair every conflict within its signal
		// budget: the specification still violates CSC.
		d.Kind = KindCSC
	case errors.Is(err, unfolding.ErrEventLimit),
		errors.Is(err, baseline.ErrLimit),
		errors.Is(err, stategraph.ErrStateLimit),
		errors.Is(err, verify.ErrStateLimit):
		d.Kind = KindLimit
	case errors.Is(err, unfolding.ErrNotSafe):
		d.Kind = KindNotSafe
	case errors.Is(err, core.ErrNotSemiModular):
		d.Kind = KindNotSemiModular
	case errors.Is(err, baseline.ErrCSC):
		d.Kind = KindCSC
	}
	return d
}
