// Command benchtab regenerates the paper's evaluation: Table 1 (the benchmark
// suite synthesised by the unfolding-based flow and both state-graph
// baselines) and the data series behind Figure 6 (synthesis time versus
// signal count on the Muller pipeline, plus the counterflow-pipeline point).
//
// Usage:
//
//	benchtab -table1
//	benchtab -figure6 [-signals 5,8,12,22,32,50]
//	benchtab -table1 -figure6 -quick
//	benchtab -table1 -figure6 -json results.json
//
// With -json the measurements are additionally written as an indented JSON
// report ("-" = stdout), giving successive runs a machine-readable perf
// trajectory to diff against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"punt/internal/benchgen"
	"punt/internal/experiments"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1")
	figure6 := flag.Bool("figure6", false, "reproduce the Figure 6 scaling series")
	quick := flag.Bool("quick", false, "use small resource budgets so the whole run finishes quickly")
	skipBaselines := flag.Bool("punt-only", false, "run only the unfolding-based flow (no baselines)")
	signalsFlag := flag.String("signals", "", "comma-separated pipeline sizes (signal counts) for -figure6")
	jsonOut := flag.String("json", "", `also write the measurements as JSON to this file ("-" = stdout)`)
	flag.Parse()
	if !*table1 && !*figure6 {
		fmt.Fprintln(os.Stderr, "usage: benchtab [-table1] [-figure6] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var rows []experiments.Table1Row
	var points []experiments.Figure6Point
	if *table1 {
		opts := experiments.Table1Options{SkipBaselines: *skipBaselines}
		if *quick {
			opts.MaxStates = 100000
			opts.MaxNodes = 500000
		}
		rows = experiments.RunTable1(benchgen.Table1Suite(), opts)
		fmt.Println("Table 1: synthesis of the benchmark suite (PUNT ACG vs. state-graph baselines)")
		fmt.Print(experiments.FormatTable1(rows))
		fmt.Println()
	}
	if *figure6 {
		opts := experiments.Figure6Options{
			SkipBaselines:      *skipBaselines,
			IncludeCounterflow: true,
		}
		if *signalsFlag != "" {
			for _, part := range strings.Split(*signalsFlag, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchtab: bad -signals value %q\n", part)
					os.Exit(2)
				}
				opts.Signals = append(opts.Signals, v)
			}
		}
		if *quick {
			opts.ExplicitLimit = 50000
			opts.SymbolicLimit = 500000
			if len(opts.Signals) == 0 {
				opts.Signals = []int{5, 8, 12, 17, 22}
			}
		}
		points = experiments.RunFigure6(opts)
		fmt.Println("Figure 6: synthesis time vs. number of signals (Muller pipeline; last row = counterflow pipeline)")
		fmt.Print(experiments.FormatFigure6(points))
	}
	if *jsonOut != "" {
		report := experiments.NewReport(rows, points, time.Now())
		if err := writeReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReport writes the JSON report to the given path ("-" = stdout).  The
// file's Close error is reported: on a full disk the write failure may only
// surface at Close, and a silently truncated report would corrupt the perf
// trajectory.
func writeReport(path string, r experiments.Report) error {
	if path == "-" {
		return experiments.WriteJSON(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteJSON(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
