// Command benchtab regenerates the paper's evaluation: Table 1 (the benchmark
// suite synthesised by the unfolding-based flow and both state-graph
// baselines) and the data series behind Figure 6 (synthesis time versus
// signal count on the Muller pipeline, plus the counterflow-pipeline point).
//
// Usage:
//
//	benchtab -table1
//	benchtab -figure6 [-signals 5,8,12,22,32,50]
//	benchtab -facade
//	benchtab -cache
//	benchtab -disk [-store DIR]
//	benchtab -decompose
//	benchtab -table1 -figure6 -quick
//	benchtab -table1 -figure6 -json results.json
//
// With -json the measurements are additionally written as an indented JSON
// report ("-" = stdout), giving successive runs a machine-readable perf
// trajectory to diff against; the report then always includes the end-to-end
// facade benchmark (parse → synthesize through the public punt API) and the
// cache-effectiveness benchmark (cold synthesis vs warm content-addressed
// hit), so the trajectory tracks public-API overhead and cache behaviour
// next to the raw cores.
//
// With -disk the persistent result store behind puntd is measured: cold
// synthesis through a tiered in-memory-LRU-over-disk cache against warm hits
// served through fresh tiers on the same directory, i.e. the cost of a warm
// request after a daemon restart.  -store names the store directory (default:
// a temporary directory removed afterwards); point it at an existing puntd
// store to price hits against real contents.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"punt/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1")
	figure6 := flag.Bool("figure6", false, "reproduce the Figure 6 scaling series")
	facade := flag.Bool("facade", false, "measure the end-to-end public-API pipeline (implied by -json)")
	cacheBench := flag.Bool("cache", false, "measure cold-vs-warm result-cache effectiveness (implied by -json)")
	diskBench := flag.Bool("disk", false, "measure cold-vs-warm hits on the persistent disk store (implied by -json)")
	storeDir := flag.String("store", "", "disk store directory for -disk (default: a temporary directory)")
	parallelBench := flag.Bool("parallel", false, "measure sequential vs sharded-worker unfolding (implied by -json)")
	retryBench := flag.Bool("resolve-retry", false, "measure full-rebuild vs incremental CSC-resolution retries (implied by -json)")
	decomposeBench := flag.Bool("decompose", false, "measure monolithic vs compositional (split-synthesize-recombine) synthesis (implied by -json)")
	workersFlag := flag.Int("workers", 0, "worker-pool width for -parallel (0 = GOMAXPROCS)")
	retryConflicts := flag.Int("retry-conflicts", 25, "how many CSC-conflicted random specs the -resolve-retry sweep resolves")
	quick := flag.Bool("quick", false, "use small resource budgets so the whole run finishes quickly")
	skipBaselines := flag.Bool("punt-only", false, "run only the unfolding-based flow (no baselines)")
	signalsFlag := flag.String("signals", "", "comma-separated pipeline sizes (signal counts) for -figure6")
	facadeRuns := flag.Int("facade-runs", 5, "how many runs the facade and cache benchmarks average over")
	jsonOut := flag.String("json", "", `also write the measurements as JSON to this file ("-" = stdout)`)
	flag.Parse()
	if !*table1 && !*figure6 && !*facade && !*cacheBench && !*diskBench && !*parallelBench && !*retryBench && !*decomposeBench && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "usage: benchtab [-table1] [-figure6] [-facade] [-cache] [-disk] [-parallel] [-resolve-retry] [-decompose] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx := context.Background()
	var rows []bench.Table1Row
	var points []bench.Figure6Point
	var facadePoints []bench.FacadePoint
	var cachePoints, diskPoints []bench.CachePoint
	var parallelPoints []bench.ParallelPoint
	var retryPoints []bench.ResolveRetryPoint
	var decomposePoints []bench.DecomposePoint
	if *table1 {
		opts := bench.Table1Options{SkipBaselines: *skipBaselines}
		if *quick {
			opts.MaxStates = 100000
			opts.MaxNodes = 500000
		}
		rows = bench.RunTable1(ctx, opts)
		fmt.Println("Table 1: synthesis of the benchmark suite (PUNT ACG vs. state-graph baselines)")
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
	}
	if *figure6 {
		opts := bench.Figure6Options{
			SkipBaselines:      *skipBaselines,
			IncludeCounterflow: true,
		}
		if *signalsFlag != "" {
			for _, part := range strings.Split(*signalsFlag, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchtab: bad -signals value %q\n", part)
					os.Exit(2)
				}
				opts.Signals = append(opts.Signals, v)
			}
		}
		if *quick {
			opts.ExplicitLimit = 50000
			opts.SymbolicLimit = 500000
			if len(opts.Signals) == 0 {
				opts.Signals = []int{5, 8, 12, 17, 22}
			}
		}
		points = bench.RunFigure6(ctx, opts)
		fmt.Println("Figure 6: synthesis time vs. number of signals (Muller pipeline; last row = counterflow pipeline)")
		fmt.Print(bench.FormatFigure6(points))
		fmt.Println()
	}
	if *facade || *jsonOut != "" {
		runs := *facadeRuns
		if *quick && runs > 2 {
			runs = 2
		}
		var err error
		facadePoints, err = bench.RunFacade(ctx, runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Facade: end-to-end public-API pipeline (parse + synthesize via punt.Synthesizer)")
		fmt.Print(bench.FormatFacade(facadePoints))
	}
	if *cacheBench || *jsonOut != "" {
		runs := *facadeRuns
		if *quick && runs > 2 {
			runs = 2
		}
		var err error
		cachePoints, err = bench.RunCache(ctx, runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Cache: cold synthesis vs warm content-addressed hit (punt.WithCache)")
		fmt.Print(bench.FormatCache(cachePoints))
	}
	if *diskBench || *jsonOut != "" {
		runs := *facadeRuns
		if *quick && runs > 2 {
			runs = 2
		}
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "punt-bench-store-")
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var err error
		diskPoints, err = bench.RunDiskCache(ctx, dir, runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Disk store: cold synthesis vs warm hit through fresh tiers (restart cost; punt.NewTiered + punt.NewDiskCache)")
		fmt.Print(bench.FormatCache(diskPoints))
	}
	if *parallelBench || *jsonOut != "" {
		runs := *facadeRuns
		if *quick && runs > 2 {
			runs = 2
		}
		var err error
		parallelPoints, err = bench.RunParallel(ctx, *workersFlag, runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Parallel: sequential vs sharded possible-extension unfolding (punt.WithWorkers)")
		fmt.Print(bench.FormatParallel(parallelPoints))
	}
	if *retryBench || *jsonOut != "" {
		conflicts := *retryConflicts
		if *quick && conflicts > 10 {
			conflicts = 10
		}
		var err error
		retryPoints, err = bench.RunResolveRetry(ctx, conflicts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Resolve retries: full state-graph rebuilds vs incremental extension per CSC candidate")
		fmt.Print(bench.FormatResolveRetry(retryPoints))
	}
	if *decomposeBench || *jsonOut != "" {
		runs := *facadeRuns
		if *quick && runs > 2 {
			runs = 2
		}
		var err error
		decomposePoints, err = bench.RunDecompose(ctx, runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Decompose: monolithic vs compositional synthesis (split, synthesize components in parallel, recombine)")
		fmt.Print(bench.FormatDecompose(decomposePoints))
	}
	if *jsonOut != "" {
		report := bench.NewReport(rows, points, facadePoints, cachePoints, diskPoints, parallelPoints, retryPoints, decomposePoints, time.Now())
		if err := writeReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeReport writes the JSON report to the given path ("-" = stdout).  The
// file's Close error is reported: on a full disk the write failure may only
// surface at Close, and a silently truncated report would corrupt the perf
// trajectory.
func writeReport(path string, r bench.Report) error {
	if path == "-" {
		return bench.WriteJSON(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
