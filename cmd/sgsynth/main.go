// Command sgsynth synthesises a speed-independent circuit from an STG using
// the state-graph-based baseline flows: explicit enumeration (SIS-like) or
// symbolic BDD-based reachability (Petrify-like).  It exists to compare
// against the unfolding-based punt command; both drive the same public API.
//
// Usage:
//
//	sgsynth [-symbolic] [-arch ...] [-verilog] [-stats] [-deadline D] file.g
//
// With -deadline the synthesis attempt runs under a wall-clock watchdog;
// exhausting it exits with status 4 and prints the budget diagnostic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"punt"
	"punt/gates"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgsynth", flag.ContinueOnError)
	fs.SetOutput(stderr)
	symbolic := fs.Bool("symbolic", false, "use the BDD-based symbolic flow instead of explicit enumeration")
	archName := fs.String("arch", "complex-gate", "implementation architecture: complex-gate, standard-c or rs-latch")
	verilog := fs.Bool("verilog", false, "emit a behavioural Verilog module instead of boolean equations")
	stats := fs.Bool("stats", false, "print the synthesis time breakdown")
	maxStates := fs.Int("max-states", 0, "abort explicit enumeration beyond this many states (0 = unlimited)")
	maxNodes := fs.Int("max-nodes", 0, "abort symbolic reachability beyond this many BDD nodes (0 = unlimited)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the attempt (0 = none); exhaustion exits with status 4")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sgsynth [flags] file.g")
		fs.PrintDefaults()
		return 2
	}

	arch, err := gates.ParseArchitecture(*archName)
	if err != nil {
		return fail(stderr, err)
	}
	spec, err := punt.LoadFileFrom(fs.Arg(0), stdin)
	if err != nil {
		return fail(stderr, err)
	}
	engine := punt.Explicit
	if *symbolic {
		engine = punt.Symbolic
	}
	res, err := punt.New(
		punt.WithBaseline(engine),
		punt.WithArch(arch),
		punt.WithMaxStates(*maxStates),
		punt.WithMaxNodes(*maxNodes),
		punt.WithDeadline(*deadline),
	).Synthesize(context.Background(), spec)
	if err != nil {
		if errors.Is(err, punt.ErrBudget) {
			fmt.Fprintln(stderr, "sgsynth:", err)
			return 4
		}
		return fail(stderr, err)
	}
	if *stats {
		fmt.Fprintf(stderr, "%s\n", &res.Stats)
	}
	out := res.Eqn()
	if *verilog {
		out = res.Verilog()
	}
	// The netlist on stdout is the product of the run: a failing write must
	// fail the command, not truncate the circuit silently under exit 0.
	if _, err := io.WriteString(stdout, out); err != nil {
		fmt.Fprintln(stderr, "sgsynth: writing output:", err)
		return 1
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "sgsynth:", err)
	return 1
}
