// Command sgsynth synthesises a speed-independent circuit from an STG using
// the state-graph-based baseline flows: explicit enumeration (SIS-like) or
// symbolic BDD-based reachability (Petrify-like).  It exists to compare
// against the unfolding-based punt command.
//
// Usage:
//
//	sgsynth [-symbolic] [-arch ...] [-verilog] [-stats] file.g
package main

import (
	"flag"
	"fmt"
	"os"

	"punt/internal/baseline"
	"punt/internal/gatelib"
	"punt/internal/stg"
)

func main() {
	symbolic := flag.Bool("symbolic", false, "use the BDD-based symbolic flow instead of explicit enumeration")
	archName := flag.String("arch", "complex-gate", "implementation architecture: complex-gate, standard-c or rs-latch")
	verilog := flag.Bool("verilog", false, "emit a behavioural Verilog module instead of boolean equations")
	stats := flag.Bool("stats", false, "print the synthesis time breakdown")
	maxStates := flag.Int("max-states", 0, "abort explicit enumeration beyond this many states (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", 0, "abort symbolic reachability beyond this many BDD nodes (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sgsynth [flags] file.g")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := readSTG(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var arch gatelib.Architecture
	switch *archName {
	case "complex-gate":
		arch = gatelib.ComplexGate
	case "standard-c":
		arch = gatelib.StandardC
	case "rs-latch":
		arch = gatelib.RSLatch
	default:
		fail(fmt.Errorf("unknown architecture %q", *archName))
	}
	var (
		im  *gatelib.Implementation
		st  *baseline.Stats
		rer error
	)
	if *symbolic {
		s := &baseline.SymbolicSynthesizer{Arch: arch, MaxNodes: *maxNodes}
		im, st, rer = s.Synthesize(g)
	} else {
		s := &baseline.ExplicitSynthesizer{Arch: arch, MaxStates: *maxStates}
		im, st, rer = s.Synthesize(g)
	}
	if rer != nil {
		fail(rer)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%s\n", st)
	}
	if *verilog {
		fmt.Print(im.Verilog())
	} else {
		fmt.Print(im.Eqn())
	}
}

func readSTG(path string) (*stg.STG, error) {
	if path == "-" {
		return stg.Parse(os.Stdin)
	}
	return stg.ParseFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sgsynth:", err)
	os.Exit(1)
}
