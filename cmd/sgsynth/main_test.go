package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// In-process golden tests for the baseline CLI: both state-graph flows must
// reproduce the Figure 1 cover through the facade, and CSC violations must
// exit non-zero with a diagnostic.

const fig1Eqn = "# implementation of paper-fig1 (2 literals)\nb = a + c\n"

func runCmd(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestExplicitGolden(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("explicit flow: stdout = %q, want %q", stdout, fig1Eqn)
	}
}

func TestSymbolicGoldenWithStats(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-symbolic", "-stats", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("symbolic flow: stdout = %q, want %q", stdout, fig1Eqn)
	}
	// Figure 1 has 8 reachable states; the stats line must carry the engine
	// name and the state count.
	for _, want := range []string{"engine=symbolic", "states=8"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stats output missing %q: %s", want, stderr)
		}
	}
}

func TestVerilogFlag(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-verilog", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "module paper_fig1") || !strings.Contains(stdout, "endmodule") {
		t.Errorf("verilog output: %s", stdout)
	}
}

func TestCSCConflictErrorExit(t *testing.T) {
	for _, flow := range [][]string{
		{"../../testdata/csc.g"},
		{"-symbolic", "../../testdata/csc.g"},
	} {
		code, stdout, stderr := runCmd(t, flow, "")
		if code != 1 {
			t.Fatalf("%v: exit = %d, want 1; stdout: %s", flow, code, stdout)
		}
		if !strings.Contains(stderr, "CSC") {
			t.Errorf("%v: stderr should name the CSC conflict: %s", flow, stderr)
		}
	}
}

func TestStateLimitErrorExit(t *testing.T) {
	code, _, stderr := runCmd(t, []string{"-max-states", "3", "../../testdata/fig1.g"}, "")
	if code != 1 || !strings.Contains(stderr, "limit") {
		t.Errorf("state limit: exit=%d stderr=%s", code, stderr)
	}
}

func TestDeadlineExhaustionExitsFour(t *testing.T) {
	code, _, stderr := runCmd(t, []string{"-deadline", "50ms", "../../testdata/pipeline24.g"}, "")
	if code != 4 {
		t.Fatalf("exit = %d, want 4; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "budget exhausted") {
		t.Errorf("stderr should carry the budget diagnostic: %s", stderr)
	}
}

// brokenWriter fails every write, simulating a closed pipe or a full disk.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// A failing stdout must fail the run: the artifact on stdout is the
// command's product, and truncating it under exit 0 corrupts pipelines.
func TestOutputWriteFailureExitsNonZero(t *testing.T) {
	var errb bytes.Buffer
	code := run([]string{"../../testdata/fig1.g"}, strings.NewReader(""), brokenWriter{}, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a failing stdout", code)
	}
	if !strings.Contains(errb.String(), "writing output") {
		t.Errorf("stderr should report the output failure: %s", errb.String())
	}
}
