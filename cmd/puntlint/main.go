// Command puntlint runs the project's invariant analyzers (punt/internal/lint)
// over the given package patterns — the multichecker for the invariants the
// test suite can only probe dynamically: deterministic map handling in the
// byte-identical-output packages, context discipline, the *Diagnostic error
// boundary, goroutine panic hygiene, and cache-key purity.
//
// Usage:
//
//	puntlint [-fix] [-list] [packages ...]
//
// With no patterns ./... is checked.  Findings print as
// file:line:col: message [analyzer]; the exit status is 1 when there are
// findings, 2 on a usage or load failure, 0 when clean.  -fix applies the
// mechanical suggested fixes (currently the %v→%w error-wrapping rewrites)
// to the files in place.  A justified exception is recorded in the source
// with `//puntlint:ignore <analyzer> <reason>` on or above the offending
// line; an unexplained or stale directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"punt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("puntlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fix := fs.Bool("fix", false, "apply mechanical suggested fixes to the source in place")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%s:\n%s\n\n", a.Name, indent(a.Doc))
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "puntlint:", err)
		return 2
	}
	diags, err := lint.Run(prog, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, "puntlint:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	if *fix {
		applied, err := applyFixes(prog, diags)
		if err != nil {
			fmt.Fprintln(stderr, "puntlint:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "puntlint: applied %d fix(es); re-run to see what remains\n", applied)
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, lint.RenderDiagnostic(prog.Fset, d))
	}
	return 1
}

// applyFixes rewrites the source files touched by suggested fixes, applying
// edits back-to-front per file so earlier offsets stay valid.
func applyFixes(prog *lint.Program, diags []lint.Diagnostic) (int, error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)
	applied := 0
	for _, d := range diags {
		for _, f := range d.Fixes {
			applied++
			for _, e := range f.Edits {
				pos := prog.Fset.Position(e.Pos)
				end := prog.Fset.Position(e.End)
				perFile[pos.Filename] = append(perFile[pos.Filename],
					edit{start: pos.Offset, end: end.Offset, text: e.New})
			}
		}
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return applied, fmt.Errorf("fix out of range in %s", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func indent(s string) string {
	out := "    "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "    "
		}
	}
	return out
}
