package main

import (
	"bytes"
	"strings"
	"testing"

	"punt/internal/lint"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name+":") {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/package"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 for an unloadable pattern; stderr: %s", code, errb.String())
	}
}

// TestFixtureViolationsExitOne drives the full driver over a fixture package
// that is known dirty: findings must print in file:line:col form and the
// exit status must be 1.
func TestFixtureViolationsExitOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../internal/lint/testdata/src/gohygiene"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[gohygiene]") {
		t.Errorf("findings should carry the analyzer tag:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fixture.go:") {
		t.Errorf("findings should point into the fixture:\n%s", out.String())
	}
}
