// Command puntd serves punt synthesis over HTTP: a synthesis-as-a-service
// daemon with a persistent, shareable result store.
//
// Usage:
//
//	puntd [-addr HOST:PORT] [-store DIR] [-cache-size N]
//	      [-max-concurrent N] [-max-queue N] [-max-synth-time D]
//
// The daemon exposes the full punt facade over JSON:
//
//	POST /v1/synthesize  submit a .g specification plus configuration;
//	                     responds with the result document, or streams
//	                     progress as newline-delimited JSON with
//	                     "stream": true
//	GET  /v1/stats       request and per-cache-tier counters
//	GET  /healthz        liveness probe
//
// With -store the result cache is tiered: an in-memory LRU in front of a
// content-addressed on-disk store, so warm hits survive restarts, and any
// number of replicas pointing at the same directory serve each other's
// results.  Without it the cache is in-memory only.
//
// Admission control bounds cold synthesis work (-max-concurrent slots plus a
// -max-queue deep wait queue; beyond that requests are answered 429 with a
// Retry-After header), identical concurrent requests are deduplicated into a
// single synthesis, and cache hits are answered before admission, so repeat
// traffic is never queued.
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains in-flight
// syntheses and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"punt"
	"punt/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable entry point; it blocks until the daemon shuts down
// and returns the process exit code.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("puntd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8747", "listen address")
	store := fs.String("store", "", "persistent result store directory (empty = in-memory cache only)")
	cacheSize := fs.Int("cache-size", 0, "in-memory cache entry bound (0 = default)")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent synthesis slots (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "requests allowed to wait for a slot (0 = twice the slots, negative = none)")
	maxSynthTime := fs.Duration("max-synth-time", 0, "hard per-synthesis wall-clock ceiling (0 = 2m)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: puntd [flags]")
		fs.PrintDefaults()
		return 2
	}

	var cache punt.Cache = punt.NewLRU(*cacheSize)
	if *store != "" {
		disk, err := punt.NewDiskCache(*store)
		if err != nil {
			fmt.Fprintln(stderr, "puntd:", err)
			return 1
		}
		cache = punt.NewTiered(punt.NewLRU(*cacheSize), disk)
		fmt.Fprintf(stderr, "puntd: result store at %s\n", disk.Dir())
	}
	srv := server.New(server.Config{
		Cache:         cache,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		MaxSynthTime:  *maxSynthTime,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "puntd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "puntd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "puntd:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintln(stderr, "puntd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "puntd: shutdown:", err)
	}
	// Detached work (single-flight leaders whose clients hung up) may still
	// be writing the shared store: wait for it.
	if err := srv.Drain(sctx); err != nil {
		fmt.Fprintln(stderr, "puntd: drain:", err)
		return 1
	}
	fmt.Fprintln(stderr, "puntd: drained")
	return 0
}
