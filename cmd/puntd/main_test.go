package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"punt"
	"punt/server"
)

// syncBuffer is a concurrency-safe bytes.Buffer: run() writes log lines from
// the daemon goroutine while the test polls them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	var buf syncBuffer
	if code := run([]string{"-no-such-flag"}, &buf); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &buf); code != 2 {
		t.Errorf("positional argument: exit %d, want 2", code)
	}
}

func TestBadStoreDir(t *testing.T) {
	// A store path that is a regular file cannot become a directory.
	f, err := os.CreateTemp(t.TempDir(), "not-a-dir")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf syncBuffer
	if code := run([]string{"-store", f.Name()}, &buf); code != 1 {
		t.Errorf("exit %d, want 1; log: %s", code, buf.String())
	}
}

// TestLifecycle drives the daemon end to end in-process: start on an
// ephemeral port with a persistent store, synthesize cold then warm, check
// /v1/stats, then shut down gracefully with SIGINT and prove a restarted
// daemon on the same store serves the result warm.
func TestLifecycle(t *testing.T) {
	dir := t.TempDir()
	listenRE := regexp.MustCompile(`listening on (http://[^\s]+)`)

	start := func() (url string, done chan int, buf *syncBuffer) {
		buf = &syncBuffer{}
		done = make(chan int, 1)
		go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-store", dir}, buf) }()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
				return m[1], done, buf
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("daemon never announced its address; log: %s", buf.String())
		return "", nil, nil
	}
	stop := func(url string, done chan int, buf *syncBuffer) {
		if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("daemon exited %d; log: %s", code, buf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon did not shut down on SIGINT; log: %s", buf.String())
		}
		if !strings.Contains(buf.String(), "drained") {
			t.Errorf("no drain confirmation in log: %s", buf.String())
		}
	}
	synthesize := func(url string) *punt.Result {
		body, _ := json.Marshal(server.Request{Spec: punt.Fig1().Text()})
		resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var raw bytes.Buffer
		if _, err := raw.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw.String())
		}
		res, err := punt.DecodeResult(bytes.TrimSpace(raw.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	url, done, buf := start()
	cold := synthesize(url)
	if cold.Stats.Cached {
		t.Error("first synthesis reported cached")
	}
	warm := synthesize(url)
	if !warm.Stats.Cached {
		t.Error("repeat request not served from the cache")
	}

	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.WarmHits != 1 {
		t.Errorf("stats = %+v, want 2 requests / 1 warm hit", st)
	}
	if st.Cache == nil || st.Cache.Tier != "tiered" {
		t.Errorf("stats carry no tiered cache breakdown: %+v", st.Cache)
	}
	stop(url, done, buf)

	// Restart on the same store: the result must survive as a warm hit.
	url2, done2, buf2 := start()
	revived := synthesize(url2)
	if !revived.Stats.Cached {
		t.Error("result did not survive the daemon restart as a warm hit")
	}
	if revived.Eqn() != cold.Eqn() {
		t.Error("restarted daemon serves a different implementation")
	}
	stop(url2, done2, buf2)
}
