package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestDumpSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"../../testdata/fig1.g"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("dump produced no output")
	}
}

func TestUsageExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 with no arguments", code)
	}
}

// brokenWriter fails every write, simulating a closed pipe or a full disk.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func TestOutputWriteFailureExitsNonZero(t *testing.T) {
	var errb bytes.Buffer
	code := run([]string{"../../testdata/fig1.g"}, strings.NewReader(""), brokenWriter{}, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a failing stdout", code)
	}
	if !strings.Contains(errb.String(), "writing output") {
		t.Errorf("stderr should report the output failure: %s", errb.String())
	}
}
