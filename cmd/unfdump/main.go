// Command unfdump builds the STG-unfolding segment of a specification and
// prints it: every event with its binary code, preset, postset and cut-off
// status, mirroring the figures of the paper.
//
// Usage:
//
//	unfdump [-max-events N] file.g
package main

import (
	"flag"
	"fmt"
	"os"

	"punt/internal/stg"
	"punt/internal/unfolding"
)

func main() {
	maxEvents := flag.Int("max-events", 0, "abort if the segment exceeds this many events (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unfdump [flags] file.g")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := readSTG(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	u, err := unfolding.Build(g, unfolding.Options{MaxEvents: *maxEvents})
	if err != nil {
		fail(err)
	}
	fmt.Print(u.Dump())
}

func readSTG(path string) (*stg.STG, error) {
	if path == "-" {
		return stg.Parse(os.Stdin)
	}
	return stg.ParseFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "unfdump:", err)
	os.Exit(1)
}
