// Command unfdump builds the STG-unfolding segment of a specification and
// prints it: every event with its binary code, preset, postset and cut-off
// status, mirroring the figures of the paper.
//
// Usage:
//
//	unfdump [-max-events N] file.g
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"punt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("unfdump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxEvents := fs.Int("max-events", 0, "abort if the segment exceeds this many events (0 = default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: unfdump [flags] file.g")
		fs.PrintDefaults()
		return 2
	}
	spec, err := punt.LoadFileFrom(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "unfdump:", err)
		return 1
	}
	seg, err := punt.Unfold(context.Background(), spec, punt.WithMaxEvents(*maxEvents))
	if err != nil {
		fmt.Fprintln(stderr, "unfdump:", err)
		return 1
	}
	// The dump on stdout is the product of the run: a failing write must fail
	// the command, not truncate the segment silently under exit 0.
	if _, err := io.WriteString(stdout, seg.Dump()); err != nil {
		fmt.Fprintln(stderr, "unfdump: writing output:", err)
		return 1
	}
	return 0
}
