package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanSpecReport(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"CSC: ok", "USC: ok", "output persistency: ok", "deadlocks: none"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "conflict 1:") {
		t.Errorf("a clean spec must not print conflict detail:\n%s", stdout)
	}
}

func TestCSCConflictDetail(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/csc.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// The verdict line and, below it, the structured per-conflict detail:
	// state pair with shared code, differing outputs and witness traces.
	for _, want := range []string{
		"CSC: 1 conflicts",
		"conflict 1: code 100: state 1 {out1+} vs state 5 {out2+}, differing on out1,out2",
		"witness to state 1: req+",
		"witness to state 5: req+ out1+ req- out1- req+/2",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
}

func TestMaxConflictsTruncation(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"-max-conflicts", "0", "../../testdata/csc.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "… 1 more conflicts") {
		t.Errorf("truncation notice missing:\n%s", stdout)
	}
}

func TestDecompositionReport(t *testing.T) {
	code, stdout, stderr := runCmd(t, []string{"../../testdata/twoloops.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"decomposition: 2 independent components",
		"two-loops_c0: 2 signals (1 outputs): r1 a1",
		"two-loops_c1: 2 signals (1 outputs): r2 a2",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}

	code, stdout, stderr = runCmd(t, []string{"../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "decomposition: indivisible") {
		t.Errorf("fig1 must report as indivisible:\n%s", stdout)
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	if code, _, _ := runCmd(t, nil, ""); code != 2 {
		t.Errorf("missing file argument must exit 2, got %d", code)
	}
	if code, _, stderr := runCmd(t, []string{"no-such-file.g"}, ""); code != 1 ||
		!strings.Contains(stderr, "no-such-file.g") {
		t.Errorf("missing file: exit=%d stderr=%s", code, stderr)
	}
}

func TestRenderTrace(t *testing.T) {
	if got := renderTrace(nil); got != "(initial state)" {
		t.Errorf("empty trace renders %q", got)
	}
	if got := renderTrace([]string{"a+", "b-"}); got != "a+ b-" {
		t.Errorf("trace renders %q", got)
	}
}

// brokenWriter fails every write, simulating a closed pipe or a full disk.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// A failing stdout must fail the run: the artifact on stdout is the
// command's product, and truncating it under exit 0 corrupts pipelines.
func TestOutputWriteFailureExitsNonZero(t *testing.T) {
	var errb bytes.Buffer
	code := run([]string{"../../testdata/fig1.g"}, strings.NewReader(""), brokenWriter{}, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a failing stdout", code)
	}
	if !strings.Contains(errb.String(), "writing output") {
		t.Errorf("stderr should report the output failure: %s", errb.String())
	}
}
