// Command stginfo analyses an STG specification: it reports structural
// properties of the underlying net, how the compositional decompose engine
// would partition it into components, builds the state graph and checks the
// correctness criteria required for speed-independent synthesis (consistency,
// safeness, output persistency, USC/CSC), and summarises the size of the
// STG-unfolding segment for comparison.  Complete State Coding conflicts are
// reported in detail: the conflicting state pair with its shared code, the
// output signals whose excitation disagrees, and a shortest witness firing
// sequence to each of the two states.
//
// Usage:
//
//	stginfo [-max-states N] [-max-conflicts N] file.g
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"punt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stginfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxStates := fs.Int("max-states", 1000000, "abort state graph construction beyond this many states")
	maxConflicts := fs.Int("max-conflicts", 8, "print at most this many CSC conflicts in detail")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: stginfo [flags] file.g")
		fs.PrintDefaults()
		return 2
	}
	spec, err := punt.LoadFileFrom(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "stginfo:", err)
		return 1
	}
	ctx := context.Background()
	// The report on stdout is the product of the run: latch the first write
	// failure so a closed pipe or full disk fails the command instead of
	// truncating the analysis silently under exit 0.
	out := &errWriter{w: stdout}
	fmt.Fprint(out, spec.Describe())
	fmt.Fprintf(out, "marked graph: %v, free choice: %v\n", spec.IsMarkedGraph(), spec.IsFreeChoice())

	// The decomposition report: how the compositional engine would partition
	// this specification, or that it is indivisible and synthesis would fall
	// through to the monolithic inner engine.
	if comps := punt.Components(spec); len(comps) > 1 {
		how := "independent"
		if comps[0].Articulated {
			how = "articulated"
		}
		fmt.Fprintf(out, "decomposition: %d %s components\n", len(comps), how)
		for _, c := range comps {
			fmt.Fprintf(out, "  %s: %d signals (%d outputs): %s\n",
				c.Name, len(c.Signals), c.Outputs, strings.Join(c.Signals, " "))
		}
	} else {
		fmt.Fprintln(out, "decomposition: indivisible")
	}

	seg, err := punt.Unfold(ctx, spec)
	if err != nil {
		fmt.Fprintf(out, "unfolding: failed: %v\n", err)
	} else {
		fmt.Fprintf(out, "unfolding segment: %s\n", seg.Stats())
		if v := seg.SemiModularityViolations(); len(v) > 0 {
			fmt.Fprintf(out, "unfolding semi-modularity: %d potential violations (first: %s)\n", len(v), v[0])
		} else {
			fmt.Fprintln(out, "unfolding semi-modularity: ok")
		}
	}

	sg, err := punt.BuildStateGraph(ctx, spec, punt.WithMaxStates(*maxStates))
	if err != nil {
		fmt.Fprintf(out, "state graph: failed: %v\n", err)
		return finish(out, stderr)
	}
	fmt.Fprint(out, sg.Report())

	// Per-conflict detail from the structured API: the conflicting state
	// pair with its shared code, the output signals that disagree, and a
	// shortest witness trace to each state.
	conflicts := sg.CSCConflicts()
	for i, c := range conflicts {
		if i >= *maxConflicts {
			fmt.Fprintf(out, "  … %d more conflicts (raise -max-conflicts)\n", len(conflicts)-i)
			break
		}
		fmt.Fprintf(out, "  conflict %d: code %s: state %d {%s} vs state %d {%s}, differing on %s\n",
			i+1, c.Code, c.StateA, c.SignalsA, c.StateB, c.SignalsB, strings.Join(c.DiffSignals, ","))
		fmt.Fprintf(out, "    witness to state %d: %s\n", c.StateA, renderTrace(c.TraceA))
		fmt.Fprintf(out, "    witness to state %d: %s\n", c.StateB, renderTrace(c.TraceB))
	}
	return finish(out, stderr)
}

// An errWriter latches the first write error; later writes become no-ops so
// one failure is reported once, at the end of the run.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// finish converts a latched output failure into the exit code.
func finish(out *errWriter, stderr io.Writer) int {
	if out.err != nil {
		fmt.Fprintln(stderr, "stginfo: writing output:", out.err)
		return 1
	}
	return 0
}

// renderTrace joins a witness firing sequence, naming the empty trace (the
// initial state itself) explicitly.
func renderTrace(trace []string) string {
	if len(trace) == 0 {
		return "(initial state)"
	}
	return strings.Join(trace, " ")
}
