// Command stginfo analyses an STG specification: it reports structural
// properties of the underlying net, builds the state graph and checks the
// correctness criteria required for speed-independent synthesis (consistency,
// safeness, output persistency, USC/CSC), and summarises the size of the
// STG-unfolding segment for comparison.
//
// Usage:
//
//	stginfo [-max-states N] file.g
package main

import (
	"flag"
	"fmt"
	"os"

	"punt/internal/stategraph"
	"punt/internal/stg"
	"punt/internal/unfolding"
)

func main() {
	maxStates := flag.Int("max-states", 1000000, "abort state graph construction beyond this many states")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stginfo [flags] file.g")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := readSTG(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Print(stg.Describe(g))
	net := g.Net()
	fmt.Printf("marked graph: %v, free choice: %v\n", net.IsMarkedGraph(), net.IsFreeChoice())

	u, err := unfolding.Build(g, unfolding.Options{})
	if err != nil {
		fmt.Printf("unfolding: failed: %v\n", err)
	} else {
		fmt.Printf("unfolding segment: %s\n", u.Statistics())
		if v := u.CheckSemiModularity(); len(v) > 0 {
			fmt.Printf("unfolding semi-modularity: %d potential violations (first: %s)\n", len(v), v[0])
		} else {
			fmt.Println("unfolding semi-modularity: ok")
		}
	}

	sg, err := stategraph.Build(g, stategraph.Options{MaxStates: *maxStates})
	if err != nil {
		fmt.Printf("state graph: failed: %v\n", err)
		return
	}
	fmt.Print(sg.Report())
}

func readSTG(path string) (*stg.STG, error) {
	if path == "-" {
		return stg.Parse(os.Stdin)
	}
	return stg.ParseFile(path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stginfo:", err)
	os.Exit(1)
}
