package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"punt"
	"punt/server"
)

// startDaemon runs an in-process puntd-equivalent server for the client
// tests.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func writeSpec(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.g")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServerModeGolden(t *testing.T) {
	ts := startDaemon(t)
	code, stdout, stderr := runCmd(t, []string{"-server", ts.URL, "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("remote stdout = %q, want the same golden equations as a local run:\n%q", stdout, fig1Eqn)
	}
}

func TestServerModeWarmHit(t *testing.T) {
	ts := startDaemon(t)
	args := []string{"-server", ts.URL, "-stats", "../../testdata/fig1.g"}
	if code, _, stderr := runCmd(t, args, ""); code != 0 {
		t.Fatalf("cold run: exit %d, stderr: %s", code, stderr)
	}
	code, stdout, stderr := runCmd(t, args, "")
	if code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr)
	}
	if stdout != fig1Eqn {
		t.Errorf("warm stdout = %q", stdout)
	}
	if !strings.Contains(stderr, "cached=true") {
		t.Errorf("-stats did not mark the daemon's warm hit: %s", stderr)
	}
}

func TestServerModeVerilog(t *testing.T) {
	ts := startDaemon(t)
	code, stdout, stderr := runCmd(t, []string{"-server", ts.URL, "-verilog", "../../testdata/fig1.g"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "module paper_fig1") {
		t.Errorf("remote result did not render Verilog locally:\n%s", stdout)
	}
}

// TestServerModeExitCodes pins the exit-code contract across the wire: each
// failure class must exit with the same status a local run would.
func TestServerModeExitCodes(t *testing.T) {
	ts := startDaemon(t)

	t.Run("synthesis failure is 1", func(t *testing.T) {
		code, _, stderr := runCmd(t, []string{"-server", ts.URL, "../../testdata/csc.g"}, "")
		if code != 1 {
			t.Fatalf("CSC conflict: exit %d, want 1; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "Complete State Coding") {
			t.Errorf("stderr lost the diagnostic: %s", stderr)
		}
	})
	t.Run("usage failure is 2", func(t *testing.T) {
		// Bad vocabulary is rejected locally, before any network traffic.
		code, _, _ := runCmd(t, []string{"-server", ts.URL, "-engine", "warp-drive", "../../testdata/fig1.g"}, "")
		if code != 2 {
			t.Fatalf("bad engine: exit %d, want 2", code)
		}
	})
	t.Run("budget exhaustion is 4", func(t *testing.T) {
		spec := writeSpec(t, punt.MullerPipelineWithSignals(24).Text())
		code, _, stderr := runCmd(t, []string{"-server", ts.URL, "-engine", "explicit", "-deadline", "50ms", spec}, "")
		if code != 4 {
			t.Fatalf("budget: exit %d, want 4; stderr: %s", code, stderr)
		}
	})
	t.Run("server exit code passes through", func(t *testing.T) {
		// A stub daemon reporting a verification failure: the client must
		// relay exit code 3 without interpreting the message.
		stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			_, _ = w.Write([]byte(`{"error":"implementation fails verification","exit_code":3}`))
		}))
		defer stub.Close()
		code, _, stderr := runCmd(t, []string{"-server", stub.URL, "../../testdata/fig1.g"}, "")
		if code != 3 {
			t.Fatalf("exit %d, want 3; stderr: %s", code, stderr)
		}
	})
	t.Run("unreachable server is 1", func(t *testing.T) {
		code, _, _ := runCmd(t, []string{"-server", "http://127.0.0.1:1", "../../testdata/fig1.g"}, "")
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}
